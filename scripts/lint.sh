#!/usr/bin/env bash
# Static-analysis gate: builds and runs the in-tree eroof_lint pass over
# src/ bench/ examples/ tests/, then (when clang-tidy is installed) runs the
# curated .clang-tidy checks over the exported compile_commands.json.
#
#   scripts/lint.sh [--no-tidy] [--fix-annotations] [-B BUILD_DIR]
#
# Exit status is nonzero if eroof_lint finds a violation or clang-tidy
# reports an error. Findings are mirrored to lint-report.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
RUN_TIDY=1
FIX_ANNOTATIONS=0
while [ $# -gt 0 ]; do
  case "$1" in
    --no-tidy) RUN_TIDY=0 ;;
    --fix-annotations) FIX_ANNOTATIONS=1 ;;
    -B) BUILD_DIR=$2; shift ;;
    *) echo "usage: $0 [--no-tidy] [--fix-annotations] [-B BUILD_DIR]" >&2
       exit 2 ;;
  esac
  shift
done

JOBS=$( (command -v nproc >/dev/null && nproc) || sysctl -n hw.ncpu 2>/dev/null || echo 2)

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target eroof_lint

LINT_BIN="${BUILD_DIR}/tools/lint/eroof_lint"

if [ "${FIX_ANNOTATIONS}" = 1 ]; then
  exec "${LINT_BIN}" --root . --fix-annotations
fi

STATUS=0
"${LINT_BIN}" --root . --audit | tee lint-report.txt || STATUS=$?

# clang-tidy layer: curated checks from .clang-tidy over the exported
# database. Optional -- the in-tree pass above is the gating invariant
# check; clang-tidy adds generic bug-prone/performance findings when the
# tool is available.
if [ "${RUN_TIDY}" = 1 ]; then
  TIDY=$(command -v clang-tidy || true)
  if [ -z "${TIDY}" ]; then
    echo "lint.sh: clang-tidy not found; skipping the clang-tidy layer" >&2
  elif [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing (reconfigure" \
         "with a Makefile/Ninja generator); skipping clang-tidy" >&2
  else
    # Project sources only: the database also covers tests and benches, but
    # the curated checks target the library code the invariants protect.
    mapfile -t TIDY_SOURCES < <(git ls-files 'src/**/*.cpp' 2>/dev/null \
      || find src -name '*.cpp' | sort)
    echo "lint.sh: clang-tidy over ${#TIDY_SOURCES[@]} sources"
    "${TIDY}" -p "${BUILD_DIR}" --quiet "${TIDY_SOURCES[@]}" \
      | tee -a lint-report.txt || STATUS=$?
  fi
fi

exit "${STATUS}"
