#!/usr/bin/env bash
# Static-analysis gate: builds and runs the in-tree eroof_lint whole-program
# pass (per-file rules + call-graph hot propagation) over src/ bench/
# examples/ tests/, then (when the pinned clang-tidy is installed) runs the
# curated .clang-tidy checks over the exported compile_commands.json.
#
#   scripts/lint.sh [--no-tidy] [--fix-annotations] [--write-baseline]
#                   [-B BUILD_DIR]
#
# The gating run is strict: stale allow() suppressions fail the build, the
# committed lint-baseline.json is applied (entries retire automatically when
# the flagged line changes), and the report is mirrored to lint-report.txt
# and lint.sarif (SARIF 2.1.0, consumed by GitHub code scanning in CI).
# When GITHUB_STEP_SUMMARY is set, a one-line count is appended to it.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
RUN_TIDY=1
FIX_ANNOTATIONS=0
WRITE_BASELINE=0
# clang-tidy is pinned so the optional layer cannot drift between local runs
# and CI: prefer the exact major, fall back to an unpinned binary only with
# a loud warning.
TIDY_MAJOR=18
while [ $# -gt 0 ]; do
  case "$1" in
    --no-tidy) RUN_TIDY=0 ;;
    --fix-annotations) FIX_ANNOTATIONS=1 ;;
    --write-baseline) WRITE_BASELINE=1 ;;
    -B) BUILD_DIR=$2; shift ;;
    *) echo "usage: $0 [--no-tidy] [--fix-annotations] [--write-baseline]" \
            "[-B BUILD_DIR]" >&2
       exit 2 ;;
  esac
  shift
done

JOBS=$( (command -v nproc >/dev/null && nproc) || sysctl -n hw.ncpu 2>/dev/null || echo 2)

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target eroof_lint

LINT_BIN="${BUILD_DIR}/tools/lint/eroof_lint"

if [ "${FIX_ANNOTATIONS}" = 1 ]; then
  exec "${LINT_BIN}" --root . --fix-annotations
fi

if [ "${WRITE_BASELINE}" = 1 ]; then
  exec "${LINT_BIN}" --root . --write-baseline lint-baseline.json
fi

BASELINE_ARGS=()
if [ -f lint-baseline.json ]; then
  BASELINE_ARGS=(--baseline lint-baseline.json)
fi

STATUS=0
"${LINT_BIN}" --root . --audit --strict-allows --sarif lint.sarif \
  "${BASELINE_ARGS[@]}" 2>lint-summary.txt | tee lint-report.txt \
  || STATUS=$?
cat lint-summary.txt >&2

# Gating findings only: the report also mirrors notes and the --audit
# suppression trail, neither of which fails the build.
VIOLATIONS=$(grep -E ':[0-9]+: [a-z-]+: ' lint-report.txt \
  | grep -v -e ': note: ' -e ': suppressed: ' | wc -l | tr -d ' ' || true)
echo "lint.sh: ${VIOLATIONS} gating finding(s) (details: lint-report.txt," \
     "SARIF: lint.sarif)"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  {
    echo "### eroof_lint"
    echo ""
    echo "- gating findings: **${VIOLATIONS}**"
    echo "- $(cat lint-summary.txt)"
  } >> "${GITHUB_STEP_SUMMARY}"
fi

# clang-tidy layer: curated checks from .clang-tidy over the exported
# database. Optional -- the in-tree pass above is the gating invariant
# check; clang-tidy adds generic bug-prone/performance findings when the
# pinned tool is available.
if [ "${RUN_TIDY}" = 1 ]; then
  TIDY=$(command -v "clang-tidy-${TIDY_MAJOR}" || true)
  if [ -z "${TIDY}" ]; then
    TIDY=$(command -v clang-tidy || true)
    if [ -n "${TIDY}" ]; then
      FOUND_MAJOR=$("${TIDY}" --version | sed -n 's/.*version \([0-9]*\).*/\1/p' | head -1)
      if [ "${FOUND_MAJOR}" != "${TIDY_MAJOR}" ]; then
        echo "lint.sh: WARNING: clang-tidy ${FOUND_MAJOR} found, pinned" \
             "version is ${TIDY_MAJOR}; findings may differ from CI" >&2
      fi
    fi
  fi
  if [ -z "${TIDY}" ]; then
    echo "lint.sh: clang-tidy not found; skipping the clang-tidy layer" >&2
  elif [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing (reconfigure" \
         "with a Makefile/Ninja generator); skipping clang-tidy" >&2
  else
    # Project sources only: the database also covers tests and benches, but
    # the curated checks target the library code the invariants protect.
    mapfile -t TIDY_SOURCES < <(git ls-files 'src/**/*.cpp' 2>/dev/null \
      || find src -name '*.cpp' | sort)
    echo "lint.sh: clang-tidy over ${#TIDY_SOURCES[@]} sources"
    "${TIDY}" -p "${BUILD_DIR}" --quiet "${TIDY_SOURCES[@]}" \
      | tee -a lint-report.txt || STATUS=$?
  fi
fi

exit "${STATUS}"
