#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every table
# and figure of the paper (plus ablations/extensions), collecting outputs
# under ./reproduction/.
set -euo pipefail
cd "$(dirname "$0")/.."

# --lint: run the static-analysis gate first, so the reproduction is
# attested invariant-clean (determinism + hot-path allocation rules) before
# any figure is regenerated.
RUN_LINT=0
for arg in "$@"; do
  case "$arg" in
    --lint) RUN_LINT=1 ;;
    *) echo "usage: $0 [--lint]" >&2; exit 2 ;;
  esac
done

JOBS=$( (command -v nproc >/dev/null && nproc) || sysctl -n hw.ncpu 2>/dev/null || echo 2)

# Prefer Ninja when available, but fall back to CMake's default generator
# (the ROADMAP tier-1 command) -- and never fight an already-configured
# build tree that used a different generator.
if [ ! -f build/CMakeCache.txt ]; then
  if command -v ninja >/dev/null 2>&1; then
    cmake -B build -G Ninja
  else
    cmake -B build
  fi
fi
cmake --build build -j "${JOBS}"

mkdir -p reproduction

if [ "${RUN_LINT}" = 1 ]; then
  echo "== static analysis (eroof_lint) =="
  ./scripts/lint.sh --no-tidy
  cp -f lint-report.txt reproduction/ 2>/dev/null || true
fi
ctest --test-dir build -j "${JOBS}" 2>&1 | tee reproduction/test_output.txt

for b in build/bench/*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "== $name =="
  "$b" 2>&1 | tee "reproduction/${name}.txt"
done

# Per-phase DVFS autotuning of the KIFMM proxy (fig_fmm_autotune.csv is
# picked up by the fig*.csv move below).
echo "== fmm_autotune =="
./build/examples/fmm_autotune 2>&1 | tee reproduction/fmm_autotune.txt

# Time-stepping dynamics demo: incremental refit vs rebuild decisions and
# amortized schedule re-tuning over a Langevin trajectory.
echo "== fmm_dynamics =="
./build/examples/fmm_dynamics 2>&1 | tee reproduction/fmm_dynamics.txt

# Closed-loop model refresh demo: the dynamics engine refitting the energy
# model in service as the die leakage ramps (DESIGN.md §14).
echo "== fmm_refresh =="
./build/examples/fmm_refresh 2>&1 | tee reproduction/fmm_refresh.txt

# CSV series are written to the current directory by the fig benches.
mv -f fig*.csv ablation_q_sweep.csv ext_energy_roofline.csv reproduction/ \
  2>/dev/null || true

# Machine-readable perf baselines: the committed bench/results/*.json
# references plus fresh perf_pipeline and serving runs on this machine.
cp -f bench/results/*.json reproduction/ 2>/dev/null || true
./build/bench/perf_pipeline --bench-json=reproduction/BENCH_pipeline.local.json \
  --bench-reps=5 || true
./build/bench/perf_serve --bench-json=reproduction/BENCH_serve.local.json \
  --bench-requests=24 || true
./build/bench/perf_dynamics \
  --bench-json=reproduction/BENCH_dynamics.local.json --bench-steps=8 || true
./build/bench/perf_refresh \
  --bench-json=reproduction/BENCH_refresh.local.json --bench-steps=32 \
  --bench-n=4096 || true

echo "All outputs collected under ./reproduction/"
