#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every table
# and figure of the paper (plus ablations/extensions), collecting outputs
# under ./reproduction/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p reproduction
ctest --test-dir build 2>&1 | tee reproduction/test_output.txt

for b in build/bench/*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "== $name =="
  "$b" 2>&1 | tee "reproduction/${name}.txt"
done

# CSV series are written to the current directory by the fig benches.
mv -f fig*.csv ablation_q_sweep.csv ext_energy_roofline.csv reproduction/ \
  2>/dev/null || true

echo "All outputs collected under ./reproduction/"
