// Reproduces Table II: energy autotuning. For every microbenchmark class
// and every arithmetic intensity, the workload is measured across all 105
// DVFS settings; the fitted model and a "time oracle" (race-to-halt) each
// pick a setting, scored against the experimentally measured minimum.
//
// Paper's headline: the oracle picks an energy-inefficient configuration in
// 20/25 single-precision cases (mean 18.52% energy lost), while the model
// is right every time; for L2 the oracle loses ~10.7% on every point.
#include <iostream>
#include <limits>

#include "bench/common.hpp"
#include "core/autotune.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace eroof;
  const auto platform = bench::make_platform();
  const auto grid = hw::full_grid();
  util::Rng rng(101);

  std::cout << "Table II: energy autotuning -- fitted model vs time oracle "
               "(race-to-halt) across the 105-setting grid\n\n";
  util::Table t({"Benchmark", "Chooser", "Mispredictions", "Mean lost (%)",
                 "Min lost (%)", "Max lost (%)"},
                {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight});

  for (const auto cls :
       {ub::BenchClass::kSpFlops, ub::BenchClass::kDpFlops,
        ub::BenchClass::kIntOps, ub::BenchClass::kSharedMem,
        ub::BenchClass::kL2}) {
    const auto sweep = ub::intensity_sweep(cls);
    int model_wrong = 0;
    int oracle_wrong = 0;
    std::vector<double> model_lost;
    std::vector<double> oracle_lost;
    for (const auto& point : sweep) {
      const auto ms =
          model::measure_grid(platform.soc, point.workload, grid,
                              platform.pm, rng);
      const auto out = model::autotune(platform.model, ms);
      if (!out.model_correct) {
        ++model_wrong;
        model_lost.push_back(out.model_lost_pct);
      }
      if (!out.oracle_correct) {
        ++oracle_wrong;
        oracle_lost.push_back(out.oracle_lost_pct);
      }
    }

    const auto emit = [&](const char* chooser, int wrong,
                          const std::vector<double>& lost) {
      const std::string frac = std::to_string(wrong) + " (out of " +
                               std::to_string(sweep.size()) + ")";
      if (lost.empty()) {
        t.add_row({ub::to_string(cls), chooser, frac, "0", "0", "0"});
      } else {
        const auto s = util::summarize(lost);
        t.add_row({ub::to_string(cls), chooser, frac,
                   util::Table::num(s.mean, 2), util::Table::num(s.min, 2),
                   util::Table::num(s.max, 2)});
      }
    };
    emit("Our model", model_wrong, model_lost);
    emit("Time Oracle", oracle_wrong, oracle_lost);
  }
  t.print(std::cout);

  std::cout << "\nPaper: SP model 0/25 vs oracle 20/25 (18.52% mean lost); "
               "DP 10/36 vs 23/36; Int 6/23 vs 23/23; SM 7/10 vs 10/10; "
               "L2 0/9 vs 0/9 (10.71% mean lost).\n"
            << "'Lost' statistics are over mispredicted cases only, as in "
               "the paper.\n";
  return 0;
}
