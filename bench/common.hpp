// Shared plumbing for the table/figure reproduction benches: the calibrated
// platform, the fitted model (from the paper's microbenchmark campaign), and
// the Table IV FMM inputs F1..F8 with their GPU execution profiles.
#pragma once

#include <string>
#include <vector>

#include "core/fit.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/gpu_profile.hpp"
#include "fmm/pointgen.hpp"
#include "hw/soc.hpp"
#include "ubench/campaign.hpp"

namespace eroof::bench {

/// Everything a reproduction bench needs: the simulated board, the meter,
/// the campaign samples and the model fitted on the training half.
struct Platform {
  hw::Soc soc = hw::Soc::tegra_k1();
  hw::PowerMon pm;
  std::vector<ub::Sample> campaign;
  model::EnergyModel model;

  std::vector<model::FitSample> samples(hw::SettingRole role) const {
    std::vector<model::FitSample> out;
    for (const auto& s : campaign)
      if (s.role == role) out.push_back(model::to_fit_sample(s.meas));
    return out;
  }

  std::vector<model::FitSample> all_samples() const {
    std::vector<model::FitSample> out;
    for (const auto& s : campaign) out.push_back(model::to_fit_sample(s.meas));
    return out;
  }
};

inline Platform make_platform(std::uint64_t seed = 42) {
  Platform p;
  util::Rng rng(seed);
  p.campaign = ub::paper_campaign(p.soc, p.pm, rng);
  const auto train = p.samples(hw::SettingRole::kTrain);
  p.model = model::fit_energy_model(train).model;
  return p;
}

/// Table IV FMM inputs.
struct FmmInput {
  const char* id;
  std::size_t n;
  std::uint32_t q;
};

inline constexpr FmmInput kFmmInputs[8] = {
    {"F1", 262144, 128}, {"F2", 131072, 64},  {"F3", 131072, 256},
    {"F4", 131072, 512}, {"F5", 65536, 1024}, {"F6", 65536, 512},
    {"F7", 65536, 128},  {"F8", 65536, 64},
};

/// Builds the input's point set, constructs the (uniform-tree, as in the
/// paper's GPU implementation) evaluator, and models its CUDA execution.
inline fmm::FmmGpuProfile profile_fmm_input(const FmmInput& in, int p = 4) {
  static const fmm::LaplaceKernel kernel;
  util::Rng rng(1000 + in.n + in.q);
  const auto pts = fmm::uniform_cube(in.n, rng);
  fmm::FmmEvaluator ev(
      kernel, pts,
      {.max_points_per_box = in.q,
       .uniform_depth = fmm::Octree::uniform_depth_for(in.n, in.q)},
      fmm::FmmConfig{.p = p});
  return fmm::profile_gpu_execution(ev);
}

/// Runs all six phases at `setting` and accumulates (time, measured energy,
/// counts).
struct FmmRunResult {
  double time_s = 0;
  double energy_j = 0;
  hw::OpCounts ops;
};

inline FmmRunResult run_fmm_profile(const Platform& p,
                                    const fmm::FmmGpuProfile& prof,
                                    const hw::DvfsSetting& setting,
                                    util::Rng& rng) {
  FmmRunResult r;
  for (const auto& ph : prof.phases) {
    const auto m = p.soc.run(ph.workload, setting, p.pm, rng);
    r.time_s += m.time_s;
    r.energy_j += m.energy_j;
    r.ops += ph.workload.ops;
  }
  return r;
}

}  // namespace eroof::bench
