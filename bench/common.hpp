// Shared plumbing for the table/figure reproduction benches: the calibrated
// platform, the fitted model (from the paper's microbenchmark campaign), and
// the Table IV FMM inputs F1..F8 with their GPU execution profiles -- plus
// the --bench-json trajectory-harness helpers (order statistics, JSON
// emission, flag parsing, the standard thread sweep) every perf_* binary
// shares instead of redeclaring.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/fit.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/gpu_profile.hpp"
#include "fmm/pointgen.hpp"
#include "hw/soc.hpp"
#include "ubench/campaign.hpp"

namespace eroof::bench {

/// Everything a reproduction bench needs: the simulated board, the meter,
/// the campaign samples and the model fitted on the training half.
struct Platform {
  hw::Soc soc = hw::Soc::tegra_k1();
  hw::PowerMon pm;
  std::vector<ub::Sample> campaign;
  model::EnergyModel model;

  std::vector<model::FitSample> samples(hw::SettingRole role) const {
    std::vector<model::FitSample> out;
    for (const auto& s : campaign)
      if (s.role == role) out.push_back(model::to_fit_sample(s.meas));
    return out;
  }

  std::vector<model::FitSample> all_samples() const {
    std::vector<model::FitSample> out;
    for (const auto& s : campaign) out.push_back(model::to_fit_sample(s.meas));
    return out;
  }
};

inline Platform make_platform(std::uint64_t seed = 42) {
  Platform p;
  util::Rng rng(seed);
  p.campaign = ub::paper_campaign(p.soc, p.pm, rng);
  const auto train = p.samples(hw::SettingRole::kTrain);
  p.model = model::fit_energy_model(train).model;
  return p;
}

/// Table IV FMM inputs.
struct FmmInput {
  const char* id;
  std::size_t n;
  std::uint32_t q;
};

inline constexpr FmmInput kFmmInputs[8] = {
    {"F1", 262144, 128}, {"F2", 131072, 64},  {"F3", 131072, 256},
    {"F4", 131072, 512}, {"F5", 65536, 1024}, {"F6", 65536, 512},
    {"F7", 65536, 128},  {"F8", 65536, 64},
};

/// Builds the input's point set, constructs the (uniform-tree, as in the
/// paper's GPU implementation) evaluator, and models its CUDA execution.
inline fmm::FmmGpuProfile profile_fmm_input(const FmmInput& in, int p = 4) {
  static const fmm::LaplaceKernel kernel;
  util::Rng rng(1000 + in.n + in.q);
  const auto pts = fmm::uniform_cube(in.n, rng);
  fmm::FmmEvaluator ev(
      kernel, pts,
      {.max_points_per_box = in.q,
       .uniform_depth = fmm::Octree::uniform_depth_for(in.n, in.q)},
      fmm::FmmConfig{.p = p});
  return fmm::profile_gpu_execution(ev);
}

/// Runs all six phases at `setting` and accumulates (time, measured energy,
/// counts).
struct FmmRunResult {
  double time_s = 0;
  double energy_j = 0;
  hw::OpCounts ops;
};

inline FmmRunResult run_fmm_profile(const Platform& p,
                                    const fmm::FmmGpuProfile& prof,
                                    const hw::DvfsSetting& setting,
                                    util::Rng& rng) {
  FmmRunResult r;
  for (const auto& ph : prof.phases) {
    const auto m = p.soc.run(ph.workload, setting, p.pm, rng);
    r.time_s += m.time_s;
    r.energy_j += m.energy_j;
    r.ops += ph.workload.ops;
  }
  return r;
}

// ---------------------------------------------------------------------------
// --bench-json trajectory-harness helpers
// ---------------------------------------------------------------------------

/// Order statistics of one timing series (times in milliseconds).
struct Summary {
  double median = 0, p10 = 0, p90 = 0;
};

/// Linear-interpolated q-quantile (q in [0, 1]); 0 for an empty series.
inline double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

inline Summary summarize(const std::vector<double>& xs) {
  return {percentile(xs, 0.5), percentile(xs, 0.1), percentile(xs, 0.9)};
}

inline void write_summary(std::ofstream& out, const Summary& s) {
  out << "{\"median_ms\": " << s.median << ", \"p10_ms\": " << s.p10
      << ", \"p90_ms\": " << s.p90 << "}";
}

/// Parses `--name` / `--name=value`; true on match, `value` set if present.
inline bool flag_value(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') *value = arg + len + 1;
  return arg[len] == '=' || arg[len] == '\0';
}

/// The standard OpenMP sweep of the trajectory harnesses: {1, 2, 4} plus
/// the machine maximum when it exceeds 4 (dedup'd when it doesn't). Without
/// OpenMP, just {1}.
inline std::vector<int> sweep_thread_counts() {
  std::vector<int> counts{1};
#ifdef _OPENMP
  counts.push_back(2);
  counts.push_back(4);
  if (omp_get_max_threads() > 4) counts.push_back(omp_get_max_threads());
#endif
  return counts;
}

}  // namespace eroof::bench
