// Ablation: is the DVFS-awareness actually needed?
//
// The paper's contribution over the original energy roofline [2,3] is
// letting per-op costs and constant power vary with voltage (eqs. 6-8).
// This bench fits the *fixed-cost* predecessor -- constant eps_op and pi_0,
// estimated at one reference setting -- and predicts energies across the
// other 15 Table I settings. The DVFS-aware model is fitted on the same
// reference-setting samples only, so the comparison isolates the voltage
// terms rather than the amount of training data.
#include <iostream>

#include "bench/common.hpp"
#include "core/crossval.hpp"
#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"
#include "util/table.hpp"

namespace {

using namespace eroof;

/// The pre-DVFS energy roofline: E = sum_k n_k eps_k + pi0 T with fixed
/// coefficients (paper eq. 5, per-class form).
struct FixedModel {
  std::array<double, model::kNumCoeffs> eps{};  // J per op
  double pi0 = 0;                               // W

  double predict(const hw::OpCounts& ops, double time_s) const {
    double e = pi0 * time_s;
    for (std::size_t i = 0; i < hw::kNumOpClasses; ++i) {
      const auto c = model::coeff_for(static_cast<hw::OpClass>(i));
      e += ops.n[i] * eps[static_cast<std::size_t>(c)];
    }
    return e;
  }
};

FixedModel fit_fixed(std::span<const model::FitSample> samples) {
  // Same NNLS machinery, but the design row has no voltage factors.
  const std::size_t cols = model::kNumCoeffs + 1;
  la::Matrix a(samples.size(), cols);
  std::vector<double> b(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    for (std::size_t k = 0; k < hw::kNumOpClasses; ++k) {
      const auto c = static_cast<std::size_t>(
          model::coeff_for(static_cast<hw::OpClass>(k)));
      a(i, c) += s.ops.n[k];
    }
    a(i, model::kNumCoeffs) = s.time_s;
    b[i] = s.energy_j;
  }
  // Column equilibration as in the DVFS-aware fit.
  std::vector<double> scale(cols, 1.0);
  for (std::size_t j = 0; j < cols; ++j) {
    double ss = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) ss += a(i, j) * a(i, j);
    scale[j] = ss > 0 ? std::sqrt(ss) : 1.0;
    for (std::size_t i = 0; i < samples.size(); ++i) a(i, j) /= scale[j];
  }
  const auto sol = la::nnls(a, b);
  FixedModel m;
  for (std::size_t j = 0; j < model::kNumCoeffs; ++j)
    m.eps[j] = sol.x[j] / scale[j];
  m.pi0 = sol.x[model::kNumCoeffs] / scale[model::kNumCoeffs];
  return m;
}

}  // namespace

int main() {
  const auto platform = bench::make_platform();

  // Reference setting: the top operating point, where a fixed-cost model
  // would naturally be calibrated.
  const auto ref = hw::setting(852, 924);
  std::vector<model::FitSample> ref_samples;
  std::vector<model::FitSample> others;
  for (const auto& s : platform.campaign) {
    const auto fs = model::to_fit_sample(s.meas);
    if (fs.setting.label() == ref.label())
      ref_samples.push_back(fs);
    else
      others.push_back(fs);
  }

  const FixedModel fixed = fit_fixed(ref_samples);
  // DVFS-aware model trained on the full training half (its design point);
  // also shown trained on the single reference setting, where its voltage
  // columns are confounded -- the honest small-data comparison.
  const auto dvfs_full = platform.model;

  std::vector<double> err_fixed_ref;
  std::vector<double> err_fixed_other;
  std::vector<double> err_dvfs_other;
  for (const auto& s : ref_samples)
    err_fixed_ref.push_back(
        util::relative_error_pct(fixed.predict(s.ops, s.time_s), s.energy_j));
  for (const auto& s : others) {
    err_fixed_other.push_back(
        util::relative_error_pct(fixed.predict(s.ops, s.time_s), s.energy_j));
    err_dvfs_other.push_back(util::relative_error_pct(
        dvfs_full.predict_energy_j(s.ops, s.setting, s.time_s), s.energy_j));
  }

  std::cout << "Ablation: fixed-cost energy roofline (eq. 5, pre-DVFS) vs "
               "the DVFS-aware model (eq. 9)\n\n";
  util::Table t({"Model", "Evaluated on", "Mean err %", "Max err %"},
                {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                 util::Align::kRight});
  const auto row = [&t](const char* m, const char* on,
                        const std::vector<double>& errs) {
    const auto s = util::summarize(errs);
    t.add_row({m, on, util::Table::num(s.mean, 2),
               util::Table::num(s.max, 2)});
  };
  row("fixed-cost (fit at 852/924)", "852/924 (its own setting)",
      err_fixed_ref);
  row("fixed-cost (fit at 852/924)", "the other 15 settings",
      err_fixed_other);
  row("DVFS-aware (fit on 8 T settings)", "the other 15 settings",
      err_dvfs_other);
  t.print(std::cout);

  std::cout << "\nReading: the fixed-cost model is excellent where it was "
               "calibrated and useless elsewhere -- its per-op costs and "
               "pi0 silently encode one voltage point. The voltage terms of "
               "eq. 9 are what make the model transfer across the DVFS "
               "ladder (and hence usable for energy autotuning at all).\n";
  return 0;
}
