// Throughput/latency of the FMM serving subsystem (DESIGN.md §12).
//
// Drives a deterministic mixed workload (three request sizes x three point
// distributions, homogeneous Laplace kernel) through FmmServer and reports
// req/s, p50/p99 latency and the plan-cache hit rate at 1/2/4/max worker
// threads, in two modes:
//
//   * warm: plan cache enabled and pre-warmed -- requests share plans, so
//     the per-request path is tree + lists + solve only.
//   * cold: plan cache disabled (capacity 0) -- every request pays operator
//     construction, DAG skeleton build and the schedule search.
//
// The headline acceptance number is warm/cold throughput at equal worker
// count (>= 2x) plus req/s scaling from 1 to 4 workers.
//
//   perf_serve [--bench-json[=path]] [--bench-requests=N]
//
// --bench-json writes one machine-readable JSON file (default
// BENCH_serve.json); CI uploads it as an artifact.
#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <set>
#include <string>
#include <vector>

#include "fmm/octree.hpp"
#include "serve/plan_cache.hpp"
#include "bench/common.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

namespace {

using namespace eroof;
using bench::flag_value;
using bench::percentile;
using Clock = std::chrono::steady_clock;

struct Run {
  std::string mode;
  int workers = 0;
  double req_per_s = 0;
  double p50_ms = 0, p99_ms = 0;
  double cache_hit_rate = 0;
  std::uint64_t shed = 0;
};

Run drive(const std::vector<serve::FmmRequest>& requests, bool warm,
          int workers,
          std::shared_ptr<const serve::ScheduleContext> schedule_ctx) {
  serve::ServerConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = requests.size();  // no shedding in the benchmark
  cfg.plan_cache_capacity = warm ? 16 : 0;
  cfg.schedule_ctx = std::move(schedule_ctx);
  serve::FmmServer server(cfg);

  if (warm) {
    // One serve per distinct plan key puts every plan in the cache before
    // the clock starts.
    std::set<std::string> seen;
    for (const serve::FmmRequest& req : requests) {
      const std::string key = serve::plan_cache_key(
          req.kernel, req.p, req.max_points_per_box,
          fmm::Octree::uniform_depth_for(req.points.size(),
                                         req.max_points_per_box),
          serve::kServeDomain);
      if (seen.insert(key).second) (void)server.serve_now(req);
    }
  }
  const serve::FmmServer::Stats before = server.stats();

  const Clock::time_point t0 = Clock::now();
  std::vector<std::future<serve::FmmResponse>> futures;
  futures.reserve(requests.size());
  for (const serve::FmmRequest& req : requests)
    futures.push_back(server.submit(req));
  std::vector<double> latency_ms;
  latency_ms.reserve(futures.size());
  for (auto& f : futures) {
    const serve::FmmResponse resp = f.get();
    if (resp.status == serve::ServeStatus::kOk)
      latency_ms.push_back((resp.queue_us + resp.service_us) / 1000.0);
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const serve::FmmServer::Stats after = server.stats();
  server.shutdown();

  Run run;
  run.mode = warm ? "warm" : "cold";
  run.workers = workers;
  run.req_per_s = static_cast<double>(latency_ms.size()) / wall_s;
  run.p50_ms = percentile(latency_ms, 0.5);
  run.p99_ms = percentile(latency_ms, 0.99);
  const std::uint64_t served = after.served - before.served;
  run.cache_hit_rate =
      served == 0 ? 0
                  : static_cast<double>(after.cache.hits - before.cache.hits) /
                        static_cast<double>(served);
  run.shed = after.shed - before.shed;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool json_mode = false;
  std::size_t n_requests = 64;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (flag_value(argv[i], "--bench-json", &v)) {
      json_mode = true;
      json_path = v.empty() ? "BENCH_serve.json" : v;
    } else if (flag_value(argv[i], "--bench-requests", &v)) {
      n_requests = static_cast<std::size_t>(std::stoull(v));
    }
    v.clear();
  }

  serve::WorkloadConfig wl;
  wl.sizes = {1024, 4096, 8192};
  std::vector<serve::FmmRequest> requests;
  requests.reserve(n_requests);
  for (std::uint64_t i = 0; i < n_requests; ++i)
    requests.push_back(serve::make_request(wl, i));

  std::vector<int> worker_counts{1, 2, 4};
#ifdef _OPENMP
  const int max_workers = omp_get_max_threads();
#else
  const int max_workers = 4;
#endif
  if (max_workers > 4) worker_counts.push_back(max_workers);

  // Fitted once, shared read-only by every run (and every server worker).
  const auto schedule_ctx = serve::ScheduleContext::tegra_default();

  std::vector<Run> runs;
  for (const bool warm : {false, true}) {
    for (const int w : worker_counts) {
      std::fprintf(stderr, "perf_serve: mode=%s workers=%d requests=%zu\n",
                   warm ? "warm" : "cold", w, n_requests);
      runs.push_back(drive(requests, warm, w, schedule_ctx));
      const Run& r = runs.back();
      std::fprintf(stderr,
                   "  -> %.2f req/s, p50 %.1f ms, p99 %.1f ms, hit-rate "
                   "%.2f, shed %llu\n",
                   r.req_per_s, r.p50_ms, r.p99_ms, r.cache_hit_rate,
                   static_cast<unsigned long long>(r.shed));
    }
  }

  if (!json_mode) return 0;
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "bench-json: cannot open %s for writing\n",
                 json_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"serve\",\n";
  out << "  \"cores\": " << max_workers << ",\n";
  out << "  \"requests\": " << n_requests << ",\n";
  out << "  \"sizes\": [1024, 4096, 8192],\n";
  out << "  \"kernel\": \"laplace\",\n  \"p\": " << wl.p
      << ",\n  \"q\": " << wl.max_points_per_box << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    out << "    {\"mode\": \"" << r.mode << "\", \"workers\": " << r.workers
        << ", \"req_per_s\": " << r.req_per_s << ", \"p50_ms\": " << r.p50_ms
        << ", \"p99_ms\": " << r.p99_ms
        << ", \"cache_hit_rate\": " << r.cache_hit_rate
        << ", \"shed\": " << r.shed << "}"
        << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "bench-json: wrote %s\n", json_path.c_str());
  return 0;
}
