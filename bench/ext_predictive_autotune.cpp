// Extension beyond the paper: fully predictive DVFS autotuning.
//
// The paper's autotuner (Section II-E) needs the workload's execution time
// at every candidate setting -- i.e., 105 runs per workload. Pairing the
// energy model with a fitted roofline *time* model removes that: both T and
// E are predicted, and the workload never runs during tuning. This bench
// scores the predictive tuner against (a) the paper's measured-time tuner
// and (b) the race-to-halt oracle, on the full microbenchmark suite.
#include <iostream>

#include "bench/common.hpp"
#include "core/autotune.hpp"
#include "core/timemodel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace eroof;
  const auto platform = bench::make_platform();
  const auto time_model = model::fit_time_model(platform.all_samples()).model;
  const auto grid = hw::full_grid();
  util::Rng rng(202);

  std::cout << "Extension: predictive autotuning (no per-setting runs) vs "
               "the paper's measured-time tuner vs race-to-halt\n\n";
  util::Table t({"Benchmark", "Predictive mean lost %", "Paper-style lost %",
                 "Oracle lost %"},
                {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight});

  for (const auto cls :
       {ub::BenchClass::kSpFlops, ub::BenchClass::kDpFlops,
        ub::BenchClass::kIntOps, ub::BenchClass::kSharedMem,
        ub::BenchClass::kL2}) {
    std::vector<double> lost_pred;
    std::vector<double> lost_meas;
    std::vector<double> lost_oracle;
    for (const auto& point : ub::intensity_sweep(cls)) {
      const auto ms = model::measure_grid(platform.soc, point.workload, grid,
                                          platform.pm, rng);
      double best = 1e300;
      for (const auto& m : ms) best = std::min(best, m.energy_j);

      const std::size_t pick = model::predict_best_setting(
          platform.model, time_model, point.workload.ops, grid);
      lost_pred.push_back(100.0 * (ms[pick].energy_j - best) / best);

      const auto out = model::autotune(platform.model, ms);
      lost_meas.push_back(out.model_lost_pct);
      lost_oracle.push_back(out.oracle_lost_pct);
    }
    t.add_row({ub::to_string(cls),
               util::Table::num(util::mean(lost_pred), 2),
               util::Table::num(util::mean(lost_meas), 2),
               util::Table::num(util::mean(lost_oracle), 2)});
  }
  t.print(std::cout);
  std::cout << "\n(Each row averages the energy lost vs the measured "
               "minimum over the class's full intensity sweep -- all cases, "
               "not only mispredictions.)\nReading: predicting T costs "
               "little accuracy relative to measuring it, and both model "
               "variants beat race-to-halt decisively -- while the "
               "predictive tuner needs zero tuning runs.\n";
  return 0;
}
