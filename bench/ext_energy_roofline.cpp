// Extension: the energy roofline curves themselves (the visual of the
// paper's predecessor [2], now DVFS-aware).
//
// For each arithmetic intensity I (SP flops per DRAM word) and a selection
// of DVFS settings, prints time-per-flop and energy-per-flop along with the
// "balance points": the intensity where time stops being memory-bound, and
// the intensity where energy stops being dominated by data movement +
// constant power. Exports ext_energy_roofline.csv for plotting.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace eroof;
  const auto platform = bench::make_platform();

  const std::vector<hw::DvfsSetting> settings = {
      hw::setting(852, 924), hw::setting(852, 204), hw::setting(396, 924),
      hw::setting(180, 204)};

  std::cout << "Energy roofline: energy per SP flop vs arithmetic "
               "intensity, per DVFS setting\n\n";
  util::Table t({"Intensity", "852/924 pJ/flop", "852/204 pJ/flop",
                 "396/924 pJ/flop", "180/204 pJ/flop"},
                {util::Align::kRight, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight});
  util::CsvWriter csv("ext_energy_roofline.csv",
                      {"intensity", "setting", "time_per_flop_ns",
                       "energy_per_flop_pj", "constant_share_pct"});

  const double words = 64e6;
  for (int k = -2; k <= 9; ++k) {
    const double intensity = std::exp2(k);
    hw::Workload w;
    w.name = "roofline_I" + std::to_string(intensity);
    w.ops[hw::OpClass::kDramAccess] = words;
    w.ops[hw::OpClass::kSpFlop] = intensity * words;
    w.ops[hw::OpClass::kIntOp] = 0.05 * words;
    w.compute_utilization = 0.95;
    w.memory_utilization = 0.9;

    std::vector<std::string> row{util::Table::num(intensity, 2)};
    for (const auto& s : settings) {
      const double time = platform.soc.execution_time(w, s);
      const double flops = w.ops[hw::OpClass::kSpFlop];
      const double energy =
          platform.model.predict_energy_j(w.ops, s, time);
      const double const_j = platform.model.constant_power_w(s) * time;
      row.push_back(util::Table::num(energy / flops * 1e12, 1));
      csv.add_row({util::Table::num(intensity, 4), s.label(),
                   util::Table::num(time / flops * 1e9, 4),
                   util::Table::num(energy / flops * 1e12, 4),
                   util::Table::num(100.0 * const_j / energy, 2)});
    }
    t.add_row(row);
  }
  t.print(std::cout);

  std::cout << "\nReading: at low intensity the cost per flop is dominated "
               "by DRAM energy plus constant power over the memory-bound "
               "runtime; the curves flatten once compute binds. The floor "
               "differs per setting -- which is exactly the structure the "
               "autotuner exploits.\nSeries exported to "
               "ext_energy_roofline.csv.\n";
  return 0;
}
