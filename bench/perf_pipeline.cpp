// Performance of the measurement-and-modeling pipeline around the FMM: the
// paper's 116-point x 16-setting microbenchmark campaign (1856 samples), the
// NNLS fit, k-fold / leave-one-setting-out cross-validation, and the
// 105-setting autotune grid.
//
// Two modes:
//   * default: the google-benchmark suite below.
//   * --bench-json[=path]: a benchmark-trajectory harness that times each
//     pipeline stage at several OpenMP thread counts, reduces the series to
//     median/p10/p90, checks that campaign samples / CV summaries / autotune
//     choices are bitwise identical to the 1-thread run, and writes one
//     machine-readable JSON file (default BENCH_pipeline.json). CI runs this
//     on every build so modeling-pipeline regressions show up as a data
//     point, not an anecdote.
#include <benchmark/benchmark.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/autotune.hpp"
#include "core/crossval.hpp"
#include "core/fit.hpp"
#include "hw/soc.hpp"
#include "ubench/campaign.hpp"
#include "util/rng.hpp"

namespace {

using namespace eroof;
using bench::flag_value;
using bench::Summary;
using bench::summarize;
using bench::write_summary;

constexpr std::uint64_t kCampaignSeed = 42;
constexpr std::uint64_t kKfoldSeed = 7;
constexpr std::uint64_t kGridSeed = 11;
constexpr int kFolds = 16;
constexpr int kGridRepeats = 3;

hw::Workload tune_workload() {
  // A mid-intensity SP sweep point: compute and DRAM both matter, so the
  // autotune argmin is not degenerate.
  return ub::intensity_sweep(ub::BenchClass::kSpFlops)[12].workload;
}

// ---------------------------------------------------------------------------
// google-benchmark suite
// ---------------------------------------------------------------------------

void BM_PaperCampaign(benchmark::State& state) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  for (auto _ : state) {
    util::Rng rng(kCampaignSeed);
    auto samples = ub::paper_campaign(soc, pm, rng);
    benchmark::DoNotOptimize(samples.data());
  }
}
BENCHMARK(BM_PaperCampaign)->Unit(benchmark::kMillisecond);

void BM_FitEnergyModel(benchmark::State& state) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(kCampaignSeed);
  const auto campaign = ub::paper_campaign(soc, pm, rng);
  std::vector<model::FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(model::to_fit_sample(s.meas));
  for (auto _ : state) {
    auto fit = model::fit_energy_model(train);
    benchmark::DoNotOptimize(&fit);
  }
}
BENCHMARK(BM_FitEnergyModel)->Unit(benchmark::kMillisecond);

void BM_KfoldValidation(benchmark::State& state) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(kCampaignSeed);
  const auto campaign = ub::paper_campaign(soc, pm, rng);
  std::vector<model::FitSample> all;
  for (const auto& s : campaign) all.push_back(model::to_fit_sample(s.meas));
  for (auto _ : state) {
    util::Rng krng(kKfoldSeed);
    auto rep = model::kfold_validation(all, kFolds, krng);
    benchmark::DoNotOptimize(&rep);
  }
}
BENCHMARK(BM_KfoldValidation)->Unit(benchmark::kMillisecond);

void BM_LeaveOneSettingOut(benchmark::State& state) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(kCampaignSeed);
  const auto campaign = ub::paper_campaign(soc, pm, rng);
  std::vector<model::FitSample> all;
  for (const auto& s : campaign) all.push_back(model::to_fit_sample(s.meas));
  for (auto _ : state) {
    auto rep = model::leave_one_setting_out(all);
    benchmark::DoNotOptimize(&rep);
  }
}
BENCHMARK(BM_LeaveOneSettingOut)->Unit(benchmark::kMillisecond);

void BM_MeasureGridAutotune(benchmark::State& state) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(kCampaignSeed);
  const auto campaign = ub::paper_campaign(soc, pm, rng);
  std::vector<model::FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(model::to_fit_sample(s.meas));
  const auto m = model::fit_energy_model(train).model;
  const auto w = tune_workload();
  const auto grid = hw::full_grid();
  for (auto _ : state) {
    util::Rng grng(kGridSeed);
    const auto ms = model::measure_grid(soc, w, grid, pm, grng, kGridRepeats);
    auto out = model::autotune(m, ms);
    benchmark::DoNotOptimize(&out);
  }
}
BENCHMARK(BM_MeasureGridAutotune)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --bench-json trajectory harness
// ---------------------------------------------------------------------------

constexpr const char* kStages[] = {"campaign", "fit", "kfold", "loso",
                                   "autotune"};

/// One measured configuration: repeated pipeline executions at a fixed
/// OpenMP thread count.
struct Run {
  int threads = 0;
  bool bitwise_identical = true;
  std::vector<std::vector<double>> stage_ms{std::size(kStages)};
  std::vector<double> pipeline_ms;
};

/// The values whose bitwise stability across thread counts the harness
/// asserts: every campaign measurement, the pooled CV summaries, and the
/// autotune selections.
struct Outputs {
  std::vector<double> campaign_values;
  double kfold_mean = 0, kfold_max = 0;
  double loso_mean = 0, loso_max = 0;
  std::size_t model_idx = 0, oracle_idx = 0, best_idx = 0;
};

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool same_outputs(const Outputs& a, const Outputs& b) {
  if (a.campaign_values.size() != b.campaign_values.size()) return false;
  for (std::size_t i = 0; i < a.campaign_values.size(); ++i)
    if (!bit_equal(a.campaign_values[i], b.campaign_values[i])) return false;
  return bit_equal(a.kfold_mean, b.kfold_mean) &&
         bit_equal(a.kfold_max, b.kfold_max) &&
         bit_equal(a.loso_mean, b.loso_mean) &&
         bit_equal(a.loso_max, b.loso_max) && a.model_idx == b.model_idx &&
         a.oracle_idx == b.oracle_idx && a.best_idx == b.best_idx;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Executes the full campaign -> fit -> CV -> autotune pipeline once,
/// recording per-stage wall times and the stability-checked outputs.
Outputs run_pipeline(const hw::Soc& soc, const hw::PowerMon& pm, Run& run) {
  Outputs out;
  std::array<double, std::size(kStages)> ms{};

  double t0 = now_ms();
  util::Rng rng(kCampaignSeed);
  const auto campaign = ub::paper_campaign(soc, pm, rng);
  ms[0] = now_ms() - t0;

  out.campaign_values.reserve(3 * campaign.size());
  for (const auto& s : campaign) {
    out.campaign_values.push_back(s.meas.time_s);
    out.campaign_values.push_back(s.meas.energy_j);
    out.campaign_values.push_back(s.meas.avg_power_w);
  }

  std::vector<model::FitSample> train;
  std::vector<model::FitSample> all;
  all.reserve(campaign.size());
  for (const auto& s : campaign) {
    const auto fs = model::to_fit_sample(s.meas);
    all.push_back(fs);
    if (s.role == hw::SettingRole::kTrain) train.push_back(fs);
  }

  t0 = now_ms();
  const auto fit = model::fit_energy_model(train);
  ms[1] = now_ms() - t0;

  t0 = now_ms();
  util::Rng krng(kKfoldSeed);
  const auto kfold = model::kfold_validation(all, kFolds, krng);
  ms[2] = now_ms() - t0;
  out.kfold_mean = kfold.summary.mean;
  out.kfold_max = kfold.summary.max;

  t0 = now_ms();
  const auto loso = model::leave_one_setting_out(all);
  ms[3] = now_ms() - t0;
  out.loso_mean = loso.summary.mean;
  out.loso_max = loso.summary.max;

  t0 = now_ms();
  util::Rng grng(kGridSeed);
  const auto grid = hw::full_grid();
  const auto measured =
      model::measure_grid(soc, tune_workload(), grid, pm, grng, kGridRepeats);
  const auto tuned = model::autotune(fit.model, measured);
  ms[4] = now_ms() - t0;
  out.model_idx = tuned.model_idx;
  out.oracle_idx = tuned.oracle_idx;
  out.best_idx = tuned.best_idx;

  double total = 0;
  for (std::size_t s = 0; s < std::size(kStages); ++s) {
    run.stage_ms[s].push_back(ms[s]);
    total += ms[s];
  }
  run.pipeline_ms.push_back(total);
  return out;
}

int run_bench_json(const std::string& path, int reps) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;

  const std::vector<int> thread_counts = bench::sweep_thread_counts();

  std::vector<Run> runs;
  Outputs reference;
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
#ifdef _OPENMP
    omp_set_num_threads(thread_counts[t]);
#endif
    Run run;
    run.threads = thread_counts[t];
    std::fprintf(stderr, "bench-json: threads=%d reps=%d\n", run.threads,
                 reps);
    for (int r = 0; r < reps; ++r) {
      const Outputs out = run_pipeline(soc, pm, run);
      if (t == 0 && r == 0)
        reference = out;
      else if (!same_outputs(reference, out))
        run.bitwise_identical = false;
    }
    runs.push_back(std::move(run));
  }

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench-json: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"model_pipeline\",\n";
  out << "  \"campaign_samples\": 1856,\n";
  out << "  \"kfold\": " << kFolds << ",\n";
  out << "  \"grid_settings\": 105,\n";
  out << "  \"grid_repeats\": " << kGridRepeats << ",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const Run& run = runs[r];
    out << "    {\n      \"threads\": " << run.threads
        << ",\n      \"bitwise_identical_vs_serial\": "
        << (run.bitwise_identical ? "true" : "false")
        << ",\n      \"pipeline\": ";
    write_summary(out, summarize(run.pipeline_ms));
    out << ",\n      \"stages\": {\n";
    for (std::size_t s = 0; s < std::size(kStages); ++s) {
      out << "        \"" << kStages[s] << "\": ";
      write_summary(out, summarize(run.stage_ms[s]));
      out << (s + 1 < std::size(kStages) ? ",\n" : "\n");
    }
    out << "      }\n    }" << (r + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "bench-json: wrote %s\n", path.c_str());

  for (const Run& run : runs)
    if (!run.bitwise_identical) {
      std::fprintf(stderr,
                   "bench-json: outputs at %d threads differ from the serial "
                   "run\n",
                   run.threads);
      return 1;
    }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool json_mode = false;
  int reps = 7;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (flag_value(argv[i], "--bench-json", &v)) {
      json_mode = true;
      json_path = v.empty() ? "BENCH_pipeline.json" : v;
    } else if (flag_value(argv[i], "--bench-reps", &v)) {
      reps = std::stoi(v);
    }
    v.clear();
  }
  if (json_mode) return run_bench_json(json_path, reps);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
