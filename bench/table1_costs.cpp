// Reproduces Table I: the 16 frequency/voltage settings (8 training "T" +
// 8 validation "V") with the per-operation energy costs and constant power
// derived from the NNLS fit of the microbenchmark campaign.
//
// Paper reference values at 852/924 MHz: SP 29.0, DP 139.1, Integer 60.0,
// SM 35.4, L2 90.2, Mem 377.0 pJ; constant power 6.8 W.
#include <iostream>

#include "bench/common.hpp"
#include "util/table.hpp"

int main() {
  using namespace eroof;
  const auto platform = bench::make_platform();
  const model::EnergyModel& m = platform.model;

  std::cout << "Table I: frequency/voltage settings and derived energy "
               "costs (fitted by NNLS on "
            << platform.campaign.size() << " samples)\n\n";

  util::Table t({"Type", "Core freq. (MHz)", "Core volt. (mV)",
                 "Mem freq. (MHz)", "Mem volt. (mV)", "SP (pJ)", "DP (pJ)",
                 "Integer (pJ)", "SM (pJ)", "L2 (pJ)", "Mem (pJ)",
                 "Const. power (W)"});
  for (const auto& [role, s] : hw::table1_settings()) {
    const auto pj = [&](hw::OpClass op) {
      return util::Table::num(m.op_energy_j(op, s) * 1e12, 1);
    };
    t.add_row({role == hw::SettingRole::kTrain ? "T" : "V",
               util::Table::num(s.core.freq_mhz, 0),
               util::Table::num(s.core.volt_mv, 0),
               util::Table::num(s.mem.freq_mhz, 0),
               util::Table::num(s.mem.volt_mv, 0),
               pj(hw::OpClass::kSpFlop), pj(hw::OpClass::kDpFlop),
               pj(hw::OpClass::kIntOp), pj(hw::OpClass::kSmAccess),
               pj(hw::OpClass::kL2Access), pj(hw::OpClass::kDramAccess),
               util::Table::num(m.constant_power_w(s), 1)});
  }
  t.print(std::cout);

  std::cout << "\nFitted model constants:\n";
  static const char* names[] = {"c0_sp", "c0_dp", "c0_int",
                                "c0_sm", "c0_l2", "c0_dram"};
  for (std::size_t i = 0; i < model::kNumCoeffs; ++i)
    std::cout << "  " << names[i] << " = " << m.c0[i] * 1e12 << " pJ/V^2\n";
  std::cout << "  c1_proc = " << m.c1_proc << " W/V\n"
            << "  c1_mem  = " << m.c1_mem << " W/V\n"
            << "  P_misc  = " << m.p_misc << " W\n";
  std::cout << "\nPaper reference at 852/924: SP 29.0, DP 139.1, Int 60.0, "
               "SM 35.4, L2 90.2, Mem 377.0 pJ; pi0 6.8 W\n";
  return 0;
}
