// Reproduces Table III: the performance-counter events (E) and metrics (M)
// used to profile the FMM kernel, together with the values they take on a
// representative run (F8: N = 65536, Q = 64) of the modeled GPU execution.
#include <iostream>

#include "bench/common.hpp"
#include "util/table.hpp"

int main() {
  using namespace eroof;
  const auto prof = bench::profile_fmm_input(bench::kFmmInputs[7]);
  const auto counters = prof.total_counters();

  std::cout << "Table III: counter events (E) and metrics (M) used to "
               "profile the FMM kernel\n(values from the modeled execution "
               "of F8: N = 65536, Q = 64)\n\n";
  util::Table t({"Type", "Name", "Value", "Description"},
                {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                 util::Align::kLeft});
  for (const auto& def : hw::counter_table()) {
    t.add_row({def.type == hw::CounterType::kEvent ? "E" : "M",
               std::string(def.name),
               util::Table::num(counters.get(def.name), 0),
               std::string(def.description)});
  }
  t.print(std::cout);

  const auto ops = hw::derive_op_counts(counters);
  std::cout << "\nDerived operation counts (the model's inputs):\n";
  for (std::size_t i = 0; i < hw::kNumOpClasses; ++i)
    std::cout << "  " << hw::kOpClassNames[i] << ": " << ops.n[i] << "\n";
  return 0;
}
