// Reproduces Section II-D's validation numbers:
//   * 2-fold holdout (train on "T" settings, validate on "V"):
//     paper reports mean 2.87%, sd 2.47%, min 0.00%, max 11.94%.
//   * 16-fold cross-validation (leave one *setting* out):
//     paper reports mean 6.56%, sd 3.80%, min 1.60%, max 15.22%.
// A random 16-fold over samples is also shown for comparison.
#include <iostream>

#include "bench/common.hpp"
#include "core/crossval.hpp"
#include "util/table.hpp"

int main() {
  using namespace eroof;
  const auto platform = bench::make_platform();

  const auto train = platform.samples(hw::SettingRole::kTrain);
  const auto val = platform.samples(hw::SettingRole::kValidate);
  const auto all = platform.all_samples();

  const auto holdout = model::holdout_validation(train, val);
  const auto loso = model::leave_one_setting_out(all);
  util::Rng rng(7);
  const auto kfold = model::kfold_validation(all, 16, rng);

  std::cout << "Section II-D: model validation (prediction error vs "
               "PowerMon-measured energy, %)\n\n";
  util::Table t({"Method", "Samples", "Mean", "StdDev", "Min", "Max",
                 "Paper mean", "Paper max"},
                {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight});
  const auto row = [&t](const char* name, const model::ValidationReport& r,
                        const char* pmean, const char* pmax) {
    t.add_row({name, std::to_string(r.errors_pct.size()),
               util::Table::num(r.summary.mean, 2),
               util::Table::num(r.summary.stddev, 2),
               util::Table::num(r.summary.min, 2),
               util::Table::num(r.summary.max, 2), pmean, pmax});
  };
  row("2-fold holdout (T -> V)", holdout, "2.87", "11.94");
  row("16-fold (leave-one-setting-out)", loso, "6.56", "15.22");
  row("16-fold (random folds)", kfold, "-", "-");
  t.print(std::cout);
  return 0;
}
