// Reproduces Figure 7: total FMM energy split into Computation / Data /
// Constant power for every (setting, input) test case, plus the paper's
// contrast with the microbenchmarks.
//
// Paper's observations: constant power is 75-95% of the FMM's total energy
// (vs ~30% for the microbenchmarks), which is why the FMM's most
// energy-efficient DVFS setting is also its fastest.
// Writes fig7_constant.csv next to the binary.
#include <iostream>

#include "bench/common.hpp"
#include "core/profile.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace eroof;
  const auto platform = bench::make_platform();
  const auto& settings = hw::table4_settings();

  std::cout << "Figure 7: FMM energy split into computation / data / "
               "constant power (percent of total)\n\n";
  util::Table t({"Case", "Computation %", "Data %", "Constant %",
                 "Total (J)"},
                {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight});
  util::CsvWriter csv("fig7_constant.csv",
                      {"setting", "input", "computation_pct", "data_pct",
                       "constant_pct", "total_j"});

  std::vector<double> const_shares;
  for (const auto& in : bench::kFmmInputs) {
    const auto prof = bench::profile_fmm_input(in);
    const auto total = prof.total(in.id);
    for (std::size_t si = 0; si < settings.size(); ++si) {
      double time = 0;
      for (const auto& ph : prof.phases)
        time += platform.soc.execution_time(ph.workload, settings[si]);
      const auto bd =
          model::breakdown(platform.model, total.ops, settings[si], time);
      const double comp = 100.0 * bd.computation_j() / bd.total_j();
      const double data = 100.0 * bd.data_j() / bd.total_j();
      const double cons = 100.0 * bd.constant_j / bd.total_j();
      const_shares.push_back(cons);
      const std::string label =
          std::string("S") + std::to_string(si + 1) + "-" + in.id;
      t.add_row({label, util::Table::num(comp, 1), util::Table::num(data, 1),
                 util::Table::num(cons, 1),
                 util::Table::num(bd.total_j(), 3)});
      csv.add_row({"S" + std::to_string(si + 1), in.id,
                   util::Table::num(comp, 3), util::Table::num(data, 3),
                   util::Table::num(cons, 3),
                   util::Table::num(bd.total_j(), 6)});
    }
  }
  t.print(std::cout);

  const auto s = util::summarize(const_shares);
  std::cout << "\nConstant-power share across the 64 cases: mean "
            << util::Table::num(s.mean, 1) << "%, range "
            << util::Table::num(s.min, 1) << "% .. "
            << util::Table::num(s.max, 1)
            << "% (paper: 75-95%).\n";

  // The microbenchmark contrast (Section IV-C).
  const auto sweep = ub::intensity_sweep(ub::BenchClass::kSpFlops);
  std::vector<double> ub_shares;
  const auto s1 = hw::setting(852, 924);
  for (const auto& point : sweep) {
    const double time = platform.soc.execution_time(point.workload, s1);
    const auto bd =
        model::breakdown(platform.model, point.workload.ops, s1, time);
    ub_shares.push_back(100.0 * bd.constant_j / bd.total_j());
  }
  const auto us = util::summarize(ub_shares);
  std::cout << "Microbenchmark (SP sweep at 852/924) constant-power share: "
               "mean "
            << util::Table::num(us.mean, 1) << "%, min "
            << util::Table::num(us.min, 1)
            << "% (paper: ~30%) -- far below the FMM's.\n"
            << "Series exported to fig7_constant.csv.\n";
  return 0;
}
