// Performance of the bundled FFT (1-D and the 3-D M2L grids).
#include <benchmark/benchmark.h>

#include "fft/fft3.hpp"
#include "util/rng.hpp"

namespace {

using eroof::fft::cplx;

std::vector<cplx> random_signal(std::size_t n) {
  eroof::util::Rng rng(1);
  std::vector<cplx> x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return x;
}

void BM_Fft1D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const eroof::fft::Plan plan(n);
  auto x = random_signal(n);
  for (auto _ : state) {
    plan.forward(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft1D)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(12)->Arg(
    127);  // 12 = M2L pencil (p=6); 127 exercises Bluestein

void BM_Fft3D(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const eroof::fft::Plan3 plan(m, m, m);
  auto x = random_signal(plan.size());
  for (auto _ : state) {
    plan.forward(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plan.size()));
}
BENCHMARK(BM_Fft3D)->Arg(8)->Arg(12)->Arg(16);  // the KIFMM grid sizes

void BM_CircularConvolve3(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const eroof::fft::Plan3 plan(m, m, m);
  const auto a = random_signal(plan.size());
  const auto b = random_signal(plan.size());
  for (auto _ : state) {
    auto c = eroof::fft::circular_convolve3(plan, a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_CircularConvolve3)->Arg(8)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
