// Performance of octree construction, 2:1 balancing and list building.
#include <benchmark/benchmark.h>

#include "fmm/lists.hpp"
#include "fmm/pointgen.hpp"
#include "util/rng.hpp"

namespace {

using namespace eroof;

std::vector<fmm::Vec3> points(std::size_t n, bool clustered) {
  util::Rng rng(1);
  return clustered ? fmm::gaussian_clusters(n, 8, 0.03, rng)
                   : fmm::uniform_cube(n, rng);
}

void BM_OctreeBuildUniform(benchmark::State& state) {
  const auto pts = points(static_cast<std::size_t>(state.range(0)), false);
  for (auto _ : state) {
    fmm::Octree tree(pts, {.max_points_per_box = 64});
    benchmark::DoNotOptimize(tree.nodes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_OctreeBuildUniform)->Arg(16384)->Arg(131072)
    ->Unit(benchmark::kMillisecond);

void BM_OctreeBuildClustered(benchmark::State& state) {
  // Clustered inputs stress the 2:1 balance refinement.
  const auto pts = points(static_cast<std::size_t>(state.range(0)), true);
  for (auto _ : state) {
    fmm::Octree tree(pts, {.max_points_per_box = 32});
    benchmark::DoNotOptimize(tree.nodes().data());
  }
}
BENCHMARK(BM_OctreeBuildClustered)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_BuildLists(benchmark::State& state) {
  const auto pts = points(static_cast<std::size_t>(state.range(0)), true);
  const fmm::Octree tree(pts, {.max_points_per_box = 32});
  for (auto _ : state) {
    auto lists = fmm::build_lists(tree);
    benchmark::DoNotOptimize(lists.u.data());
  }
  state.SetLabel(std::to_string(tree.nodes().size()) + " nodes");
}
BENCHMARK(BM_BuildLists)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_MortonFromPoint(benchmark::State& state) {
  util::Rng rng(2);
  double x = rng.uniform();
  double y = rng.uniform();
  double z = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fmm::MortonKey::from_point(10, x, y, z));
  }
}
BENCHMARK(BM_MortonFromPoint);

}  // namespace

BENCHMARK_MAIN();
