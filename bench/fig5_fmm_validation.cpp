// Reproduces Table IV + Figure 5: predicted vs measured FMM energy for all
// 64 test cases (8 DVFS settings S1..S8 x 8 inputs F1..F8).
//
// Paper: mean error 6.17%, sd 4.65%, range 0.09% .. 14.89%.
// Writes fig5_validation.csv next to the binary.
#include <iostream>

#include "bench/common.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace eroof;
  const auto platform = bench::make_platform();
  const auto& settings = hw::table4_settings();

  std::cout << "Table IV: DVFS settings and FMM inputs used for "
               "validation\n\n";
  util::Table tsettings({"ID", "Core Frequency", "Memory Frequency"},
                        {util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight});
  for (std::size_t i = 0; i < settings.size(); ++i)
    tsettings.add_row({"S" + std::to_string(i + 1),
                       util::Table::num(settings[i].core.freq_mhz, 0) + " MHz",
                       util::Table::num(settings[i].mem.freq_mhz, 0) + " MHz"});
  tsettings.print(std::cout);
  std::cout << '\n';
  util::Table tinputs({"ID", "N", "Q"}, {util::Align::kLeft,
                                         util::Align::kRight,
                                         util::Align::kRight});
  for (const auto& in : bench::kFmmInputs)
    tinputs.add_row({in.id, std::to_string(in.n), std::to_string(in.q)});
  tinputs.print(std::cout);

  std::cout << "\nFigure 5: estimated vs measured energy over the 64 test "
               "cases\n\n";
  util::Table t({"Case", "Measured (J)", "Predicted (J)", "Error (%)"},
                {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight});
  util::CsvWriter csv("fig5_validation.csv",
                      {"setting", "input", "measured_j", "predicted_j",
                       "error_pct"});

  util::Rng rng(11);
  std::vector<double> errors;
  for (const auto& in : bench::kFmmInputs) {
    const auto prof = bench::profile_fmm_input(in);
    for (std::size_t si = 0; si < settings.size(); ++si) {
      const auto run = bench::run_fmm_profile(platform, prof, settings[si],
                                              rng);
      const double pred =
          platform.model.predict_energy_j(run.ops, settings[si], run.time_s);
      const double err = util::relative_error_pct(pred, run.energy_j);
      errors.push_back(err);
      const std::string label =
          std::string("S") + std::to_string(si + 1) + "-" + in.id;
      t.add_row({label, util::Table::num(run.energy_j, 3),
                 util::Table::num(pred, 3), util::Table::num(err, 2)});
      csv.add_row({"S" + std::to_string(si + 1), in.id,
                   util::Table::num(run.energy_j, 6),
                   util::Table::num(pred, 6), util::Table::num(err, 4)});
    }
  }
  t.print(std::cout);

  const auto s = util::summarize(errors);
  std::cout << "\nError over all " << errors.size()
            << " cases: mean " << util::Table::num(s.mean, 2) << "%, sd "
            << util::Table::num(s.stddev, 2) << "%, min "
            << util::Table::num(s.min, 2) << "%, max "
            << util::Table::num(s.max, 2) << "%\n"
            << "Paper: mean 6.17%, sd 4.65%, min 0.09%, max 14.89%.\n"
            << "Series exported to fig5_validation.csv.\n";
  return 0;
}
