// Performance of the dense kernels behind the fit (NNLS) and the KIFMM
// operators (SVD-based pseudo-inverse).
#include <benchmark/benchmark.h>

#include "linalg/nnls.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "util/rng.hpp"

namespace {

using namespace eroof;

la::Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  la::Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(0, 1);
  return a;
}

void BM_QrSolve(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto a = random_matrix(m, n, 1);
  util::Rng rng(2);
  std::vector<double> b(m);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    auto x = la::lstsq(a, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_QrSolve)->Args({1856, 9})->Args({200, 50});

void BM_Nnls(benchmark::State& state) {
  // The model fit's shape: 1856 samples x 9 physical coefficients.
  const auto a = random_matrix(1856, 9, 3);
  const std::vector<double> x_true{1, 2, 0, 4, 0.5, 3, 1, 0, 2};
  const auto b = la::matvec(a, x_true);
  for (auto _ : state) {
    auto r = la::nnls(a, b);
    benchmark::DoNotOptimize(r.x.data());
  }
}
BENCHMARK(BM_Nnls);

void BM_SvdPinv(benchmark::State& state) {
  // The KIFMM check-to-equivalent operators: 56^2 (p=4) and 152^2 (p=6).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 4);
  for (auto _ : state) {
    auto p = la::pinv_tikhonov(a, 1e-10);
    benchmark::DoNotOptimize(&p);
  }
}
BENCHMARK(BM_SvdPinv)->Arg(56)->Arg(152)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
