// Time-stepping dynamics trajectory: warm incremental session steps vs cold
// per-step rebuilds (the headline of DESIGN.md §13).
//
// The harness precomputes one Langevin trajectory (positions only -- the
// mover is independent of the FMM output), then prices each step three
// ways over the identical positions:
//
//   warm_step           FmmSession::move_to + evaluate_into: octree refit in
//                       the steady state, everything reused;
//   rebuild_shared_plan fresh FmmEvaluator per step sharing one FmmPlan
//                       (what the PR 7 serving path would pay per request);
//   cold_rebuild        fresh legacy FmmEvaluator per step, operators and
//                       all (what the pre-session dynamics loop paid).
//
// The three potentials are cross-checked bitwise per step at every thread
// count -- the harness exits nonzero on any divergence -- so the speedup
// numbers are for *identical* answers. A separate tuned section runs the
// DynamicsEngine with the amortized schedule search and reports the re-tune
// trigger rate.
//
// --bench-json[=path] writes the machine-readable summary (default
// BENCH_dynamics.json); bench/results/BENCH_dynamics.json is the committed
// headline run (n=16384, q=64, p=4).
#ifdef _OPENMP
#include <omp.h>
#endif

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "dynamics/engine.hpp"
#include "dynamics/mover.hpp"
#include "dynamics/particles.hpp"
#include "fmm/session.hpp"
#include "util/rng.hpp"

namespace {

using namespace eroof;
using bench::flag_value;
using bench::Summary;
using bench::summarize;
using bench::write_summary;
using Clock = std::chrono::steady_clock;

constexpr fmm::Box kDomain{{0.5, 0.5, 0.5}, 0.5};

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Trajectory {
  std::vector<std::vector<fmm::Vec3>> pos;  ///< positions after step s
  std::vector<double> charge;
};

// Weak confinement: with the default gamma the Ornstein--Uhlenbeck drift
// contracts the initially-uniform cloud ~0.5%/step, which keeps changing
// leaf occupancy and forces rebuilds; near-zero gamma keeps the ensemble
// close to its (uniform) stationary distribution, the steady state this
// harness is pricing.
constexpr double kGamma = 0.05;

/// One trajectory, shared by every row: step s's positions are a pure
/// function of (seed, s), so warm and cold price the same physics.
Trajectory make_trajectory(std::size_t n, int steps, double sigma,
                           std::uint64_t seed) {
  auto ps = dynamics::ParticleSystem::random(n, kDomain, seed);
  dynamics::LangevinMover mover(seed + 1, {.gamma = kGamma, .sigma = sigma});
  Trajectory tr;
  tr.charge = ps.charge;
  tr.pos.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    mover.advance(ps);
    tr.pos.push_back(ps.pos);
  }
  return tr;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct Row {
  int threads = 0;
  Summary warm, shared_plan, cold;
  std::uint64_t refits = 0, rebuilds = 0;
  bool bitwise_identical = true;
};

Row measure(const Trajectory& tr, std::uint32_t q, int p,
            fmm::FmmExecutor exec, int threads) {
#ifdef _OPENMP
  omp_set_num_threads(threads);
#endif
  const auto kernel = std::make_shared<const fmm::LaplaceKernel>();
  const fmm::Octree::Params tree{.max_points_per_box = q, .domain = kDomain};
  const fmm::FmmConfig fcfg{.p = p};

  Row row;
  row.threads = threads;

  fmm::FmmSession session(kernel, tr.pos.front(), {tree, fcfg, exec});
  std::vector<double> warm_phi(tr.charge.size());
  // Step 0 is the cold start (arena sizing, DAG build); price it separately
  // by evaluating once before the timed loop, exactly like a real run.
  session.evaluate_into(tr.charge, warm_phi);

  std::vector<double> warm_ms, shared_ms, cold_ms;
  for (const auto& pos : tr.pos) {
    const auto t0 = Clock::now();
    session.move_to(pos);
    session.evaluate_into(tr.charge, warm_phi);
    warm_ms.push_back(ms_since(t0));

    const auto t1 = Clock::now();
    fmm::FmmEvaluator shared_ev(session.plan(), pos, tree);
    shared_ev.set_executor(exec);
    const auto shared_phi = shared_ev.evaluate(tr.charge);
    shared_ms.push_back(ms_since(t1));

    const auto t2 = Clock::now();
    fmm::FmmEvaluator cold_ev(*kernel, pos, tree, fcfg);
    cold_ev.set_executor(exec);
    const auto cold_phi = cold_ev.evaluate(tr.charge);
    cold_ms.push_back(ms_since(t2));

    std::vector<double> warm_copy(warm_phi.begin(), warm_phi.end());
    row.bitwise_identical &= bits_equal(warm_copy, shared_phi);
    row.bitwise_identical &= bits_equal(warm_copy, cold_phi);
  }
  row.warm = summarize(warm_ms);
  row.shared_plan = summarize(shared_ms);
  row.cold = summarize(cold_ms);
  row.refits = session.stats().refits;
  row.rebuilds = session.stats().rebuilds;
  return row;
}

struct TunedSection {
  int steps = 0;
  std::uint64_t tunes = 0, refits = 0, rebuilds = 0;
  double retune_rate = 0;
  int schedule_switches = 0;
  double pred_energy_j = 0;
};

/// The amortized-tuning story: a DynamicsEngine run with the DVFS schedule
/// search gated by the ScheduleReuse drift monitor.
TunedSection run_tuned(std::size_t n, std::uint32_t q, int p, int steps,
                       double sigma, std::uint64_t seed) {
  const auto kernel = std::make_shared<const fmm::LaplaceKernel>();
  dynamics::DynamicsEngine::Config cfg;
  cfg.session.tree = {.max_points_per_box = q, .domain = kDomain};
  cfg.session.fmm = {.p = p};
  cfg.tuning.context = dynamics::TuneContext::tegra_default();
  dynamics::DynamicsEngine engine(
      kernel, dynamics::ParticleSystem::random(n, kDomain, seed), cfg);
  dynamics::LangevinMover mover(seed + 1, {.gamma = kGamma, .sigma = sigma});
  for (int s = 0; s < steps; ++s) engine.step(mover);

  TunedSection t;
  t.steps = steps;
  t.tunes = engine.stats().tunes;
  t.refits = engine.session().stats().refits;
  t.rebuilds = engine.session().stats().rebuilds;
  t.retune_rate = static_cast<double>(t.tunes) / static_cast<double>(steps);
  if (const auto* sched = engine.schedule()) {
    t.schedule_switches = sched->switches;
    t.pred_energy_j = sched->pred_energy_j;
  }
  return t;
}

int run_bench_json(const std::string& path, std::size_t n, std::uint32_t q,
                   int p, int steps, double sigma,
                   const std::string& executor) {
  const fmm::FmmExecutor exec =
      executor == "dag" ? fmm::FmmExecutor::kDag : fmm::FmmExecutor::kPhases;
  const Trajectory tr = make_trajectory(n, steps, sigma, 7);

  std::vector<Row> rows;
  for (const int t : bench::sweep_thread_counts()) {
    std::fprintf(stderr,
                 "bench-json: executor=%s n=%zu q=%u p=%d steps=%d sigma=%g "
                 "threads=%d\n",
                 executor.c_str(), n, q, p, steps, sigma, t);
    rows.push_back(measure(tr, q, p, exec, t));
  }

  // The tuned section is about trigger rates, not wall time; run it at a
  // modest size so the GPU-profile replay stays cheap.
  const std::size_t tuned_n = std::min<std::size_t>(n, 8192);
  std::fprintf(stderr, "bench-json: tuned section n=%zu steps=%d\n", tuned_n,
               steps);
  const TunedSection tuned = run_tuned(tuned_n, q, p, steps, sigma, 7);

  bool all_identical = true;
  for (const Row& r : rows) all_identical &= r.bitwise_identical;

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench-json: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"fmm_dynamics\",\n";
  out << "  \"executor\": \"" << executor << "\",\n";
  out << "  \"kernel\": \"laplace\",\n";
  out << "  \"n\": " << n << ",\n";
  out << "  \"q\": " << q << ",\n";
  out << "  \"p\": " << p << ",\n";
  out << "  \"steps\": " << steps << ",\n";
  out << "  \"sigma\": " << sigma << ",\n";
  out << "  \"bitwise_identical\": " << (all_identical ? "true" : "false")
      << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Row& row = rows[r];
    out << "    {\n      \"threads\": " << row.threads << ",\n";
    out << "      \"warm_step\": ";
    write_summary(out, row.warm);
    out << ",\n      \"rebuild_shared_plan\": ";
    write_summary(out, row.shared_plan);
    out << ",\n      \"cold_rebuild\": ";
    write_summary(out, row.cold);
    out << ",\n      \"warm_vs_cold_speedup\": "
        << (row.warm.median > 0 ? row.cold.median / row.warm.median : 0)
        << ",\n";
    out << "      \"refits\": " << row.refits
        << ", \"rebuilds\": " << row.rebuilds << "\n    }"
        << (r + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ],\n";
  out << "  \"tuned\": {\n";
  out << "    \"n\": " << tuned_n << ", \"steps\": " << tuned.steps << ",\n";
  out << "    \"tunes\": " << tuned.tunes
      << ", \"retune_rate\": " << tuned.retune_rate << ",\n";
  out << "    \"refits\": " << tuned.refits
      << ", \"rebuilds\": " << tuned.rebuilds << ",\n";
  out << "    \"schedule_switches\": " << tuned.schedule_switches
      << ", \"pred_energy_j\": " << tuned.pred_energy_j << "\n";
  out << "  }\n}\n";
  std::fprintf(stderr, "bench-json: wrote %s\n", path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "bench-json: FAIL -- warm/shared/cold potentials diverged\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_dynamics.json";
  std::size_t n = 16384;
  std::uint32_t q = 64;
  int p = 4;
  int steps = 16;
  double sigma = 0.008;
  std::string executor = "phases";
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (flag_value(argv[i], "--bench-json", &v)) {
      if (!v.empty()) json_path = v;
    } else if (flag_value(argv[i], "--bench-n", &v)) {
      n = static_cast<std::size_t>(std::stoull(v));
    } else if (flag_value(argv[i], "--bench-q", &v)) {
      q = static_cast<std::uint32_t>(std::stoul(v));
    } else if (flag_value(argv[i], "--bench-p", &v)) {
      p = std::stoi(v);
    } else if (flag_value(argv[i], "--bench-steps", &v)) {
      steps = std::stoi(v);
    } else if (flag_value(argv[i], "--bench-sigma", &v)) {
      sigma = std::stod(v);
    } else if (flag_value(argv[i], "--executor", &v)) {
      if (v != "phases" && v != "dag") {
        std::fprintf(stderr, "--executor must be 'phases' or 'dag'\n");
        return 2;
      }
      executor = v;
    }
    v.clear();
  }
  return run_bench_json(json_path, n, q, p, steps, sigma, executor);
}
