// Reproduces Figure 4: breakdown of the FMM kernel into component
// instructions (SP / DP / integer) and data accesses by memory level
// (SM / L1 / L2 / DRAM), for each Table IV input F1..F8.
//
// Paper's observations: integer instructions are ~60% of computation
// instructions for all inputs; DRAM accesses are only ~13% of all data
// accesses. Counts are independent of the DVFS setting.
//
// Writes fig4_instructions.csv / fig4_data.csv next to the binary. With
// `--trace=out.json`, the per-input profiling pipeline is recorded to a
// chrome://tracing file whose counter registry holds the modeled op counts
// ("profile.<phase>.<class>") the figure is computed from.
#include <iostream>

#include "bench/common.hpp"
#include "trace/export.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace eroof;
  using hw::OpClass;
  trace::CliTracer tracer(argc, argv);

  std::cout << "Figure 4: FMM instruction and data-access breakdown per "
               "input (percent)\n\n";
  util::Table ti({"Input", "N", "Q", "SP %", "DP %", "Integer %"},
                 {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                  util::Align::kRight, util::Align::kRight,
                  util::Align::kRight});
  util::Table td({"Input", "SM %", "L1 %", "L2 %", "DRAM %"},
                 {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                  util::Align::kRight, util::Align::kRight});
  util::CsvWriter ci("fig4_instructions.csv",
                     {"input", "n", "q", "sp_pct", "dp_pct", "int_pct"});
  util::CsvWriter cd("fig4_data.csv",
                     {"input", "sm_pct", "l1_pct", "l2_pct", "dram_pct"});

  for (const auto& in : bench::kFmmInputs) {
    trace::ScopedSpan span(in.id, "bench.input");
    const auto prof = bench::profile_fmm_input(in);
    const auto total = prof.total(in.id);
    if (span.active()) {
      span.arg("n", static_cast<double>(in.n));
      span.arg("q", static_cast<double>(in.q));
    }
    const auto& o = total.ops;

    const double insts = o.compute_ops();
    const double sp = 100.0 * o[OpClass::kSpFlop] / insts;
    const double dp = 100.0 * o[OpClass::kDpFlop] / insts;
    const double ints = 100.0 * o[OpClass::kIntOp] / insts;
    ti.add_row({in.id, std::to_string(in.n), std::to_string(in.q),
                util::Table::num(sp, 1), util::Table::num(dp, 1),
                util::Table::num(ints, 1)});
    ci.add_row({in.id, std::to_string(in.n), std::to_string(in.q),
                util::Table::num(sp, 3), util::Table::num(dp, 3),
                util::Table::num(ints, 3)});

    const double mem = o.memory_ops();
    const double sm = 100.0 * o[OpClass::kSmAccess] / mem;
    const double l1 = 100.0 * o[OpClass::kL1Access] / mem;
    const double l2 = 100.0 * o[OpClass::kL2Access] / mem;
    const double dram = 100.0 * o[OpClass::kDramAccess] / mem;
    td.add_row({in.id, util::Table::num(sm, 1), util::Table::num(l1, 1),
                util::Table::num(l2, 1), util::Table::num(dram, 1)});
    cd.add_row({in.id, util::Table::num(sm, 3), util::Table::num(l1, 3),
                util::Table::num(l2, 3), util::Table::num(dram, 3)});
  }

  std::cout << "(a) Computation instructions:\n";
  ti.print(std::cout);
  std::cout << "\n(b) Data accesses by memory level:\n";
  td.print(std::cout);
  std::cout << "\nPaper: integer ~60% of instructions for all inputs; DRAM "
               "~13% of data accesses.\nSeries exported to "
               "fig4_instructions.csv / fig4_data.csv.\n";
  return 0;
}
