// Performance of the per-phase DVFS scheduler (core/schedule): the
// per-(phase, setting) prediction grid, the chain DP, and the Pareto sweep,
// over a real KIFMM profile and the 105-setting grid.
//
// Two modes:
//   * default: the google-benchmark suite below.
//   * --bench-json[=path]: a trajectory harness that times each scheduler
//     stage at several OpenMP thread counts, reduces to median/p10/p90,
//     checks the prediction grid / schedule picks / Pareto frontier are
//     bitwise identical to the 1-thread run, and writes one JSON file
//     (default BENCH_schedule.json). CI runs this per commit; nonzero exit
//     if any thread count diverges.
#include <benchmark/benchmark.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/schedule.hpp"

namespace {

using namespace eroof;
using bench::flag_value;
using bench::Summary;
using bench::summarize;
using bench::write_summary;

constexpr double kWeights[] = {0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0};

struct Setup {
  bench::Platform platform;
  std::vector<hw::Workload> phases;
  std::vector<hw::DvfsSetting> grid;
  hw::DvfsTransitionModel transitions{100e-6, 50e-6};
};

Setup make_setup(std::size_t n, std::uint32_t q) {
  Setup s{bench::make_platform(), {}, hw::full_grid()};
  const auto prof = bench::profile_fmm_input({"bench", n, q});
  for (const auto& ph : prof.phases) s.phases.push_back(ph.workload);
  return s;
}

// ---------------------------------------------------------------------------
// google-benchmark suite
// ---------------------------------------------------------------------------

void BM_PredictPhaseGrid(benchmark::State& state) {
  const Setup s = make_setup(16384, 64);
  for (auto _ : state) {
    auto pred = model::predict_phase_grid(s.platform.model, s.platform.soc,
                                          s.phases, s.grid);
    benchmark::DoNotOptimize(pred.energy_j.data());
  }
}
BENCHMARK(BM_PredictPhaseGrid)->Unit(benchmark::kMicrosecond);

void BM_ScheduleChainDp(benchmark::State& state) {
  const Setup s = make_setup(16384, 64);
  const auto pred = model::predict_phase_grid(s.platform.model, s.platform.soc,
                                              s.phases, s.grid);
  for (auto _ : state) {
    auto sched = model::schedule_phases(pred, s.transitions);
    benchmark::DoNotOptimize(sched.pick.data());
  }
}
BENCHMARK(BM_ScheduleChainDp)->Unit(benchmark::kMicrosecond);

void BM_ParetoFrontier(benchmark::State& state) {
  const Setup s = make_setup(16384, 64);
  const auto pred = model::predict_phase_grid(s.platform.model, s.platform.soc,
                                              s.phases, s.grid);
  for (auto _ : state) {
    auto frontier = model::pareto_frontier(pred, s.transitions, kWeights);
    benchmark::DoNotOptimize(frontier.data());
  }
}
BENCHMARK(BM_ParetoFrontier)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// --bench-json trajectory harness
// ---------------------------------------------------------------------------

constexpr const char* kStages[] = {"predict", "dp", "pareto"};

struct Run {
  int threads = 0;
  bool bitwise_identical = true;
  std::vector<std::vector<double>> stage_ms{std::size(kStages)};
  std::vector<double> total_ms;
};

/// The values whose bitwise stability across thread counts is asserted.
struct Outputs {
  std::vector<double> pred_values;
  std::vector<std::size_t> picks;
  std::vector<double> pareto_values;
};

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!bit_equal(a[i], b[i])) return false;
  return true;
}

bool same_outputs(const Outputs& a, const Outputs& b) {
  return bit_equal(a.pred_values, b.pred_values) && a.picks == b.picks &&
         bit_equal(a.pareto_values, b.pareto_values);
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Outputs run_scheduler(const Setup& s, Run& run) {
  Outputs out;
  std::array<double, std::size(kStages)> ms{};

  double t0 = now_ms();
  const auto pred = model::predict_phase_grid(s.platform.model, s.platform.soc,
                                              s.phases, s.grid);
  ms[0] = now_ms() - t0;
  out.pred_values = pred.time_s;
  out.pred_values.insert(out.pred_values.end(), pred.energy_j.begin(),
                         pred.energy_j.end());

  t0 = now_ms();
  const auto sched = model::schedule_phases(pred, s.transitions);
  const auto uniform = model::best_uniform_schedule(pred);
  ms[1] = now_ms() - t0;
  out.picks = sched.pick;
  out.picks.insert(out.picks.end(), uniform.pick.begin(), uniform.pick.end());

  t0 = now_ms();
  const auto frontier = model::pareto_frontier(pred, s.transitions, kWeights);
  ms[2] = now_ms() - t0;
  for (const auto& pt : frontier) {
    out.pareto_values.push_back(pt.schedule.pred_time_s);
    out.pareto_values.push_back(pt.schedule.pred_energy_j);
    out.picks.insert(out.picks.end(), pt.schedule.pick.begin(),
                     pt.schedule.pick.end());
  }

  double total = 0;
  for (std::size_t i = 0; i < std::size(kStages); ++i) {
    run.stage_ms[i].push_back(ms[i]);
    total += ms[i];
  }
  run.total_ms.push_back(total);
  return out;
}

int run_bench_json(const std::string& path, int reps, std::size_t n,
                   std::uint32_t q) {
  const Setup setup = make_setup(n, q);

  const std::vector<int> thread_counts = bench::sweep_thread_counts();

  std::vector<Run> runs;
  Outputs reference;
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
#ifdef _OPENMP
    omp_set_num_threads(thread_counts[t]);
#endif
    Run run;
    run.threads = thread_counts[t];
    std::fprintf(stderr, "bench-json: threads=%d reps=%d\n", run.threads, reps);
    for (int r = 0; r < reps; ++r) {
      const Outputs out = run_scheduler(setup, run);
      if (t == 0 && r == 0)
        reference = out;
      else if (!same_outputs(reference, out))
        run.bitwise_identical = false;
    }
    runs.push_back(std::move(run));
  }

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench-json: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"phase_schedule\",\n";
  out << "  \"n_points\": " << n << ",\n";
  out << "  \"max_points_per_box\": " << q << ",\n";
  out << "  \"phases\": " << setup.phases.size() << ",\n";
  out << "  \"grid_settings\": " << setup.grid.size() << ",\n";
  out << "  \"pareto_weights\": " << std::size(kWeights) << ",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const Run& run = runs[r];
    out << "    {\n      \"threads\": " << run.threads
        << ",\n      \"bitwise_identical_vs_serial\": "
        << (run.bitwise_identical ? "true" : "false")
        << ",\n      \"total\": ";
    write_summary(out, summarize(run.total_ms));
    out << ",\n      \"stages\": {\n";
    for (std::size_t s = 0; s < std::size(kStages); ++s) {
      out << "        \"" << kStages[s] << "\": ";
      write_summary(out, summarize(run.stage_ms[s]));
      out << (s + 1 < std::size(kStages) ? ",\n" : "\n");
    }
    out << "      }\n    }" << (r + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "bench-json: wrote %s\n", path.c_str());

  for (const Run& run : runs)
    if (!run.bitwise_identical) {
      std::fprintf(stderr,
                   "bench-json: scheduler outputs at %d threads differ from "
                   "the serial run\n",
                   run.threads);
      return 1;
    }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool json_mode = false;
  int reps = 7;
  std::size_t n = 8192;
  std::uint32_t q = 64;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (flag_value(argv[i], "--bench-json", &v)) {
      json_mode = true;
      json_path = v.empty() ? "BENCH_schedule.json" : v;
    } else if (flag_value(argv[i], "--bench-reps", &v)) {
      reps = std::stoi(v);
    } else if (flag_value(argv[i], "--bench-n", &v)) {
      n = std::stoul(v);
    } else if (flag_value(argv[i], "--bench-q", &v)) {
      q = static_cast<std::uint32_t>(std::stoul(v));
    }
    v.clear();
  }
  if (json_mode) return run_bench_json(json_path, reps, n, q);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
