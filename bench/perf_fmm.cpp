// Performance of the host FMM: setup, evaluation across N / Q / p, and
// the O(N) vs O(N^2) crossover against the direct sum.
#include <benchmark/benchmark.h>

#include "fmm/direct.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "util/rng.hpp"

namespace {

using namespace eroof;

void BM_FmmEvaluate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto q = static_cast<std::uint32_t>(state.range(1));
  util::Rng rng(1);
  const auto pts = fmm::uniform_cube(n, rng);
  const auto dens = fmm::random_densities(n, rng);
  static const fmm::LaplaceKernel kernel;
  fmm::FmmEvaluator ev(kernel, pts, {.max_points_per_box = q},
                       fmm::FmmConfig{.p = 4});
  for (auto _ : state) {
    auto phi = ev.evaluate(dens);
    benchmark::DoNotOptimize(phi.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FmmEvaluate)
    ->Args({4096, 64})
    ->Args({16384, 64})
    ->Args({16384, 256})
    ->Unit(benchmark::kMillisecond);

void BM_DirectSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const auto pts = fmm::uniform_cube(n, rng);
  const auto dens = fmm::random_densities(n, rng);
  static const fmm::LaplaceKernel kernel;
  for (auto _ : state) {
    auto phi = fmm::direct_sum(kernel, pts, pts, dens);
    benchmark::DoNotOptimize(phi.data());
  }
}
BENCHMARK(BM_DirectSum)->Arg(4096)->Arg(16384)->Unit(benchmark::kMillisecond);

void BM_FmmSetup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  const auto pts = fmm::uniform_cube(n, rng);
  static const fmm::LaplaceKernel kernel;
  for (auto _ : state) {
    fmm::FmmEvaluator ev(kernel, pts, {.max_points_per_box = 64},
                         fmm::FmmConfig{.p = 4});
    benchmark::DoNotOptimize(&ev);
  }
}
BENCHMARK(BM_FmmSetup)->Arg(16384)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
