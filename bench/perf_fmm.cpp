// Performance of the host FMM: setup, evaluation across N / Q / p, and
// the O(N) vs O(N^2) crossover against the direct sum.
//
// Two modes:
//   * default: the google-benchmark suite below.
//   * --bench-json[=path]: a benchmark-trajectory harness that times
//     repeated evaluate() calls (with a tracing session capturing per-phase
//     span times), reduces them to median/p10/p90, and writes one
//     machine-readable JSON file (default BENCH_fmm.json). CI runs this on
//     every build so evaluate()-time regressions show up as a data point,
//     not an anecdote.
#include <benchmark/benchmark.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "fmm/direct.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace {

using namespace eroof;
using bench::flag_value;
using bench::Summary;
using bench::summarize;
using bench::write_summary;

void BM_FmmEvaluate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto q = static_cast<std::uint32_t>(state.range(1));
  util::Rng rng(1);
  const auto pts = fmm::uniform_cube(n, rng);
  const auto dens = fmm::random_densities(n, rng);
  static const fmm::LaplaceKernel kernel;
  fmm::FmmEvaluator ev(kernel, pts, {.max_points_per_box = q},
                       fmm::FmmConfig{.p = 4});
  for (auto _ : state) {
    auto phi = ev.evaluate(dens);
    benchmark::DoNotOptimize(phi.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FmmEvaluate)
    ->Args({4096, 64})
    ->Args({16384, 64})
    ->Args({16384, 256})
    ->Unit(benchmark::kMillisecond);

void BM_FmmEvaluateDag(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto q = static_cast<std::uint32_t>(state.range(1));
  util::Rng rng(1);
  const auto pts = fmm::uniform_cube(n, rng);
  const auto dens = fmm::random_densities(n, rng);
  static const fmm::LaplaceKernel kernel;
  fmm::FmmEvaluator ev(kernel, pts, {.max_points_per_box = q},
                       fmm::FmmConfig{.p = 4});
  ev.set_executor(fmm::FmmExecutor::kDag);
  for (auto _ : state) {
    auto phi = ev.evaluate(dens);
    benchmark::DoNotOptimize(phi.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FmmEvaluateDag)
    ->Args({4096, 64})
    ->Args({16384, 64})
    ->Args({16384, 256})
    ->Unit(benchmark::kMillisecond);

void BM_DirectSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const auto pts = fmm::uniform_cube(n, rng);
  const auto dens = fmm::random_densities(n, rng);
  static const fmm::LaplaceKernel kernel;
  for (auto _ : state) {
    auto phi = fmm::direct_sum(kernel, pts, pts, dens);
    benchmark::DoNotOptimize(phi.data());
  }
}
BENCHMARK(BM_DirectSum)->Arg(4096)->Arg(16384)->Unit(benchmark::kMillisecond);

void BM_FmmSetup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  const auto pts = fmm::uniform_cube(n, rng);
  static const fmm::LaplaceKernel kernel;
  for (auto _ : state) {
    fmm::FmmEvaluator ev(kernel, pts, {.max_points_per_box = 64},
                         fmm::FmmConfig{.p = 4});
    benchmark::DoNotOptimize(&ev);
  }
}
BENCHMARK(BM_FmmSetup)->Arg(16384)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --bench-json trajectory harness
// ---------------------------------------------------------------------------

constexpr const char* kPhases[] = {"UP", "V", "X", "DOWN", "U", "W"};

/// One measured configuration: repeated traced evaluations at a fixed
/// thread count.
struct Run {
  int threads = 0;
  Summary wall;
  std::vector<std::pair<std::string, Summary>> phases;
};

Run measure(fmm::FmmEvaluator& ev, std::span<const double> dens, int threads,
            int reps) {
#ifdef _OPENMP
  omp_set_num_threads(threads);
#endif
  std::vector<double> wall_ms;
  std::vector<std::vector<double>> phase_ms(std::size(kPhases));
  (void)ev.evaluate(dens);  // warm-up: sizes workspaces, faults arenas in
  for (int r = 0; r < reps; ++r) {
    trace::TraceSession session;
    {
      trace::SessionGuard guard(session);
      auto phi = ev.evaluate(dens);
      benchmark::DoNotOptimize(phi.data());
    }
    for (const auto& span : session.spans()) {
      const double ms = static_cast<double>(span.dur_us) / 1000.0;
      if (span.category == "fmm" && span.name == "evaluate")
        wall_ms.push_back(ms);
      if (span.category != "fmm.phase") continue;
      for (std::size_t p = 0; p < std::size(kPhases); ++p)
        if (span.name == kPhases[p]) phase_ms[p].push_back(ms);
    }
  }
  Run run;
  run.threads = threads;
  run.wall = summarize(wall_ms);
  for (std::size_t p = 0; p < std::size(kPhases); ++p)
    run.phases.emplace_back(kPhases[p], summarize(phase_ms[p]));
  return run;
}

int run_bench_json(const std::string& path, std::size_t n, std::uint32_t q,
                   int p, int reps, const std::string& executor) {
  util::Rng rng(1);
  const auto pts = fmm::uniform_cube(n, rng);
  const auto dens = fmm::random_densities(n, rng);
  const fmm::LaplaceKernel kernel;
  fmm::FmmEvaluator ev(kernel, pts, {.max_points_per_box = q},
                       fmm::FmmConfig{.p = p});
  if (executor == "dag") ev.set_executor(fmm::FmmExecutor::kDag);

  std::vector<int> thread_counts{1};
#ifdef _OPENMP
  if (omp_get_max_threads() > 1) thread_counts.push_back(omp_get_max_threads());
#endif

  std::vector<Run> runs;
  for (const int t : thread_counts) {
    std::fprintf(stderr,
                 "bench-json: executor=%s n=%zu q=%u p=%d threads=%d reps=%d\n",
                 executor.c_str(), n, q, p, t, reps);
    runs.push_back(measure(ev, dens, t, reps));
  }

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench-json: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"fmm_evaluate\",\n";
  out << "  \"executor\": \"" << executor << "\",\n";
  out << "  \"kernel\": \"" << kernel.name() << "\",\n";
  out << "  \"n\": " << n << ",\n";
  out << "  \"q\": " << q << ",\n";
  out << "  \"p\": " << p << ",\n";
  out << "  \"tree_depth\": " << ev.tree().max_depth() << ",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const Run& run = runs[r];
    out << "    {\n      \"threads\": " << run.threads
        << ",\n      \"evaluate\": ";
    write_summary(out, run.wall);
    out << ",\n      \"phases\": {\n";
    for (std::size_t ph = 0; ph < run.phases.size(); ++ph) {
      out << "        \"" << run.phases[ph].first << "\": ";
      write_summary(out, run.phases[ph].second);
      out << (ph + 1 < run.phases.size() ? ",\n" : "\n");
    }
    out << "      }\n    }" << (r + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "bench-json: wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool json_mode = false;
  std::size_t n = 16384;
  std::uint32_t q = 64;
  int p = 4;
  int reps = 9;
  std::string executor = "phases";
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (flag_value(argv[i], "--bench-json", &v)) {
      json_mode = true;
      json_path = v.empty() ? "BENCH_fmm.json" : v;
    } else if (flag_value(argv[i], "--bench-n", &v)) {
      n = static_cast<std::size_t>(std::stoull(v));
    } else if (flag_value(argv[i], "--bench-q", &v)) {
      q = static_cast<std::uint32_t>(std::stoul(v));
    } else if (flag_value(argv[i], "--bench-p", &v)) {
      p = std::stoi(v);
    } else if (flag_value(argv[i], "--bench-reps", &v)) {
      reps = std::stoi(v);
    } else if (flag_value(argv[i], "--executor", &v)) {
      if (v != "phases" && v != "dag") {
        std::fprintf(stderr, "--executor must be 'phases' or 'dag'\n");
        return 2;
      }
      executor = v;
    }
    v.clear();
  }
  if (json_mode) return run_bench_json(json_path, n, q, p, reps, executor);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
