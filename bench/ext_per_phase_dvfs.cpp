// Extension: per-phase DVFS scheduling of the FMM.
//
// The paper's phase analysis (Section IV) shows U is compute-bound and V is
// memory-bound -- which invites scheduling a different (f_core, f_mem) pair
// per phase instead of one global setting. This bench uses the fitted
// model + time model to pick, per phase, the energy-minimal setting (with a
// configurable DVFS transition penalty), and compares:
//
//   (a) best single global setting (model-chosen),
//   (b) per-phase settings,
//   (c) race-to-halt (max clocks everywhere),
//
// on true (simulator ground-truth) energy. Constant power dominates the
// FMM's energy, but pi_0 itself is voltage-dependent (eq. 8) -- so phases
// that leave one domain idle can still save meaningfully by flooring it.
#include <iostream>

#include "bench/common.hpp"
#include "core/timemodel.hpp"
#include "util/table.hpp"

namespace {

constexpr double kDvfsTransitionS = 100e-6;  // per frequency change

}  // namespace

int main() {
  using namespace eroof;
  const auto platform = bench::make_platform();
  const auto time_model = model::fit_time_model(platform.all_samples()).model;
  const auto grid = hw::full_grid();
  const auto race = hw::setting(852, 924);

  std::cout << "Extension: per-phase DVFS scheduling of the FMM (true "
               "energies from the platform ground truth; "
            << kDvfsTransitionS * 1e6 << " us per frequency change)\n\n";
  util::Table t({"Input", "Global best (J)", "Per-phase (J)", "Saving %",
                 "Race-to-halt (J)", "Per-phase schedule (U | V)"},
                {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kLeft});

  for (const auto& in : bench::kFmmInputs) {
    const auto prof = bench::profile_fmm_input(in);

    // True energy of running every phase at one setting.
    const auto total_true = [&](const hw::DvfsSetting& s) {
      double e = 0;
      for (const auto& ph : prof.phases) {
        const double time = platform.soc.execution_time(ph.workload, s);
        e += platform.soc.true_energy_j(ph.workload, s, time);
      }
      return e;
    };

    // (a) Global: model-predicted best single setting.
    double best_pred = 1e300;
    const hw::DvfsSetting* global = &grid[0];
    for (const auto& s : grid) {
      double pred = 0;
      for (const auto& ph : prof.phases) {
        const double that =
            time_model.predict_time_s(ph.workload.ops, s);
        if (that <= 0) continue;
        pred += platform.model.predict_energy_j(ph.workload.ops, s, that);
      }
      if (pred < best_pred) {
        best_pred = pred;
        global = &s;
      }
    }
    const double e_global = total_true(*global);

    // (b) Per phase: model-predicted best setting per phase + transition
    // penalty (paid at constant power of the entered setting).
    double e_phase = 0;
    std::string u_label;
    std::string v_label;
    const hw::DvfsSetting* prev = nullptr;
    for (const auto& ph : prof.phases) {
      if (ph.workload.ops.compute_ops() == 0) continue;  // empty W/X
      double best = 1e300;
      const hw::DvfsSetting* pick = &grid[0];
      for (const auto& s : grid) {
        const double that = time_model.predict_time_s(ph.workload.ops, s);
        if (that <= 0) continue;
        const double pred =
            platform.model.predict_energy_j(ph.workload.ops, s, that);
        if (pred < best) {
          best = pred;
          pick = &s;
        }
      }
      const double time = platform.soc.execution_time(ph.workload, *pick);
      e_phase += platform.soc.true_energy_j(ph.workload, *pick, time);
      if (prev && prev->label() != pick->label())
        e_phase += kDvfsTransitionS *
                   platform.soc.true_constant_power_w(*pick);
      prev = pick;
      if (ph.name == "U") u_label = pick->label();
      if (ph.name == "V") v_label = pick->label();
    }

    const double e_race = total_true(race);
    t.add_row({in.id, util::Table::num(e_global, 3),
               util::Table::num(e_phase, 3),
               util::Table::num(100.0 * (e_global - e_phase) / e_global, 2),
               util::Table::num(e_race, 3), u_label + " | " + v_label});
  }
  t.print(std::cout);

  std::cout << "\nReading: per-phase scheduling drops the *idle* domain's "
               "voltage -- U runs with the memory clock floored, V with the "
               "core clock lowered -- which trims the voltage-dependent "
               "part of the constant power itself (eq. 8). That is worth "
               "7-14% here even though constant power dominates total "
               "energy: a follow-on the paper's single-setting analysis "
               "(Section IV-C) leaves on the table.\n";
  return 0;
}
