// Reproduces Figure 6: the FMM kernel's energy broken down by operation
// type (instructions and memory levels) for each input F1..F8, with both
// clocks at maximum frequency (852 / 924 MHz).
//
// Paper's observations: integer instructions, ~60% of the instruction
// stream, account for a minor share of total energy; DRAM serves ~13% of
// accesses but costs up to 50% of data-access energy; L2 30-40%; L1 10-20%.
// Writes fig6_energy.csv next to the binary.
#include <iostream>

#include "bench/common.hpp"
#include "core/profile.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace eroof;
  using hw::OpClass;
  const auto platform = bench::make_platform();
  const auto s1 = hw::setting(852, 924);

  std::cout << "Figure 6: FMM energy by operation type at maximum "
               "frequency (852/924 MHz)\n\n";
  util::Table t({"Input", "SP %", "DP %", "Integer %", "SM %", "L1 %",
                 "L2 %", "DRAM %", "Dynamic (J)"},
                {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight});
  util::CsvWriter csv("fig6_energy.csv",
                      {"input", "sp_pct", "dp_pct", "int_pct", "sm_pct",
                       "l1_pct", "l2_pct", "dram_pct", "dynamic_j"});

  std::vector<double> int_comp_shares;
  std::vector<double> dram_data_shares;
  std::vector<double> l2_data_shares;
  for (const auto& in : bench::kFmmInputs) {
    const auto prof = bench::profile_fmm_input(in);
    const auto total = prof.total(in.id);
    double time = 0;
    for (const auto& ph : prof.phases)
      time += platform.soc.execution_time(ph.workload, s1);
    const auto bd = model::breakdown(platform.model, total.ops, s1, time);

    const double dyn = bd.computation_j() + bd.data_j();
    const auto pct = [&](OpClass op) {
      return 100.0 * bd.op_energy_j[static_cast<std::size_t>(op)] / dyn;
    };
    t.add_row({in.id, util::Table::num(pct(OpClass::kSpFlop), 1),
               util::Table::num(pct(OpClass::kDpFlop), 1),
               util::Table::num(pct(OpClass::kIntOp), 1),
               util::Table::num(pct(OpClass::kSmAccess), 1),
               util::Table::num(pct(OpClass::kL1Access), 1),
               util::Table::num(pct(OpClass::kL2Access), 1),
               util::Table::num(pct(OpClass::kDramAccess), 1),
               util::Table::num(dyn, 3)});
    csv.add_row({in.id, util::Table::num(pct(OpClass::kSpFlop), 3),
                 util::Table::num(pct(OpClass::kDpFlop), 3),
                 util::Table::num(pct(OpClass::kIntOp), 3),
                 util::Table::num(pct(OpClass::kSmAccess), 3),
                 util::Table::num(pct(OpClass::kL1Access), 3),
                 util::Table::num(pct(OpClass::kL2Access), 3),
                 util::Table::num(pct(OpClass::kDramAccess), 3),
                 util::Table::num(dyn, 6)});

    int_comp_shares.push_back(
        100.0 * bd.op_energy_j[static_cast<std::size_t>(OpClass::kIntOp)] /
        bd.computation_j());
    dram_data_shares.push_back(
        100.0 *
        bd.op_energy_j[static_cast<std::size_t>(OpClass::kDramAccess)] /
        bd.data_j());
    l2_data_shares.push_back(
        100.0 * bd.op_energy_j[static_cast<std::size_t>(OpClass::kL2Access)] /
        bd.data_j());
  }
  t.print(std::cout);

  std::cout << "\nAcross inputs: integer share of computation energy "
            << util::Table::num(util::mean(int_comp_shares), 1)
            << "% (paper: ~23%; see EXPERIMENTS.md on the denominator); "
               "DRAM share of data-access energy "
            << util::Table::num(util::mean(dram_data_shares), 1)
            << "% (paper: up to ~50%); L2 share "
            << util::Table::num(util::mean(l2_data_shares), 1)
            << "% (paper: 30-40%).\nSeries exported to fig6_energy.csv.\n";
  return 0;
}
