// Ablation: what does the FFT acceleration of the V list buy?
//
// Runs the same FMM evaluation with FFT-based M2L translations (the paper's
// "FFTs and vector additions") and with dense per-pair kernel-matrix
// application, comparing host wall-clock, per-pair flop counts, and the
// numerical agreement of the results.
#include <chrono>
#include <iostream>

#include "fmm/direct.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace eroof;
  using Clock = std::chrono::steady_clock;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;

  util::Rng rng(3);
  const auto pts = fmm::uniform_cube(n, rng);
  const auto dens = fmm::random_densities(n, rng);
  const fmm::LaplaceKernel kernel;

  std::cout << "M2L ablation at N = " << n << ", Q = 64\n\n";
  util::Table t({"Variant", "p", "Eval (s)", "V flops/pair", "rel L2 vs FFT"},
                {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight});

  for (const int p : {4, 6}) {
    std::vector<double> fft_result;
    for (const bool use_fft : {true, false}) {
      fmm::FmmEvaluator ev(kernel, pts, {.max_points_per_box = 64},
                           fmm::FmmConfig{.p = p, .use_fft_m2l = use_fft});
      const auto t0 = Clock::now();
      const auto phi = ev.evaluate(dens);
      const auto t1 = Clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();

      const auto& st = ev.stats();
      const double ns = static_cast<double>(ev.operators().n_surf());
      const double flops_per_pair =
          use_fft
              ? 8.0 * static_cast<double>(ev.operators().grid_size()) +
                    // amortized forward+inverse FFTs
                    st.v.ffts * 5.0 *
                        static_cast<double>(ev.operators().grid_size()) *
                        std::log2(static_cast<double>(
                            ev.operators().grid_size())) /
                        std::max(1.0, st.v.pair_count)
              : 2.0 * ns * ns;

      std::string agreement = "-";
      if (use_fft) {
        fft_result = phi;
      } else {
        agreement =
            util::Table::num(fmm::rel_l2_error(phi, fft_result), 12);
      }
      t.add_row({use_fft ? "FFT (Hadamard)" : "dense (K-matrix)",
                 std::to_string(p), util::Table::num(secs, 2),
                 util::Table::num(flops_per_pair, 0), agreement});
    }
  }
  t.print(std::cout);
  std::cout << "\nThe two variants agree to roundoff; the FFT path's "
               "per-pair work grows with the grid volume (2p)^3 while the "
               "dense path grows with the squared surface count "
               "(p^3 - (p-2)^3)^2, so the FFT advantage widens with p -- "
               "and its streaming access pattern is what makes the V phase "
               "memory-bound on the modeled GPU.\n";
  return 0;
}
