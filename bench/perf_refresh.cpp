// Closed-loop online model refresh under thermal drift (DESIGN.md §14).
//
// A long-horizon run where the ground-truth die leakage ramps mid-run
// (hw::ThermalRamp scaling GroundTruthEnergy::leak_scale), priced three
// ways over identical per-step thermal states:
//
//   static     the frozen PR 5 schedule: chain DP over the seed model's
//              prediction grid, installed at step 0, never revisited;
//   refreshed  model::ClosedLoopScheduler: executes its installed schedule,
//              streams the in-service PowerMon samples (plus the rotating
//              pi_0 probe) into the drift detector, refits + re-runs the DP
//              when it fires;
//   oracle     omniscient per-step re-fit: chain DP over the *ground-truth*
//              prediction grid at the step's exact leakage (the lower bound
//              no measurement-driven controller can beat).
//
// All three are scored with model::true_schedule_cost on the step's hot
// SoC -- noiseless ground truth, not the controller's own noisy meter.
//
// Two sections, because which story a phase chain tells is a property of
// its utilization (see tests/core/test_refresh.cpp):
//
//   track  a high-utilization compute chain whose energy-optimal settings
//          sit mid-ladder and climb as leakage grows. The headline: the
//          refreshed loop must dissipate measurably less ground-truth
//          energy than the frozen schedule and stay within a stated bound
//          of the oracle. The full trajectory is emitted.
//   hold   the real KIFMM phase chain. Its profiled utilizations pin every
//          phase's optimum to a grid corner, so the optimum never moves and
//          the right behavior is to *hold* the schedule: the gate is that
//          closing the loop costs (almost) nothing next to the oracle --
//          i.e. drift-triggered refits do not make the controller thrash.
//
// The track section additionally replays at 1/2/4 OpenMP threads and
// memcmps the cumulative energies and the final refitted coefficients --
// the harness exits nonzero on any bitwise divergence, a missed tracking
// bound, or a thrashing hold section.
//
// --bench-json[=path] writes the machine-readable summary (default
// BENCH_refresh.json); bench/results/BENCH_refresh.json is the committed
// headline run (64 steps, leak 1.0 -> 4.0, kifmm n=16384 q=64 p=4).
#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/fit.hpp"
#include "core/refresh.hpp"
#include "core/schedule.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/gpu_profile.hpp"
#include "fmm/kernel.hpp"
#include "fmm/pointgen.hpp"
#include "hw/dvfs.hpp"
#include "hw/powermon.hpp"
#include "hw/soc.hpp"
#include "ubench/campaign.hpp"
#include "util/rng.hpp"

namespace {

using namespace eroof;
using bench::flag_value;

struct Params {
  std::string json_path = "BENCH_refresh.json";
  int steps = 64;
  double leak_end = 4.0;
  std::size_t kifmm_n = 16384;
  std::uint32_t kifmm_q = 64;
  /// Stated acceptance bounds, also emitted into the JSON.
  double track_vs_static_max = 0.99;   ///< refreshed/static must be below
  double track_vs_oracle_max = 1.03;   ///< refreshed/oracle must be below
  /// The hold chain's optimum never moves, so the frozen schedule is
  /// already right: closing the loop must not cost anything on top of it.
  double hold_vs_static_max = 1.001;   ///< refreshed/static must be below
};

/// The seed state every controller starts from: the paper campaign's
/// training half and the model fitted from it (the PR 5 pipeline).
struct SeedFit {
  std::vector<model::FitSample> train;
  model::EnergyModel model;
};

SeedFit seed_fit(const hw::Soc& soc) {
  const hw::PowerMon pm;
  const auto campaign = ub::paper_campaign(soc, pm, util::RngStream(42));
  SeedFit seed;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      seed.train.push_back(model::to_fit_sample(s.meas));
  seed.model = model::fit_energy_model(seed.train).model;
  return seed;
}

/// The tracking chain: high compute utilization on purpose -- those phases
/// have interior energy-optimal settings, which is what leakage drift
/// moves (low-utilization phases race to a grid corner and stay there).
std::vector<hw::Workload> track_phases() {
  hw::Workload a;
  a.name = "track_compute";
  a.ops[hw::OpClass::kSpFlop] = 8e9;
  a.ops[hw::OpClass::kDramAccess] = 1e6;
  a.compute_utilization = 0.95;
  a.memory_utilization = 0.2;

  hw::Workload b;
  b.name = "track_compute2";
  b.ops[hw::OpClass::kSpFlop] = 4e9;
  b.ops[hw::OpClass::kDramAccess] = 5e5;
  b.compute_utilization = 0.85;
  b.memory_utilization = 0.15;

  hw::Workload c;
  c.name = "track_mixed";
  c.ops[hw::OpClass::kSpFlop] = 2e9;
  c.ops[hw::OpClass::kDramAccess] = 64e6;
  c.compute_utilization = 0.7;
  c.memory_utilization = 0.7;
  return {a, b, c};
}

std::vector<hw::Workload> kifmm_phases(std::size_t n, std::uint32_t q) {
  static const fmm::LaplaceKernel kernel;
  util::Rng rng(1000 + n + q);
  const auto pts = fmm::uniform_cube(n, rng);
  fmm::FmmEvaluator ev(
      kernel, pts,
      {.max_points_per_box = q,
       .uniform_depth = fmm::Octree::uniform_depth_for(n, q)},
      fmm::FmmConfig{.p = 4});
  const auto prof = fmm::profile_gpu_execution(ev);
  std::vector<hw::Workload> phases;
  for (const auto& ph : prof.phases) phases.push_back(ph.workload);
  return phases;
}

struct StepRecord {
  double leak_scale = 0;
  double static_j = 0, refreshed_j = 0, oracle_j = 0;
  double drift = 0;
  bool refreshed = false;
};

struct SectionResult {
  std::vector<StepRecord> trajectory;
  double static_j = 0, refreshed_j = 0, oracle_j = 0;
  std::uint64_t refreshes = 0;
  model::EnergyModel final_model;
  double measured_j = 0;  ///< what the loop's own meter integrated
};

SectionResult run_section(const SeedFit& seed,
                          const std::vector<hw::Workload>& phases,
                          const hw::ThermalRamp& ramp, int steps) {
  const auto soc = hw::Soc::tegra_k1();
  const auto grid = hw::full_grid();
  const hw::DvfsTransitionModel tm{100e-6, 50e-6};

  model::ClosedLoopConfig cfg;
  // First refit only after the probe rotation has covered a meaningful
  // slice of the grid: a refit from a still-underdetermined stream can
  // spuriously predict a >deadband improvement and install a worse
  // schedule (steeper ramps concentrate the drift into fewer, less
  // identified observations).
  cfg.online.min_observations = 32;
  cfg.online.cooldown = 16;
  model::ClosedLoopScheduler loop(seed.model, soc, grid, tm, phases, cfg);
  loop.seed_anchor(seed.train);
  const model::PhaseSchedule static_sched = loop.schedule();

  const util::RngStream noise(2024);
  SectionResult out;
  out.trajectory.reserve(static_cast<std::size_t>(steps));
  for (int k = 0; k < steps; ++k) {
    StepRecord rec;
    rec.leak_scale = ramp.scale_at(static_cast<std::uint64_t>(k));
    const hw::Soc hot = soc.with_leakage_scale(rec.leak_scale);
    const auto truth = model::oracle_phase_grid(hot, phases, grid);
    rec.static_j =
        model::true_schedule_cost(hot, phases, truth, static_sched, tm)
            .energy_j;
    rec.refreshed_j =
        model::true_schedule_cost(hot, phases, truth, loop.schedule(), tm)
            .energy_j;
    rec.oracle_j = model::true_schedule_cost(
                       hot, phases, truth, model::schedule_phases(truth, tm), tm)
                       .energy_j;
    const auto rep = loop.step(rec.leak_scale, noise.fork(k));
    rec.drift = rep.drift;
    rec.refreshed = rep.refreshed;
    out.measured_j += rep.measured_energy_j;
    out.static_j += rec.static_j;
    out.refreshed_j += rec.refreshed_j;
    out.oracle_j += rec.oracle_j;
    out.trajectory.push_back(rec);
  }
  out.refreshes = loop.refresh().stats().refreshes;
  out.final_model = loop.model();
  return out;
}

bool models_bits_equal(const model::EnergyModel& a,
                       const model::EnergyModel& b) {
  return std::memcmp(a.c0.data(), b.c0.data(), sizeof(a.c0)) == 0 &&
         std::memcmp(&a.c1_proc, &b.c1_proc, sizeof(double)) == 0 &&
         std::memcmp(&a.c1_mem, &b.c1_mem, sizeof(double)) == 0 &&
         std::memcmp(&a.p_misc, &b.p_misc, sizeof(double)) == 0;
}

void write_section(std::ofstream& out, const char* name,
                   const SectionResult& r, bool with_trajectory) {
  out << "  \"" << name << "\": {\n";
  out << "    \"static_true_j\": " << r.static_j << ",\n";
  out << "    \"refreshed_true_j\": " << r.refreshed_j << ",\n";
  out << "    \"oracle_true_j\": " << r.oracle_j << ",\n";
  out << "    \"refreshed_vs_static\": " << r.refreshed_j / r.static_j
      << ",\n";
  out << "    \"refreshed_vs_oracle\": " << r.refreshed_j / r.oracle_j
      << ",\n";
  out << "    \"refreshes\": " << r.refreshes << ",\n";
  out << "    \"measured_energy_j\": " << r.measured_j;
  if (with_trajectory) {
    out << ",\n    \"trajectory\": [\n";
    for (std::size_t k = 0; k < r.trajectory.size(); ++k) {
      const StepRecord& s = r.trajectory[k];
      out << "      {\"step\": " << k << ", \"leak_scale\": " << s.leak_scale
          << ", \"static_j\": " << s.static_j
          << ", \"refreshed_j\": " << s.refreshed_j
          << ", \"oracle_j\": " << s.oracle_j << ", \"drift\": " << s.drift
          << ", \"refreshed\": " << (s.refreshed ? "true" : "false") << "}"
          << (k + 1 < r.trajectory.size() ? ",\n" : "\n");
    }
    out << "    ]\n";
  } else {
    out << "\n";
  }
  out << "  }";
}

int run_bench(const Params& prm) {
  const auto soc = hw::Soc::tegra_k1();
  const SeedFit seed = seed_fit(soc);
  const hw::ThermalRamp ramp{1.0, prm.leak_end, 4,
                             static_cast<std::uint64_t>(prm.steps) / 2, 0.0,
                             7};

  std::fprintf(stderr, "bench-json: track section, %d steps, leak 1 -> %g\n",
               prm.steps, prm.leak_end);
  const SectionResult track = run_section(seed, track_phases(), ramp,
                                          prm.steps);

  std::fprintf(stderr, "bench-json: hold section, kifmm n=%zu q=%u\n",
               prm.kifmm_n, prm.kifmm_q);
  const SectionResult hold = run_section(
      seed, kifmm_phases(prm.kifmm_n, prm.kifmm_q), ramp, prm.steps);

  // Determinism sweep: the track section must replay bit for bit at every
  // thread count (identity-keyed measurement noise, ordered reductions).
  bool bitwise = true;
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  for (const int t : {1, 2, 4}) {
    omp_set_num_threads(t);
    const SectionResult rerun =
        run_section(seed, track_phases(), ramp, prm.steps);
    bitwise &= std::memcmp(&rerun.refreshed_j, &track.refreshed_j,
                           sizeof(double)) == 0;
    bitwise &= std::memcmp(&rerun.measured_j, &track.measured_j,
                           sizeof(double)) == 0;
    bitwise &= models_bits_equal(rerun.final_model, track.final_model);
    std::fprintf(stderr, "bench-json: determinism at %d threads: %s\n", t,
                 bitwise ? "ok" : "DIVERGED");
  }
  omp_set_num_threads(saved);
#endif

  std::ofstream out(prm.json_path);
  if (!out) {
    std::fprintf(stderr, "bench-json: cannot open %s for writing\n",
                 prm.json_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"refresh\",\n";
  out << "  \"steps\": " << prm.steps << ",\n";
  out << "  \"leak_start\": 1.0,\n  \"leak_end\": " << prm.leak_end << ",\n";
  out << "  \"kifmm_n\": " << prm.kifmm_n << ",\n";
  out << "  \"kifmm_q\": " << prm.kifmm_q << ",\n";
  out << "  \"bounds\": {\"track_vs_static_max\": " << prm.track_vs_static_max
      << ", \"track_vs_oracle_max\": " << prm.track_vs_oracle_max
      << ", \"hold_vs_static_max\": " << prm.hold_vs_static_max << "},\n";
  out << "  \"bitwise_identical\": " << (bitwise ? "true" : "false") << ",\n";
  write_section(out, "track", track, /*with_trajectory=*/true);
  out << ",\n";
  write_section(out, "hold", hold, /*with_trajectory=*/false);
  out << "\n}\n";
  std::fprintf(stderr, "bench-json: wrote %s\n", prm.json_path.c_str());

  int rc = 0;
  const double ts = track.refreshed_j / track.static_j;
  const double to = track.refreshed_j / track.oracle_j;
  const double hs = hold.refreshed_j / hold.static_j;
  std::fprintf(stderr,
               "track: refreshed/static %.4f (max %.4f), refreshed/oracle "
               "%.4f (max %.4f), %llu refreshes\n",
               ts, prm.track_vs_static_max, to, prm.track_vs_oracle_max,
               static_cast<unsigned long long>(track.refreshes));
  std::fprintf(stderr,
               "hold: refreshed/static %.4f (max %.4f), refreshed/oracle "
               "%.4f\n",
               hs, prm.hold_vs_static_max, hold.refreshed_j / hold.oracle_j);
  if (ts >= prm.track_vs_static_max) {
    std::fprintf(stderr, "FAIL: refreshed did not beat the frozen schedule\n");
    rc = 1;
  }
  if (to >= prm.track_vs_oracle_max) {
    std::fprintf(stderr, "FAIL: refreshed strayed too far from the oracle\n");
    rc = 1;
  }
  if (hs >= prm.hold_vs_static_max) {
    std::fprintf(stderr, "FAIL: the hold section thrashed\n");
    rc = 1;
  }
  if (!bitwise) {
    std::fprintf(stderr, "FAIL: thread-count divergence\n");
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Params prm;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (flag_value(argv[i], "--bench-json", &v)) {
      if (!v.empty()) prm.json_path = v;
    } else if (flag_value(argv[i], "--bench-steps", &v)) {
      prm.steps = std::stoi(v);
    } else if (flag_value(argv[i], "--bench-leak-end", &v)) {
      prm.leak_end = std::stod(v);
    } else if (flag_value(argv[i], "--bench-n", &v)) {
      prm.kifmm_n = static_cast<std::size_t>(std::stoull(v));
    } else if (flag_value(argv[i], "--bench-q", &v)) {
      prm.kifmm_q = static_cast<std::uint32_t>(std::stoul(v));
    }
    v.clear();
  }
  if (prm.steps < 24) {
    std::fprintf(stderr,
                 "perf_refresh: --bench-steps must be >= 24 -- shorter runs "
                 "end before the probe rotation identifies the refit and the "
                 "tracking bounds are meaningless\n");
    return 2;
  }
  return run_bench(prm);
}
