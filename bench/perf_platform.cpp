// Performance of the platform substrates: cache-hierarchy simulation,
// PowerMon sampling, microbenchmark campaign, and host microbenchmark
// kernels.
#include <benchmark/benchmark.h>

#include "hw/cachesim.hpp"
#include "hw/powermon.hpp"
#include "ubench/campaign.hpp"
#include "ubench/kernels.hpp"
#include "util/rng.hpp"

namespace {

using namespace eroof;

void BM_CacheSimStreaming(benchmark::State& state) {
  hw::MemoryHierarchy h;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    h.access(addr, 128, false);
    addr += 128;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheSimStreaming);

void BM_CacheSimHitting(benchmark::State& state) {
  hw::MemoryHierarchy h;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    h.access(addr % 8192, 128, false);
    addr += 128;
  }
}
BENCHMARK(BM_CacheSimHitting);

void BM_PowerMonMeasure(benchmark::State& state) {
  const hw::PowerMon pm;
  util::Rng rng(1);
  for (auto _ : state) {
    auto t = pm.measure(1.0, [](double) { return 7.0; }, rng);
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_PowerMonMeasure);

void BM_PaperCampaign(benchmark::State& state) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  for (auto _ : state) {
    util::Rng rng(2);
    auto samples = ub::paper_campaign(soc, pm, rng);
    benchmark::DoNotOptimize(samples.data());
  }
  state.SetLabel("1856 samples");
}
BENCHMARK(BM_PaperCampaign)->Unit(benchmark::kMillisecond);

void BM_HostSpFma(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<float> data(1 << 20);
  for (auto& x : data) x = static_cast<float>(rng.uniform(0.1, 0.9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ub::sp_fma_stream(data, 8));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 4));
}
BENCHMARK(BM_HostSpFma);

void BM_HostScratchReuse(benchmark::State& state) {
  util::Rng rng(4);
  std::vector<float> data(1 << 20);
  for (auto& x : data) x = static_cast<float>(rng.uniform(0.1, 0.9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ub::scratch_reuse_stream(data, 4));
  }
}
BENCHMARK(BM_HostScratchReuse);

}  // namespace

BENCHMARK_MAIN();
