// Ablation / reproduction of Section III-B's tuning claim: "By changing the
// input parameter Q, we can change the balance of workload between [the U
// and V phases] so that the FMM's overall arithmetic intensity can be
// tailored to a particular platform."
//
// Sweeps Q at fixed N and reports, per Q: the U/V split of modeled GPU
// time, the run's overall arithmetic intensity, and the total energy at the
// top DVFS setting -- exposing the energy-optimal Q.
#include <iostream>

#include "bench/common.hpp"
#include "core/profile.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace eroof;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 65536;
  const auto platform = bench::make_platform();
  const auto s1 = hw::setting(852, 924);

  std::cout << "Q sweep at N = " << n
            << ", 852/924 MHz: the U/V balance knob (paper Section III-B)\n\n";
  util::Table t({"Q", "U time (ms)", "V time (ms)", "Total (ms)",
                 "Flops/DRAM word", "Energy (J)"},
                {util::Align::kRight, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight});
  util::CsvWriter csv("ablation_q_sweep.csv",
                      {"q", "u_ms", "v_ms", "total_ms", "intensity",
                       "energy_j"});

  double best_e = 1e300;
  std::uint32_t best_q = 0;
  for (const std::uint32_t q : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    const auto prof = bench::profile_fmm_input({"sweep", n, q});
    double u_ms = 0;
    double v_ms = 0;
    double total_ms = 0;
    double total_e = 0;
    hw::OpCounts ops;
    for (const auto& ph : prof.phases) {
      const double ms = platform.soc.execution_time(ph.workload, s1) * 1e3;
      total_ms += ms;
      if (ph.name == "U") u_ms = ms;
      if (ph.name == "V") v_ms = ms;
      ops += ph.workload.ops;
    }
    const auto total = prof.total("q_sweep");
    const auto bd =
        model::breakdown(platform.model, total.ops, s1, total_ms / 1e3);
    total_e = bd.total_j();
    const double intensity =
        (ops[hw::OpClass::kSpFlop] + ops[hw::OpClass::kDpFlop]) /
        ops[hw::OpClass::kDramAccess];
    t.add_row({std::to_string(q), util::Table::num(u_ms, 2),
               util::Table::num(v_ms, 2), util::Table::num(total_ms, 2),
               util::Table::num(intensity, 1), util::Table::num(total_e, 3)});
    csv.add_row({std::to_string(q), util::Table::num(u_ms, 4),
                 util::Table::num(v_ms, 4), util::Table::num(total_ms, 4),
                 util::Table::num(intensity, 4),
                 util::Table::num(total_e, 6)});
    if (total_e < best_e) {
      best_e = total_e;
      best_q = q;
    }
  }
  t.print(std::cout);
  std::cout << "\nEnergy-optimal Q for this N and platform: " << best_q
            << " (" << util::Table::num(best_e, 3)
            << " J). Small Q shifts work into the memory-bound V phase, "
               "large Q into the O(Q^2) compute-bound U phase; the optimum "
               "balances the two rooflines.\nSeries exported to "
               "ablation_q_sweep.csv.\n";
  return 0;
}
