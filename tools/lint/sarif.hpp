// SARIF 2.1.0 serialization and the committed-baseline gate for eroof-lint.
//
// The SARIF writer emits the minimal schema-valid subset GitHub code
// scanning consumes: one run, the driver's rule table (id + short
// description for every lint rule), and one result per finding/note.
// Violations map to level "error", notes to level "note", and findings
// suppressed by an in-source allow() annotation carry a
// `suppressions: [{kind: "inSource"}]` entry; findings matched against the
// committed baseline carry `{kind: "external"}`. All of it is written with
// a small hand-rolled JSON emitter -- no external dependencies.
//
// The baseline is a plain JSON file committed to the repo
// (lint-baseline.json). Each entry keys a finding on
// (file, rule, context) where context is the trimmed blanked source text of
// the flagged line -- robust to unrelated edits that shift line numbers,
// while still retiring automatically when the offending line changes. The
// reader is a tolerant scanner for exactly the shape the writer produces.
#pragma once

#include <string>
#include <vector>

#include "lint.hpp"

namespace eroof::lint {

/// One baseline entry; matching ignores line numbers on purpose.
struct BaselineEntry {
  std::string file;
  std::string rule;
  std::string context;
};

struct Baseline {
  std::vector<BaselineEntry> entries;

  bool contains(const Finding& f) const;
};

/// Parses a baseline file's contents. Returns false on malformed input
/// (entries parsed so far are kept; callers should treat false as fatal).
bool parse_baseline(std::string_view json, Baseline& out);

/// Serializes the non-suppressed findings as a baseline JSON document.
std::string write_baseline(const std::vector<Finding>& findings);

/// Marks findings present in `base` as baselined. Returns the number
/// matched. Baselined findings keep flowing to SARIF (with an "external"
/// suppression) but do not gate.
int apply_baseline(std::vector<Finding>& findings, const Baseline& base,
                   std::vector<bool>& baselined);

/// Serializes findings + notes as a SARIF 2.1.0 document.
/// `baselined` is parallel to `findings` (may be empty for none).
std::string write_sarif(const std::vector<Finding>& findings,
                        const std::vector<bool>& baselined,
                        const std::vector<Note>& notes);

/// JSON string escaping (exposed for tests).
std::string json_escape(std::string_view s);

}  // namespace eroof::lint
