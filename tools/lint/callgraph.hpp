// Call graph + transitive hot-region reachability for eroof-lint's
// whole-program pass.
//
// Call sites are extracted from the token streams the indexer already
// produced: free calls (`f(...)`, `ns::f(...)`), member calls
// (`obj.f(...)`, `p->f(...)`), and constructions (`Type var(args)`,
// `Type var{...}`, `new Type(...)` -- with a matching edge to `~Type` so
// RAII pairs propagate). Resolution is deliberately conservative:
//
//   1. candidates = every indexed definition with the call's short name;
//   2. qualifier filter -- the call's explicit qualifiers must be a suffix
//      of the candidate's scope chain (`la::gemv_add` matches
//      `eroof::la::gemv_add`);
//   3. internal-linkage tie-break -- among candidates with *identical*
//      qualified names in different files (file-local helpers), prefer the
//      caller's own file;
//   4. arity filter -- keep candidates whose [min_arity, arity] range (or
//      variadic tail) admits the call's argument count; if that empties the
//      set (lexical arg-count miscounts, defaulted callables), fall back to
//      the pre-arity candidates.
//
// Surviving candidates all get edges (virtual dispatch becomes edges to
// every override). Unresolvable calls from hot-reachable code degrade to a
// note, never a failure.
//
// Hot propagation is a BFS from every call site lexically inside a
// `// eroof: hot` region. A function reached this way has its whole body
// checked with the same pattern tables as the in-region rules (hot-alloc,
// hot-lock, nondet-rand), each finding reported with the full call chain
// back to the region. `// eroof: cold (reason)` stops propagation: on a
// call-site line it severs that line's edges; above a function definition
// it makes the function a cold boundary (not entered, not checked).
#pragma once

#include <string>
#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace eroof::lint {

struct CallSite {
  int caller = -1;  ///< FunctionIndex::fns id of the enclosing definition
  int file_id = 0;
  int line = 0;
  std::string name;      ///< callee short name
  std::string qualifier; ///< explicit qualifiers joined with :: ("" if none)
  int arity = 0;
  bool member = false;   ///< obj.name(...) / p->name(...)
  bool construct = false;///< Type var(...) / new Type(...)
  std::vector<int> callees;  ///< resolved definition ids (possibly several)
};

struct CallGraph {
  std::vector<CallSite> sites;
  /// Per function id: indices into `sites` of the calls inside its body.
  std::vector<std::vector<int>> calls_of;
};

/// Extracts and resolves every call site in the indexed function bodies.
CallGraph build_call_graph(const FunctionIndex& index,
                           const std::vector<SourceFile>& sources);

/// How a function became hot-reachable: the predecessor chain back to the
/// originating `// eroof: hot` region.
struct HotPath {
  int pred_fn = -1;    ///< -1: called directly from a hot region
  int via_site = -1;   ///< index into CallGraph::sites
  int root_file = 0;   ///< file id of the originating hot region
  int root_line = 0;   ///< hot-begin line of the originating region
};

/// Per function id: hot-reachability marks (empty HotPath list == not hot).
struct HotReachability {
  std::vector<bool> hot;
  std::vector<HotPath> path;  // parallel to `hot`, valid where hot[i]

  /// Human-readable chain "hot region at f.cpp:3 -> a (called at f.cpp:10)
  /// -> b (called at f.cpp:20)" ending at `fn`. Empty if `fn` is not hot.
  std::string chain(const FunctionIndex& index, const CallGraph& graph,
                    const std::vector<SourceFile>& sources, int fn) const;
};

/// BFS from every call site lexically inside a hot region, stopping at cold
/// barriers (cold call-site lines sever edges; cold functions are neither
/// entered nor checked). `analyses` supplies cold_at(); parallel to sources.
HotReachability propagate_hot(const FunctionIndex& index,
                              const CallGraph& graph,
                              const std::vector<SourceFile>& sources,
                              const std::vector<FileAnalysis>& analyses);

struct ProgramOptions {
  Options file;
  /// Promote stale allow() suppressions (and unknown rule ids) from audit
  /// notes to gating findings (rule "stale-allow").
  bool strict_allows = false;
};

struct ProgramReport {
  std::vector<Finding> findings;  // all files, file order then line order
  std::vector<Note> notes;
};

/// The whole-program pass: per-file rules on every source, then the
/// indexer, the call graph, hot propagation with chain-bearing transitive
/// findings, unresolved-call notes, and program-level suppression audit.
ProgramReport analyze_program(const std::vector<SourceFile>& sources,
                              const ProgramOptions& opt);

}  // namespace eroof::lint
