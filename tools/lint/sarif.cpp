#include "sarif.hpp"

#include <algorithm>
#include <cstdio>

namespace eroof::lint {
namespace {

/// Minimal tolerant JSON scaffolding for exactly the baseline shape this
/// module writes: an object with an "entries" array of flat string-valued
/// objects. Anything else fails the parse.
struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    ws();
    return i < s.size() && s[i] == c;
  }
  bool string(std::string& out) {
    ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    out.clear();
    while (i < s.size()) {
      char c = s[i++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i >= s.size()) return false;
        char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            // The writer never emits \u for ASCII; decode Latin-1 subset,
            // pass anything else through as '?'.
            if (i + 4 > s.size()) return false;
            unsigned v = 0;
            for (int k = 0; k < 4; ++k) {
              char h = s[i++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                v |= static_cast<unsigned>(h - 'A' + 10);
              else
                return false;
            }
            out += v < 128 ? static_cast<char>(v) : '?';
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;
  }
};

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

bool Baseline::contains(const Finding& f) const {
  for (const BaselineEntry& e : entries)
    if (e.file == f.file && e.rule == f.rule && e.context == f.context)
      return true;
  return false;
}

bool parse_baseline(std::string_view json, Baseline& out) {
  Cursor c{json};
  if (!c.eat('{')) return false;
  if (c.eat('}')) return true;  // {}
  std::string key;
  while (true) {
    if (!c.string(key)) return false;
    if (!c.eat(':')) return false;
    if (key == "entries") {
      if (!c.eat('[')) return false;
      if (!c.eat(']')) {
        while (true) {
          if (!c.eat('{')) return false;
          BaselineEntry e;
          if (!c.eat('}')) {
            while (true) {
              std::string k, v;
              if (!c.string(k) || !c.eat(':') || !c.string(v)) return false;
              if (k == "file") e.file = v;
              else if (k == "rule") e.rule = v;
              else if (k == "context") e.context = v;
              if (c.eat(',')) continue;
              if (c.eat('}')) break;
              return false;
            }
          }
          out.entries.push_back(std::move(e));
          if (c.eat(',')) continue;
          if (c.eat(']')) break;
          return false;
        }
      }
    } else {
      // Unknown top-level key: only string values are tolerated.
      std::string skip;
      if (!c.string(skip)) return false;
    }
    if (c.eat(',')) continue;
    if (c.eat('}')) return true;
    return false;
  }
}

std::string write_baseline(const std::vector<Finding>& findings) {
  std::string out = "{\n  \"version\": \"1\",\n  \"entries\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;  // allow()-suppressed never gates anyway
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"file\": \"" + json_escape(f.file) + "\", \"rule\": \"" +
           json_escape(f.rule) + "\", \"context\": \"" +
           json_escape(f.context) + "\"}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

int apply_baseline(std::vector<Finding>& findings, const Baseline& base,
                   std::vector<bool>& baselined) {
  baselined.assign(findings.size(), false);
  int matched = 0;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (findings[i].suppressed) continue;
    if (base.contains(findings[i])) {
      baselined[i] = true;
      ++matched;
    }
  }
  return matched;
}

std::string write_sarif(const std::vector<Finding>& findings,
                        const std::vector<bool>& baselined,
                        const std::vector<Note>& notes) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"eroof-lint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/eroof/tools/lint\",\n"
      "          \"rules\": [";
  {
    bool first = true;
    for (const std::string& id : rule_ids()) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "            {\"id\": \"" + json_escape(id) +
             "\", \"shortDescription\": {\"text\": \"" +
             json_escape(rule_description(id)) + "\"}}";
    }
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [";

  bool first = true;
  const auto result = [&](const std::string& rule, const std::string& level,
                          const std::string& message, const std::string& file,
                          int line, const char* suppression_kind) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "        {\"ruleId\": \"" + json_escape(rule) +
           "\", \"level\": \"" + level +
           "\", \"message\": {\"text\": \"" + json_escape(message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(file) +
           "\"}, \"region\": {\"startLine\": " + std::to_string(line) +
           "}}}]";
    if (suppression_kind) {
      out += ", \"suppressions\": [{\"kind\": \"";
      out += suppression_kind;
      out += "\"}]";
    }
    out += "}";
  };

  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const char* kind = nullptr;
    if (f.suppressed) kind = "inSource";
    else if (i < baselined.size() && baselined[i]) kind = "external";
    result(f.rule, "error", f.message, f.file, std::max(f.line, 1), kind);
  }
  for (const Note& n : notes)
    result("note", "note", n.text, n.file, std::max(n.line, 1), nullptr);

  out +=
      "\n      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace eroof::lint
