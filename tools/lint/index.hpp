// Cross-translation-unit function indexer for eroof-lint's whole-program
// pass.
//
// Built on the same comment/string-aware scan as the per-file rules: the
// tokenizer runs over SourceFile::lines (comments, strings, and preprocessor
// directives already stripped or skipped), a scope-tracking parser recognizes
// namespace/class nesting, and function *definitions* (qualified-id,
// balanced parameter list, optional const/noexcept/ref-qualifier/trailing
// return/ctor-init-list, then `{`) are recorded with their brace-matched
// body extents -- in both line numbers (for findings) and token ranges (so
// the call-graph layer never re-tokenizes).
//
// This is a lexical indexer, not a compiler: templates are indexed like
// ordinary functions, `operator` overloads get bodies but no resolvable
// name, macros and preprocessor lines are skipped, and local classes inside
// function bodies are not descended into. The call-graph layer compensates
// by resolving conservatively (edges to every surviving candidate) and
// downgrading anything unresolvable to a note.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint.hpp"

namespace eroof::lint {

struct Token {
  enum class Kind { Ident, Num, Punct };
  Kind kind = Kind::Punct;
  std::string text;
  int line = 0;  // 1-based
};

/// Tokenizes blanked code lines. Multi-char punctuators kept together: `::`
/// and `->` (the two the parser needs); everything else is single-char.
/// Preprocessor lines (and their backslash continuations) are skipped.
std::vector<Token> tokenize(const std::vector<ScannedLine>& lines);

struct FunctionDef {
  std::string qualified;            ///< e.g. "eroof::serve::Queue::pop"
  std::vector<std::string> scopes;  ///< enclosing namespace/class components
  std::string name;                 ///< last component ("pop")
  int min_arity = 0;  ///< required args (params before the first default)
  int arity = 0;      ///< total declared params
  bool variadic = false;
  bool is_ctor = false;
  int file_id = 0;  ///< index into the SourceFile list given to build_index
  std::string file;
  int name_line = 0;
  int body_begin_line = 0;
  int body_end_line = 0;
  int body_begin_tok = 0;  ///< token index of the body `{` in its file
  int body_end_tok = 0;    ///< token index of the matching `}`

  /// Does a call with `n` arguments fit this signature?
  bool accepts_arity(int n) const {
    return variadic ? n >= min_arity : (n >= min_arity && n <= arity);
  }
};

struct FunctionIndex {
  std::vector<FunctionDef> fns;
  std::vector<std::vector<Token>> file_tokens;  // parallel to input sources

  /// Ids of every definition whose short name is `name`.
  std::vector<int> candidates(const std::string& name) const;

  /// First definition whose qualified name ends with `suffix` (test helper;
  /// "Queue::pop" matches "eroof::serve::Queue::pop"). Returns -1 if none.
  int find(const std::string& suffix) const;

 private:
  friend FunctionIndex build_index(const std::vector<SourceFile>& sources);
  std::multimap<std::string, int> by_name_;
};

/// Indexes every function definition in `sources`. Tokenizes each file once;
/// the token streams are kept on the index for the call-graph layer.
FunctionIndex build_index(const std::vector<SourceFile>& sources);

// -- shared token utilities (used by the call-graph layer) ------------------

bool is_cpp_keyword(const std::string& s);
bool is_all_caps_macro(const std::string& s);

/// A possibly qualified, possibly templated id-expression:
/// `[~] Ident [<...>] (:: [~] Ident [<...>])*`. Empty `parts` means toks[i]
/// does not start one. `end` is one past the last consumed token.
struct IdChain {
  std::vector<std::string> parts;
  std::size_t begin = 0, end = 0;
  bool has_operator = false;
};
IdChain parse_id_chain(const std::vector<Token>& toks, std::size_t i);

/// Skips a balanced open/close pair starting at `i` (which must hold
/// `open`). Returns one past the closer, or toks.size() if unbalanced.
std::size_t skip_balanced_tokens(const std::vector<Token>& toks,
                                 std::size_t i, const char* open,
                                 const char* close);

/// Argument count of a call whose `(` is at `i`: top-level commas + 1,
/// zero for `()`. Angle-bracket aware so `f(a<b, c>(d))` counts one.
struct ArgScan {
  int arity = 0;
  std::size_t after = 0;
  bool ok = false;
};
ArgScan scan_call_args(const std::vector<Token>& toks, std::size_t i);

}  // namespace eroof::lint
