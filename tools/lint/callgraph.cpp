#include "callgraph.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>

namespace eroof::lint {
namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == Token::Kind::Punct && t.text == s;
}

/// Member-call names that are overwhelmingly standard-library vocabulary
/// (containers, atomics, futures, chrono). Calls to them are not worth an
/// edge -- the lexical pattern tables already flag the allocating ones
/// (push_back & co.) on the line itself -- and an unresolved note for every
/// `v.size()` in a hot loop would drown the real findings.
const std::set<std::string>& common_std_members() {
  static const std::set<std::string> names = {
      "size",       "empty",      "begin",       "end",
      "cbegin",     "cend",       "rbegin",      "rend",
      "data",       "front",      "back",        "at",
      "clear",      "find",       "count",       "c_str",
      "str",        "substr",     "length",      "swap",
      "get",        "reset",      "release",     "valid",
      "load",       "store",      "exchange",    "fetch_add",
      "fetch_sub",  "fetch_or",   "fetch_and",   "compare_exchange_weak",
      "compare_exchange_strong",  "notify_one",  "notify_all",
      "join",       "detach",     "joinable",    "lock",
      "unlock",     "try_lock",   "owns_lock",   "wait",
      "wait_for",   "wait_until", "set_value",   "get_future",
      "push_back",  "emplace_back", "pop_back",  "resize",
      "reserve",    "insert",     "emplace",     "erase",
      "append",     "assign",     "fill",        "time_since_epoch",
      "first",      "second",     "push",        "top",
  };
  return names;
}

struct Extractor {
  const FunctionIndex& index;
  const std::vector<SourceFile>& sources;
  CallGraph& graph;

  /// Resolution: short name -> qualifier suffix filter -> internal-linkage
  /// same-file tie-break -> arity filter with fallback.
  std::vector<int> resolve(const CallSite& cs) const {
    std::vector<int> cands = index.candidates(cs.name);
    if (cands.empty()) return cands;

    if (!cs.qualifier.empty()) {
      std::vector<int> kept;
      for (int id : cands) {
        const FunctionDef& fd = index.fns[id];
        std::string scopes_joined;
        for (const auto& s : fd.scopes) {
          scopes_joined += "::";
          scopes_joined += s;
        }
        const std::string want = "::" + cs.qualifier;
        if (scopes_joined.size() >= want.size() &&
            scopes_joined.compare(scopes_joined.size() - want.size(),
                                  want.size(), want) == 0)
          kept.push_back(id);
      }
      if (!kept.empty()) cands = std::move(kept);
    }

    // Implicit-this calls: an unqualified non-member call inside a member
    // function resolves to the caller's own class first (`size()` inside
    // Plan3::inverse means Plan3::size, not every size() in the program).
    if (cs.qualifier.empty() && !cs.member && cs.caller >= 0) {
      const std::vector<std::string>& caller_scopes =
          index.fns[cs.caller].scopes;
      std::vector<int> same_scope;
      for (int id : cands)
        if (index.fns[id].scopes == caller_scopes) same_scope.push_back(id);
      if (!same_scope.empty()) cands = std::move(same_scope);
    }

    // File-local helpers: identical qualified names in several files are
    // internal-linkage duplicates; keep the caller's own file's copy.
    if (cs.caller >= 0) {
      const int caller_file = index.fns[cs.caller].file_id;
      std::map<std::string, std::vector<int>> by_qualified;
      for (int id : cands) by_qualified[index.fns[id].qualified].push_back(id);
      std::vector<int> kept;
      for (auto& [q, ids] : by_qualified) {
        (void)q;
        if (ids.size() > 1) {
          std::vector<int> same_file;
          for (int id : ids)
            if (index.fns[id].file_id == caller_file) same_file.push_back(id);
          if (!same_file.empty()) {
            kept.insert(kept.end(), same_file.begin(), same_file.end());
            continue;
          }
        }
        kept.insert(kept.end(), ids.begin(), ids.end());
      }
      cands = std::move(kept);
    }

    // Arity filter, with fallback to the pre-arity set when it empties
    // (defaulted params miscounted lexically, parameter packs, ...).
    std::vector<int> arity_kept;
    for (int id : cands)
      if (index.fns[id].accepts_arity(cs.arity)) arity_kept.push_back(id);
    if (!arity_kept.empty()) cands = std::move(arity_kept);

    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
    return cands;
  }

  void add_site(int caller, int file_id, int line, std::string name,
                std::string qualifier, int arity, bool member,
                bool construct) {
    CallSite cs;
    cs.caller = caller;
    cs.file_id = file_id;
    cs.line = line;
    cs.name = std::move(name);
    cs.qualifier = std::move(qualifier);
    cs.arity = arity;
    cs.member = member;
    cs.construct = construct;
    cs.callees = resolve(cs);
    graph.calls_of[caller].push_back(static_cast<int>(graph.sites.size()));
    graph.sites.push_back(std::move(cs));
  }

  /// Adds a construction edge for type chain `type` (ctor candidates share
  /// the class name; the paired destructor propagates RAII work).
  void add_construct(int caller, int file_id, int line,
                     const IdChain& type, int arity) {
    if (type.parts.empty()) return;
    if (type.parts.front() == "std") return;
    const std::string& cls = type.parts.back();
    if (is_all_caps_macro(cls)) return;
    std::string qual;
    for (std::size_t p = 0; p + 1 < type.parts.size(); ++p) {
      if (!qual.empty()) qual += "::";
      qual += type.parts[p];
    }
    add_site(caller, file_id, line, cls, qual, arity, false, true);
    // Destructor: only when indexed (no note spam for by-value aggregates).
    if (!index.candidates("~" + cls).empty())
      add_site(caller, file_id, line, "~" + cls, qual, 0, false, true);
  }

  void extract_function(int fn_id) {
    const FunctionDef& fd = index.fns[fn_id];
    const std::vector<Token>& toks = index.file_tokens[fd.file_id];
    const std::size_t begin = static_cast<std::size_t>(fd.body_begin_tok) + 1;
    const std::size_t end = static_cast<std::size_t>(fd.body_end_tok);

    // For `Type var(args)` declarations: the chain of the type just parsed,
    // valid only when the next chain starts exactly where it ended.
    IdChain pending_type;
    bool pending_valid = false;

    std::size_t j = begin;
    while (j < end && j < toks.size()) {
      const Token& t = toks[j];
      if (t.kind != Token::Kind::Ident) {
        ++j;
        continue;
      }
      if (t.text == "new") {
        const IdChain ty = parse_id_chain(toks, j + 1);
        if (!ty.parts.empty()) {
          int arity = 0;
          if (ty.end < toks.size() && is_punct(toks[ty.end], "(")) {
            const ArgScan a = scan_call_args(toks, ty.end);
            if (a.ok) arity = a.arity;
          }
          add_construct(fn_id, fd.file_id, t.line, ty, arity);
          pending_valid = false;
          j = ty.end;
          continue;
        }
        ++j;
        continue;
      }
      if (is_cpp_keyword(t.text)) {
        pending_valid = false;
        ++j;
        continue;
      }

      const IdChain ch = parse_id_chain(toks, j);
      if (ch.parts.empty() || ch.has_operator) {
        pending_valid = false;
        j = std::max(ch.end, j + 1);
        continue;
      }
      const bool next_is_call =
          ch.end < toks.size() && is_punct(toks[ch.end], "(");

      if (next_is_call) {
        const ArgScan a = scan_call_args(toks, ch.end);
        const int arity = a.ok ? a.arity : 0;

        if (pending_valid && pending_type.end == ch.begin &&
            ch.parts.size() == 1) {
          // `Type var(args)` -- a declaration constructing Type.
          add_construct(fn_id, fd.file_id, toks[ch.begin].line, pending_type,
                        arity);
        } else {
          const bool member =
              ch.begin > 0 && (is_punct(toks[ch.begin - 1], ".") ||
                               is_punct(toks[ch.begin - 1], "->"));
          const std::string& name = ch.parts.back();
          const bool skip =
              ch.parts.front() == "std" ||
              (ch.parts.size() == 1 && is_all_caps_macro(name)) ||
              (member && common_std_members().count(name) != 0);
          if (!skip) {
            std::string qual;
            for (std::size_t p = 0; p + 1 < ch.parts.size(); ++p) {
              if (!qual.empty()) qual += "::";
              qual += ch.parts[p];
            }
            add_site(fn_id, fd.file_id, toks[ch.begin].line, name, qual,
                     arity, member, false);
          }
        }
        pending_valid = false;
        j = a.ok ? a.after : ch.end + 1;
        continue;
      }

      // Chain not followed by '(': it may be the *type* of a declaration
      // whose variable name (and constructor call) comes next, or a braced
      // / default construction `Type var{...};` / `Type var;`.
      if (pending_valid && pending_type.end == ch.begin &&
          ch.parts.size() == 1 && ch.end < toks.size() &&
          (is_punct(toks[ch.end], ";") || is_punct(toks[ch.end], "{") ||
           is_punct(toks[ch.end], "="))) {
        int arity = 0;
        if (is_punct(toks[ch.end], "{")) {
          // Count braced-init args like call args.
          int depth = 0, commas = 0;
          bool any = false;
          for (std::size_t k = ch.end; k < toks.size(); ++k) {
            if (is_punct(toks[k], "{")) ++depth;
            else if (is_punct(toks[k], "}")) {
              if (--depth == 0) break;
            } else if (depth == 1) {
              any = true;
              if (is_punct(toks[k], ",")) ++commas;
            }
          }
          arity = any ? commas + 1 : 0;
        }
        add_construct(fn_id, fd.file_id, toks[ch.begin].line, pending_type,
                      arity);
        pending_valid = false;
        j = ch.end;
        continue;
      }

      pending_type = ch;
      pending_valid = true;
      j = ch.end;
    }
  }
};

}  // namespace

CallGraph build_call_graph(const FunctionIndex& index,
                           const std::vector<SourceFile>& sources) {
  CallGraph graph;
  graph.calls_of.resize(index.fns.size());
  Extractor ex{index, sources, graph};
  for (std::size_t f = 0; f < index.fns.size(); ++f)
    ex.extract_function(static_cast<int>(f));
  return graph;
}

std::string HotReachability::chain(const FunctionIndex& index,
                                   const CallGraph& graph,
                                   const std::vector<SourceFile>& sources,
                                   int fn) const {
  if (fn < 0 || !hot[static_cast<std::size_t>(fn)]) return "";
  // Walk predecessors back to the region, then print forward. BFS parents
  // cannot cycle, so this terminates.
  std::vector<int> on_path;
  for (int cur = fn; cur >= 0;
       cur = path[static_cast<std::size_t>(cur)].pred_fn)
    on_path.push_back(cur);
  std::reverse(on_path.begin(), on_path.end());

  const HotPath& root = path[static_cast<std::size_t>(on_path.front())];
  std::string out = "hot region at ";
  out += sources[static_cast<std::size_t>(root.root_file)].path;
  out += ":";
  out += std::to_string(root.root_line);
  for (int f : on_path) {
    const HotPath& hp = path[static_cast<std::size_t>(f)];
    const CallSite& s = graph.sites[static_cast<std::size_t>(hp.via_site)];
    out += " -> ";
    out += index.fns[static_cast<std::size_t>(f)].name;
    out += " (called at ";
    out += sources[static_cast<std::size_t>(s.file_id)].path;
    out += ":";
    out += std::to_string(s.line);
    out += ")";
  }
  return out;
}

HotReachability propagate_hot(const FunctionIndex& index,
                              const CallGraph& graph,
                              const std::vector<SourceFile>& sources,
                              const std::vector<FileAnalysis>& analyses) {
  HotReachability hr;
  hr.hot.assign(index.fns.size(), false);
  hr.path.assign(index.fns.size(), HotPath{});

  std::vector<bool> cold_fn(index.fns.size(), false);
  for (std::size_t f = 0; f < index.fns.size(); ++f) {
    const FunctionDef& fd = index.fns[f];
    cold_fn[f] = analyses[static_cast<std::size_t>(fd.file_id)].cold_at(
        fd.name_line);
  }

  const auto root_line_of = [](const SourceFile& sf, int line) {
    for (const HotRange& r : sf.hot_ranges)
      if (line >= r.begin && line <= r.end) return r.begin;
    return line;
  };

  std::deque<int> queue;
  for (std::size_t si = 0; si < graph.sites.size(); ++si) {
    const CallSite& s = graph.sites[si];
    const SourceFile& sf = sources[static_cast<std::size_t>(s.file_id)];
    if (!sf.in_hot(s.line)) continue;
    if (analyses[static_cast<std::size_t>(s.file_id)].cold_at(s.line))
      continue;
    for (int callee : s.callees) {
      if (cold_fn[static_cast<std::size_t>(callee)]) continue;
      if (hr.hot[static_cast<std::size_t>(callee)]) continue;
      hr.hot[static_cast<std::size_t>(callee)] = true;
      hr.path[static_cast<std::size_t>(callee)] =
          HotPath{-1, static_cast<int>(si), s.file_id,
                  root_line_of(sf, s.line)};
      queue.push_back(callee);
    }
  }
  while (!queue.empty()) {
    const int f = queue.front();
    queue.pop_front();
    for (int si : graph.calls_of[static_cast<std::size_t>(f)]) {
      const CallSite& s = graph.sites[static_cast<std::size_t>(si)];
      if (analyses[static_cast<std::size_t>(s.file_id)].cold_at(s.line))
        continue;
      for (int callee : s.callees) {
        if (cold_fn[static_cast<std::size_t>(callee)]) continue;
        if (hr.hot[static_cast<std::size_t>(callee)]) continue;
        hr.hot[static_cast<std::size_t>(callee)] = true;
        hr.path[static_cast<std::size_t>(callee)] =
            HotPath{f, si, hr.path[static_cast<std::size_t>(f)].root_file,
                    hr.path[static_cast<std::size_t>(f)].root_line};
        queue.push_back(callee);
      }
    }
  }
  return hr;
}

ProgramReport analyze_program(const std::vector<SourceFile>& sources,
                              const ProgramOptions& opt) {
  ProgramReport out;

  std::vector<FileAnalysis> analyses;
  analyses.reserve(sources.size());
  for (const SourceFile& sf : sources) analyses.emplace_back(sf, opt.file);

  const FunctionIndex index = build_index(sources);
  const CallGraph graph = build_call_graph(index, sources);
  const HotReachability hr = propagate_hot(index, graph, sources, analyses);

  // Transitive findings: the whole body of every hot-reachable function is
  // held to the in-region contract. Lines lexically inside a hot region of
  // the same file are skipped -- the per-file pass already flagged them.
  for (std::size_t f = 0; f < index.fns.size(); ++f) {
    if (!hr.hot[f]) continue;
    const FunctionDef& fd = index.fns[f];
    const SourceFile& sf = sources[static_cast<std::size_t>(fd.file_id)];
    FileAnalysis& fa = analyses[static_cast<std::size_t>(fd.file_id)];
    const std::string chain =
        hr.chain(index, graph, sources, static_cast<int>(f));
    for (int ln = fd.body_begin_line; ln <= fd.body_end_line; ++ln) {
      if (ln < 1 || static_cast<std::size_t>(ln) > sf.lines.size()) continue;
      if (sf.in_hot(ln)) continue;
      if (fa.cold_at(ln)) continue;
      for (const PatternHit& hit : hot_contract_hits(
               sf.lines[static_cast<std::size_t>(ln) - 1].code,
               sf.det_exempt)) {
        fa.emit(ln, hit.rule,
                hit.what + " in '" + fd.qualified +
                    "', reachable from " + chain);
      }
    }
  }

  // Unresolved calls from hot contexts: conservative notes, never failures.
  {
    std::set<std::pair<int, std::string>> noted;
    for (std::size_t si = 0; si < graph.sites.size(); ++si) {
      const CallSite& s = graph.sites[si];
      if (!s.callees.empty()) continue;
      const bool hot_context =
          (s.caller >= 0 && hr.hot[static_cast<std::size_t>(s.caller)]) ||
          sources[static_cast<std::size_t>(s.file_id)].in_hot(s.line);
      if (!hot_context) continue;
      if (analyses[static_cast<std::size_t>(s.file_id)].cold_at(s.line))
        continue;
      if (!noted.insert({s.file_id, s.name}).second) continue;
      analyses[static_cast<std::size_t>(s.file_id)].report().notes.push_back(
          Note{sources[static_cast<std::size_t>(s.file_id)].path, s.line,
               "call to '" + s.name +
                   "' from hot-reachable code cannot be resolved (virtual, "
                   "function pointer, or external) -- the no-allocation "
                   "contract is not checked past this point"});
    }
  }

  // Program-level suppression audit: an allow() is stale only if nothing --
  // per-file or transitive -- used it.
  for (FileAnalysis& fa : analyses) {
    const std::string& path = fa.source().path;
    for (const AllowSite& as : fa.allow_sites()) {
      bool known = false;
      for (const auto& id : rule_ids()) known = known || id == as.rule;
      if (!as.used) {
        if (opt.strict_allows) {
          Finding f{path, as.line, "stale-allow",
                    "unused suppression: allow(" + as.rule +
                        ") matched no finding -- remove it or fix the rule id",
                    false, std::string()};
          const std::size_t li = static_cast<std::size_t>(as.line) - 1;
          if (li < fa.source().lines.size())
            f.context = fa.source().lines[li].code;
          fa.report().findings.push_back(std::move(f));
        } else {
          fa.report().notes.push_back(
              Note{path, as.line, "unused suppression: allow(" + as.rule +
                                      ") matched no finding"});
        }
      }
      if (!known) {
        if (opt.strict_allows) {
          fa.report().findings.push_back(
              Finding{path, as.line, "stale-allow",
                      "unknown rule id in allow(" + as.rule + ")", false,
                      std::string()});
        } else {
          fa.report().notes.push_back(Note{
              path, as.line, "unknown rule id in allow(" + as.rule + ")"});
        }
      }
    }
  }

  // Merge, ordered by file (input order) then line.
  for (FileAnalysis& fa : analyses) {
    std::stable_sort(fa.report().findings.begin(),
                     fa.report().findings.end(),
                     [](const Finding& a, const Finding& b) {
                       return a.line < b.line;
                     });
    std::stable_sort(fa.report().notes.begin(), fa.report().notes.end(),
                     [](const Note& a, const Note& b) {
                       return a.line < b.line;
                     });
    for (Finding& f : fa.report().findings)
      out.findings.push_back(std::move(f));
    for (Note& n : fa.report().notes) out.notes.push_back(std::move(n));
  }
  return out;
}

}  // namespace eroof::lint
