// eroof_lint CLI: scans the project tree (default: src/ bench/ examples/
// tests/ under --root) and prints `file:line: rule-id: message` for every
// violation. Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
//
//   eroof_lint [--root DIR] [--fix-annotations] [--audit] [paths...]
//
// See tools/lint/lint.hpp for the rule set and annotation grammar.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using eroof::lint::FileReport;
using eroof::lint::Finding;
using eroof::lint::Note;
using eroof::lint::Options;

namespace {

bool has_source_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

/// Directories never scanned: build trees, VCS metadata, and the lint test
/// fixtures (which contain seeded violations on purpose).
bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  if (name == ".git" || name == ".cache") return true;
  if (name.rfind("build", 0) == 0 || name.rfind("cmake-build", 0) == 0)
    return true;
  return false;
}

bool is_fixture(const std::string& generic_path) {
  return generic_path.find("tests/lint/fixtures") != std::string::npos;
}

/// `filter_fixtures` is true for the default tree scan (the fixtures hold
/// seeded violations); explicitly named paths are scanned as given, so the
/// lint tests can point the binary straight at the fixtures.
void collect(const fs::path& root, bool filter_fixtures,
             std::vector<std::string>& out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    out.push_back(root.generic_string());
    return;
  }
  fs::recursive_directory_iterator it(root, ec), end;
  if (ec) return;
  for (; it != end; it.increment(ec)) {
    if (ec) break;
    const fs::path& p = it->path();
    if (it->is_directory() && skipped_dir(p)) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && has_source_ext(p)) {
      const std::string g = p.generic_string();
      if (!filter_fixtures || !is_fixture(g)) out.push_back(g);
    }
  }
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--root DIR] [--fix-annotations] [--audit] [paths...]\n"
         "  --root DIR         scan src/ bench/ examples/ tests/ under DIR\n"
         "                     (default: current directory) when no paths\n"
         "                     are given\n"
         "  --fix-annotations  list unannotated OpenMP parallel regions and\n"
         "                     exit 0 (informational)\n"
         "  --audit            also print the suppression audit trail\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool audit = false;
  std::string root = ".";
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fix-annotations") {
      opt.fix_annotations = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) return usage(argv[0]);
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  std::vector<std::string> files;
  if (paths.empty()) {
    // Canonicalize so the fixture filter sees real path components (a root
    // like "some/dir/../.." would otherwise defeat the substring check).
    std::error_code root_ec;
    const fs::path canon = fs::weakly_canonical(fs::path(root), root_ec);
    if (!root_ec) root = canon.string();
    for (const char* sub : {"src", "bench", "examples", "tests"}) {
      const fs::path dir = fs::path(root) / sub;
      std::error_code ec;
      if (fs::exists(dir, ec)) collect(dir, /*filter_fixtures=*/true, files);
    }
    if (files.empty()) {
      std::cerr << "eroof_lint: no sources found under '" << root
                << "' (expected src/ bench/ examples/ tests/)\n";
      return 2;
    }
  } else {
    for (const auto& p : paths) {
      std::error_code ec;
      if (!fs::exists(p, ec)) {
        std::cerr << "eroof_lint: no such path: " << p << "\n";
        return 2;
      }
      collect(p, /*filter_fixtures=*/false, files);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::size_t violations = 0;
  std::size_t suppressed = 0;
  std::vector<Finding> audit_trail;
  for (const auto& f : files) {
    const FileReport rep = eroof::lint::lint_file(f, opt);
    for (const auto& fi : rep.findings) {
      if (fi.suppressed) {
        ++suppressed;
        audit_trail.push_back(fi);
      } else {
        ++violations;
        std::cout << fi.file << ":" << fi.line << ": " << fi.rule << ": "
                  << fi.message << "\n";
      }
    }
    for (const auto& n : rep.notes)
      std::cout << n.file << ":" << n.line << ": note: " << n.text << "\n";
  }

  if (audit) {
    for (const auto& fi : audit_trail)
      std::cout << fi.file << ":" << fi.line << ": suppressed: " << fi.rule
                << ": " << fi.message << "\n";
  }
  std::cerr << "eroof_lint: " << files.size() << " files, " << violations
            << " violation(s), " << suppressed << " suppression(s)\n";

  if (opt.fix_annotations) return 0;
  return violations == 0 ? 0 : 1;
}
