// eroof_lint CLI: whole-program lint over the project tree (default: src/
// bench/ examples/ tests/ under --root). Prints `file:line: rule-id:
// message` for every violation. Exit codes: 0 clean, 1 violations found,
// 2 usage/IO error.
//
//   eroof_lint [--root DIR] [--fix-annotations] [--audit] [--strict-allows]
//              [--sarif FILE] [--baseline FILE] [--write-baseline FILE]
//              [paths...]
//
// All named files are loaded up front and analyzed together: the per-file
// rules run first, then the cross-TU function index, the call graph, and
// transitive hot-region propagation (see tools/lint/callgraph.hpp). The
// SARIF/baseline plumbing lives in tools/lint/sarif.hpp.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "lint.hpp"
#include "sarif.hpp"

namespace fs = std::filesystem;
using eroof::lint::Baseline;
using eroof::lint::Finding;
using eroof::lint::Note;
using eroof::lint::ProgramOptions;
using eroof::lint::ProgramReport;
using eroof::lint::SourceFile;

namespace {

bool has_source_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

/// Directories never scanned: build trees, VCS metadata, and the lint test
/// fixtures (which contain seeded violations on purpose).
bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  if (name == ".git" || name == ".cache") return true;
  if (name.rfind("build", 0) == 0 || name.rfind("cmake-build", 0) == 0)
    return true;
  return false;
}

bool is_fixture(const std::string& generic_path) {
  return generic_path.find("tests/lint/fixtures") != std::string::npos;
}

/// `filter_fixtures` is true for the default tree scan (the fixtures hold
/// seeded violations); explicitly named paths are scanned as given, so the
/// lint tests can point the binary straight at the fixtures.
void collect(const fs::path& root, bool filter_fixtures,
             std::vector<std::string>& out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    out.push_back(root.generic_string());
    return;
  }
  fs::recursive_directory_iterator it(root, ec), end;
  if (ec) return;
  for (; it != end; it.increment(ec)) {
    if (ec) break;
    const fs::path& p = it->path();
    if (it->is_directory() && skipped_dir(p)) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && has_source_ext(p)) {
      const std::string g = p.generic_string();
      if (!filter_fixtures || !is_fixture(g)) out.push_back(g);
    }
  }
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--root DIR] [--fix-annotations] [--audit] [--strict-allows]\n"
         "       [--sarif FILE] [--baseline FILE] [--write-baseline FILE]\n"
         "       [paths...]\n"
         "  --root DIR           scan src/ bench/ examples/ tests/ under\n"
         "                       DIR (default: current directory) when no\n"
         "                       paths are given\n"
         "  --fix-annotations    list unannotated OpenMP parallel regions\n"
         "                       and exit 0 (informational)\n"
         "  --audit              also print the suppression audit trail\n"
         "  --strict-allows      stale allow() suppressions become gating\n"
         "                       findings instead of notes\n"
         "  --sarif FILE         write the report as SARIF 2.1.0\n"
         "  --baseline FILE      findings recorded in FILE do not gate\n"
         "  --write-baseline FILE  record current findings and exit 0\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ProgramOptions opt;
  bool audit = false;
  std::string root = ".";
  std::string sarif_path, baseline_path, write_baseline_path;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fix-annotations") {
      opt.file.fix_annotations = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--strict-allows") {
      opt.strict_allows = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) return usage(argv[0]);
      root = argv[++i];
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) return usage(argv[0]);
      sarif_path = argv[++i];
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) return usage(argv[0]);
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline") {
      if (i + 1 >= argc) return usage(argv[0]);
      write_baseline_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  std::vector<std::string> files;
  if (paths.empty()) {
    // Canonicalize so the fixture filter sees real path components (a root
    // like "some/dir/../.." would otherwise defeat the substring check).
    std::error_code root_ec;
    const fs::path canon = fs::weakly_canonical(fs::path(root), root_ec);
    if (!root_ec) root = canon.string();
    for (const char* sub : {"src", "bench", "examples", "tests"}) {
      const fs::path dir = fs::path(root) / sub;
      std::error_code ec;
      if (fs::exists(dir, ec)) collect(dir, /*filter_fixtures=*/true, files);
    }
    if (files.empty()) {
      std::cerr << "eroof_lint: no sources found under '" << root
                << "' (expected src/ bench/ examples/ tests/)\n";
      return 2;
    }
  } else {
    for (const auto& p : paths) {
      std::error_code ec;
      if (!fs::exists(p, ec)) {
        std::cerr << "eroof_lint: no such path: " << p << "\n";
        return 2;
      }
      collect(p, /*filter_fixtures=*/false, files);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Load everything up front: the whole-program pass needs every TU.
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  std::vector<Finding> io_errors;
  for (const auto& f : files) {
    SourceFile sf;
    if (eroof::lint::load_source_file(f, sf)) {
      sources.push_back(std::move(sf));
    } else {
      io_errors.push_back(
          Finding{f, 0, "io-error", "cannot read file", false, ""});
    }
  }

  ProgramReport rep = eroof::lint::analyze_program(sources, opt);
  rep.findings.insert(rep.findings.end(), io_errors.begin(), io_errors.end());

  if (!write_baseline_path.empty()) {
    if (!write_text_file(write_baseline_path,
                         eroof::lint::write_baseline(rep.findings))) {
      std::cerr << "eroof_lint: cannot write baseline: "
                << write_baseline_path << "\n";
      return 2;
    }
    std::cerr << "eroof_lint: baseline written to " << write_baseline_path
              << "\n";
    return 0;
  }

  std::vector<bool> baselined;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "eroof_lint: cannot read baseline: " << baseline_path
                << "\n";
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    Baseline base;
    if (!eroof::lint::parse_baseline(ss.str(), base)) {
      std::cerr << "eroof_lint: malformed baseline: " << baseline_path
                << "\n";
      return 2;
    }
    eroof::lint::apply_baseline(rep.findings, base, baselined);
  }

  std::size_t violations = 0;
  std::size_t suppressed = 0;
  std::size_t baselined_count = 0;
  for (std::size_t i = 0; i < rep.findings.size(); ++i) {
    const Finding& fi = rep.findings[i];
    if (fi.suppressed) {
      ++suppressed;
      continue;
    }
    if (i < baselined.size() && baselined[i]) {
      ++baselined_count;
      continue;
    }
    ++violations;
    std::cout << fi.file << ":" << fi.line << ": " << fi.rule << ": "
              << fi.message << "\n";
  }
  for (const auto& n : rep.notes)
    std::cout << n.file << ":" << n.line << ": note: " << n.text << "\n";

  if (audit) {
    for (const auto& fi : rep.findings)
      if (fi.suppressed)
        std::cout << fi.file << ":" << fi.line << ": suppressed: " << fi.rule
                  << ": " << fi.message << "\n";
  }

  if (!sarif_path.empty()) {
    if (!write_text_file(
            sarif_path,
            eroof::lint::write_sarif(rep.findings, baselined, rep.notes))) {
      std::cerr << "eroof_lint: cannot write SARIF: " << sarif_path << "\n";
      return 2;
    }
  }

  std::cerr << "eroof_lint: " << files.size() << " files, " << violations
            << " violation(s), " << suppressed << " suppression(s)";
  if (baselined_count != 0)
    std::cerr << ", " << baselined_count << " baselined";
  std::cerr << "\n";

  if (opt.file.fix_annotations) return 0;
  return violations == 0 ? 0 : 1;
}
