#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace eroof::lint {
namespace {

// ---------------------------------------------------------------------------
// Small lexical helpers
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Finds `tok` in `code` as a whole word: the characters adjacent to the
/// match must not extend the identifier. `tok` itself may contain `::`.
bool has_token(std::string_view code, std::string_view tok) {
  std::size_t pos = 0;
  while ((pos = code.find(tok, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + tok.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Finds a *call* of the free function `name`: the identifier followed by
/// `(` (spaces allowed), not preceded by an identifier character or by
/// member access (`.` / `->`). Qualified calls (`std::time(`) still match.
bool has_call(std::string_view code, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string_view::npos) {
    const std::size_t end = pos + name.size();
    std::size_t p = end;
    while (p < code.size() && code[p] == ' ') ++p;
    const bool is_call = p < code.size() && code[p] == '(';
    bool left_ok = pos == 0;
    if (pos > 0) {
      const char c = code[pos - 1];
      left_ok = !ident_char(c) && c != '.' &&
                !(c == '>' && pos >= 2 && code[pos - 2] == '-');
    }
    if (is_call && left_ok) return true;
    pos += 1;
  }
  return false;
}

/// True if `code` contains `member(` called on something (preceded by an
/// identifier char, `]`, or `)` then `.` or `->`). Used for the container
/// grow checks, where we only care that *some* object grows.
bool has_member_call(std::string_view code, std::string_view member) {
  std::size_t pos = 0;
  const std::string needle = std::string(".") + std::string(member);
  while ((pos = code.find(needle, pos)) != std::string_view::npos) {
    std::size_t p = pos + needle.size();
    while (p < code.size() && code[p] == ' ') ++p;
    if (p < code.size() && code[p] == '(') return true;
    pos += 1;
  }
  return false;
}

/// Position of the first `.member(` match, or npos. Like has_member_call but
/// positional, for the ordering checks in the lock-scope tracker.
std::size_t find_member_call(std::string_view code, std::string_view member,
                             std::size_t from = 0) {
  const std::string needle = std::string(".") + std::string(member);
  std::size_t pos = from;
  while ((pos = code.find(needle, pos)) != std::string_view::npos) {
    std::size_t p = pos + needle.size();
    while (p < code.size() && code[p] == ' ') ++p;
    if (p < code.size() && code[p] == '(') return pos;
    pos += 1;
  }
  return std::string_view::npos;
}

/// Position of the first whole-word occurrence of `tok`, or npos.
std::size_t find_token(std::string_view code, std::string_view tok,
                       std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = code.find(tok, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + tok.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return pos;
    pos += 1;
  }
  return std::string_view::npos;
}

std::string trimmed(std::string_view s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string_view::npos) return std::string();
  const auto e = s.find_last_not_of(" \t");
  return std::string(s.substr(b, e - b + 1));
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

struct Annotations {
  bool hot_begin = false;
  bool hot_end = false;
  bool cold = false;
  std::vector<std::string> allows;  // rule ids from allow(...)
};

Annotations parse_annotations(std::string_view comment) {
  Annotations a;
  // Region markers: "eroof: hot-begin" / "eroof: hot-end" (an optional
  // "(label)" after hot-begin is tolerated and ignored), and the
  // "eroof: cold (reason)" propagation barrier.
  std::size_t pos = 0;
  while ((pos = comment.find("eroof:", pos)) != std::string_view::npos) {
    std::size_t p = pos + 6;
    while (p < comment.size() && comment[p] == ' ') ++p;
    if (comment.compare(p, 9, "hot-begin") == 0)
      a.hot_begin = true;
    else if (comment.compare(p, 7, "hot-end") == 0)
      a.hot_end = true;
    else if (comment.compare(p, 4, "cold") == 0 &&
             (p + 4 >= comment.size() || !ident_char(comment[p + 4])))
      a.cold = true;
    pos = p;
  }
  // Suppressions: "eroof-lint: allow(rule[, rule...])".
  pos = 0;
  while ((pos = comment.find("eroof-lint:", pos)) != std::string_view::npos) {
    std::size_t p = pos + 11;
    while (p < comment.size() && comment[p] == ' ') ++p;
    if (comment.compare(p, 6, "allow(") == 0) {
      const std::size_t open = p + 6;
      const std::size_t close = comment.find(')', open);
      if (close != std::string_view::npos) {
        std::string list(comment.substr(open, close - open));
        std::stringstream ss(list);
        std::string id;
        while (std::getline(ss, id, ',')) {
          const auto b = id.find_first_not_of(" \t");
          const auto e = id.find_last_not_of(" \t");
          if (b != std::string::npos)
            a.allows.push_back(id.substr(b, e - b + 1));
        }
      }
    }
    pos += 11;
  }
  return a;
}

// ---------------------------------------------------------------------------
// Declaration collection (unordered containers, futures)
// ---------------------------------------------------------------------------

/// Skips a balanced template argument list starting at the `<` at `pos`.
/// Returns the index one past the matching `>`, or npos if unbalanced.
std::size_t skip_template_args(std::string_view code, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string_view::npos;
}

/// Names of variables/members declared as `kw<...>` for any of the given
/// template names, anywhere in the (comment-stripped, newline-joined) file.
std::vector<std::string> template_decls(
    std::string_view code, std::initializer_list<std::string_view> kws) {
  std::vector<std::string> names;
  for (const std::string_view kw : kws) {
    std::size_t pos = 0;
    while ((pos = code.find(kw, pos)) != std::string_view::npos) {
      const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
      std::size_t p = pos + kw.size();
      pos += 1;
      if (!left_ok) continue;
      while (p < code.size() && code[p] == ' ') ++p;
      if (p >= code.size() || code[p] != '<') continue;
      p = skip_template_args(code, p - 0);
      if (p == std::string_view::npos) continue;
      while (p < code.size() &&
             (code[p] == ' ' || code[p] == '&' || code[p] == '\n'))
        ++p;
      std::size_t b = p;
      while (p < code.size() && ident_char(code[p])) ++p;
      if (p > b) names.emplace_back(code.substr(b, p - b));
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

/// Does this line iterate one of the declared unordered containers? Matches
/// range-for (`for (... : name)`) and explicit `name.begin()` / `name.end()`
/// / c-variants.
bool iterates_name(std::string_view code, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (!left_ok || !right_ok) {
      pos += 1;
      continue;
    }
    // name.begin() etc.
    for (const std::string_view m : {"begin", "end", "cbegin", "cend"}) {
      std::string_view rest = code.substr(end);
      if (rest.size() > m.size() + 1 && rest[0] == '.' &&
          rest.compare(1, m.size(), m) == 0 && rest[m.size() + 1] == '(')
        return true;
    }
    // Range-for: "... : name)". Look left for ':' that is not '::'.
    std::size_t q = pos;
    while (q > 0 && code[q - 1] == ' ') --q;
    if (q > 0 && code[q - 1] == ':' && (q < 2 || code[q - 2] != ':'))
      return true;
    pos += 1;
  }
  return false;
}

// ---------------------------------------------------------------------------
// The rule table
// ---------------------------------------------------------------------------

struct RuleDoc {
  const char* id;
  const char* doc;
};

const RuleDoc kRules[] = {
    {"nondet-rand",
     "Unseeded/wall-clock entropy source outside util::Rng / util::RngStream"},
    {"nondet-unordered-iter",
     "Iteration over a std::unordered container (hash-order dependent)"},
    {"nondet-omp",
     "OpenMP critical/atomic/reduction may reorder floating-point "
     "accumulation"},
    {"hot-alloc",
     "Heap allocation, container growth, or thread spawn inside (or reachable "
     "from) a // eroof: hot region"},
    {"hot-lock",
     "Mutex acquisition inside (or reachable from) a // eroof: hot region"},
    {"conc-blocking-under-lock",
     "Blocking call (condition wait, future::get, sleep, I/O, trace-registry "
     "emission) while holding a mutex"},
    {"conc-detached-thread",
     "Detached std::thread outlives its owner and races shutdown"},
    {"relaxed-atomic",
     "Explicit std::memory_order_relaxed without an // eroof-lint: "
     "allow(relaxed-atomic) audit"},
    {"conc-unseeded-rng",
     "Default-constructed RNG engine inside an OpenMP parallel region (every "
     "thread gets the same stream)"},
    {"header-pragma-once", "Header is missing #pragma once"},
    {"header-using-namespace", "using-directive at namespace scope in a header"},
    {"annotation-mismatch", "Unbalanced // eroof: hot-begin / hot-end markers"},
    {"stale-allow",
     "allow() suppression that matched no finding (gating under "
     "--strict-allows)"},
};

const std::vector<std::string> kRuleIds = [] {
  std::vector<std::string> ids;
  for (const auto& r : kRules) ids.emplace_back(r.id);
  return ids;
}();

struct BannedCall {
  const char* pattern;
  bool call_only;  // must be followed by '(' and not be a member access
  const char* what;
};

// Determinism: seeded util::Rng / util::RngStream are the only sanctioned
// entropy sources; wall-clock reads belong to src/trace/ alone.
const BannedCall kNondetCalls[] = {
    {"std::rand", false, "std::rand() (unseeded C RNG)"},
    {"rand", true, "rand() (unseeded C RNG)"},
    {"srand", true, "srand() (global RNG seeding)"},
    {"random_device", false, "std::random_device (nondeterministic entropy)"},
    {"time", true, "time() (wall-clock read)"},
    {"high_resolution_clock", false,
     "std::chrono::high_resolution_clock (unspecified, possibly non-steady "
     "clock)"},
};

struct HotAlloc {
  const char* pattern;
  bool member_call;  // match as ".pattern(" on some object
  const char* what;
};

const HotAlloc kHotAllocs[] = {
    {"new", false, "operator new"},
    {"std::make_unique", false, "std::make_unique (operator new)"},
    {"std::make_shared", false, "std::make_shared (operator new)"},
    {"std::function", false, "std::function (type-erased callable may "
                             "heap-allocate)"},
    {"std::string", false, "std::string construction"},
    {"push_back", true, "container grow (push_back)"},
    {"emplace_back", true, "container grow (emplace_back)"},
    {"resize", true, "container grow (resize)"},
    {"reserve", true, "container grow (reserve)"},
    {"insert", true, "container grow (insert)"},
    {"emplace", true, "container grow (emplace)"},
    {"append", true, "container grow (append)"},
    // Thread spawns: a serving worker's steady-state loop must reuse the
    // pool it was given, never create threads per request.
    {"std::thread", false, "std::thread construction (OS thread spawn)"},
    {"std::async", false, "std::async (thread spawn + shared-state "
                          "allocation)"},
};

// Lock acquisitions that make a hot region (or a function reachable from
// one) contend with other threads: RAII guard construction and explicit
// mutex .lock() calls.
struct HotLock {
  const char* pattern;
  bool member_call;
  const char* what;
};

const HotLock kHotLocks[] = {
    {"std::lock_guard", false, "std::lock_guard acquisition"},
    {"std::unique_lock", false, "std::unique_lock acquisition"},
    {"std::scoped_lock", false, "std::scoped_lock acquisition"},
    {"std::shared_lock", false, "std::shared_lock acquisition"},
    {"lock", true, "explicit .lock() acquisition"},
};

// Default-constructible standard RNG engines for the conc-unseeded-rng rule.
const char* const kRngEngines[] = {
    "mt19937",      "mt19937_64",           "minstd_rand", "minstd_rand0",
    "ranlux24",     "ranlux48",             "knuth_b",     "ranlux24_base",
    "ranlux48_base", "default_random_engine",
};

/// If `code` default-constructs one of the standard RNG engines
/// (`std::mt19937 g;`, `g()`, or `g{}`), returns the engine name; else "".
std::string unseeded_engine(std::string_view code) {
  for (const char* eng : kRngEngines) {
    std::size_t pos = find_token(code, eng);
    if (pos == std::string_view::npos) continue;
    std::size_t p = pos + std::string_view(eng).size();
    while (p < code.size() && code[p] == ' ') ++p;
    // Variable name.
    std::size_t b = p;
    while (p < code.size() && ident_char(code[p])) ++p;
    if (p == b) continue;  // not a declaration (e.g. a cast or using-decl)
    while (p < code.size() && code[p] == ' ') ++p;
    if (p >= code.size() || code[p] == ';') return eng;
    if (code[p] == '(' || code[p] == '{') {
      const char close = code[p] == '(' ? ')' : '}';
      std::size_t q = p + 1;
      while (q < code.size() && code[q] == ' ') ++q;
      if (q < code.size() && code[q] == close) return eng;
    }
  }
  return std::string();
}

// Blocking operations for the mutex-held-across-blocking-call rule. The
// trace-registry emitters count as blocking: they acquire the process-wide
// trace mutex, so calling them under another lock nests two locks and
// serializes every tracing thread behind the caller's critical section.
struct BlockingOp {
  const char* pattern;
  enum Kind { Member, Call, Token } kind;
  const char* what;
};

const BlockingOp kBlockingOps[] = {
    {"wait", BlockingOp::Member, "condition/future wait"},
    {"wait_for", BlockingOp::Member, "condition/future timed wait"},
    {"wait_until", BlockingOp::Member, "condition/future timed wait"},
    {"join", BlockingOp::Member, "thread join"},
    {"sleep_for", BlockingOp::Call, "thread sleep"},
    {"sleep_until", BlockingOp::Call, "thread sleep"},
    {"getline", BlockingOp::Call, "stream input"},
    {"printf", BlockingOp::Call, "stdio output"},
    {"fprintf", BlockingOp::Call, "stdio output"},
    {"fwrite", BlockingOp::Call, "stdio output"},
    {"fflush", BlockingOp::Call, "stdio flush"},
    {"system", BlockingOp::Call, "process spawn"},
    {"std::cout", BlockingOp::Token, "iostream output"},
    {"std::cerr", BlockingOp::Token, "iostream output"},
    {"std::cin", BlockingOp::Token, "iostream input"},
    {"counter_add", BlockingOp::Call, "trace-registry emission (acquires the "
                                      "process-wide trace mutex)"},
    {"emit_span", BlockingOp::Call, "trace-registry emission (acquires the "
                                    "process-wide trace mutex)"},
    {"emit_counter", BlockingOp::Call, "trace-registry emission (acquires "
                                       "the process-wide trace mutex)"},
};

}  // namespace

const std::vector<std::string>& rule_ids() { return kRuleIds; }

std::vector<PatternHit> hot_contract_hits(std::string_view code,
                                          bool det_exempt) {
  std::vector<PatternHit> hits;
  for (const auto& h : kHotAllocs) {
    const bool hit = h.member_call ? has_member_call(code, h.pattern)
                                   : has_token(code, h.pattern);
    if (hit) hits.push_back(PatternHit{"hot-alloc", h.what});
  }
  for (const auto& h : kHotLocks) {
    const bool hit = h.member_call ? has_member_call(code, h.pattern)
                                   : has_token(code, h.pattern);
    if (hit) hits.push_back(PatternHit{"hot-lock", h.what});
  }
  if (!det_exempt) {
    for (const auto& b : kNondetCalls) {
      const bool hit = b.call_only ? has_call(code, b.pattern)
                                   : has_token(code, b.pattern);
      if (hit) hits.push_back(PatternHit{"nondet-rand", b.what});
    }
  }
  return hits;
}

std::string_view rule_description(std::string_view rule) {
  for (const auto& r : kRules)
    if (rule == r.id) return r.doc;
  return "";
}

bool determinism_exempt(std::string_view path) {
  const std::string p = [&] {
    std::string s(path);
    std::replace(s.begin(), s.end(), '\\', '/');
    return s;
  }();
  if (p.find("src/trace/") != std::string::npos) return true;
  const std::string_view rng = "util/rng.hpp";
  return p.size() >= rng.size() &&
         p.compare(p.size() - rng.size(), rng.size(), rng) == 0;
}

bool is_header(std::string_view path) {
  for (const std::string_view ext : {".hpp", ".h", ".hh"}) {
    if (path.size() > ext.size() &&
        path.compare(path.size() - ext.size(), ext.size(), ext) == 0)
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Line scanner
// ---------------------------------------------------------------------------

std::vector<ScannedLine> scan_lines(std::string_view content) {
  enum class State { Normal, LineComment, BlockComment, Str, Chr, RawStr };
  std::vector<ScannedLine> lines;
  ScannedLine cur;
  State st = State::Normal;
  std::string raw_delim;  // for RawStr: the ")delim\"" terminator
  // Inside a /* */ block, text after a nested `//` is commented-out comment
  // text (e.g. a disabled `// eroof: hot-begin`); it must not reach the
  // annotation parser. The suppression ends at the next newline.
  bool block_nested_line = false;

  const auto newline = [&](bool spliced_comment) {
    lines.push_back(cur);
    cur = ScannedLine{};
    block_nested_line = false;
    if (st == State::LineComment && !spliced_comment) st = State::Normal;
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      // A backslash immediately before the newline splices the lines: a
      // spliced // comment swallows the next source line too.
      const bool spliced = st == State::LineComment && i > 0 &&
                           content[i - 1] == '\\';
      newline(spliced);
      continue;
    }
    switch (st) {
      case State::Normal: {
        const char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '/' && next == '/') {
          st = State::LineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::BlockComment;
          ++i;
        } else if (c == '"') {
          // Raw string? Look back for R (optionally preceded by u8/u/L/U)
          // with no identifier char before the prefix.
          bool raw = false;
          if (i > 0 && content[i - 1] == 'R') {
            std::size_t b = i - 1;
            if (b > 0 && (content[b - 1] == 'u' || content[b - 1] == 'U' ||
                          content[b - 1] == 'L'))
              --b;
            if (b > 1 && content[b - 1] == '8' && content[b - 2] == 'u')
              b -= 2;
            raw = b == 0 || !ident_char(content[b - 1]);
          }
          if (raw) {
            std::size_t p = i + 1;
            std::string d;
            while (p < content.size() && content[p] != '(' &&
                   content[p] != '\n')
              d += content[p++];
            if (p >= content.size() || content[p] != '(') {
              // Ill-formed raw-string opener (newline or EOF before the
              // '('). Degrade to an ordinary string so line numbers stay in
              // sync instead of silently swallowing the newline.
              st = State::Str;
              cur.code += '"';
            } else {
              raw_delim = ")" + d + "\"";
              st = State::RawStr;
              cur.code += '"';
              i = p;  // at the '('; loop ++i moves past it
            }
          } else {
            st = State::Str;
            cur.code += '"';
          }
        } else if (c == '\'') {
          st = State::Chr;
          cur.code += '\'';
        } else {
          cur.code += c;
        }
        break;
      }
      case State::LineComment:
        cur.comment += c;
        break;
      case State::BlockComment: {
        const char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '*' && next == '/') {
          st = State::Normal;
          cur.code += ' ';  // separate tokens the comment was between
          block_nested_line = false;
          ++i;
        } else if (c == '/' && next == '/') {
          block_nested_line = true;
          cur.comment += ' ';
          ++i;
        } else if (!block_nested_line) {
          cur.comment += c;
        }
        break;
      }
      case State::Str:
        if (c == '\\') {
          if (i + 1 < content.size() && content[i + 1] == '\n') {
            // Escaped newline inside a string literal: the literal continues
            // but the *source* line ends here -- keep line numbers in sync.
            lines.push_back(cur);
            cur = ScannedLine{};
            block_nested_line = false;
          }
          ++i;  // skip the escaped char
        } else if (c == '"') {
          st = State::Normal;
          cur.code += '"';
        }
        break;
      case State::Chr:
        if (c == '\\') {
          if (i + 1 < content.size() && content[i + 1] == '\n') {
            lines.push_back(cur);
            cur = ScannedLine{};
            block_nested_line = false;
          }
          ++i;
        } else if (c == '\'') {
          st = State::Normal;
          cur.code += '\'';
        }
        break;
      case State::RawStr:
        if (c == ')' &&
            content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = State::Normal;
          cur.code += '"';
        }
        break;
    }
  }
  if (!cur.code.empty() || !cur.comment.empty()) lines.push_back(cur);
  return lines;
}

// ---------------------------------------------------------------------------
// SourceFile loading
// ---------------------------------------------------------------------------

SourceFile load_source(const std::string& display_path,
                       std::string_view content) {
  SourceFile sf;
  sf.path = display_path;
  sf.lines = scan_lines(content);
  sf.header = is_header(display_path);
  sf.det_exempt = determinism_exempt(display_path);
  sf.info.resize(sf.lines.size());
  for (std::size_t li = 0; li < sf.lines.size(); ++li) {
    const Annotations a = parse_annotations(sf.lines[li].comment);
    sf.info[li].hot_begin = a.hot_begin;
    sf.info[li].hot_end = a.hot_end;
    sf.info[li].cold = a.cold;
    sf.info[li].allows = a.allows;
    sf.info[li].comment_only =
        sf.lines[li].code.find_first_not_of(" \t") == std::string::npos;
  }
  // Hot ranges: both marker lines are inside the region; a nested hot-begin
  // continues the open region (and is reported as annotation-mismatch by the
  // rule pass); an unclosed region extends to the last line.
  int open = 0;
  for (std::size_t li = 0; li < sf.lines.size(); ++li) {
    if (sf.info[li].hot_begin && open == 0) open = static_cast<int>(li) + 1;
    if (sf.info[li].hot_end && open != 0) {
      sf.hot_ranges.push_back(HotRange{open, static_cast<int>(li) + 1});
      open = 0;
    }
  }
  if (open != 0)
    sf.hot_ranges.push_back(
        HotRange{open, static_cast<int>(sf.lines.size())});
  return sf;
}

bool load_source_file(const std::string& path, SourceFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.path = path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = load_source(path, ss.str());
  return true;
}

// ---------------------------------------------------------------------------
// FileAnalysis: per-file rule pass + shared emission machinery
// ---------------------------------------------------------------------------

void FileAnalysis::emit(int line, const std::string& rule,
                        const std::string& message) {
  // One finding per (line, rule): `srand(time(0))` is one nondet-rand
  // violation, not two, which keeps counts stable for tests and humans.
  // The call-graph layer shares the dedupe: a lexical in-region finding
  // wins over a later transitive finding for the same line.
  for (const auto& prev : report_.findings)
    if (prev.line == line && prev.rule == rule) return;
  Finding f{sf_.path, line, rule, message, false, std::string()};
  const std::size_t li = static_cast<std::size_t>(line) - 1;
  if (li < sf_.lines.size()) f.context = trimmed(sf_.lines[li].code);
  const auto mark_used = [&](int at, const std::string& r) {
    for (auto& pa : allows_)
      if (pa.line == at && pa.rule == r) pa.used = true;
  };
  if (li < sf_.info.size()) {
    for (const auto& id : sf_.info[li].allows) {
      if (id == rule) {
        f.suppressed = true;
        mark_used(line, rule);
        break;
      }
    }
    // Walk up through the contiguous comment-only block above the line:
    // a multi-line justification can carry its allow() on any of its lines.
    for (std::size_t j = li;
         !f.suppressed && j > 0 && sf_.info[j - 1].comment_only; --j) {
      for (const auto& id : sf_.info[j - 1].allows) {
        if (id == rule) {
          f.suppressed = true;
          mark_used(static_cast<int>(j), rule);
          break;
        }
      }
    }
  }
  report_.findings.push_back(std::move(f));
}

bool FileAnalysis::cold_at(int line) const {
  const std::size_t li = static_cast<std::size_t>(line) - 1;
  if (li >= sf_.info.size()) return false;
  if (sf_.info[li].cold) return true;
  for (std::size_t j = li; j > 0 && sf_.info[j - 1].comment_only; --j)
    if (sf_.info[j - 1].cold) return true;
  return false;
}

void FileAnalysis::finalize() {
  // Audit: allow() annotations that suppressed nothing are stale and erode
  // trust in the ones that matter.
  for (const auto& pa : allows_) {
    if (!pa.used)
      report_.notes.push_back(Note{sf_.path, pa.line,
                                   "unused suppression: allow(" + pa.rule +
                                       ") matched no finding"});
    bool known = false;
    for (const auto& id : kRuleIds) known = known || id == pa.rule;
    if (!known)
      report_.notes.push_back(
          Note{sf_.path, pa.line, "unknown rule id in allow(" + pa.rule + ")"});
  }
}

FileAnalysis::FileAnalysis(SourceFile sf, const Options& opt)
    : sf_(std::move(sf)) {
  for (std::size_t li = 0; li < sf_.info.size(); ++li)
    for (const auto& id : sf_.info[li].allows)
      allows_.push_back(AllowSite{static_cast<int>(li) + 1, id, false});

  const std::vector<ScannedLine>& lines = sf_.lines;

  // Joined code (newline-separated) for declarations that span lines.
  std::string joined;
  for (const auto& l : lines) {
    joined += l.code;
    joined += '\n';
  }
  const std::vector<std::string> unordered =
      template_decls(joined, {"unordered_map", "unordered_set"});
  const std::vector<std::string> futures =
      template_decls(joined, {"future", "shared_future"});

  bool in_hot = false;
  int hot_begin_line = 0;
  bool saw_pragma_once = false;

  // Lock-scope tracking for conc-blocking-under-lock. A scope opens at a
  // RAII guard declaration and closes when brace depth drops below the
  // depth at the declaration, or at an explicit `var.unlock()`. An explicit
  // `var.lock()` on a known guard re-opens it (std::unique_lock round trip).
  struct LockScope {
    int decl_line;
    int depth;  // brace depth at the declaration
    std::string var;
    bool active;
  };
  std::vector<LockScope> lock_scopes;
  int brace_depth = 0;

  // OpenMP parallel-region tracking for conc-unseeded-rng: the pragma
  // applies to the next block; the region spans until depth returns to the
  // depth at its opening brace.
  bool omp_pending = false;
  std::vector<int> omp_regions;  // stack of depths at region entry

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const int ln = static_cast<int>(li) + 1;
    const std::string& code = lines[li].code;
    const LineInfo& ann = sf_.info[li];

    // -- annotation bookkeeping ------------------------------------------
    if (ann.hot_begin) {
      if (in_hot)
        emit(ln, "annotation-mismatch",
             "hot-begin inside a hot region opened at line " +
                 std::to_string(hot_begin_line));
      in_hot = true;
      hot_begin_line = ln;
    }

    // Merge pragma continuation lines (backslash splices) so clauses on the
    // continuation are seen as part of the directive.
    std::string pragma_code = code;
    {
      std::size_t look = li;
      while (!pragma_code.empty() && pragma_code.back() == '\\' &&
             look + 1 < lines.size()) {
        pragma_code.pop_back();
        ++look;
        pragma_code += lines[look].code;
      }
    }
    const bool is_omp_pragma =
        pragma_code.find("#pragma") != std::string::npos &&
        has_token(pragma_code, "omp");

    // -- determinism ------------------------------------------------------
    if (!sf_.det_exempt) {
      for (const auto& b : kNondetCalls) {
        const bool hit = b.call_only ? has_call(code, b.pattern)
                                     : has_token(code, b.pattern);
        if (hit)
          emit(ln, "nondet-rand",
               std::string(b.what) +
                   " -- draw from util::Rng / util::RngStream instead");
      }
      for (const auto& name : unordered) {
        if (iterates_name(code, name))
          emit(ln, "nondet-unordered-iter",
               "iteration over std::unordered container '" + name +
                   "' -- order is hash/library dependent; iterate a sorted "
                   "or insertion-ordered view instead");
      }
      if (is_omp_pragma &&
          (has_token(pragma_code, "critical") ||
           has_token(pragma_code, "atomic") ||
           pragma_code.find("reduction") != std::string::npos)) {
        emit(ln, "nondet-omp",
             "OpenMP critical/atomic/reduction can reorder floating-point "
             "accumulation across threads -- justify with "
             "// eroof-lint: allow(nondet-omp) if the ordering is provably "
             "fixed (e.g. simd-only reduction)");
      }
    }

    // -- hot-path allocation and locking ---------------------------------
    // The hot-begin line itself is inside the region; the hot-end line is
    // checked too (an allocation cannot share a line with hot-end in
    // practice, and including it keeps the region definition simple). A
    // cold barrier on the line (or the comment block above it) exempts it,
    // mirroring how the transitive pass treats cold lines in hot bodies.
    if (in_hot && !cold_at(ln)) {
      for (const auto& h : kHotAllocs) {
        const bool hit = h.member_call ? has_member_call(code, h.pattern)
                                       : has_token(code, h.pattern);
        if (hit)
          emit(ln, "hot-alloc",
               std::string(h.what) + " inside // eroof: hot region opened "
                                     "at line " +
                   std::to_string(hot_begin_line));
      }
      for (const auto& h : kHotLocks) {
        const bool hit = h.member_call ? has_member_call(code, h.pattern)
                                       : has_token(code, h.pattern);
        if (hit)
          emit(ln, "hot-lock",
               std::string(h.what) + " inside // eroof: hot region opened "
                                     "at line " +
                   std::to_string(hot_begin_line) +
                   " -- steady-state phase loops must not contend on locks");
      }
    }

    // -- concurrency discipline ------------------------------------------
    if (has_member_call(code, "detach"))
      emit(ln, "conc-detached-thread",
           "detached thread outlives its owner and races shutdown -- join "
           "it or hand it to a worker pool");

    if (has_token(code, "memory_order_relaxed"))
      emit(ln, "relaxed-atomic",
           "explicit memory_order_relaxed -- audit required: justify with "
           "// eroof-lint: allow(relaxed-atomic) why unordered access is "
           "safe here");

    if (!omp_regions.empty()) {
      const std::string eng = unseeded_engine(code);
      if (!eng.empty())
        emit(ln, "conc-unseeded-rng",
             "default-constructed std::" + eng +
                 " inside an OpenMP parallel region gives every thread an "
                 "identical stream -- derive a per-thread stream from "
                 "util::RngStream instead");
    }

    // Blocking calls while a lock scope is active. Scopes declared earlier
    // on the same line count if the declaration precedes the blocking call.
    {
      std::size_t decl_pos = std::string::npos;
      std::string decl_var;
      for (const auto& g : {"std::lock_guard", "std::unique_lock",
                            "std::scoped_lock", "std::shared_lock"}) {
        const std::size_t pos = find_token(code, g);
        if (pos == std::string::npos) continue;
        if (decl_pos == std::string::npos || pos < decl_pos) {
          decl_pos = pos;
          // Variable name: after the type (and optional template args).
          std::size_t p = pos + std::string_view(g).size();
          if (p < code.size() && code[p] == '<') {
            const std::size_t q = skip_template_args(code, p);
            if (q != std::string::npos) p = q;
          }
          while (p < code.size() && code[p] == ' ') ++p;
          std::size_t b = p;
          while (p < code.size() && ident_char(code[p])) ++p;
          decl_var = std::string(code.substr(b, p - b));
        }
      }

      const bool scope_active_at_entry = [&] {
        for (const auto& s : lock_scopes)
          if (s.active) return true;
        return false;
      }();

      for (const auto& op : kBlockingOps) {
        std::size_t pos = std::string::npos;
        switch (op.kind) {
          case BlockingOp::Member:
            pos = find_member_call(code, op.pattern);
            break;
          case BlockingOp::Call: {
            if (has_call(code, op.pattern)) pos = code.find(op.pattern);
            break;
          }
          case BlockingOp::Token:
            pos = find_token(code, op.pattern);
            break;
        }
        if (pos == std::string::npos) continue;
        const bool under_lock =
            scope_active_at_entry ||
            (decl_pos != std::string::npos && decl_pos < pos);
        if (!under_lock) continue;
        int at = ln;
        for (const auto& s : lock_scopes)
          if (s.active) at = s.decl_line;
        if (decl_pos != std::string::npos && decl_pos < pos &&
            !scope_active_at_entry)
          at = ln;
        emit(ln, "conc-blocking-under-lock",
             std::string(op.what) + " while holding a mutex (lock acquired "
                                    "at line " +
                 std::to_string(at) +
                 ") -- blocking under a lock stalls every contending "
                 "thread; move it outside the critical section");
      }

      // Explicit unlock/relock round trips (std::unique_lock).
      if (find_member_call(code, "unlock") != std::string::npos) {
        const std::size_t upos = find_member_call(code, "unlock");
        std::size_t b = upos;
        while (b > 0 && ident_char(code[b - 1])) --b;
        const std::string var(code.substr(b, upos - b));
        bool matched = false;
        for (auto it = lock_scopes.rbegin(); it != lock_scopes.rend(); ++it) {
          if (it->active && (it->var == var || var.empty())) {
            it->active = false;
            matched = true;
            break;
          }
        }
        if (!matched && !lock_scopes.empty()) lock_scopes.back().active = false;
      }
      if (find_member_call(code, "lock") != std::string::npos) {
        const std::size_t lpos = find_member_call(code, "lock");
        std::size_t b = lpos;
        while (b > 0 && ident_char(code[b - 1])) --b;
        const std::string var(code.substr(b, lpos - b));
        for (auto& s : lock_scopes)
          if (!s.active && s.var == var && !var.empty()) s.active = true;
      }

      // Open the scope after the checks: its own declaration line was
      // handled positionally above.
      if (decl_pos != std::string::npos) {
        int depth_at_decl = brace_depth;
        for (std::size_t k = 0; k < decl_pos && k < code.size(); ++k) {
          if (code[k] == '{') ++depth_at_decl;
          if (code[k] == '}') --depth_at_decl;
        }
        lock_scopes.push_back(LockScope{ln, depth_at_decl, decl_var, true});
      }
    }

    // -- brace depth / scope maintenance ---------------------------------
    for (const char ch : code) {
      if (ch == '{') {
        ++brace_depth;
        if (omp_pending) {
          omp_regions.push_back(brace_depth);
          omp_pending = false;
        }
      }
      if (ch == '}') {
        while (!omp_regions.empty() && omp_regions.back() == brace_depth)
          omp_regions.pop_back();
        --brace_depth;
        lock_scopes.erase(
            std::remove_if(lock_scopes.begin(), lock_scopes.end(),
                           [&](const LockScope& s) {
                             return s.depth > brace_depth;
                           }),
            lock_scopes.end());
      }
    }

    // -- header hygiene ---------------------------------------------------
    if (sf_.header) {
      if (code.find("#pragma") != std::string::npos &&
          has_token(code, "once"))
        saw_pragma_once = true;
      if (code.find("using namespace") != std::string::npos)
        emit(ln, "header-using-namespace",
             "using-directive in a header leaks into every includer");
    }

    // -- --fix-annotations ------------------------------------------------
    if (opt.fix_annotations && is_omp_pragma && !in_hot &&
        has_token(pragma_code, "parallel") && !cold_at(ln)) {
      report_.notes.push_back(
          Note{sf_.path, ln,
               "unannotated OpenMP parallel region -- wrap the phase loop "
               "in // eroof: hot-begin / // eroof: hot-end if it must not "
               "allocate, or mark it // eroof: cold (reason) if it may"});
    }

    if (is_omp_pragma && has_token(pragma_code, "parallel"))
      omp_pending = true;

    if (ann.hot_end) {
      if (!in_hot)
        emit(ln, "annotation-mismatch",
             "hot-end without a matching hot-begin");
      in_hot = false;
    }
  }

  if (in_hot) {
    emit(hot_begin_line, "annotation-mismatch",
         "hot-begin never closed (missing // eroof: hot-end)");
  }
  if (sf_.header && !saw_pragma_once && !lines.empty()) {
    // Attach to line 1; a first-line allow() can suppress for generated
    // headers.
    emit(1, "header-pragma-once", "header is missing #pragma once");
  }

  // Collect futures' names for the Member .get() blocking check. Done as a
  // second pass so a member declared below its use still counts.
  if (!futures.empty()) {
    bool in_hot2 = false;
    std::vector<LockScope> scopes2;
    int depth2 = 0;
    (void)in_hot2;
    for (std::size_t li = 0; li < lines.size(); ++li) {
      const int ln = static_cast<int>(li) + 1;
      const std::string& code = lines[li].code;
      const bool active = [&] {
        for (const auto& s : scopes2)
          if (s.active) return true;
        return false;
      }();
      std::size_t decl_pos = std::string::npos;
      for (const auto& g : {"std::lock_guard", "std::unique_lock",
                            "std::scoped_lock", "std::shared_lock"}) {
        const std::size_t pos = find_token(code, g);
        if (pos != std::string::npos &&
            (decl_pos == std::string::npos || pos < decl_pos))
          decl_pos = pos;
      }
      if (active || decl_pos != std::string::npos) {
        for (const auto& name : futures) {
          const std::size_t npos_ = find_token(code, name);
          if (npos_ == std::string::npos) continue;
          const std::size_t gpos = find_member_call(code, "get", npos_);
          if (gpos == npos_ + name.size() &&
              (active ||
               (decl_pos != std::string::npos && decl_pos < gpos))) {
            int at = ln;
            for (const auto& s : scopes2)
              if (s.active) at = s.decl_line;
            if (!active) at = ln;
            emit(ln, "conc-blocking-under-lock",
                 "future::get on '" + name +
                     "' while holding a mutex (lock acquired at line " +
                     std::to_string(at) +
                     ") -- blocking under a lock stalls every contending "
                     "thread; move it outside the critical section");
          }
        }
      }
      if (find_member_call(code, "unlock") != std::string::npos) {
        for (auto it = scopes2.rbegin(); it != scopes2.rend(); ++it) {
          if (it->active) {
            it->active = false;
            break;
          }
        }
      }
      if (decl_pos != std::string::npos) {
        int depth_at_decl = depth2;
        for (std::size_t k = 0; k < decl_pos && k < code.size(); ++k) {
          if (code[k] == '{') ++depth_at_decl;
          if (code[k] == '}') --depth_at_decl;
        }
        scopes2.push_back(LockScope{ln, depth_at_decl, std::string(), true});
      }
      for (const char ch : code) {
        if (ch == '{') ++depth2;
        if (ch == '}') {
          --depth2;
          scopes2.erase(std::remove_if(scopes2.begin(), scopes2.end(),
                                       [&](const LockScope& s) {
                                         return s.depth > depth2;
                                       }),
                        scopes2.end());
        }
      }
    }
  }

}

// ---------------------------------------------------------------------------
// Back-compat single-file entry points
// ---------------------------------------------------------------------------

FileReport lint_content(const std::string& display_path,
                        std::string_view content, const Options& opt) {
  FileAnalysis fa(load_source(display_path, content), opt);
  fa.finalize();
  return fa.report();
}

FileReport lint_file(const std::string& path, const Options& opt) {
  SourceFile sf;
  if (!load_source_file(path, sf)) {
    FileReport rep;
    rep.findings.push_back(
        Finding{path, 0, "io-error", "cannot read file", false, std::string()});
    return rep;
  }
  FileAnalysis fa(std::move(sf), opt);
  fa.finalize();
  return fa.report();
}

}  // namespace eroof::lint
