#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace eroof::lint {
namespace {

// ---------------------------------------------------------------------------
// Small lexical helpers
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Finds `tok` in `code` as a whole word: the characters adjacent to the
/// match must not extend the identifier. `tok` itself may contain `::`.
bool has_token(std::string_view code, std::string_view tok) {
  std::size_t pos = 0;
  while ((pos = code.find(tok, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + tok.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Finds a *call* of the free function `name`: the identifier followed by
/// `(` (spaces allowed), not preceded by an identifier character or by
/// member access (`.` / `->`). Qualified calls (`std::time(`) still match.
bool has_call(std::string_view code, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string_view::npos) {
    const std::size_t end = pos + name.size();
    std::size_t p = end;
    while (p < code.size() && code[p] == ' ') ++p;
    const bool is_call = p < code.size() && code[p] == '(';
    bool left_ok = pos == 0;
    if (pos > 0) {
      const char c = code[pos - 1];
      left_ok = !ident_char(c) && c != '.' &&
                !(c == '>' && pos >= 2 && code[pos - 2] == '-');
    }
    if (is_call && left_ok) return true;
    pos += 1;
  }
  return false;
}

/// True if `code` contains `member(` called on something (preceded by an
/// identifier char, `]`, or `)` then `.` or `->`). Used for the container
/// grow checks, where we only care that *some* object grows.
bool has_member_call(std::string_view code, std::string_view member) {
  std::size_t pos = 0;
  const std::string needle = std::string(".") + std::string(member);
  while ((pos = code.find(needle, pos)) != std::string_view::npos) {
    std::size_t p = pos + needle.size();
    while (p < code.size() && code[p] == ' ') ++p;
    if (p < code.size() && code[p] == '(') return true;
    pos += 1;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

struct Annotations {
  bool hot_begin = false;
  bool hot_end = false;
  std::vector<std::string> allows;  // rule ids from allow(...)
};

Annotations parse_annotations(std::string_view comment) {
  Annotations a;
  // Region markers: "eroof: hot-begin" / "eroof: hot-end" (an optional
  // "(label)" after hot-begin is tolerated and ignored).
  std::size_t pos = 0;
  while ((pos = comment.find("eroof:", pos)) != std::string_view::npos) {
    std::size_t p = pos + 6;
    while (p < comment.size() && comment[p] == ' ') ++p;
    if (comment.compare(p, 9, "hot-begin") == 0)
      a.hot_begin = true;
    else if (comment.compare(p, 7, "hot-end") == 0)
      a.hot_end = true;
    pos = p;
  }
  // Suppressions: "eroof-lint: allow(rule[, rule...])".
  pos = 0;
  while ((pos = comment.find("eroof-lint:", pos)) != std::string_view::npos) {
    std::size_t p = pos + 11;
    while (p < comment.size() && comment[p] == ' ') ++p;
    if (comment.compare(p, 6, "allow(") == 0) {
      const std::size_t open = p + 6;
      const std::size_t close = comment.find(')', open);
      if (close != std::string_view::npos) {
        std::string list(comment.substr(open, close - open));
        std::stringstream ss(list);
        std::string id;
        while (std::getline(ss, id, ',')) {
          const auto b = id.find_first_not_of(" \t");
          const auto e = id.find_last_not_of(" \t");
          if (b != std::string::npos)
            a.allows.push_back(id.substr(b, e - b + 1));
        }
      }
    }
    pos += 11;
  }
  return a;
}

// ---------------------------------------------------------------------------
// Unordered-container declaration collection (for the iteration rule)
// ---------------------------------------------------------------------------

/// Skips a balanced template argument list starting at the `<` at `pos`.
/// Returns the index one past the matching `>`, or npos if unbalanced.
std::size_t skip_template_args(std::string_view code, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string_view::npos;
}

/// Names of variables/members declared as std::unordered_{map,set} anywhere
/// in the (comment-stripped, newline-joined) file.
std::vector<std::string> unordered_decls(std::string_view code) {
  std::vector<std::string> names;
  for (const std::string_view kw : {"unordered_map", "unordered_set"}) {
    std::size_t pos = 0;
    while ((pos = code.find(kw, pos)) != std::string_view::npos) {
      std::size_t p = pos + kw.size();
      pos += 1;
      while (p < code.size() && code[p] == ' ') ++p;
      if (p >= code.size() || code[p] != '<') continue;
      p = skip_template_args(code, p);
      if (p == std::string_view::npos) continue;
      while (p < code.size() &&
             (code[p] == ' ' || code[p] == '&' || code[p] == '\n'))
        ++p;
      std::size_t b = p;
      while (p < code.size() && ident_char(code[p])) ++p;
      if (p > b) names.emplace_back(code.substr(b, p - b));
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

/// Does this line iterate one of the declared unordered containers? Matches
/// range-for (`for (... : name)`) and explicit `name.begin()` / `name.end()`
/// / c-variants.
bool iterates_name(std::string_view code, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (!left_ok || !right_ok) {
      pos += 1;
      continue;
    }
    // name.begin() etc.
    for (const std::string_view m : {"begin", "end", "cbegin", "cend"}) {
      std::string_view rest = code.substr(end);
      if (rest.size() > m.size() + 1 && rest[0] == '.' &&
          rest.compare(1, m.size(), m) == 0 && rest[m.size() + 1] == '(')
        return true;
    }
    // Range-for: "... : name)". Look left for ':' that is not '::'.
    std::size_t q = pos;
    while (q > 0 && code[q - 1] == ' ') --q;
    if (q > 0 && code[q - 1] == ':' && (q < 2 || code[q - 2] != ':'))
      return true;
    pos += 1;
  }
  return false;
}

// ---------------------------------------------------------------------------
// The rule table
// ---------------------------------------------------------------------------

const std::vector<std::string> kRuleIds = {
    "nondet-rand",        "nondet-unordered-iter", "nondet-omp",
    "hot-alloc",          "header-pragma-once",    "header-using-namespace",
    "annotation-mismatch"};

struct BannedCall {
  const char* pattern;
  bool call_only;  // must be followed by '(' and not be a member access
  const char* what;
};

// Determinism: seeded util::Rng / util::RngStream are the only sanctioned
// entropy sources; wall-clock reads belong to src/trace/ alone.
const BannedCall kNondetCalls[] = {
    {"std::rand", false, "std::rand() (unseeded C RNG)"},
    {"rand", true, "rand() (unseeded C RNG)"},
    {"srand", true, "srand() (global RNG seeding)"},
    {"random_device", false, "std::random_device (nondeterministic entropy)"},
    {"time", true, "time() (wall-clock read)"},
    {"high_resolution_clock", false,
     "std::chrono::high_resolution_clock (unspecified, possibly non-steady "
     "clock)"},
};

struct HotAlloc {
  const char* pattern;
  bool member_call;  // match as ".pattern(" on some object
  const char* what;
};

const HotAlloc kHotAllocs[] = {
    {"new", false, "operator new"},
    {"std::make_unique", false, "std::make_unique (operator new)"},
    {"std::make_shared", false, "std::make_shared (operator new)"},
    {"std::function", false, "std::function (type-erased callable may "
                             "heap-allocate)"},
    {"std::string", false, "std::string construction"},
    {"push_back", true, "container grow (push_back)"},
    {"emplace_back", true, "container grow (emplace_back)"},
    {"resize", true, "container grow (resize)"},
    {"reserve", true, "container grow (reserve)"},
    {"insert", true, "container grow (insert)"},
    {"emplace", true, "container grow (emplace)"},
    {"append", true, "container grow (append)"},
    // Thread spawns: a serving worker's steady-state loop must reuse the
    // pool it was given, never create threads per request.
    {"std::thread", false, "std::thread construction (OS thread spawn)"},
    {"std::async", false, "std::async (thread spawn + shared-state "
                          "allocation)"},
};

}  // namespace

const std::vector<std::string>& rule_ids() { return kRuleIds; }

bool determinism_exempt(std::string_view path) {
  const std::string p = [&] {
    std::string s(path);
    std::replace(s.begin(), s.end(), '\\', '/');
    return s;
  }();
  if (p.find("src/trace/") != std::string::npos) return true;
  const std::string_view rng = "util/rng.hpp";
  return p.size() >= rng.size() &&
         p.compare(p.size() - rng.size(), rng.size(), rng) == 0;
}

bool is_header(std::string_view path) {
  for (const std::string_view ext : {".hpp", ".h", ".hh"}) {
    if (path.size() > ext.size() &&
        path.compare(path.size() - ext.size(), ext.size(), ext) == 0)
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Line scanner
// ---------------------------------------------------------------------------

std::vector<ScannedLine> scan_lines(std::string_view content) {
  enum class State { Normal, LineComment, BlockComment, Str, Chr, RawStr };
  std::vector<ScannedLine> lines;
  ScannedLine cur;
  State st = State::Normal;
  std::string raw_delim;  // for RawStr: the ")delim\"" terminator

  const auto newline = [&] {
    lines.push_back(cur);
    cur = ScannedLine{};
    if (st == State::LineComment) st = State::Normal;
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      newline();
      continue;
    }
    switch (st) {
      case State::Normal: {
        const char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '/' && next == '/') {
          st = State::LineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::BlockComment;
          ++i;
        } else if (c == '"') {
          // Raw string? Look back for R (optionally preceded by u8/u/L/U)
          // with no identifier char before the prefix.
          bool raw = false;
          if (i > 0 && content[i - 1] == 'R') {
            std::size_t b = i - 1;
            if (b > 0 && (content[b - 1] == 'u' || content[b - 1] == 'U' ||
                          content[b - 1] == 'L'))
              --b;
            if (b > 1 && content[b - 1] == '8' && content[b - 2] == 'u')
              b -= 2;
            raw = b == 0 || !ident_char(content[b - 1]);
          }
          if (raw) {
            std::size_t p = i + 1;
            std::string d;
            while (p < content.size() && content[p] != '(' &&
                   content[p] != '\n')
              d += content[p++];
            raw_delim = ")" + d + "\"";
            st = State::RawStr;
            cur.code += '"';
            i = p;  // at the '('; loop ++i moves past it
          } else {
            st = State::Str;
            cur.code += '"';
          }
        } else if (c == '\'') {
          st = State::Chr;
          cur.code += '\'';
        } else {
          cur.code += c;
        }
        break;
      }
      case State::LineComment:
        cur.comment += c;
        break;
      case State::BlockComment: {
        const char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '*' && next == '/') {
          st = State::Normal;
          cur.code += ' ';  // separate tokens the comment was between
          ++i;
        } else {
          cur.comment += c;
        }
        break;
      }
      case State::Str:
        if (c == '\\') {
          ++i;  // skip escaped char (an escaped newline in a string is UB-ish
                // in source anyway; keep it simple)
        } else if (c == '"') {
          st = State::Normal;
          cur.code += '"';
        }
        break;
      case State::Chr:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = State::Normal;
          cur.code += '\'';
        }
        break;
      case State::RawStr:
        if (c == ')' &&
            content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = State::Normal;
          cur.code += '"';
        }
        break;
    }
  }
  if (!cur.code.empty() || !cur.comment.empty()) lines.push_back(cur);
  return lines;
}

// ---------------------------------------------------------------------------
// The lint pass
// ---------------------------------------------------------------------------

FileReport lint_content(const std::string& display_path,
                        std::string_view content, const Options& opt) {
  FileReport rep;
  const std::vector<ScannedLine> lines = scan_lines(content);
  const bool header = is_header(display_path);
  const bool det_exempt = determinism_exempt(display_path);

  // Joined code (newline-separated) for declarations that span lines.
  std::string joined;
  joined.reserve(content.size());
  for (const auto& l : lines) {
    joined += l.code;
    joined += '\n';
  }
  const std::vector<std::string> unordered = unordered_decls(joined);

  // Pre-parse every line's annotations. A suppression applies to findings on
  // its own line, or -- when the allow() sits on a comment-only line -- to
  // the line directly below it (the NOLINTNEXTLINE pattern, needed for
  // `#pragma` lines where a long trailing comment would be unreadable).
  std::vector<Annotations> anns(lines.size());
  std::vector<bool> comment_only(lines.size(), false);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    anns[li] = parse_annotations(lines[li].comment);
    comment_only[li] =
        lines[li].code.find_first_not_of(" \t") == std::string::npos;
  }

  // Per-line allow() bookkeeping so unused suppressions can be audited.
  struct PendingAllow {
    int line;
    std::string rule;
    bool used = false;
  };
  std::vector<PendingAllow> allows;
  for (std::size_t li = 0; li < lines.size(); ++li)
    for (const auto& id : anns[li].allows)
      allows.push_back(PendingAllow{static_cast<int>(li) + 1, id, false});
  const auto mark_used = [&](int line, const std::string& rule) {
    for (auto& pa : allows)
      if (pa.line == line && pa.rule == rule) pa.used = true;
  };

  bool in_hot = false;
  int hot_begin_line = 0;
  bool saw_pragma_once = false;

  const auto emit = [&](int line, const std::string& rule,
                        const std::string& message) {
    // One finding per (line, rule): `srand(time(0))` is one nondet-rand
    // violation, not two, which keeps counts stable for tests and humans.
    for (const auto& prev : rep.findings)
      if (prev.line == line && prev.rule == rule) return;
    Finding f{display_path, line, rule, message, false};
    const std::size_t li = static_cast<std::size_t>(line) - 1;
    for (const auto& id : anns[li].allows) {
      if (id == rule) {
        f.suppressed = true;
        mark_used(line, rule);
        break;
      }
    }
    // Walk up through the contiguous comment-only block above the line:
    // a multi-line justification can carry its allow() on any of its lines.
    for (std::size_t j = li; !f.suppressed && j > 0 && comment_only[j - 1];
         --j) {
      for (const auto& id : anns[j - 1].allows) {
        if (id == rule) {
          f.suppressed = true;
          mark_used(static_cast<int>(j), rule);
          break;
        }
      }
    }
    rep.findings.push_back(std::move(f));
  };

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const int ln = static_cast<int>(li) + 1;
    const std::string& code = lines[li].code;
    const Annotations& ann = anns[li];

    // -- annotation bookkeeping ------------------------------------------
    if (ann.hot_begin) {
      if (in_hot)
        emit(ln, "annotation-mismatch",
             "hot-begin inside a hot region opened at line " +
                 std::to_string(hot_begin_line));
      in_hot = true;
      hot_begin_line = ln;
    }

    // Merge pragma continuation lines (backslash splices) so clauses on the
    // continuation are seen as part of the directive.
    std::string pragma_code = code;
    {
      std::size_t look = li;
      while (!pragma_code.empty() && pragma_code.back() == '\\' &&
             look + 1 < lines.size()) {
        pragma_code.pop_back();
        ++look;
        pragma_code += lines[look].code;
      }
    }
    const bool is_omp_pragma =
        pragma_code.find("#pragma") != std::string::npos &&
        has_token(pragma_code, "omp");

    // -- determinism ------------------------------------------------------
    if (!det_exempt) {
      for (const auto& b : kNondetCalls) {
        const bool hit = b.call_only ? has_call(code, b.pattern)
                                     : has_token(code, b.pattern);
        if (hit)
          emit(ln, "nondet-rand",
               std::string(b.what) +
                   " -- draw from util::Rng / util::RngStream instead");
      }
      for (const auto& name : unordered) {
        if (iterates_name(code, name))
          emit(ln, "nondet-unordered-iter",
               "iteration over std::unordered container '" + name +
                   "' -- order is hash/library dependent; iterate a sorted "
                   "or insertion-ordered view instead");
      }
      if (is_omp_pragma &&
          (has_token(pragma_code, "critical") ||
           has_token(pragma_code, "atomic") ||
           pragma_code.find("reduction") != std::string::npos)) {
        emit(ln, "nondet-omp",
             "OpenMP critical/atomic/reduction can reorder floating-point "
             "accumulation across threads -- justify with "
             "// eroof-lint: allow(nondet-omp) if the ordering is provably "
             "fixed (e.g. simd-only reduction)");
      }
    }

    // -- hot-path allocation ---------------------------------------------
    // The hot-begin line itself is inside the region; the hot-end line is
    // checked too (an allocation cannot share a line with hot-end in
    // practice, and including it keeps the region definition simple).
    if (in_hot) {
      for (const auto& h : kHotAllocs) {
        const bool hit = h.member_call ? has_member_call(code, h.pattern)
                                       : has_token(code, h.pattern);
        if (hit)
          emit(ln, "hot-alloc",
               std::string(h.what) + " inside // eroof: hot region opened "
                                     "at line " +
                   std::to_string(hot_begin_line));
      }
    }

    // -- header hygiene ---------------------------------------------------
    if (header) {
      if (code.find("#pragma") != std::string::npos &&
          has_token(code, "once"))
        saw_pragma_once = true;
      if (code.find("using namespace") != std::string::npos)
        emit(ln, "header-using-namespace",
             "using-directive in a header leaks into every includer");
    }

    // -- --fix-annotations ------------------------------------------------
    if (opt.fix_annotations && is_omp_pragma && !in_hot &&
        has_token(pragma_code, "parallel")) {
      rep.notes.push_back(
          Note{display_path, ln,
               "unannotated OpenMP parallel region -- wrap the phase loop "
               "in // eroof: hot-begin / // eroof: hot-end if it must not "
               "allocate"});
    }

    if (ann.hot_end) {
      if (!in_hot)
        emit(ln, "annotation-mismatch",
             "hot-end without a matching hot-begin");
      in_hot = false;
    }
  }

  if (in_hot) {
    emit(hot_begin_line, "annotation-mismatch",
         "hot-begin never closed (missing // eroof: hot-end)");
  }
  if (header && !saw_pragma_once && !lines.empty()) {
    // Attach to line 1; a first-line allow() can suppress for generated
    // headers.
    emit(1, "header-pragma-once", "header is missing #pragma once");
  }

  // Audit: allow() annotations that suppressed nothing are stale and erode
  // trust in the ones that matter.
  for (const auto& pa : allows) {
    if (!pa.used)
      rep.notes.push_back(Note{display_path, pa.line,
                               "unused suppression: allow(" + pa.rule +
                                   ") matched no finding"});
    bool known = false;
    for (const auto& id : kRuleIds) known = known || id == pa.rule;
    if (!known)
      rep.notes.push_back(Note{display_path, pa.line,
                               "unknown rule id in allow(" + pa.rule + ")"});
  }
  return rep;
}

FileReport lint_file(const std::string& path, const Options& opt) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    FileReport rep;
    rep.findings.push_back(
        Finding{path, 0, "io-error", "cannot read file", false});
    return rep;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  return lint_content(path, content, opt);
}

}  // namespace eroof::lint
