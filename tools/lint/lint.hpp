// eroof-lint: in-tree static analysis for the project's correctness
// contracts.
//
// The repo guarantees two properties that ordinary compilers cannot check:
//
//   1. *Determinism* -- every measurement, fit, and cross-validation result
//      is bitwise-reproducible from a single seed, across thread counts and
//      iteration orders (DESIGN.md section 8). A stray std::rand(), an
//      iteration over an unordered container in result-producing code, or an
//      unannotated OpenMP reduction silently breaks that.
//   2. *Zero-allocation hot paths* -- the steady-state FMM phase loops, the
//      batched kernel evaluators, the campaign cell bodies, and PowerMon's
//      batched sample path never touch the heap (DESIGN.md section 7).
//
// This library enforces both as named, suppressible lint rules over the
// project's own sources. It is deliberately a *lexical* analyzer: a small
// comment/string-aware line scanner plus token matchers, no AST, no external
// dependencies, so it builds in milliseconds everywhere the project builds
// (C++17 is enough) and runs as a gating CI job.
//
// Since v2 the per-file pass is the first layer of a whole-program analysis:
// tools/lint/index.hpp builds a cross-translation-unit function index over
// the scanned sources, and tools/lint/callgraph.hpp propagates hot-region
// reachability over the call graph so allocation, nondeterminism, and lock
// acquisition are flagged in any function *reachable from* a hot region,
// reported with the full call chain. tools/lint/sarif.hpp serializes the
// merged report as SARIF 2.1.0 and implements the committed-baseline gate.
//
// Annotation grammar (all inside ordinary comments):
//
//   // eroof: hot-begin            opens a hot region (no-allocation zone)
//   // eroof: hot-end              closes it
//   // eroof: cold (reason)       cold barrier: calls on this line (or the
//                                  function whose definition follows this
//                                  comment) do not propagate hot-region
//                                  reachability; on an OpenMP pragma line it
//                                  documents why the region is exempt from
//                                  --fix-annotations coverage
//   // eroof-lint: allow(rule-id)  suppresses `rule-id` on this line, with
//                                  an audit trail; allow(a, b) suppresses
//                                  several rules at once
//
// Rule ids are listed in lint.cpp (kRuleIds) and documented in DESIGN.md
// section 9.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace eroof::lint {

/// One diagnostic. `suppressed` findings matched an `allow(rule)` annotation
/// on their line: they are reported in the audit trail but do not fail the
/// run.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  /// Trimmed source text of the flagged line. Baseline matching keys on
  /// (file, rule, context) so committed baselines survive unrelated edits
  /// that shift line numbers.
  std::string context;
};

/// Informational output (not a failure unless --strict-allows promotes the
/// stale-suppression subset): unannotated OpenMP parallel regions from
/// --fix-annotations, allow() annotations that suppressed nothing, and
/// unresolvable call sites reached from hot regions.
struct Note {
  std::string file;
  int line = 0;
  std::string text;
};

struct Options {
  /// Collect notes for `#pragma omp parallel` regions that are not inside a
  /// hot region (candidates for hot-begin/hot-end annotation).
  bool fix_annotations = false;
};

struct FileReport {
  std::vector<Finding> findings;  // violations + suppressed, in line order
  std::vector<Note> notes;
};

/// The result of a line scanner pass: per source line, the code with
/// comments, string literals, and char literals blanked out, plus the
/// concatenated comment text of that line (where annotations live).
struct ScannedLine {
  std::string code;
  std::string comment;
};

/// Comment/string-aware splitter. Handles //, /*...*/ (multi-line), string
/// and char literals with escapes, raw strings R"delim(...)delim", and
/// backslash line splices (a spliced // comment continues onto the next
/// source line; an escaped newline inside a string literal keeps line
/// numbers in sync). `//`-introduced text nested inside a /* */ block
/// comment is dropped from the comment stream: it is commented-out comment
/// text, so annotations in it must not take effect.
std::vector<ScannedLine> scan_lines(std::string_view content);

/// Per-line annotation and structure facts, parsed once per file.
struct LineInfo {
  bool hot_begin = false;
  bool hot_end = false;
  bool cold = false;          ///< carries an `// eroof: cold` barrier
  bool comment_only = false;  ///< no code beyond whitespace
  std::vector<std::string> allows;  ///< rule ids from allow(...)
};

/// A hot region in 1-based inclusive line numbers. An unclosed hot-begin
/// extends to the last line (and is reported as annotation-mismatch by the
/// per-file pass).
struct HotRange {
  int begin = 0;
  int end = 0;
};

/// One scanned + annotation-parsed source file: the unit the per-file rule
/// pass, the function indexer, and the call-graph layer all consume.
struct SourceFile {
  std::string path;
  std::vector<ScannedLine> lines;
  std::vector<LineInfo> info;       // parallel to `lines`
  std::vector<HotRange> hot_ranges;
  bool det_exempt = false;
  bool header = false;

  bool in_hot(int line) const {
    for (const HotRange& r : hot_ranges)
      if (line >= r.begin && line <= r.end) return true;
    return false;
  }
};

SourceFile load_source(const std::string& display_path,
                       std::string_view content);
/// Returns false (and leaves `out.path` set) if the file cannot be read.
bool load_source_file(const std::string& path, SourceFile& out);

/// Suppression bookkeeping shared by the per-file pass and the call-graph
/// pass: every allow() site in one file, with whether anything used it.
struct AllowSite {
  int line = 0;
  std::string rule;
  bool used = false;
};

/// One file's analysis in progress. The per-file rules run in the
/// constructor; the whole-program layers then emit additional findings via
/// emit() (sharing the same allow-table and (line, rule) dedupe), and
/// finalize() appends the stale/unknown-suppression notes last.
class FileAnalysis {
 public:
  FileAnalysis(SourceFile sf, const Options& opt);

  /// Emits a finding at (line, rule) unless that pair was already reported.
  /// Applies allow() suppression from the line itself or the contiguous
  /// comment-only block above it, marking the allow-site used.
  void emit(int line, const std::string& rule, const std::string& message);

  /// True if `line` (or its comment block above) carries a cold barrier.
  bool cold_at(int line) const;

  /// Appends "unused suppression" / "unknown rule id" notes. Call exactly
  /// once, after every pass that may consume allow() sites has run.
  void finalize();

  const SourceFile& source() const { return sf_; }
  const std::vector<AllowSite>& allow_sites() const { return allows_; }
  FileReport& report() { return report_; }
  const FileReport& report() const { return report_; }

 private:
  SourceFile sf_;
  std::vector<AllowSite> allows_;
  FileReport report_;
};

/// Lint a buffer as if it were the file `display_path` (the path decides
/// header rules and the rng.hpp / src/trace/ determinism exemptions).
/// Per-file rules only; the call-graph layer is callgraph.hpp's
/// analyze_program.
FileReport lint_content(const std::string& display_path,
                        std::string_view content, const Options& opt);

/// Lint a file on disk. Returns a report with a single "io-error" finding if
/// the file cannot be read.
FileReport lint_file(const std::string& path, const Options& opt);

/// One lexical rule hit on a line, for the call-graph layer's transitive
/// body checks (same pattern tables as the in-region rules).
struct PatternHit {
  std::string rule;  // "hot-alloc", "hot-lock", or "nondet-rand"
  std::string what;  // human-readable pattern description
};

/// Hot-contract hits on one blanked code line: allocation/growth/thread
/// spawn (hot-alloc), lock acquisition (hot-lock), and -- unless the file is
/// determinism-exempt -- the banned entropy/clock calls (nondet-rand).
std::vector<PatternHit> hot_contract_hits(std::string_view code,
                                          bool det_exempt);

/// True if `path` names a file the determinism rules exempt (the seeded RNG
/// implementation itself and the wall-clock-based tracing subsystem).
bool determinism_exempt(std::string_view path);

/// True for .hpp/.h/.hh files (header-hygiene rules apply).
bool is_header(std::string_view path);

/// All known rule ids, for validating allow(...) annotations.
const std::vector<std::string>& rule_ids();

/// One-line description per rule id (SARIF rule metadata and docs).
std::string_view rule_description(std::string_view rule);

}  // namespace eroof::lint
