// eroof-lint: in-tree static analysis for the project's correctness
// contracts.
//
// The repo guarantees two properties that ordinary compilers cannot check:
//
//   1. *Determinism* -- every measurement, fit, and cross-validation result
//      is bitwise-reproducible from a single seed, across thread counts and
//      iteration orders (DESIGN.md section 8). A stray std::rand(), an
//      iteration over an unordered container in result-producing code, or an
//      unannotated OpenMP reduction silently breaks that.
//   2. *Zero-allocation hot paths* -- the steady-state FMM phase loops, the
//      batched kernel evaluators, the campaign cell bodies, and PowerMon's
//      batched sample path never touch the heap (DESIGN.md section 7).
//
// This library enforces both as named, suppressible lint rules over the
// project's own sources. It is deliberately a *lexical* analyzer: a small
// comment/string-aware line scanner plus token matchers, no AST, no external
// dependencies, so it builds in milliseconds everywhere the project builds
// (C++17 is enough) and runs as a gating CI job.
//
// Annotation grammar (all inside ordinary comments):
//
//   // eroof: hot-begin            opens a hot region (no-allocation zone)
//   // eroof: hot-end              closes it
//   // eroof-lint: allow(rule-id)  suppresses `rule-id` on this line, with
//                                  an audit trail; allow(a, b) suppresses
//                                  several rules at once
//
// Rule ids are listed in lint.cpp (kRuleIds) and documented in DESIGN.md
// section 9.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace eroof::lint {

/// One diagnostic. `suppressed` findings matched an `allow(rule)` annotation
/// on their line: they are reported in the audit trail but do not fail the
/// run.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
};

/// Informational output (not a failure): unannotated OpenMP parallel regions
/// from --fix-annotations, and allow() annotations that suppressed nothing.
struct Note {
  std::string file;
  int line = 0;
  std::string text;
};

struct Options {
  /// Collect notes for `#pragma omp parallel` regions that are not inside a
  /// hot region (candidates for hot-begin/hot-end annotation).
  bool fix_annotations = false;
};

struct FileReport {
  std::vector<Finding> findings;  // violations + suppressed, in line order
  std::vector<Note> notes;
};

/// The result of a line scanner pass: per source line, the code with
/// comments, string literals, and char literals blanked out, plus the
/// concatenated comment text of that line (where annotations live).
struct ScannedLine {
  std::string code;
  std::string comment;
};

/// Comment/string-aware splitter. Handles //, /*...*/ (multi-line), string
/// and char literals with escapes, and raw strings R"delim(...)delim".
std::vector<ScannedLine> scan_lines(std::string_view content);

/// Lint a buffer as if it were the file `display_path` (the path decides
/// header rules and the rng.hpp / src/trace/ determinism exemptions).
FileReport lint_content(const std::string& display_path,
                        std::string_view content, const Options& opt);

/// Lint a file on disk. Returns a report with a single "io-error" finding if
/// the file cannot be read.
FileReport lint_file(const std::string& path, const Options& opt);

/// True if `path` names a file the determinism rules exempt (the seeded RNG
/// implementation itself and the wall-clock-based tracing subsystem).
bool determinism_exempt(std::string_view path);

/// True for .hpp/.h/.hh files (header-hygiene rules apply).
bool is_header(std::string_view path);

/// All known rule ids, for validating allow(...) annotations.
const std::vector<std::string>& rule_ids();

}  // namespace eroof::lint
