#include "index.hpp"

#include <algorithm>
#include <cctype>
#include <initializer_list>
#include <set>

namespace eroof::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "alignas",      "alignof",   "asm",           "auto",
      "bool",         "break",     "case",          "catch",
      "char",         "char16_t",  "char32_t",      "class",
      "const",        "constexpr", "const_cast",    "continue",
      "decltype",     "default",   "delete",        "do",
      "double",       "dynamic_cast", "else",       "enum",
      "explicit",     "export",    "extern",        "false",
      "final",        "float",     "for",           "friend",
      "goto",         "if",        "inline",        "int",
      "long",         "mutable",   "namespace",     "new",
      "noexcept",     "nullptr",   "operator",      "override",
      "private",      "protected", "public",        "register",
      "reinterpret_cast", "return", "short",        "signed",
      "sizeof",       "static",    "static_assert", "static_cast",
      "struct",       "switch",    "template",      "this",
      "thread_local", "throw",     "true",          "try",
      "typedef",      "typeid",    "typename",      "union",
      "unsigned",     "using",     "virtual",       "void",
      "volatile",     "wchar_t",   "while",
  };
  return kw;
}

}  // namespace

bool is_cpp_keyword(const std::string& s) { return keywords().count(s) != 0; }

bool is_all_caps_macro(const std::string& s) {
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isalpha(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

namespace {

bool is_keyword(const std::string& s) { return is_cpp_keyword(s); }
bool all_caps(const std::string& s) { return is_all_caps_macro(s); }

}  // namespace

std::vector<Token> tokenize(const std::vector<ScannedLine>& lines) {
  std::vector<Token> toks;
  bool pp_continuation = false;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    const int ln = static_cast<int>(li) + 1;
    // Preprocessor lines (and their backslash continuations) carry no
    // function definitions and would only confuse the parser.
    const std::size_t first = code.find_first_not_of(" \t");
    const bool is_pp =
        pp_continuation ||
        (first != std::string::npos && code[first] == '#');
    if (is_pp) {
      pp_continuation = !code.empty() && code.back() == '\\';
      continue;
    }
    for (std::size_t i = 0; i < code.size();) {
      const char c = code[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      if (ident_start(c)) {
        std::size_t b = i;
        while (i < code.size() && ident_char(code[i])) ++i;
        toks.push_back(Token{Token::Kind::Ident, code.substr(b, i - b), ln});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        // pp-number approximation: digits, idents, dots, digit separators,
        // exponent signs.
        std::size_t b = i;
        while (i < code.size() &&
               (ident_char(code[i]) || code[i] == '.' || code[i] == '\'' ||
                ((code[i] == '+' || code[i] == '-') && i > b &&
                 (code[i - 1] == 'e' || code[i - 1] == 'E' ||
                  code[i - 1] == 'p' || code[i - 1] == 'P'))))
          ++i;
        toks.push_back(Token{Token::Kind::Num, code.substr(b, i - b), ln});
        continue;
      }
      // Multi-char punctuators the parser cares about. `>>` is *not* fused
      // so nested template argument lists close one level per token.
      if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
        toks.push_back(Token{Token::Kind::Punct, "::", ln});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
        toks.push_back(Token{Token::Kind::Punct, "->", ln});
        i += 2;
        continue;
      }
      toks.push_back(Token{Token::Kind::Punct, std::string(1, c), ln});
      ++i;
    }
  }
  return toks;
}

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == Token::Kind::Punct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == Token::Kind::Ident && t.text == s;
}

/// Skips a balanced <...> starting at `i` (toks[i] must be `<`). Returns the
/// index one past the matching `>`, or `i` unchanged if the list is not
/// balanced before a `;`, `{`, or `}` (then it was a comparison, not
/// template arguments).
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind != Token::Kind::Punct) continue;
    if (t.text == "<") ++depth;
    else if (t.text == ">") {
      if (--depth == 0) return j + 1;
    } else if (t.text == ";" || t.text == "{" || t.text == "}") {
      return i;
    } else if (t.text == "(") {
      // Parenthesized comparisons inside template args are rare enough to
      // punt on; a '(' at angle depth 1+ is tolerated (function types).
    }
  }
  return i;
}

std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t i,
                          const char* open, const char* close) {
  return skip_balanced_tokens(toks, i, open, close);
}

using Chain = IdChain;

Chain parse_chain(const std::vector<Token>& toks, std::size_t i) {
  return parse_id_chain(toks, i);
}

}  // namespace

std::size_t skip_balanced_tokens(const std::vector<Token>& toks,
                                 std::size_t i, const char* open,
                                 const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (is_punct(toks[j], open)) ++depth;
    else if (is_punct(toks[j], close)) {
      if (--depth == 0) return j + 1;
    }
  }
  return toks.size();
}

/// Parses a (possibly qualified, possibly templated) id-expression starting
/// at `i`: `[~] Ident [<...>] (:: [~] Ident [<...>])*`, or a leading `::`.
/// Returns a chain with empty parts if toks[i] does not start one.
IdChain parse_id_chain(const std::vector<Token>& toks, std::size_t i) {
  IdChain ch;
  ch.begin = i;
  std::size_t j = i;
  if (j < toks.size() && is_punct(toks[j], "::")) ++j;  // global qualifier
  while (j < toks.size()) {
    bool tilde = false;
    if (is_punct(toks[j], "~")) {
      tilde = true;
      ++j;
    }
    if (j >= toks.size()) break;
    if (toks[j].kind == Token::Kind::Ident && is_ident(toks[j], "operator")) {
      // operator id: consume the operator symbol tokens up to the '('.
      ch.has_operator = true;
      ++j;
      while (j < toks.size() && !is_punct(toks[j], "(")) {
        // operator() and operator[] carry their brackets before the
        // parameter list.
        if (is_punct(toks[j], "[")) {
          ++j;
          if (j < toks.size() && is_punct(toks[j], "]")) ++j;
          break;
        }
        if (toks[j].kind != Token::Kind::Punct) break;
        ++j;
      }
      ch.parts.push_back("(operator)");
      break;
    }
    if (toks[j].kind != Token::Kind::Ident || is_keyword(toks[j].text)) break;
    ch.parts.push_back((tilde ? "~" : "") + toks[j].text);
    ++j;
    if (j < toks.size() && is_punct(toks[j], "<")) {
      const std::size_t after = skip_angles(toks, j);
      if (after != j) j = after;
    }
    if (j < toks.size() && is_punct(toks[j], "::")) {
      ++j;
      continue;
    }
    break;
  }
  ch.end = j;
  if (!ch.parts.empty() && ch.parts.front().empty()) ch.parts.clear();
  return ch;
}

ArgScan scan_call_args(const std::vector<Token>& toks, std::size_t i) {
  ArgScan a;
  if (i >= toks.size() || !is_punct(toks[i], "(")) return a;
  int depth = 0;
  int angle = 0;
  int commas = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind != Token::Kind::Punct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") {
      ++depth;
    } else if (t.text == ")" || t.text == "]" || t.text == "}") {
      --depth;
      if (depth == 0 && t.text == ")") {
        a.after = j + 1;
        a.ok = true;
        break;
      }
    } else if (depth == 1) {
      if (t.text == "<") ++angle;
      else if (t.text == ">") angle = std::max(0, angle - 1);
      else if (angle == 0 && t.text == ",") ++commas;
    }
  }
  if (!a.ok) return a;
  a.arity = (a.after - 1 == i + 1) ? 0 : commas + 1;
  return a;
}

namespace {

struct ParamInfo {
  int min_arity = 0;
  int arity = 0;
  bool variadic = false;
  std::size_t after = 0;  // one past the closing ')'
  bool ok = false;
};

/// Scans a balanced parameter list starting at the '(' at `i`.
ParamInfo scan_params(const std::vector<Token>& toks, std::size_t i) {
  ParamInfo pi;
  if (i >= toks.size() || !is_punct(toks[i], "(")) return pi;
  int depth = 0;
  int angle = 0;
  int commas = 0;
  bool any_tokens = false;
  bool saw_default = false;
  int params_before_default = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind == Token::Kind::Punct) {
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      else if (t.text == ")" || t.text == "]" || t.text == "}") {
        --depth;
        if (depth == 0 && t.text == ")") {
          pi.after = j + 1;
          pi.ok = true;
          break;
        }
      } else if (depth == 1) {
        if (t.text == "<") ++angle;
        else if (t.text == ">") angle = std::max(0, angle - 1);
        else if (angle == 0 && t.text == ",") ++commas;
        else if (angle == 0 && t.text == "=" && !saw_default) {
          saw_default = true;
          params_before_default = commas;
        } else if (t.text == ".") {
          // "..." arrives as three '.' puncts.
          pi.variadic = true;
        }
      }
    }
    if (depth >= 1 && !(depth == 1 && t.text == "(")) any_tokens = true;
    if (depth == 1 && j > i) any_tokens = any_tokens || j > i;
  }
  if (!pi.ok) return pi;
  // Count parameters: empty list or lone `void` is zero.
  const std::size_t inner_first = i + 1;
  if (pi.after - 1 == inner_first) {
    pi.arity = 0;
  } else if (pi.after - 2 == inner_first && is_ident(toks[inner_first], "void")) {
    pi.arity = 0;
  } else {
    pi.arity = commas + 1;
  }
  pi.min_arity = saw_default ? params_before_default : pi.arity;
  if (pi.variadic) pi.min_arity = std::min(pi.min_arity, pi.arity);
  (void)any_tokens;
  return pi;
}

struct Scope {
  enum class Kind { Namespace, Class, Block };
  Kind kind = Kind::Block;
  std::string name;  // for Namespace/Class
};

}  // namespace

std::vector<int> FunctionIndex::candidates(const std::string& name) const {
  std::vector<int> ids;
  const auto range = by_name_.equal_range(name);
  for (auto it = range.first; it != range.second; ++it)
    ids.push_back(it->second);
  return ids;
}

int FunctionIndex::find(const std::string& suffix) const {
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const std::string& q = fns[i].qualified;
    if (q == suffix) return static_cast<int>(i);
    if (q.size() > suffix.size() + 2 &&
        q.compare(q.size() - suffix.size(), suffix.size(), suffix) == 0 &&
        q.compare(q.size() - suffix.size() - 2, 2, "::") == 0)
      return static_cast<int>(i);
  }
  return -1;
}

FunctionIndex build_index(const std::vector<SourceFile>& sources) {
  FunctionIndex index;
  index.file_tokens.resize(sources.size());

  for (std::size_t fid = 0; fid < sources.size(); ++fid) {
    const SourceFile& sf = sources[fid];
    std::vector<Token>& toks = index.file_tokens[fid];
    toks = tokenize(sf.lines);

    std::vector<Scope> scopes;
    const auto at_indexable_scope = [&] {
      for (const Scope& s : scopes)
        if (s.kind == Scope::Kind::Block) return false;
      return true;
    };

    std::size_t i = 0;
    while (i < toks.size()) {
      const Token& t = toks[i];

      if (is_punct(t, "{")) {
        scopes.push_back(Scope{Scope::Kind::Block, ""});
        ++i;
        continue;
      }
      if (is_punct(t, "}")) {
        if (!scopes.empty()) scopes.pop_back();
        ++i;
        continue;
      }
      if (t.kind != Token::Kind::Ident) {
        ++i;
        continue;
      }

      if (t.text == "template") {
        // Skip the template header; the function/class after it is indexed
        // like a non-template.
        if (i + 1 < toks.size() && is_punct(toks[i + 1], "<")) {
          const std::size_t after = skip_angles(toks, i + 1);
          i = after != i + 1 ? after : i + 1;
        } else {
          ++i;
        }
        continue;
      }

      if (t.text == "namespace") {
        // `namespace a::b {`, `namespace {`, or `namespace x = y;`.
        std::size_t j = i + 1;
        std::string name;
        while (j < toks.size() && toks[j].kind == Token::Kind::Ident) {
          if (!name.empty()) name += "::";
          name += toks[j].text;
          ++j;
          if (j < toks.size() && is_punct(toks[j], "::"))
            ++j;
          else
            break;
        }
        if (j < toks.size() && is_punct(toks[j], "{")) {
          scopes.push_back(Scope{Scope::Kind::Namespace, name});
          i = j + 1;
        } else {
          // Alias or ill-formed: skip to ';'.
          while (j < toks.size() && !is_punct(toks[j], ";")) ++j;
          i = j + 1;
        }
        continue;
      }

      if ((t.text == "class" || t.text == "struct" || t.text == "union") &&
          at_indexable_scope()) {
        // Find the tag name, then the '{' (definition) or ';' (forward
        // declaration / member-pointer-ish use).
        std::size_t j = i + 1;
        std::string name;
        while (j < toks.size()) {
          if (toks[j].kind == Token::Kind::Ident &&
              !is_keyword(toks[j].text) && !all_caps(toks[j].text)) {
            name = toks[j].text;
            ++j;
            if (j < toks.size() && is_punct(toks[j], "<")) {
              const std::size_t after = skip_angles(toks, j);
              if (after != j) j = after;
            }
            break;
          }
          if (toks[j].kind == Token::Kind::Punct &&
              (is_punct(toks[j], "[") || all_caps(toks[j].text))) {
            // Attributes: skip [[...]] blocks and ALLCAPS export macros.
            if (is_punct(toks[j], "[")) {
              j = skip_balanced(toks, j, "[", "]");
              continue;
            }
          }
          if (toks[j].kind == Token::Kind::Ident && all_caps(toks[j].text)) {
            ++j;
            continue;
          }
          break;
        }
        // Scan to '{' or ';' (base clause may intervene).
        std::size_t k = j;
        int angle = 0;
        while (k < toks.size()) {
          if (is_punct(toks[k], "<")) ++angle;
          if (is_punct(toks[k], ">")) angle = std::max(0, angle - 1);
          if (angle == 0 && (is_punct(toks[k], "{") || is_punct(toks[k], ";") ||
                             is_punct(toks[k], "(")))
            break;
          ++k;
        }
        if (k < toks.size() && is_punct(toks[k], "{") && !name.empty()) {
          scopes.push_back(Scope{Scope::Kind::Class, name});
          i = k + 1;
        } else if (k < toks.size() && is_punct(toks[k], "{")) {
          scopes.push_back(Scope{Scope::Kind::Block, ""});  // anonymous
          i = k + 1;
        } else {
          i = k < toks.size() ? k + 1 : k;
        }
        continue;
      }

      if (t.text == "using" || t.text == "typedef" ||
          t.text == "static_assert") {
        while (i < toks.size() && !is_punct(toks[i], ";")) ++i;
        ++i;
        continue;
      }

      if (t.text == "enum") {
        // enum [class] Name [: base] { ... } -- no functions inside.
        std::size_t j = i + 1;
        while (j < toks.size() && !is_punct(toks[j], "{") &&
               !is_punct(toks[j], ";"))
          ++j;
        if (j < toks.size() && is_punct(toks[j], "{"))
          j = skip_balanced(toks, j, "{", "}");
        i = j;
        continue;
      }

      if (is_keyword(t.text)) {
        ++i;
        continue;
      }

      if (!at_indexable_scope()) {
        ++i;
        continue;
      }

      // Candidate function definition: a qualified id followed by a
      // parameter list and eventually '{'.
      Chain ch = parse_chain(toks, i);
      if (ch.parts.empty()) {
        ++i;
        continue;
      }
      if (ch.parts.size() == 1 && all_caps(ch.parts[0])) {
        // Macro invocation (EROOF_REQUIRE, TEST, ...). Skip its argument
        // list so a following '{' is treated as a plain block.
        std::size_t j = ch.end;
        if (j < toks.size() && is_punct(toks[j], "("))
          j = skip_balanced(toks, j, "(", ")");
        i = j;
        continue;
      }
      if (ch.end >= toks.size() || !is_punct(toks[ch.end], "(")) {
        i = ch.end > i ? ch.end : i + 1;
        continue;
      }
      const ParamInfo pi = scan_params(toks, ch.end);
      if (!pi.ok) {
        i = ch.end + 1;
        continue;
      }

      // Walk the post-parameter specifiers to decide declaration vs
      // definition.
      std::size_t j = pi.after;
      bool is_def = false;
      bool bail = false;
      while (j < toks.size() && !bail) {
        const Token& s = toks[j];
        if (is_punct(s, "{")) {
          is_def = true;
          break;
        }
        if (is_punct(s, ";")) break;  // declaration
        if (s.kind == Token::Kind::Ident &&
            (s.text == "const" || s.text == "noexcept" ||
             s.text == "override" || s.text == "final" ||
             s.text == "mutable" || s.text == "try")) {
          ++j;
          if (s.text == "noexcept" && j < toks.size() &&
              is_punct(toks[j], "("))
            j = skip_balanced(toks, j, "(", ")");
          continue;
        }
        if (is_punct(s, "&")) {
          ++j;
          if (j < toks.size() && is_punct(toks[j], "&")) ++j;
          continue;
        }
        if (is_punct(s, "->")) {
          // Trailing return type: consume to '{' or ';' at bracket depth 0.
          ++j;
          int angle = 0;
          while (j < toks.size()) {
            if (is_punct(toks[j], "<")) ++angle;
            if (is_punct(toks[j], ">")) angle = std::max(0, angle - 1);
            if (is_punct(toks[j], "(")) {
              j = skip_balanced(toks, j, "(", ")");
              continue;
            }
            if (angle == 0 &&
                (is_punct(toks[j], "{") || is_punct(toks[j], ";")))
              break;
            ++j;
          }
          continue;
        }
        if (is_punct(s, ":") ) {
          // Constructor initializer list: Ident[<...>] ( ... ) or { ... },
          // comma-separated, then the body '{'.
          ++j;
          while (j < toks.size()) {
            if (toks[j].kind == Token::Kind::Ident) {
              ++j;
              if (j < toks.size() && is_punct(toks[j], "<")) {
                const std::size_t after = skip_angles(toks, j);
                if (after != j) j = after;
              }
              if (j < toks.size() && is_punct(toks[j], "::")) {
                ++j;
                continue;
              }
            }
            if (j < toks.size() && is_punct(toks[j], "("))
              j = skip_balanced(toks, j, "(", ")");
            else if (j < toks.size() && is_punct(toks[j], "{")) {
              // Braced member init -- but a '{' directly after the ':'
              // walk that is not preceded by an initializer is the body.
              j = skip_balanced(toks, j, "{", "}");
            }
            if (j < toks.size() && is_punct(toks[j], ",")) {
              ++j;
              continue;
            }
            break;
          }
          continue;
        }
        if (is_punct(s, "=")) {
          // `= default;` / `= delete;` / pure virtual: a declaration.
          while (j < toks.size() && !is_punct(toks[j], ";")) ++j;
          break;
        }
        bail = true;  // not a function after all (expression, declaration..)
      }

      if (!is_def) {
        i = std::max(pi.after, ch.end + 1);
        continue;
      }

      // Found the body '{' at j: brace-match it.
      const std::size_t body_open = j;
      const std::size_t after_body = skip_balanced(toks, body_open, "{", "}");
      const std::size_t body_close =
          after_body > body_open ? after_body - 1 : body_open;

      FunctionDef fd;
      fd.scopes.reserve(scopes.size() + ch.parts.size() - 1);
      for (const Scope& s : scopes)
        if (!s.name.empty()) fd.scopes.push_back(s.name);
      for (std::size_t p = 0; p + 1 < ch.parts.size(); ++p)
        fd.scopes.push_back(ch.parts[p]);
      fd.name = ch.parts.back();
      std::string q;
      for (const auto& s : fd.scopes) {
        q += s;
        q += "::";
      }
      q += fd.name;
      fd.qualified = q;
      fd.min_arity = pi.min_arity;
      fd.arity = pi.arity;
      fd.variadic = pi.variadic;
      fd.is_ctor = !fd.scopes.empty() && fd.scopes.back() == fd.name;
      fd.file_id = static_cast<int>(fid);
      fd.file = sf.path;
      fd.name_line = toks[ch.begin].line;
      fd.body_begin_line = toks[body_open].line;
      fd.body_end_line =
          body_close < toks.size() ? toks[body_close].line : toks.back().line;
      fd.body_begin_tok = static_cast<int>(body_open);
      fd.body_end_tok = static_cast<int>(body_close);

      if (!ch.has_operator) {
        index.by_name_.emplace(fd.name, static_cast<int>(index.fns.size()));
      }
      index.fns.push_back(std::move(fd));

      // Continue from the body '{' so the scope stack tracks it as a block
      // (suppressing definition detection inside the body).
      i = body_open;
    }
  }
  return index;
}

}  // namespace eroof::lint
