// Field mapping with distinct targets and sources: the potential of a
// clustered charge distribution sampled on a regular observation plane
// (eq. 10 with x_i on a grid, y_j scattered). Writes field_map.csv and
// prints a coarse ASCII rendering.
#include <algorithm>
#include <iostream>

#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace eroof;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;
  const int res = argc > 2 ? std::atoi(argv[2]) : 48;

  util::Rng rng(77);
  const auto sources = fmm::gaussian_clusters(n, 5, 0.04, rng);
  std::vector<double> charges(n);
  for (auto& q : charges) q = rng.uniform(0.5, 1.0);  // positive charges

  // Observation plane z = 0.5.
  std::vector<fmm::Vec3> grid;
  grid.reserve(static_cast<std::size_t>(res) * static_cast<std::size_t>(res));
  for (int i = 0; i < res; ++i)
    for (int j = 0; j < res; ++j)
      grid.push_back({i / (res - 1.0), j / (res - 1.0), 0.5});

  const fmm::LaplaceKernel kernel;
  const auto phi = fmm::FmmEvaluator::evaluate_at(
      kernel, grid, sources, charges, {.max_points_per_box = 64},
      fmm::FmmConfig{.p = 5});

  util::CsvWriter csv("field_map.csv", {"x", "y", "potential"});
  for (int i = 0; i < res; ++i)
    for (int j = 0; j < res; ++j)
      csv.add_row(std::vector<double>{i / (res - 1.0), j / (res - 1.0),
                                      phi[static_cast<std::size_t>(i) * res + j]});

  // ASCII rendering, one row per 2 grid rows.
  const double lo = *std::min_element(phi.begin(), phi.end());
  const double hi = *std::max_element(phi.begin(), phi.end());
  const char* shades = " .:-=+*#%@";
  std::cout << "Potential on the z = 0.5 plane (" << n
            << " charges in 5 clusters), " << res << "x" << res << " grid:\n";
  for (int i = 0; i < res; i += 2) {
    for (int j = 0; j < res; ++j) {
      const double v = phi[static_cast<std::size_t>(i) * res + j];
      const int shade = static_cast<int>(9.0 * (v - lo) / (hi - lo + 1e-30));
      std::cout << shades[shade];
    }
    std::cout << '\n';
  }
  std::cout << "range: [" << lo << ", " << hi
            << "]; full map in field_map.csv\n";
  return 0;
}
