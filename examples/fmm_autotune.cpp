// Per-phase DVFS autotuning of the KIFMM proxy (paper Section V, closed
// loop). Fits the energy model from the microbenchmark campaign, models the
// CUDA execution of one KIFMM input (the nvprof substitute), and then picks
// clocks *per phase* with the chain scheduler (core/schedule):
//
//   * uniform: the single best setting for the whole run (the paper's
//     Table V strategy),
//   * per-phase: one setting per UP/U/V/W/X/DOWN phase under a DVFS
//     transition-cost model,
//   * race-to-halt: max clocks everywhere.
//
// Each strategy is validated against the simulator's ground truth and a
// noisy PowerMon-measured run of the actual schedule (hw::Soc::run_sequence).
// Also emits the energy-vs-time Pareto frontier and a transition-cost sweep
// showing the schedule collapsing onto the uniform pick as switching gets
// expensive. Writes everything to fig_fmm_autotune.csv.
//
//   fmm_autotune [n_points] [max_points_per_box] [csv_path]
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fit.hpp"
#include "core/schedule.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/gpu_profile.hpp"
#include "fmm/kernel.hpp"
#include "fmm/pointgen.hpp"
#include "hw/soc.hpp"
#include "ubench/campaign.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace eroof;

std::string schedule_string(const model::PhaseGridPrediction& pred,
                            const model::PhaseSchedule& s) {
  std::ostringstream os;
  for (std::size_t p = 0; p < s.pick.size(); ++p) {
    if (p) os << ' ';
    os << pred.phase_names[p] << ':' << pred.grid[s.pick[p]].label();
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 32768;
  const std::uint32_t q = argc > 2 ? static_cast<std::uint32_t>(
                                         std::stoul(argv[2]))
                                   : 64;
  const std::string csv_path = argc > 3 ? argv[3] : "fig_fmm_autotune.csv";

  // 1. Fit the energy model from the paper campaign (training half).
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon meter;
  const util::RngStream root(42);
  const auto campaign = ub::paper_campaign(soc, meter, root);
  std::vector<model::FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(model::to_fit_sample(s.meas));
  const auto energy_model = model::fit_energy_model(train).model;

  // 2. Model the CUDA execution of the KIFMM input (per-phase workloads).
  static const fmm::LaplaceKernel kernel;
  util::Rng point_rng(1000 + n + q);
  const auto pts = fmm::uniform_cube(n, point_rng);
  fmm::FmmEvaluator ev(
      kernel, pts,
      {.max_points_per_box = q,
       .uniform_depth = fmm::Octree::uniform_depth_for(n, q)},
      fmm::FmmConfig{.p = 4});
  const auto prof = fmm::profile_gpu_execution(ev);
  std::vector<hw::Workload> phases;
  for (const auto& ph : prof.phases) phases.push_back(ph.workload);

  const auto grid = hw::full_grid();
  const auto pred =
      model::predict_phase_grid(energy_model, soc, phases, grid);

  std::cout << "Per-phase DVFS autotuning of the KIFMM proxy (N=" << n
            << ", q=" << q << ", " << grid.size() << " settings)\n\n";

  util::CsvWriter csv(csv_path,
                      {"strategy", "time_weight_w", "schedule", "switches",
                       "pred_time_s", "pred_energy_j", "true_time_s",
                       "true_energy_j", "meas_energy_j"});

  // 3. Strategy comparison, with and without transition costs.
  const hw::DvfsTransitionModel no_cost{};
  const hw::DvfsTransitionModel realistic{100e-6, 50e-6};

  const std::pair<const char*, hw::DvfsTransitionModel> configs[] = {
      {"zero-cost", no_cost}, {"100us+50uJ", realistic}};
  for (const auto& [tag, tm] : configs) {
    const auto cmp =
        model::compare_strategies(energy_model, soc, phases, grid, tm);
    std::cout << "Strategy comparison (" << tag << " transitions)\n";
    util::Table t({"Strategy", "Schedule", "Switches", "Pred (J)", "True (J)",
                   "Measured (J)", "True time (ms)", "vs uniform %"},
                  {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                   util::Align::kRight, util::Align::kRight,
                   util::Align::kRight, util::Align::kRight,
                   util::Align::kRight});
    const double e_uni = cmp.uniform_true.energy_j;
    const struct Row {
      const char* name;
      const model::PhaseSchedule* s;
      const model::ScheduleGroundTruth* g;
    } rows[] = {{"uniform best", &cmp.uniform, &cmp.uniform_true},
                {"per-phase", &cmp.per_phase, &cmp.per_phase_true},
                {"race-to-halt", &cmp.race, &cmp.race_true}};
    for (const Row& r : rows) {
      std::vector<hw::DvfsSetting> settings;
      for (const std::size_t pick : r.s->pick) settings.push_back(grid[pick]);
      const auto meas = soc.run_sequence(phases, settings, tm, meter,
                                         root.fork(tag).fork(r.name));
      const std::string sched =
          r.s->switches == 0 && !r.s->pick.empty()
              ? grid[r.s->pick.front()].label() + " (all phases)"
              : schedule_string(pred, *r.s);
      t.add_row({r.name, sched, std::to_string(r.s->switches),
                 util::Table::num(r.s->pred_energy_j, 4),
                 util::Table::num(r.g->energy_j, 4),
                 util::Table::num(meas.energy_j, 4),
                 util::Table::num(r.g->time_s * 1e3, 3),
                 util::Table::num(100.0 * (r.g->energy_j - e_uni) / e_uni,
                                  2)});
      std::ostringstream strategy;
      strategy << r.name << " (" << tag << ")";
      csv.add_row(std::vector<std::string>{
          strategy.str(), "0", sched, std::to_string(r.s->switches),
          std::to_string(r.s->pred_time_s),
          std::to_string(r.s->pred_energy_j), std::to_string(r.g->time_s),
          std::to_string(r.g->energy_j), std::to_string(meas.energy_j)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  // 4. Energy-vs-time Pareto frontier (realistic transitions).
  const std::vector<double> weights = {0,   0.25, 0.5, 1.0,  2.0,
                                       4.0, 8.0,  16., 32.0, 64.0};
  const auto frontier = model::pareto_frontier(pred, realistic, weights);
  std::cout << "Energy-vs-time Pareto frontier (time weight in W)\n";
  util::Table pf({"lambda (W)", "Pred time (ms)", "Pred energy (J)",
                  "True energy (J)", "Schedule"},
                 {util::Align::kRight, util::Align::kRight, util::Align::kRight,
                  util::Align::kRight, util::Align::kLeft});
  for (const auto& pt : frontier) {
    const auto g =
        model::true_schedule_cost(soc, phases, pred, pt.schedule, realistic);
    pf.add_row({util::Table::num(pt.time_weight, 2),
                util::Table::num(pt.schedule.pred_time_s * 1e3, 3),
                util::Table::num(pt.schedule.pred_energy_j, 4),
                util::Table::num(g.energy_j, 4),
                schedule_string(pred, pt.schedule)});
    std::ostringstream strategy;
    strategy << "pareto";
    csv.add_row(std::vector<std::string>{
        strategy.str(), std::to_string(pt.time_weight),
        schedule_string(pred, pt.schedule),
        std::to_string(pt.schedule.switches),
        std::to_string(pt.schedule.pred_time_s),
        std::to_string(pt.schedule.pred_energy_j), std::to_string(g.time_s),
        std::to_string(g.energy_j), ""});
  }
  pf.print(std::cout);

  // 5. Transition-cost sweep: the schedule must collapse onto the uniform
  // pick as switching gets expensive.
  std::cout << "\nTransition-cost sweep (latency 100 us)\n";
  util::Table sw({"Switch energy (J)", "Switches", "Pred energy (J)",
                  "True energy (J)"},
                 {util::Align::kRight, util::Align::kRight, util::Align::kRight,
                  util::Align::kRight});
  for (const double ej : {0.0, 1e-4, 1e-3, 1e-2, 1e-1, 1.0}) {
    const hw::DvfsTransitionModel tm{100e-6, ej};
    const auto s = model::schedule_phases(pred, tm);
    const auto g = model::true_schedule_cost(soc, phases, pred, s, tm);
    sw.add_row({util::Table::num(ej, 4), std::to_string(s.switches),
                util::Table::num(s.pred_energy_j, 4),
                util::Table::num(g.energy_j, 4)});
    std::ostringstream strategy;
    strategy << "sweep_E" << ej;
    csv.add_row(std::vector<std::string>{
        strategy.str(), "0", schedule_string(pred, s),
        std::to_string(s.switches), std::to_string(s.pred_time_s),
        std::to_string(s.pred_energy_j), std::to_string(g.time_s),
        std::to_string(g.energy_j), ""});
  }
  sw.print(std::cout);

  std::cout << "\nReading: the per-phase schedule floors the idle domain's "
               "clock per phase -- U runs with memory floored, V with the "
               "core lowered -- trimming the voltage-dependent constant "
               "power (eq. 8) that the uniform pick pays everywhere. "
               "Race-to-halt burns both voltages for the whole run. Wrote "
            << csv_path << ".\n";
  return 0;
}
