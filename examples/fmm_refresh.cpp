// Closed-loop model refresh demo: a time-stepping dynamics run on a SoC
// whose die leakage ramps up mid-run. The engine executes its installed
// DVFS schedule in service, streams the (noisy) PowerMon measurements into
// the online drift detector, and -- when the detector fires -- refits the
// energy model from the stream and re-runs the schedule search against the
// refreshed coefficients (DESIGN.md §14).
//
//   fmm_refresh [n] [q] [p] [steps] [leak_end]
//
// Prints a per-step trace (leakage scale, measured energy, detector EWMA,
// whether a refit fired) and the final refresh statistics.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "dynamics/engine.hpp"
#include "dynamics/mover.hpp"
#include "dynamics/particles.hpp"

using namespace eroof;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8192;
  const std::uint32_t q =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 64;
  const int p = argc > 3 ? std::atoi(argv[3]) : 4;
  const int steps = argc > 4 ? std::atoi(argv[4]) : 16;
  const double leak_end = argc > 5 ? std::atof(argv[5]) : 3.0;

  const fmm::Box domain{{0.5, 0.5, 0.5}, 0.5};
  const auto kernel = std::make_shared<const fmm::LaplaceKernel>();

  dynamics::DynamicsEngine::Config cfg;
  cfg.session.tree = {.max_points_per_box = q, .domain = domain};
  cfg.session.fmm = {.p = p};
  cfg.tuning.context = dynamics::TuneContext::tegra_default();
  cfg.tuning.refresh.enabled = true;
  // Hold the start temperature for a quarter of the run, then ramp the
  // leakage linearly to `leak_end` over the next half.
  cfg.tuning.refresh.ramp = {
      .start_scale = 1.0,
      .end_scale = leak_end,
      .ramp_start = static_cast<std::uint64_t>(steps / 4),
      .ramp_steps = static_cast<std::uint64_t>(steps / 2 > 0 ? steps / 2 : 1),
  };
  cfg.tuning.refresh.online.min_observations = 10;
  cfg.tuning.refresh.online.cooldown = 10;
  cfg.tuning.refresh.measure_seed = 99;

  std::printf("fmm_refresh: n=%zu q=%u p=%d steps=%d leak 1.0 -> %.1f\n", n,
              q, p, steps, leak_end);
  dynamics::DynamicsEngine engine(
      kernel, dynamics::ParticleSystem::random(n, domain, 7), cfg);
  dynamics::LangevinMover mover(8, {.gamma = 0.05, .sigma = 0.008});

  double prev_measured = 0;
  for (int s = 0; s < steps; ++s) {
    const auto prev_refreshes = engine.stats().refreshes;
    const auto prev_tunes = engine.stats().tunes;
    engine.step(mover);
    const auto& st = engine.stats();
    std::printf("  step %2d  leak %.3f  measured %7.3f J  drift %+8.5f%s%s\n",
                s, st.last_leak_scale, st.measured_energy_j - prev_measured,
                st.drift,
                st.refreshes > prev_refreshes ? "  [refit]" : "",
                st.tunes > prev_tunes && s > 0 ? "  [re-tuned schedule]" : "");
    prev_measured = st.measured_energy_j;
  }

  const auto& st = engine.stats();
  std::printf("\n  refits: %llu  schedule searches: %llu / %d steps\n",
              static_cast<unsigned long long>(st.refreshes),
              static_cast<unsigned long long>(st.tunes), steps);
  if (const auto* r = engine.refresh()) {
    std::printf("  observations: %llu (rejected %llu)  final drift %+.5f\n",
                static_cast<unsigned long long>(r->stats().observations),
                static_cast<unsigned long long>(r->stats().rejected),
                r->drift());
  }
  std::printf("  in-service energy: %.3f J over %.3f s (meter-integrated)\n",
              st.measured_energy_j, st.measured_time_s);
  if (const auto* sched = engine.schedule()) {
    std::printf("  installed schedule: pred %.3f J, %d domain switches\n",
                sched->pred_energy_j, sched->switches);
  }
  return 0;
}
