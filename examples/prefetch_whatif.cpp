// The paper's closing what-if (Section VI): should prefetching be on?
//
// Prefetching loads some data that is never used. With the fitted
// per-operation energy costs we can price that wasted DRAM traffic --
// and weigh it against the execution-time (and hence constant-power-energy)
// penalty of turning prefetching off. The model answers without requiring
// high system utilization.
#include <iostream>

#include "core/fit.hpp"
#include "hw/soc.hpp"
#include "ubench/campaign.hpp"
#include "util/table.hpp"

int main() {
  using namespace eroof;

  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon meter;
  util::Rng rng(42);
  const auto campaign = ub::paper_campaign(soc, meter, rng);
  std::vector<model::FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(model::to_fit_sample(s.meas));
  const auto m = model::fit_energy_model(train).model;

  const auto setting = hw::setting(852, 924);

  // A pointer-chasing workload: 256M useful DRAM words. With prefetching
  // ON, the prefetcher fetches extra lines, only a fraction of which are
  // used, but hides latency (higher achieved bandwidth). With prefetching
  // OFF no bandwidth is wasted but effective memory utilization drops.
  const double useful_words = 256e6;

  std::cout << "Prefetching what-if at " << setting.label()
            << " MHz, 256M useful DRAM words\n\n";
  util::Table t({"Used-prefetch ratio", "Pref ON (J)", "Pref OFF (J)",
                 "Verdict"},
                {util::Align::kRight, util::Align::kRight, util::Align::kRight,
                 util::Align::kLeft});

  for (const double used_ratio : {0.9, 0.7, 0.5, 0.3, 0.1}) {
    // ON: traffic inflated by unused prefetches; latency well hidden.
    hw::Workload on;
    on.name = "prefetch_on";
    on.ops[hw::OpClass::kDramAccess] = useful_words / used_ratio;
    on.ops[hw::OpClass::kIntOp] = 0.1 * useful_words;
    on.memory_utilization = 0.9;
    const double t_on = soc.execution_time(on, setting);
    const double e_on = m.predict_energy_j(on.ops, setting, t_on);

    // OFF: only useful traffic, but demand misses expose latency.
    hw::Workload off = on;
    off.name = "prefetch_off";
    off.ops[hw::OpClass::kDramAccess] = useful_words;
    off.memory_utilization = 0.55;
    const double t_off = soc.execution_time(off, setting);
    const double e_off = m.predict_energy_j(off.ops, setting, t_off);

    t.add_row({util::Table::num(used_ratio, 2), util::Table::num(e_on, 2),
               util::Table::num(e_off, 2),
               e_on < e_off ? "keep prefetching"
                            : "turn prefetching off"});
  }
  t.print(std::cout);
  std::cout << "\nThe crossover is where the energy of unused prefetched "
               "words outweighs the constant-power cost of the slower "
               "unprefetched run -- exactly the trade-off the paper's "
               "conclusion sketches.\n";
  return 0;
}
