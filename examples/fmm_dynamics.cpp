// Time-stepping dynamics demo: Langevin particles in the unit cube, the
// incremental FmmSession absorbing each step's drift, and the amortized
// DVFS tuner re-searching only when the drift monitor fires.
//
//   fmm_dynamics [n] [q] [p] [steps]
//
// Prints a per-step trace (refit or rebuild, potential energy, whether the
// schedule was re-tuned) and a summary comparing the warm per-step cost
// against what a from-scratch evaluator would have paid.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "dynamics/engine.hpp"
#include "dynamics/mover.hpp"
#include "dynamics/particles.hpp"

using namespace eroof;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8192;
  const std::uint32_t q =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 64;
  const int p = argc > 3 ? std::atoi(argv[3]) : 4;
  const int steps = argc > 4 ? std::atoi(argv[4]) : 12;

  using Clock = std::chrono::steady_clock;
  const auto secs = [](Clock::duration d) {
    return std::chrono::duration<double>(d).count();
  };

  const fmm::Box domain{{0.5, 0.5, 0.5}, 0.5};
  const auto kernel = std::make_shared<const fmm::LaplaceKernel>();

  dynamics::DynamicsEngine::Config cfg;
  cfg.session.tree = {.max_points_per_box = q, .domain = domain};
  cfg.session.fmm = {.p = p};
  cfg.tuning.context = dynamics::TuneContext::tegra_default();

  std::printf("fmm_dynamics: n=%zu q=%u p=%d steps=%d (Laplace, tuned)\n", n,
              q, p, steps);
  dynamics::DynamicsEngine engine(
      kernel, dynamics::ParticleSystem::random(n, domain, 7), cfg);
  dynamics::LangevinMover mover(8, {.gamma = 0.05, .sigma = 0.008});

  double step_time = 0;
  for (int s = 0; s < steps; ++s) {
    const auto prev = engine.session().stats();
    const auto prev_tunes = engine.stats().tunes;
    const auto t0 = Clock::now();
    engine.step(mover);
    const double dt = secs(Clock::now() - t0);
    step_time += dt;
    const auto& st = engine.session().stats();
    std::printf("  step %2d  %-6s  U = %+.6e  %7.1f ms%s\n", s,
                st.refits > prev.refits ? "refit" : "rebuild",
                engine.potential_energy(), dt * 1e3,
                engine.stats().tunes > prev_tunes ? "  [re-tuned schedule]"
                                                  : "");
  }

  const auto& st = engine.session().stats();
  std::printf("\n  moves: %llu  refits: %llu  rebuilds: %llu  operator "
              "builds: %llu\n",
              static_cast<unsigned long long>(st.moves),
              static_cast<unsigned long long>(st.refits),
              static_cast<unsigned long long>(st.rebuilds),
              static_cast<unsigned long long>(st.plan_builds));
  std::printf("  schedule searches: %llu / %d steps\n",
              static_cast<unsigned long long>(engine.stats().tunes), steps);
  if (const auto* sched = engine.schedule()) {
    std::printf("  installed schedule: pred %.3f J, %d domain switches\n",
                sched->pred_energy_j, sched->switches);
  }
  std::printf("  mean step: %.1f ms\n", step_time / steps * 1e3);
  return 0;
}
