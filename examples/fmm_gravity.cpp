// Gravitational n-body potentials with the kernel-independent FMM.
//
// Computes the potential of N unit masses (Laplace kernel, eq. 10 of the
// paper) with the O(N) evaluator, checks accuracy against the direct O(N^2)
// sum on a subsample, and reports the speedup and the work tallies of the
// six FMM phases.
#include <chrono>
#include <iostream>

#include "fmm/direct.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"

int main(int argc, char** argv) {
  using namespace eroof;
  using Clock = std::chrono::steady_clock;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32768;
  const std::uint32_t q = argc > 2
                              ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                              : 64;
  const int p = argc > 3 ? std::atoi(argv[3]) : 5;

  util::Rng rng(2026);
  const auto pts = fmm::gaussian_clusters(n, 8, 0.05, rng);  // "galaxies"
  std::vector<double> masses(n, 1.0 / static_cast<double>(n));

  const fmm::LaplaceKernel gravity;
  std::cout << "building octree + operators (N = " << n << ", Q = " << q
            << ", p = " << p << ") ...\n";
  const auto t0 = Clock::now();
  fmm::FmmEvaluator ev(gravity, pts, {.max_points_per_box = q},
                       fmm::FmmConfig{.p = p});
  const auto t1 = Clock::now();
  const auto phi = ev.evaluate(masses);
  const auto t2 = Clock::now();

  const auto secs = [](auto a, auto b) {
    return std::chrono::duration<double>(b - a).count();
  };
  std::cout << "tree: depth " << ev.tree().max_depth() << ", "
            << ev.tree().nodes().size() << " nodes, "
            << ev.tree().leaves().size() << " leaves\n"
            << "setup " << secs(t0, t1) << " s, evaluate " << secs(t1, t2)
            << " s\n";

  // Accuracy check on a 512-target subsample of the direct sum.
  const std::size_t m = std::min<std::size_t>(512, n);
  const std::vector<fmm::Vec3> sub(pts.begin(),
                                   pts.begin() + static_cast<long>(m));
  const auto t3 = Clock::now();
  const auto ref = fmm::direct_sum(gravity, sub, pts, masses);
  const auto t4 = Clock::now();
  const std::vector<double> phi_sub(phi.begin(),
                                    phi.begin() + static_cast<long>(m));
  std::cout << "relative L2 error vs direct (on " << m
            << " targets): " << fmm::rel_l2_error(phi_sub, ref) << "\n"
            << "projected direct-sum time for all targets: "
            << secs(t3, t4) * static_cast<double>(n) / static_cast<double>(m)
            << " s\n";

  const auto& st = ev.stats();
  std::cout << "phase work: U " << st.u.kernel_evals << " kernel evals over "
            << st.u.pair_count << " pairs; V " << st.v.pair_count
            << " translations, " << st.v.ffts << " FFTs; W "
            << st.w.pair_count << " pairs; X " << st.x.pair_count
            << " pairs\n";
  return 0;
}
