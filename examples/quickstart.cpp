// Quickstart: the library in ~60 lines.
//
//  1. Run the intensity microbenchmark campaign on the simulated SoC,
//     measuring each run with the PowerMon-style meter.
//  2. Fit the DVFS-aware energy roofline (eq. 9) with NNLS.
//  3. Price an arbitrary workload at any DVFS setting and pick the most
//     energy-efficient one.
#include <iostream>

#include "core/autotune.hpp"
#include "core/fit.hpp"
#include "hw/soc.hpp"
#include "ubench/campaign.hpp"

int main() {
  using namespace eroof;

  // 1. Measurement campaign: 116 microbenchmark points x 16 DVFS settings.
  // The RngStream root keys every measurement's noise to its identity, so
  // the output is bitwise-identical across thread counts.
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon meter;
  const util::RngStream root(42);
  const auto campaign = ub::paper_campaign(soc, meter, root);
  std::cout << "campaign: " << campaign.size() << " measurements\n";

  // 2. Fit the model on the training half.
  std::vector<model::FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(model::to_fit_sample(s.meas));
  const auto fit = model::fit_energy_model(train);
  std::cout << "fit converged: " << std::boolalpha << fit.converged
            << ", residual " << fit.residual_norm << " J\n";

  const auto s_max = hw::setting(852, 924);
  std::cout << "energy per SP flop at 852/924 MHz: "
            << fit.model.op_energy_j(hw::OpClass::kSpFlop, s_max) * 1e12
            << " pJ\nconstant power at 852/924 MHz: "
            << fit.model.constant_power_w(s_max) << " W\n";

  // 3. Describe a workload (counts + achieved utilization) and tune it.
  hw::Workload work;
  work.name = "quickstart_stencil";
  work.ops[hw::OpClass::kSpFlop] = 4e9;
  work.ops[hw::OpClass::kIntOp] = 2e9;
  work.ops[hw::OpClass::kDramAccess] = 1e9;
  work.compute_utilization = 0.8;
  work.memory_utilization = 0.85;

  const auto grid = hw::full_grid();
  const auto measurements =
      model::measure_grid(soc, work, grid, meter, root);
  const auto tuned = model::autotune(fit.model, measurements);

  std::cout << "model's pick:  "
            << measurements[tuned.model_idx].setting.label()
            << " MHz (lost " << tuned.model_lost_pct << "% vs measured best)\n"
            << "race-to-halt:  "
            << measurements[tuned.oracle_idx].setting.label()
            << " MHz (lost " << tuned.oracle_lost_pct << "%)\n"
            << "measured best: "
            << measurements[tuned.best_idx].setting.label() << " MHz, "
            << measurements[tuned.best_idx].energy_j << " J\n";
  return 0;
}
