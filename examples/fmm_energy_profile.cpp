// Where does the FMM spend its energy? (the paper's Section IV workflow)
//
// Profiles the modeled GPU execution of an FMM run, prices every phase with
// the fitted energy model, and prints the per-phase time/energy breakdown
// plus the instruction / data-access / constant-power decomposition -- the
// kind of report a performance analyst would use to find energy bottlenecks.
// With `--trace=out.json` (and/or `--trace-csv=prefix`) the whole run is
// recorded to a chrome://tracing file: the six FMM phase spans with their
// work tallies, the campaign cells, the fitted-model residuals, and the
// PowerMon sample stream. `--executor=dag` drives the traced evaluation
// through the task-graph executor (phase spans then report busy time).
#include <cstring>
#include <iostream>

#include "core/fit.hpp"
#include "core/profile.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/gpu_profile.hpp"
#include "fmm/pointgen.hpp"
#include "trace/export.hpp"
#include "ubench/campaign.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace eroof;
  trace::CliTracer tracer(argc, argv);
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 65536;
  const std::uint32_t q = argc > 2
                              ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                              : 128;
  bool use_dag = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--executor=dag") == 0) use_dag = true;

  // Fit the platform model once.
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon meter;
  util::Rng rng(42);
  const auto campaign = ub::paper_campaign(soc, meter, rng);
  std::vector<model::FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(model::to_fit_sample(s.meas));
  const auto m = model::fit_energy_model(train).model;

  // Build and profile the FMM.
  const fmm::LaplaceKernel kernel;
  const auto pts = fmm::uniform_cube(n, rng);
  fmm::FmmEvaluator ev(
      kernel, pts,
      {.max_points_per_box = q,
       .uniform_depth = fmm::Octree::uniform_depth_for(n, q)},
      fmm::FmmConfig{.p = 4});
  if (use_dag) ev.set_executor(fmm::FmmExecutor::kDag);
  if (tracer.enabled()) {
    // Run the evaluation for real so the trace holds the six phase spans
    // with their work tallies, not just the modeled GPU profile.
    const std::vector<double> dens(n, 1.0);
    ev.evaluate(dens);
  }
  const auto prof = fmm::profile_gpu_execution(ev);

  const auto setting = hw::setting(852, 924);
  std::cout << "FMM energy profile: N = " << n << ", Q = " << q
            << ", at " << setting.label() << " MHz\n\n";

  util::Table t({"Phase", "Time (ms)", "Energy (J)", "Compute (J)",
                 "Data (J)", "Constant (J)", "Util"},
                {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight});
  double total_t = 0;
  double total_e = 0;
  for (const auto& ph : prof.phases) {
    const double time = soc.execution_time(ph.workload, setting);
    const auto bd = model::breakdown(m, ph.workload.ops, setting, time);
    total_t += time;
    total_e += bd.total_j();
    t.add_row({ph.name, util::Table::num(time * 1e3, 2),
               util::Table::num(bd.total_j(), 3),
               util::Table::num(bd.computation_j(), 3),
               util::Table::num(bd.data_j(), 3),
               util::Table::num(bd.constant_j, 3),
               util::Table::num(ph.workload.compute_utilization, 2)});
  }
  t.print(std::cout);
  std::cout << "\ntotal: " << total_t * 1e3 << " ms, " << total_e << " J ("
            << total_e / total_t << " W average)\n";

  const auto total = prof.total("fmm");
  const auto bd = model::breakdown(m, total.ops, setting, total_t);
  std::cout << "decomposition: computation "
            << 100.0 * bd.computation_j() / bd.total_j() << "%, data "
            << 100.0 * bd.data_j() / bd.total_j() << "%, constant power "
            << 100.0 * bd.constant_j / bd.total_j()
            << "%\n=> like the paper's Fig. 7: constant power dominates, so "
               "the fastest setting is also the most energy-efficient for "
               "this kernel.\n";
  return 0;
}
