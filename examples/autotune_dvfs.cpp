// DVFS autotuning across workload intensities (the paper's Section II-E).
//
// Sweeps a single-precision kernel from strongly memory-bound to strongly
// compute-bound and shows, per intensity, which (core, memory) clock pair
// the fitted model picks vs what race-to-halt picks -- and what each costs
// relative to the measured optimum.
#include <iostream>
#include <sstream>

#include "core/autotune.hpp"
#include "core/fit.hpp"
#include "hw/soc.hpp"
#include "ubench/campaign.hpp"
#include "util/table.hpp"

int main() {
  using namespace eroof;

  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon meter;
  // Stream-split RNG roots: every measurement draws from a stream keyed by
  // its identity, so the printed table is bitwise-identical across
  // OMP_NUM_THREADS and grid iteration order.
  const util::RngStream root(42);
  const auto campaign = ub::paper_campaign(soc, meter, root);
  std::vector<model::FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(model::to_fit_sample(s.meas));
  const auto m = model::fit_energy_model(train).model;
  const auto grid = hw::full_grid();

  std::cout << "Autotuning a SP kernel across arithmetic intensities "
               "(flops per DRAM word)\n\n";
  util::Table t({"Intensity", "Model pick", "Oracle pick", "Best measured",
                 "Model lost %", "Oracle lost %"},
                {util::Align::kRight, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight});

  for (const double intensity : {0.25, 1.0, 4.0, 16.0, 64.0, 256.0}) {
    hw::Workload w;
    // Default ostream formatting ("tune_I0.25"), matching the suite's
    // point_name convention -- std::to_string would emit "tune_I0.250000".
    std::ostringstream name;
    name << "tune_I" << intensity;
    w.name = name.str();
    w.ops[hw::OpClass::kDramAccess] = 64e6;
    w.ops[hw::OpClass::kSpFlop] = intensity * 64e6;
    w.ops[hw::OpClass::kIntOp] = 0.05 * 64e6;
    w.compute_utilization = 0.95;
    w.memory_utilization = 0.9;

    const auto ms = model::measure_grid(soc, w, grid, meter, root);
    const auto out = model::autotune(m, ms);
    t.add_row({util::Table::num(intensity, 2),
               ms[out.model_idx].setting.label(),
               ms[out.oracle_idx].setting.label(),
               ms[out.best_idx].setting.label(),
               util::Table::num(out.model_lost_pct, 2),
               util::Table::num(out.oracle_lost_pct, 2)});
  }
  t.print(std::cout);
  std::cout << "\nReading: memory-bound points want a *low* core clock "
               "(the oracle wastes core voltage); compute-bound points want "
               "a low memory clock. Race-to-halt only gets it right when "
               "both resources are saturated.\n";
  return 0;
}
