// Kernel independence in action (the KIFMM's selling point, paper §III).
//
// Runs the same FMM machinery over several interaction kernels -- no
// analytic expansions anywhere, only pointwise kernel evaluations -- and
// verifies each against the direct sum.
#include <chrono>
#include <iostream>

#include "fmm/direct.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace eroof;
  using Clock = std::chrono::steady_clock;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8192;

  util::Rng rng(31);
  const auto pts = fmm::uniform_cube(n, rng);
  const auto dens = fmm::random_densities(n, rng);

  const fmm::LaplaceKernel laplace;
  const fmm::YukawaKernel yukawa_soft(0.5);
  const fmm::YukawaKernel yukawa_hard(4.0);
  const fmm::GaussianKernel gauss(0.35);
  const std::vector<std::pair<std::string, const fmm::Kernel*>> zoo = {
      {"Laplace 1/(4 pi r)", &laplace},
      {"Yukawa, lambda = 0.5", &yukawa_soft},
      {"Yukawa, lambda = 4.0", &yukawa_hard},
      {"Gaussian, sigma = 0.35", &gauss},
  };

  std::cout << "Kernel zoo at N = " << n << ", Q = 64, p = 5\n\n";
  util::Table t({"Kernel", "Eval (s)", "Direct (s)", "rel L2 error"},
                {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight});

  for (const auto& [name, kernel] : zoo) {
    fmm::FmmEvaluator ev(*kernel, pts, {.max_points_per_box = 64},
                         fmm::FmmConfig{.p = 5});
    const auto t0 = Clock::now();
    const auto phi = ev.evaluate(dens);
    const auto t1 = Clock::now();
    const auto ref = fmm::direct_sum(*kernel, pts, pts, dens);
    const auto t2 = Clock::now();
    t.add_row({name,
               util::Table::num(
                   std::chrono::duration<double>(t1 - t0).count(), 2),
               util::Table::num(
                   std::chrono::duration<double>(t2 - t1).count(), 2),
               util::Table::num(fmm::rel_l2_error(phi, ref), 8)});
  }
  t.print(std::cout);
  std::cout << "\nSwapping the physics is a one-line change: the method "
               "only ever *evaluates* K(x, y).\n";
  return 0;
}
