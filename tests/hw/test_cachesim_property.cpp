// Property test: the set-associative Cache must agree, access for access,
// with an obviously-correct reference LRU model on random traces, across
// geometries (including direct-mapped and fully-associative corners).
#include <gtest/gtest.h>

#include <list>
#include <map>

#include "hw/cachesim.hpp"
#include "util/rng.hpp"

namespace eroof::hw {
namespace {

/// Transparent reference: per-set std::list front-to-back = MRU-to-LRU.
class ReferenceLru {
 public:
  explicit ReferenceLru(CacheConfig cfg)
      : line_(cfg.line_bytes),
        sets_(cfg.size_bytes / (cfg.line_bytes * cfg.associativity)),
        ways_(cfg.associativity) {}

  bool access(std::uint64_t addr) {
    const std::uint64_t lineno = addr / line_;
    const std::uint64_t set = lineno % sets_;
    const std::uint64_t tag = lineno / sets_;
    auto& l = lru_[set];
    for (auto it = l.begin(); it != l.end(); ++it) {
      if (*it == tag) {
        l.erase(it);
        l.push_front(tag);
        return true;
      }
    }
    l.push_front(tag);
    if (l.size() > ways_) l.pop_back();
    return false;
  }

 private:
  std::uint64_t line_;
  std::uint64_t sets_;
  std::uint64_t ways_;
  std::map<std::uint64_t, std::list<std::uint64_t>> lru_;
};

struct Geometry {
  std::string name;
  CacheConfig cfg;
};

void PrintTo(const Geometry& g, std::ostream* os) { *os << g.name; }

class CacheVsReference : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheVsReference, AgreesOnRandomTraces) {
  const CacheConfig cfg = GetParam().cfg;
  Cache cache(cfg);
  ReferenceLru ref(cfg);
  util::Rng rng(0xC0FFEE);
  // Mixed trace: a hot region (reuse), a warm region, and cold streaming.
  std::uint64_t stream = 1u << 24;
  for (int i = 0; i < 50000; ++i) {
    std::uint64_t addr = 0;
    switch (rng.below(4)) {
      case 0: addr = rng.below(4 * cfg.size_bytes); break;   // warm
      case 1: addr = rng.below(cfg.size_bytes / 2); break;   // hot
      case 2: addr = rng.below(1u << 30); break;             // scattered
      default:
        addr = stream;
        stream += cfg.line_bytes;  // streaming
    }
    ASSERT_EQ(cache.access(addr), ref.access(addr))
        << "diverged at access " << i << ", addr " << addr;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(
        Geometry{"tk1_l1", {16 * 1024, 128, 4}},
        Geometry{"tk1_l2", {128 * 1024, 32, 8}},
        Geometry{"direct_mapped", {8 * 1024, 64, 1}},
        Geometry{"fully_assoc", {4096, 64, 64}},
        Geometry{"two_way_tiny", {256, 64, 2}}),
    [](const auto& pinfo) { return pinfo.param.name; });

}  // namespace
}  // namespace eroof::hw
