#include "hw/cachesim.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace eroof::hw {
namespace {

TEST(Cache, FirstAccessMissesSecondHits) {
  Cache c({1024, 64, 2});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));  // same line
  EXPECT_FALSE(c.access(64)); // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  // 2-way, line 64 B, 2 sets (256 B total): addresses 0, 128, 256 map to
  // set 0. Touch 0, 128, then re-touch 0, then 256 must evict 128.
  Cache c({256, 64, 2});
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(128));
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(256));  // evicts 128 (LRU)
  EXPECT_TRUE(c.access(0));     // still resident
  EXPECT_FALSE(c.access(128));  // was evicted
}

TEST(Cache, WorkingSetWithinCapacityAlwaysHitsAfterWarmup) {
  Cache c({4096, 64, 4});
  for (std::uint64_t a = 0; a < 4096; a += 64) c.access(a);
  const std::uint64_t misses_after_warmup = c.misses();
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t a = 0; a < 4096; a += 64) EXPECT_TRUE(c.access(a));
  EXPECT_EQ(c.misses(), misses_after_warmup);
}

TEST(Cache, StreamingNeverHits) {
  Cache c({4096, 64, 4});
  for (std::uint64_t a = 0; a < 1 << 20; a += 64) c.access(a);
  EXPECT_EQ(c.hits(), 0u);
}

TEST(Cache, ResetClearsContentsAndStats) {
  Cache c({1024, 64, 2});
  c.access(0);
  c.access(0);
  c.reset();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_FALSE(c.access(0));  // cold again
}

TEST(Cache, InvalidGeometryThrows) {
  EXPECT_THROW(Cache({1000, 48, 2}), util::ContractError);  // non-pow2 line
  EXPECT_THROW(Cache({1024, 64, 0}), util::ContractError);  // zero ways
  EXPECT_THROW(Cache({1000, 64, 2}), util::ContractError);  // size mismatch
}

TEST(Hierarchy, ColdReadGoesToDram) {
  MemoryHierarchy h;
  h.access(0, 128, false);
  EXPECT_DOUBLE_EQ(h.traffic().l1_words, 0.0);
  EXPECT_DOUBLE_EQ(h.traffic().l2_words, 0.0);
  EXPECT_DOUBLE_EQ(h.traffic().dram_words, 32.0);  // 128 B = 32 words
  EXPECT_EQ(h.dram_read_sectors(), 4u);
}

TEST(Hierarchy, RepeatedReadHitsL1) {
  MemoryHierarchy h;
  h.access(0, 128, false);
  h.access(0, 128, false);
  EXPECT_DOUBLE_EQ(h.traffic().l1_words, 32.0);
  EXPECT_EQ(h.l1_hit_lines(), 1u);
}

TEST(Hierarchy, L1CapacityOverflowServedByL2) {
  MemoryHierarchy h;  // L1 16 KiB, L2 128 KiB
  const std::uint64_t ws = 64 * 1024;  // 64 KiB: fits L2, not L1
  for (std::uint64_t a = 0; a < ws; a += 128) h.access(a, 128, false);
  const double cold_dram = h.traffic().dram_words;
  for (std::uint64_t a = 0; a < ws; a += 128) h.access(a, 128, false);
  // Second pass: mostly L2 hits, no new DRAM traffic.
  EXPECT_DOUBLE_EQ(h.traffic().dram_words, cold_dram);
  EXPECT_GT(h.traffic().l2_words, 0.8 * 64 * 1024 / 4.0);
}

TEST(Hierarchy, SingleStreamingAccessDoesNotSelfHitL1) {
  // One long contiguous read is one coalesced transaction per line; its own
  // sectors must not count as L1 hits.
  MemoryHierarchy h;
  h.access(0, 4096, false);
  EXPECT_DOUBLE_EQ(h.traffic().l1_words, 0.0);
}

TEST(Hierarchy, WritesCountedSeparately) {
  MemoryHierarchy h;
  h.access(0, 128, true);
  EXPECT_EQ(h.dram_write_sectors(), 4u);
  EXPECT_EQ(h.dram_read_sectors(), 0u);
  EXPECT_EQ(h.l2_write_sector_queries(), 4u);
}

TEST(Hierarchy, PartialLineCountsOnlyTouchedSectors) {
  MemoryHierarchy h;
  h.access(0, 32, false);  // one sector
  EXPECT_DOUBLE_EQ(h.traffic().dram_words, 8.0);
}

TEST(Hierarchy, UnalignedAccessTouchesBothSectors) {
  MemoryHierarchy h;
  h.access(30, 4, false);  // straddles sectors 0 and 1
  EXPECT_DOUBLE_EQ(h.traffic().dram_words, 16.0);
}

TEST(Hierarchy, ResetRestoresColdState) {
  MemoryHierarchy h;
  h.access(0, 128, false);
  h.access(0, 128, false);
  h.reset();
  EXPECT_DOUBLE_EQ(h.traffic().l1_words, 0.0);
  h.access(0, 128, false);
  EXPECT_DOUBLE_EQ(h.traffic().dram_words, 32.0);
}

TEST(Hierarchy, TrafficAccumulates) {
  LevelTraffic t;
  t.l1_words = 1;
  LevelTraffic u;
  u.l1_words = 2;
  u.dram_words = 3;
  t += u;
  EXPECT_DOUBLE_EQ(t.l1_words, 3.0);
  EXPECT_DOUBLE_EQ(t.dram_words, 3.0);
}

}  // namespace
}  // namespace eroof::hw
