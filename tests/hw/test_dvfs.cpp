#include "hw/dvfs.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace eroof::hw {
namespace {

TEST(Dvfs, LadderSizesMatchThePlatform) {
  // The paper: 15 processor and 7 memory operating points (105 permutations).
  EXPECT_EQ(core_ladder().size(), 15u);
  EXPECT_EQ(mem_ladder().size(), 7u);
  EXPECT_EQ(full_grid().size(), 105u);
}

TEST(Dvfs, LaddersAreMonotoneInFrequencyAndVoltage) {
  for (const auto* ladder : {&core_ladder(), &mem_ladder()}) {
    for (std::size_t i = 1; i < ladder->size(); ++i) {
      EXPECT_GT((*ladder)[i].freq_mhz, (*ladder)[i - 1].freq_mhz);
      EXPECT_GE((*ladder)[i].volt_mv, (*ladder)[i - 1].volt_mv);
    }
  }
}

TEST(Dvfs, PaperVoltagesReproduced) {
  // Voltage pairs published in Table I.
  EXPECT_EQ(point_at(core_ladder(), 852).volt_mv, 1030);
  EXPECT_EQ(point_at(core_ladder(), 756).volt_mv, 950);
  EXPECT_EQ(point_at(core_ladder(), 648).volt_mv, 890);
  EXPECT_EQ(point_at(core_ladder(), 540).volt_mv, 840);
  EXPECT_EQ(point_at(core_ladder(), 396).volt_mv, 770);
  EXPECT_EQ(point_at(core_ladder(), 180).volt_mv, 760);
  EXPECT_EQ(point_at(core_ladder(), 72).volt_mv, 760);
  EXPECT_EQ(point_at(mem_ladder(), 924).volt_mv, 1010);
  EXPECT_EQ(point_at(mem_ladder(), 528).volt_mv, 880);
  EXPECT_EQ(point_at(mem_ladder(), 204).volt_mv, 800);
  EXPECT_EQ(point_at(mem_ladder(), 68).volt_mv, 800);
}

TEST(Dvfs, UnknownFrequencyThrows) {
  EXPECT_THROW(point_at(core_ladder(), 500), util::ContractError);
  EXPECT_THROW(setting(100, 924), util::ContractError);
}

TEST(Dvfs, Table1Has8TrainAnd8ValidationSettings) {
  int train = 0;
  int val = 0;
  for (const auto& [role, s] : table1_settings())
    (role == SettingRole::kTrain ? train : val)++;
  EXPECT_EQ(train, 8);
  EXPECT_EQ(val, 8);
}

TEST(Dvfs, Table1SettingsAreDistinct) {
  const auto& rows = table1_settings();
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = i + 1; j < rows.size(); ++j)
      EXPECT_FALSE(rows[i].s.core.freq_mhz == rows[j].s.core.freq_mhz &&
                   rows[i].s.mem.freq_mhz == rows[j].s.mem.freq_mhz)
          << i << " vs " << j;
}

TEST(Dvfs, Table4HasEightSettingsFromThePaper) {
  const auto& s = table4_settings();
  ASSERT_EQ(s.size(), 8u);
  EXPECT_EQ(s[0].core.freq_mhz, 852);
  EXPECT_EQ(s[0].mem.freq_mhz, 924);
  EXPECT_EQ(s[2].core.freq_mhz, 180);
  EXPECT_EQ(s[7].mem.freq_mhz, 204);
}

TEST(Dvfs, SettingLabelFormat) {
  EXPECT_EQ(setting(852, 924).label(), "852/924");
}

TEST(Dvfs, FullGridContainsEveryPair) {
  const auto grid = full_grid();
  for (const auto& c : core_ladder())
    for (const auto& m : mem_ladder()) {
      bool found = false;
      for (const auto& s : grid)
        if (s.core.freq_mhz == c.freq_mhz && s.mem.freq_mhz == m.freq_mhz)
          found = true;
      EXPECT_TRUE(found);
    }
}

}  // namespace
}  // namespace eroof::hw
