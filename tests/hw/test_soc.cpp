#include "hw/soc.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace eroof::hw {
namespace {

Workload compute_workload(double sp = 1e9) {
  Workload w;
  w.name = "test_compute";
  w.ops[OpClass::kSpFlop] = sp;
  w.ops[OpClass::kDramAccess] = 1e6;
  return w;
}

Workload memory_workload(double words = 1e9) {
  Workload w;
  w.name = "test_memory";
  w.ops[OpClass::kDramAccess] = words;
  return w;
}

TEST(Soc, OpEnergyScalesWithVoltageSquared) {
  const Soc soc = Soc::tegra_k1();
  const auto hi = setting(852, 924);
  const auto lo = setting(396, 924);
  const double e_hi = soc.true_op_energy_j(OpClass::kSpFlop, hi);
  const double e_lo = soc.true_op_energy_j(OpClass::kSpFlop, lo);
  const double v_ratio2 = (1.030 * 1.030) / (0.770 * 0.770);
  // Within the small frequency-sensitivity nonideality.
  EXPECT_NEAR(e_hi / e_lo, v_ratio2, 0.1 * v_ratio2);
}

TEST(Soc, DramEnergyFollowsMemoryVoltage) {
  const Soc soc = Soc::tegra_k1();
  const auto a = setting(852, 924);
  const auto b = setting(852, 204);
  // Same core setting: DRAM cost differs, SP cost identical.
  EXPECT_GT(soc.true_op_energy_j(OpClass::kDramAccess, a),
            soc.true_op_energy_j(OpClass::kDramAccess, b));
  EXPECT_DOUBLE_EQ(soc.true_op_energy_j(OpClass::kSpFlop, a),
                   soc.true_op_energy_j(OpClass::kSpFlop, b));
}

TEST(Soc, CostsCalibratedToPaperTable1) {
  const Soc soc = Soc::tegra_k1();
  const auto s = setting(852, 924);
  // Ground truth lands near Table I's fitted costs (29.0 SP, 139.1 DP,
  // 60.0 int, 35.4 SM, 90.2 L2, 377.0 Mem pJ; pi0 = 6.8 W). Tolerance
  // covers the deliberate nonidealities.
  EXPECT_NEAR(soc.true_op_energy_j(OpClass::kSpFlop, s) * 1e12, 29.0, 3.0);
  EXPECT_NEAR(soc.true_op_energy_j(OpClass::kDpFlop, s) * 1e12, 139.1, 14.0);
  EXPECT_NEAR(soc.true_op_energy_j(OpClass::kIntOp, s) * 1e12, 60.0, 6.0);
  EXPECT_NEAR(soc.true_op_energy_j(OpClass::kSmAccess, s) * 1e12, 35.4, 4.0);
  EXPECT_NEAR(soc.true_op_energy_j(OpClass::kL2Access, s) * 1e12, 90.2, 9.0);
  EXPECT_NEAR(soc.true_op_energy_j(OpClass::kDramAccess, s) * 1e12, 377.0,
              38.0);
  EXPECT_NEAR(soc.true_constant_power_w(s), 6.8, 0.7);
}

TEST(Soc, ConstantPowerMonotoneInVoltage) {
  const Soc soc = Soc::tegra_k1();
  // Strictly higher (core V, mem V) pairs must not lower constant power
  // beyond the small per-point regulator deviation.
  EXPECT_GT(soc.true_constant_power_w(setting(852, 924)),
            soc.true_constant_power_w(setting(72, 68)));
}

TEST(Soc, ComputeBoundTimeScalesInverselyWithCoreFreq) {
  const Soc soc = Soc::tegra_k1();
  const Workload w = compute_workload();
  const double t_hi = soc.execution_time(w, setting(852, 924));
  const double t_lo = soc.execution_time(w, setting(396, 924));
  EXPECT_NEAR(t_lo / t_hi, 852.0 / 396.0, 0.05 * 852.0 / 396.0);
}

TEST(Soc, MemoryBoundTimeScalesInverselyWithMemFreq) {
  const Soc soc = Soc::tegra_k1();
  const Workload w = memory_workload();
  const double t_hi = soc.execution_time(w, setting(852, 924));
  const double t_lo = soc.execution_time(w, setting(852, 204));
  EXPECT_NEAR(t_lo / t_hi, 924.0 / 204.0, 0.05 * 924.0 / 204.0);
}

TEST(Soc, MemoryBoundTimeInsensitiveToCoreFreq) {
  const Soc soc = Soc::tegra_k1();
  const Workload w = memory_workload();
  EXPECT_DOUBLE_EQ(soc.execution_time(w, setting(852, 528)),
                   soc.execution_time(w, setting(180, 528)));
}

TEST(Soc, RooflineIsMaxOfComputeAndMemoryTime) {
  const Soc soc = Soc::tegra_k1();
  Workload both;
  both.name = "both";
  both.ops[OpClass::kSpFlop] = 1e9;
  both.ops[OpClass::kDramAccess] = 1e9;
  Workload only_flops = both;
  only_flops.ops[OpClass::kDramAccess] = 0;
  Workload only_mem = both;
  only_mem.ops[OpClass::kSpFlop] = 0;
  const auto s = setting(852, 924);
  const double t_both = soc.execution_time(both, s);
  const double t_max = std::max(soc.execution_time(only_flops, s),
                                soc.execution_time(only_mem, s));
  EXPECT_NEAR(t_both, t_max, 1e-12);
}

TEST(Soc, LowerUtilizationStretchesTime) {
  const Soc soc = Soc::tegra_k1();
  Workload w = compute_workload();
  const auto s = setting(852, 924);
  const double t_full = soc.execution_time(w, s);
  w.compute_utilization = 0.25;
  const double t_quarter = soc.execution_time(w, s);
  EXPECT_NEAR(t_quarter / t_full, 4.0, 0.1);
}

TEST(Soc, UtilizationOutOfRangeThrows) {
  const Soc soc = Soc::tegra_k1();
  Workload w = compute_workload();
  w.compute_utilization = 0.0;
  EXPECT_THROW(soc.execution_time(w, setting(852, 924)),
               util::ContractError);
  w.compute_utilization = 1.5;
  EXPECT_THROW(soc.execution_time(w, setting(852, 924)),
               util::ContractError);
}

TEST(Soc, MeasuredEnergyTracksTrueEnergy) {
  const Soc soc = Soc::tegra_k1();
  const PowerMon pm;
  util::Rng rng(1);
  const Workload w = compute_workload(5e9);
  const auto s = setting(852, 924);
  const Measurement m = soc.run(w, s, pm, rng);
  const double e_true = soc.true_energy_j(w, s, m.time_s);
  EXPECT_NEAR(m.energy_j, e_true, 0.08 * e_true);
}

TEST(Soc, MeasurementCarriesWorkloadIdentity) {
  const Soc soc = Soc::tegra_k1();
  const PowerMon pm;
  util::Rng rng(2);
  const Workload w = memory_workload();
  const Measurement m = soc.run(w, setting(540, 528), pm, rng);
  EXPECT_EQ(m.workload, "test_memory");
  EXPECT_EQ(m.setting.core.freq_mhz, 540);
  EXPECT_EQ(m.ops[OpClass::kDramAccess], w.ops[OpClass::kDramAccess]);
  EXPECT_GT(m.avg_power_w, 0);
}

TEST(Soc, SameWorkloadSameActivityFactorAcrossSettings) {
  // The per-workload activity nonideality must be systematic: the same
  // workload's dynamic energy at two settings must differ only by the
  // physical V/f scaling, not by a fresh random draw.
  const Soc soc = Soc::tegra_k1();
  Workload w = compute_workload(2e10);
  const auto s = setting(852, 68);  // compute bound, tiny DRAM share
  const double t = soc.execution_time(w, s);
  const double e1 = soc.true_energy_j(w, s, t);
  const double e2 = soc.true_energy_j(w, s, t);
  EXPECT_DOUBLE_EQ(e1, e2);
}

TEST(Soc, KernelOverheadBoundsShortRuns) {
  const Soc soc = Soc::tegra_k1();
  Workload w;
  w.name = "tiny";
  w.ops[OpClass::kSpFlop] = 1.0;
  EXPECT_GE(soc.execution_time(w, setting(852, 924)),
            soc.rates().kernel_overhead_s);
}

}  // namespace
}  // namespace eroof::hw
