// The nonideality contracts of the simulated silicon: which deviations are
// systematic (per workload, per setting) and which are run-to-run noise.
#include <gtest/gtest.h>

#include "hw/soc.hpp"

namespace eroof::hw {
namespace {

Workload named(const std::string& name) {
  Workload w;
  w.name = name;
  w.ops[OpClass::kSpFlop] = 1e10;
  w.ops[OpClass::kDramAccess] = 1e6;
  return w;
}

TEST(SocActivity, DifferentWorkloadNamesDrawDifferentActivity) {
  const Soc soc = Soc::tegra_k1();
  const auto s = setting(852, 68);
  const Workload a = named("kernel_a");
  const Workload b = named("kernel_b");
  const double t = soc.execution_time(a, s);
  // Identical counts, identical time: any energy difference is the
  // per-workload activity factor.
  EXPECT_NE(soc.true_energy_j(a, s, t), soc.true_energy_j(b, s, t));
}

TEST(SocActivity, ActivityIsStableAcrossSocInstances) {
  // The factor is keyed on the name, not on instance state: two separately
  // constructed simulators agree exactly.
  const Soc soc1 = Soc::tegra_k1();
  const Soc soc2 = Soc::tegra_k1();
  const auto s = setting(648, 528);
  const Workload w = named("stable_kernel");
  const double t = soc1.execution_time(w, s);
  EXPECT_DOUBLE_EQ(soc1.true_energy_j(w, s, t),
                   soc2.true_energy_j(w, s, t));
}

TEST(SocActivity, ActivityDeviationIsBounded) {
  // With sigma ~0.16 the per-workload deviation should essentially never
  // exceed ~4 sigma; the energy ratio between two workloads with equal
  // counts stays within a sane band.
  const Soc soc = Soc::tegra_k1();
  const auto s = setting(852, 68);
  double lo = 1e300;
  double hi = 0;
  for (int i = 0; i < 50; ++i) {
    const Workload w = named("k" + std::to_string(i));
    const double t = soc.execution_time(w, s);
    const double e = soc.true_energy_j(w, s, t);
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_LT(hi / lo, 2.5);
  EXPECT_GT(hi / lo, 1.02);  // and they do vary
}

TEST(SocActivity, MeasuredRunsVaryButTightly) {
  const Soc soc = Soc::tegra_k1();
  const PowerMon pm;
  util::Rng rng(5);
  const Workload w = named("noisy_kernel");
  const auto s = setting(540, 528);
  const auto m1 = soc.run(w, s, pm, rng);
  const auto m2 = soc.run(w, s, pm, rng);
  EXPECT_NE(m1.energy_j, m2.energy_j);  // real noise
  EXPECT_NEAR(m1.energy_j, m2.energy_j, 0.1 * m1.energy_j);  // but small
}

TEST(SocActivity, ConstantPowerDeviationIsPerSetting) {
  // The regulator deviation is keyed on the setting: querying twice gives
  // the same value (it is systematic, not noise).
  const Soc soc = Soc::tegra_k1();
  for (const auto& s : full_grid())
    EXPECT_DOUBLE_EQ(soc.true_constant_power_w(s),
                     soc.true_constant_power_w(s));
}

}  // namespace
}  // namespace eroof::hw
