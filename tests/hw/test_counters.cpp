#include "hw/counters.hpp"

#include <gtest/gtest.h>

namespace eroof::hw {
namespace {

TEST(Counters, RegistryContainsThePaperTable3Entries) {
  const auto& table = counter_table();
  const auto find = [&table](std::string_view name) -> const CounterDef* {
    for (const auto& def : table)
      if (def.name == name) return &def;
    return nullptr;
  };

  // Spot-check the rows of Table III with their E/M types.
  ASSERT_NE(find("flops_dp_fma"), nullptr);
  EXPECT_EQ(find("flops_dp_fma")->type, CounterType::kMetric);
  ASSERT_NE(find("inst_integer"), nullptr);
  EXPECT_EQ(find("inst_integer")->type, CounterType::kMetric);
  ASSERT_NE(find("l1_global_load_hit"), nullptr);
  EXPECT_EQ(find("l1_global_load_hit")->type, CounterType::kEvent);
  ASSERT_NE(find("fb_subp0_read_sectors"), nullptr);
  ASSERT_NE(find("fb_subp1_read_sectors"), nullptr);
  ASSERT_NE(find("l2_subp0_total_read_sector_queries"), nullptr);
  ASSERT_NE(find("l2_subp3_read_l1_hit_sectors"), nullptr);
  ASSERT_NE(find("gld_request"), nullptr);
  ASSERT_NE(find("gst_request"), nullptr);
  ASSERT_NE(find("l1_shared_load_transactions"), nullptr);
  ASSERT_NE(find("l1_shared_store_transactions"), nullptr);
}

TEST(Counters, AddAccumulates) {
  CounterSet c;
  c.add("inst_integer", 10);
  c.add("inst_integer", 5);
  EXPECT_DOUBLE_EQ(c.get("inst_integer"), 15.0);
}

TEST(Counters, MissingCounterReadsZero) {
  const CounterSet c;
  EXPECT_DOUBLE_EQ(c.get("nonexistent"), 0.0);
  EXPECT_FALSE(c.has("nonexistent"));
}

TEST(Counters, MergeSumsBothSets) {
  CounterSet a;
  a.add("gld_request", 3);
  CounterSet b;
  b.add("gld_request", 4);
  b.add("gst_request", 1);
  a += b;
  EXPECT_DOUBLE_EQ(a.get("gld_request"), 7.0);
  EXPECT_DOUBLE_EQ(a.get("gst_request"), 1.0);
}

TEST(Counters, DeriveFlopMetricsSum) {
  CounterSet c;
  c.add("flops_sp_fma", 100);
  c.add("flops_sp_add", 20);
  c.add("flops_sp_mul", 30);
  c.add("flops_dp_fma", 7);
  const OpCounts ops = derive_op_counts(c);
  EXPECT_DOUBLE_EQ(ops[OpClass::kSpFlop], 150.0);
  EXPECT_DOUBLE_EQ(ops[OpClass::kDpFlop], 7.0);
}

TEST(Counters, DeriveSharedMemoryWords) {
  CounterSet c;
  c.add("l1_shared_load_transactions", 10);  // 10 x 32 B = 80 words
  c.add("l1_shared_store_transactions", 2);
  const OpCounts ops = derive_op_counts(c);
  EXPECT_DOUBLE_EQ(ops[OpClass::kSmAccess], 96.0);
}

TEST(Counters, DeriveL2AsQueriesMinusDram) {
  // The paper's derivation: L2-served = total L2 queries - DRAM sectors.
  CounterSet c;
  c.add("l2_subp0_total_read_sector_queries", 100);  // 800 words queried
  c.add("fb_subp0_read_sectors", 10);
  c.add("fb_subp1_read_sectors", 10);  // 160 words from DRAM
  const OpCounts ops = derive_op_counts(c);
  EXPECT_DOUBLE_EQ(ops[OpClass::kDramAccess], 160.0);
  EXPECT_DOUBLE_EQ(ops[OpClass::kL2Access], 640.0);
}

TEST(Counters, DeriveL2NeverNegative) {
  CounterSet c;
  c.add("l2_subp0_total_read_sector_queries", 5);
  c.add("fb_subp0_read_sectors", 50);  // inconsistent counters
  const OpCounts ops = derive_op_counts(c);
  EXPECT_GE(ops[OpClass::kL2Access], 0.0);
}

TEST(Counters, DeriveL1FromHitLines) {
  CounterSet c;
  c.add("l1_global_load_hit", 4);  // 4 lines x 128 B = 128 words
  const OpCounts ops = derive_op_counts(c);
  EXPECT_DOUBLE_EQ(ops[OpClass::kL1Access], 128.0);
}

TEST(Counters, EmptySetDerivesToZeroCounts) {
  const OpCounts ops = derive_op_counts(CounterSet{});
  EXPECT_DOUBLE_EQ(ops.compute_ops(), 0.0);
  EXPECT_DOUBLE_EQ(ops.memory_ops(), 0.0);
}

TEST(OpCounts, ArithmeticHelpers) {
  OpCounts a;
  a[OpClass::kSpFlop] = 1;
  a[OpClass::kIntOp] = 2;
  a[OpClass::kSmAccess] = 3;
  OpCounts b;
  b[OpClass::kDramAccess] = 4;
  const OpCounts sum = a + b;
  EXPECT_DOUBLE_EQ(sum.compute_ops(), 3.0);
  EXPECT_DOUBLE_EQ(sum.memory_ops(), 7.0);
}

}  // namespace
}  // namespace eroof::hw
