#include "hw/powermon.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace eroof::hw {
namespace {

TEST(PowerMon, IntegratesConstantPowerExactly) {
  PowerMonConfig cfg;
  cfg.noise_w = 0.0;
  cfg.adc_bits = 24;  // negligible quantization
  const PowerMon pm(cfg);
  util::Rng rng(1);
  const auto trace = pm.measure(2.0, [](double) { return 5.0; }, rng);
  EXPECT_NEAR(trace.energy_j, 10.0, 1e-3);
  EXPECT_NEAR(trace.avg_power_w, 5.0, 1e-4);
}

TEST(PowerMon, SampleCountMatchesRate) {
  PowerMonConfig cfg;
  cfg.sample_hz = 100.0;
  const PowerMon pm(cfg);
  util::Rng rng(2);
  const auto trace = pm.measure(1.0, [](double) { return 1.0; }, rng);
  EXPECT_NEAR(static_cast<double>(trace.samples_w.size()), 101.0, 2.0);
}

TEST(PowerMon, ShortRunStillGetsTwoSamples) {
  const PowerMon pm;
  util::Rng rng(3);
  const auto trace = pm.measure(1e-5, [](double) { return 3.0; }, rng);
  EXPECT_GE(trace.samples_w.size(), 2u);
  EXPECT_NEAR(trace.energy_j, 3.0 * 1e-5, 0.2 * 3.0 * 1e-5);
}

TEST(PowerMon, RampIntegratesToAverage) {
  PowerMonConfig cfg;
  cfg.noise_w = 0.0;
  cfg.adc_bits = 24;
  const PowerMon pm(cfg);
  util::Rng rng(4);
  // P(t) = 10 t over [0, 1] integrates to 5 J.
  const auto trace = pm.measure(1.0, [](double t) { return 10.0 * t; }, rng);
  EXPECT_NEAR(trace.energy_j, 5.0, 1e-3);
}

TEST(PowerMon, SinusoidAveragesOut) {
  PowerMonConfig cfg;
  cfg.noise_w = 0.0;
  cfg.adc_bits = 24;
  const PowerMon pm(cfg);
  util::Rng rng(5);
  const auto trace = pm.measure(
      1.0,
      [](double t) {
        return 6.0 + std::sin(2.0 * std::numbers::pi * 16.0 * t);
      },
      rng);
  EXPECT_NEAR(trace.energy_j, 6.0, 0.02);
}

TEST(PowerMon, NoiseAveragesAcrossManySamples) {
  PowerMonConfig cfg;
  cfg.noise_w = 0.5;  // large per-sample noise
  const PowerMon pm(cfg);
  util::Rng rng(6);
  const auto trace = pm.measure(4.0, [](double) { return 8.0; }, rng);
  // ~4096 samples: the mean is tight even with 0.5 W noise.
  EXPECT_NEAR(trace.avg_power_w, 8.0, 0.1);
}

TEST(PowerMon, QuantizationClampsToFullScale) {
  PowerMonConfig cfg;
  cfg.full_scale_w = 10.0;
  cfg.noise_w = 0.0;
  const PowerMon pm(cfg);
  util::Rng rng(7);
  const auto trace = pm.measure(0.1, [](double) { return 50.0; }, rng);
  for (double s : trace.samples_w) EXPECT_LE(s, 10.0);
}

TEST(PowerMon, NegativePowerClampsToZero) {
  PowerMonConfig cfg;
  cfg.noise_w = 0.0;
  const PowerMon pm(cfg);
  util::Rng rng(8);
  const auto trace = pm.measure(0.1, [](double) { return -2.0; }, rng);
  for (double s : trace.samples_w) EXPECT_GE(s, 0.0);
}

TEST(PowerMon, DeterministicGivenSameRngSeed) {
  const PowerMon pm;
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  const auto a = pm.measure(0.5, [](double) { return 7.0; }, rng_a);
  const auto b = pm.measure(0.5, [](double) { return 7.0; }, rng_b);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
}

TEST(PowerMon, InvalidConfigThrows) {
  PowerMonConfig bad;
  bad.sample_hz = 0;
  EXPECT_THROW(PowerMon{bad}, util::ContractError);
  PowerMonConfig bad2;
  bad2.adc_bits = 2;
  EXPECT_THROW(PowerMon{bad2}, util::ContractError);
}

TEST(PowerMon, NegativeDurationRejected) {
  const PowerMon pm;
  util::Rng rng(10);
  EXPECT_THROW(pm.measure(-1e-6, [](double) { return 1.0; }, rng),
               util::ContractError);
  EXPECT_THROW(pm.measure_constant(-1e-6, 1.0, rng), util::ContractError);
}

TEST(PowerMon, ZeroDurationProbeIsFiniteAndSampled) {
  // An instantaneous probe still brackets the run with the two endpoint
  // samples: zero energy (exact, by the trapezoid rule), a finite average
  // power (the sample mean, not 0/0 = NaN), never an empty sample vector.
  PowerMonConfig cfg;
  cfg.noise_w = 0.0;
  const PowerMon pm(cfg);
  util::Rng rng(10);
  for (const bool constant_path : {false, true}) {
    const auto trace =
        constant_path
            ? pm.measure_constant(0.0, 5.0, rng)
            : pm.measure(0.0, [](double) { return 5.0; }, rng);
    EXPECT_EQ(trace.samples_w.size(), 2u);
    EXPECT_EQ(trace.energy_j, 0.0);
    EXPECT_TRUE(std::isfinite(trace.avg_power_w));
    EXPECT_EQ(trace.avg_power_w, 5.0);
  }
}

TEST(PowerMon, TwoPointTrapezoidExactForSubSamplePeriodRuns) {
  // The contract for runs shorter than one sample period (1/1024 s here):
  // exactly two samples at t = 0 and t = duration, energy equal to the
  // closed-form 2-point trapezoid 0.5 * (s0 + s1) * duration -- pinned to
  // the bit. 5 W is exactly representable through the 12-bit ADC
  // (round(5/25 * 4095) = 819, and 819/4095 * 25 = 5), so with sensor
  // noise off both samples are exactly 5.0 W.
  PowerMonConfig cfg;
  cfg.noise_w = 0.0;  // defaults otherwise: 1024 Hz, 12-bit, 25 W
  const PowerMon pm(cfg);
  util::Rng rng(11);
  const double duration = 200e-6;  // well under the 976 us sample period
  for (const bool constant_path : {false, true}) {
    const auto trace =
        constant_path
            ? pm.measure_constant(duration, 5.0, rng)
            : pm.measure(duration, [](double) { return 5.0; }, rng);
    ASSERT_EQ(trace.samples_w.size(), 2u);
    EXPECT_EQ(trace.samples_w[0], 5.0);
    EXPECT_EQ(trace.samples_w[1], 5.0);
    EXPECT_EQ(trace.energy_j, 0.5 * (5.0 + 5.0) * duration);
    EXPECT_EQ(trace.avg_power_w, trace.energy_j / duration);
  }
}

}  // namespace
}  // namespace eroof::hw
