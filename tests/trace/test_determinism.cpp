// Deterministic-pipeline regression: the fig4-style profiling pipeline
// (point generation -> FmmEvaluator::evaluate -> profile_gpu_execution) is
// run twice at a fixed seed and its trace counter registry must match
// bit-for-bit -- including across OMP_NUM_THREADS variation -- so thread
// scheduling or future refactors cannot silently change the paper numbers.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "fmm/evaluator.hpp"
#include "fmm/gpu_profile.hpp"
#include "fmm/pointgen.hpp"
#include "hw/powermon.hpp"
#include "hw/soc.hpp"
#include "trace/trace.hpp"
#include "ubench/campaign.hpp"
#include "util/rng.hpp"

namespace eroof {
namespace {

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_bitwise_equal(const std::map<std::string, double>& a,
                          const std::map<std::string, double>& b) {
  ASSERT_EQ(a.size(), b.size());
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_TRUE(bit_equal(ia->second, ib->second))
        << ia->first << ": " << ia->second << " vs " << ib->second;
  }
}

struct PipelineResult {
  std::map<std::string, double> totals;
  std::vector<double> phi;
};

/// A scaled-down bench/common.hpp profile_fmm_input pipeline: same seed
/// scheme (1000 + n + q), same uniform tree, plus a real evaluation.
/// `num_threads` <= 0 leaves the OpenMP thread count untouched.
PipelineResult run_fig4_pipeline(int num_threads) {
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  if (num_threads > 0) omp_set_num_threads(num_threads);
#else
  (void)num_threads;
#endif
  PipelineResult out;
  {
    const std::size_t n = 8192;
    const std::uint32_t q = 64;
    static const fmm::LaplaceKernel kernel;
    util::Rng rng(1000 + n + q);
    const auto pts = fmm::uniform_cube(n, rng);
    fmm::FmmEvaluator ev(
        kernel, pts,
        {.max_points_per_box = q,
         .uniform_depth = fmm::Octree::uniform_depth_for(n, q)},
        fmm::FmmConfig{.p = 3});
    std::vector<double> dens(n);
    for (auto& d : dens) d = rng.uniform(-1.0, 1.0);

    trace::TraceSession session;
    {
      trace::SessionGuard guard(session);
      out.phi = ev.evaluate(dens);
      (void)fmm::profile_gpu_execution(ev);
    }
    out.totals = session.counter_totals();
  }
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
  return out;
}

TEST(Determinism, Fig4PipelineCountersBitIdenticalAcrossRuns) {
  const auto a = run_fig4_pipeline(0);
  const auto b = run_fig4_pipeline(0);
  ASSERT_FALSE(a.totals.empty());
  expect_bitwise_equal(a.totals, b.totals);
}

TEST(Determinism, Fig4PipelineCountersBitIdenticalAcrossThreadCounts) {
#ifdef _OPENMP
  const auto serial = run_fig4_pipeline(1);
  const auto parallel = run_fig4_pipeline(4);
#else
  const auto serial = run_fig4_pipeline(1);
  const auto parallel = run_fig4_pipeline(1);
#endif
  ASSERT_FALSE(serial.totals.empty());
  expect_bitwise_equal(serial.totals, parallel.totals);

  // The potentials themselves are also bit-identical: every output element
  // is accumulated in a fixed serial order inside its own loop iteration,
  // independent of how iterations are scheduled across threads.
  ASSERT_EQ(serial.phi.size(), parallel.phi.size());
  for (std::size_t i = 0; i < serial.phi.size(); ++i)
    ASSERT_TRUE(bit_equal(serial.phi[i], parallel.phi[i])) << i;
}

TEST(Determinism, CampaignAndPowerMonCountersReplayFromSeed) {
  const auto run_once = [] {
    const auto soc = hw::Soc::tegra_k1();
    const hw::PowerMon pm;
    util::Rng rng(7);
    auto points = ub::intensity_sweep(ub::BenchClass::kSpFlops, 8e6);
    if (points.size() > 4) points.resize(4);
    const std::vector<hw::LabeledSetting> settings(
        hw::table1_settings().begin(), hw::table1_settings().begin() + 2);

    trace::TraceSession session;
    {
      trace::SessionGuard guard(session);
      (void)ub::run_campaign(soc, points, settings, pm, rng);
    }
    return session.counter_totals();
  };

  const auto a = run_once();
  const auto b = run_once();
  ASSERT_FALSE(a.empty());
  EXPECT_GT(a.count("ubench.samples"), 0u);
  EXPECT_GT(a.count("powermon.samples"), 0u);
  expect_bitwise_equal(a, b);
}

}  // namespace
}  // namespace eroof
