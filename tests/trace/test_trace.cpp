// Unit tests for the tracing & metrics subsystem: span nesting, the
// named-counter registry, concurrent emission from OpenMP threads, and the
// JSON / CSV exporters (including a bit-exact CSV round-trip).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace eroof::trace {
namespace {

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::size_t count_occurrences(const std::string& hay, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(pat); pos != std::string::npos;
       pos = hay.find(pat, pos + pat.size()))
    ++n;
  return n;
}

/// Structural JSON check: braces and brackets balance, ignoring string
/// bodies (the exporter escapes quotes, so a simple state machine works).
bool json_brackets_balanced(const std::string& s) {
  int brace = 0;
  int bracket = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0 && !in_string;
}

TEST(Trace, DisabledByDefaultAndAllOpsAreNoOps) {
  ASSERT_EQ(session(), nullptr);
  {
    ScopedSpan span("orphan", "test");
    EXPECT_FALSE(span.active());
    span.arg("k", 1.0);  // must not crash
  }
  counter_add("orphan.counter", 1.0);  // must not crash
  EXPECT_EQ(session(), nullptr);
}

TEST(Trace, SessionGuardInstallsAndUninstalls) {
  TraceSession s;
  {
    SessionGuard guard(s);
    EXPECT_EQ(session(), &s);
  }
  EXPECT_EQ(session(), nullptr);
}

TEST(Trace, SpanNestingDepthsAndEmissionOrder) {
  TraceSession s;
  {
    SessionGuard guard(s);
    ScopedSpan outer("outer", "test");
    {
      ScopedSpan inner("inner", "test");
      { ScopedSpan leaf("leaf", "test"); }
    }
  }
  const auto spans = s.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Innermost scopes close first.
  EXPECT_EQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[0].depth, 2);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].depth, 0);
  // Containment: the outer span brackets the inner ones.
  EXPECT_LE(spans[2].start_us, spans[1].start_us);
  EXPECT_GE(spans[2].dur_us, spans[1].dur_us);
  EXPECT_GE(spans[1].dur_us, spans[0].dur_us);
}

TEST(Trace, SpanArgsAndCategories) {
  TraceSession s;
  {
    SessionGuard guard(s);
    ScopedSpan span("phase", "fmm.phase");
    span.arg("kernel_evals", 123.5);
    span.arg("pair_count", 7.0);
  }
  const auto spans = s.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].category, "fmm.phase");
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[0].key, "kernel_evals");
  EXPECT_EQ(spans[0].args[0].value, 123.5);
  EXPECT_EQ(spans[0].args[1].key, "pair_count");
  EXPECT_EQ(spans[0].args[1].value, 7.0);
}

TEST(Trace, CounterRegistryAccumulatesAndSortsByName) {
  TraceSession s;
  s.add_counter_total("zeta", 1.0);
  s.add_counter_total("alpha", 2.0);
  s.add_counter_total("zeta", 0.25);
  const auto totals = s.counter_totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals.begin()->first, "alpha");  // std::map sorts keys
  EXPECT_EQ(totals.at("alpha"), 2.0);
  EXPECT_EQ(totals.at("zeta"), 1.25);
}

TEST(Trace, CounterSamplesKeepTimestampsAndValues) {
  TraceSession s;
  s.emit_counter("power_w", 10, 4.5);
  s.emit_counter("power_w", 20, 5.5);
  const auto samples = s.counter_samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].t_us, 10);
  EXPECT_EQ(samples[0].value, 4.5);
  EXPECT_EQ(samples[1].t_us, 20);
  EXPECT_EQ(samples[1].value, 5.5);
}

TEST(Trace, ConcurrentEmissionFromOpenMPThreads) {
  constexpr int kIters = 256;
  TraceSession s;
  {
    SessionGuard guard(s);
    // eroof: cold (test exercises concurrent span/counter emission, which
    // allocates trace records by design)
#pragma omp parallel for schedule(dynamic)
    for (int i = 0; i < kIters; ++i) {
      ScopedSpan span("work", "test.parallel");
      span.arg("i", static_cast<double>(i));
      counter_add("parallel.iters", 1.0);
      counter_add("parallel.sum_i", static_cast<double>(i));
    }
  }
  const auto spans = s.spans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kIters));
  double sum_i = 0;
  for (const auto& sp : spans) {
    EXPECT_EQ(sp.name, "work");
    EXPECT_EQ(sp.depth, 0);  // no nesting inside the loop body
    ASSERT_EQ(sp.args.size(), 1u);
    sum_i += sp.args[0].value;
  }
  const double expect_sum = kIters * (kIters - 1) / 2.0;
  EXPECT_EQ(sum_i, expect_sum);
  const auto totals = s.counter_totals();
  EXPECT_EQ(totals.at("parallel.iters"), static_cast<double>(kIters));
  EXPECT_EQ(totals.at("parallel.sum_i"), expect_sum);
}

TEST(Trace, ChromeTraceJsonIsWellFormed) {
  TraceSession s;
  {
    SessionGuard guard(s);
    ScopedSpan a("phase \"A\"\n", "cat\\weird");  // exporter must escape
    a.arg("evals", 1.0 / 3.0);
    { ScopedSpan b("B", "test"); }
  }
  s.emit_counter("power_w", 5, 4.25);
  s.add_counter_total("total.one", 42.0);

  std::ostringstream os;
  write_chrome_trace(s, os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("total.one"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), 1u);
  EXPECT_TRUE(json_brackets_balanced(json)) << json;
  // The raw quote and newline in the span name must have been escaped.
  EXPECT_NE(json.find("phase \\\"A\\\"\\n"), std::string::npos);
}

TEST(Trace, CsvExportersRoundTripBitExactly) {
  TraceSession s;
  {
    SessionGuard guard(s);
    ScopedSpan a("span_a", "cat.x");
    a.arg("third", 1.0 / 3.0);
    a.arg("avogadro", 6.02214076e23);
    a.arg("tiny", 1.0e-17);
    { ScopedSpan b("span_b", "cat.y"); }
  }
  s.emit_counter("power_w", 123, 4.0 / 7.0);
  s.add_counter_total("totals.pi_ish", 3.14159265358979312);

  std::stringstream sp_csv;
  write_spans_csv(s, sp_csv);
  const auto spans = parse_spans_csv(sp_csv);
  const auto orig = s.spans();
  ASSERT_EQ(spans.size(), orig.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].name, orig[i].name);
    EXPECT_EQ(spans[i].category, orig[i].category);
    EXPECT_EQ(spans[i].tid, orig[i].tid);
    EXPECT_EQ(spans[i].depth, orig[i].depth);
    EXPECT_EQ(spans[i].start_us, orig[i].start_us);
    EXPECT_EQ(spans[i].dur_us, orig[i].dur_us);
    ASSERT_EQ(spans[i].args.size(), orig[i].args.size());
    for (std::size_t j = 0; j < spans[i].args.size(); ++j) {
      EXPECT_EQ(spans[i].args[j].key, orig[i].args[j].key);
      EXPECT_TRUE(bit_equal(spans[i].args[j].value, orig[i].args[j].value))
          << spans[i].args[j].key;
    }
  }

  std::stringstream co_csv;
  write_counters_csv(s, co_csv);
  const auto counters = parse_counters_csv(co_csv);
  ASSERT_EQ(counters.samples.size(), 1u);
  EXPECT_EQ(counters.samples[0].name, "power_w");
  EXPECT_EQ(counters.samples[0].t_us, 123);
  EXPECT_TRUE(bit_equal(counters.samples[0].value, 4.0 / 7.0));
  ASSERT_EQ(counters.totals.size(), 1u);
  EXPECT_TRUE(bit_equal(counters.totals.at("totals.pi_ish"),
                        3.14159265358979312));
}

}  // namespace
}  // namespace eroof::trace
