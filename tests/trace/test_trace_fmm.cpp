// Golden regression: one FmmEvaluator::evaluate emits exactly one span per
// paper phase (UP/U/V/W/X/DOWN, category "fmm.phase"), nested under one
// "evaluate" span, with span args and registry totals matching the
// evaluator's own FmmStats tallies exactly.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace eroof {
namespace {

constexpr const char* kPhases[] = {"UP", "U", "V", "W", "X", "DOWN"};

std::map<std::string, double> args_of(const trace::SpanEvent& s) {
  std::map<std::string, double> out;
  for (const auto& a : s.args) out[a.key] = a.value;
  return out;
}

const fmm::FmmStats::Phase& phase_stats(const fmm::FmmStats& st,
                                        const std::string& name) {
  if (name == "UP") return st.up;
  if (name == "U") return st.u;
  if (name == "V") return st.v;
  if (name == "W") return st.w;
  if (name == "X") return st.x;
  return st.down;
}

TEST(FmmTrace, OneSpanPerPhaseWithTalliesMatchingStats) {
  const fmm::LaplaceKernel kernel;
  util::Rng rng(21);
  const std::size_t n = 4096;
  const auto pts = fmm::uniform_cube(n, rng);
  fmm::FmmEvaluator ev(kernel, pts, {.max_points_per_box = 48},
                       fmm::FmmConfig{.p = 3});
  std::vector<double> dens(n);
  for (auto& d : dens) d = rng.uniform(-1.0, 1.0);

  trace::TraceSession session;
  {
    trace::SessionGuard guard(session);
    ev.evaluate(dens);
  }
  const auto& st = ev.stats();
  const auto spans = session.spans();

  // Exactly one span per phase, all nested under exactly one evaluate span.
  std::map<std::string, int> phase_count;
  int eval_count = 0;
  for (const auto& s : spans) {
    if (s.category == "fmm.phase") {
      ++phase_count[s.name];
      EXPECT_EQ(s.depth, 1) << s.name;
    } else if (s.category == "fmm" && s.name == "evaluate") {
      ++eval_count;
      EXPECT_EQ(s.depth, 0);
    }
  }
  EXPECT_EQ(eval_count, 1);
  ASSERT_EQ(phase_count.size(), 6u);
  for (const char* p : kPhases) EXPECT_EQ(phase_count[p], 1) << p;

  // Span args and registry totals reproduce the FmmStats tallies exactly.
  const auto totals = session.counter_totals();
  for (const auto& s : spans) {
    if (s.category != "fmm.phase") continue;
    const auto& ph = phase_stats(st, s.name);
    const auto args = args_of(s);
    EXPECT_EQ(args.at("kernel_evals"), ph.kernel_evals) << s.name;
    EXPECT_EQ(args.at("pair_count"), ph.pair_count) << s.name;
    EXPECT_EQ(args.at("ffts"), ph.ffts) << s.name;
    EXPECT_EQ(args.at("hadamard_cmuls"), ph.hadamard_cmuls) << s.name;
    EXPECT_EQ(args.at("solve_matvecs"), ph.solve_matvecs) << s.name;

    const std::string prefix = "fmm." + s.name + ".";
    EXPECT_EQ(totals.at(prefix + "kernel_evals"), ph.kernel_evals) << s.name;
    EXPECT_EQ(totals.at(prefix + "pair_count"), ph.pair_count) << s.name;
    EXPECT_EQ(totals.at(prefix + "solve_matvecs"), ph.solve_matvecs)
        << s.name;
  }

  // The phases do real work on this input: the tallies cannot all be zero.
  EXPECT_GT(st.up.kernel_evals, 0);
  EXPECT_GT(st.u.kernel_evals, 0);
  EXPECT_GT(st.v.pair_count, 0);
  EXPECT_GT(st.down.solve_matvecs, 0);
}

TEST(FmmTrace, NoSessionMeansNoSpansAndIdenticalResults) {
  const fmm::LaplaceKernel kernel;
  util::Rng rng(22);
  const std::size_t n = 2048;
  const auto pts = fmm::uniform_cube(n, rng);
  std::vector<double> dens(n, 1.0);
  fmm::FmmEvaluator ev(kernel, pts, {.max_points_per_box = 48},
                       fmm::FmmConfig{.p = 3});

  // Traced and untraced evaluations must agree bit-for-bit: the spans only
  // observe the phases, they must not perturb them.
  const auto phi_untraced = ev.evaluate(dens);
  trace::TraceSession session;
  {
    trace::SessionGuard guard(session);
    const auto phi_traced = ev.evaluate(dens);
    ASSERT_EQ(phi_traced.size(), phi_untraced.size());
    for (std::size_t i = 0; i < phi_traced.size(); ++i)
      EXPECT_EQ(phi_traced[i], phi_untraced[i]) << i;
  }
  EXPECT_EQ(session.spans().size(), 7u);  // 6 phases + evaluate

  // With no session installed, nothing is recorded anywhere.
  trace::TraceSession idle;
  ev.evaluate(dens);
  EXPECT_TRUE(idle.spans().empty());
  EXPECT_TRUE(idle.counter_totals().empty());
}

}  // namespace
}  // namespace eroof
