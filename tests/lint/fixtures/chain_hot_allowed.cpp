// Seeded fixture: same two-hop shape as chain_hot.cpp, but the allocating
// line carries a justified allow() -- the transitive finding must land in
// the audit trail, not the violation list.
#include <vector>

namespace demo_ok {

void helper_two(std::vector<int>& v) {
  v.push_back(1);  // eroof-lint: allow(hot-alloc) fixture: amortized growth
}

void helper_one(std::vector<int>& v) { helper_two(v); }

void drive(std::vector<int>& v) {
  // eroof: hot-begin (fixture steady-state loop)
  for (int i = 0; i < 4; ++i) helper_one(v);
  // eroof: hot-end
}

}  // namespace demo_ok
