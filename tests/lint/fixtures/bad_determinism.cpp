// Seeded determinism violations. Lint-input fixture only -- never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

int fixture_rand() { return std::rand(); }

void fixture_seed() { srand(42u); }

long fixture_time() { return time(nullptr); }

unsigned fixture_entropy() {
  std::random_device rd;
  return rd();
}

double fixture_clock() {
  const auto t0 = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

int fixture_unordered_iter() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int sum = 0;
  for (const auto& kv : counts) sum += kv.second;
  return sum;
}

double fixture_omp_sum(const double* x, int n) {
  double s = 0;
#pragma omp parallel for reduction(+ : s)
  for (int i = 0; i < n; ++i) s += x[i];
#pragma omp critical
  { s += 1.0; }
  return s;
}
