// Fixture: unbalanced hot-region annotations.
void fixture_stray() {
  // eroof: hot-end
}

void fixture_unclosed() {
  // eroof: hot-begin (never closed)
  int x = 0;
  (void)x;
}
