// Seeded hot-path allocation violations. Lint-input fixture -- never
// compiled.
#include <functional>
#include <string>
#include <vector>

void fixture_hot(std::vector<double>& v) {
  // eroof: hot-begin (fixture region)
  double* p = new double[8];
  std::function<double(double)> f = [](double x) { return x; };
  std::string label("phase");
  v.push_back(1.0);
  v.resize(32);
  v.reserve(64);
  delete[] p;
  (void)f;
  (void)label;
  // eroof: hot-end
}

void fixture_cold(std::vector<double>& v) {
  v.push_back(2.0);
  v.emplace_back(3.0);
}
