// Seeded fixture: the concurrency rule family.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <random>
#include <thread>

std::mutex mu;
std::condition_variable cv;
bool ready = false;

void blocking_under_lock() {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [] { return ready; });
}

void detached() {
  std::thread t([] {});
  t.detach();
}

int relaxed(std::atomic<int>& a) {
  return a.load(std::memory_order_relaxed);
}

void rng_in_parallel(double* out, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    std::mt19937 gen;
    out[i] = static_cast<double>(gen()) + i;
  }
}
