// Fixture: one suppressed and one live violation of the same rule, for the
// suppression-semantics tests (exact exit code and file:line output).
#include <cstdlib>

// eroof-lint: allow(nondet-rand) fixture justification: stands in for a
// documented legacy call site.
int fixture_allowed() { return std::rand(); }

int fixture_denied() { return std::rand(); }
