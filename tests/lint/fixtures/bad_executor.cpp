// Seeded violations in a task-graph worker-loop idiom: the steady-state
// scheduling loop (claim ticket, run body, release successors) is a hot
// region, so per-task allocations, deferred-body wrappers and string
// labels are all banned inside it. Lint-input fixture -- never compiled.
#include <functional>
#include <string>
#include <vector>

struct FakeGraph {
  std::vector<int> ready;
  std::vector<std::function<void()>> bodies;
};

void fixture_worker_loop(FakeGraph& g) {
  // eroof: hot-begin (task-graph replay: fixture worker loop)
  for (std::size_t ticket = 0; ticket < g.ready.size(); ++ticket) {
    std::string label = "task";                              // hot-alloc
    std::function<void()> body = g.bodies[ticket];           // hot-alloc
    int* scratch = new int[4];                               // hot-alloc
    g.ready.push_back(static_cast<int>(ticket));             // hot-alloc
    body();
    delete[] scratch;
    (void)label;
  }
  // eroof: hot-end
}

void fixture_graph_build(FakeGraph& g) {
  // Build-time code may allocate freely: tasks and edges are arena-ized at
  // seal(), not per replay.
  g.bodies.push_back([] {});
  g.ready.reserve(g.bodies.size());
}
