// Fixture header: missing pragma-once guard, using-directive at namespace
// scope. Lint input only -- never included.
#include <vector>

using namespace std;

inline int fixture_three() { return 3; }
