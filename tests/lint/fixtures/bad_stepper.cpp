// Seeded stepper-loop violations: heap allocation and libc randomness
// inside the steady-state stepping region -- a dynamics hot loop must
// reuse its buffers and draw noise only from counter-keyed RngStream
// forks. Lint-input fixture -- never compiled.
#include <cstdlib>
#include <vector>

void fixture_step_loop(std::vector<double>& x, int steps) {
  // eroof: hot-begin (steady-state stepping)
  for (int s = 0; s < steps; ++s) {
    double* tmp = new double[x.size()];
    x.push_back(static_cast<double>(s));
    x.resize(x.size() + 1);
    const double noise = std::rand() / static_cast<double>(RAND_MAX);
    x[0] += noise + tmp[0];
    delete[] tmp;
  }
  // eroof: hot-end
}

void fixture_stepper_setup(std::vector<double>& x) {
  // Sizing the buffers before entering the stepping loop is the sanctioned
  // pattern; this resize must not be flagged.
  x.resize(128);
}
