// Seeded serving-loop violations: thread spawns inside the hot region
// (a worker's steady state must reuse its pool, never create threads per
// request). Lint-input fixture -- never compiled.
#include <future>
#include <thread>

void fixture_serve_loop(int n) {
  // eroof: hot-begin (worker steady state)
  for (int i = 0; i < n; ++i) {
    std::thread worker([] {});
    auto f = std::async([] { return 1; });
    worker.join();
    (void)f.get();
  }
  // eroof: hot-end
}

void fixture_pool_setup() {
  // Spawning outside the hot region is the sanctioned pattern.
  std::thread worker([] {});
  worker.join();
}
