// Seeded fixture: the hot region calls a helper two hops away that
// allocates; the whole-program pass must report the full call chain.
#include <vector>

namespace demo {

void helper_two(std::vector<int>& v) { v.push_back(1); }

void helper_one(std::vector<int>& v) { helper_two(v); }

void drive(std::vector<int>& v) {
  // eroof: hot-begin (fixture steady-state loop)
  for (int i = 0; i < 4; ++i) helper_one(v);
  // eroof: hot-end
}

}  // namespace demo
