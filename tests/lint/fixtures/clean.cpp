// Fixture: invariant-clean file; the lint pass must exit 0 on it. Mentions
// of std::rand() in comments and "std::rand()" in string literals are not
// code and must not be flagged.
#include <vector>

const char* fixture_label() { return "std::rand() srand time()"; }

double fixture_sum(const std::vector<double>& v) {
  double acc = 0;
  // eroof: hot-begin (steady-state accumulation loop)
  // eroof-lint: allow(nondet-omp) simd-only reduction, fixed lane order
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < v.size(); ++i) acc += v[i];
  // eroof: hot-end
  return acc;
}
