// Tests for tools/lint: the rule engine in-process (exact file:line:rule
// findings on the seeded fixtures) and the eroof_lint binary end-to-end
// (exact exit codes, output format, suppression audit trail).
//
// EROOF_LINT_FIXTURES and EROOF_LINT_BIN are injected by tests/CMakeLists.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace eroof::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(EROOF_LINT_FIXTURES) + "/" + name;
}

/// All (line, rule) pairs of non-suppressed findings, in report order.
std::vector<std::pair<int, std::string>> violations(const FileReport& rep) {
  std::vector<std::pair<int, std::string>> v;
  for (const auto& f : rep.findings)
    if (!f.suppressed) v.emplace_back(f.line, f.rule);
  return v;
}

// ---------------------------------------------------------------------------
// Rule engine on the fixtures
// ---------------------------------------------------------------------------

TEST(LintRules, FlagsEverySeededDeterminismViolation) {
  const auto rep = lint_file(fixture("bad_determinism.cpp"), Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {8, "nondet-rand"},           {10, "nondet-rand"},
      {12, "nondet-rand"},          {15, "nondet-rand"},
      {20, "nondet-rand"},          {28, "nondet-unordered-iter"},
      {34, "nondet-omp"},           {36, "nondet-omp"},
  };
  EXPECT_EQ(violations(rep), expected);
}

TEST(LintRules, FlagsEverySeededHotPathAllocation) {
  const auto rep = lint_file(fixture("bad_hotpath.cpp"), Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {9, "hot-alloc"},  {10, "hot-alloc"}, {11, "hot-alloc"},
      {12, "hot-alloc"}, {13, "hot-alloc"}, {14, "hot-alloc"},
  };
  EXPECT_EQ(violations(rep), expected);
}

TEST(LintRules, FlagsThreadSpawnsInsideHotServeLoop) {
  const auto rep = lint_file(fixture("bad_serve_loop.cpp"), Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {10, "hot-alloc"},
      {11, "hot-alloc"},
  };
  EXPECT_EQ(violations(rep), expected);
}

TEST(LintRules, FlagsAllocationAndLibcRandInHotStepperLoop) {
  // The dynamics stepping loop is a hot region: per-step heap scratch,
  // container growth, and unseeded libc randomness are all banned inside
  // it, while sizing buffers outside the region stays legal.
  const auto rep = lint_file(fixture("bad_stepper.cpp"), Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {11, "hot-alloc"},
      {12, "hot-alloc"},
      {13, "hot-alloc"},
      {14, "nondet-rand"},
  };
  EXPECT_EQ(violations(rep), expected);
  for (const auto& f : rep.findings) EXPECT_LT(f.line, 20) << f.message;
}

TEST(LintRules, AllocationOutsideHotRegionIsFine) {
  const auto rep = lint_file(fixture("bad_hotpath.cpp"), Options{});
  for (const auto& f : rep.findings) EXPECT_LT(f.line, 20) << f.message;
}

TEST(LintRules, FlagsAllocationsInExecutorWorkerLoop) {
  // The task-graph executor's replay loop is the repo's newest hot region:
  // per-task strings, type-erased bodies, heap scratch, and container growth
  // are all banned there, while graph-build code below the region may
  // allocate freely.
  const auto rep = lint_file(fixture("bad_executor.cpp"), Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {17, "hot-alloc"},
      {18, "hot-alloc"},
      {19, "hot-alloc"},
      {20, "hot-alloc"},
  };
  EXPECT_EQ(violations(rep), expected);
  for (const auto& f : rep.findings) EXPECT_LT(f.line, 28) << f.message;
}

TEST(LintRules, FlagsHeaderHygiene) {
  const auto rep = lint_file(fixture("bad_header.hpp"), Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {5, "header-using-namespace"},
      {1, "header-pragma-once"},
  };
  EXPECT_EQ(violations(rep), expected);
}

TEST(LintRules, FlagsUnbalancedAnnotations) {
  const auto rep = lint_file(fixture("bad_annotation.cpp"), Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {3, "annotation-mismatch"},
      {7, "annotation-mismatch"},
  };
  EXPECT_EQ(violations(rep), expected);
}

TEST(LintRules, CleanFixtureHasNoViolations) {
  const auto rep = lint_file(fixture("clean.cpp"), Options{});
  EXPECT_TRUE(violations(rep).empty());
  // ... but the justified simd reduction shows up in the audit trail.
  std::size_t suppressed = 0;
  for (const auto& f : rep.findings) suppressed += f.suppressed ? 1 : 0;
  EXPECT_EQ(suppressed, 1u);
}

// ---------------------------------------------------------------------------
// Suppression semantics: allowed and disallowed violation of the same rule
// ---------------------------------------------------------------------------

TEST(LintSuppression, SameRuleAllowedAndDeniedInOneFile) {
  const auto rep = lint_file(fixture("suppressed_pair.cpp"), Options{});
  ASSERT_EQ(rep.findings.size(), 2u);
  EXPECT_EQ(rep.findings[0].line, 7);
  EXPECT_EQ(rep.findings[0].rule, "nondet-rand");
  EXPECT_TRUE(rep.findings[0].suppressed);
  EXPECT_EQ(rep.findings[1].line, 9);
  EXPECT_EQ(rep.findings[1].rule, "nondet-rand");
  EXPECT_FALSE(rep.findings[1].suppressed);
}

TEST(LintSuppression, TrailingAllowOnTheSameLine) {
  const auto rep = lint_content(
      "f.cpp", "int f() { return std::rand(); }  // eroof-lint: allow(nondet-rand) why\n",
      Options{});
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_TRUE(rep.findings[0].suppressed);
}

TEST(LintSuppression, AllowOnlySuppressesItsOwnRule) {
  const auto rep = lint_content(
      "f.cpp", "int f() { return std::rand(); }  // eroof-lint: allow(hot-alloc)\n",
      Options{});
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_FALSE(rep.findings[0].suppressed);
  // The mismatched allow() is reported as unused.
  bool unused_note = false;
  for (const auto& n : rep.notes)
    unused_note |= n.text.find("unused suppression") != std::string::npos;
  EXPECT_TRUE(unused_note);
}

TEST(LintSuppression, UnknownRuleIdGetsANote) {
  const auto rep =
      lint_content("f.cpp", "int x;  // eroof-lint: allow(no-such-rule)\n",
                   Options{});
  bool unknown_note = false;
  for (const auto& n : rep.notes)
    unknown_note |= n.text.find("unknown rule id") != std::string::npos;
  EXPECT_TRUE(unknown_note);
}

// ---------------------------------------------------------------------------
// Scanner: comments and strings are not code
// ---------------------------------------------------------------------------

TEST(LintScanner, StringsAndCommentsAreNotFlagged) {
  const char* src =
      "// std::rand() in a line comment\n"
      "/* srand(1); in a block\n"
      "   comment spanning lines */\n"
      "const char* s = \"std::rand()\";\n"
      "const char* r = R\"(time(nullptr))\";\n";
  const auto rep = lint_content("f.cpp", src, Options{});
  EXPECT_TRUE(violations(rep).empty());
}

TEST(LintScanner, BlockCommentHidesCodeUntilClosed) {
  const auto lines = scan_lines("int a; /* x\ny */ int b;\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].code, "int a; ");
  EXPECT_NE(lines[1].code.find("int b;"), std::string::npos);
}

TEST(LintScanner, EscapedQuotesStayInsideStrings) {
  const auto rep = lint_content(
      "f.cpp", "const char* s = \"a\\\"b std::rand() c\"; int x = 1;\n",
      Options{});
  EXPECT_TRUE(violations(rep).empty());
}

TEST(LintScanner, MemberCallsNamedTimeAreNotWallClockReads) {
  const auto rep = lint_content(
      "f.cpp", "double d = span.time() + clock.time(3) + t0.time_since_epoch();\n",
      Options{});
  EXPECT_TRUE(violations(rep).empty());
}

// ---------------------------------------------------------------------------
// Scanner robustness regressions. Each of these reproduced a concrete
// mis-scan before the corresponding fix: treat them as pinned behavior.
// ---------------------------------------------------------------------------

TEST(LintScanner, BackslashSplicedLineCommentSwallowsTheNextLine) {
  // Phase 2 of translation joins spliced lines before comments are
  // recognized: the second physical line is comment text, not code.
  const auto rep = lint_content("f.cpp",
                                "// comment continued \\\n"
                                "std::rand();\n"
                                "int live = std::rand();\n",
                                Options{});
  const auto v = violations(rep);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].first, 3);
  EXPECT_EQ(v[0].second, "nondet-rand");
}

TEST(LintScanner, EscapedNewlineInsideStringKeepsLineNumbersInSync) {
  const auto rep = lint_content("f.cpp",
                                "const char* s = \"split \\\n"
                                "string std::rand()\";\n"
                                "std::rand();\n",
                                Options{});
  const auto v = violations(rep);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].first, 3);
}

TEST(LintScanner, RawStringDelimitersAreHonored) {
  // A plain `)"` inside an R"ab(...)ab" literal must not terminate it; only
  // the exact `)ab"` closer does.
  const auto rep = lint_content(
      "f.cpp",
      "const char* s = R\"ab(quote )\" std::rand() still inside)ab\";\n"
      "std::rand();\n",
      Options{});
  const auto v = violations(rep);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].first, 2);
}

TEST(LintScanner, HotBeginInsideBlockCommentIsInert) {
  // A hot-begin annotation nested in a /* */ block is commented-out comment
  // text: it must open no region and trip no annotation-mismatch.
  const auto rep = lint_content("f.cpp",
                                "/* disabled:\n"
                                "// eroof: hot-begin (dead)\n"
                                "*/\n"
                                "std::vector<int> v;\n"
                                "void f() { v.push_back(1); }\n",
                                Options{});
  EXPECT_TRUE(violations(rep).empty());
  EXPECT_TRUE(lint_content("f.cpp", "/* // eroof: hot-end */\n", Options{})
                  .findings.empty());
}

// ---------------------------------------------------------------------------
// Concurrency rule family
// ---------------------------------------------------------------------------

TEST(LintConcurrency, FlagsEverySeededConcurrencyViolation) {
  const auto rep = lint_file(fixture("bad_concurrency.cpp"), Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {14, "conc-blocking-under-lock"},
      {19, "conc-detached-thread"},
      {23, "relaxed-atomic"},
      {29, "conc-unseeded-rng"},
  };
  EXPECT_EQ(violations(rep), expected);
}

TEST(LintConcurrency, UnlockBeforeBlockingCallIsClean) {
  const auto rep = lint_content("f.cpp",
                                "void f(std::unique_lock<std::mutex>& lk,\n"
                                "       std::condition_variable& cv) {\n"
                                "  lk.unlock();\n"
                                "  cv.notify_one();\n"
                                "}\n",
                                Options{});
  EXPECT_TRUE(violations(rep).empty());
}

TEST(LintConcurrency, RelaxedAtomicAllowIsAnAuditedSuppression) {
  const auto rep = lint_content(
      "f.cpp",
      "int f(std::atomic<int>& a) {\n"
      "  return a.load(std::memory_order_relaxed);  "
      "// eroof-lint: allow(relaxed-atomic) monotonic tally\n"
      "}\n",
      Options{});
  EXPECT_TRUE(violations(rep).empty());
  std::size_t suppressed = 0;
  for (const auto& f : rep.findings) suppressed += f.suppressed ? 1 : 0;
  EXPECT_EQ(suppressed, 1u);
}

TEST(LintConcurrency, SeededEngineInParallelRegionIsClean) {
  const auto rep = lint_content("f.cpp",
                                "void f(double* out, int n) {\n"
                                "#pragma omp parallel for\n"
                                "  for (int i = 0; i < n; ++i) {\n"
                                "    std::mt19937 gen(42u + i);\n"
                                "    out[i] = gen();\n"
                                "  }\n"
                                "}\n",
                                Options{});
  EXPECT_TRUE(violations(rep).empty());
}

// ---------------------------------------------------------------------------
// Cold annotations
// ---------------------------------------------------------------------------

TEST(LintCold, ColdLineSkipsHotContractChecks) {
  const auto rep = lint_content(
      "f.cpp",
      "void f(std::vector<int>& v) {\n"
      "  // eroof: hot-begin (cold-line fixture)\n"
      "  // eroof: cold (rebuild slow path, amortized)\n"
      "  v.push_back(1);\n"
      "  v.push_back(2);\n"
      "  // eroof: hot-end\n"
      "}\n",
      Options{});
  const auto v = violations(rep);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].first, 5);  // only the line without the barrier above it
}

TEST(LintCold, ColdExemptsAnOpenMPRegionFromFixAnnotations) {
  Options opt;
  opt.fix_annotations = true;
  const auto rep = lint_content(
      "f.cpp",
      "void f(double* out, int n) {\n"
      "  // eroof: cold (setup pass, allocates by design)\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < n; ++i) out[i] = i;\n"
      "}\n",
      opt);
  for (const auto& n : rep.notes)
    EXPECT_EQ(n.text.find("unannotated OpenMP"), std::string::npos) << n.text;
}

// ---------------------------------------------------------------------------
// Path policy
// ---------------------------------------------------------------------------

TEST(LintPolicy, RngAndTraceAreDeterminismExempt) {
  EXPECT_TRUE(determinism_exempt("src/util/rng.hpp"));
  EXPECT_TRUE(determinism_exempt("/root/repo/src/util/rng.hpp"));
  EXPECT_TRUE(determinism_exempt("src/trace/trace.cpp"));
  EXPECT_FALSE(determinism_exempt("src/core/fit.cpp"));
  EXPECT_FALSE(determinism_exempt("src/util/stats.cpp"));
}

TEST(LintPolicy, ExemptFilesMayReadClocks) {
  const auto rep = lint_content(
      "src/trace/trace.cpp",
      "auto t = std::chrono::high_resolution_clock::now();\n", Options{});
  EXPECT_TRUE(violations(rep).empty());
}

TEST(LintPolicy, HeaderDetection) {
  EXPECT_TRUE(is_header("a/b.hpp"));
  EXPECT_TRUE(is_header("a/b.h"));
  EXPECT_FALSE(is_header("a/b.cpp"));
}

TEST(LintPolicy, FixAnnotationsListsUnannotatedParallelRegions) {
  Options opt;
  opt.fix_annotations = true;
  const auto rep = lint_file(fixture("bad_determinism.cpp"), opt);
  bool noted = false;
  for (const auto& n : rep.notes)
    noted |= n.line == 34 &&
             n.text.find("unannotated OpenMP parallel region") !=
                 std::string::npos;
  EXPECT_TRUE(noted);
}

// ---------------------------------------------------------------------------
// The binary, end to end: exact exit codes and output format
// ---------------------------------------------------------------------------

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult run_lint(const std::string& args) {
  static int counter = 0;
  const std::string out_path = ::testing::TempDir() + "eroof_lint_out_" +
                               std::to_string(counter++) + ".txt";
  const std::string cmd = std::string(EROOF_LINT_BIN) + " " + args + " > " +
                          out_path + " 2>/dev/null";
  const int status = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(out_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  r.out = ss.str();
  std::remove(out_path.c_str());
  return r;
}

std::size_t count_lines_containing(const std::string& text,
                                   const std::string& needle) {
  std::size_t n = 0;
  std::istringstream ss(text);
  std::string line;
  while (std::getline(ss, line))
    if (line.find(needle) != std::string::npos) ++n;
  return n;
}

TEST(LintBinary, CleanFileExitsZero) {
  const auto r = run_lint(fixture("clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "");
}

TEST(LintBinary, ViolationsExitOneWithFileLineRuleFormat) {
  const auto r = run_lint(fixture("suppressed_pair.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // Exactly one finding, at file:9, rule nondet-rand; the allowed call on
  // line 7 is absent.
  EXPECT_EQ(count_lines_containing(r.out, "suppressed_pair.cpp:"), 1u);
  EXPECT_EQ(count_lines_containing(
                r.out, fixture("suppressed_pair.cpp") + ":9: nondet-rand: "),
            1u);
}

TEST(LintBinary, AuditPrintsTheSuppressionTrail) {
  const auto r = run_lint("--audit " + fixture("suppressed_pair.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines_containing(
                r.out,
                fixture("suppressed_pair.cpp") + ":7: suppressed: nondet-rand"),
            1u);
}

TEST(LintBinary, FixtureDirectoryAggregatesAllSeededViolations) {
  const auto r = run_lint(std::string(EROOF_LINT_FIXTURES));
  EXPECT_EQ(r.exit_code, 1);
  // Every rule family fires somewhere in the fixtures.
  for (const char* rule :
       {"nondet-rand", "nondet-unordered-iter", "nondet-omp", "hot-alloc",
        "header-pragma-once", "header-using-namespace",
        "annotation-mismatch"})
    EXPECT_GE(count_lines_containing(r.out, std::string(": ") + rule + ": "),
              1u)
        << rule;
}

TEST(LintBinary, MissingPathExitsTwo) {
  const auto r = run_lint(fixture("no_such_file.cpp"));
  EXPECT_EQ(r.exit_code, 2);
}

TEST(LintBinary, RealTreeIsInvariantClean) {
  // The gate CI enforces: the project's own sources carry no violations.
  // EROOF_LINT_FIXTURES is <repo>/tests/lint/fixtures.
  const std::string repo_root =
      std::string(EROOF_LINT_FIXTURES) + "/../../..";
  const auto r = run_lint("--root " + repo_root);
  EXPECT_EQ(r.exit_code, 0) << r.out;
}

TEST(LintBinary, RealTreeHasNoStaleAllowsUnderStrict) {
  const std::string repo_root =
      std::string(EROOF_LINT_FIXTURES) + "/../../..";
  const auto r = run_lint("--strict-allows --root " + repo_root);
  EXPECT_EQ(r.exit_code, 0) << r.out;
}

TEST(LintBinary, ScheduleMemoStaysFreeOfBlockingUnderLock) {
  // Pins the fix for the genuine finding the whole-program pass surfaced:
  // ScheduleMemo::schedule_for_plan used to call trace::counter_add (which
  // acquires the process-wide trace mutex) while holding its own memo lock.
  // The counters are now bumped outside the critical section; this gate
  // keeps the pattern from coming back.
  const std::string schedule =
      std::string(EROOF_LINT_FIXTURES) + "/../../../src/core/schedule.cpp";
  const auto r = run_lint(schedule);
  EXPECT_EQ(count_lines_containing(r.out, "conc-blocking-under-lock"), 0u)
      << r.out;
}

}  // namespace
}  // namespace eroof::lint
