// Tests for tools/lint/callgraph: call-site extraction and conservative
// resolution, hot-region reachability (cycles, recursion, cold barriers),
// chain-bearing transitive findings, and the unresolved-call notes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "callgraph.hpp"
#include "index.hpp"
#include "lint.hpp"

namespace eroof::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(EROOF_LINT_FIXTURES) + "/" + name;
}

struct Program {
  std::vector<SourceFile> sources;
  FunctionIndex index;
  CallGraph graph;
};

Program program_of(const std::vector<std::pair<std::string, std::string>>&
                       files) {
  Program p;
  for (const auto& [path, src] : files)
    p.sources.push_back(load_source(path, src));
  p.index = build_index(p.sources);
  p.graph = build_call_graph(p.index, p.sources);
  return p;
}

/// The resolved callee ids of the first site named `name` in the program.
std::vector<int> callees_of(const Program& p, const std::string& name) {
  for (const auto& s : p.graph.sites)
    if (s.name == name) return s.callees;
  ADD_FAILURE() << "no call site named " << name;
  return {};
}

std::vector<std::pair<int, std::string>> violations(const ProgramReport& rep) {
  std::vector<std::pair<int, std::string>> v;
  for (const auto& f : rep.findings)
    if (!f.suppressed) v.emplace_back(f.line, f.rule);
  return v;
}

// ---------------------------------------------------------------------------
// Call-site extraction and resolution
// ---------------------------------------------------------------------------

TEST(LintCallGraph, ResolvesFreeCallsAcrossFiles) {
  const auto p = program_of({
      {"a.cpp", "void helper() {}\n"},
      {"b.cpp", "void helper();\nvoid drive() { helper(); }\n"},
  });
  const auto callees = callees_of(p, "helper");
  ASSERT_EQ(callees.size(), 1u);
  EXPECT_EQ(p.index.fns[static_cast<std::size_t>(callees[0])].file, "a.cpp");
}

TEST(LintCallGraph, OverloadArityFilterSelectsTheMatchingSignature) {
  const auto p = program_of({
      {"a.cpp",
       "int f(int a) { return a; }\n"
       "int f(int a, int b) { return a + b; }\n"
       "int drive() { return f(1); }\n"},
  });
  const auto callees = callees_of(p, "f");
  ASSERT_EQ(callees.size(), 1u);
  EXPECT_EQ(p.index.fns[static_cast<std::size_t>(callees[0])].arity, 1);
}

TEST(LintCallGraph, ArityMismatchFallsBackToAllCandidates) {
  // A lexical arg-count miscue (macro-expanded args, defaulted callables)
  // must degrade to edges-to-every-overload, never to a silently dropped
  // call.
  const auto p = program_of({
      {"a.cpp",
       "int f(int a) { return a; }\n"
       "int f(int a, int b) { return a + b; }\n"
       "int drive() { return f(1, 2, 3); }\n"},
  });
  EXPECT_EQ(callees_of(p, "f").size(), 2u);
}

TEST(LintCallGraph, QualifierSuffixFilterDisambiguates) {
  const auto p = program_of({
      {"a.cpp",
       "namespace la { void gemv() {} }\n"
       "namespace fft { void gemv() {} }\n"
       "void drive() { la::gemv(); }\n"},
  });
  const auto callees = callees_of(p, "gemv");
  ASSERT_EQ(callees.size(), 1u);
  EXPECT_EQ(p.index.fns[static_cast<std::size_t>(callees[0])].qualified,
            "la::gemv");
}

TEST(LintCallGraph, UnqualifiedCallPrefersTheCallersOwnScope) {
  // `size()` inside Plan::run is an implicit-this call: it must resolve to
  // Plan::size, not to every size() in the program.
  const auto p = program_of({
      {"a.cpp",
       "struct Plan {\n"
       "  int size() { return 1; }\n"
       "  int run() { return size(); }\n"
       "};\n"
       "struct Cache {\n"
       "  int size() { return 2; }\n"
       "};\n"},
  });
  const auto callees = callees_of(p, "size");
  ASSERT_EQ(callees.size(), 1u);
  EXPECT_EQ(p.index.fns[static_cast<std::size_t>(callees[0])].qualified,
            "Plan::size");
}

TEST(LintCallGraph, ConstructionEdgesResolveToTheCtor) {
  const auto p = program_of({
      {"a.cpp",
       "struct Guard {\n"
       "  Guard(int n) : n_(n) {}\n"
       "  int n_;\n"
       "};\n"
       "void drive() { Guard g(3); (void)g; }\n"},
  });
  bool found = false;
  for (const auto& s : p.graph.sites)
    if (s.construct && s.name == "Guard") {
      found = true;
      ASSERT_EQ(s.callees.size(), 1u);
      EXPECT_TRUE(
          p.index.fns[static_cast<std::size_t>(s.callees[0])].is_ctor);
    }
  EXPECT_TRUE(found);
}

TEST(LintCallGraph, StdVocabularyMemberCallsProduceNoSites) {
  const auto p = program_of({
      {"a.cpp",
       "struct S { int size() { return 0; } };\n"
       "int drive(S& v) { return v.size(); }\n"},
  });
  // `v.size()` matches the std vocabulary whitelist (size/empty/begin/...):
  // no edge, and -- crucially -- no unresolved-call noise later.
  for (const auto& s : p.graph.sites) EXPECT_NE(s.name, "size");
}

// ---------------------------------------------------------------------------
// Hot propagation: shapes that must terminate and chains that must be exact
// ---------------------------------------------------------------------------

TEST(LintCallGraph, TwoHopChainIsReportedWithExactPath) {
  SourceFile sf;
  ASSERT_TRUE(load_source_file(fixture("chain_hot.cpp"), sf));
  const auto rep = analyze_program({sf}, ProgramOptions{});
  const std::vector<std::pair<int, std::string>> expected = {
      {7, "hot-alloc"}};
  EXPECT_EQ(violations(rep), expected);
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_EQ(rep.findings[0].message,
            "container grow (push_back) in 'demo::helper_two', reachable "
            "from hot region at " +
                fixture("chain_hot.cpp") + ":12 -> helper_one (called at " +
                fixture("chain_hot.cpp") + ":13) -> helper_two (called at " +
                fixture("chain_hot.cpp") + ":9)");
}

TEST(LintCallGraph, AllowedEquivalentPassesWithAuditEntry) {
  SourceFile sf;
  ASSERT_TRUE(load_source_file(fixture("chain_hot_allowed.cpp"), sf));
  const auto rep = analyze_program({sf}, ProgramOptions{});
  EXPECT_TRUE(violations(rep).empty());
  std::size_t suppressed = 0;
  for (const auto& f : rep.findings)
    if (f.suppressed) {
      ++suppressed;
      EXPECT_EQ(f.rule, "hot-alloc");
      EXPECT_EQ(f.line, 9);
    }
  EXPECT_EQ(suppressed, 1u);
}

TEST(LintCallGraph, CyclesTerminateAndStayHot) {
  const auto p = program_of({
      {"a.cpp",
       "#include <vector>\n"
       "void pong(std::vector<int>& v, int n);\n"
       "void ping(std::vector<int>& v, int n) {\n"
       "  v.push_back(n);\n"
       "  if (n > 0) pong(v, n - 1);\n"
       "}\n"
       "void pong(std::vector<int>& v, int n) { if (n > 0) ping(v, n); }\n"
       "void drive(std::vector<int>& v) {\n"
       "  // eroof: hot-begin (cycle fixture)\n"
       "  ping(v, 3);\n"
       "  // eroof: hot-end\n"
       "}\n"},
  });
  std::vector<FileAnalysis> analyses;
  for (const auto& sf : p.sources) analyses.emplace_back(sf, Options{});
  const auto hr = propagate_hot(p.index, p.graph, p.sources, analyses);
  const int ping = p.index.find("ping");
  const int pong = p.index.find("pong");
  ASSERT_GE(ping, 0);
  ASSERT_GE(pong, 0);
  EXPECT_TRUE(hr.hot[static_cast<std::size_t>(ping)]);
  EXPECT_TRUE(hr.hot[static_cast<std::size_t>(pong)]);
  // Both chains trace back to the region, and chain() terminates too.
  const auto chain = hr.chain(p.index, p.graph, p.sources, pong);
  EXPECT_NE(chain.find("hot region at a.cpp:9"), std::string::npos);
}

TEST(LintCallGraph, RecursionFromHotRegionIsFlagged) {
  const auto p = program_of({
      {"a.cpp",
       "#include <vector>\n"
       "void grow(std::vector<int>& v, int n) {\n"
       "  if (n == 0) return;\n"
       "  v.push_back(n);\n"
       "  grow(v, n - 1);\n"
       "}\n"
       "void drive(std::vector<int>& v) {\n"
       "  // eroof: hot-begin (recursion fixture)\n"
       "  grow(v, 8);\n"
       "  // eroof: hot-end\n"
       "}\n"},
  });
  const auto rep = analyze_program(p.sources, ProgramOptions{});
  const std::vector<std::pair<int, std::string>> expected = {
      {4, "hot-alloc"}};
  EXPECT_EQ(violations(rep), expected);
}

TEST(LintCallGraph, ColdCallSiteLineSeversPropagation) {
  const auto rep = analyze_program(
      {load_source(
          "a.cpp",
          "#include <vector>\n"
          "void slow(std::vector<int>& v) { v.push_back(1); }\n"
          "void drive(std::vector<int>& v) {\n"
          "  // eroof: hot-begin (cold barrier fixture)\n"
          "  // eroof: cold (rebuild slow path, amortized)\n"
          "  slow(v);\n"
          "  // eroof: hot-end\n"
          "}\n")},
      ProgramOptions{});
  EXPECT_TRUE(violations(rep).empty());
}

TEST(LintCallGraph, ColdFunctionIsNeitherEnteredNorChecked) {
  const auto rep = analyze_program(
      {load_source(
          "a.cpp",
          "#include <vector>\n"
          "// eroof: cold (trace emission: only runs with a session)\n"
          "void emit(std::vector<int>& v) { v.push_back(1); }\n"
          "void drive(std::vector<int>& v) {\n"
          "  // eroof: hot-begin (cold function fixture)\n"
          "  emit(v);\n"
          "  // eroof: hot-end\n"
          "}\n")},
      ProgramOptions{});
  EXPECT_TRUE(violations(rep).empty());
}

TEST(LintCallGraph, HotBodyOutsideTheRegionIsStillChecked) {
  // The per-file pass only sees lines lexically inside hot ranges; the
  // transitive pass must cover a hot-reachable callee's whole body.
  const auto rep = analyze_program(
      {load_source("a.cpp",
                   "#include <vector>\n"
                   "void helper(std::vector<int>& v) {\n"
                   "  v.push_back(1);\n"
                   "  v.push_back(2);\n"
                   "}\n"
                   "void drive(std::vector<int>& v) {\n"
                   "  // eroof: hot-begin (body coverage fixture)\n"
                   "  helper(v);\n"
                   "  // eroof: hot-end\n"
                   "}\n")},
      ProgramOptions{});
  const std::vector<std::pair<int, std::string>> expected = {
      {3, "hot-alloc"}, {4, "hot-alloc"}};
  EXPECT_EQ(violations(rep), expected);
}

// ---------------------------------------------------------------------------
// Conservative degradation: unresolved calls are notes, never failures
// ---------------------------------------------------------------------------

TEST(LintCallGraph, UnresolvableCalleeFromHotCodeGetsANote) {
  const auto rep = analyze_program(
      {load_source("a.cpp",
                   "void external_solver(double* x);\n"
                   "void drive(double* x) {\n"
                   "  // eroof: hot-begin (unresolved fixture)\n"
                   "  external_solver(x);\n"
                   "  // eroof: hot-end\n"
                   "}\n")},
      ProgramOptions{});
  EXPECT_TRUE(violations(rep).empty());
  bool noted = false;
  for (const auto& n : rep.notes)
    noted |= n.line == 4 &&
             n.text.find("'external_solver'") != std::string::npos &&
             n.text.find("cannot be resolved") != std::string::npos;
  EXPECT_TRUE(noted);
}

TEST(LintCallGraph, UnresolvedCallsOutsideHotCodeAreSilent) {
  const auto rep = analyze_program(
      {load_source("a.cpp",
                   "void external_solver(double* x);\n"
                   "void drive(double* x) { external_solver(x); }\n")},
      ProgramOptions{});
  EXPECT_TRUE(violations(rep).empty());
  EXPECT_TRUE(rep.notes.empty());
}

// ---------------------------------------------------------------------------
// Program-level suppression audit
// ---------------------------------------------------------------------------

TEST(LintCallGraph, StaleAllowIsANoteByDefault) {
  const auto rep = analyze_program(
      {load_source("a.cpp",
                   "int f() { return 1; }  // eroof-lint: allow(hot-alloc)\n")},
      ProgramOptions{});
  EXPECT_TRUE(violations(rep).empty());
  bool noted = false;
  for (const auto& n : rep.notes)
    noted |= n.text.find("unused suppression") != std::string::npos;
  EXPECT_TRUE(noted);
}

TEST(LintCallGraph, StrictAllowsPromotesStaleSuppressionsToFindings) {
  ProgramOptions opt;
  opt.strict_allows = true;
  const auto rep = analyze_program(
      {load_source("a.cpp",
                   "int f() { return 1; }  // eroof-lint: allow(hot-alloc)\n")},
      opt);
  const std::vector<std::pair<int, std::string>> expected = {
      {1, "stale-allow"}};
  EXPECT_EQ(violations(rep), expected);
}

TEST(LintCallGraph, StrictAllowsKeepsUsedSuppressionsQuiet) {
  ProgramOptions opt;
  opt.strict_allows = true;
  SourceFile sf;
  ASSERT_TRUE(load_source_file(fixture("chain_hot_allowed.cpp"), sf));
  const auto rep = analyze_program({sf}, opt);
  EXPECT_TRUE(violations(rep).empty());
}

}  // namespace
}  // namespace eroof::lint
