// Tests for tools/lint/index: the tokenizer, the shared token utilities,
// and the cross-TU function indexer (qualified names, arities, body
// extents) that the call-graph layer is built on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace eroof::lint {
namespace {

FunctionIndex index_of(const std::string& src) {
  std::vector<SourceFile> sources;
  sources.push_back(load_source("t.cpp", src));
  return build_index(sources);
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(LintTokenize, KeepsScopeAndArrowTogether) {
  const auto sf = load_source("t.cpp", "a::b()->c();\n");
  const auto toks = tokenize(sf.lines);
  std::vector<std::string> texts;
  for (const auto& t : toks) texts.push_back(t.text);
  const std::vector<std::string> expected = {"a", "::", "b", "(", ")",
                                             "->", "c", "(", ")", ";"};
  EXPECT_EQ(texts, expected);
}

TEST(LintTokenize, SkipsPreprocessorLinesAndContinuations) {
  const auto sf = load_source("t.cpp",
                              "#define M(x) \\\n"
                              "  do_thing(x)\n"
                              "int y;\n");
  const auto toks = tokenize(sf.lines);
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[1].text, "y");
  EXPECT_EQ(toks[0].line, 3);
}

TEST(LintTokenize, CommentsAndStringsAreNotTokens) {
  const auto sf = load_source(
      "t.cpp", "int a = 1; // call_me()\nconst char* s = \"f(x, y)\";\n");
  const auto toks = tokenize(sf.lines);
  for (const auto& t : toks) {
    EXPECT_NE(t.text, "call_me");
    EXPECT_NE(t.text, "f");
  }
}

// ---------------------------------------------------------------------------
// Shared token utilities
// ---------------------------------------------------------------------------

TEST(LintTokenUtil, ParsesQualifiedTemplatedIdChains) {
  const auto sf = load_source("t.cpp", "a::b<int, c<d>>::e f;\n");
  const auto toks = tokenize(sf.lines);
  const IdChain chain = parse_id_chain(toks, 0);
  const std::vector<std::string> expected = {"a", "b", "e"};
  EXPECT_EQ(chain.parts, expected);
  ASSERT_LT(chain.end, toks.size());
  EXPECT_EQ(toks[chain.end].text, "f");
}

TEST(LintTokenUtil, CallArityCountsTopLevelCommasOnly) {
  const auto sf = load_source("t.cpp", "g(a, h(b, c), d<e, f>(x));\n");
  const auto toks = tokenize(sf.lines);
  ASSERT_EQ(toks[1].text, "(");
  const ArgScan sc = scan_call_args(toks, 1);
  EXPECT_TRUE(sc.ok);
  EXPECT_EQ(sc.arity, 3);
}

TEST(LintTokenUtil, EmptyArgListIsArityZero) {
  const auto sf = load_source("t.cpp", "g();\n");
  const auto toks = tokenize(sf.lines);
  const ArgScan sc = scan_call_args(toks, 1);
  EXPECT_TRUE(sc.ok);
  EXPECT_EQ(sc.arity, 0);
}

// ---------------------------------------------------------------------------
// Function indexing
// ---------------------------------------------------------------------------

TEST(LintIndex, QualifiesNestedNamespacesAndClasses) {
  const auto idx = index_of(
      "namespace outer { namespace inner {\n"
      "struct Widget {\n"
      "  int measure(int a) { return a; }\n"
      "};\n"
      "int helper() { return 0; }\n"
      "}  }\n");
  EXPECT_GE(idx.find("outer::inner::Widget::measure"), 0);
  EXPECT_GE(idx.find("outer::inner::helper"), 0);
  EXPECT_EQ(idx.find("outer::Widget::helper"), -1);
}

TEST(LintIndex, OutOfLineMethodDefinitionsAreQualified) {
  const auto idx = index_of(
      "struct Queue { int pop(); };\n"
      "int Queue::pop() { return 1; }\n");
  const int id = idx.find("Queue::pop");
  ASSERT_GE(id, 0);
  EXPECT_EQ(idx.fns[static_cast<std::size_t>(id)].name, "pop");
  EXPECT_EQ(idx.fns[static_cast<std::size_t>(id)].name_line, 2);
}

TEST(LintIndex, RecordsBodyExtentsInLines) {
  const auto idx = index_of(
      "int f() {\n"
      "  int x = 1;\n"
      "  return x;\n"
      "}\n");
  const int id = idx.find("f");
  ASSERT_GE(id, 0);
  const FunctionDef& fd = idx.fns[static_cast<std::size_t>(id)];
  EXPECT_EQ(fd.body_begin_line, 1);
  EXPECT_EQ(fd.body_end_line, 4);
}

TEST(LintIndex, ArityTracksDefaultsAndVariadics) {
  const auto idx = index_of(
      "void fixed(int a, int b) { (void)a; (void)b; }\n"
      "void dflt(int a, int b = 2, int c = 3) { (void)a; (void)b; (void)c; }\n"
      "void var(int a, ...) { (void)a; }\n");
  const FunctionDef& fixed =
      idx.fns[static_cast<std::size_t>(idx.find("fixed"))];
  EXPECT_EQ(fixed.min_arity, 2);
  EXPECT_EQ(fixed.arity, 2);
  EXPECT_FALSE(fixed.accepts_arity(1));
  EXPECT_TRUE(fixed.accepts_arity(2));

  const FunctionDef& dflt = idx.fns[static_cast<std::size_t>(idx.find("dflt"))];
  EXPECT_EQ(dflt.min_arity, 1);
  EXPECT_EQ(dflt.arity, 3);
  EXPECT_TRUE(dflt.accepts_arity(1));
  EXPECT_TRUE(dflt.accepts_arity(3));
  EXPECT_FALSE(dflt.accepts_arity(4));

  const FunctionDef& var = idx.fns[static_cast<std::size_t>(idx.find("var"))];
  EXPECT_TRUE(var.variadic);
  EXPECT_TRUE(var.accepts_arity(7));
  EXPECT_FALSE(var.accepts_arity(0));
}

TEST(LintIndex, ConstructorsAreMarked) {
  const auto idx = index_of(
      "struct Plan {\n"
      "  Plan(int n) : n_(n) {}\n"
      "  int n_;\n"
      "};\n");
  const int id = idx.find("Plan::Plan");
  ASSERT_GE(id, 0);
  EXPECT_TRUE(idx.fns[static_cast<std::size_t>(id)].is_ctor);
}

TEST(LintIndex, DeclarationsAreNotIndexed) {
  const auto idx = index_of(
      "int declared_only(int a);\n"
      "int defined(int a) { return a; }\n");
  EXPECT_EQ(idx.find("declared_only"), -1);
  EXPECT_GE(idx.find("defined"), 0);
}

TEST(LintIndex, CandidatesGroupOverloadsAcrossFiles) {
  std::vector<SourceFile> sources;
  sources.push_back(load_source("a.cpp", "int f(int x) { return x; }\n"));
  sources.push_back(
      load_source("b.cpp", "int f(int x, int y) { return x + y; }\n"));
  const auto idx = build_index(sources);
  EXPECT_EQ(idx.candidates("f").size(), 2u);
  EXPECT_EQ(idx.candidates("g").size(), 0u);
  for (const int id : idx.candidates("f"))
    EXPECT_EQ(idx.fns[static_cast<std::size_t>(id)].name, "f");
}

TEST(LintIndex, TrailingReturnAndNoexceptBodiesAreFound) {
  const auto idx = index_of(
      "auto getter() noexcept -> int { return 3; }\n"
      "int stable() const;\n");  // stray const decl: must not confuse parse
  EXPECT_GE(idx.find("getter"), 0);
}

}  // namespace
}  // namespace eroof::lint
