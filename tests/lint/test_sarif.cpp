// Tests for tools/lint/sarif: JSON escaping, the baseline round-trip and
// its context-keyed matching, and the SARIF 2.1.0 document shape -- plus
// the binary's --write-baseline / --baseline / --sarif plumbing end to end.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"
#include "sarif.hpp"

namespace eroof::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(EROOF_LINT_FIXTURES) + "/" + name;
}

Finding finding(const std::string& file, int line, const std::string& rule,
                const std::string& message, const std::string& context) {
  Finding f;
  f.file = file;
  f.line = line;
  f.rule = rule;
  f.message = message;
  f.context = context;
  return f;
}

// ---------------------------------------------------------------------------
// JSON escaping
// ---------------------------------------------------------------------------

TEST(LintSarif, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json_escape("plain"), "plain");
}

// ---------------------------------------------------------------------------
// Baseline round-trip and matching semantics
// ---------------------------------------------------------------------------

TEST(LintBaseline, RoundTripsThroughWriteAndParse) {
  const std::vector<Finding> findings = {
      finding("src/a.cpp", 10, "hot-alloc", "m", "v.push_back(1);"),
      finding("src/b.cpp", 3, "relaxed-atomic", "m",
              "x.load(std::memory_order_relaxed);"),
  };
  Baseline base;
  ASSERT_TRUE(parse_baseline(write_baseline(findings), base));
  ASSERT_EQ(base.entries.size(), 2u);
  EXPECT_TRUE(base.contains(findings[0]));
  EXPECT_TRUE(base.contains(findings[1]));
}

TEST(LintBaseline, MatchingIgnoresLineNumbersButNotContext) {
  Baseline base;
  ASSERT_TRUE(parse_baseline(
      write_baseline(
          {finding("src/a.cpp", 10, "hot-alloc", "m", "v.push_back(1);")}),
      base));
  // Unrelated edits shift the line: still baselined.
  EXPECT_TRUE(base.contains(
      finding("src/a.cpp", 99, "hot-alloc", "m", "v.push_back(1);")));
  // The offending line itself changed: the entry retires.
  EXPECT_FALSE(base.contains(
      finding("src/a.cpp", 10, "hot-alloc", "m", "v.push_back(2);")));
  // Same context under a different rule or file never matches.
  EXPECT_FALSE(base.contains(
      finding("src/a.cpp", 10, "hot-lock", "m", "v.push_back(1);")));
  EXPECT_FALSE(base.contains(
      finding("src/b.cpp", 10, "hot-alloc", "m", "v.push_back(1);")));
}

TEST(LintBaseline, SuppressedFindingsAreNotRecorded) {
  Finding f = finding("src/a.cpp", 1, "hot-alloc", "m", "ctx");
  f.suppressed = true;
  Baseline base;
  ASSERT_TRUE(parse_baseline(write_baseline({f}), base));
  EXPECT_TRUE(base.entries.empty());
}

TEST(LintBaseline, ApplyMarksOnlyMatchedFindings) {
  std::vector<Finding> findings = {
      finding("src/a.cpp", 10, "hot-alloc", "m", "grandfathered();"),
      finding("src/a.cpp", 20, "hot-alloc", "m", "fresh_violation();"),
  };
  Baseline base;
  base.entries.push_back({"src/a.cpp", "hot-alloc", "grandfathered();"});
  std::vector<bool> baselined;
  EXPECT_EQ(apply_baseline(findings, base, baselined), 1);
  ASSERT_EQ(baselined.size(), 2u);
  EXPECT_TRUE(baselined[0]);
  EXPECT_FALSE(baselined[1]);
}

TEST(LintBaseline, MalformedInputIsRejected) {
  Baseline base;
  EXPECT_FALSE(parse_baseline("{\"version\":\"1\",\"entries\":[{", base));
  EXPECT_FALSE(parse_baseline("not json at all", base));
  EXPECT_TRUE(parse_baseline("{\"version\":\"1\",\"entries\":[]}", base));
}

// ---------------------------------------------------------------------------
// SARIF document shape
// ---------------------------------------------------------------------------

TEST(LintSarif, EmitsDriverRuleTableAndResults) {
  const std::vector<Finding> findings = {
      finding("src/a.cpp", 10, "hot-alloc", "heap allocation", "ctx")};
  const std::string doc = write_sarif(findings, {}, {});
  EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"eroof-lint\""), std::string::npos);
  // Every registered rule appears in the driver's rule table.
  for (const auto& id : rule_ids())
    EXPECT_NE(doc.find("\"id\": \"" + id + "\""), std::string::npos) << id;
  EXPECT_NE(doc.find("\"ruleId\": \"hot-alloc\""), std::string::npos);
  EXPECT_NE(doc.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(doc.find("\"uri\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(doc.find("\"startLine\": 10"), std::string::npos);
}

TEST(LintSarif, SuppressionKindsDistinguishInSourceFromBaseline) {
  Finding allowed = finding("a.cpp", 1, "hot-alloc", "m", "ctx");
  allowed.suppressed = true;
  const Finding grandfathered = finding("a.cpp", 2, "hot-lock", "m", "ctx2");
  const std::string doc =
      write_sarif({allowed, grandfathered}, {false, true}, {});
  EXPECT_NE(doc.find("\"kind\": \"inSource\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\": \"external\""), std::string::npos);
}

TEST(LintSarif, NotesBecomeNoteLevelResults) {
  const std::string doc =
      write_sarif({}, {}, {Note{"a.cpp", 7, "conservative remark"}});
  EXPECT_NE(doc.find("\"level\": \"note\""), std::string::npos);
  EXPECT_NE(doc.find("conservative remark"), std::string::npos);
  EXPECT_NE(doc.find("\"startLine\": 7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The binary: baseline and SARIF plumbing end to end
// ---------------------------------------------------------------------------

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult run_lint(const std::string& args) {
  static int counter = 0;
  const std::string out_path = ::testing::TempDir() + "eroof_sarif_out_" +
                               std::to_string(counter++) + ".txt";
  const std::string cmd = std::string(EROOF_LINT_BIN) + " " + args + " > " +
                          out_path + " 2>/dev/null";
  const int status = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(out_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  r.out = ss.str();
  std::remove(out_path.c_str());
  return r;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(LintSarifBinary, WriteBaselineThenBaselineGatesToZero) {
  const std::string base_path =
      ::testing::TempDir() + "eroof_lint_baseline.json";
  // chain_hot.cpp carries exactly one transitive violation.
  auto r = run_lint("--write-baseline " + base_path + " " +
                    fixture("chain_hot.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(read_file(base_path).find("\"rule\": \"hot-alloc\""),
            std::string::npos);

  r = run_lint("--baseline " + base_path + " " + fixture("chain_hot.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  // Baselined findings are suppressed from stdout entirely.
  EXPECT_EQ(r.out.find("hot-alloc:"), std::string::npos);
  std::remove(base_path.c_str());
}

TEST(LintSarifBinary, BaselineDoesNotHideNewViolations) {
  const std::string base_path =
      ::testing::TempDir() + "eroof_lint_baseline2.json";
  auto r = run_lint("--write-baseline " + base_path + " " +
                    fixture("chain_hot.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  // A different file's findings are not covered by chain_hot's baseline.
  r = run_lint("--baseline " + base_path + " " +
               fixture("bad_concurrency.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  std::remove(base_path.c_str());
}

TEST(LintSarifBinary, MalformedBaselineExitsTwo) {
  const std::string base_path = ::testing::TempDir() + "eroof_lint_bad.json";
  std::ofstream(base_path) << "{\"entries\":[{";
  const auto r =
      run_lint("--baseline " + base_path + " " + fixture("clean.cpp"));
  EXPECT_EQ(r.exit_code, 2);
  std::remove(base_path.c_str());
}

TEST(LintSarifBinary, SarifFileIsWrittenAlongsideTheGate) {
  const std::string sarif_path = ::testing::TempDir() + "eroof_lint.sarif";
  const auto r =
      run_lint("--sarif " + sarif_path + " " + fixture("bad_concurrency.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  const std::string doc = read_file(sarif_path);
  EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(doc.find("\"ruleId\": \"conc-detached-thread\""),
            std::string::npos);
  std::remove(sarif_path.c_str());
}

}  // namespace
}  // namespace eroof::lint
