#include "fft/fft3.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace eroof::fft {
namespace {

std::vector<cplx> random_grid(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return x;
}

TEST(Fft3, RoundTripIdentity) {
  Plan3 plan(4, 6, 8);
  const auto orig = random_grid(plan.size(), 1);
  auto x = orig;
  plan.forward(x);
  plan.inverse(x);
  double m = 0;
  for (std::size_t i = 0; i < x.size(); ++i)
    m = std::max(m, std::abs(x[i] - orig[i]));
  EXPECT_LT(m, 1e-10);
}

TEST(Fft3, ImpulseIsFlatSpectrum) {
  Plan3 plan(3, 3, 3);
  std::vector<cplx> x(27, cplx{0, 0});
  x[0] = {1, 0};
  plan.forward(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - cplx{1, 0}), 0.0, 1e-12);
}

TEST(Fft3, SeparableToneInOneBin) {
  const std::size_t n = 4;
  Plan3 plan(n, n, n);
  std::vector<cplx> x(n * n * n);
  // exp(-2 pi i (1*i0 + 2*i1 + 3*i2) / n) transforms to a delta at (1,2,3).
  for (std::size_t i0 = 0; i0 < n; ++i0)
    for (std::size_t i1 = 0; i1 < n; ++i1)
      for (std::size_t i2 = 0; i2 < n; ++i2) {
        const double ang = 2.0 * std::numbers::pi *
                           static_cast<double>(1 * i0 + 2 * i1 + 3 * i2) /
                           static_cast<double>(n);
        x[(i0 * n + i1) * n + i2] = {std::cos(ang), std::sin(ang)};
      }
  plan.forward(x);
  const std::size_t hot = (1 * n + 2) * n + 3;
  EXPECT_NEAR(std::abs(x[hot]), static_cast<double>(n * n * n), 1e-9);
  for (std::size_t i = 0; i < x.size(); ++i)
    if (i != hot) {
      EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-8);
    }
}

TEST(Fft3, MatchesThree1DPasses) {
  // A 1 x 1 x n grid is exactly a 1-D transform.
  const std::size_t n = 12;
  Plan3 plan3(1, 1, n);
  Plan plan1(n);
  auto a = random_grid(n, 3);
  auto b = a;
  plan3.forward(a);
  plan1.forward(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_LT(std::abs(a[i] - b[i]), 1e-12);
}

TEST(Fft3, CircularConvolve3MatchesNaive) {
  const std::size_t n = 4;
  Plan3 plan(n, n, n);
  const auto a = random_grid(n * n * n, 5);
  const auto b = random_grid(n * n * n, 6);
  const auto conv = circular_convolve3(plan, a, b);

  const auto at = [n](std::span<const cplx> g, std::size_t i, std::size_t j,
                      std::size_t k) { return g[(i * n + j) * n + k]; };
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k) {
        cplx ref{0, 0};
        for (std::size_t a0 = 0; a0 < n; ++a0)
          for (std::size_t a1 = 0; a1 < n; ++a1)
            for (std::size_t a2 = 0; a2 < n; ++a2)
              ref += at(a, a0, a1, a2) * at(b, (i + n - a0) % n,
                                            (j + n - a1) % n,
                                            (k + n - a2) % n);
        EXPECT_LT(std::abs(at(conv, i, j, k) - ref), 1e-9);
      }
}

TEST(Fft3, LinearityAcrossGrids) {
  Plan3 plan(2, 3, 4);
  const auto a = random_grid(plan.size(), 7);
  const auto b = random_grid(plan.size(), 8);
  std::vector<cplx> combo(plan.size());
  for (std::size_t i = 0; i < combo.size(); ++i)
    combo[i] = a[i] - 4.0 * b[i];
  auto fa = a;
  auto fb = b;
  plan.forward(fa);
  plan.forward(fb);
  plan.forward(combo);
  for (std::size_t i = 0; i < combo.size(); ++i)
    EXPECT_LT(std::abs(combo[i] - (fa[i] - 4.0 * fb[i])), 1e-10);
}

}  // namespace
}  // namespace eroof::fft
