#include "fft/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace eroof::fft {
namespace {

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return x;
}

/// O(n^2) reference DFT.
std::vector<cplx> naive_dft(std::span<const cplx> x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(j * k) /
                         static_cast<double>(n);
      acc += x[j] * cplx{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc;
  }
  return out;
}

double max_err(std::span<const cplx> a, std::span<const cplx> b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, n);
  const auto ref = naive_dft(x);
  fft(x);
  EXPECT_LT(max_err(x, ref), 1e-9 * static_cast<double>(n))
      << "size " << n;
}

TEST_P(FftSizes, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const auto orig = random_signal(n, 1000 + n);
  auto x = orig;
  fft(x);
  ifft(x);
  EXPECT_LT(max_err(x, orig), 1e-11 * static_cast<double>(n));
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 2000 + n);
  double time_energy = 0;
  for (const auto& v : x) time_energy += std::norm(v);
  fft(x);
  double freq_energy = 0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-9 * time_energy * static_cast<double>(n));
}

// Powers of two, smooth composites (12 = M2L grid for p=6), odd, primes
// (Bluestein path: 11, 127), and prime powers.
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15,
                                           16, 25, 27, 32, 49, 60, 64, 11, 13,
                                           31, 127, 121, 128, 240, 343, 256));

TEST(Fft, ImpulseTransformsToAllOnes) {
  std::vector<cplx> x(16, cplx{0, 0});
  x[0] = {1, 0};
  fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantTransformsToScaledImpulse) {
  std::vector<cplx> x(8, cplx{1, 0});
  fft(x);
  EXPECT_NEAR(x[0].real(), 8.0, 1e-12);
  for (std::size_t k = 1; k < 8; ++k) EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 32;
  std::vector<cplx> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double ang = 2.0 * std::numbers::pi * 5.0 * static_cast<double>(j) /
                       static_cast<double>(n);
    x[j] = {std::cos(ang), std::sin(ang)};
  }
  fft(x);
  EXPECT_NEAR(std::abs(x[5]), static_cast<double>(n), 1e-10);
  for (std::size_t k = 0; k < n; ++k)
    if (k != 5) {
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
    }
}

TEST(Fft, Linearity) {
  const std::size_t n = 24;
  const auto a = random_signal(n, 1);
  const auto b = random_signal(n, 2);
  std::vector<cplx> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = 2.0 * a[i] + 3.0 * b[i];
  auto fa = a;
  auto fb = b;
  fft(fa);
  fft(fb);
  fft(combo);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LT(std::abs(combo[i] - (2.0 * fa[i] + 3.0 * fb[i])), 1e-10);
}

TEST(Fft, CircularConvolutionMatchesNaive) {
  const std::size_t n = 20;
  const auto a = random_signal(n, 3);
  const auto b = random_signal(n, 4);
  const auto conv = circular_convolve(a, b);
  for (std::size_t k = 0; k < n; ++k) {
    cplx ref{0, 0};
    for (std::size_t j = 0; j < n; ++j) ref += a[j] * b[(k + n - j) % n];
    EXPECT_LT(std::abs(conv[k] - ref), 1e-10) << "index " << k;
  }
}

TEST(Fft, PlanIsReusable) {
  Plan plan(48);
  const auto orig = random_signal(48, 5);
  for (int rep = 0; rep < 3; ++rep) {
    auto x = orig;
    plan.forward(x);
    plan.inverse(x);
    EXPECT_LT(max_err(x, orig), 1e-10);
  }
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

}  // namespace
}  // namespace eroof::fft
