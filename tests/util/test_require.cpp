#include "util/require.hpp"

#include <gtest/gtest.h>

namespace eroof::util {
namespace {

TEST(Require, PassingConditionIsSilent) {
  EXPECT_NO_THROW(EROOF_REQUIRE(1 + 1 == 2));
}

TEST(Require, FailingConditionThrowsContractError) {
  EXPECT_THROW(EROOF_REQUIRE(false), ContractError);
}

TEST(Require, MessageAppearsInWhat) {
  try {
    EROOF_REQUIRE_MSG(false, "the-custom-message");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("the-custom-message"),
              std::string::npos);
  }
}

TEST(Require, ExpressionTextAppearsInWhat) {
  try {
    EROOF_REQUIRE(2 < 1);
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
  }
}

}  // namespace
}  // namespace eroof::util
