// Unit tests of the dependency-counting task-graph executor: construction
// contracts, CSR introspection, replayability, epoch-stamp ordering, and
// hook plumbing. The FMM-shaped integration and stress coverage lives in
// tests/fmm/test_taskgraph*.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/require.hpp"
#include "util/taskgraph.hpp"

namespace eroof::util {
namespace {

TEST(TaskGraph, DiamondRunsEveryTaskOnceInDependencyOrder) {
  // a -> {b, c} -> d. Record a serialized execution log via an atomic slot
  // counter; whatever the interleaving, a is first and d is last.
  TaskGraph g;
  std::atomic<int> next{0};
  std::vector<int> order(4, -1);
  const auto body = [&](int id) {
    return [&, id] { order[static_cast<std::size_t>(next++)] = id; };
  };
  const int a = g.add_task(0, body(0));
  const int b = g.add_task(0, body(1));
  const int c = g.add_task(0, body(2));
  const int d = g.add_task(0, body(3));
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.seal();

  for (const int threads : {1, 2, 4}) {
    next = 0;
    std::fill(order.begin(), order.end(), -1);
    g.run(threads);
    EXPECT_EQ(next.load(), 4);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[3], 3);
  }
  EXPECT_EQ(g.runs_completed(), 3u);
}

TEST(TaskGraph, IntrospectionExposesTheSealedTopology) {
  TaskGraph g;
  const int a = g.add_task(7, [] {});
  const int b = g.add_task(8, [] {});
  const int c = g.add_task(9, [] {});
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.seal();

  EXPECT_EQ(g.task_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.tag(a), 7);
  EXPECT_EQ(g.tag(c), 9);
  EXPECT_EQ(g.initial_dep_count(a), 0);
  EXPECT_EQ(g.initial_dep_count(c), 2);
  ASSERT_EQ(g.roots().size(), 2u);
  EXPECT_EQ(g.roots()[0], a);
  EXPECT_EQ(g.roots()[1], b);
  ASSERT_EQ(g.successors(a).size(), 1u);
  EXPECT_EQ(g.successors(a)[0], c);
  ASSERT_EQ(g.predecessors(c).size(), 2u);
  EXPECT_EQ(g.successors(c).size(), 0u);
}

TEST(TaskGraph, EpochStampsProveEdgeOrdering) {
  // A two-wide layered graph: stamps of the latest run must satisfy
  // finish(u) < start(v) for every edge, and be distinct positive values.
  TaskGraph g;
  constexpr int kLayers = 8;
  int prev[2] = {-1, -1};
  std::vector<std::pair<int, int>> edges;
  for (int l = 0; l < kLayers; ++l) {
    const int t0 = g.add_task(l, [] {});
    const int t1 = g.add_task(l, [] {});
    if (prev[0] >= 0) {
      for (const int p : prev)
        for (const int t : {t0, t1}) {
          g.add_edge(p, t);
          edges.emplace_back(p, t);
        }
    }
    prev[0] = t0;
    prev[1] = t1;
  }
  g.seal();
  g.run(4);

  for (std::size_t t = 0; t < g.task_count(); ++t) {
    const int id = static_cast<int>(t);
    EXPECT_GT(g.start_stamp(id), 0);
    EXPECT_LT(g.start_stamp(id), g.finish_stamp(id));
  }
  for (const auto& [u, v] : edges)
    EXPECT_LT(g.finish_stamp(u), g.start_stamp(v));
}

TEST(TaskGraph, ReplayRepeatsTheWorkExactly) {
  TaskGraph g;
  int counter = 0;
  const int a = g.add_task(0, [&] { counter += 1; });
  const int b = g.add_task(0, [&] { counter += 10; });
  g.add_edge(a, b);
  g.seal();
  for (int rep = 0; rep < 5; ++rep) g.run(2);
  EXPECT_EQ(counter, 55);
  EXPECT_EQ(g.runs_completed(), 5u);
}

TEST(TaskGraph, BeforeTaskHookSeesEveryTaskOnItsWorker) {
  TaskGraph g;
  constexpr int kTasks = 32;
  for (int t = 0; t < kTasks; ++t) g.add_task(0, [] {});
  g.seal();

  std::vector<std::atomic<int>> seen(kTasks);
  TaskGraph::RunHooks hooks;
  hooks.before_task = [&](int task, int worker) {
    EXPECT_GE(worker, 0);
    seen[static_cast<std::size_t>(task)]++;
  };
  g.run(hooks, 4);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(TaskGraph, EmptyGraphRunsTrivially) {
  TaskGraph g;
  g.seal();
  g.run(4);
  EXPECT_EQ(g.runs_completed(), 1u);
}

TEST(TaskGraph, SingleThreadedRunHonorsDeepChains) {
  // A pure chain forces strictly serial publication; the single worker must
  // keep finding the next ticket (no deadlock, no skipped task).
  TaskGraph g;
  constexpr int kChain = 100;
  int last = 0;
  int prev = -1;
  for (int t = 0; t < kChain; ++t) {
    const int id = g.add_task(0, [&last, t] {
      EXPECT_EQ(last, t);
      last = t + 1;
    });
    if (prev >= 0) g.add_edge(prev, id);
    prev = id;
  }
  g.seal();
  g.run(1);
  EXPECT_EQ(last, kChain);
}

TEST(TaskGraph, ContractViolationsThrow) {
  TaskGraph g;
  const int a = g.add_task(0, [] {});
  const int b = g.add_task(0, [] {});
  EXPECT_THROW(g.add_edge(a, a), ContractError);   // self-edge
  EXPECT_THROW(g.add_edge(a, 99), ContractError);  // unknown id
  EXPECT_THROW(g.run(), ContractError);            // run before seal
  g.add_edge(a, b);
  g.add_edge(a, b);  // duplicate: rejected at seal()
  EXPECT_THROW(g.seal(), ContractError);
}

TEST(TaskGraph, CycleIsRejectedAtSeal) {
  TaskGraph g;
  const int a = g.add_task(0, [] {});
  const int b = g.add_task(0, [] {});
  const int c = g.add_task(0, [] {});
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  EXPECT_THROW(g.seal(), ContractError);
}

TEST(TaskGraph, SealFreezesTheGraph) {
  TaskGraph g;
  const int a = g.add_task(0, [] {});
  const int b = g.add_task(0, [] {});
  g.add_edge(a, b);
  g.seal();
  EXPECT_TRUE(g.sealed());
  EXPECT_THROW(g.add_task(0, [] {}), ContractError);
  EXPECT_THROW(g.add_edge(a, b), ContractError);
  EXPECT_THROW(g.seal(), ContractError);
}

}  // namespace
}  // namespace eroof::util
