#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/require.hpp"

namespace eroof::util {
namespace {

TEST(Stats, SummaryOfConstantSample) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_EQ(s.n, 3u);
}

TEST(Stats, SummaryKnownValues) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev of this classic data set: sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, SingleElementHasZeroStddev) {
  const std::vector<double> xs{42.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.n, 1u);
}

TEST(Stats, EmptySampleThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(summarize(xs), ContractError);
}

TEST(Stats, RelativeErrorPct) {
  EXPECT_DOUBLE_EQ(relative_error_pct(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(relative_error_pct(90.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(relative_error_pct(-90.0, -100.0), 10.0);
  EXPECT_DOUBLE_EQ(relative_error_pct(5.0, 5.0), 0.0);
}

TEST(Stats, RelativeErrorZeroReferenceThrows) {
  EXPECT_THROW(relative_error_pct(1.0, 0.0), ContractError);
}

TEST(Stats, Mean) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

}  // namespace
}  // namespace eroof::util
