#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace eroof::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-2.5, 3.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, UniformMeanNearOneHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(5);
  std::array<int, 7> seen{};
  for (int i = 0; i < 7000; ++i) ++seen[r.below(7)];
  for (int c : seen) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, NormalMomentsMatchStandardGaussian) {
  Rng r(13);
  const int n = 200000;
  double mean = 0;
  double m2 = 0;
  for (int i = 0; i < n; ++i) {
    const double z = r.normal();
    mean += z;
    m2 += z * z;
  }
  mean /= n;
  m2 /= n;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(m2, 1.0, 0.02);
}

TEST(Rng, NormalScaleAndShift) {
  Rng r(17);
  const int n = 100000;
  double mean = 0;
  for (int i = 0; i < n; ++i) mean += r.normal(5.0, 2.0);
  EXPECT_NEAR(mean / n, 5.0, 0.05);
}

}  // namespace
}  // namespace eroof::util
