#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/require.hpp"

namespace eroof::util {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(Table, ColumnsAlign) {
  Table t({"x", "y"}, {Align::kLeft, Align::kRight});
  t.add_row({"aa", "1"});
  t.add_row({"b", "100"});
  std::ostringstream os;
  t.print(os);
  // Right-aligned column: "1" must be preceded by spaces up to width 3.
  EXPECT_NE(os.str().find("  1"), std::string::npos);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace eroof::util
