#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/require.hpp"

namespace eroof::util {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "eroof_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndNumericRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.add_row(std::vector<double>{1.0, 2.5});
    w.add_row(std::vector<double>{-3.0, 0.0});
  }
  EXPECT_EQ(read_all(path_), "a,b\n1,2.5\n-3,0\n");
}

TEST_F(CsvTest, WritesStringRows) {
  {
    CsvWriter w(path_, {"id", "value"});
    w.add_row(std::vector<std::string>{"S1", "3.14"});
  }
  EXPECT_EQ(read_all(path_), "id,value\nS1,3.14\n");
}

TEST_F(CsvTest, RowWidthMismatchThrows) {
  CsvWriter w(path_, {"a", "b", "c"});
  EXPECT_THROW(w.add_row(std::vector<double>{1.0}), ContractError);
}

TEST_F(CsvTest, HighPrecisionValuesSurvive) {
  {
    CsvWriter w(path_, {"x"});
    w.add_row(std::vector<double>{1.23456789012e-7});
  }
  const std::string content = read_all(path_);
  EXPECT_NE(content.find("1.23456789012e-07"), std::string::npos) << content;
}

}  // namespace
}  // namespace eroof::util
