// Full-pipeline integration: microbenchmark campaign -> NNLS fit -> the
// fitted model predicts the *FMM's* measured energy within the paper's
// error band (Fig. 5: mean 6.17%, max 14.89% over 64 cases), and the
// energy decompositions reproduce the paper's qualitative findings
// (Section IV-C).
#include <gtest/gtest.h>

#include "core/autotune.hpp"
#include "core/crossval.hpp"
#include "core/fit.hpp"
#include "core/profile.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/gpu_profile.hpp"
#include "fmm/pointgen.hpp"
#include "ubench/campaign.hpp"
#include "util/require.hpp"

namespace eroof {
namespace {

struct Pipeline {
  hw::Soc soc = hw::Soc::tegra_k1();
  hw::PowerMon pm;
  model::EnergyModel model;
  std::vector<model::FitSample> train;
  std::vector<model::FitSample> val;

  Pipeline() {
    util::Rng rng(42);
    const auto campaign = ub::paper_campaign(soc, pm, rng);
    for (const auto& s : campaign) {
      const auto fs = model::to_fit_sample(s.meas);
      (s.role == hw::SettingRole::kTrain ? train : val).push_back(fs);
    }
    model = model::fit_energy_model(train).model;
  }
};

const Pipeline& pipeline() {
  static const Pipeline p;
  return p;
}

struct FmmRun {
  fmm::FmmGpuProfile profile;
  hw::Workload total;
};

FmmRun profile_fmm(std::size_t n, std::uint32_t q) {
  static const fmm::LaplaceKernel kernel;
  util::Rng rng(7);
  const auto pts = fmm::uniform_cube(n, rng);
  fmm::FmmEvaluator ev(
      kernel, pts,
      {.max_points_per_box = q,
       .uniform_depth = fmm::Octree::uniform_depth_for(n, q)},
      fmm::FmmConfig{.p = 4});
  FmmRun run{fmm::profile_gpu_execution(ev), {}};
  run.total = run.profile.total("fmm");
  return run;
}

TEST(Pipeline, HoldoutValidationInPaperBand) {
  const auto& p = pipeline();
  const auto rep = model::validate(p.model, p.val);
  // Paper: mean 2.87%, sd 2.47%, max 11.94%. Same order here.
  EXPECT_LT(rep.summary.mean, 6.0);
  EXPECT_LT(rep.summary.max, 25.0);
}

TEST(Pipeline, FmmEnergyPredictedWithinPaperBand) {
  const auto& p = pipeline();
  const auto run = profile_fmm(16384, 64);

  util::Rng rng(11);
  std::vector<double> errors;
  for (const auto& setting : hw::table4_settings()) {
    double t_total = 0;
    double e_meas = 0;
    hw::OpCounts ops;
    for (const auto& ph : run.profile.phases) {
      const auto m = p.soc.run(ph.workload, setting, p.pm, rng);
      t_total += m.time_s;
      e_meas += m.energy_j;
      ops += ph.workload.ops;
    }
    const double e_pred = p.model.predict_energy_j(ops, setting, t_total);
    errors.push_back(util::relative_error_pct(e_pred, e_meas));
  }
  const auto s = util::summarize(errors);
  // Paper Fig. 5: mean 6.17%, max 14.89%.
  EXPECT_LT(s.mean, 12.0);
  EXPECT_LT(s.max, 30.0);
}

TEST(Pipeline, ConstantPowerDominatesFmmEnergy) {
  // Paper Fig. 7: constant power is 75-95% of the FMM's total energy.
  const auto& p = pipeline();
  const auto run = profile_fmm(16384, 64);
  const auto s1 = hw::setting(852, 924);

  double t_total = 0;
  for (const auto& ph : run.profile.phases)
    t_total += p.soc.execution_time(ph.workload, s1);
  const auto bd = model::breakdown(p.model, run.total.ops, s1, t_total);
  const double const_share = bd.constant_j / bd.total_j();
  EXPECT_GT(const_share, 0.65);
  EXPECT_LT(const_share, 0.97);
}

TEST(Pipeline, MicrobenchConstantShareMuchLowerThanFmm) {
  // The contrast the paper draws in Section IV-C: microbenchmarks ~30%
  // constant power vs 75-95% for the FMM.
  const auto& p = pipeline();
  const auto s1 = hw::setting(852, 924);

  // A high-intensity SP microbenchmark point.
  const auto sweep = ub::intensity_sweep(ub::BenchClass::kSpFlops);
  const auto& hot = sweep.back().workload;
  const double t_ub = p.soc.execution_time(hot, s1);
  const auto bd_ub = model::breakdown(p.model, hot.ops, s1, t_ub);

  const auto run = profile_fmm(16384, 64);
  double t_fmm = 0;
  for (const auto& ph : run.profile.phases)
    t_fmm += p.soc.execution_time(ph.workload, s1);
  const auto bd_fmm = model::breakdown(p.model, run.total.ops, s1, t_fmm);

  EXPECT_LT(bd_ub.constant_j / bd_ub.total_j(),
            0.8 * bd_fmm.constant_j / bd_fmm.total_j());
}

TEST(Pipeline, FmmBestEnergyIsBestTimeSetting) {
  // Paper Section IV-C: because constant power dominates, the FMM's most
  // energy-efficient setting is also its fastest.
  const auto& p = pipeline();
  const auto run = profile_fmm(16384, 64);

  util::Rng rng(13);
  const auto grid = hw::full_grid();
  double best_e = 1e300;
  double best_t = 1e300;
  std::size_t best_e_idx = 0;
  std::size_t best_t_idx = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    double t = 0;
    double e = 0;
    for (const auto& ph : run.profile.phases) {
      const auto m = p.soc.run(ph.workload, grid[i], p.pm, rng);
      t += m.time_s;
      e += m.energy_j;
    }
    if (e < best_e) {
      best_e = e;
      best_e_idx = i;
    }
    if (t < best_t) {
      best_t = t;
      best_t_idx = i;
    }
  }
  // Identical or at worst adjacent on the ladder: compare labels loosely by
  // requiring the energy-best setting to be within 2% energy of running at
  // the time-best setting.
  double e_at_tbest = 0;
  util::Rng rng2(14);
  for (const auto& ph : run.profile.phases)
    e_at_tbest +=
        p.soc.run(ph.workload, grid[best_t_idx], p.pm, rng2).energy_j;
  EXPECT_LT(e_at_tbest, 1.05 * best_e)
      << "time-best " << grid[best_t_idx].label() << " vs energy-best "
      << grid[best_e_idx].label();
}

TEST(Pipeline, UtilizationDrivesTheConstantShare) {
  // White-box confirmation of the paper's hypothesis: the same FMM counts
  // at full utilization would NOT be constant-power dominated.
  const auto& p = pipeline();
  const auto run = profile_fmm(16384, 64);
  const auto s1 = hw::setting(852, 924);

  hw::Workload full_util = run.total;
  full_util.compute_utilization = 1.0;
  full_util.memory_utilization = 1.0;
  const double t_full = p.soc.execution_time(full_util, s1);
  const auto bd_full = model::breakdown(p.model, full_util.ops, s1, t_full);

  double t_real = 0;
  for (const auto& ph : run.profile.phases)
    t_real += p.soc.execution_time(ph.workload, s1);
  const auto bd_real = model::breakdown(p.model, run.total.ops, s1, t_real);

  EXPECT_LT(bd_full.constant_j / bd_full.total_j(),
            bd_real.constant_j / bd_real.total_j());
}

}  // namespace
}  // namespace eroof
