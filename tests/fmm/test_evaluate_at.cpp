// Distinct target/source sets (eq. 10's general form).
#include <gtest/gtest.h>

#include "fmm/direct.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

TEST(EvaluateAt, MatchesDirectSumOnDisjointSets) {
  util::Rng rng(61);
  const auto sources = uniform_cube(4096, rng);
  const auto targets = sphere_surface(1024, rng);
  const auto dens = random_densities(4096, rng);
  const LaplaceKernel kernel;

  const auto phi = FmmEvaluator::evaluate_at(kernel, targets, sources, dens,
                                             {.max_points_per_box = 32},
                                             FmmConfig{.p = 5});
  ASSERT_EQ(phi.size(), targets.size());
  const auto ref = direct_sum(kernel, targets, sources, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 1e-3);
}

TEST(EvaluateAt, GridObservationPlane) {
  // A classic use: potentials on a regular observation grid from scattered
  // charges.
  util::Rng rng(62);
  const auto sources = gaussian_clusters(4096, 3, 0.04, rng);
  const auto dens = random_densities(4096, rng);
  std::vector<Vec3> grid;
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j)
      grid.push_back({i / 15.0, j / 15.0, 0.5});

  const LaplaceKernel kernel;
  const auto phi = FmmEvaluator::evaluate_at(kernel, grid, sources, dens,
                                             {.max_points_per_box = 32},
                                             FmmConfig{.p = 5});
  const auto ref = direct_sum(kernel, grid, sources, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 1e-3);
}

TEST(EvaluateAt, TargetsCoincidingWithSourcesSkipSelfTerm) {
  // Target set == source set must equal the usual evaluate() (which also
  // excludes self-interactions).
  util::Rng rng(63);
  const auto pts = uniform_cube(2048, rng);
  const auto dens = random_densities(2048, rng);
  const LaplaceKernel kernel;

  const auto via_at = FmmEvaluator::evaluate_at(
      kernel, pts, pts, dens, {.max_points_per_box = 32}, FmmConfig{.p = 4});
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32}, FmmConfig{.p = 4});
  const auto via_eval = ev.evaluate(dens);
  // The trees differ (2N points vs N), so agreement is at method accuracy.
  EXPECT_LT(rel_l2_error(via_at, via_eval), 5e-3);
}

TEST(EvaluateAt, SingleTargetFarAway) {
  util::Rng rng(64);
  const auto sources = uniform_cube(2048, rng);
  const auto dens = random_densities(2048, rng);
  const std::vector<Vec3> target{{25.0, 25.0, 25.0}};
  const LaplaceKernel kernel;
  const auto phi = FmmEvaluator::evaluate_at(kernel, target, sources, dens,
                                             {.max_points_per_box = 32},
                                             FmmConfig{.p = 5});
  const auto ref = direct_sum(kernel, target, sources, dens);
  EXPECT_NEAR(phi[0], ref[0], 1e-5 * std::abs(ref[0]) + 1e-12);
}

TEST(EvaluateAt, MismatchedDensitiesThrow) {
  const std::vector<Vec3> sources{{0.1, 0.1, 0.1}, {0.2, 0.2, 0.2}};
  const std::vector<Vec3> targets{{0.5, 0.5, 0.5}};
  const std::vector<double> wrong{1.0};
  const LaplaceKernel kernel;
  EXPECT_THROW(FmmEvaluator::evaluate_at(kernel, targets, sources, wrong),
               util::ContractError);
}

}  // namespace
}  // namespace eroof::fmm
