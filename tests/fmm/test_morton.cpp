#include "fmm/morton.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

TEST(Morton, InterleaveRoundTrip) {
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.below(1u << 20));
    EXPECT_EQ(deinterleave3(interleave3(v)), v);
  }
}

TEST(Morton, InterleaveSpreadsBits) {
  EXPECT_EQ(interleave3(0b1), 0b1u);
  EXPECT_EQ(interleave3(0b11), 0b1001u);
  EXPECT_EQ(interleave3(0b101), 0b1000001u);
}

TEST(Morton, CoordsRoundTrip) {
  util::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const int level = static_cast<int>(rng.below(10)) + 1;
    const std::uint32_t cells = 1u << level;
    const auto x = static_cast<std::uint32_t>(rng.below(cells));
    const auto y = static_cast<std::uint32_t>(rng.below(cells));
    const auto z = static_cast<std::uint32_t>(rng.below(cells));
    const MortonKey k = MortonKey::from_coords(level, x, y, z);
    EXPECT_EQ(k.level(), level);
    const auto c = k.coords();
    EXPECT_EQ(c[0], x);
    EXPECT_EQ(c[1], y);
    EXPECT_EQ(c[2], z);
  }
}

TEST(Morton, ParentHalvesCoordinates) {
  const MortonKey k = MortonKey::from_coords(5, 13, 26, 7);
  const MortonKey p = k.parent();
  EXPECT_EQ(p.level(), 4);
  const auto c = p.coords();
  EXPECT_EQ(c[0], 6u);
  EXPECT_EQ(c[1], 13u);
  EXPECT_EQ(c[2], 3u);
}

TEST(Morton, ChildOfParentIsSelf) {
  const MortonKey k = MortonKey::from_coords(6, 33, 12, 60);
  EXPECT_EQ(k.parent().child(k.octant_in_parent()), k);
}

TEST(Morton, AllEightChildrenAreDistinctAndReturnToParent) {
  const MortonKey p = MortonKey::from_coords(3, 4, 2, 7);
  std::vector<MortonKey> kids;
  for (unsigned o = 0; o < 8; ++o) {
    const MortonKey c = p.child(o);
    EXPECT_EQ(c.level(), 4);
    EXPECT_EQ(c.parent(), p);
    EXPECT_EQ(c.octant_in_parent(), o);
    kids.push_back(c);
  }
  std::sort(kids.begin(), kids.end());
  EXPECT_EQ(std::unique(kids.begin(), kids.end()), kids.end());
}

TEST(Morton, FromPointSelectsCorrectCell) {
  const MortonKey k = MortonKey::from_point(2, 0.1, 0.6, 0.9);
  const auto c = k.coords();
  EXPECT_EQ(c[0], 0u);
  EXPECT_EQ(c[1], 2u);
  EXPECT_EQ(c[2], 3u);
}

TEST(Morton, FromPointRejectsOutOfRange) {
  EXPECT_THROW(MortonKey::from_point(3, 1.0, 0.5, 0.5), util::ContractError);
  EXPECT_THROW(MortonKey::from_point(3, -0.1, 0.5, 0.5), util::ContractError);
}

TEST(Morton, InteriorBoxHas26Neighbors) {
  const MortonKey k = MortonKey::from_coords(3, 4, 4, 4);
  EXPECT_EQ(k.neighbors().size(), 26u);
}

TEST(Morton, CornerBoxHas7Neighbors) {
  const MortonKey k = MortonKey::from_coords(3, 0, 0, 0);
  EXPECT_EQ(k.neighbors().size(), 7u);
}

TEST(Morton, FaceBoxHas17Neighbors) {
  const MortonKey k = MortonKey::from_coords(3, 0, 4, 4);
  EXPECT_EQ(k.neighbors().size(), 17u);
}

TEST(Morton, NeighborsAreAtChebyshevDistanceOne) {
  const MortonKey k = MortonKey::from_coords(4, 7, 3, 9);
  const auto c0 = k.coords();
  for (const MortonKey n : k.neighbors()) {
    EXPECT_EQ(n.level(), 4);
    const auto c = n.coords();
    int d = 0;
    for (int a = 0; a < 3; ++a)
      d = std::max(d, std::abs(static_cast<int>(c[a]) -
                               static_cast<int>(c0[a])));
    EXPECT_EQ(d, 1);
  }
}

TEST(Morton, OrderingGroupsSiblingsTogether) {
  // All 8 children of one parent sort contiguously between any keys of
  // neighboring parents (Z-order locality).
  const MortonKey p = MortonKey::from_coords(2, 1, 1, 1);
  std::vector<MortonKey> keys;
  for (unsigned o = 0; o < 8; ++o) keys.push_back(p.child(o));
  const MortonKey other = MortonKey::from_coords(2, 2, 1, 1).child(0);
  keys.push_back(other);
  std::sort(keys.begin(), keys.end());
  // `other` must not interleave the siblings: it's either before all or
  // after all of them.
  int pos = -1;
  for (std::size_t i = 0; i < keys.size(); ++i)
    if (keys[i] == other) pos = static_cast<int>(i);
  EXPECT_TRUE(pos == 0 || pos == 8);
}

TEST(Morton, RootHasNoParent) {
  const MortonKey root = MortonKey::from_coords(0, 0, 0, 0);
  EXPECT_THROW(root.parent(), util::ContractError);
  EXPECT_EQ(root.level(), 0);
}

}  // namespace
}  // namespace eroof::fmm
