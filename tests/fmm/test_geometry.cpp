#include "fmm/geometry.hpp"

#include <gtest/gtest.h>

namespace eroof::fmm {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  const Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 5);
  EXPECT_DOUBLE_EQ(s.y, 7);
  EXPECT_DOUBLE_EQ(s.z, 9);
  const Vec3 d = b - a;
  EXPECT_DOUBLE_EQ(d.x, 3);
  const Vec3 t = a * 2.0;
  EXPECT_DOUBLE_EQ(t.z, 6);
  EXPECT_DOUBLE_EQ((2.0 * a).z, 6);
}

TEST(Vec3, DotAndNorm) {
  const Vec3 a{1, 2, 2};
  EXPECT_DOUBLE_EQ(a.dot(a), 9.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 3.0);
  EXPECT_DOUBLE_EQ(a.dot(Vec3{0, 0, 0}), 0.0);
}

TEST(Box, ContainsBoundaryInclusive) {
  const Box b{{0, 0, 0}, 1.0};
  EXPECT_TRUE(b.contains({0, 0, 0}));
  EXPECT_TRUE(b.contains({1, 1, 1}));
  EXPECT_TRUE(b.contains({-1, 0.5, -0.2}));
  EXPECT_FALSE(b.contains({1.001, 0, 0}));
}

TEST(Box, ChildOctantsTileTheParent) {
  const Box b{{2, 3, 4}, 1.0};
  for (unsigned o = 0; o < 8; ++o) {
    const Box c = b.child(o);
    EXPECT_DOUBLE_EQ(c.half, 0.5);
    EXPECT_TRUE(b.contains(c.center));
    // Octant bit i selects the + side of axis i.
    EXPECT_DOUBLE_EQ(c.center.x, b.center.x + ((o & 1u) ? 0.5 : -0.5));
    EXPECT_DOUBLE_EQ(c.center.y, b.center.y + ((o & 2u) ? 0.5 : -0.5));
    EXPECT_DOUBLE_EQ(c.center.z, b.center.z + ((o & 4u) ? 0.5 : -0.5));
  }
}

TEST(Box, ChebyshevCenterDistance) {
  const Box a{{0, 0, 0}, 1.0};
  const Box b{{3, 1, -2}, 1.0};
  EXPECT_DOUBLE_EQ(center_distance_inf(a, b), 3.0);
}

TEST(Box, AdjacencySameSize) {
  const Box a{{0, 0, 0}, 1.0};
  EXPECT_TRUE(boxes_adjacent(a, Box{{2, 0, 0}, 1.0}));   // face
  EXPECT_TRUE(boxes_adjacent(a, Box{{2, 2, 0}, 1.0}));   // edge
  EXPECT_TRUE(boxes_adjacent(a, Box{{2, 2, 2}, 1.0}));   // corner
  EXPECT_FALSE(boxes_adjacent(a, Box{{4, 0, 0}, 1.0}));  // gap
  EXPECT_TRUE(boxes_adjacent(a, a));                     // overlap counts
}

TEST(Box, AdjacencyAcrossLevels) {
  const Box coarse{{0, 0, 0}, 2.0};
  const Box fine_touching{{2.5, 0, 0}, 0.5};
  const Box fine_separated{{3.5, 0, 0}, 0.5};
  EXPECT_TRUE(boxes_adjacent(coarse, fine_touching));
  EXPECT_FALSE(boxes_adjacent(coarse, fine_separated));
}

TEST(Box, AdjacencyToleratesRoundoff) {
  // Boxes produced by repeated halving touch to within roundoff; the
  // predicate must not reject them.
  const Box a{{0, 0, 0}, 1.0 / 3.0};
  const Box b{{2.0 / 3.0 + 1e-16, 0, 0}, 1.0 / 3.0};
  EXPECT_TRUE(boxes_adjacent(a, b));
}

}  // namespace
}  // namespace eroof::fmm
