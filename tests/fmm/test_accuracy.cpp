// End-to-end FMM correctness: the evaluator must reproduce the direct
// O(N^2) sum within the accuracy of the chosen surface order, across
// distributions (uniform, sphere surface, clustered -- the latter two
// exercising the adaptive W/X paths), kernels, and tree parameters.
#include <gtest/gtest.h>

#include "util/require.hpp"

#include "fmm/direct.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

struct Case {
  std::string name;
  std::size_t n;
  std::uint32_t q;
  int p;
  double tol;
  int dist;  // 0 uniform, 1 sphere, 2 clusters
};

void PrintTo(const Case& c, std::ostream* os) { *os << c.name; }

class FmmAccuracy : public ::testing::TestWithParam<Case> {};

TEST_P(FmmAccuracy, MatchesDirectSum) {
  const Case& c = GetParam();
  util::Rng rng(1234);
  std::vector<Vec3> pts;
  switch (c.dist) {
    case 0: pts = uniform_cube(c.n, rng); break;
    case 1: pts = sphere_surface(c.n, rng); break;
    default: pts = gaussian_clusters(c.n, 4, 0.03, rng); break;
  }
  const auto dens = random_densities(c.n, rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = c.q},
                  FmmConfig{.p = c.p});
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), c.tol) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FmmAccuracy,
    ::testing::Values(
        Case{"uniform_small_p4", 2048, 32, 4, 2e-3, 0},
        Case{"uniform_small_p5", 2048, 32, 5, 5e-4, 0},
        Case{"uniform_small_p6", 2048, 32, 6, 5e-5, 0},
        Case{"uniform_larger_p4", 8192, 64, 4, 2e-3, 0},
        Case{"uniform_bigQ_p4", 4096, 256, 4, 2e-3, 0},
        Case{"sphere_p4", 4096, 32, 4, 3e-3, 1},
        Case{"sphere_p5", 4096, 32, 5, 8e-4, 1},
        Case{"clusters_p4", 4096, 32, 4, 3e-3, 2},
        Case{"clusters_p5", 4096, 32, 5, 1e-3, 2}),
    [](const auto& pinfo) { return pinfo.param.name; });

TEST(FmmAccuracyExtra, ErrorDecreasesWithSurfaceOrder) {
  util::Rng rng(77);
  const auto pts = uniform_cube(2048, rng);
  const auto dens = random_densities(2048, rng);
  const LaplaceKernel kernel;
  const auto ref = direct_sum(kernel, pts, pts, dens);

  double prev = 1.0;
  for (int p : {4, 5, 6}) {
    FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32},
                    FmmConfig{.p = p});
    const double err = rel_l2_error(ev.evaluate(dens), ref);
    EXPECT_LT(err, prev) << "p = " << p << " did not improve accuracy";
    prev = err;
  }
}

TEST(FmmAccuracyExtra, LinearityInDensities) {
  util::Rng rng(78);
  const auto pts = uniform_cube(1024, rng);
  const auto d1 = random_densities(1024, rng);
  const auto d2 = random_densities(1024, rng);
  std::vector<double> combo(1024);
  for (std::size_t i = 0; i < 1024; ++i) combo[i] = 2.0 * d1[i] - 3.0 * d2[i];

  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32}, FmmConfig{.p = 4});
  const auto p1 = ev.evaluate(d1);
  const auto p2 = ev.evaluate(d2);
  const auto pc = ev.evaluate(combo);
  for (std::size_t i = 0; i < 128; ++i)  // spot-check a prefix
    EXPECT_NEAR(pc[i], 2.0 * p1[i] - 3.0 * p2[i],
                1e-9 * (std::abs(pc[i]) + 1.0));
}

TEST(FmmAccuracyExtra, RepeatedEvaluationIsDeterministic) {
  util::Rng rng(79);
  const auto pts = uniform_cube(1024, rng);
  const auto dens = random_densities(1024, rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32}, FmmConfig{.p = 4});
  const auto a = ev.evaluate(dens);
  const auto b = ev.evaluate(dens);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(FmmAccuracyExtra, DenseM2LFallbackAgreesWithFft) {
  util::Rng rng(80);
  const auto pts = uniform_cube(2048, rng);
  const auto dens = random_densities(2048, rng);
  const LaplaceKernel kernel;
  FmmEvaluator fft_ev(kernel, pts, {.max_points_per_box = 32},
                      FmmConfig{.p = 4, .use_fft_m2l = true});
  FmmEvaluator dense_ev(kernel, pts, {.max_points_per_box = 32},
                        FmmConfig{.p = 4, .use_fft_m2l = false});
  const auto a = fft_ev.evaluate(dens);
  const auto b = dense_ev.evaluate(dens);
  EXPECT_LT(rel_l2_error(a, b), 1e-10);
}

TEST(FmmAccuracyExtra, YukawaKernelWorks) {
  // Kernel independence: a non-homogeneous kernel through the same
  // machinery.
  util::Rng rng(81);
  const auto pts = uniform_cube(2048, rng);
  const auto dens = random_densities(2048, rng);
  const YukawaKernel kernel(1.5);
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32}, FmmConfig{.p = 5});
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 2e-3);
}

TEST(FmmAccuracyExtra, UniformTreeModeMatchesDirectToo) {
  util::Rng rng(82);
  const std::size_t n = 4096;
  const auto pts = uniform_cube(n, rng);
  const auto dens = random_densities(n, rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts,
                  {.max_points_per_box = 64,
                   .uniform_depth = Octree::uniform_depth_for(n, 64)},
                  FmmConfig{.p = 4});
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 2e-3);
}

TEST(FmmAccuracyExtra, TinyInputDegeneratesToDirect) {
  // N <= Q: the root is a leaf and everything goes through U.
  util::Rng rng(83);
  const auto pts = uniform_cube(50, rng);
  const auto dens = random_densities(50, rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 64}, FmmConfig{.p = 4});
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 1e-12);
}

TEST(FmmAccuracyExtra, StatsTalliesArePopulated) {
  util::Rng rng(84);
  const auto pts = uniform_cube(4096, rng);
  const auto dens = random_densities(4096, rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32}, FmmConfig{.p = 4});
  ev.evaluate(dens);
  const FmmStats& s = ev.stats();
  EXPECT_GT(s.u.kernel_evals, 0);
  EXPECT_GT(s.u.pair_count, 0);
  EXPECT_GT(s.v.pair_count, 0);
  EXPECT_GT(s.v.ffts, 0);
  EXPECT_GT(s.up.kernel_evals, 0);
  EXPECT_GT(s.down.solve_matvecs, 0);
}

TEST(FmmAccuracyExtra, WrongDensityCountThrows) {
  util::Rng rng(85);
  const auto pts = uniform_cube(256, rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32}, FmmConfig{.p = 4});
  const std::vector<double> wrong(100, 1.0);
  EXPECT_THROW(ev.evaluate(wrong), util::ContractError);
}

}  // namespace
}  // namespace eroof::fmm
