#include "fmm/operators.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

#include <cmath>
#include <set>

#include "fmm/direct.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

constexpr int kP = 4;

Operators make_ops(const Kernel& k, int max_level = 3) {
  return Operators(k, 0.5, max_level, FmmConfig{.p = kP});
}

TEST(Operators, GridGeometry) {
  const LaplaceKernel k;
  const Operators ops = make_ops(k);
  EXPECT_EQ(ops.grid_m(), 8u);
  EXPECT_EQ(ops.grid_size(), 512u);
  EXPECT_EQ(ops.n_surf(), surface_point_count(kP));
  EXPECT_EQ(ops.surf_to_grid().size(), ops.n_surf());
}

TEST(Operators, EmbedExtractRoundTrip) {
  const LaplaceKernel k;
  const Operators ops = make_ops(k);
  util::Rng rng(1);
  std::vector<double> vals(ops.n_surf());
  for (auto& v : vals) v = rng.uniform(-1, 1);
  std::vector<fft::cplx> grid(ops.grid_size());
  ops.embed(vals, grid);
  std::vector<double> back(ops.n_surf());
  ops.extract(grid, back);
  for (std::size_t i = 0; i < vals.size(); ++i)
    EXPECT_DOUBLE_EQ(back[i], vals[i]);
}

TEST(Operators, RelIndexRejectsNearField) {
  EXPECT_FALSE(Operators::rel_index(0, 0, 0).has_value());
  EXPECT_FALSE(Operators::rel_index(1, -1, 1).has_value());
  EXPECT_TRUE(Operators::rel_index(2, 0, 0).has_value());
  EXPECT_TRUE(Operators::rel_index(-3, 3, 1).has_value());
  EXPECT_FALSE(Operators::rel_index(4, 0, 0).has_value());
}

TEST(Operators, RelIndexIsInjective) {
  std::set<std::size_t> seen;
  int count = 0;
  for (int dx = -3; dx <= 3; ++dx)
    for (int dy = -3; dy <= 3; ++dy)
      for (int dz = -3; dz <= 3; ++dz) {
        const auto r = Operators::rel_index(dx, dy, dz);
        if (!r) continue;
        EXPECT_TRUE(seen.insert(*r).second);
        ++count;
      }
  EXPECT_EQ(count, 316);  // 7^3 - 3^3
}

TEST(Operators, UpwardEquivalentReproducesFarField) {
  // Place random sources in a level-2 box, build the upward equivalent
  // density through UC2E, and compare the equivalent density's field
  // against the true source field at a well-separated point.
  const LaplaceKernel kernel;
  const FmmConfig cfg{.p = 6};
  const double root_half = 0.5;
  const Operators ops(kernel, root_half, 2, cfg);

  const double h = root_half / 4.0;  // level-2 box half-width
  const Box box{{h, h, h}, h};       // a corner box, center arbitrary
  util::Rng rng(3);
  std::vector<Vec3> sources(20);
  for (auto& s : sources)
    s = {box.center.x + rng.uniform(-h, h), box.center.y + rng.uniform(-h, h),
         box.center.z + rng.uniform(-h, h)};
  std::vector<double> dens(20);
  for (auto& d : dens) d = rng.uniform(-1, 1);

  // P2M: sources -> check potentials -> equivalent density.
  const auto check_pts = surface_points(cfg.p, box, kRadiusOuter);
  const auto equiv_pts = surface_points(cfg.p, box, kRadiusInner);
  std::vector<double> check(check_pts.size(), 0.0);
  for (std::size_t c = 0; c < check_pts.size(); ++c)
    for (std::size_t j = 0; j < sources.size(); ++j)
      check[c] += kernel.eval(check_pts[c], sources[j]) * dens[j];
  const auto equiv = la::matvec(ops.level(2).uc2e, check);

  // Evaluate both representations at far points (outside 3 box halves).
  for (const Vec3 far : {Vec3{box.center.x + 8 * h, box.center.y, box.center.z},
                         Vec3{box.center.x, box.center.y + 10 * h,
                              box.center.z + 6 * h}}) {
    double truth = 0;
    for (std::size_t j = 0; j < sources.size(); ++j)
      truth += kernel.eval(far, sources[j]) * dens[j];
    double approx = 0;
    for (std::size_t j = 0; j < equiv_pts.size(); ++j)
      approx += kernel.eval(far, equiv_pts[j]) * equiv[j];
    EXPECT_NEAR(approx, truth, 1e-5 * std::abs(truth) + 1e-12);
  }
}

TEST(Operators, FftM2LMatchesDenseTranslation) {
  // For one V-list offset, the FFT path (embed -> forward -> Hadamard with
  // the precomputed tensor -> inverse -> extract) must reproduce the dense
  // kernel-matrix application between equivalent and check surfaces.
  const LaplaceKernel kernel;
  const FmmConfig cfg{.p = kP};
  const double root_half = 0.5;
  const int level = 2;
  const Operators ops(kernel, root_half, level, cfg);
  const double h = root_half / 4.0;

  const Box src_box{{0, 0, 0}, h};
  const int dx = 3;
  const int dy = -2;
  const int dz = 0;
  const Box tgt_box{{2 * h * dx, 2 * h * dy, 2 * h * dz}, h};

  util::Rng rng(4);
  std::vector<double> equiv(ops.n_surf());
  for (auto& v : equiv) v = rng.uniform(-1, 1);

  // Dense reference.
  const auto src_pts = surface_points(cfg.p, src_box, kRadiusInner);
  const auto tgt_pts = surface_points(cfg.p, tgt_box, kRadiusInner);
  std::vector<double> dense(ops.n_surf(), 0.0);
  for (std::size_t i = 0; i < tgt_pts.size(); ++i)
    for (std::size_t j = 0; j < src_pts.size(); ++j)
      dense[i] += kernel.eval(tgt_pts[i], src_pts[j]) * equiv[j];

  // FFT path. The tensor was built for target-minus-source coordinate
  // deltas, so rel = (dx, dy, dz).
  std::vector<fft::cplx> grid(ops.grid_size());
  ops.embed(equiv, grid);
  ops.plan().forward(grid);
  const auto rel = Operators::rel_index(dx, dy, dz);
  ASSERT_TRUE(rel.has_value());
  const auto t_hat = ops.m2l_spectrum(level, *rel);
  ASSERT_EQ(t_hat.size(), ops.grid_size());
  for (std::size_t i = 0; i < grid.size(); ++i) grid[i] *= t_hat[i];
  ops.plan().inverse(grid);
  std::vector<double> fft_result(ops.n_surf());
  ops.extract(grid, fft_result);

  for (std::size_t i = 0; i < dense.size(); ++i)
    EXPECT_NEAR(fft_result[i], dense[i], 1e-10 + 1e-10 * std::abs(dense[i]))
        << "surface index " << i;
}

TEST(Operators, DenseM2LDisabledSkipsTensors) {
  const LaplaceKernel kernel;
  const Operators ops(kernel, 0.5, 2, FmmConfig{.p = kP, .use_fft_m2l = false});
  EXPECT_EQ(ops.level(2).m2l, nullptr);
  const auto rel = Operators::rel_index(2, 0, 0);
  ASSERT_TRUE(rel.has_value());
  EXPECT_TRUE(ops.m2l_spectrum(2, *rel).empty());
}

TEST(Operators, HomogeneousRescaledLevelsMatchDirectBuild) {
  // Laplace operators at level 3/4 are produced by rescaling the level-2
  // build; they must agree with kernel matrices computed directly from
  // level-3/4 geometry (exactness of the scale-invariance shortcut).
  const LaplaceKernel kernel;
  const double root_half = 0.5;
  const Operators ops(kernel, root_half, 4, FmmConfig{.p = kP});
  for (int l : {3, 4}) {
    const double h = root_half / std::exp2(l);
    const Box box{{0, 0, 0}, h};
    const auto up_check = surface_points(kP, box, kRadiusOuter);
    const auto down_equiv = surface_points(kP, box, kRadiusOuter);
    for (unsigned o = 0; o < 8; ++o) {
      const Box child = box.child(o);
      const auto child_up_equiv = surface_points(kP, child, kRadiusInner);
      const auto m2m_direct = kernel.matrix(up_check, child_up_equiv);
      EXPECT_LT(ops.level(l).m2m[o].max_abs_diff(m2m_direct),
                1e-12 * m2m_direct.frobenius_norm())
          << "level " << l << " octant " << o;
      const auto child_down_check = surface_points(kP, child, kRadiusInner);
      const auto l2l_direct = kernel.matrix(child_down_check, down_equiv);
      EXPECT_LT(ops.level(l).l2l[o].max_abs_diff(l2l_direct),
                1e-12 * l2l_direct.frobenius_norm())
          << "level " << l << " octant " << o;
    }
    // The shared M2L bank: scaled spectrum at level l equals the level-2
    // spectrum times 2^(l-2) for the degree -1 Laplace kernel.
    const auto rel = Operators::rel_index(3, -2, 0);
    ASSERT_TRUE(rel.has_value());
    const auto ref = ops.m2l_spectrum(2, *rel);
    const auto got = ops.m2l_spectrum(l, *rel);
    ASSERT_EQ(ref.size(), got.size());
    const double expect_scale = std::exp2(l - 2);
    for (std::size_t k = 0; k < ref.size(); ++k)
      EXPECT_EQ(got[k], ref[k] * expect_scale) << "k = " << k;
    // And the rescaled surface templates match direct construction.
    const auto tmpl = ops.level(l).surf_inner;
    const auto direct = surface_points(kP, box, kRadiusInner);
    ASSERT_EQ(tmpl.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_DOUBLE_EQ(tmpl.x[i], direct[i].x);
      EXPECT_DOUBLE_EQ(tmpl.y[i], direct[i].y);
      EXPECT_DOUBLE_EQ(tmpl.z[i], direct[i].z);
    }
  }
}

TEST(Operators, LevelBelowTwoRejected) {
  const LaplaceKernel kernel;
  const Operators ops = make_ops(kernel);
  EXPECT_THROW(ops.level(0), util::ContractError);
  EXPECT_THROW(ops.level(1), util::ContractError);
  EXPECT_NO_THROW(ops.level(2));
}

TEST(Operators, InvalidConfigRejected) {
  const LaplaceKernel kernel;
  EXPECT_THROW(Operators(kernel, 0.5, 2, FmmConfig{.p = 2}),
               util::ContractError);
  EXPECT_THROW(Operators(kernel, 0.5, 2,
                         FmmConfig{.p = 4, .tikhonov_eps = 0.0}),
               util::ContractError);
}

}  // namespace
}  // namespace eroof::fmm
