// Batched kernel evaluation (Kernel::eval_batch) against the scalar eval()
// contract: per-pair values bitwise-identical, self-interaction convention
// preserved, and the FMM end-to-end accuracy unchanged whether a kernel
// supplies a simd batch implementation or rides the base-class fallback.
#include "fmm/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "fmm/direct.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

/// SoA copy of an AoS point set plus a PointBlock view over it.
struct SoaPoints {
  std::vector<double> x, y, z;
  explicit SoaPoints(std::span<const Vec3> pts) {
    x.reserve(pts.size());
    y.reserve(pts.size());
    z.reserve(pts.size());
    for (const auto& p : pts) {
      x.push_back(p.x);
      y.push_back(p.y);
      z.push_back(p.z);
    }
  }
  PointBlock block() const { return {x.data(), y.data(), z.data(), x.size()}; }
};

std::vector<Vec3> random_points(std::size_t n, util::Rng& rng) {
  std::vector<Vec3> pts(n);
  for (auto& p : pts)
    p = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return pts;
}

/// Single-source batches with unit density isolate one K(t, s) per output:
/// those per-pair values must match eval() bit for bit (same expression
/// structure in both paths, no accumulation involved).
void expect_per_pair_bitwise(const Kernel& kernel) {
  util::Rng rng(11);
  const auto targets = random_points(64, rng);
  const auto sources = random_points(16, rng);
  const SoaPoints t(targets);
  for (const auto& s : sources) {
    const double sx = s.x;
    const double sy = s.y;
    const double sz = s.z;
    const PointBlock src{&sx, &sy, &sz, 1};
    const double density = 1.0;
    std::vector<double> out(targets.size(), 0.0);
    kernel.eval_batch(t.block(), src, &density, out.data());
    for (std::size_t i = 0; i < targets.size(); ++i)
      EXPECT_EQ(out[i], kernel.eval(targets[i], s))
          << kernel.name() << " target " << i;
  }
}

TEST(EvalBatch, LaplacePerPairBitwiseMatchesEval) {
  expect_per_pair_bitwise(LaplaceKernel{});
}

TEST(EvalBatch, YukawaPerPairBitwiseMatchesEval) {
  expect_per_pair_bitwise(YukawaKernel{1.5});
}

TEST(EvalBatch, GaussianPerPairBitwiseMatchesEval) {
  expect_per_pair_bitwise(GaussianKernel{0.7});
}

TEST(EvalBatch, CoincidentPointsFollowEvalConvention) {
  // Singular kernels define K(x, x) = 0 (self-interaction exclusion); the
  // non-singular Gaussian evaluates to exp(0) = 1. The batch path must
  // reproduce both, not trap on the r = 0 division.
  const Vec3 p{0.25, -0.5, 0.125};
  const double px = p.x;
  const double py = p.y;
  const double pz = p.z;
  const PointBlock b{&px, &py, &pz, 1};
  const double density = 3.0;
  const LaplaceKernel laplace;
  const YukawaKernel yukawa{2.0};
  const GaussianKernel gaussian{0.5};
  for (const Kernel* k : {static_cast<const Kernel*>(&laplace),
                          static_cast<const Kernel*>(&yukawa),
                          static_cast<const Kernel*>(&gaussian)}) {
    double out = 0.0;
    k->eval_batch(b, b, &density, &out);
    EXPECT_EQ(out, k->eval(p, p) * density) << k->name();
  }
  EXPECT_EQ(laplace.eval(p, p), 0.0);
  EXPECT_EQ(yukawa.eval(p, p), 0.0);
  EXPECT_EQ(gaussian.eval(p, p), 1.0);
}

TEST(EvalBatch, AccumulatesOverSourcesAndPreservesPriorOutput) {
  // Multi-source tiles: out[i] += sum_j K * density[j]. The simd reduction
  // may reassociate the sum, so compare to the scalar sum in double
  // precision terms rather than bitwise.
  const LaplaceKernel kernel;
  util::Rng rng(5);
  const auto targets = random_points(33, rng);
  const auto sources = random_points(57, rng);
  std::vector<double> dens(sources.size());
  for (auto& d : dens) d = rng.uniform(-2, 2);
  const SoaPoints t(targets);
  const SoaPoints s(sources);

  std::vector<double> out(targets.size(), 7.5);  // pre-existing partials
  kernel.eval_batch(t.block(), s.block(), dens.data(), out.data());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    double ref = 7.5;
    for (std::size_t j = 0; j < sources.size(); ++j)
      ref += kernel.eval(targets[i], sources[j]) * dens[j];
    EXPECT_NEAR(out[i], ref, 1e-13 * std::abs(ref) + 1e-15) << "target " << i;
  }
}

/// Laplace by a kernel that does *not* override eval_batch: exercises the
/// base-class scalar fallback end to end (third-party kernels plug in with
/// just eval()).
class ScalarLaplace final : public Kernel {
 public:
  double eval(const Vec3& x, const Vec3& y) const override {
    const double dx = x.x - y.x;
    const double dy = x.y - y.y;
    const double dz = x.z - y.z;
    const double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 == 0.0) return 0.0;
    return 1.0 / (4.0 * std::numbers::pi * std::sqrt(r2));
  }
  double flops_per_eval() const override { return 12; }
  std::string name() const override { return "laplace_scalar"; }
  bool homogeneous(double* degree) const override {
    if (degree) *degree = -1;
    return true;
  }
};

TEST(EvalBatch, FallbackAccumulatesInIndexOrder) {
  // The base-class loop promises strict index-order accumulation, which is
  // reproducible exactly.
  const ScalarLaplace kernel;
  util::Rng rng(9);
  const auto targets = random_points(21, rng);
  const auto sources = random_points(40, rng);
  std::vector<double> dens(sources.size());
  for (auto& d : dens) d = rng.uniform(-1, 1);
  const SoaPoints t(targets);
  const SoaPoints s(sources);
  std::vector<double> out(targets.size(), 0.0);
  kernel.eval_batch(t.block(), s.block(), dens.data(), out.data());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    double ref = 0.0;
    for (std::size_t j = 0; j < sources.size(); ++j)
      ref += kernel.eval(targets[i], sources[j]) * dens[j];
    EXPECT_EQ(out[i], ref) << "target " << i;
  }
}

/// End-to-end FMM vs direct sum through the batched hot paths; `kernel`
/// selects which eval_batch implementation the phases hit.
void expect_fmm_matches_direct(const Kernel& kernel, double rel_tol) {
  util::Rng rng(17);
  const std::size_t n = 2000;
  const auto pts = uniform_cube(n, rng);
  const auto dens = random_densities(n, rng);
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32},
                  FmmConfig{.p = 5});
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (phi[i] - ref[i]) * (phi[i] - ref[i]);
    den += ref[i] * ref[i];
  }
  EXPECT_LT(std::sqrt(num / den), rel_tol) << kernel.name();
}

TEST(EvalBatch, FmmAccuracyThroughBatchedPaths) {
  expect_fmm_matches_direct(LaplaceKernel{}, 1e-5);
}

TEST(EvalBatch, FmmAccuracyThroughFallbackPath) {
  expect_fmm_matches_direct(ScalarLaplace{}, 1e-5);
}

TEST(EvalBatch, FmmAccuracyGaussianBatched) {
  // The non-singular Gaussian stresses the equivalent-density solves more
  // than the singular kernels; its p=5 accuracy plateaus near 1e-4.
  expect_fmm_matches_direct(GaussianKernel{0.35}, 1e-3);
}

TEST(EvalBatch, BatchedAndFallbackFmmAgreeClosely) {
  // Same kernel mathematics through both dispatch paths: potentials agree to
  // rounding (the simd path may reassociate sums; nothing more).
  util::Rng rng(23);
  const std::size_t n = 1500;
  const auto pts = uniform_cube(n, rng);
  const auto dens = random_densities(n, rng);
  const LaplaceKernel batched;
  const ScalarLaplace fallback;
  FmmEvaluator ev_b(batched, pts, {.max_points_per_box = 32},
                    FmmConfig{.p = 4});
  FmmEvaluator ev_f(fallback, pts, {.max_points_per_box = 32},
                    FmmConfig{.p = 4});
  const auto phi_b = ev_b.evaluate(dens);
  const auto phi_f = ev_f.evaluate(dens);
  double scale = 0.0;
  for (const double v : phi_f) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(phi_b[i], phi_f[i], 1e-12 * scale) << "point " << i;
}

}  // namespace
}  // namespace eroof::fmm
