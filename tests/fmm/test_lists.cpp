#include "fmm/lists.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fmm/pointgen.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

struct TreeWithLists {
  Octree tree;
  InteractionLists lists;
};

TreeWithLists make(std::size_t n, std::uint32_t q, std::uint64_t seed,
                   bool clustered = false) {
  util::Rng rng(seed);
  const auto pts = clustered ? gaussian_clusters(n, 3, 0.02, rng)
                             : uniform_cube(n, rng);
  Octree tree(pts, {.max_points_per_box = q});
  InteractionLists lists = build_lists(tree);
  return {std::move(tree), std::move(lists)};
}

TEST(Lists, ULeafContainsItself) {
  const auto [tree, lists] = make(2000, 32, 1);
  for (const int b : tree.leaves()) {
    const auto& u = lists.u[static_cast<std::size_t>(b)];
    EXPECT_NE(std::find(u.begin(), u.end(), b), u.end());
  }
}

TEST(Lists, UMembersAreAdjacentLeaves) {
  const auto [tree, lists] = make(2000, 32, 2, true);
  for (const int b : tree.leaves()) {
    for (const int a : lists.u[static_cast<std::size_t>(b)]) {
      EXPECT_TRUE(tree.node(a).leaf);
      EXPECT_TRUE(boxes_adjacent(tree.node(a).box, tree.node(b).box));
    }
  }
}

TEST(Lists, UIsSymmetric) {
  const auto [tree, lists] = make(3000, 16, 3, true);
  for (const int b : tree.leaves()) {
    for (const int a : lists.u[static_cast<std::size_t>(b)]) {
      const auto& ua = lists.u[static_cast<std::size_t>(a)];
      EXPECT_NE(std::find(ua.begin(), ua.end(), b), ua.end())
          << "U list not symmetric for " << a << " <-> " << b;
    }
  }
}

TEST(Lists, VMembersAreSameLevelNonAdjacentWithAdjacentParents) {
  const auto [tree, lists] = make(3000, 16, 4);
  for (std::size_t b = 0; b < tree.nodes().size(); ++b) {
    const Node& nb = tree.node(static_cast<int>(b));
    for (const int s : lists.v[b]) {
      const Node& ns = tree.node(s);
      EXPECT_EQ(ns.level(), nb.level());
      EXPECT_FALSE(boxes_adjacent(ns.box, nb.box));
      ASSERT_GE(ns.parent, 0);
      ASSERT_GE(nb.parent, 0);
      EXPECT_TRUE(boxes_adjacent(tree.node(ns.parent).box,
                                 tree.node(nb.parent).box));
    }
  }
}

TEST(Lists, VIsSymmetric) {
  const auto [tree, lists] = make(3000, 16, 5);
  for (std::size_t b = 0; b < tree.nodes().size(); ++b) {
    for (const int s : lists.v[b]) {
      const auto& vs = lists.v[static_cast<std::size_t>(s)];
      EXPECT_NE(std::find(vs.begin(), vs.end(), static_cast<int>(b)),
                vs.end());
    }
  }
}

TEST(Lists, VListBoundedBy189) {
  const auto [tree, lists] = make(5000, 16, 6);
  for (const auto& v : lists.v) EXPECT_LE(v.size(), 189u);
}

TEST(Lists, WMembersSatisfyDefinition) {
  // W(B): not adjacent to B, strictly finer, parent adjacent to B.
  const auto [tree, lists] = make(4000, 16, 7, true);
  for (const int b : tree.leaves()) {
    const Node& nb = tree.node(b);
    for (const int a : lists.w[static_cast<std::size_t>(b)]) {
      const Node& na = tree.node(a);
      EXPECT_GT(na.level(), nb.level());
      EXPECT_FALSE(boxes_adjacent(na.box, nb.box));
      EXPECT_TRUE(boxes_adjacent(tree.node(na.parent).box, nb.box));
    }
  }
}

TEST(Lists, XIsTransposeOfW) {
  const auto [tree, lists] = make(4000, 16, 8, true);
  // Forward: every W membership appears in the X transpose.
  for (const int a : tree.leaves())
    for (const int b : lists.w[static_cast<std::size_t>(a)]) {
      const auto& xb = lists.x[static_cast<std::size_t>(b)];
      EXPECT_NE(std::find(xb.begin(), xb.end(), a), xb.end());
    }
  // Backward: every X entry has the matching W entry.
  for (std::size_t b = 0; b < tree.nodes().size(); ++b)
    for (const int a : lists.x[b]) {
      const auto& wa = lists.w[static_cast<std::size_t>(a)];
      EXPECT_NE(std::find(wa.begin(), wa.end(), static_cast<int>(b)),
                wa.end());
    }
}

TEST(Lists, ClusteredTreesExerciseWandX) {
  const auto [tree, lists] = make(6000, 16, 9, true);
  std::size_t w_total = 0;
  for (const auto& w : lists.w) w_total += w.size();
  EXPECT_GT(w_total, 0u) << "clustered input should produce W interactions";
}

TEST(Lists, UniformCompleteTreeHasEmptyWandX) {
  util::Rng rng(10);
  const auto pts = uniform_cube(4096, rng);
  Octree tree(pts, {.max_points_per_box = 64,
                    .uniform_depth = Octree::uniform_depth_for(4096, 64)});
  const auto lists = build_lists(tree);
  for (const auto& w : lists.w) EXPECT_TRUE(w.empty());
  for (const auto& x : lists.x) EXPECT_TRUE(x.empty());
}

TEST(Lists, NoDuplicatesInAnyList) {
  const auto [tree, lists] = make(3000, 16, 11, true);
  const auto check = [](const std::vector<std::vector<int>>& all) {
    for (const auto& l : all) {
      std::set<int> s(l.begin(), l.end());
      EXPECT_EQ(s.size(), l.size());
    }
  };
  check(lists.u);
  check(lists.v);
  check(lists.w);
  check(lists.x);
}

// The load-bearing correctness property: for every (target leaf, source
// leaf) pair, the source's points are accounted for exactly once -- either
// directly (source in U(target)), or through exactly one ancestor
// relationship covered by V / W / X / the far-field (an ancestor of source
// in V or W of an ancestor-or-self of target, etc.). Rather than re-derive
// the full theorem, we check the observable consequence used by the
// evaluator: counting each source leaf's points via the phase that covers
// it yields each pair exactly once. This is validated indirectly and
// end-to-end by the FMM-vs-direct accuracy tests; here we check the
// *disjointness* part: a source leaf never appears both in U(B) and under
// a V/W/X covering for the same target B.
TEST(Lists, UAndWAreDisjointPerTarget) {
  const auto [tree, lists] = make(4000, 16, 12, true);
  for (const int b : tree.leaves()) {
    std::set<int> u(lists.u[static_cast<std::size_t>(b)].begin(),
                    lists.u[static_cast<std::size_t>(b)].end());
    for (const int a : lists.w[static_cast<std::size_t>(b)])
      EXPECT_FALSE(u.contains(a));
  }
}

TEST(Lists, VExcludesNearField) {
  const auto [tree, lists] = make(3000, 16, 13);
  for (std::size_t b = 0; b < tree.nodes().size(); ++b) {
    std::set<int> v(lists.v[b].begin(), lists.v[b].end());
    for (const int a : lists.u[b]) EXPECT_FALSE(v.contains(a));
  }
}

}  // namespace
}  // namespace eroof::fmm
