// Zero-allocation contract of the FMM phase loops.
//
// FmmEvaluator promises that after setup (construction + the first
// evaluate() call, which sizes the per-thread workspaces), repeat
// evaluations touch the heap only for the caller-facing vectors -- the
// densities copy-in span adapter costs nothing and the returned potentials
// are one allocation. The six phase loops themselves run entirely against
// the preallocated arenas and Workspace scratch.
//
// Verified with a replacement global operator new/delete pair that counts
// calls. The hook lives in this dedicated test binary so it cannot distort
// the other suites; it forwards to malloc/free, which keeps ASan's
// interception intact.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<long> g_new_calls{0};

}  // namespace

void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// The nothrow variants must be replaced too: libstdc++'s temporary buffers
// (std::stable_sort) allocate through them, and mixing a default nothrow-new
// with our malloc-backed delete is an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace eroof::fmm {
namespace {

// One shared kernel so the counting windows see no kernel construction.
const LaplaceKernel& kernel_instance() {
  static const LaplaceKernel k;
  return k;
}

long count_steady_state_allocations(std::size_t n, std::uint32_t q, int p) {
  util::Rng rng(31);
  const auto pts = uniform_cube(n, rng);
  const auto dens = random_densities(n, rng);
  FmmEvaluator ev(kernel_instance(), pts, {.max_points_per_box = q},
                  FmmConfig{.p = p});
  (void)ev.evaluate(dens);  // warm-up: sizes the per-thread workspaces
  const long before = g_new_calls.load(std::memory_order_relaxed);
  auto phi = ev.evaluate(dens);
  const long after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(phi.size(), n);
  return after - before;
}

TEST(FmmAllocations, SteadyStateEvaluateIsAllocationFreePerPhase) {
  // The only allowed allocations per steady-state evaluate() are the
  // caller-facing ones: the returned potentials vector plus the densities
  // working copy -- a small constant, emphatically not O(nodes) or O(N).
  constexpr long kAllowed = 8;
  const long small = count_steady_state_allocations(1500, 32, 4);
  EXPECT_LE(small, kAllowed) << "phase loops are allocating";
  EXPECT_GE(small, 1) << "counting hook is not engaged";
}

TEST(FmmAllocations, AllocationCountIndependentOfProblemSize) {
  // Doubling N (and with it the node count and list sizes) must not change
  // the steady-state allocation count: every per-node and per-pair buffer
  // lives in the arenas or the workspaces.
  const long small = count_steady_state_allocations(1000, 32, 4);
  const long large = count_steady_state_allocations(4000, 32, 4);
  EXPECT_EQ(small, large);
}

}  // namespace
}  // namespace eroof::fmm
