// Zero-allocation contract of the FMM phase loops.
//
// FmmEvaluator promises that after setup (construction + the first
// evaluate() call, which sizes the per-thread workspaces), repeat
// evaluations touch the heap only for the caller-facing vectors -- the
// densities copy-in span adapter costs nothing and the returned potentials
// are one allocation. The six phase loops themselves run entirely against
// the preallocated arenas and Workspace scratch.
//
// Verified with a replacement global operator new/delete pair that counts
// calls. The hook lives in this dedicated test binary so it cannot distort
// the other suites; it forwards to malloc/free, which keeps ASan's
// interception intact.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "dynamics/engine.hpp"
#include "dynamics/mover.hpp"
#include "dynamics/particles.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "fmm/session.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<long> g_new_calls{0};

}  // namespace

void* operator new(std::size_t size) {
  // Allocation tally: the tests only compare counts across a quiescent
  // before/after window, so no ordering is needed.
  g_new_calls.fetch_add(1, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// The nothrow variants must be replaced too: libstdc++'s temporary buffers
// (std::stable_sort) allocate through them, and mixing a default nothrow-new
// with our malloc-backed delete is an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  // Allocation tally (see above): counts only, no ordering needed.
  g_new_calls.fetch_add(1, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace eroof::fmm {
namespace {

// One shared kernel so the counting windows see no kernel construction.
const LaplaceKernel& kernel_instance() {
  static const LaplaceKernel k;
  return k;
}

long count_steady_state_allocations(std::size_t n, std::uint32_t q, int p) {
  util::Rng rng(31);
  const auto pts = uniform_cube(n, rng);
  const auto dens = random_densities(n, rng);
  FmmEvaluator ev(kernel_instance(), pts, {.max_points_per_box = q},
                  FmmConfig{.p = p});
  (void)ev.evaluate(dens);  // warm-up: sizes the per-thread workspaces
  // Quiescent read: no other thread is allocating between the probes.
  const long before = g_new_calls.load(std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  auto phi = ev.evaluate(dens);
  const long after = g_new_calls.load(std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  EXPECT_EQ(phi.size(), n);
  return after - before;
}

TEST(FmmAllocations, SteadyStateEvaluateIsAllocationFreePerPhase) {
  // The only allowed allocations per steady-state evaluate() are the
  // caller-facing ones: the returned potentials vector plus the densities
  // working copy -- a small constant, emphatically not O(nodes) or O(N).
  constexpr long kAllowed = 8;
  const long small = count_steady_state_allocations(1500, 32, 4);
  EXPECT_LE(small, kAllowed) << "phase loops are allocating";
  EXPECT_GE(small, 1) << "counting hook is not engaged";
}

TEST(FmmAllocations, AllocationCountIndependentOfProblemSize) {
  // Doubling N (and with it the node count and list sizes) must not change
  // the steady-state allocation count: every per-node and per-pair buffer
  // lives in the arenas or the workspaces.
  const long small = count_steady_state_allocations(1000, 32, 4);
  const long large = count_steady_state_allocations(4000, 32, 4);
  EXPECT_EQ(small, large);
}

// ---------------------------------------------------------------------------
// The dynamics stepping loop (DESIGN.md §13)
// ---------------------------------------------------------------------------

TEST(FmmAllocations, SteadyStateSessionStepIsAllocationFree) {
  // FmmSession's steady state -- move_to absorbed by refit, evaluate_into
  // a caller-owned buffer -- must touch the heap zero times: no returned
  // vector, no densities copy, no refit scratch growth.
  util::Rng rng(33);
  const auto pts = uniform_cube(1200, rng);
  const auto dens = random_densities(1200, rng);
  FmmSession session(std::make_shared<const LaplaceKernel>(), pts,
                     {{.max_points_per_box = 32,
                       .domain = {{0.5, 0.5, 0.5}, 0.5}},
                      FmmConfig{.p = 4}});
  std::vector<double> phi(pts.size());
  auto moved = pts;
  for (auto& p : moved) p.x += 1e-7;  // tiny drift: refit must absorb it

  session.move_to(moved);  // warm-up: sizes the refit scratch
  session.evaluate_into(dens, phi);

  // Quiescent read: no other thread is allocating between the probes.
  const long before = g_new_calls.load(std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  for (int s = 0; s < 3; ++s) {
    for (auto& p : moved) p.y += 1e-7;
    session.move_to(moved);
    session.evaluate_into(dens, phi);
  }
  const long after = g_new_calls.load(std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  EXPECT_EQ(after - before, 0);
  EXPECT_EQ(session.stats().refits, session.stats().moves);
}

TEST(FmmAllocations, SteadyStateDynamicsStepIsAllocationFree) {
  // The full engine step -- mover advance, session move, evaluation, energy
  // reduction -- after the step-0 warm-up. Tuning is off here (the drift
  // check itself is allocation-free, but TuneContext construction is not a
  // steady-state cost); the near-frozen leapfrog keeps every move on the
  // refit path, which the final assertion pins.
  dynamics::ParticleSystem ps = dynamics::ParticleSystem::random(
      1000, {{0.5, 0.5, 0.5}, 0.5}, 34);
  dynamics::DynamicsEngine::Config cfg;
  cfg.session.tree = {.max_points_per_box = 32,
                      .domain = {{0.5, 0.5, 0.5}, 0.5}};
  cfg.session.fmm = {.p = 4};
  dynamics::DynamicsEngine engine(std::make_shared<const LaplaceKernel>(),
                                  std::move(ps), cfg);
  dynamics::LeapfrogMover mover({.dt = 1e-6});
  engine.step(mover);  // warm-up: refit scratch + evaluation buffers
  engine.step(mover);

  // Quiescent read: no other thread is allocating between the probes.
  const long before = g_new_calls.load(std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  for (int s = 0; s < 4; ++s) engine.step(mover);
  const long after = g_new_calls.load(std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  EXPECT_EQ(after - before, 0);
  EXPECT_EQ(engine.session().stats().rebuilds, 0u);
  EXPECT_EQ(engine.stats().steps, 6u);
}

}  // namespace
}  // namespace eroof::fmm
