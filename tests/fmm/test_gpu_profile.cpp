#include "fmm/gpu_profile.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

#include "fmm/pointgen.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

FmmEvaluator make_evaluator(std::size_t n = 8192, std::uint32_t q = 64,
                            bool uniform = true) {
  static const LaplaceKernel kernel;
  util::Rng rng(5);
  const auto pts = uniform_cube(n, rng);
  Octree::Params params{.max_points_per_box = q};
  if (uniform) params.uniform_depth = Octree::uniform_depth_for(n, q);
  return FmmEvaluator(kernel, pts, params, FmmConfig{.p = 4});
}

TEST(GpuProfile, HasTheSixPaperPhases) {
  const auto ev = make_evaluator();
  const auto prof = profile_gpu_execution(ev);
  ASSERT_EQ(prof.phases.size(), 6u);
  EXPECT_EQ(prof.phases[0].name, "UP");
  EXPECT_EQ(prof.phases[1].name, "U");
  EXPECT_EQ(prof.phases[2].name, "V");
  EXPECT_EQ(prof.phases[3].name, "W");
  EXPECT_EQ(prof.phases[4].name, "X");
  EXPECT_EQ(prof.phases[5].name, "DOWN");
}

TEST(GpuProfile, UPhaseFlopsMatchEvaluatorTallies) {
  auto ev = make_evaluator();
  util::Rng rng(6);
  const auto dens = random_densities(ev.tree().points().size(), rng);
  ev.evaluate(dens);
  const auto prof = profile_gpu_execution(ev);

  // The profiler prices each pairwise interaction at (flops_per_eval + 2)
  // SP ops; the evaluator tallies plain kernel evaluations.
  const double expected_sp = ev.stats().u.kernel_evals *
                             (ev.kernel().flops_per_eval() + 2.0);
  const double profiled_sp =
      prof.phases[1].counters.get("flops_sp_fma") +
      prof.phases[1].counters.get("flops_sp_add") +
      prof.phases[1].counters.get("flops_sp_mul");
  EXPECT_NEAR(profiled_sp, expected_sp, 1e-6 * expected_sp);
}

TEST(GpuProfile, VPhasePairCountMatchesEvaluator) {
  auto ev = make_evaluator();
  util::Rng rng(7);
  const auto dens = random_densities(ev.tree().points().size(), rng);
  ev.evaluate(dens);
  const auto prof = profile_gpu_execution(ev);
  // Hadamard flops = 8 per grid element per pair.
  const double g = static_cast<double>(ev.operators().grid_size());
  const double expected_hadamard_sp = ev.stats().v.pair_count * 8.0 * g;
  // V-phase SP also includes FFT flops; the Hadamard part must be a lower
  // bound.
  const double profiled_sp = prof.phases[2].counters.get("flops_sp_fma") +
                             prof.phases[2].counters.get("flops_sp_add") +
                             prof.phases[2].counters.get("flops_sp_mul");
  EXPECT_GE(profiled_sp, expected_hadamard_sp * 0.999);
}

TEST(GpuProfile, UniformTreeHasEmptyWAndXPhases)  {
  const auto ev = make_evaluator(8192, 64, true);
  const auto prof = profile_gpu_execution(ev);
  EXPECT_DOUBLE_EQ(prof.phases[3].workload.ops.compute_ops(), 0.0);
  EXPECT_DOUBLE_EQ(prof.phases[4].workload.ops.compute_ops(), 0.0);
}

TEST(GpuProfile, IntegerShareNearSixtyPercent) {
  // Paper Fig. 4: integer instructions ~60% of computation instructions.
  const auto ev = make_evaluator();
  const auto prof = profile_gpu_execution(ev);
  const auto total = prof.total("t");
  const double ints = total.ops[hw::OpClass::kIntOp];
  const double all = total.ops.compute_ops();
  EXPECT_GT(ints / all, 0.45);
  EXPECT_LT(ints / all, 0.70);
}

TEST(GpuProfile, DramSmallShareOfAccesses) {
  // Paper Fig. 4: DRAM ~13% of data accesses.
  const auto ev = make_evaluator(16384, 64);
  const auto prof = profile_gpu_execution(ev);
  const auto total = prof.total("t");
  const double dram = total.ops[hw::OpClass::kDramAccess];
  const double mem = total.ops.memory_ops();
  EXPECT_GT(dram / mem, 0.02);
  EXPECT_LT(dram / mem, 0.30);
}

TEST(GpuProfile, SharedMemoryDominatesAccesses) {
  const auto ev = make_evaluator(16384, 64);
  const auto prof = profile_gpu_execution(ev);
  const auto total = prof.total("t");
  EXPECT_GT(total.ops[hw::OpClass::kSmAccess], 0.3 * total.ops.memory_ops());
}

TEST(GpuProfile, SolvePhasesCarryTheDoublePrecision) {
  const auto ev = make_evaluator();
  const auto prof = profile_gpu_execution(ev);
  // UP and DOWN contain the DP check-to-equivalent solves; U must be pure SP.
  EXPECT_GT(prof.phases[0].workload.ops[hw::OpClass::kDpFlop], 0.0);
  EXPECT_GT(prof.phases[5].workload.ops[hw::OpClass::kDpFlop], 0.0);
  EXPECT_DOUBLE_EQ(prof.phases[1].workload.ops[hw::OpClass::kDpFlop], 0.0);
}

TEST(GpuProfile, UtilizationsAreWellBelowPeak) {
  // The paper attributes the FMM's constant-power dominance to < 1/4 of
  // peak IPC.
  const auto ev = make_evaluator();
  const auto prof = profile_gpu_execution(ev);
  for (const auto& ph : prof.phases) {
    EXPECT_LE(ph.workload.compute_utilization, 0.35) << ph.name;
    EXPECT_GT(ph.workload.compute_utilization, 0.0) << ph.name;
  }
}

TEST(GpuProfile, TotalsSumThePhases) {
  const auto ev = make_evaluator();
  const auto prof = profile_gpu_execution(ev);
  const auto total = prof.total("sum");
  double sp = 0;
  for (const auto& ph : prof.phases)
    sp += ph.workload.ops[hw::OpClass::kSpFlop];
  EXPECT_NEAR(total.ops[hw::OpClass::kSpFlop], sp, 1e-6 * sp);

  const auto counters = prof.total_counters();
  EXPECT_GT(counters.get("inst_integer"), 0.0);
}

TEST(GpuProfile, DerivedCountsRoundTripThroughTable3Events) {
  // The workload counts must equal derive_op_counts applied to the emitted
  // counter events -- the full nvprof-style pipeline.
  const auto ev = make_evaluator();
  const auto prof = profile_gpu_execution(ev);
  for (const auto& ph : prof.phases) {
    const auto derived = hw::derive_op_counts(ph.counters);
    for (std::size_t i = 0; i < hw::kNumOpClasses; ++i)
      EXPECT_NEAR(derived.n[i], ph.workload.ops.n[i],
                  1e-9 * (ph.workload.ops.n[i] + 1.0))
          << ph.name << " class " << i;
  }
}

TEST(GpuProfile, SamplingApproximatesFullSimulation) {
  const auto ev = make_evaluator(8192, 64);
  const auto full = profile_gpu_execution(ev, GpuProfileConfig{});
  GpuProfileConfig sampled_cfg;
  sampled_cfg.v_sample_rate = 4;
  const auto sampled = profile_gpu_execution(ev, sampled_cfg);
  const double full_dram = full.total("a").ops[hw::OpClass::kDramAccess];
  const double samp_dram = sampled.total("b").ops[hw::OpClass::kDramAccess];
  // Same order of magnitude (sampling perturbs reuse, so allow 2x).
  EXPECT_GT(samp_dram, 0.3 * full_dram);
  EXPECT_LT(samp_dram, 3.0 * full_dram);
}

TEST(GpuProfile, AdaptiveTreeProducesWAndXWork) {
  static const LaplaceKernel kernel;
  util::Rng rng(9);
  const auto pts = gaussian_clusters(8192, 4, 0.02, rng);
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32}, FmmConfig{.p = 4});
  const auto prof = profile_gpu_execution(ev);
  EXPECT_GT(prof.phases[3].workload.ops.compute_ops(), 0.0);  // W
  EXPECT_GT(prof.phases[4].workload.ops.compute_ops(), 0.0);  // X
}

TEST(GpuProfile, InvalidConfigThrows) {
  const auto ev = make_evaluator();
  GpuProfileConfig bad;
  bad.v_sample_rate = 0;
  EXPECT_THROW(profile_gpu_execution(ev, bad), util::ContractError);
}

}  // namespace
}  // namespace eroof::fmm
