// Randomized scheduler stress: seeded delay injection perturbs the DAG
// executor's pop order (workers stall for task-dependent, seed-dependent
// spins before each body), and the run must still (a) produce bitwise
// identical potentials and (b) never start a task before its dependencies
// finished, as witnessed by the per-task epoch stamps. This suite is part
// of the Clang TSan CI job, so the same schedules are also race-checked.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "util/rng.hpp"
#include "util/taskgraph.hpp"

namespace eroof::fmm {
namespace {

template <typename Fn>
void with_threads(int num_threads, Fn&& fn) {
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(num_threads);
  fn();
  omp_set_num_threads(saved);
#else
  (void)num_threads;
  fn();
#endif
}

/// Seeded, task-addressed delay: every (seed, task) pair maps to a fixed
/// spin count in [0, 4096). Deterministic per pair, wildly different across
/// seeds -- enough to reshuffle which ready task each worker grabs next.
class DelayInjector {
 public:
  explicit DelayInjector(std::uint64_t seed) : stream_(seed) {}

  void operator()(int task, int /*worker*/) const {
    const std::uint64_t spins = stream_.fork(static_cast<std::uint64_t>(task))
                                    .seed() % 4096;
    // Volatile sink so the spin survives optimization.
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < spins; ++i) sink = sink + i;
  }

 private:
  util::RngStream stream_;
};

::testing::AssertionResult bitwise_equal(const std::vector<double>& got,
                                         const std::vector<double>& want) {
  if (got.size() != want.size())
    return ::testing::AssertionFailure()
           << "size " << got.size() << " vs " << want.size();
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::memcmp(&got[i], &want[i], sizeof(double)) != 0)
      return ::testing::AssertionFailure()
             << "bit mismatch at [" << i << "]: " << got[i] << " vs "
             << want[i];
  }
  return ::testing::AssertionSuccess();
}

void expect_dependency_safe(const util::TaskGraph& g) {
  for (std::size_t t = 0; t < g.task_count(); ++t) {
    const int id = static_cast<int>(t);
    ASSERT_GT(g.start_stamp(id), 0) << "task " << id << " never ran";
    ASSERT_LT(g.start_stamp(id), g.finish_stamp(id));
    for (const int u : g.predecessors(id))
      ASSERT_LT(g.finish_stamp(u), g.start_stamp(id))
          << "task " << id << " started before predecessor " << u
          << " finished";
  }
}

TEST(TaskGraphStress, PerturbedSchedulesStayBitwiseIdenticalAndSafe) {
  const LaplaceKernel kernel;
  util::Rng rng(810);
  const auto pts = uniform_cube(2048, rng);
  const auto dens = random_densities(2048, rng);
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 16}, FmmConfig{.p = 3});

  std::vector<double> ref;
  with_threads(1, [&] { ref = ev.evaluate(dens); });

  ev.set_executor(FmmExecutor::kDag);
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    util::TaskGraph::RunHooks hooks;
    hooks.before_task = DelayInjector(seed);
    ev.set_dag_hooks(hooks);
    for (const int threads : {2, 4}) {
      with_threads(threads, [&] {
        EXPECT_TRUE(bitwise_equal(ev.evaluate(dens), ref))
            << "seed=" << seed << " threads=" << threads;
      });
      expect_dependency_safe(ev.task_graph());
    }
  }
  ev.set_dag_hooks({});
}

TEST(TaskGraphStress, DeepTreePerturbationAcrossReplays) {
  // A deeper, lumpier tree (clustered points, q = 4) exercises long
  // dependency chains; replay the same graph many times under different
  // seeds and thread counts.
  const LaplaceKernel kernel;
  util::Rng rng(811);
  std::vector<Vec3> pts;
  for (int i = 0; i < 768; ++i) {
    const double s = i < 384 ? 0.1 : 1.0;  // half the points in one corner
    pts.push_back({s * rng.uniform(), s * rng.uniform(), s * rng.uniform()});
  }
  const auto dens = random_densities(pts.size(), rng);
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 4, .max_level = 7},
                  FmmConfig{.p = 3});

  std::vector<double> ref;
  with_threads(1, [&] { ref = ev.evaluate(dens); });

  ev.set_executor(FmmExecutor::kDag);
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    util::TaskGraph::RunHooks hooks;
    hooks.before_task = DelayInjector(seed);
    ev.set_dag_hooks(hooks);
    with_threads(4, [&] {
      EXPECT_TRUE(bitwise_equal(ev.evaluate(dens), ref)) << "seed=" << seed;
    });
    expect_dependency_safe(ev.task_graph());
  }
  ev.set_dag_hooks({});
}

}  // namespace
}  // namespace eroof::fmm
