#include "fmm/octree.hpp"

#include <gtest/gtest.h>

#include "fmm/pointgen.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

Octree make_tree(std::size_t n, std::uint32_t q, std::uint64_t seed,
                 bool clustered = false) {
  util::Rng rng(seed);
  const auto pts = clustered ? gaussian_clusters(n, 4, 0.02, rng)
                             : uniform_cube(n, rng);
  return Octree(pts, {.max_points_per_box = q});
}

TEST(Octree, EveryPointLandsInExactlyOneLeaf) {
  const Octree t = make_tree(2000, 32, 1);
  std::vector<int> covered(t.points().size(), 0);
  for (const int b : t.leaves()) {
    const Node& n = t.node(b);
    for (std::uint32_t i = n.point_begin; i < n.point_end; ++i) ++covered[i];
  }
  for (int c : covered) EXPECT_EQ(c, 1);
}

TEST(Octree, LeafPointsLieInsideTheirBox) {
  const Octree t = make_tree(1500, 16, 2);
  const auto pts = t.points();
  for (const int b : t.leaves()) {
    const Node& n = t.node(b);
    for (std::uint32_t i = n.point_begin; i < n.point_end; ++i)
      EXPECT_TRUE(n.box.contains(pts[i]))
          << "point " << i << " outside its leaf";
  }
}

TEST(Octree, LeavesRespectQ) {
  const Octree t = make_tree(3000, 25, 3);
  for (const int b : t.leaves())
    EXPECT_LE(t.node(b).num_points(), 25u);
}

TEST(Octree, InternalRangesEqualUnionOfChildren) {
  const Octree t = make_tree(2000, 32, 4);
  for (const auto& n : t.nodes()) {
    if (n.leaf) continue;
    std::uint32_t total = 0;
    for (int c : n.children)
      if (c >= 0) total += t.node(c).num_points();
    EXPECT_EQ(total, n.num_points());
  }
}

TEST(Octree, ChildBoxesNestInParent) {
  const Octree t = make_tree(1000, 16, 5);
  for (const auto& n : t.nodes()) {
    if (n.parent < 0) continue;
    const Node& p = t.node(n.parent);
    EXPECT_NEAR(n.box.half * 2.0, p.box.half, 1e-12);
    EXPECT_TRUE(p.box.contains(n.box.center));
    EXPECT_EQ(n.level(), p.level() + 1);
  }
}

TEST(Octree, KeysMatchGeometry) {
  const Octree t = make_tree(1000, 16, 6);
  const Box& dom = t.domain();
  for (const auto& n : t.nodes()) {
    const auto c = n.key.coords();
    const double cells = std::exp2(n.level());
    const double expect_x =
        dom.center.x - dom.half + (2.0 * c[0] + 1.0) * dom.half / cells;
    EXPECT_NEAR(n.box.center.x, expect_x, 1e-9 * dom.half);
  }
}

TEST(Octree, FindLocatesEveryNode) {
  const Octree t = make_tree(1000, 16, 7);
  for (std::size_t i = 0; i < t.nodes().size(); ++i)
    EXPECT_EQ(t.find(t.nodes()[i].key), static_cast<int>(i));
}

TEST(Octree, FindDeepestAncestorFallsBack) {
  const Octree t = make_tree(500, 64, 8);
  // A key below an existing leaf resolves to that leaf.
  const int leaf = t.leaves().front();
  const MortonKey below = t.node(leaf).key.child(0).child(0);
  EXPECT_EQ(t.find_deepest_ancestor(below), leaf);
}

TEST(Octree, TwoToOneBalanceHolds) {
  // Clustered points force depth differences; balance must cap them
  // between adjacent leaves.
  const Octree t = make_tree(4000, 16, 9, /*clustered=*/true);
  for (const int a : t.leaves()) {
    for (const int b : t.leaves()) {
      if (a == b) continue;
      const Node& na = t.node(a);
      const Node& nb = t.node(b);
      if (!boxes_adjacent(na.box, nb.box)) continue;
      EXPECT_LE(std::abs(na.level() - nb.level()), 1)
          << "leaves " << a << " and " << b << " violate 2:1 balance";
    }
  }
}

TEST(Octree, UnbalancedModeCanViolateBalance) {
  // Sanity check that balance_2to1 actually does something: with it off,
  // clustered inputs typically produce >1 level jumps somewhere.
  util::Rng rng(10);
  const auto pts = gaussian_clusters(4000, 2, 0.01, rng);
  const Octree t(pts, {.max_points_per_box = 16, .balance_2to1 = false});
  int max_jump = 0;
  for (const int a : t.leaves())
    for (const int b : t.leaves()) {
      const Node& na = t.node(a);
      const Node& nb = t.node(b);
      if (boxes_adjacent(na.box, nb.box))
        max_jump = std::max(max_jump, std::abs(na.level() - nb.level()));
    }
  EXPECT_GT(max_jump, 1);
}

TEST(Octree, UniformDepthBuildsCompleteTree) {
  util::Rng rng(11);
  const auto pts = uniform_cube(4096, rng);
  const Octree t(pts, {.max_points_per_box = 64,
                       .uniform_depth = Octree::uniform_depth_for(4096, 64)});
  // All leaves at the same level.
  for (const int b : t.leaves())
    EXPECT_EQ(t.node(b).level(), t.max_depth());
}

TEST(Octree, UniformDepthForComputesCeilLog8) {
  EXPECT_EQ(Octree::uniform_depth_for(64, 64), 0);
  EXPECT_EQ(Octree::uniform_depth_for(65, 64), 1);
  EXPECT_EQ(Octree::uniform_depth_for(512 * 64, 64), 3);
  EXPECT_EQ(Octree::uniform_depth_for(512 * 64 + 1, 64), 4);
}

TEST(Octree, OriginalIndexIsAPermutation) {
  const Octree t = make_tree(1234, 32, 12);
  std::vector<bool> seen(1234, false);
  for (const std::uint32_t idx : t.original_index()) {
    ASSERT_LT(idx, 1234u);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(Octree, PermutedPointsMatchOriginals) {
  util::Rng rng(13);
  const auto pts = uniform_cube(500, rng);
  const Octree t(pts, {.max_points_per_box = 16});
  const auto sorted = t.points();
  const auto orig = t.original_index();
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_DOUBLE_EQ(sorted[i].x, pts[orig[i]].x);
    EXPECT_DOUBLE_EQ(sorted[i].y, pts[orig[i]].y);
    EXPECT_DOUBLE_EQ(sorted[i].z, pts[orig[i]].z);
  }
}

TEST(Octree, SinglePointMakesRootLeaf) {
  const std::vector<Vec3> one{{0.5, 0.5, 0.5}};
  const Octree t(one, {});
  EXPECT_EQ(t.nodes().size(), 1u);
  EXPECT_TRUE(t.node(0).leaf);
  EXPECT_EQ(t.max_depth(), 0);
}

TEST(Octree, NodesByLevelPartitionsAllNodes) {
  const Octree t = make_tree(2000, 16, 14);
  std::size_t total = 0;
  for (const auto& level : t.nodes_by_level()) total += level.size();
  EXPECT_EQ(total, t.nodes().size());
}

TEST(Octree, DomainContainsAllPoints) {
  const Octree t = make_tree(800, 16, 15);
  for (const Vec3& p : t.points()) EXPECT_TRUE(t.domain().contains(p));
}

}  // namespace
}  // namespace eroof::fmm
