// Physical-invariance property tests of the FMM: potentials must be
// invariant under rigid translation of the whole system, and for the
// homogeneous Laplace kernel they must scale exactly with the system size.
#include <gtest/gtest.h>

#include "fmm/direct.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

class Translation : public ::testing::TestWithParam<Vec3> {};

TEST_P(Translation, PotentialsAreTranslationInvariant) {
  const Vec3 shift = GetParam();
  util::Rng rng(55);
  const auto pts = uniform_cube(2048, rng);
  const auto dens = random_densities(2048, rng);
  const LaplaceKernel kernel;

  FmmEvaluator base(kernel, pts, {.max_points_per_box = 32},
                    FmmConfig{.p = 5});
  const auto phi0 = base.evaluate(dens);

  std::vector<Vec3> moved(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) moved[i] = pts[i] + shift;
  FmmEvaluator shifted(kernel, moved, {.max_points_per_box = 32},
                       FmmConfig{.p = 5});
  const auto phi1 = shifted.evaluate(dens);

  // Both runs are FMM approximations with the same parameters; their
  // difference is bounded by twice the method error.
  EXPECT_LT(rel_l2_error(phi1, phi0), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Shifts, Translation,
                         ::testing::Values(Vec3{10, 0, 0}, Vec3{0, -3, 7},
                                           Vec3{100, 100, 100},
                                           Vec3{-0.5, 0.25, -0.125}));

class Scaling : public ::testing::TestWithParam<double> {};

TEST_P(Scaling, LaplacePotentialScalesAsInverseLength) {
  // K(ax, ay) = K(x, y)/a for Laplace, so scaling all coordinates by `a`
  // scales every potential by 1/a.
  const double a = GetParam();
  util::Rng rng(56);
  const auto pts = uniform_cube(2048, rng);
  const auto dens = random_densities(2048, rng);
  const LaplaceKernel kernel;

  FmmEvaluator base(kernel, pts, {.max_points_per_box = 32},
                    FmmConfig{.p = 5});
  const auto phi0 = base.evaluate(dens);

  std::vector<Vec3> scaled(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) scaled[i] = pts[i] * a;
  FmmEvaluator big(kernel, scaled, {.max_points_per_box = 32},
                   FmmConfig{.p = 5});
  auto phi1 = big.evaluate(dens);
  for (auto& v : phi1) v *= a;

  EXPECT_LT(rel_l2_error(phi1, phi0), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Factors, Scaling,
                         ::testing::Values(0.01, 0.5, 3.0, 1000.0));

TEST(Invariance, PermutingInputOrderPermutesOutputs) {
  // The evaluator must be independent of the caller's point ordering.
  util::Rng rng(57);
  const auto pts = uniform_cube(1024, rng);
  const auto dens = random_densities(1024, rng);
  const LaplaceKernel kernel;

  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32}, FmmConfig{.p = 4});
  const auto phi = ev.evaluate(dens);

  // Reverse the input order.
  std::vector<Vec3> rev(pts.rbegin(), pts.rend());
  std::vector<double> rev_dens(dens.rbegin(), dens.rend());
  FmmEvaluator ev_rev(kernel, rev, {.max_points_per_box = 32},
                      FmmConfig{.p = 4});
  const auto phi_rev = ev_rev.evaluate(rev_dens);

  for (std::size_t i = 0; i < phi.size(); ++i)
    EXPECT_NEAR(phi_rev[phi.size() - 1 - i], phi[i],
                1e-9 * (std::abs(phi[i]) + 1.0));
}

TEST(Invariance, ZeroDensityGivesZeroPotential) {
  util::Rng rng(58);
  const auto pts = uniform_cube(1024, rng);
  const std::vector<double> zeros(1024, 0.0);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32}, FmmConfig{.p = 4});
  for (const double v : ev.evaluate(zeros)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Invariance, UnitDensitiesGivePositivePotentials) {
  // All-positive sources and a positive kernel: every potential positive.
  util::Rng rng(59);
  const auto pts = uniform_cube(2048, rng);
  const std::vector<double> ones(2048, 1.0);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32}, FmmConfig{.p = 5});
  for (const double v : ev.evaluate(ones)) EXPECT_GT(v, 0.0);
}

}  // namespace
}  // namespace eroof::fmm
