// Degenerate and adversarial inputs the library must survive.
#include <gtest/gtest.h>

#include "fmm/direct.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

TEST(EdgeCases, AllPointsCoincide) {
  // Degenerate bounding box; K(x,x) == 0 makes all potentials zero.
  const std::vector<Vec3> pts(64, Vec3{0.25, 0.5, 0.75});
  const std::vector<double> dens(64, 1.0);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 16, .max_level = 4},
                  FmmConfig{.p = 4});
  for (const double v : ev.evaluate(dens)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCases, DuplicatePointsAmongDistinctOnes) {
  util::Rng rng(70);
  auto pts = uniform_cube(512, rng);
  // Duplicate a quarter of the points exactly.
  for (std::size_t i = 0; i < 128; ++i) pts.push_back(pts[i]);
  const auto dens = random_densities(pts.size(), rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 16, .max_level = 6},
                  FmmConfig{.p = 4});
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 5e-3);
}

TEST(EdgeCases, MaxLevelCapsDepthOnPathologicalClusters) {
  // A cluster so tight that Q can never be satisfied: max_level must stop
  // the recursion and the evaluation must stay correct (U handles the
  // overfull leaves directly).
  util::Rng rng(71);
  std::vector<Vec3> pts;
  for (int i = 0; i < 512; ++i)
    pts.push_back({0.5 + 1e-9 * rng.normal(), 0.5 + 1e-9 * rng.normal(),
                   0.5 + 1e-9 * rng.normal()});
  for (int i = 0; i < 512; ++i)
    pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  const auto dens = random_densities(pts.size(), rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 8, .max_level = 5},
                  FmmConfig{.p = 4});
  EXPECT_LE(ev.tree().max_depth(), 5);
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 5e-3);
}

TEST(EdgeCases, QOfOneBuildsDeepTreeAndStaysCorrect) {
  util::Rng rng(72);
  const auto pts = uniform_cube(256, rng);
  const auto dens = random_densities(256, rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 1, .max_level = 8},
                  FmmConfig{.p = 4});
  EXPECT_GT(ev.tree().max_depth(), 2);
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 5e-3);
}

TEST(EdgeCases, CollinearPointsAlongAnAxis) {
  // Zero extent in two dimensions.
  std::vector<Vec3> pts;
  for (int i = 0; i < 300; ++i) pts.push_back({i / 299.0, 0.0, 0.0});
  util::Rng rng(73);
  const auto dens = random_densities(pts.size(), rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 16},
                  FmmConfig{.p = 5});
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 1e-3);
}

TEST(EdgeCases, HugeCoordinatesFarFromOrigin) {
  util::Rng rng(74);
  auto pts = uniform_cube(1024, rng);
  for (auto& p : pts) p = p + Vec3{1e6, -1e6, 5e5};
  const auto dens = random_densities(pts.size(), rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32},
                  FmmConfig{.p = 5});
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 1e-3);
}

TEST(EdgeCases, SinglePoint) {
  const std::vector<Vec3> one{{0.5, 0.5, 0.5}};
  const std::vector<double> d{3.0};
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, one, {}, FmmConfig{.p = 4});
  const auto phi = ev.evaluate(d);
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_DOUBLE_EQ(phi[0], 0.0);
}

TEST(EdgeCases, EmptyPointSetRejected) {
  const std::vector<Vec3> none;
  const LaplaceKernel kernel;
  EXPECT_THROW(FmmEvaluator(kernel, none, {}, FmmConfig{.p = 4}),
               util::ContractError);
}

}  // namespace
}  // namespace eroof::fmm
