// Degenerate and adversarial inputs the library must survive.
#include <gtest/gtest.h>

#include <cstring>

#include "fmm/direct.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

TEST(EdgeCases, AllPointsCoincide) {
  // Degenerate bounding box; K(x,x) == 0 makes all potentials zero.
  const std::vector<Vec3> pts(64, Vec3{0.25, 0.5, 0.75});
  const std::vector<double> dens(64, 1.0);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 16, .max_level = 4},
                  FmmConfig{.p = 4});
  for (const double v : ev.evaluate(dens)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCases, DuplicatePointsAmongDistinctOnes) {
  util::Rng rng(70);
  auto pts = uniform_cube(512, rng);
  // Duplicate a quarter of the points exactly.
  for (std::size_t i = 0; i < 128; ++i) pts.push_back(pts[i]);
  const auto dens = random_densities(pts.size(), rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 16, .max_level = 6},
                  FmmConfig{.p = 4});
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 5e-3);
}

TEST(EdgeCases, MaxLevelCapsDepthOnPathologicalClusters) {
  // A cluster so tight that Q can never be satisfied: max_level must stop
  // the recursion and the evaluation must stay correct (U handles the
  // overfull leaves directly).
  util::Rng rng(71);
  std::vector<Vec3> pts;
  for (int i = 0; i < 512; ++i)
    pts.push_back({0.5 + 1e-9 * rng.normal(), 0.5 + 1e-9 * rng.normal(),
                   0.5 + 1e-9 * rng.normal()});
  for (int i = 0; i < 512; ++i)
    pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  const auto dens = random_densities(pts.size(), rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 8, .max_level = 5},
                  FmmConfig{.p = 4});
  EXPECT_LE(ev.tree().max_depth(), 5);
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 5e-3);
}

TEST(EdgeCases, QOfOneBuildsDeepTreeAndStaysCorrect) {
  util::Rng rng(72);
  const auto pts = uniform_cube(256, rng);
  const auto dens = random_densities(256, rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 1, .max_level = 8},
                  FmmConfig{.p = 4});
  EXPECT_GT(ev.tree().max_depth(), 2);
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 5e-3);
}

TEST(EdgeCases, CollinearPointsAlongAnAxis) {
  // Zero extent in two dimensions.
  std::vector<Vec3> pts;
  for (int i = 0; i < 300; ++i) pts.push_back({i / 299.0, 0.0, 0.0});
  util::Rng rng(73);
  const auto dens = random_densities(pts.size(), rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 16},
                  FmmConfig{.p = 5});
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 1e-3);
}

TEST(EdgeCases, HugeCoordinatesFarFromOrigin) {
  util::Rng rng(74);
  auto pts = uniform_cube(1024, rng);
  for (auto& p : pts) p = p + Vec3{1e6, -1e6, 5e5};
  const auto dens = random_densities(pts.size(), rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 32},
                  FmmConfig{.p = 5});
  const auto phi = ev.evaluate(dens);
  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phi, ref), 1e-3);
}

TEST(EdgeCases, SinglePoint) {
  const std::vector<Vec3> one{{0.5, 0.5, 0.5}};
  const std::vector<double> d{3.0};
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, one, {}, FmmConfig{.p = 4});
  const auto phi = ev.evaluate(d);
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_DOUBLE_EQ(phi[0], 0.0);
}

TEST(EdgeCases, EmptyPointSetRejected) {
  const std::vector<Vec3> none;
  const LaplaceKernel kernel;
  EXPECT_THROW(FmmEvaluator(kernel, none, {}, FmmConfig{.p = 4}),
               util::ContractError);
}

// -- the octant convention, pinned -----------------------------------------
//
// A point is assigned to the upper half of an axis when its coordinate is
// >= the box center: each box owns the half-open cell [lo, center) x
// [center, hi] per axis, while Box::contains (and hence the domain check)
// is closed. These tests freeze that convention: refit and every fixed-
// domain consumer depend on rebinning landing points exactly where the
// original build put them.

TEST(EdgeCases, PointOnSplitPlaneGoesToTheUpperOctant) {
  // One point per octant plus one exactly on the center split planes; with
  // Q=2 the root splits once and the center point must share octant 7 (the
  // +++ octant) with the (0.75, 0.75, 0.75) point.
  std::vector<Vec3> pts;
  for (int o = 0; o < 8; ++o)
    pts.push_back({o & 1 ? 0.75 : 0.25, o & 2 ? 0.75 : 0.25,
                   o & 4 ? 0.75 : 0.25});
  pts.push_back({0.5, 0.5, 0.5});
  const Octree tree(pts, {.max_points_per_box = 2,
                          .domain = {{0.5, 0.5, 0.5}, 0.5}});
  ASSERT_EQ(tree.max_depth(), 1);
  int with_two = -1;
  for (const int b : tree.leaves())
    if (tree.node(b).num_points() == 2) {
      EXPECT_EQ(with_two, -1) << "only octant 7 may hold two points";
      with_two = b;
    }
  ASSERT_NE(with_two, -1);
  // Both residents of that leaf sit at coordinates >= the root center.
  for (std::uint32_t i = tree.node(with_two).point_begin;
       i < tree.node(with_two).point_end; ++i) {
    EXPECT_GE(tree.points()[i].x, 0.5);
    EXPECT_GE(tree.points()[i].y, 0.5);
    EXPECT_GE(tree.points()[i].z, 0.5);
  }
}

TEST(EdgeCases, DomainBoundaryPointsAreAcceptedAndBinHighest) {
  // Box::contains is closed: a point exactly on the domain's max corner is
  // legal input and cascades through the >=-goes-up rule into the highest
  // octant at every level.
  std::vector<Vec3> pts;
  util::Rng rng(79);
  for (int i = 0; i < 63; ++i)
    pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  pts.push_back({1.0, 1.0, 1.0});
  const Octree tree(pts, {.max_points_per_box = 16,
                          .domain = {{0.5, 0.5, 0.5}, 0.5}});
  // Locate the corner point in permuted order; its leaf's box max corner
  // must be the domain's max corner at every enclosing level.
  int pos = -1;
  for (std::size_t i = 0; i < tree.points().size(); ++i)
    if (tree.original_index()[i] == 63) pos = static_cast<int>(i);
  ASSERT_NE(pos, -1);
  for (const int b : tree.leaves()) {
    const Node& nd = tree.node(b);
    if (static_cast<std::uint32_t>(pos) >= nd.point_begin &&
        static_cast<std::uint32_t>(pos) < nd.point_end) {
      EXPECT_DOUBLE_EQ(nd.box.center.x + nd.box.half, 1.0);
      EXPECT_DOUBLE_EQ(nd.box.center.y + nd.box.half, 1.0);
      EXPECT_DOUBLE_EQ(nd.box.center.z + nd.box.half, 1.0);
    }
  }
  // A point just outside the closed domain is rejected.
  pts.push_back({1.0 + 1e-12, 0.5, 0.5});
  EXPECT_THROW(Octree(pts, {.max_points_per_box = 16,
                            .domain = {{0.5, 0.5, 0.5}, 0.5}}),
               util::ContractError);
}

// -- degenerate trees feeding the DAG builder -------------------------------
//
// The task-graph builder consumes the octree and its interaction lists
// as-is, so the structural invariants it leans on (leaves are never empty;
// every v/w source carries an expansion slot) and the pathological shapes
// (depth-0 single leaf, a single-occupied-octant chain) get explicit
// coverage, each evaluated under both executors.

::testing::AssertionResult bits_equal(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size mismatch";
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0)
      return ::testing::AssertionFailure()
             << "bit mismatch at [" << i << "]: " << a[i] << " vs " << b[i];
  return ::testing::AssertionSuccess();
}

TEST(EdgeCases, LeavesAreNeverEmpty) {
  // The octree only materializes non-empty children (including during
  // balance ripple-splitting), so every leaf holds at least one point --
  // the invariant that lets the DAG builder emit a U task per leaf without
  // empties. Checked across adversarial distributions.
  util::Rng rng(75);
  std::vector<std::vector<Vec3>> sets;
  sets.push_back(uniform_cube(777, rng));
  {
    std::vector<Vec3> corner;
    for (int i = 0; i < 400; ++i)
      corner.push_back({1e-4 * rng.uniform(), 1e-4 * rng.uniform(),
                        1e-4 * rng.uniform()});
    sets.push_back(std::move(corner));
  }
  {
    std::vector<Vec3> mixed;
    for (int i = 0; i < 64; ++i)
      mixed.push_back({0.5 + 1e-7 * rng.normal(), 0.5 + 1e-7 * rng.normal(),
                       0.5 + 1e-7 * rng.normal()});
    for (int i = 0; i < 64; ++i)
      mixed.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    sets.push_back(std::move(mixed));
  }
  for (const auto& pts : sets) {
    const Octree tree(pts, {.max_points_per_box = 8, .max_level = 6});
    for (const int b : tree.leaves())
      EXPECT_GE(tree.node(b).num_points(), 1u);
    // And every interaction-list source of every node has points behind it.
    const auto lists = build_lists(tree);
    for (std::size_t b = 0; b < tree.nodes().size(); ++b)
      for (const int a : lists.u[b])
        EXPECT_GE(tree.node(a).num_points(), 1u);
  }
}

TEST(EdgeCases, SingleLeafDepthZeroTreeUnderBothExecutors) {
  // Few points, large Q: the tree is one root leaf at level 0. No node
  // carries an expansion, so the DAG degenerates to U tasks only -- and
  // must still agree with the phases path bit for bit.
  util::Rng rng(76);
  const auto pts = uniform_cube(24, rng);
  const auto dens = random_densities(24, rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 64}, FmmConfig{.p = 4});
  ASSERT_EQ(ev.tree().max_depth(), 0);
  ASSERT_EQ(ev.tree().leaves().size(), 1u);

  const auto phases = ev.evaluate(dens);
  ev.set_executor(FmmExecutor::kDag);
  EXPECT_TRUE(bits_equal(ev.evaluate(dens), phases));
  for (std::size_t t = 0; t < ev.task_graph().task_count(); ++t)
    EXPECT_EQ(ev.task_graph().tag(static_cast<int>(t)), kDagTagU);

  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(phases, ref), 1e-9);
}

TEST(EdgeCases, AllPointsInOneOctantChainUnderBothExecutors) {
  // Nearly every point inside one octant of one octant ...: a lone anchor
  // point at the far corner pins the (point-fitted) root box, so the upper
  // tree is a chain of levels holding almost nothing but the cluster's
  // octant and most interaction lists are empty. The DAG must stay acyclic
  // and complete, and match the phases path bitwise.
  util::Rng rng(78);
  std::vector<Vec3> pts;
  for (int i = 0; i < 600; ++i)
    pts.push_back({0.04 * rng.uniform(), 0.04 * rng.uniform(),
                   0.04 * rng.uniform()});
  pts.push_back({0.95, 0.95, 0.95});
  const auto dens = random_densities(pts.size(), rng);
  const LaplaceKernel kernel;
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 16, .max_level = 8},
                  FmmConfig{.p = 4});
  EXPECT_GE(ev.tree().max_depth(), 4);

  const auto phases = ev.evaluate(dens);
  ev.set_executor(FmmExecutor::kDag);
  const auto dag = ev.evaluate(dens);
  EXPECT_TRUE(bits_equal(dag, phases));

  const auto ref = direct_sum(kernel, pts, pts, dens);
  EXPECT_LT(rel_l2_error(dag, ref), 5e-3);
}

}  // namespace
}  // namespace eroof::fmm
