#include "fmm/surface.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/require.hpp"

namespace eroof::fmm {
namespace {

TEST(Surface, PointCountFormula) {
  EXPECT_EQ(surface_point_count(2), 8u);     // all corners
  EXPECT_EQ(surface_point_count(3), 26u);    // 27 - 1
  EXPECT_EQ(surface_point_count(4), 56u);    // 64 - 8
  EXPECT_EQ(surface_point_count(6), 152u);   // 216 - 64
  EXPECT_EQ(surface_point_count(8), 296u);
}

TEST(Surface, GridCoordsAreOnTheBoundary) {
  for (int p : {3, 4, 6}) {
    for (const auto& [i, j, k] : surface_grid_coords(p)) {
      const bool boundary = i == 0 || i == p - 1 || j == 0 || j == p - 1 ||
                            k == 0 || k == p - 1;
      EXPECT_TRUE(boundary);
    }
  }
}

TEST(Surface, GridCoordsAreUnique) {
  const auto& coords = surface_grid_coords(5);
  std::set<std::array<int, 3>> s(coords.begin(), coords.end());
  EXPECT_EQ(s.size(), coords.size());
}

TEST(Surface, PointsLieOnTheScaledCube) {
  const Box box{{1.0, 2.0, 3.0}, 0.5};
  const double r = 1.05;
  const auto pts = surface_points(6, box, r);
  ASSERT_EQ(pts.size(), surface_point_count(6));
  for (const Vec3& p : pts) {
    const Vec3 d = p - box.center;
    const double inf =
        std::max({std::abs(d.x), std::abs(d.y), std::abs(d.z)});
    EXPECT_NEAR(inf, r * box.half, 1e-12);
  }
}

TEST(Surface, PointsAreSymmetricAboutCenter) {
  const Box box{{0, 0, 0}, 1.0};
  const auto pts = surface_points(4, box, 2.95);
  // For every surface point, its negation is also a surface point.
  for (const Vec3& p : pts) {
    bool found = false;
    for (const Vec3& q : pts)
      if (std::abs(q.x + p.x) < 1e-12 && std::abs(q.y + p.y) < 1e-12 &&
          std::abs(q.z + p.z) < 1e-12)
        found = true;
    EXPECT_TRUE(found);
  }
}

TEST(Surface, SpacingMatchesAdjacentPoints) {
  const Box box{{0, 0, 0}, 0.25};
  const int p = 6;
  const double s = surface_spacing(p, box, 1.05);
  EXPECT_NEAR(s, 2.0 * 1.05 * 0.25 / 5.0, 1e-15);
  // The two first grid coords (0,0,0) and (0,0,1) are adjacent on the
  // surface; their distance must equal the spacing.
  const auto pts = surface_points(p, box, 1.05);
  const auto& coords = surface_grid_coords(p);
  ASSERT_EQ(coords[0], (std::array<int, 3>{0, 0, 0}));
  ASSERT_EQ(coords[1], (std::array<int, 3>{0, 0, 1}));
  EXPECT_NEAR((pts[1] - pts[0]).norm2(), s, 1e-12);
}

TEST(Surface, InvalidOrderThrows) {
  EXPECT_THROW(surface_point_count(1), util::ContractError);
  const Box box{{0, 0, 0}, 1.0};
  EXPECT_THROW(surface_points(4, box, 0.0), util::ContractError);
}

TEST(Surface, InnerRadiusBelowOuter) {
  EXPECT_LT(kRadiusInner, kRadiusOuter);
  EXPECT_GT(kRadiusInner, 1.0);  // outside the box itself
  EXPECT_LT(kRadiusOuter, 3.0);  // inside the far-field cut
}

}  // namespace
}  // namespace eroof::fmm
