// Differential coverage of the DAG executor against the bulk-synchronous
// phases path: bitwise-identical potentials across kernels, problem sizes,
// leaf capacities and thread counts; structural validity of the built task
// graph on a hand-built uniform depth-3 tree; and stats()/trace parity
// between the executors.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

template <typename Fn>
void with_threads(int num_threads, Fn&& fn) {
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(num_threads);
  fn();
  omp_set_num_threads(saved);
#else
  (void)num_threads;
  fn();
#endif
}

::testing::AssertionResult bitwise_equal(const std::vector<double>& got,
                                         const std::vector<double>& want) {
  if (got.size() != want.size())
    return ::testing::AssertionFailure()
           << "size " << got.size() << " vs " << want.size();
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::memcmp(&got[i], &want[i], sizeof(double)) != 0)
      return ::testing::AssertionFailure()
             << "bit mismatch at [" << i << "]: " << got[i] << " vs "
             << want[i] << " (delta " << got[i] - want[i] << ")";
  }
  return ::testing::AssertionSuccess();
}

struct KernelCase {
  std::string name;
  const Kernel& kernel() const {
    static const LaplaceKernel laplace;
    static const YukawaKernel yukawa{2.5};
    static const GaussianKernel gaussian{0.35};
    if (name == "laplace") return laplace;
    if (name == "yukawa") return yukawa;
    return gaussian;
  }
};

class Differential : public ::testing::TestWithParam<KernelCase> {};

TEST_P(Differential, DagMatchesPhasesBitwiseAcrossSizesAndThreads) {
  const Kernel& kernel = GetParam().kernel();
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{513},
                              std::size_t{16384}}) {
    for (const std::uint32_t q : {16u, 64u}) {
      util::Rng rng(900 + n + q);
      const auto pts = uniform_cube(n, rng);
      const auto dens = random_densities(n, rng);
      // Keep the largest case cheap: accuracy is not under test, only
      // bitwise agreement between executors.
      const int p = n >= 16384 ? 3 : 4;
      FmmEvaluator ev(kernel, pts, {.max_points_per_box = q},
                      FmmConfig{.p = p});

      // Reference: the bulk-synchronous path, single-threaded.
      std::vector<double> ref;
      with_threads(1, [&] { ref = ev.evaluate(dens); });

      for (const int threads : {1, 2, 4}) {
        with_threads(threads, [&] {
          ev.set_executor(FmmExecutor::kPhases);
          EXPECT_TRUE(bitwise_equal(ev.evaluate(dens), ref))
              << "phases n=" << n << " q=" << q << " threads=" << threads;
          ev.set_executor(FmmExecutor::kDag);
          EXPECT_TRUE(bitwise_equal(ev.evaluate(dens), ref))
              << "dag n=" << n << " q=" << q << " threads=" << threads;
        });
      }
      ev.set_executor(FmmExecutor::kPhases);
    }
  }
}

TEST_P(Differential, DenseM2lFallbackAgreesToo) {
  // The non-FFT V path builds a different DAG shape (Hadamard tasks replaced
  // by dense per-pair applications depending directly on the sources' UP).
  const Kernel& kernel = GetParam().kernel();
  util::Rng rng(941);
  const auto pts = uniform_cube(1024, rng);
  const auto dens = random_densities(1024, rng);
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 16},
                  FmmConfig{.p = 3, .use_fft_m2l = false});
  std::vector<double> ref;
  with_threads(1, [&] { ref = ev.evaluate(dens); });
  ev.set_executor(FmmExecutor::kDag);
  for (const int threads : {1, 4}) {
    with_threads(threads, [&] {
      EXPECT_TRUE(bitwise_equal(ev.evaluate(dens), ref))
          << "threads=" << threads;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, Differential,
                         ::testing::Values(KernelCase{"laplace"},
                                           KernelCase{"yukawa"},
                                           KernelCase{"gaussian"}),
                         [](const auto& test_info) {
                           return test_info.param.name;
                         });

/// One point at the center of every level-3 cell: the tree refines to a
/// uniform depth-3 octree (8^3 = 512 single-point leaves), the hand-built
/// fixture for structural assertions.
std::vector<Vec3> uniform_depth3_points() {
  std::vector<Vec3> pts;
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      for (int k = 0; k < 8; ++k)
        pts.push_back({(i + 0.5) / 8.0, (j + 0.5) / 8.0, (k + 0.5) / 8.0});
  return pts;
}

TEST(DagStructure, UniformDepth3TreeBuildsTheExpectedGraph) {
  const LaplaceKernel kernel;
  const auto pts = uniform_depth3_points();
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 1}, FmmConfig{.p = 3});
  ASSERT_EQ(ev.tree().max_depth(), 3);
  ASSERT_EQ(ev.tree().leaves().size(), 512u);

  const util::TaskGraph& g = ev.task_graph();
  ASSERT_TRUE(g.sealed());

  // Expected task population, derived from the tree and its lists.
  std::size_t slot_nodes = 0, v_nonempty = 0, x_nonempty = 0, w_nonempty = 0;
  const auto& nodes = ev.tree().nodes();
  for (std::size_t b = 0; b < nodes.size(); ++b) {
    if (nodes[b].level() < 2) continue;
    ++slot_nodes;
    if (!ev.lists().v[b].empty()) ++v_nonempty;
    if (!ev.lists().x[b].empty()) ++x_nonempty;
  }
  for (const int b : ev.tree().leaves())
    if (!ev.lists().w[static_cast<std::size_t>(b)].empty()) ++w_nonempty;
  EXPECT_EQ(slot_nodes, 64u + 512u);
  // Uniform leaves: no level mismatch between adjacent leaves, so no W/X.
  EXPECT_EQ(w_nonempty, 0u);
  EXPECT_EQ(x_nonempty, 0u);

  std::map<int, std::size_t> by_tag;
  for (std::size_t t = 0; t < g.task_count(); ++t)
    ++by_tag[g.tag(static_cast<int>(t))];
  EXPECT_EQ(by_tag[kDagTagUp], slot_nodes);
  // FFT M2L: one forward-FFT task per expansion-bearing node plus one
  // Hadamard task per node with a non-empty v-list.
  EXPECT_EQ(by_tag[kDagTagV], slot_nodes + v_nonempty);
  EXPECT_EQ(by_tag[kDagTagX], x_nonempty);
  // DOWN: a DC2E/L2L task per expansion-bearing node plus an L2P task per
  // expansion-bearing leaf (all 512 here).
  EXPECT_EQ(by_tag[kDagTagDown], slot_nodes + 512u);
  EXPECT_EQ(by_tag[kDagTagU], 512u);
  EXPECT_EQ(by_tag[kDagTagW], w_nonempty);

  // Topological validity: dependency counts match predecessor lists, roots
  // have none, and every edge connects existing tasks (successors() and
  // predecessors() agree).
  std::size_t pred_edges = 0, succ_edges = 0;
  for (std::size_t t = 0; t < g.task_count(); ++t) {
    const int id = static_cast<int>(t);
    EXPECT_EQ(g.initial_dep_count(id),
              static_cast<int>(g.predecessors(id).size()));
    pred_edges += g.predecessors(id).size();
    succ_edges += g.successors(id).size();
  }
  EXPECT_EQ(pred_edges, g.edge_count());
  EXPECT_EQ(succ_edges, g.edge_count());
  for (const int r : g.roots()) EXPECT_EQ(g.initial_dep_count(r), 0);

  // No orphan tasks: one DAG evaluation runs every task (non-zero stamps),
  // and every edge's ordering guarantee holds.
  util::Rng rng(77);
  const auto dens = random_densities(pts.size(), rng);
  ev.set_executor(FmmExecutor::kDag);
  (void)ev.evaluate(dens);
  for (std::size_t t = 0; t < g.task_count(); ++t) {
    const int id = static_cast<int>(t);
    EXPECT_GT(g.start_stamp(id), 0) << "orphan task " << id;
    EXPECT_LT(g.start_stamp(id), g.finish_stamp(id));
    for (const int u : g.predecessors(id))
      EXPECT_LT(g.finish_stamp(u), g.start_stamp(id));
  }
}

void expect_phase_equal(const FmmStats::Phase& a, const FmmStats::Phase& b) {
  // Exact: tallies are committed wholesale from one canonical serial pass.
  EXPECT_EQ(a.kernel_evals, b.kernel_evals);
  EXPECT_EQ(a.pair_count, b.pair_count);
  EXPECT_EQ(a.ffts, b.ffts);
  EXPECT_EQ(a.hadamard_cmuls, b.hadamard_cmuls);
  EXPECT_EQ(a.solve_matvecs, b.solve_matvecs);
}

TEST(DagStats, TalliesAreIdenticalUnderBothExecutors) {
  // Regression for the tally commit order: stats() must not depend on the
  // executor or the schedule.
  const LaplaceKernel kernel;
  util::Rng rng(91);
  const auto pts = uniform_cube(2048, rng);
  const auto dens = random_densities(2048, rng);
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 24}, FmmConfig{.p = 4});

  (void)ev.evaluate(dens);
  const FmmStats phases = ev.stats();
  EXPECT_GT(phases.up.kernel_evals, 0.0);
  EXPECT_GT(phases.u.kernel_evals, 0.0);

  ev.set_executor(FmmExecutor::kDag);
  for (const int threads : {1, 4}) {
    with_threads(threads, [&] { (void)ev.evaluate(dens); });
    const FmmStats dag = ev.stats();
    expect_phase_equal(dag.up, phases.up);
    expect_phase_equal(dag.u, phases.u);
    expect_phase_equal(dag.v, phases.v);
    expect_phase_equal(dag.w, phases.w);
    expect_phase_equal(dag.x, phases.x);
    expect_phase_equal(dag.down, phases.down);
  }
}

TEST(DagTrace, PhaseSpansAndCounterTotalsMatchThePhasesPath) {
  const LaplaceKernel kernel;
  util::Rng rng(92);
  const auto pts = uniform_cube(2048, rng);
  const auto dens = random_densities(2048, rng);
  FmmEvaluator ev(kernel, pts, {.max_points_per_box = 24}, FmmConfig{.p = 4});

  std::map<std::string, double> phases_totals;
  {
    trace::TraceSession session;
    trace::SessionGuard guard(session);
    (void)ev.evaluate(dens);
    phases_totals = session.counter_totals();
  }

  trace::TraceSession session;
  {
    trace::SessionGuard guard(session);
    ev.set_executor(FmmExecutor::kDag);
    (void)ev.evaluate(dens);
  }
  EXPECT_EQ(session.counter_totals(), phases_totals);

  // The DAG run still reports one aggregate span per phase (busy time), so
  // chrome://tracing and the P x S grid keep their phase attribution.
  std::multiset<std::string> phase_spans;
  for (const auto& span : session.spans())
    if (span.category == "fmm.phase") phase_spans.insert(span.name);
  EXPECT_EQ(phase_spans, (std::multiset<std::string>{"DOWN", "U", "UP", "V",
                                                     "W", "X"}));
}

}  // namespace
}  // namespace eroof::fmm
