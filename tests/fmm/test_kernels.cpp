#include "fmm/kernel.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace eroof::fmm {
namespace {

TEST(Kernel, LaplaceMatchesClosedForm) {
  const LaplaceKernel k;
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 0, 0};
  EXPECT_NEAR(k.eval(x, y), 1.0 / (4.0 * std::numbers::pi), 1e-15);
  const Vec3 z{0, 2, 0};
  EXPECT_NEAR(k.eval(z, y), 1.0 / (8.0 * std::numbers::pi), 1e-15);
}

TEST(Kernel, LaplaceSelfInteractionIsZero) {
  const LaplaceKernel k;
  const Vec3 x{0.3, 0.4, 0.5};
  EXPECT_DOUBLE_EQ(k.eval(x, x), 0.0);
}

TEST(Kernel, LaplaceIsSymmetric) {
  const LaplaceKernel k;
  const Vec3 x{0.1, 0.9, 0.4};
  const Vec3 y{0.7, 0.2, 0.6};
  EXPECT_DOUBLE_EQ(k.eval(x, y), k.eval(y, x));
}

TEST(Kernel, LaplaceHomogeneousDegreeMinusOne) {
  const LaplaceKernel k;
  double degree = 0;
  ASSERT_TRUE(k.homogeneous(&degree));
  EXPECT_DOUBLE_EQ(degree, -1.0);
  const Vec3 x{0.2, 0.3, 0.4};
  const Vec3 y{0.9, 0.1, 0.5};
  EXPECT_NEAR(k.eval(x * 2.0, y * 2.0), 0.5 * k.eval(x, y), 1e-15);
}

TEST(Kernel, YukawaDecaysFasterThanLaplace) {
  const LaplaceKernel lap;
  const YukawaKernel yuk(3.0);
  const Vec3 o{0, 0, 0};
  const Vec3 near{0.1, 0, 0};
  const Vec3 far{3.0, 0, 0};
  EXPECT_LT(yuk.eval(far, o) / yuk.eval(near, o),
            lap.eval(far, o) / lap.eval(near, o));
}

TEST(Kernel, YukawaReducesToLaplaceAtZeroScreening) {
  const LaplaceKernel lap;
  const YukawaKernel yuk(0.0);
  const Vec3 x{0.4, 0.5, 0.6};
  const Vec3 y{0.1, 0.1, 0.1};
  EXPECT_NEAR(yuk.eval(x, y), lap.eval(x, y), 1e-15);
}

TEST(Kernel, GaussianIsOneAtCoincidence) {
  const GaussianKernel g(0.5);
  const Vec3 x{0.3, 0.3, 0.3};
  // Gaussian is smooth: no self-interaction exclusion needed, K(x,x) = 1.
  EXPECT_DOUBLE_EQ(g.eval(x, x), 1.0);
}

TEST(Kernel, GaussianMatchesClosedForm) {
  const GaussianKernel g(1.0);
  const Vec3 x{1, 1, 1};
  const Vec3 y{0, 0, 0};
  EXPECT_NEAR(g.eval(x, y), std::exp(-1.5), 1e-15);
}

TEST(Kernel, MatrixHasEvalEntries) {
  const LaplaceKernel k;
  const std::vector<Vec3> targets{{0, 0, 0}, {1, 0, 0}};
  const std::vector<Vec3> sources{{0, 1, 0}, {0, 0, 2}, {3, 0, 0}};
  const la::Matrix m = k.matrix(targets, sources);
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(m(i, j), k.eval(targets[i], sources[j]));
}

TEST(Kernel, FlopCostsArePositive) {
  EXPECT_GT(LaplaceKernel{}.flops_per_eval(), 0);
  EXPECT_GT(YukawaKernel{1.0}.flops_per_eval(), 0);
  EXPECT_GT(GaussianKernel{1.0}.flops_per_eval(), 0);
}

}  // namespace
}  // namespace eroof::fmm
