// Randomized cross-checks of the Morton-key machinery against brute force.
#include <gtest/gtest.h>

#include <algorithm>

#include "fmm/morton.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

TEST(MortonProperty, NeighborsMatchBruteForceEnumeration) {
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const int level = 1 + static_cast<int>(rng.below(8));
    const std::uint32_t cells = 1u << level;
    const auto x = static_cast<std::uint32_t>(rng.below(cells));
    const auto y = static_cast<std::uint32_t>(rng.below(cells));
    const auto z = static_cast<std::uint32_t>(rng.below(cells));
    const MortonKey k = MortonKey::from_coords(level, x, y, z);

    std::vector<MortonKey> expected;
    for (int dx = -1; dx <= 1; ++dx)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dz = -1; dz <= 1; ++dz) {
          if (!dx && !dy && !dz) continue;
          const std::int64_t nx = static_cast<std::int64_t>(x) + dx;
          const std::int64_t ny = static_cast<std::int64_t>(y) + dy;
          const std::int64_t nz = static_cast<std::int64_t>(z) + dz;
          if (nx < 0 || ny < 0 || nz < 0 || nx >= cells || ny >= cells ||
              nz >= cells)
            continue;
          expected.push_back(MortonKey::from_coords(
              level, static_cast<std::uint32_t>(nx),
              static_cast<std::uint32_t>(ny),
              static_cast<std::uint32_t>(nz)));
        }
    auto actual = k.neighbors();
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i)
      EXPECT_EQ(actual[i], expected[i]);
  }
}

TEST(MortonProperty, SortOrderMatchesInterleavedBits) {
  // Z-order comparison of two same-level keys must equal comparison of
  // their bit-interleaved coordinates.
  util::Rng rng(100);
  for (int trial = 0; trial < 500; ++trial) {
    const int level = 1 + static_cast<int>(rng.below(10));
    const std::uint32_t cells = 1u << level;
    const auto ka = MortonKey::from_coords(
        level, static_cast<std::uint32_t>(rng.below(cells)),
        static_cast<std::uint32_t>(rng.below(cells)),
        static_cast<std::uint32_t>(rng.below(cells)));
    const auto kb = MortonKey::from_coords(
        level, static_cast<std::uint32_t>(rng.below(cells)),
        static_cast<std::uint32_t>(rng.below(cells)),
        static_cast<std::uint32_t>(rng.below(cells)));
    const auto ca = ka.coords();
    const auto cb = kb.coords();
    const std::uint64_t za = interleave3(ca[0]) | (interleave3(ca[1]) << 1) |
                             (interleave3(ca[2]) << 2);
    const std::uint64_t zb = interleave3(cb[0]) | (interleave3(cb[1]) << 1) |
                             (interleave3(cb[2]) << 2);
    EXPECT_EQ(ka < kb, za < zb);
  }
}

TEST(MortonProperty, AncestorChainsTerminateAtRoot) {
  util::Rng rng(101);
  for (int trial = 0; trial < 100; ++trial) {
    const int level = 1 + static_cast<int>(rng.below(12));
    const std::uint32_t cells = 1u << level;
    MortonKey k = MortonKey::from_coords(
        level, static_cast<std::uint32_t>(rng.below(cells)),
        static_cast<std::uint32_t>(rng.below(cells)),
        static_cast<std::uint32_t>(rng.below(cells)));
    int steps = 0;
    while (k.level() > 0) {
      const MortonKey p = k.parent();
      // Parent coords contain the child's (halved).
      const auto ck = k.coords();
      const auto cp = p.coords();
      for (int a = 0; a < 3; ++a) EXPECT_EQ(cp[a], ck[a] >> 1);
      k = p;
      ++steps;
    }
    EXPECT_EQ(steps, level);
  }
}

TEST(MortonProperty, ChildNeighborsStayWithinParentNeighborhood) {
  // Every neighbor of a child is either inside the parent or inside one of
  // the parent's neighbors -- the geometric fact the V-list construction
  // relies on.
  util::Rng rng(102);
  for (int trial = 0; trial < 100; ++trial) {
    const int level = 2 + static_cast<int>(rng.below(6));
    const std::uint32_t cells = 1u << level;
    const MortonKey k = MortonKey::from_coords(
        level, static_cast<std::uint32_t>(rng.below(cells)),
        static_cast<std::uint32_t>(rng.below(cells)),
        static_cast<std::uint32_t>(rng.below(cells)));
    const MortonKey parent = k.parent();
    std::vector<MortonKey> allowed = parent.neighbors();
    allowed.push_back(parent);
    for (const MortonKey n : k.neighbors()) {
      const MortonKey np = n.parent();
      EXPECT_NE(std::find(allowed.begin(), allowed.end(), np), allowed.end());
    }
  }
}

}  // namespace
}  // namespace eroof::fmm
