// FmmPlan: operator sharing (the "fmm.operators.builds" regression hook
// proving two evaluators on one plan build operators once, while the legacy
// API builds per construction), DAG-skeleton adoption (bitwise-identical
// results plan-shared vs locally built), the structural-signature fallback,
// and the plan constructor's contract checks.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "fmm/evaluator.hpp"
#include "fmm/pointgen.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

constexpr Box kDomain{{0.5, 0.5, 0.5}, 0.5};

::testing::AssertionResult bitwise_equal(const std::vector<double>& got,
                                         const std::vector<double>& want) {
  if (got.size() != want.size())
    return ::testing::AssertionFailure()
           << "size " << got.size() << " vs " << want.size();
  for (std::size_t i = 0; i < got.size(); ++i)
    if (std::memcmp(&got[i], &want[i], sizeof(double)) != 0)
      return ::testing::AssertionFailure()
             << "element " << i << ": " << got[i] << " vs " << want[i];
  return ::testing::AssertionSuccess();
}

Octree::Params uniform_params(std::size_t n, std::uint32_t q) {
  Octree::Params tp;
  tp.max_points_per_box = q;
  tp.uniform_depth = Octree::uniform_depth_for(n, q);
  tp.domain = kDomain;
  return tp;
}

double operator_builds(const trace::TraceSession& session) {
  const auto totals = session.counter_totals();
  const auto it = totals.find("fmm.operators.builds");
  return it == totals.end() ? 0.0 : it->second;
}

TEST(FmmPlan, SharedPlanBuildsOperatorsOnce) {
  constexpr std::size_t kN = 512;
  util::Rng rng(7);
  const auto pts_a = uniform_cube(kN, rng);
  const auto pts_b = sphere_surface(kN, rng);
  std::vector<Vec3> pts_b_in;
  for (const Vec3& p : pts_b)
    pts_b_in.push_back({0.5 + (p.x - 0.5) * 0.45, 0.5 + (p.y - 0.5) * 0.45,
                        0.5 + (p.z - 0.5) * 0.45});
  const auto tp = uniform_params(kN, 8);

  trace::TraceSession session;
  trace::SessionGuard guard(session);
  const auto kernel = std::make_shared<LaplaceKernel>();
  const auto plan = std::make_shared<FmmPlan>(
      kernel, kDomain.half, tp.uniform_depth, FmmConfig{.p = 4});
  EXPECT_EQ(operator_builds(session), 1.0);

  // Two evaluators, different point sets, one plan: no further builds.
  FmmEvaluator ev_a(plan, pts_a, tp);
  FmmEvaluator ev_b(plan, pts_b_in, tp);
  EXPECT_EQ(operator_builds(session), 1.0);
  EXPECT_EQ(&ev_a.operators(), &ev_b.operators());
}

TEST(FmmPlan, LegacyApiBuildsPerConstruction) {
  constexpr std::size_t kN = 512;
  util::Rng rng(7);
  const auto pts = uniform_cube(kN, rng);
  static const LaplaceKernel kernel;

  trace::TraceSession session;
  trace::SessionGuard guard(session);
  FmmEvaluator ev_a(kernel, pts, uniform_params(kN, 8), FmmConfig{.p = 4});
  EXPECT_EQ(operator_builds(session), 1.0);
  FmmEvaluator ev_b(kernel, pts, uniform_params(kN, 8), FmmConfig{.p = 4});
  EXPECT_EQ(operator_builds(session), 2.0);
}

TEST(FmmPlan, SharedPlanMatchesLegacyBitwise) {
  constexpr std::size_t kN = 512;
  util::Rng rng(11);
  const auto pts = uniform_cube(kN, rng);
  const auto dens = random_densities(kN, rng);
  const auto tp = uniform_params(kN, 8);
  static const LaplaceKernel kernel;

  FmmEvaluator legacy(kernel, pts, tp, FmmConfig{.p = 4});
  const auto want = legacy.evaluate(dens);

  const auto plan = std::make_shared<FmmPlan>(
      FmmPlan::borrow_kernel(kernel), kDomain.half, tp.uniform_depth,
      FmmConfig{.p = 4});
  FmmEvaluator shared(plan, pts, tp);
  EXPECT_TRUE(bitwise_equal(shared.evaluate(dens), want));
}

TEST(FmmPlan, AdoptedSkeletonMatchesLocalBuildBitwise) {
  constexpr std::size_t kN = 512;
  util::Rng rng(13);
  const auto pts = uniform_cube(kN, rng);
  const auto dens = random_densities(kN, rng);
  const auto tp = uniform_params(kN, 8);
  const auto kernel = std::make_shared<LaplaceKernel>();
  const FmmConfig cfg{.p = 4};

  // Plan WITH a skeleton, built from an equal-structure tree of different
  // points: the evaluator must adopt it (signatures match).
  Octree donor(uniform_cube(kN, rng), tp);
  auto plan = std::make_shared<FmmPlan>(kernel, kDomain.half,
                                        tp.uniform_depth, cfg);
  plan->attach_dag_skeleton(
      build_fmm_dag_skeleton(donor, build_lists(donor), cfg.use_fft_m2l));
  ASSERT_NE(plan->dag_skeleton(), nullptr);

  // Plan WITHOUT a skeleton: the evaluator builds one locally.
  auto bare = std::make_shared<FmmPlan>(kernel, kDomain.half,
                                        tp.uniform_depth, cfg);

  FmmEvaluator adopted(plan, pts, tp);
  FmmEvaluator local(bare, pts, tp);
  adopted.set_executor(FmmExecutor::kDag);
  local.set_executor(FmmExecutor::kDag);
  const auto want = local.evaluate(dens);
  EXPECT_TRUE(bitwise_equal(adopted.evaluate(dens), want));

  // And both match the phases executor exactly.
  FmmEvaluator phases(plan, pts, tp);
  EXPECT_TRUE(bitwise_equal(phases.evaluate(dens), want));
}

TEST(FmmPlan, SignatureMismatchFallsBackToLocalSkeleton) {
  util::Rng rng(17);
  const FmmConfig cfg{.p = 4};
  const auto kernel = std::make_shared<LaplaceKernel>();

  // Plan for depth 3, skeleton built from a depth-3 tree.
  const auto tp3 = uniform_params(4096, 8);
  ASSERT_GE(tp3.uniform_depth, 3);
  Octree donor(uniform_cube(4096, rng), tp3);
  auto plan =
      std::make_shared<FmmPlan>(kernel, kDomain.half, tp3.uniform_depth, cfg);
  plan->attach_dag_skeleton(
      build_fmm_dag_skeleton(donor, build_lists(donor), cfg.use_fft_m2l));

  // Serve a shallower tree through the same plan: signature differs, so the
  // evaluator builds its own skeleton -- and stays bitwise correct.
  constexpr std::size_t kN = 512;
  const auto tp2 = uniform_params(kN, 8);
  ASSERT_LT(tp2.uniform_depth, tp3.uniform_depth);
  const auto pts = uniform_cube(kN, rng);
  const auto dens = random_densities(kN, rng);
  EXPECT_NE(tree_structure_signature(Octree(pts, tp2)),
            plan->dag_skeleton()->tree_signature);

  static const LaplaceKernel ref_kernel;
  FmmEvaluator ref(ref_kernel, pts, tp2, cfg);
  ref.set_executor(FmmExecutor::kDag);
  const auto want = ref.evaluate(dens);

  FmmEvaluator ev(plan, pts, tp2);
  ev.set_executor(FmmExecutor::kDag);
  EXPECT_TRUE(bitwise_equal(ev.evaluate(dens), want));
}

TEST(FmmPlan, RejectsMismatchedTree) {
  constexpr std::size_t kN = 256;
  util::Rng rng(19);
  const auto pts = uniform_cube(kN, rng);
  const auto kernel = std::make_shared<LaplaceKernel>();
  const auto tp = uniform_params(kN, 8);

  // Deeper tree than the plan supports.
  auto shallow = std::make_shared<FmmPlan>(kernel, kDomain.half, 1,
                                           FmmConfig{.p = 4});
  EXPECT_THROW((FmmEvaluator{shallow, pts, tp}), std::exception);

  // Root box that differs bitwise from the plan's.
  auto off = std::make_shared<FmmPlan>(kernel, 0.25, tp.uniform_depth,
                                       FmmConfig{.p = 4});
  EXPECT_THROW((FmmEvaluator{off, pts, tp}), std::exception);
}

}  // namespace
}  // namespace eroof::fmm
