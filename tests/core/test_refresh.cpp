// The streaming re-fit path (core/refresh): incremental normal equations,
// the drift detector, and the ClosedLoopScheduler reference controller.
//
// The contracts pinned here are the ones the closed loop stands on:
// forgetting == 1 reproduces the batch fit *bit for bit* (both paths solve
// through fit_normal_equations, and the incremental accumulation mirrors
// the batch assembly's floating-point order), forgetting < 1 ages an old
// thermal regime out of the fit, the EWMA detector stays quiet on a
// calibrated model and fires on a systematic bias, and the whole loop --
// OpenMP prediction grids included -- replays bitwise across thread counts.
#include "core/refresh.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/fit.hpp"
#include "core/schedule.hpp"
#include "hw/dvfs.hpp"
#include "hw/powermon.hpp"
#include "hw/soc.hpp"
#include "ubench/campaign.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::model {
namespace {

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool models_bit_equal(const EnergyModel& a, const EnergyModel& b) {
  for (std::size_t i = 0; i < kNumCoeffs; ++i)
    if (!bit_equal(a.c0[i], b.c0[i])) return false;
  return bit_equal(a.c1_proc, b.c1_proc) && bit_equal(a.c1_mem, b.c1_mem) &&
         bit_equal(a.p_misc, b.p_misc);
}

template <typename Fn>
auto with_threads(int num_threads, Fn&& fn) {
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(num_threads);
#else
  (void)num_threads;
#endif
  auto out = fn();
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
  return out;
}

// Shared across tests: the seeded paper campaign's training half and the
// model fitted from it (the closed loop's "PR 5" seed state).
const std::vector<FitSample>& campaign_train() {
  static const std::vector<FitSample> train = [] {
    const auto soc = hw::Soc::tegra_k1();
    const hw::PowerMon pm;
    const auto campaign = ub::paper_campaign(soc, pm, util::RngStream(42));
    std::vector<FitSample> out;
    for (const auto& s : campaign)
      if (s.role == hw::SettingRole::kTrain)
        out.push_back(to_fit_sample(s.meas));
    return out;
  }();
  return train;
}

const EnergyModel& seed_model() {
  static const EnergyModel m = fit_energy_model(campaign_train()).model;
  return m;
}

// Leakage-only samples (zero op counts): energy = pi_0(setting) * time,
// with pi_0 built from the given slope triple. Several distinct voltage
// pairs keep the three constant-power columns identifiable.
std::vector<FitSample> leakage_epoch(double c1p, double c1m, double pm,
                                     double time_s, int reps) {
  const auto grid = hw::full_grid();
  // A spread of (Vp, Vm) corners: min/max of each ladder plus mid points.
  const std::vector<std::size_t> idx = {0, grid.size() - 1, grid.size() / 2,
                                        grid.size() / 3, 2 * grid.size() / 3};
  std::vector<FitSample> out;
  for (int r = 0; r < reps; ++r)
    for (const std::size_t i : idx) {
      FitSample s;
      s.setting = grid[i];
      s.time_s = time_s;
      const double vp = s.setting.core.volt_v();
      const double vm = s.setting.mem.volt_v();
      s.energy_j = (c1p * vp + c1m * vm + pm) * time_s;
      out.push_back(s);
    }
  return out;
}

TEST(IncrementalGram, ForgettingOneMatchesBatchFitBitwise) {
  const auto& train = campaign_train();
  IncrementalGram inc(1.0);
  for (const FitSample& s : train) inc.add(s);
  const FitResult stream = inc.fit();
  const FitResult batch = fit_energy_model(train);
  EXPECT_TRUE(models_bit_equal(stream.model, batch.model));
  EXPECT_TRUE(bit_equal(stream.residual_norm, batch.residual_norm));
  EXPECT_EQ(stream.converged, batch.converged);
  EXPECT_EQ(stream.n_samples, batch.n_samples);
  EXPECT_EQ(inc.rows(), train.size());
  EXPECT_DOUBLE_EQ(inc.weight(), static_cast<double>(train.size()));
}

TEST(IncrementalGram, ForgettingAgesOutOldRegime) {
  // Epoch A: cold leakage. Epoch B: every slope 1.5x (a hot die). With
  // forgetting, the fit lands on B; without, it is pulled toward the
  // stale epoch's average.
  const auto epoch_a = leakage_epoch(2.7, 3.8, 0.15, 0.1, 12);
  const auto epoch_b = leakage_epoch(4.05, 5.7, 0.225, 0.1, 12);

  IncrementalGram forgetting(0.9);
  IncrementalGram never(1.0);
  for (const FitSample& s : epoch_a) { forgetting.add(s); never.add(s); }
  for (const FitSample& s : epoch_b) { forgetting.add(s); never.add(s); }

  const EnergyModel mf = forgetting.fit().model;
  const EnergyModel mn = never.fit().model;
  const hw::DvfsSetting probe = hw::full_grid().front();
  const double vp = probe.core.volt_v();
  const double vm = probe.mem.volt_v();
  const double pi0_b = 4.05 * vp + 5.7 * vm + 0.225;
  const double err_f = std::abs(mf.constant_power_w(probe) - pi0_b) / pi0_b;
  const double err_n = std::abs(mn.constant_power_w(probe) - pi0_b) / pi0_b;
  // 60 decayed epoch-A rows vs 60 fresh epoch-B rows at lambda = 0.9:
  // epoch A retains < 0.2% of its weight, so the fit sits on B.
  EXPECT_LT(err_f, 0.01);
  // The never-forget fit averages the epochs and misses B by a lot more.
  EXPECT_GT(err_n, 5.0 * err_f);
}

TEST(OnlineRefresh, QuietWhenCalibratedFiresOnSystematicBias) {
  OnlineRefreshConfig cfg;
  cfg.min_observations = 5;
  cfg.cooldown = 5;
  cfg.drift_bound = 0.05;
  OnlineRefresh refresh(seed_model(), cfg);

  // Perfectly calibrated stream: measured == predicted. Drift stays 0.
  const auto calib = leakage_epoch(seed_model().c1_proc, seed_model().c1_mem,
                                   seed_model().p_misc, 0.1, 4);
  for (const FitSample& s : calib) refresh.observe(s);
  EXPECT_NEAR(refresh.drift(), 0.0, 1e-12);
  EXPECT_FALSE(refresh.should_refresh());

  // +30% systematic bias (leakage grew): the signed EWMA accumulates and
  // crosses the bound within a handful of observations.
  auto biased = calib;
  for (FitSample& s : biased) s.energy_j *= 1.3;
  for (const FitSample& s : biased) refresh.observe(s);
  EXPECT_GT(refresh.drift(), 0.05);
  EXPECT_TRUE(refresh.should_refresh());
}

TEST(OnlineRefresh, RefreshAdoptsRefitAndResetsDetector) {
  OnlineRefreshConfig cfg;
  cfg.min_observations = 5;
  cfg.cooldown = 5;
  cfg.forgetting = 0.95;
  OnlineRefresh refresh(seed_model(), cfg);
  // Stream a hotter regime than the seed model knows about.
  const auto hot = leakage_epoch(1.6 * seed_model().c1_proc,
                                 1.6 * seed_model().c1_mem,
                                 seed_model().p_misc, 0.1, 8);
  for (const FitSample& s : hot) refresh.observe(s);
  ASSERT_TRUE(refresh.should_refresh());

  const FitResult r = refresh.refresh();
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(refresh.stats().refreshes, 1u);
  EXPECT_EQ(refresh.drift(), 0.0);
  EXPECT_FALSE(refresh.should_refresh());  // cooldown + reset EWMA
  // The refitted model prices the hot regime's constant power, the seed
  // does not.
  const hw::DvfsSetting probe = hw::full_grid().front();
  const double truth = 1.6 * seed_model().c1_proc * probe.core.volt_v() +
                       1.6 * seed_model().c1_mem * probe.mem.volt_v() +
                       seed_model().p_misc;
  const double err_new =
      std::abs(refresh.model().constant_power_w(probe) - truth);
  const double err_seed = std::abs(seed_model().constant_power_w(probe) - truth);
  EXPECT_LT(err_new, 0.2 * err_seed);
}

TEST(OnlineRefresh, RejectsNonFiniteSamples) {
  OnlineRefresh refresh(seed_model());
  const double nan = std::numeric_limits<double>::quiet_NaN();

  FitSample bad_energy = campaign_train().front();
  bad_energy.energy_j = nan;
  FitSample bad_time = campaign_train().front();
  bad_time.time_s = 0.0;
  FitSample bad_count = campaign_train().front();
  bad_count.ops[hw::OpClass::kSpFlop] = nan;

  const double before = refresh.drift();
  refresh.observe(bad_energy);
  refresh.observe(bad_time);
  refresh.observe(bad_count);
  EXPECT_EQ(refresh.stats().rejected, 3u);
  EXPECT_EQ(refresh.stats().observations, 0u);
  EXPECT_EQ(refresh.gram().rows(), 0u);
  EXPECT_TRUE(bit_equal(refresh.drift(), before));
  // A poisoned stream never reaches the normal equations, so a later
  // legitimate fit stays finite.
  for (const FitSample& s : campaign_train()) refresh.observe(s);
  EXPECT_TRUE(std::isfinite(refresh.refresh().model.p_misc));
}

TEST(Refresh, IdleProbeIsAPurePi0Row) {
  const hw::Workload probe = idle_probe_workload();
  for (const double c : probe.ops.n) EXPECT_EQ(c, 0.0);
  // Its design row has zero dynamic columns; only the three constant-power
  // columns are live.
  FitSample s;
  s.ops = probe.ops;
  s.setting = hw::full_grid().front();
  s.time_s = 15e-6;
  const auto row = design_row(s);
  for (std::size_t j = 0; j < kNumCoeffs; ++j) EXPECT_EQ(row[j], 0.0);
  for (std::size_t j = kNumCoeffs; j < kNumFitColumns; ++j)
    EXPECT_GT(row[j], 0.0);
  // And the simulated SoC executes it in the kernel-overhead time -- far
  // below one PowerMon sample period (the 2-point-trapezoid path).
  const auto soc = hw::Soc::tegra_k1();
  EXPECT_LT(soc.execution_time(probe, s.setting), 1.0 / 1024.0);
}

TEST(Refresh, OracleGridMatchesGroundTruth) {
  const auto soc = hw::Soc::tegra_k1().with_leakage_scale(1.5);
  hw::Workload w;
  w.name = "oracle_probe";
  w.ops[hw::OpClass::kSpFlop] = 1e9;
  w.ops[hw::OpClass::kDramAccess] = 1e7;
  const std::vector<hw::Workload> phases = {w};
  const auto grid = hw::full_grid();
  const PhaseGridPrediction pred = oracle_phase_grid(soc, phases, grid);
  ASSERT_EQ(pred.n_phases(), 1u);
  ASSERT_EQ(pred.n_settings(), grid.size());
  for (const std::size_t s : {std::size_t{0}, grid.size() - 1}) {
    const double t = soc.execution_time(w, grid[s]);
    EXPECT_TRUE(bit_equal(pred.time_at(0, s), t));
    EXPECT_TRUE(bit_equal(pred.energy_at(0, s), soc.true_energy_j(w, grid[s], t)));
    EXPECT_TRUE(
        bit_equal(pred.const_power_w[s], soc.true_constant_power_w(grid[s])));
  }
}

// ---------------------------------------------------------------------------
// ClosedLoopScheduler: the full loop on a thermally drifting SoC
// ---------------------------------------------------------------------------

// A heterogeneous phase chain (compute-bound / memory-bound / mixed), so
// per-phase scheduling is meaningful.
std::vector<hw::Workload> loop_phases() {
  // High compute utilization on purpose: those phases have *interior*
  // energy-optimal settings (the V^2-vs-pi_0*T balance point sits mid
  // ladder), which is what thermal drift moves. Low-utilization and
  // memory-bound phases race to a grid corner and stay there at any
  // leakage, so they would only dilute the static-vs-refreshed gap.
  hw::Workload compute;
  compute.name = "loop_compute";
  compute.ops[hw::OpClass::kSpFlop] = 8e9;
  compute.ops[hw::OpClass::kDramAccess] = 1e6;
  compute.compute_utilization = 0.95;
  compute.memory_utilization = 0.2;

  hw::Workload compute2;
  compute2.name = "loop_compute2";
  compute2.ops[hw::OpClass::kSpFlop] = 4e9;
  compute2.ops[hw::OpClass::kDramAccess] = 5e5;
  compute2.compute_utilization = 0.85;
  compute2.memory_utilization = 0.15;

  hw::Workload mixed;
  mixed.name = "loop_mixed";
  mixed.ops[hw::OpClass::kSpFlop] = 2e9;
  mixed.ops[hw::OpClass::kDramAccess] = 64e6;
  mixed.compute_utilization = 0.7;
  mixed.memory_utilization = 0.7;
  return {compute, compute2, mixed};
}

struct LoopOutcome {
  double static_true_j = 0;     ///< frozen seed schedule, ground truth
  double refreshed_true_j = 0;  ///< closed loop, ground truth
  double oracle_true_j = 0;     ///< per-step omniscient re-fit + DP
  double measured_j = 0;        ///< what the loop's meter integrated
  std::uint64_t refreshes = 0;
  EnergyModel final_model;
};

LoopOutcome run_thermal_ramp(int steps) {
  const auto soc = hw::Soc::tegra_k1();
  const auto grid = hw::full_grid();
  const auto phases = loop_phases();
  const hw::DvfsTransitionModel tm{100e-6, 50e-6};
  const hw::ThermalRamp ramp{
      1.0, 5.0, 4, static_cast<std::uint64_t>(steps / 2), 0.0, 7};

  ClosedLoopConfig cfg;
  cfg.online.min_observations = 8;
  cfg.online.cooldown = 8;
  ClosedLoopScheduler loop(seed_model(), soc, grid, tm, phases, cfg);
  loop.seed_anchor(campaign_train());
  // The frozen baseline: the loop's step-0 schedule, never revisited.
  const std::vector<hw::DvfsSetting> static_settings(loop.settings().begin(),
                                                     loop.settings().end());
  const PhaseSchedule static_sched = loop.schedule();

  const util::RngStream noise(2024);
  LoopOutcome out;
  for (int k = 0; k < steps; ++k) {
    const double scale = ramp.scale_at(static_cast<std::uint64_t>(k));
    const hw::Soc hot = soc.with_leakage_scale(scale);
    // Ground-truth scores of all three controllers at this thermal state.
    const PhaseGridPrediction truth = oracle_phase_grid(hot, phases, grid);
    out.static_true_j +=
        true_schedule_cost(hot, phases, truth, static_sched, tm).energy_j;
    out.refreshed_true_j +=
        true_schedule_cost(hot, phases, truth, loop.schedule(), tm).energy_j;
    out.oracle_true_j +=
        true_schedule_cost(hot, phases, truth, schedule_phases(truth, tm), tm)
            .energy_j;
    // The loop itself only sees its own noisy measurements.
    const auto rep = loop.step(scale, noise.fork(k));
    out.measured_j += rep.measured_energy_j;
  }
  out.refreshes = loop.refresh().stats().refreshes;
  out.final_model = loop.model();
  return out;
}

TEST(ClosedLoop, TracksThermalRampWhileStaticScheduleDegrades) {
  const LoopOutcome out = run_thermal_ramp(40);
  // The drift detector fired at least once over the 1.0 -> 5.0 ramp...
  EXPECT_GE(out.refreshes, 1u);
  // ...and the refreshed schedule dissipates measurably less ground-truth
  // energy than the frozen seed schedule...
  EXPECT_LT(out.refreshed_true_j, 0.99 * out.static_true_j);
  // ...while staying within a stated bound of the omniscient oracle that
  // re-fits from noiseless ground truth every step.
  EXPECT_GE(out.refreshed_true_j, out.oracle_true_j);
  EXPECT_LT(out.refreshed_true_j, 1.10 * out.oracle_true_j);
}

TEST(ClosedLoop, BitwiseDeterministicAcrossThreadCounts) {
  // The full refresh loop -- OpenMP prediction grids, measurement streams,
  // incremental Gram updates, refits -- replays bit for bit at 1, 2, and 4
  // threads: every noise draw is identity-keyed and every parallel region
  // has disjoint writes.
  const LoopOutcome base = with_threads(1, [] { return run_thermal_ramp(24); });
  for (const int threads : {2, 4}) {
    const LoopOutcome other =
        with_threads(threads, [] { return run_thermal_ramp(24); });
    EXPECT_TRUE(bit_equal(other.measured_j, base.measured_j))
        << "measured energy diverged at " << threads << " threads";
    EXPECT_TRUE(bit_equal(other.refreshed_true_j, base.refreshed_true_j));
    EXPECT_EQ(other.refreshes, base.refreshes);
    EXPECT_TRUE(models_bit_equal(other.final_model, base.final_model))
        << "refitted model diverged at " << threads << " threads";
  }
}

}  // namespace
}  // namespace eroof::model
