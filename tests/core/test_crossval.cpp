#include "core/crossval.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

#include "ubench/campaign.hpp"

namespace eroof::model {
namespace {

std::vector<FitSample> campaign_samples(hw::SettingRole* filter = nullptr) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(42);
  const auto campaign = ub::paper_campaign(soc, pm, rng);
  std::vector<FitSample> out;
  for (const auto& s : campaign)
    if (!filter || s.role == *filter) out.push_back(to_fit_sample(s.meas));
  return out;
}

TEST(CrossVal, PerfectModelValidatesWithNearZeroError) {
  EnergyModel m;
  m.c0 = {29e-12, 139e-12, 60e-12, 35e-12, 90e-12, 377e-12};
  m.c1_proc = 2.7;
  m.c1_mem = 3.8;
  m.p_misc = 0.15;
  std::vector<FitSample> test;
  util::Rng rng(1);
  for (const auto& [role, s] : hw::table1_settings()) {
    FitSample fs;
    fs.setting = s;
    fs.ops[hw::OpClass::kSpFlop] = rng.uniform(1e8, 1e9);
    fs.time_s = 0.1;
    fs.energy_j = m.predict_energy_j(fs.ops, fs.setting, fs.time_s);
    test.push_back(fs);
  }
  const ValidationReport rep = validate(m, test);
  EXPECT_LT(rep.summary.max, 1e-9);
}

TEST(CrossVal, HoldoutErrorInPaperBand) {
  // Paper Section II-D, 2-fold holdout: mean 2.87%, sd 2.47%, max 11.94%.
  // Same order on our platform substitute.
  auto train_role = hw::SettingRole::kTrain;
  auto val_role = hw::SettingRole::kValidate;
  const auto train = campaign_samples(&train_role);
  const auto val = campaign_samples(&val_role);
  const ValidationReport rep = holdout_validation(train, val);
  EXPECT_GT(rep.summary.mean, 0.5);
  EXPECT_LT(rep.summary.mean, 7.0);
  EXPECT_LT(rep.summary.max, 30.0);
  EXPECT_EQ(rep.errors_pct.size(), val.size());
}

TEST(CrossVal, KFoldCoversEverySampleOnce) {
  const auto samples = campaign_samples();
  util::Rng rng(3);
  const ValidationReport rep = kfold_validation(samples, 8, rng);
  EXPECT_EQ(rep.errors_pct.size(), samples.size());
}

TEST(CrossVal, KFoldErrorInPaperBand) {
  const auto samples = campaign_samples();
  util::Rng rng(4);
  const ValidationReport rep = kfold_validation(samples, 16, rng);
  // Paper 16-fold: mean 6.56%, sd 3.80%, max 15.22%.
  EXPECT_GT(rep.summary.mean, 0.5);
  EXPECT_LT(rep.summary.mean, 8.0);
  EXPECT_LT(rep.summary.max, 30.0);
}

TEST(CrossVal, LeaveOneSettingOutCoversAllSamples) {
  const auto samples = campaign_samples();
  const ValidationReport rep = leave_one_setting_out(samples);
  EXPECT_EQ(rep.errors_pct.size(), samples.size());
  EXPECT_GT(rep.summary.mean, 0.5);
  EXPECT_LT(rep.summary.mean, 8.0);
}

TEST(CrossVal, InvalidKThrows) {
  const auto samples = campaign_samples();
  util::Rng rng(5);
  EXPECT_THROW(kfold_validation(samples, 1, rng), util::ContractError);
}

TEST(CrossVal, SingleSettingCannotLeaveOneOut) {
  auto train_role = hw::SettingRole::kTrain;
  auto samples = campaign_samples(&train_role);
  // Keep only one setting's samples.
  std::vector<FitSample> one;
  for (const auto& s : samples)
    if (s.setting.label() == samples.front().setting.label()) one.push_back(s);
  EXPECT_THROW(leave_one_setting_out(one), util::ContractError);
}

}  // namespace
}  // namespace eroof::model
