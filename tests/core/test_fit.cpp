#include "core/fit.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

#include "ubench/campaign.hpp"
#include "util/rng.hpp"

namespace eroof::model {
namespace {

/// Synthesizes noiseless samples from a known model; the fit must recover
/// the planted constants (identifiability of eq. 9).
std::vector<FitSample> synthetic_samples(const EnergyModel& truth) {
  std::vector<FitSample> samples;
  util::Rng rng(11);
  for (const auto& [role, s] : hw::table1_settings()) {
    for (int k = 0; k < 8; ++k) {
      FitSample fs;
      fs.setting = s;
      fs.ops[hw::OpClass::kSpFlop] = rng.uniform(0, 1e9);
      fs.ops[hw::OpClass::kDpFlop] = rng.uniform(0, 2e8);
      fs.ops[hw::OpClass::kIntOp] = rng.uniform(0, 1e9);
      fs.ops[hw::OpClass::kSmAccess] = rng.uniform(0, 5e8);
      fs.ops[hw::OpClass::kL2Access] = rng.uniform(0, 3e8);
      fs.ops[hw::OpClass::kDramAccess] = rng.uniform(0, 2e8);
      fs.time_s = rng.uniform(0.05, 0.5);
      fs.energy_j = truth.predict_energy_j(fs.ops, fs.setting, fs.time_s);
      samples.push_back(fs);
    }
  }
  return samples;
}

EnergyModel planted_model() {
  EnergyModel m;
  m.c0 = {27e-12, 131e-12, 56e-12, 33e-12, 85e-12, 369e-12};
  m.c1_proc = 2.7;
  m.c1_mem = 3.8;
  m.p_misc = 0.15;
  return m;
}

TEST(Fit, RecoversPlantedConstantsFromNoiselessData) {
  const EnergyModel truth = planted_model();
  const auto samples = synthetic_samples(truth);
  const FitResult r = fit_energy_model(samples);
  ASSERT_TRUE(r.converged);
  for (std::size_t j = 0; j < kNumCoeffs; ++j)
    EXPECT_NEAR(r.model.c0[j], truth.c0[j], 1e-3 * truth.c0[j]) << "c0" << j;
  EXPECT_NEAR(r.model.c1_proc, truth.c1_proc, 1e-3 * truth.c1_proc);
  EXPECT_NEAR(r.model.c1_mem, truth.c1_mem, 1e-3 * truth.c1_mem);
  EXPECT_NEAR(r.model.p_misc, truth.p_misc, 1e-2);
  EXPECT_LT(r.residual_norm, 1e-6);
}

TEST(Fit, AllCoefficientsNonNegative) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(1);
  const auto campaign = ub::paper_campaign(soc, pm, rng);
  std::vector<FitSample> samples;
  for (const auto& s : campaign) samples.push_back(to_fit_sample(s.meas));
  const FitResult r = fit_energy_model(samples);
  ASSERT_TRUE(r.converged);
  for (double c : r.model.c0) EXPECT_GE(c, 0.0);
  EXPECT_GE(r.model.c1_proc, 0.0);
  EXPECT_GE(r.model.c1_mem, 0.0);
  EXPECT_GE(r.model.p_misc, 0.0);
}

TEST(Fit, CampaignFitLandsNearTable1Costs) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(42);
  const auto campaign = ub::paper_campaign(soc, pm, rng);
  std::vector<FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(to_fit_sample(s.meas));
  const FitResult r = fit_energy_model(train);
  ASSERT_TRUE(r.converged);

  const auto s1 = hw::setting(852, 924);
  // Paper Table I at 852/924: SP 29.0, DP 139.1, INT 60.0, SM 35.4,
  // L2 90.2, Mem 377.0 pJ, pi0 6.8 W. Allow 20% for the nonidealities
  // NNLS must absorb.
  EXPECT_NEAR(r.model.op_energy_j(hw::OpClass::kSpFlop, s1) * 1e12, 29.0,
              0.2 * 29.0);
  EXPECT_NEAR(r.model.op_energy_j(hw::OpClass::kDpFlop, s1) * 1e12, 139.1,
              0.2 * 139.1);
  EXPECT_NEAR(r.model.op_energy_j(hw::OpClass::kIntOp, s1) * 1e12, 60.0,
              0.2 * 60.0);
  EXPECT_NEAR(r.model.op_energy_j(hw::OpClass::kDramAccess, s1) * 1e12, 377.0,
              0.2 * 377.0);
  EXPECT_NEAR(r.model.constant_power_w(s1), 6.8, 0.15 * 6.8);
}

TEST(Fit, DesignRowLayout) {
  FitSample s;
  s.setting = hw::setting(852, 924);
  s.ops[hw::OpClass::kSpFlop] = 10;
  s.ops[hw::OpClass::kSmAccess] = 4;
  s.ops[hw::OpClass::kL1Access] = 6;  // folded into the SM column
  s.time_s = 2.0;
  const auto row = design_row(s);
  const double vp2 = 1.030 * 1.030;
  EXPECT_NEAR(row[0], 10 * vp2, 1e-12);
  EXPECT_NEAR(row[3], (4 + 6) * vp2, 1e-12);
  EXPECT_NEAR(row[kNumCoeffs + 0], 2.0 * 1.030, 1e-12);
  EXPECT_NEAR(row[kNumCoeffs + 1], 2.0 * 1.010, 1e-12);
  EXPECT_NEAR(row[kNumCoeffs + 2], 2.0, 1e-12);
}

TEST(Fit, TooFewSamplesThrows) {
  std::vector<FitSample> samples(3);
  EXPECT_THROW(fit_energy_model(samples), util::ContractError);
}

TEST(Fit, ToFitSampleCopiesMeasurement) {
  hw::Measurement m;
  m.setting = hw::setting(648, 528);
  m.time_s = 0.5;
  m.energy_j = 3.0;
  m.ops[hw::OpClass::kIntOp] = 7;
  const FitSample s = to_fit_sample(m);
  EXPECT_EQ(s.time_s, 0.5);
  EXPECT_EQ(s.energy_j, 3.0);
  EXPECT_EQ(s.ops[hw::OpClass::kIntOp], 7);
}

}  // namespace
}  // namespace eroof::model
