// Thread-count and iteration-order invariance of the parallel
// measurement-and-modeling pipeline: every campaign cell, CV fold, and
// autotune grid run draws from an RNG stream derived from its *identity*
// (workload name, setting label, repeat index), so results must be
// bitwise-identical under OMP_NUM_THREADS=1,2,8 and when the cell iteration
// order is reversed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/autotune.hpp"
#include "core/crossval.hpp"
#include "core/fit.hpp"
#include "hw/powermon.hpp"
#include "hw/soc.hpp"
#include "ubench/campaign.hpp"
#include "util/rng.hpp"

namespace eroof {
namespace {

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Runs `fn` with the given OpenMP thread count, restoring the old one after.
template <typename Fn>
auto with_threads(int num_threads, Fn&& fn) {
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(num_threads);
#else
  (void)num_threads;
#endif
  auto out = fn();
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
  return out;
}

std::vector<ub::BenchPoint> small_suite() {
  auto points = ub::intensity_sweep(ub::BenchClass::kSpFlops, 8e6);
  auto dram = ub::intensity_sweep(ub::BenchClass::kDram, 8e6);
  points.insert(points.end(), dram.begin(), dram.end());
  if (points.size() > 12) points.resize(12);
  return points;
}

std::vector<ub::Sample> run_small_campaign(
    const std::vector<ub::BenchPoint>& points,
    const std::vector<hw::LabeledSetting>& settings) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  return ub::run_campaign(soc, points, settings, pm, util::RngStream(42));
}

void expect_samples_bit_equal(const std::vector<ub::Sample>& a,
                              const std::vector<ub::Sample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].meas.workload, b[i].meas.workload) << i;
    EXPECT_TRUE(bit_equal(a[i].meas.time_s, b[i].meas.time_s)) << i;
    EXPECT_TRUE(bit_equal(a[i].meas.energy_j, b[i].meas.energy_j)) << i;
    EXPECT_TRUE(bit_equal(a[i].meas.avg_power_w, b[i].meas.avg_power_w)) << i;
  }
}

TEST(ParallelDeterminism, CampaignSamplesBitIdenticalAcrossThreadCounts) {
  const auto points = small_suite();
  const std::vector<hw::LabeledSetting> settings(
      hw::table1_settings().begin(), hw::table1_settings().begin() + 4);

  const auto t1 =
      with_threads(1, [&] { return run_small_campaign(points, settings); });
  ASSERT_FALSE(t1.empty());
  for (const int threads : {2, 8}) {
    const auto tn = with_threads(
        threads, [&] { return run_small_campaign(points, settings); });
    expect_samples_bit_equal(t1, tn);
  }
}

TEST(ParallelDeterminism, CampaignSamplesInvariantUnderIterationOrder) {
  const auto points = small_suite();
  const std::vector<hw::LabeledSetting> settings(
      hw::table1_settings().begin(), hw::table1_settings().begin() + 4);

  auto rev_points = points;
  std::reverse(rev_points.begin(), rev_points.end());
  auto rev_settings = settings;
  std::reverse(rev_settings.begin(), rev_settings.end());

  const auto fwd = run_small_campaign(points, settings);
  const auto rev = run_small_campaign(rev_points, rev_settings);
  ASSERT_EQ(fwd.size(), rev.size());

  // Match cells by identity (workload name, setting label): a cell's
  // measurement may not depend on where in the loop it was issued.
  const std::size_t np = points.size();
  const std::size_t ns = settings.size();
  for (std::size_t si = 0; si < ns; ++si) {
    for (std::size_t pi = 0; pi < np; ++pi) {
      const ub::Sample& f = fwd[si * np + pi];
      const ub::Sample& r = rev[(ns - 1 - si) * np + (np - 1 - pi)];
      ASSERT_EQ(f.meas.workload, r.meas.workload);
      ASSERT_EQ(f.meas.setting.label(), r.meas.setting.label());
      EXPECT_TRUE(bit_equal(f.meas.time_s, r.meas.time_s));
      EXPECT_TRUE(bit_equal(f.meas.energy_j, r.meas.energy_j));
      EXPECT_TRUE(bit_equal(f.meas.avg_power_w, r.meas.avg_power_w));
    }
  }
}

TEST(ParallelDeterminism, CrossValidationBitIdenticalAcrossThreadCounts) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  const auto campaign =
      ub::run_campaign(soc, small_suite(), hw::table1_settings(), pm,
                       util::RngStream(7));
  std::vector<model::FitSample> samples;
  samples.reserve(campaign.size());
  for (const auto& s : campaign) samples.push_back(model::to_fit_sample(s.meas));

  const auto run_cv = [&] {
    util::Rng rng(123);  // fresh per run: identical fold permutation
    const auto kf = model::kfold_validation(samples, 8, rng);
    const auto loso = model::leave_one_setting_out(samples);
    return std::make_pair(kf, loso);
  };

  const auto [kf1, loso1] = with_threads(1, run_cv);
  for (const int threads : {2, 8}) {
    const auto [kfn, loson] = with_threads(threads, run_cv);
    ASSERT_EQ(kf1.errors_pct.size(), kfn.errors_pct.size());
    for (std::size_t i = 0; i < kf1.errors_pct.size(); ++i)
      EXPECT_TRUE(bit_equal(kf1.errors_pct[i], kfn.errors_pct[i])) << i;
    EXPECT_TRUE(bit_equal(kf1.summary.mean, kfn.summary.mean));
    EXPECT_TRUE(bit_equal(kf1.summary.max, kfn.summary.max));

    ASSERT_EQ(loso1.errors_pct.size(), loson.errors_pct.size());
    for (std::size_t i = 0; i < loso1.errors_pct.size(); ++i)
      EXPECT_TRUE(bit_equal(loso1.errors_pct[i], loson.errors_pct[i])) << i;
    EXPECT_TRUE(bit_equal(loso1.summary.mean, loson.summary.mean));
    EXPECT_TRUE(bit_equal(loso1.summary.max, loson.summary.max));
  }
}

TEST(ParallelDeterminism, TuneOutcomeBitIdenticalAcrossThreadCounts) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;

  hw::Workload w;
  w.name = "pd_tune";
  w.ops[hw::OpClass::kSpFlop] = 1e9;
  w.ops[hw::OpClass::kDramAccess] = 64e6;
  const auto grid = hw::full_grid();

  const auto campaign = ub::run_campaign(
      soc, small_suite(), hw::table1_settings(), pm, util::RngStream(11));
  std::vector<model::FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(model::to_fit_sample(s.meas));
  const auto m = model::fit_energy_model(train).model;

  const auto tune_once = [&] {
    const auto ms =
        model::measure_grid(soc, w, grid, pm, util::RngStream(17), 3);
    return model::autotune(m, ms);
  };

  const auto t1 = with_threads(1, tune_once);
  for (const int threads : {2, 8}) {
    const auto tn = with_threads(threads, tune_once);
    EXPECT_EQ(t1.model_idx, tn.model_idx);
    EXPECT_EQ(t1.oracle_idx, tn.oracle_idx);
    EXPECT_EQ(t1.best_idx, tn.best_idx);
    EXPECT_TRUE(bit_equal(t1.model_lost_pct, tn.model_lost_pct));
    EXPECT_TRUE(bit_equal(t1.oracle_lost_pct, tn.oracle_lost_pct));
  }
}

TEST(ParallelDeterminism, MeasureGridInvariantUnderGridOrder) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  hw::Workload w;
  w.name = "pd_grid_order";
  w.ops[hw::OpClass::kDramAccess] = 128e6;

  auto grid = hw::full_grid();
  auto rev_grid = grid;
  std::reverse(rev_grid.begin(), rev_grid.end());

  const auto fwd = model::measure_grid(soc, w, grid, pm, util::RngStream(5), 2);
  const auto rev =
      model::measure_grid(soc, w, rev_grid, pm, util::RngStream(5), 2);
  ASSERT_EQ(fwd.size(), rev.size());
  const std::size_t n = fwd.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& f = fwd[i];
    const auto& r = rev[n - 1 - i];
    ASSERT_EQ(f.setting.label(), r.setting.label());
    EXPECT_TRUE(bit_equal(f.time_s, r.time_s)) << i;
    EXPECT_TRUE(bit_equal(f.energy_j, r.energy_j)) << i;
    EXPECT_TRUE(bit_equal(f.avg_power_w, r.avg_power_w)) << i;
  }
}

TEST(ParallelDeterminism, LegacyRngEntryPointsStillReplayFromSeed) {
  // The Rng& shims draw one root value and forward; two runs from the same
  // seed must still agree exactly.
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  const auto points = small_suite();
  const std::vector<hw::LabeledSetting> settings(
      hw::table1_settings().begin(), hw::table1_settings().begin() + 2);
  const auto run_once = [&] {
    util::Rng rng(99);
    return ub::run_campaign(soc, points, settings, pm, rng);
  };
  expect_samples_bit_equal(run_once(), run_once());
}

}  // namespace
}  // namespace eroof
