#include "core/profile.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace eroof::model {
namespace {

EnergyModel sample_model() {
  EnergyModel m;
  m.c0 = {29e-12, 139e-12, 60e-12, 35e-12, 90e-12, 377e-12};
  m.c1_proc = 2.7;
  m.c1_mem = 3.8;
  m.p_misc = 0.15;
  return m;
}

TEST(Profile, BreakdownPartitionsTotalEnergy) {
  const EnergyModel m = sample_model();
  const auto s = hw::setting(852, 924);
  hw::OpCounts ops;
  ops[hw::OpClass::kSpFlop] = 1e9;
  ops[hw::OpClass::kIntOp] = 2e9;
  ops[hw::OpClass::kSmAccess] = 5e8;
  ops[hw::OpClass::kDramAccess] = 1e8;
  const EnergyBreakdown b = breakdown(m, ops, s, 0.5);
  EXPECT_NEAR(b.total_j(), m.predict_energy_j(ops, s, 0.5), 1e-12);
  EXPECT_NEAR(b.total_j(), b.computation_j() + b.data_j() + b.constant_j,
              1e-12);
}

TEST(Profile, ComputationIncludesExactlyTheInstructionClasses) {
  const EnergyModel m = sample_model();
  const auto s = hw::setting(648, 528);
  hw::OpCounts ops;
  ops[hw::OpClass::kSpFlop] = 1e6;
  ops[hw::OpClass::kDpFlop] = 1e6;
  ops[hw::OpClass::kIntOp] = 1e6;
  const EnergyBreakdown b = breakdown(m, ops, s, 0.1);
  EXPECT_GT(b.computation_j(), 0);
  EXPECT_DOUBLE_EQ(b.data_j(), 0);
}

TEST(Profile, DataIncludesAllMemoryLevels) {
  const EnergyModel m = sample_model();
  const auto s = hw::setting(648, 528);
  hw::OpCounts ops;
  ops[hw::OpClass::kSmAccess] = 1e6;
  ops[hw::OpClass::kL1Access] = 1e6;
  ops[hw::OpClass::kL2Access] = 1e6;
  ops[hw::OpClass::kDramAccess] = 1e6;
  const EnergyBreakdown b = breakdown(m, ops, s, 0.1);
  EXPECT_DOUBLE_EQ(b.computation_j(), 0);
  double sum = 0;
  for (std::size_t i = 3; i < hw::kNumOpClasses; ++i) sum += b.op_energy_j[i];
  EXPECT_NEAR(b.data_j(), sum, 1e-15);
}

TEST(Profile, DramCostsMostPerWord) {
  const EnergyModel m = sample_model();
  const auto s = hw::setting(852, 924);
  hw::OpCounts ops;
  for (std::size_t i = 3; i < hw::kNumOpClasses; ++i) ops.n[i] = 1e6;
  const EnergyBreakdown b = breakdown(m, ops, s, 0.1);
  const auto dram = static_cast<std::size_t>(hw::OpClass::kDramAccess);
  for (std::size_t i = 3; i < dram; ++i)
    EXPECT_GT(b.op_energy_j[dram], b.op_energy_j[i]);
}

TEST(Profile, AggregateSumsCountsAndTimes) {
  PhaseProfile a;
  a.name = "U";
  a.ops[hw::OpClass::kSpFlop] = 10;
  a.time_s = 0.5;
  PhaseProfile b;
  b.name = "V";
  b.ops[hw::OpClass::kSpFlop] = 5;
  b.ops[hw::OpClass::kDramAccess] = 7;
  b.time_s = 0.25;
  const PhaseProfile total = aggregate({a, b}, "all");
  EXPECT_EQ(total.name, "all");
  EXPECT_DOUBLE_EQ(total.ops[hw::OpClass::kSpFlop], 15);
  EXPECT_DOUBLE_EQ(total.ops[hw::OpClass::kDramAccess], 7);
  EXPECT_DOUBLE_EQ(total.time_s, 0.75);
}

TEST(Profile, ZeroTimeThrows) {
  const EnergyModel m = sample_model();
  const hw::OpCounts ops;
  EXPECT_THROW(breakdown(m, ops, hw::setting(852, 924), 0.0),
               util::ContractError);
}

}  // namespace
}  // namespace eroof::model
