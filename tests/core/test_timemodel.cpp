#include "core/timemodel.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "util/stats.hpp"

#include "ubench/campaign.hpp"

namespace eroof::model {
namespace {

struct Fitted {
  hw::Soc soc = hw::Soc::tegra_k1();
  hw::PowerMon pm;
  std::vector<FitSample> samples;
  TimeModel time;
  EnergyModel energy;
};

const Fitted& fitted() {
  static const Fitted f = [] {
    Fitted out;
    util::Rng rng(42);
    const auto campaign = ub::paper_campaign(out.soc, out.pm, rng);
    std::vector<FitSample> train;
    for (const auto& s : campaign) {
      out.samples.push_back(to_fit_sample(s.meas));
      if (s.role == hw::SettingRole::kTrain)
        train.push_back(out.samples.back());
    }
    out.time = fit_time_model(out.samples).model;
    out.energy = fit_energy_model(train).model;
    return out;
  }();
  return f;
}

TEST(TimeModel, FitConverges) {
  const auto r = fit_time_model(fitted().samples);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 20);
}

TEST(TimeModel, CoefficientsAreNonNegative) {
  const TimeModel& m = fitted().time;
  for (double c : m.core_cycles_per_op) EXPECT_GE(c, 0.0);
  EXPECT_GT(m.mem_cycles_per_word, 0.0);
}

TEST(TimeModel, DramRateNearTheMachine) {
  // Ground truth: 4 words per memory cycle at ~90% utilization, so the
  // effective cycles-per-word should land near 1/(4 * 0.9) ~ 0.28.
  EXPECT_NEAR(fitted().time.mem_cycles_per_word, 0.28, 0.12);
}

TEST(TimeModel, PredictsCampaignTimesWithin20Percent) {
  const auto& f = fitted();
  std::vector<double> errors;
  for (const auto& s : f.samples)
    errors.push_back(util::relative_error_pct(
        f.time.predict_time_s(s.ops, s.setting), s.time_s));
  const auto sum = util::summarize(errors);
  EXPECT_LT(sum.mean, 20.0);
}

TEST(TimeModel, ComputeBoundTimeScalesWithCoreClock) {
  const TimeModel& m = fitted().time;
  hw::OpCounts ops;
  ops[hw::OpClass::kSpFlop] = 1e10;
  ops[hw::OpClass::kDramAccess] = 1e5;
  const double hi = m.predict_time_s(ops, hw::setting(852, 924));
  const double lo = m.predict_time_s(ops, hw::setting(396, 924));
  EXPECT_NEAR(lo / hi, 852.0 / 396.0, 0.01);
}

TEST(TimeModel, MemoryBoundTimeScalesWithMemClock) {
  const TimeModel& m = fitted().time;
  hw::OpCounts ops;
  ops[hw::OpClass::kDramAccess] = 1e9;
  const double hi = m.predict_time_s(ops, hw::setting(852, 924));
  const double lo = m.predict_time_s(ops, hw::setting(852, 204));
  EXPECT_NEAR(lo / hi, 924.0 / 204.0, 0.01);
}

TEST(TimeModel, PredictiveTuningNearMeasuredOptimum) {
  // End-to-end: pick a setting purely from predictions, then check its
  // *true* energy is close to the grid's true minimum.
  const auto& f = fitted();
  const auto grid = hw::full_grid();

  hw::Workload w;
  w.name = "pred_tune";
  w.ops[hw::OpClass::kSpFlop] = 2e9;
  w.ops[hw::OpClass::kDramAccess] = 3e8;
  w.compute_utilization = 0.95;
  w.memory_utilization = 0.9;

  const std::size_t pick =
      predict_best_setting(f.energy, f.time, w.ops, grid);

  double best_e = 1e300;
  for (const auto& s : grid) {
    const double t = f.soc.execution_time(w, s);
    best_e = std::min(best_e, f.soc.true_energy_j(w, s, t));
  }
  const double t_pick = f.soc.execution_time(w, grid[pick]);
  const double e_pick = f.soc.true_energy_j(w, grid[pick], t_pick);
  EXPECT_LT(e_pick, 1.10 * best_e)
      << "predictive pick " << grid[pick].label() << " loses too much";
}

TEST(TimeModel, TooFewSamplesThrows) {
  std::vector<FitSample> few(4);
  EXPECT_THROW(fit_time_model(few), util::ContractError);
}

}  // namespace
}  // namespace eroof::model
