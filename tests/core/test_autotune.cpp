#include "core/autotune.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/fit.hpp"
#include "ubench/campaign.hpp"

namespace eroof::model {
namespace {

EnergyModel fitted_model() {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(42);
  const auto campaign = ub::paper_campaign(soc, pm, rng);
  std::vector<FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(to_fit_sample(s.meas));
  return fit_energy_model(train).model;
}

TEST(Autotune, GridMeasurementCoversAllSettings) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(1);
  hw::Workload w;
  w.name = "at_test";
  w.ops[hw::OpClass::kSpFlop] = 1e9;
  w.ops[hw::OpClass::kDramAccess] = 64e6;
  const auto grid = hw::full_grid();
  const auto ms = measure_grid(soc, w, grid, pm, rng);
  EXPECT_EQ(ms.size(), 105u);
}

TEST(Autotune, BestIndexIsTheMeasuredArgmin) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(2);
  hw::Workload w;
  w.name = "at_argmin";
  w.ops[hw::OpClass::kDramAccess] = 256e6;
  const auto grid = hw::full_grid();
  const auto ms = measure_grid(soc, w, grid, pm, rng);
  const TuneOutcome out = autotune(fitted_model(), ms);
  for (const auto& m : ms)
    EXPECT_GE(m.energy_j, ms[out.best_idx].energy_j);
  EXPECT_DOUBLE_EQ(out.model_lost_pct >= 0, true);
}

TEST(Autotune, MemoryBoundWorkloadShouldNotRaceCoreClock) {
  // For a pure-DRAM stream the core clock only adds voltage cost; the model
  // must pick a low core frequency, and it must beat the time oracle
  // (which race-to-halts to the highest clocks).
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(3);
  hw::Workload w;
  w.name = "at_membound";
  w.ops[hw::OpClass::kDramAccess] = 512e6;
  w.ops[hw::OpClass::kIntOp] = 1e6;
  const auto grid = hw::full_grid();
  const auto ms = measure_grid(soc, w, grid, pm, rng);
  const TuneOutcome out = autotune(fitted_model(), ms);

  EXPECT_LT(ms[out.model_idx].setting.core.freq_mhz, 400);
  EXPECT_LE(out.model_lost_pct, out.oracle_lost_pct + 1e-9);
}

TEST(Autotune, ComputeBoundWorkloadShouldNotRaceMemClock) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(4);
  hw::Workload w;
  w.name = "at_compbound";
  w.ops[hw::OpClass::kSpFlop] = 6e10;
  w.ops[hw::OpClass::kDramAccess] = 1e6;
  const auto grid = hw::full_grid();
  const auto ms = measure_grid(soc, w, grid, pm, rng);
  const TuneOutcome out = autotune(fitted_model(), ms);
  // The memory ladder's low rungs cost least here.
  EXPECT_LT(ms[out.model_idx].setting.mem.freq_mhz, 500);
}

TEST(Autotune, LostPctZeroWhenChoiceIsBest) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(5);
  hw::Workload w;
  w.name = "at_zero";
  w.ops[hw::OpClass::kL2Access] = 4e8;
  const auto grid = hw::full_grid();
  const auto ms = measure_grid(soc, w, grid, pm, rng);
  const TuneOutcome out = autotune(fitted_model(), ms);
  if (out.model_correct) {
    EXPECT_LE(out.model_lost_pct, 0.5);
  }
  if (out.oracle_correct) {
    EXPECT_LE(out.oracle_lost_pct, 0.5);
  }
}

TEST(Autotune, EmptyGridThrows) {
  const std::vector<hw::Measurement> empty;
  EXPECT_THROW(autotune(fitted_model(), empty), util::ContractError);
}

TEST(Autotune, SingleCandidateGridIsDegenerateButFinite) {
  // With one candidate every strategy picks it; lost percentages must be
  // exactly zero even when the lone measured energy is zero (the guard
  // against a degenerate best_energy denominator).
  hw::Measurement only;
  only.setting = hw::setting(396, 528);
  only.time_s = 1.0;
  only.energy_j = 0.0;  // degenerate: division by best_energy would be 0/0
  EnergyModel m;
  m.c0 = {29e-12, 139e-12, 60e-12, 35e-12, 90e-12, 377e-12};
  m.c1_proc = 2.7;
  m.c1_mem = 3.8;
  const std::vector<hw::Measurement> grid{only};
  const TuneOutcome out = autotune(m, grid);
  EXPECT_EQ(out.model_idx, 0u);
  EXPECT_EQ(out.oracle_idx, 0u);
  EXPECT_EQ(out.best_idx, 0u);
  EXPECT_EQ(out.model_lost_pct, 0.0);
  EXPECT_EQ(out.oracle_lost_pct, 0.0);
  EXPECT_TRUE(out.model_correct);
  EXPECT_TRUE(out.oracle_correct);
}

TEST(Autotune, OracleTieBreakPrefersHigherClocks) {
  // Two measurements with identical time: the oracle must take the higher
  // core frequency (race-to-halt convention).
  hw::Measurement a;
  a.setting = hw::setting(396, 528);
  a.time_s = 1.0;
  a.energy_j = 5.0;
  hw::Measurement b;
  b.setting = hw::setting(852, 528);
  b.time_s = 1.0;
  b.energy_j = 7.0;
  EnergyModel m;
  m.c0 = {29e-12, 139e-12, 60e-12, 35e-12, 90e-12, 377e-12};
  m.c1_proc = 2.7;
  m.c1_mem = 3.8;
  const std::vector<hw::Measurement> grid{a, b};
  const TuneOutcome out = autotune(m, grid);
  EXPECT_EQ(out.oracle_idx, 1u);  // 852 MHz despite equal time
  EXPECT_EQ(out.best_idx, 0u);    // but 396 MHz measured cheaper
  EXPECT_FALSE(out.oracle_correct);
}

}  // namespace
}  // namespace eroof::model
