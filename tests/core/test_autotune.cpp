#include "core/autotune.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/fit.hpp"
#include "ubench/campaign.hpp"

namespace eroof::model {
namespace {

EnergyModel fitted_model() {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(42);
  const auto campaign = ub::paper_campaign(soc, pm, rng);
  std::vector<FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(to_fit_sample(s.meas));
  return fit_energy_model(train).model;
}

TEST(Autotune, GridMeasurementCoversAllSettings) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(1);
  hw::Workload w;
  w.name = "at_test";
  w.ops[hw::OpClass::kSpFlop] = 1e9;
  w.ops[hw::OpClass::kDramAccess] = 64e6;
  const auto grid = hw::full_grid();
  const auto ms = measure_grid(soc, w, grid, pm, rng);
  EXPECT_EQ(ms.size(), 105u);
}

TEST(Autotune, BestIndexIsTheMeasuredArgmin) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(2);
  hw::Workload w;
  w.name = "at_argmin";
  w.ops[hw::OpClass::kDramAccess] = 256e6;
  const auto grid = hw::full_grid();
  const auto ms = measure_grid(soc, w, grid, pm, rng);
  const TuneOutcome out = autotune(fitted_model(), ms);
  for (const auto& m : ms)
    EXPECT_GE(m.energy_j, ms[out.best_idx].energy_j);
  EXPECT_DOUBLE_EQ(out.model_lost_pct >= 0, true);
}

TEST(Autotune, MemoryBoundWorkloadShouldNotRaceCoreClock) {
  // For a pure-DRAM stream the core clock only adds voltage cost; the model
  // must pick a low core frequency, and it must beat the time oracle
  // (which race-to-halts to the highest clocks).
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(3);
  hw::Workload w;
  w.name = "at_membound";
  w.ops[hw::OpClass::kDramAccess] = 512e6;
  w.ops[hw::OpClass::kIntOp] = 1e6;
  const auto grid = hw::full_grid();
  const auto ms = measure_grid(soc, w, grid, pm, rng);
  const TuneOutcome out = autotune(fitted_model(), ms);

  EXPECT_LT(ms[out.model_idx].setting.core.freq_mhz, 400);
  EXPECT_LE(out.model_lost_pct, out.oracle_lost_pct + 1e-9);
}

TEST(Autotune, ComputeBoundWorkloadShouldNotRaceMemClock) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(4);
  hw::Workload w;
  w.name = "at_compbound";
  w.ops[hw::OpClass::kSpFlop] = 6e10;
  w.ops[hw::OpClass::kDramAccess] = 1e6;
  const auto grid = hw::full_grid();
  const auto ms = measure_grid(soc, w, grid, pm, rng);
  const TuneOutcome out = autotune(fitted_model(), ms);
  // The memory ladder's low rungs cost least here.
  EXPECT_LT(ms[out.model_idx].setting.mem.freq_mhz, 500);
}

TEST(Autotune, LostPctZeroWhenChoiceIsBest) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(5);
  hw::Workload w;
  w.name = "at_zero";
  w.ops[hw::OpClass::kL2Access] = 4e8;
  const auto grid = hw::full_grid();
  const auto ms = measure_grid(soc, w, grid, pm, rng);
  const TuneOutcome out = autotune(fitted_model(), ms);
  if (out.model_correct) {
    EXPECT_LE(out.model_lost_pct, 0.5);
  }
  if (out.oracle_correct) {
    EXPECT_LE(out.oracle_lost_pct, 0.5);
  }
}

TEST(Autotune, EmptyGridThrows) {
  const std::vector<hw::Measurement> empty;
  EXPECT_THROW(autotune(fitted_model(), empty), util::ContractError);
}

TEST(Autotune, SingleCandidateGridIsDegenerateButFinite) {
  // With one candidate every strategy picks it; lost percentages must be
  // exactly zero even when the lone measured energy is zero (the guard
  // against a degenerate best_energy denominator).
  hw::Measurement only;
  only.setting = hw::setting(396, 528);
  only.time_s = 1.0;
  only.energy_j = 0.0;  // degenerate: division by best_energy would be 0/0
  EnergyModel m;
  m.c0 = {29e-12, 139e-12, 60e-12, 35e-12, 90e-12, 377e-12};
  m.c1_proc = 2.7;
  m.c1_mem = 3.8;
  const std::vector<hw::Measurement> grid{only};
  const TuneOutcome out = autotune(m, grid);
  EXPECT_EQ(out.model_idx, 0u);
  EXPECT_EQ(out.oracle_idx, 0u);
  EXPECT_EQ(out.best_idx, 0u);
  EXPECT_EQ(out.model_lost_pct, 0.0);
  EXPECT_EQ(out.oracle_lost_pct, 0.0);
  EXPECT_TRUE(out.model_correct);
  EXPECT_TRUE(out.oracle_correct);
}

TEST(Autotune, OracleTieBreakPrefersHigherClocks) {
  // Two measurements with identical time: the oracle must take the higher
  // core frequency (race-to-halt convention).
  hw::Measurement a;
  a.setting = hw::setting(396, 528);
  a.time_s = 1.0;
  a.energy_j = 5.0;
  hw::Measurement b;
  b.setting = hw::setting(852, 528);
  b.time_s = 1.0;
  b.energy_j = 7.0;
  EnergyModel m;
  m.c0 = {29e-12, 139e-12, 60e-12, 35e-12, 90e-12, 377e-12};
  m.c1_proc = 2.7;
  m.c1_mem = 3.8;
  const std::vector<hw::Measurement> grid{a, b};
  const TuneOutcome out = autotune(m, grid);
  EXPECT_EQ(out.oracle_idx, 1u);  // 852 MHz despite equal time
  EXPECT_EQ(out.best_idx, 0u);    // but 396 MHz measured cheaper
  EXPECT_FALSE(out.oracle_correct);
}

hw::Soc jittery_soc() {
  // Tegra-K1-like physics with strongly heteroscedastic run-to-run noise:
  // each repeat of a setting draws a different timing/thermal jitter, so the
  // per-run power ratios e_r / t_r scatter. Averaging those ratios (the
  // pre-fix mean-of-ratios) drifts from summed-energy-over-summed-time.
  hw::GroundTruthEnergy truth;
  truth.k_dyn_pj = {27.3, 131.1, 56.6, 33.4, 40.0, 85.0, 369.6};
  truth.c1_proc_w_per_v = 2.7;
  truth.c1_mem_w_per_v = 3.8;
  truth.p_misc_w = 0.15;
  truth.thermal_jitter = 0.10;
  truth.timing_jitter = 0.20;
  return hw::Soc(truth, hw::MachineRates{});
}

TEST(Autotune, AveragedPowerIsSummedEnergyOverSummedTime) {
  // Regression: measure_grid used to average the per-run power ratios, so
  // the folded Measurement violated energy_j ~= avg_power_w * time_s as soon
  // as repeats were noisy. The averaged triple must stay self-consistent.
  const auto soc = jittery_soc();
  const hw::PowerMon pm;
  hw::Workload w;
  w.name = "at_avgpower";
  w.ops[hw::OpClass::kSpFlop] = 2e9;
  w.ops[hw::OpClass::kDramAccess] = 64e6;
  const std::vector<hw::DvfsSetting> grid = {
      hw::setting(72, 68), hw::setting(396, 528), hw::setting(852, 924)};
  const auto ms =
      measure_grid(soc, w, grid, pm, util::RngStream(11), /*repeats=*/6);
  ASSERT_EQ(ms.size(), grid.size());
  for (const auto& m : ms) {
    ASSERT_GT(m.time_s, 0.0);
    EXPECT_NEAR(m.avg_power_w * m.time_s, m.energy_j, 1e-12 * m.energy_j)
        << m.setting.label();
  }
}

TEST(Autotune, OracleTieBreakToleratesMeasurementNoise) {
  // Regression: the race-to-halt tie-break compared measured times with
  // exact ==, which never fires under noise. A candidate within the relative
  // tolerance of the fastest must count as tied, and the tie must go to the
  // higher clocks. 68 and 204 MHz memory share 800 mV, so the hotter pick
  // costs the same physical energy (oracle_correct must hold).
  hw::Measurement slow_low;
  slow_low.setting = hw::setting(852, 68);
  slow_low.time_s = 1.0;  // measured fastest by a hair
  slow_low.energy_j = 5.0;
  hw::Measurement fast_high;
  fast_high.setting = hw::setting(852, 204);
  fast_high.time_s = 1.0004;  // within the 0.5% tie tolerance
  fast_high.energy_j = 5.002;  // same voltage; split only by meter noise
  EnergyModel m;
  m.c0 = {29e-12, 139e-12, 60e-12, 35e-12, 90e-12, 377e-12};
  m.c1_proc = 2.7;
  m.c1_mem = 3.8;
  const std::vector<hw::Measurement> grid{slow_low, fast_high};
  const TuneOutcome out = autotune(m, grid);
  EXPECT_EQ(out.oracle_idx, 1u);  // 852/204 despite not being the strict min
  EXPECT_EQ(out.best_idx, 0u);
  EXPECT_TRUE(out.oracle_correct);  // 0.04% off the minimum: a physical tie
  EXPECT_LT(out.oracle_lost_pct, 0.5);
}

TEST(Autotune, ExactEnergyTiesAcrossSharedVoltageCountAsCorrect) {
  // Two settings at identical voltages tie in *physical* energy; only meter
  // noise separates their measurements. Whichever the model picks must score
  // as correct with a sub-tolerance loss.
  hw::Measurement a;  // listed first so equal predictions pick this index
  a.setting = hw::setting(852, 204);
  a.time_s = 1.0;
  a.energy_j = 5.0001;  // noise puts it a hair above the "best"
  hw::Measurement b;
  b.setting = hw::setting(852, 68);
  b.time_s = 1.0;
  b.energy_j = 5.0;
  EnergyModel m;
  m.c0 = {};  // no per-op terms: prediction is pure constant power x time
  m.c1_proc = 2.7;
  m.c1_mem = 3.8;
  const std::vector<hw::Measurement> grid{a, b};
  const TuneOutcome out = autotune(m, grid);
  // Equal voltages + equal times -> exactly tied predictions -> first index.
  EXPECT_EQ(out.model_idx, 0u);
  EXPECT_EQ(out.best_idx, 1u);
  EXPECT_TRUE(out.model_correct);
  EXPECT_LT(out.model_lost_pct, 0.5);
  EXPECT_GT(out.model_lost_pct, 0.0);
}

TEST(Autotune, ChoicesInvariantUnderGridPermutation) {
  // The tuned *settings* (not indices) must not depend on the order the grid
  // was measured in: both tie-breaks resolve by setting identity, never by
  // position among equals.
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  hw::Workload w;
  w.name = "at_perm";
  w.ops[hw::OpClass::kSpFlop] = 1e9;
  w.ops[hw::OpClass::kDramAccess] = 128e6;
  w.compute_utilization = 0.8;
  w.memory_utilization = 0.9;
  const auto grid = hw::full_grid();
  const auto ms = measure_grid(soc, w, grid, pm, util::RngStream(13));
  std::vector<hw::Measurement> reversed(ms.rbegin(), ms.rend());

  const auto& m = fitted_model();
  const TuneOutcome fwd = autotune(m, ms);
  const TuneOutcome rev = autotune(m, reversed);
  EXPECT_EQ(ms[fwd.model_idx].setting.label(),
            reversed[rev.model_idx].setting.label());
  EXPECT_EQ(ms[fwd.oracle_idx].setting.label(),
            reversed[rev.oracle_idx].setting.label());
  EXPECT_EQ(ms[fwd.best_idx].setting.label(),
            reversed[rev.best_idx].setting.label());
  EXPECT_EQ(fwd.model_correct, rev.model_correct);
  EXPECT_EQ(fwd.oracle_correct, rev.oracle_correct);
  EXPECT_DOUBLE_EQ(fwd.model_lost_pct, rev.model_lost_pct);
  EXPECT_DOUBLE_EQ(fwd.oracle_lost_pct, rev.oracle_lost_pct);
}

}  // namespace
}  // namespace eroof::model
