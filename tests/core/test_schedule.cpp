// Per-phase DVFS scheduler (core/schedule): prediction-grid fidelity, exact
// DP vs exhaustive search, transition-cost monotonicity (infinite switch
// cost must collapse onto the uniform best), bitwise determinism across
// OpenMP thread counts, and the ground-truth win over uniform/race-to-halt
// on a real KIFMM profile.
#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/fit.hpp"
#include "fmm/evaluator.hpp"
#include "fmm/gpu_profile.hpp"
#include "fmm/kernel.hpp"
#include "fmm/pointgen.hpp"
#include "ubench/campaign.hpp"
#include "util/require.hpp"

namespace eroof::model {
namespace {

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

template <typename Fn>
auto with_threads(int num_threads, Fn&& fn) {
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(num_threads);
#else
  (void)num_threads;
#endif
  auto out = fn();
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
  return out;
}

const EnergyModel& fitted_model() {
  static const EnergyModel m = [] {
    const auto soc = hw::Soc::tegra_k1();
    const hw::PowerMon pm;
    const auto campaign = ub::paper_campaign(soc, pm, util::RngStream(42));
    std::vector<FitSample> train;
    for (const auto& s : campaign)
      if (s.role == hw::SettingRole::kTrain)
        train.push_back(to_fit_sample(s.meas));
    return fit_energy_model(train).model;
  }();
  return m;
}

// A deliberately heterogeneous phase chain: one compute-bound, one
// memory-bound, one mixed phase, so the per-phase optimum genuinely differs
// from any uniform setting.
std::vector<hw::Workload> synthetic_phases() {
  hw::Workload compute;
  compute.name = "sched_compute";
  compute.ops[hw::OpClass::kSpFlop] = 8e9;
  compute.ops[hw::OpClass::kDramAccess] = 1e6;
  compute.compute_utilization = 0.9;
  compute.memory_utilization = 0.2;

  hw::Workload stream;
  stream.name = "sched_stream";
  stream.ops[hw::OpClass::kDramAccess] = 256e6;
  stream.ops[hw::OpClass::kIntOp] = 4e6;
  stream.compute_utilization = 0.2;
  stream.memory_utilization = 0.9;

  hw::Workload mixed;
  mixed.name = "sched_mixed";
  mixed.ops[hw::OpClass::kSpFlop] = 2e9;
  mixed.ops[hw::OpClass::kDramAccess] = 64e6;
  mixed.compute_utilization = 0.7;
  mixed.memory_utilization = 0.7;
  return {compute, stream, mixed};
}

std::vector<hw::Workload> kifmm_phases(std::size_t n, std::uint32_t q) {
  static const fmm::LaplaceKernel kernel;
  util::Rng rng(1000 + n + q);
  const auto pts = fmm::uniform_cube(n, rng);
  fmm::FmmEvaluator ev(
      kernel, pts,
      {.max_points_per_box = q,
       .uniform_depth = fmm::Octree::uniform_depth_for(n, q)},
      fmm::FmmConfig{.p = 4});
  const auto prof = fmm::profile_gpu_execution(ev);
  std::vector<hw::Workload> phases;
  for (const auto& ph : prof.phases) phases.push_back(ph.workload);
  return phases;
}

// The scheduler's chain objective, recomputed from first principles via the
// public transition-model API -- the reference for the exhaustive search.
double assignment_cost(const PhaseGridPrediction& pred,
                       const hw::DvfsTransitionModel& tm,
                       const std::vector<std::size_t>& pick,
                       double time_weight) {
  double cost = 0;
  for (std::size_t p = 0; p < pick.size(); ++p) {
    cost += pred.energy_at(p, pick[p]) + time_weight * pred.time_at(p, pick[p]);
    if (p == 0) continue;
    const auto& from = pred.grid[pick[p - 1]];
    const auto& to = pred.grid[pick[p]];
    cost += tm.switch_energy_j(from, to) +
            tm.stall_s(from, to) *
                (pred.const_power_w[pick[p]] + time_weight);
  }
  return cost;
}

TEST(Schedule, PredictionMatchesSocTimingAndModelEnergy) {
  const auto soc = hw::Soc::tegra_k1();
  const auto phases = synthetic_phases();
  const auto grid = hw::full_grid();
  const auto& m = fitted_model();
  const auto pred = predict_phase_grid(m, soc, phases, grid);

  ASSERT_EQ(pred.n_phases(), phases.size());
  ASSERT_EQ(pred.n_settings(), grid.size());
  ASSERT_EQ(pred.time_s.size(), phases.size() * grid.size());
  for (std::size_t p = 0; p < phases.size(); ++p)
    for (std::size_t s = 0; s < grid.size(); ++s) {
      const double t = soc.execution_time(phases[p], grid[s]);
      EXPECT_TRUE(bit_equal(pred.time_at(p, s), t)) << p << "," << s;
      EXPECT_TRUE(bit_equal(pred.energy_at(p, s),
                            m.predict_energy_j(phases[p].ops, grid[s], t)))
          << p << "," << s;
    }
  for (std::size_t s = 0; s < grid.size(); ++s)
    EXPECT_TRUE(bit_equal(pred.const_power_w[s], m.constant_power_w(grid[s])));
}

TEST(Schedule, ZeroCostScheduleTakesEachPhaseArgmin) {
  const auto soc = hw::Soc::tegra_k1();
  const auto pred =
      predict_phase_grid(fitted_model(), soc, synthetic_phases(),
                         hw::full_grid());
  const auto sched = schedule_phases(pred, hw::DvfsTransitionModel{});
  ASSERT_EQ(sched.pick.size(), pred.n_phases());
  for (std::size_t p = 0; p < pred.n_phases(); ++p)
    for (std::size_t s = 0; s < pred.n_settings(); ++s)
      EXPECT_LE(pred.energy_at(p, sched.pick[p]), pred.energy_at(p, s));
}

TEST(Schedule, InfiniteSwitchCostCollapsesToUniformBest) {
  const auto soc = hw::Soc::tegra_k1();
  const auto pred =
      predict_phase_grid(fitted_model(), soc, synthetic_phases(),
                         hw::full_grid());
  const auto uniform = best_uniform_schedule(pred);
  // A switch energy far above any total workload energy makes every
  // transition a loss; the DP must return the uniform best, exactly.
  const hw::DvfsTransitionModel prohibitive{100e-6, 1e6};
  const auto sched = schedule_phases(pred, prohibitive);
  EXPECT_EQ(sched.pick, uniform.pick);
  EXPECT_EQ(sched.switches, 0);
  EXPECT_TRUE(bit_equal(sched.pred_energy_j, uniform.pred_energy_j));
  EXPECT_TRUE(bit_equal(sched.pred_time_s, uniform.pred_time_s));
}

TEST(Schedule, EnergyDegradesMonotonicallyAsSwitchCostGrows) {
  const auto soc = hw::Soc::tegra_k1();
  const auto pred =
      predict_phase_grid(fitted_model(), soc, synthetic_phases(),
                         hw::full_grid());
  const auto uniform = best_uniform_schedule(pred);
  double prev = -std::numeric_limits<double>::infinity();
  int prev_switches = std::numeric_limits<int>::max();
  for (const double ej : {0.0, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e3}) {
    const auto s = schedule_phases(pred, hw::DvfsTransitionModel{100e-6, ej});
    // The optimum of a pointwise-increasing objective family is
    // non-decreasing; switching can only get less attractive.
    EXPECT_GE(s.pred_energy_j, prev - 1e-15);
    EXPECT_LE(s.pred_energy_j, uniform.pred_energy_j + 1e-15);
    EXPECT_LE(s.switches, prev_switches);
    prev = s.pred_energy_j;
    prev_switches = s.switches;
  }
  const auto last = schedule_phases(pred, hw::DvfsTransitionModel{100e-6, 1e3});
  EXPECT_EQ(last.pick, uniform.pick);
}

TEST(Schedule, DpMatchesExhaustiveSearchOnReducedGrid) {
  const auto soc = hw::Soc::tegra_k1();
  // 3 phases x 6 settings = 216 assignments: small enough to enumerate.
  const std::vector<hw::DvfsSetting> reduced = {
      hw::setting(72, 68),   hw::setting(396, 204), hw::setting(396, 924),
      hw::setting(612, 528), hw::setting(852, 68),  hw::setting(852, 924)};
  const auto pred = predict_phase_grid(fitted_model(), soc,
                                       synthetic_phases(), reduced);
  for (const double lambda : {0.0, 0.5, 4.0}) {
    const hw::DvfsTransitionModel tm{150e-6, 2e-4};
    const auto sched = schedule_phases(pred, tm, lambda);
    const double dp_cost = assignment_cost(pred, tm, sched.pick, lambda);

    double best = std::numeric_limits<double>::infinity();
    std::vector<std::size_t> pick(pred.n_phases());
    const std::size_t ns = pred.n_settings();
    for (pick[0] = 0; pick[0] < ns; ++pick[0])
      for (pick[1] = 0; pick[1] < ns; ++pick[1])
        for (pick[2] = 0; pick[2] < ns; ++pick[2])
          best = std::min(best, assignment_cost(pred, tm, pick, lambda));

    EXPECT_NEAR(dp_cost, best, 1e-12 * std::abs(best)) << "lambda " << lambda;
    // The schedule's reported totals must price its own picks consistently.
    EXPECT_NEAR(sched.pred_energy_j + lambda * sched.pred_time_s, dp_cost,
                1e-12 * std::abs(dp_cost));
  }
}

TEST(Schedule, BitwiseIdenticalAcrossThreadCounts) {
  const auto soc = hw::Soc::tegra_k1();
  const auto phases = kifmm_phases(4096, 64);
  const auto grid = hw::full_grid();
  const auto& m = fitted_model();
  const hw::DvfsTransitionModel tm{100e-6, 50e-6};
  const std::vector<double> weights = {0, 0.5, 2.0, 8.0};

  struct Out {
    PhaseGridPrediction pred;
    PhaseSchedule sched;
    std::vector<ParetoPoint> frontier;
  };
  const auto run = [&] {
    Out o{predict_phase_grid(m, soc, phases, grid), {}, {}};
    o.sched = schedule_phases(o.pred, tm);
    o.frontier = pareto_frontier(o.pred, tm, weights);
    return o;
  };
  const Out serial = with_threads(1, run);
  const Out parallel = with_threads(4, run);

  ASSERT_EQ(serial.pred.time_s.size(), parallel.pred.time_s.size());
  for (std::size_t i = 0; i < serial.pred.time_s.size(); ++i) {
    EXPECT_TRUE(bit_equal(serial.pred.time_s[i], parallel.pred.time_s[i]));
    EXPECT_TRUE(bit_equal(serial.pred.energy_j[i], parallel.pred.energy_j[i]));
  }
  EXPECT_EQ(serial.sched.pick, parallel.sched.pick);
  EXPECT_TRUE(bit_equal(serial.sched.pred_energy_j,
                        parallel.sched.pred_energy_j));
  ASSERT_EQ(serial.frontier.size(), parallel.frontier.size());
  for (std::size_t i = 0; i < serial.frontier.size(); ++i) {
    EXPECT_EQ(serial.frontier[i].schedule.pick,
              parallel.frontier[i].schedule.pick);
    EXPECT_TRUE(bit_equal(serial.frontier[i].schedule.pred_time_s,
                          parallel.frontier[i].schedule.pred_time_s));
  }
}

TEST(Schedule, RunSequenceAccountsPhasesPlusTransitions) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  const auto phases = synthetic_phases();
  const std::vector<hw::DvfsSetting> settings = {
      hw::setting(852, 68), hw::setting(72, 924), hw::setting(612, 528)};
  const hw::DvfsTransitionModel tm{200e-6, 3e-4};
  const util::RngStream stream(7);

  const auto seq = soc.run_sequence(phases, settings, tm, pm, stream);
  ASSERT_EQ(seq.phases.size(), phases.size());
  // Both hops change both domains.
  EXPECT_EQ(seq.switches, 4);
  EXPECT_NEAR(seq.transition_time_s, 2 * tm.latency_s, 1e-15);
  double phase_t = 0, phase_e = 0, stall_e = 0;
  for (const auto& m : seq.phases) {
    phase_t += m.time_s;
    phase_e += m.energy_j;
  }
  for (std::size_t i = 1; i < settings.size(); ++i)
    stall_e += tm.latency_s * soc.true_constant_power_w(settings[i]) +
               tm.energy_j * tm.changed_domains(settings[i - 1], settings[i]);
  EXPECT_NEAR(seq.transition_energy_j, stall_e, 1e-12);
  EXPECT_NEAR(seq.time_s, phase_t + seq.transition_time_s, 1e-15);
  EXPECT_NEAR(seq.energy_j, phase_e + seq.transition_energy_j, 1e-12);

  // Same stream, same result -- the validation path is replayable.
  const auto again = soc.run_sequence(phases, settings, tm, pm, stream);
  EXPECT_TRUE(bit_equal(seq.energy_j, again.energy_j));
  EXPECT_TRUE(bit_equal(seq.time_s, again.time_s));
}

TEST(Schedule, PerPhaseBeatsUniformAndRaceOnKifmmGroundTruth) {
  // The acceptance bar: on a real KIFMM profile with free transitions, the
  // per-phase schedule must dissipate measurably less *ground-truth* energy
  // than the best uniform setting, which in turn beats race-to-halt.
  const auto soc = hw::Soc::tegra_k1();
  const auto phases = kifmm_phases(8192, 64);
  const auto cmp = compare_strategies(fitted_model(), soc, phases,
                                      hw::full_grid(),
                                      hw::DvfsTransitionModel{});
  EXPECT_GT(cmp.per_phase.switches, 0);
  EXPECT_LT(cmp.per_phase_true.energy_j, 0.995 * cmp.uniform_true.energy_j);
  EXPECT_LT(cmp.uniform_true.energy_j, cmp.race_true.energy_j);
  // Per-phase trades time for energy; race-to-halt must remain fastest.
  EXPECT_LE(cmp.race_true.time_s, cmp.per_phase_true.time_s);
}

TEST(Schedule, ParetoFrontierIsSortedAndUndominated) {
  const auto soc = hw::Soc::tegra_k1();
  const auto pred =
      predict_phase_grid(fitted_model(), soc, synthetic_phases(),
                         hw::full_grid());
  const std::vector<double> weights = {0, 0.25, 1.0, 4.0, 16.0, 64.0};
  const auto frontier =
      pareto_frontier(pred, hw::DvfsTransitionModel{100e-6, 50e-6}, weights);
  ASSERT_FALSE(frontier.empty());
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].schedule.pred_time_s,
              frontier[i - 1].schedule.pred_time_s);
    EXPECT_LT(frontier[i].schedule.pred_energy_j,
              frontier[i - 1].schedule.pred_energy_j);
  }
}

// ---------------------------------------------------------------------------
// ScheduleReuse: the drift monitor gating amortized re-search
// ---------------------------------------------------------------------------

TEST(ScheduleReuse, ReusesUntilDriftExceedsBound) {
  ScheduleReuse reuse(0.10);
  EXPECT_FALSE(reuse.installed());
  // Nothing installed yet: the first check must demand a search.
  std::vector<double> w0 = {100.0, 50.0, 200.0, 10.0};
  EXPECT_TRUE(reuse.needs_retune(w0));

  reuse.install(PhaseSchedule{}, w0);
  ASSERT_TRUE(reuse.installed());
  EXPECT_FALSE(reuse.needs_retune(w0));  // zero drift

  // 9% on the largest phase: inside the bound.
  std::vector<double> small = {100.0, 50.0, 218.0, 10.0};
  EXPECT_NEAR(reuse.divergence(small), 0.09, 1e-12);
  EXPECT_FALSE(reuse.needs_retune(small));

  // 11% on one phase: past the bound, even though the others are exact.
  std::vector<double> big = {100.0, 50.0, 200.0, 11.1};
  EXPECT_TRUE(reuse.needs_retune(big));

  EXPECT_EQ(reuse.stats().installs, 1u);
  EXPECT_EQ(reuse.stats().reuses, 2u);
  // The pre-install check had no baseline to compare against (counted as
  // incompatible); only the 11% drift is a genuine retune.
  EXPECT_EQ(reuse.stats().retunes, 1u);
  EXPECT_EQ(reuse.stats().incompatible, 1u);
}

TEST(ScheduleReuse, NaNWorkForcesRetune) {
  // Regression: NaN propagated through divergence() and `NaN > bound` is
  // false, so a poisoned work vector silently reused the stale schedule.
  // Non-finite work must read as infinite divergence instead.
  ScheduleReuse reuse(0.10);
  std::vector<double> w0 = {100.0, 50.0};
  reuse.install(PhaseSchedule{}, w0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isinf(reuse.divergence(std::vector<double>{100.0, nan})));
  EXPECT_TRUE(reuse.needs_retune(std::vector<double>{100.0, nan}));
  // Inf work, and a NaN *installed* baseline, are equally poisoned.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(reuse.needs_retune(std::vector<double>{inf, 50.0}));
  reuse.install(PhaseSchedule{}, std::vector<double>{nan, 50.0});
  EXPECT_TRUE(reuse.needs_retune(std::vector<double>{100.0, 50.0}));
  // All three were comparable-size checks: retunes, not incompatibles.
  EXPECT_EQ(reuse.stats().retunes, 3u);
  EXPECT_EQ(reuse.stats().incompatible, 0u);
}

TEST(ScheduleReuse, IncompatibleBaselineCountedApartFromRetunes) {
  // "Incompatible" = the installed schedule cannot even be compared (no
  // install yet, or the phase structure changed) and must be re-installed;
  // "retune" = a comparable baseline drifted past the bound. The split
  // lets a controller distinguish forced re-installs from drift events.
  ScheduleReuse reuse(0.10);
  EXPECT_TRUE(reuse.needs_retune(std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(reuse.stats().incompatible, 1u);
  EXPECT_EQ(reuse.stats().retunes, 0u);

  reuse.install(PhaseSchedule{}, std::vector<double>{1.0, 2.0});
  // Phase count changed: incompatible again, not an ordinary retune.
  EXPECT_TRUE(reuse.needs_retune(std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(reuse.stats().incompatible, 2u);
  EXPECT_EQ(reuse.stats().retunes, 0u);

  // Same-size drift past the bound: an ordinary retune.
  EXPECT_TRUE(reuse.needs_retune(std::vector<double>{2.0, 2.0}));
  EXPECT_EQ(reuse.stats().incompatible, 2u);
  EXPECT_EQ(reuse.stats().retunes, 1u);
  EXPECT_EQ(reuse.stats().reuses, 0u);
}

TEST(ScheduleReuse, DivergenceHandlesDegenerateWork) {
  ScheduleReuse reuse(0.5);
  // A phase with zero installed work that stays zero is ignored; one that
  // becomes nonzero is infinite drift (the installed schedule never priced
  // it at all).
  reuse.install(PhaseSchedule{}, std::vector<double>{10.0, 0.0});
  EXPECT_EQ(reuse.divergence(std::vector<double>{10.0, 0.0}), 0.0);
  EXPECT_TRUE(std::isinf(reuse.divergence(std::vector<double>{10.0, 1.0})));
  // Size mismatch can never be "close enough".
  EXPECT_TRUE(std::isinf(reuse.divergence(std::vector<double>{10.0})));
}

TEST(ScheduleReuse, ReinstallRebaselines) {
  ScheduleReuse reuse(0.10);
  reuse.install(PhaseSchedule{}, std::vector<double>{100.0});
  EXPECT_TRUE(reuse.needs_retune(std::vector<double>{200.0}));
  reuse.install(PhaseSchedule{}, std::vector<double>{200.0});
  EXPECT_FALSE(reuse.needs_retune(std::vector<double>{201.0}));
  EXPECT_EQ(reuse.stats().installs, 2u);
}

TEST(Schedule, EmptyPhasesOrGridThrows) {
  const auto soc = hw::Soc::tegra_k1();
  const auto grid = hw::full_grid();
  const std::vector<hw::Workload> none;
  EXPECT_THROW(predict_phase_grid(fitted_model(), soc, none, grid),
               util::ContractError);
  const std::vector<hw::DvfsSetting> empty_grid;
  EXPECT_THROW(
      predict_phase_grid(fitted_model(), soc, synthetic_phases(), empty_grid),
      util::ContractError);
}

}  // namespace
}  // namespace eroof::model
