#include "core/model.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace eroof::model {
namespace {

EnergyModel sample_model() {
  EnergyModel m;
  m.c0 = {29e-12, 139e-12, 60e-12, 35e-12, 90e-12, 377e-12};
  m.c1_proc = 2.7;
  m.c1_mem = 3.8;
  m.p_misc = 0.15;
  return m;
}

TEST(Model, CoeffMappingCoversAllOpClasses) {
  using hw::OpClass;
  EXPECT_EQ(coeff_for(OpClass::kSpFlop), Coeff::kSp);
  EXPECT_EQ(coeff_for(OpClass::kDpFlop), Coeff::kDp);
  EXPECT_EQ(coeff_for(OpClass::kIntOp), Coeff::kInt);
  EXPECT_EQ(coeff_for(OpClass::kSmAccess), Coeff::kSm);
  EXPECT_EQ(coeff_for(OpClass::kL1Access), Coeff::kSm);  // priced like SM
  EXPECT_EQ(coeff_for(OpClass::kL2Access), Coeff::kL2);
  EXPECT_EQ(coeff_for(OpClass::kDramAccess), Coeff::kDram);
}

TEST(Model, OnlyDramIsMemoryDomain) {
  EXPECT_TRUE(is_core_coeff(Coeff::kSp));
  EXPECT_TRUE(is_core_coeff(Coeff::kL2));
  EXPECT_FALSE(is_core_coeff(Coeff::kDram));
}

TEST(Model, OpEnergyIsVSquaredScaled) {
  const EnergyModel m = sample_model();
  const auto s = hw::setting(852, 924);  // Vp = 1.030, Vm = 1.010
  EXPECT_NEAR(m.op_energy_j(hw::OpClass::kSpFlop, s), 29e-12 * 1.030 * 1.030,
              1e-18);
  EXPECT_NEAR(m.op_energy_j(hw::OpClass::kDramAccess, s),
              377e-12 * 1.010 * 1.010, 1e-18);
}

TEST(Model, ConstantPowerEquation8) {
  const EnergyModel m = sample_model();
  const auto s = hw::setting(396, 204);  // Vp = 0.770, Vm = 0.800
  EXPECT_NEAR(m.constant_power_w(s), 2.7 * 0.770 + 3.8 * 0.800 + 0.15, 1e-12);
}

TEST(Model, PredictEnergyEquation9Decomposition) {
  const EnergyModel m = sample_model();
  const auto s = hw::setting(648, 528);
  hw::OpCounts ops;
  ops[hw::OpClass::kSpFlop] = 1e9;
  ops[hw::OpClass::kDramAccess] = 1e8;
  const double t = 0.25;
  const double total = m.predict_energy_j(ops, s, t);
  const double dynamic = m.predict_dynamic_energy_j(ops, s);
  EXPECT_NEAR(total, dynamic + m.constant_power_w(s) * t, 1e-12);
  EXPECT_NEAR(dynamic,
              1e9 * m.op_energy_j(hw::OpClass::kSpFlop, s) +
                  1e8 * m.op_energy_j(hw::OpClass::kDramAccess, s),
              1e-12);
}

TEST(Model, ZeroOpsGivesPureConstantEnergy) {
  const EnergyModel m = sample_model();
  const auto s = hw::setting(852, 924);
  const hw::OpCounts none;
  EXPECT_NEAR(m.predict_energy_j(none, s, 2.0),
              2.0 * m.constant_power_w(s), 1e-12);
}

TEST(Model, EnergyMonotoneInTime) {
  const EnergyModel m = sample_model();
  const auto s = hw::setting(852, 924);
  hw::OpCounts ops;
  ops[hw::OpClass::kIntOp] = 1e9;
  EXPECT_GT(m.predict_energy_j(ops, s, 2.0), m.predict_energy_j(ops, s, 1.0));
}

TEST(Model, NonPositiveTimeThrows) {
  const EnergyModel m = sample_model();
  const hw::OpCounts ops;
  EXPECT_THROW(m.predict_energy_j(ops, hw::setting(852, 924), 0.0),
               util::ContractError);
}

TEST(Model, L1PricedAtSmRate) {
  const EnergyModel m = sample_model();
  const auto s = hw::setting(852, 924);
  EXPECT_DOUBLE_EQ(m.op_energy_j(hw::OpClass::kL1Access, s),
                   m.op_energy_j(hw::OpClass::kSmAccess, s));
}

}  // namespace
}  // namespace eroof::model
