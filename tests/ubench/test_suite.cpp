#include "ubench/suite.hpp"

#include <gtest/gtest.h>

namespace eroof::ub {
namespace {

using hw::OpClass;

TEST(Suite, SweepSizesMatchTable2Denominators) {
  // Table II reports "out of 25 / 36 / 23 / 10 / 9" tuning cases per class.
  EXPECT_EQ(sweep_size(BenchClass::kSpFlops), 25u);
  EXPECT_EQ(sweep_size(BenchClass::kDpFlops), 36u);
  EXPECT_EQ(sweep_size(BenchClass::kIntOps), 23u);
  EXPECT_EQ(sweep_size(BenchClass::kSharedMem), 10u);
  EXPECT_EQ(sweep_size(BenchClass::kL2), 9u);
}

TEST(Suite, DefaultSuiteHas116Points) {
  // 116 points x 16 Table I settings = the paper's 1856 samples.
  EXPECT_EQ(default_suite().size(), 116u);
}

TEST(Suite, IntensitiesAreStrictlyIncreasing) {
  for (auto c : {BenchClass::kSpFlops, BenchClass::kDpFlops,
                 BenchClass::kIntOps, BenchClass::kSharedMem, BenchClass::kL2,
                 BenchClass::kDram}) {
    const auto sweep = intensity_sweep(c);
    for (std::size_t i = 1; i < sweep.size(); ++i)
      EXPECT_GT(sweep[i].intensity, sweep[i - 1].intensity)
          << to_string(c) << " index " << i;
  }
}

TEST(Suite, SpPointTargetsSpOnly) {
  const auto sweep = intensity_sweep(BenchClass::kSpFlops, 1e6);
  for (const auto& p : sweep) {
    EXPECT_GT(p.workload.ops[OpClass::kSpFlop], 0.0);
    EXPECT_DOUBLE_EQ(p.workload.ops[OpClass::kDpFlop], 0.0);
    EXPECT_DOUBLE_EQ(p.workload.ops[OpClass::kSmAccess], 0.0);
    // Target op count follows the intensity knob exactly.
    EXPECT_DOUBLE_EQ(p.workload.ops[OpClass::kSpFlop], p.intensity * 1e6);
  }
}

TEST(Suite, EveryPointStreamsFromDram) {
  for (const auto& p : default_suite(1e6))
    EXPECT_GT(p.workload.ops[OpClass::kDramAccess], 0.0) << p.workload.name;
}

TEST(Suite, OverheadIntegerOpsAreSmall) {
  // Tuned kernels: loop overhead well under 10% of the targeted op count.
  const auto sweep = intensity_sweep(BenchClass::kSpFlops, 1e6);
  const auto& high = sweep.back();
  EXPECT_LT(high.workload.ops[OpClass::kIntOp],
            0.1 * high.workload.ops[OpClass::kSpFlop]);
}

TEST(Suite, UtilizationsNearFullButVaried) {
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& p : default_suite(1e6)) {
    EXPECT_GE(p.workload.compute_utilization, 0.9);
    EXPECT_LE(p.workload.compute_utilization, 1.0);
    lo = std::min(lo, p.workload.compute_utilization);
    hi = std::max(hi, p.workload.compute_utilization);
  }
  EXPECT_GT(hi - lo, 0.01);  // genuinely varied, not constant
}

TEST(Suite, NamesAreUniqueAcrossSuite) {
  const auto suite = default_suite(1e6);
  for (std::size_t i = 0; i < suite.size(); ++i)
    for (std::size_t j = i + 1; j < suite.size(); ++j)
      EXPECT_NE(suite[i].workload.name, suite[j].workload.name);
}

TEST(Suite, SuiteIsDeterministic) {
  const auto a = default_suite(2e6);
  const auto b = default_suite(2e6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].workload.name, b[i].workload.name);
    EXPECT_DOUBLE_EQ(a[i].workload.compute_utilization,
                     b[i].workload.compute_utilization);
  }
}

TEST(Suite, ClassNames) {
  EXPECT_EQ(to_string(BenchClass::kSpFlops), "sp");
  EXPECT_EQ(to_string(BenchClass::kDram), "dram");
}

}  // namespace
}  // namespace eroof::ub
