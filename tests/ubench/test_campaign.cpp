#include "ubench/campaign.hpp"

#include <gtest/gtest.h>

namespace eroof::ub {
namespace {

TEST(Campaign, PaperCampaignProduces1856Samples) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(1);
  const auto samples = paper_campaign(soc, pm, rng);
  EXPECT_EQ(samples.size(), 1856u);  // 116 points x 16 settings
}

TEST(Campaign, EverySampleHasPositiveTimeAndEnergy) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(2);
  const auto suite = intensity_sweep(BenchClass::kL2, 4e6);
  std::vector<hw::LabeledSetting> settings = {
      {hw::SettingRole::kTrain, hw::setting(852, 924)},
      {hw::SettingRole::kValidate, hw::setting(396, 204)}};
  const auto samples = run_campaign(soc, suite, settings, pm, rng);
  ASSERT_EQ(samples.size(), suite.size() * 2);
  for (const auto& s : samples) {
    EXPECT_GT(s.meas.time_s, 0);
    EXPECT_GT(s.meas.energy_j, 0);
    EXPECT_GT(s.meas.avg_power_w, 1.0);   // at least constant power
    EXPECT_LT(s.meas.avg_power_w, 25.0);  // below meter full scale
  }
}

TEST(Campaign, RolesFollowTheSettingLabels) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(3);
  const auto suite = intensity_sweep(BenchClass::kSharedMem, 4e6);
  std::vector<hw::LabeledSetting> settings = {
      {hw::SettingRole::kValidate, hw::setting(540, 528)}};
  const auto samples = run_campaign(soc, suite, settings, pm, rng);
  for (const auto& s : samples)
    EXPECT_EQ(s.role, hw::SettingRole::kValidate);
}

TEST(Campaign, HigherIntensityCostsMoreEnergyAtFixedSetting) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon pm;
  util::Rng rng(4);
  const auto sweep = intensity_sweep(BenchClass::kSpFlops, 64e6);
  std::vector<hw::LabeledSetting> settings = {
      {hw::SettingRole::kTrain, hw::setting(852, 924)}};
  const auto samples = run_campaign(soc, sweep, settings, pm, rng);
  // The most intense point must cost clearly more than the least intense
  // (it executes 256x the flops).
  EXPECT_GT(samples.back().meas.energy_j, 2.0 * samples.front().meas.energy_j);
}

}  // namespace
}  // namespace eroof::ub
