#include "ubench/kernels.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::ub {
namespace {

std::vector<float> random_floats(std::size_t n) {
  util::Rng rng(1);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(0.1, 0.9));
  return v;
}

TEST(Kernels, SpFmaStreamProducesFiniteChecksum) {
  const auto data = random_floats(4096);
  const float r = sp_fma_stream(data, 8);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_NE(r, 0.0f);
}

TEST(Kernels, SpFmaStreamDeterministic) {
  const auto data = random_floats(4096);
  EXPECT_EQ(sp_fma_stream(data, 8), sp_fma_stream(data, 8));
}

TEST(Kernels, DpFmaStreamProducesFiniteChecksum) {
  util::Rng rng(2);
  std::vector<double> data(4096);
  for (auto& x : data) x = rng.uniform(0.1, 0.9);
  EXPECT_TRUE(std::isfinite(dp_fma_stream(data, 4)));
}

TEST(Kernels, IntOpsStreamMixesBits) {
  util::Rng rng(3);
  std::vector<std::uint64_t> data(1024);
  for (auto& x : data) x = rng();
  const auto a = int_ops_stream(data, 4);
  const auto b = int_ops_stream(data, 5);
  EXPECT_NE(a, b);  // intensity changes the result
}

TEST(Kernels, ScratchReuseSumsEveryElementPerPass) {
  std::vector<float> data(2048, 1.0f);
  // 3 reuse passes over all-ones data: checksum = 3 * 2048.
  EXPECT_FLOAT_EQ(scratch_reuse_stream(data, 3, 512), 3.0f * 2048.0f);
}

TEST(Kernels, CacheResidentStreamSumsWorkingSet) {
  std::vector<float> data(1024, 2.0f);
  // 2 passes over a 256-element working set of 2.0f.
  EXPECT_FLOAT_EQ(cache_resident_stream(data, 256, 2), 2.0f * 256.0f * 2.0f);
}

TEST(Kernels, InvalidIntensityThrows) {
  const auto data = random_floats(64);
  EXPECT_THROW(sp_fma_stream(data, 0), util::ContractError);
  EXPECT_THROW(scratch_reuse_stream(data, 0), util::ContractError);
}

}  // namespace
}  // namespace eroof::ub
