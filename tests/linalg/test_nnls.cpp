#include "linalg/nnls.hpp"

#include <gtest/gtest.h>

#include "linalg/qr.hpp"
#include "util/rng.hpp"

namespace eroof::la {
namespace {

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(0.0, 1.0);
  return a;
}

TEST(Nnls, RecoversNonNegativePlantedSolution) {
  const Matrix a = random_matrix(40, 6, 1);
  const std::vector<double> x_true{0.5, 2.0, 0.0, 1.25, 3.0, 0.1};
  const auto b = matvec(a, x_true);
  const NnlsResult r = nnls(a, b);
  ASSERT_TRUE(r.converged);
  for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(r.x[j], x_true[j], 1e-8);
  EXPECT_LT(r.residual_norm, 1e-8);
}

TEST(Nnls, MatchesUnconstrainedWhenSolutionIsInterior) {
  const Matrix a = random_matrix(30, 4, 2);
  const std::vector<double> x_true{1.0, 2.0, 3.0, 4.0};
  const auto b = matvec(a, x_true);
  const auto x_ls = lstsq(a, b);
  const NnlsResult r = nnls(a, b);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(r.x[j], x_ls[j], 1e-8);
}

TEST(Nnls, ClampsNegativeComponent) {
  // b is best approximated with a negative coefficient on column 1;
  // NNLS must return 0 there instead.
  Matrix a{{1, 0}, {0, 1}, {0, 0}};
  const std::vector<double> b{2.0, -3.0, 0.0};
  const NnlsResult r = nnls(a, b);
  EXPECT_NEAR(r.x[0], 2.0, 1e-10);
  EXPECT_DOUBLE_EQ(r.x[1], 0.0);
  EXPECT_NEAR(r.residual_norm, 3.0, 1e-10);
}

TEST(Nnls, KktConditionsHoldOnRandomProblems) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Matrix a = random_matrix(25, 5, 100 + seed);
    util::Rng rng(200 + seed);
    std::vector<double> b(25);
    for (auto& v : b) v = rng.uniform(-1, 1);
    const NnlsResult r = nnls(a, b);
    ASSERT_TRUE(r.converged) << "seed " << seed;

    // Feasibility.
    for (double v : r.x) EXPECT_GE(v, 0.0);

    // Stationarity: gradient w = A^T (b - A x) must be <= 0 where x = 0
    // and ~0 where x > 0 (KKT complementary slackness).
    const auto ax = matvec(a, r.x);
    std::vector<double> res(b.size());
    for (std::size_t i = 0; i < b.size(); ++i) res[i] = b[i] - ax[i];
    const auto w = matvec_t(a, res);
    for (std::size_t j = 0; j < w.size(); ++j) {
      if (r.x[j] > 1e-10)
        EXPECT_NEAR(w[j], 0.0, 1e-7) << "seed " << seed << " col " << j;
      else
        EXPECT_LE(w[j], 1e-7) << "seed " << seed << " col " << j;
    }
  }
}

TEST(Nnls, ZeroRhsGivesZeroSolution) {
  const Matrix a = random_matrix(10, 3, 7);
  const std::vector<double> b(10, 0.0);
  const NnlsResult r = nnls(a, b);
  for (double v : r.x) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_TRUE(r.converged);
}

TEST(Nnls, AllNegativeRhsGivesZeroSolution) {
  // Columns are non-negative, b is negative: the optimum is x = 0.
  const Matrix a = random_matrix(10, 3, 8);
  const std::vector<double> b(10, -1.0);
  const NnlsResult r = nnls(a, b);
  for (double v : r.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Nnls, WorksWithCollinearish) {
  // Two nearly identical columns; NNLS should still converge and fit well.
  Matrix a(20, 2);
  util::Rng rng(9);
  for (std::size_t i = 0; i < 20; ++i) {
    a(i, 0) = rng.uniform(0.5, 1.0);
    a(i, 1) = a(i, 0) * (1.0 + 1e-6 * rng.uniform());
  }
  const std::vector<double> x_true{1.0, 1.0};
  const auto b = matvec(a, x_true);
  const NnlsResult r = nnls(a, b);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.residual_norm, 1e-6);
}

}  // namespace
}  // namespace eroof::la
