#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::la {
namespace {

TEST(Matrix, ConstructionZeroInitializes) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, InitializerListLayout) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 0), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), util::ContractError);
}

TEST(Matrix, IdentityMultiplicationIsNeutral) {
  Matrix a{{1, 2}, {3, 4}};
  const Matrix i = Matrix::identity(2);
  EXPECT_EQ((a * i).max_abs_diff(a), 0.0);
  EXPECT_EQ((i * a).max_abs_diff(a), 0.0);
}

TEST(Matrix, MultiplicationKnownResult) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix expect{{19, 22}, {43, 50}};
  EXPECT_EQ((a * b).max_abs_diff(expect), 0.0);
}

TEST(Matrix, MultiplicationShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, util::ContractError);
}

TEST(Matrix, TransposeRoundTrip) {
  util::Rng rng(5);
  Matrix a(4, 7);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 7; ++j) a(i, j) = rng.uniform(-1, 1);
  EXPECT_EQ(a.transposed().transposed().max_abs_diff(a), 0.0);
}

TEST(Matrix, TransposeSwapsIndices) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, AddSubtract) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  Matrix sum{{5, 5}, {5, 5}};
  EXPECT_EQ((a + b).max_abs_diff(sum), 0.0);
  EXPECT_EQ(((a + b) - b).max_abs_diff(a), 0.0);
}

TEST(Matrix, ScalarScale) {
  Matrix a{{1, -2}, {0, 4}};
  Matrix twice{{2, -4}, {0, 8}};
  EXPECT_EQ((2.0 * a).max_abs_diff(twice), 0.0);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a{{3, 4}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Matrix, MatvecAndTransposedMatvec) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const std::vector<double> x{1.0, -1.0};
  const auto y = matvec(a, x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);

  const std::vector<double> z{1.0, 0.0, 1.0};
  const auto w = matvec_t(a, z);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 6.0);
  EXPECT_DOUBLE_EQ(w[1], 8.0);
}

TEST(Matrix, DotAndNorm) {
  const std::vector<double> a{1, 2, 2};
  const std::vector<double> b{2, 0, 1};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
}

TEST(Matrix, OutOfRangeAccessThrows) {
  Matrix a(2, 2);
  EXPECT_THROW(a(2, 0), util::ContractError);
  EXPECT_THROW(a(0, 2), util::ContractError);
}

}  // namespace
}  // namespace eroof::la
