#include "linalg/svd.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace eroof::la {
namespace {

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
  return a;
}

Matrix reconstruct(const Svd& f) {
  Matrix s(f.s.size(), f.s.size());
  for (std::size_t i = 0; i < f.s.size(); ++i) s(i, i) = f.s[i];
  return f.u * s * f.v.transposed();
}

class SvdShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdShapes, ReconstructionAndOrthogonality) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(n), 42);
  const Svd f = svd(a);
  EXPECT_LT(reconstruct(f).max_abs_diff(a), 1e-10);

  const std::size_t k = std::min(m, n);
  const Matrix utu = f.u.transposed() * f.u;
  const Matrix vtv = f.v.transposed() * f.v;
  EXPECT_LT(utu.max_abs_diff(Matrix::identity(k)), 1e-10);
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(k)), 1e-10);

  // Singular values descending and non-negative.
  for (std::size_t i = 0; i + 1 < f.s.size(); ++i)
    EXPECT_GE(f.s[i], f.s[i + 1]);
  EXPECT_GE(f.s.back(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{5, 5},
                                           std::pair{9, 4}, std::pair{4, 9},
                                           std::pair{20, 7},
                                           std::pair{7, 20}));

TEST(Svd, KnownDiagonalMatrix) {
  Matrix a{{3, 0}, {0, -2}};
  const Svd f = svd(a);
  EXPECT_NEAR(f.s[0], 3.0, 1e-12);
  EXPECT_NEAR(f.s[1], 2.0, 1e-12);
}

TEST(Svd, RankOneMatrix) {
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      a(i, j) = static_cast<double>((i + 1) * (j + 1));
  const Svd f = svd(a);
  EXPECT_GT(f.s[0], 1.0);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_NEAR(f.s[i], 0.0, 1e-10);
}

TEST(Pinv, MoorePenroseIdentities) {
  const Matrix a = random_matrix(8, 5, 3);
  const Matrix ap = pinv(a);
  // A A+ A = A and A+ A A+ = A+.
  EXPECT_LT((a * ap * a).max_abs_diff(a), 1e-9);
  EXPECT_LT((ap * a * ap).max_abs_diff(ap), 1e-9);
}

TEST(Pinv, InverseForWellConditionedSquare) {
  Matrix a{{4, 1}, {2, 3}};
  const Matrix ap = pinv(a);
  EXPECT_LT((a * ap).max_abs_diff(Matrix::identity(2)), 1e-12);
}

TEST(Pinv, RankDeficientHandledByCutoff) {
  Matrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      a(i, j) = static_cast<double>(i + 1);  // rank 1
  const Matrix ap = pinv(a, 1e-10);
  // Pseudo-inverse of a rank-1 matrix stays bounded and satisfies A A+ A = A.
  EXPECT_LT((a * ap * a).max_abs_diff(a), 1e-9);
  EXPECT_LT(ap.frobenius_norm(), 10.0);
}

TEST(PinvTikhonov, ApproachesPinvAsEpsShrinks) {
  const Matrix a = random_matrix(6, 6, 9);
  const Matrix exact = pinv(a);
  const Matrix reg = pinv_tikhonov(a, 1e-10);
  EXPECT_LT(reg.max_abs_diff(exact), 1e-6);
}

TEST(PinvTikhonov, RegularizationDampsSmallSingularValues) {
  // Diagonal with one tiny singular value: the regularized inverse must not
  // blow it up to 1/s.
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1e-12;
  const Matrix reg = pinv_tikhonov(a, 1e-4);
  EXPECT_LT(std::abs(reg(1, 1)), 1e13);  // far below 1/1e-12 scale blow-up
  EXPECT_NEAR(reg(0, 0), 1.0, 1e-6);
}

TEST(Cond2, IdentityIsOne) {
  EXPECT_NEAR(cond2(Matrix::identity(5)), 1.0, 1e-12);
}

TEST(Cond2, SingularIsInfinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;  // second row zero
  EXPECT_TRUE(std::isinf(cond2(a)));
}

}  // namespace
}  // namespace eroof::la
