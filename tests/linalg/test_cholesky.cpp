#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::la {
namespace {

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1, 1);
  Matrix a = b.transposed() * b;
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(Cholesky, FactorReconstructsMatrix) {
  const Matrix a = random_spd(6, 1);
  const Cholesky chol(a);
  const Matrix llt = chol.l() * chol.l().transposed();
  EXPECT_LT(llt.max_abs_diff(a), 1e-11);
}

TEST(Cholesky, SolveRecoversPlantedSolution) {
  const Matrix a = random_spd(8, 2);
  util::Rng rng(3);
  std::vector<double> x_true(8);
  for (auto& v : x_true) v = rng.uniform(-2, 2);
  const auto b = matvec(a, x_true);
  const auto x = solve_spd(a, b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Cholesky, LIsLowerTriangular) {
  const Cholesky chol(random_spd(5, 4));
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j) EXPECT_EQ(chol.l()(i, j), 0.0);
}

TEST(Cholesky, IndefiniteMatrixThrows) {
  Matrix a{{1, 0}, {0, -1}};
  EXPECT_THROW(Cholesky{a}, util::ContractError);
}

TEST(Cholesky, NonSquareThrows) {
  Matrix a(3, 2);
  EXPECT_THROW(Cholesky{a}, util::ContractError);
}

}  // namespace
}  // namespace eroof::la
