#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::la {
namespace {

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
  return a;
}

TEST(QR, ReconstructsA) {
  const Matrix a = random_matrix(8, 5, 1);
  QR qr(a);
  const Matrix recon = qr.thin_q() * qr.r();
  EXPECT_LT(recon.max_abs_diff(a), 1e-12);
}

TEST(QR, ThinQHasOrthonormalColumns) {
  const Matrix a = random_matrix(10, 4, 2);
  const Matrix q = QR(a).thin_q();
  const Matrix qtq = q.transposed() * q;
  EXPECT_LT(qtq.max_abs_diff(Matrix::identity(4)), 1e-12);
}

TEST(QR, RIsUpperTriangular) {
  const Matrix r = QR(random_matrix(6, 6, 3)).r();
  for (std::size_t i = 1; i < 6; ++i)
    for (std::size_t j = 0; j < i; ++j) EXPECT_EQ(r(i, j), 0.0);
}

TEST(QR, SolvesSquareSystemExactly) {
  Matrix a{{2, 1}, {1, 3}};
  const std::vector<double> x_true{1.0, -2.0};
  const auto b = matvec(a, x_true);
  const auto x = QR(a).solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
}

TEST(QR, LeastSquaresResidualOrthogonalToColumns) {
  const Matrix a = random_matrix(12, 3, 4);
  util::Rng rng(5);
  std::vector<double> b(12);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto x = lstsq(a, b);
  // r = b - A x must satisfy A^T r = 0 (normal equations).
  const auto ax = matvec(a, x);
  std::vector<double> r(12);
  for (std::size_t i = 0; i < 12; ++i) r[i] = b[i] - ax[i];
  const auto atr = matvec_t(a, r);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(QR, ExactlyRecoversPlantedSolution) {
  const Matrix a = random_matrix(30, 6, 6);
  util::Rng rng(7);
  std::vector<double> x_true(6);
  for (auto& v : x_true) v = rng.uniform(-3, 3);
  const auto b = matvec(a, x_true);
  const auto x = lstsq(a, b);
  for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(x[j], x_true[j], 1e-10);
}

TEST(QR, WideMatrixRejected) {
  EXPECT_THROW(QR(random_matrix(3, 5, 8)), util::ContractError);
}

TEST(QR, RankDeficientSolveThrows) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // duplicate direction
  }
  const std::vector<double> b{1, 2, 3, 4};
  EXPECT_THROW(QR(a).solve(b), util::ContractError);
}

}  // namespace
}  // namespace eroof::la
