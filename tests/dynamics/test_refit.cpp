// Octree::try_refit: when it succeeds the tree must be *exactly* what a
// fresh build over the moved points would produce -- point order,
// original_index, every node range -- while keys, boxes, links, and level
// lists stay untouched. When the moved structure would differ, it must
// refuse and leave the tree unchanged. Refit-then-evaluate vs
// rebuild-then-evaluate is pinned bitwise at the evaluator level.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fmm/evaluator.hpp"
#include "fmm/octree.hpp"
#include "fmm/pointgen.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

constexpr Box kDomain{{0.5, 0.5, 0.5}, 0.5};

/// Jitters every point by at most `amp` per axis, clamped inside the open
/// domain so refit preconditions hold.
std::vector<Vec3> jitter(std::span<const Vec3> pts, double amp,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Vec3> out(pts.begin(), pts.end());
  for (auto& p : out) {
    p.x = std::min(1.0 - 1e-9, std::max(1e-9, p.x + rng.uniform(-amp, amp)));
    p.y = std::min(1.0 - 1e-9, std::max(1e-9, p.y + rng.uniform(-amp, amp)));
    p.z = std::min(1.0 - 1e-9, std::max(1e-9, p.z + rng.uniform(-amp, amp)));
  }
  return out;
}

::testing::AssertionResult trees_identical(const Octree& a, const Octree& b) {
  if (a.nodes().size() != b.nodes().size())
    return ::testing::AssertionFailure() << "node count differs";
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    const Node& x = a.nodes()[i];
    const Node& y = b.nodes()[i];
    if (!(x.key == y.key) || x.leaf != y.leaf ||
        x.parent != y.parent || x.children != y.children ||
        x.point_begin != y.point_begin || x.point_end != y.point_end)
      return ::testing::AssertionFailure() << "node " << i << " differs";
  }
  if (a.leaves() != b.leaves())
    return ::testing::AssertionFailure() << "leaf lists differ";
  const auto pa = a.points();
  const auto pb = b.points();
  if (pa.size() != pb.size() ||
      std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(Vec3)) != 0)
    return ::testing::AssertionFailure() << "permuted points differ";
  const auto oa = a.original_index();
  const auto ob = b.original_index();
  if (!std::equal(oa.begin(), oa.end(), ob.begin(), ob.end()))
    return ::testing::AssertionFailure() << "original_index differs";
  return ::testing::AssertionSuccess();
}

TEST(OctreeRefit, MatchesFreshBuildExactlyAdaptive) {
  util::Rng rng(90);
  const auto pts = uniform_cube(2048, rng);
  const Octree::Params params{.max_points_per_box = 48, .domain = kDomain};
  Octree tree(pts, params);
  ASSERT_EQ(tree.balance_splits(), 0)
      << "pick another seed: refit needs a balance-split-free tree";

  auto moved = pts;
  for (int step = 0; step < 8; ++step) {
    moved = jitter(moved, 2e-3, 91 + static_cast<std::uint64_t>(step));
    ASSERT_TRUE(tree.try_refit(moved)) << "step " << step;
    const Octree fresh(moved, params);
    EXPECT_TRUE(trees_identical(tree, fresh)) << "step " << step;
  }
}

TEST(OctreeRefit, MatchesFreshBuildExactlyUniform) {
  // Depth 2 over 2048 points: every one of the 64 cells holds ~32 points,
  // so a small jitter can migrate points between cells without ever
  // emptying one (which would change which children are materialized and
  // correctly refuse the refit).
  util::Rng rng(92);
  const auto pts = uniform_cube(2048, rng);
  const Octree::Params params{.uniform_depth = 2, .domain = kDomain};
  Octree tree(pts, params);
  const auto moved = jitter(pts, 1e-3, 93);
  ASSERT_TRUE(tree.try_refit(moved));
  EXPECT_TRUE(trees_identical(tree, Octree(moved, params)));
}

TEST(OctreeRefit, DuplicateAndCoincidentPointsSurviveRefit) {
  // Exact duplicates exercise the stable scatter: coincident points must
  // come out in caller order, exactly as the fresh build's stable counting
  // sort leaves them.
  util::Rng rng(94);
  auto pts = uniform_cube(512, rng);
  for (std::size_t i = 0; i < 128; ++i) pts.push_back(pts[i]);
  const Octree::Params params{.max_points_per_box = 32, .domain = kDomain};
  Octree tree(pts, params);
  if (tree.balance_splits() != 0) GTEST_SKIP() << "balance-split tree";
  const auto moved = jitter(pts, 1e-3, 95);
  ASSERT_TRUE(tree.try_refit(moved));
  EXPECT_TRUE(trees_identical(tree, Octree(moved, params)));
}

TEST(OctreeRefit, RefusesWhenLeafOccupancyWouldOverflow) {
  util::Rng rng(96);
  const auto pts = uniform_cube(1024, rng);
  const Octree::Params params{.max_points_per_box = 32, .domain = kDomain};
  Octree tree(pts, params);
  ASSERT_EQ(tree.balance_splits(), 0);

  // Collapse a third of the points into one tight ball: some leaf must end
  // up holding far more than Q, which a fresh build would split further.
  auto moved = pts;
  for (std::size_t i = 0; i < moved.size() / 3; ++i)
    moved[i] = {0.111 + 1e-5 * rng.uniform(), 0.111 + 1e-5 * rng.uniform(),
                0.111 + 1e-5 * rng.uniform()};
  const std::vector<Vec3> before(tree.points().begin(), tree.points().end());
  EXPECT_FALSE(tree.try_refit(moved));
  // On refusal the tree is untouched.
  EXPECT_EQ(std::memcmp(before.data(), tree.points().data(),
                        before.size() * sizeof(Vec3)),
            0);
}

TEST(OctreeRefit, RefusesWhenALeafWouldEmpty) {
  // 9 points, one per octant plus a spare; Q=1 forces one leaf per point at
  // level 1 (octant 0 holds 2 and splits deeper). Moving every point into
  // one octant would leave other leaves empty -> refuse.
  std::vector<Vec3> pts;
  for (int o = 0; o < 8; ++o)
    pts.push_back({o & 1 ? 0.75 : 0.25, o & 2 ? 0.75 : 0.25,
                   o & 4 ? 0.75 : 0.25});
  pts.push_back({0.26, 0.26, 0.26});
  Octree tree(pts, {.max_points_per_box = 4, .balance_2to1 = false,
                    .domain = kDomain});
  std::vector<Vec3> moved(pts.size(), Vec3{0.9, 0.9, 0.9});
  EXPECT_FALSE(tree.try_refit(moved));
}

TEST(OctreeRefit, RefusesWithoutFixedDomain) {
  util::Rng rng(97);
  const auto pts = uniform_cube(256, rng);
  Octree tree(pts, {.max_points_per_box = 32});  // point-fitted bounding box
  EXPECT_FALSE(tree.try_refit(pts));             // even with zero motion
}

TEST(OctreeRefit, RefusesOnBalanceSplitTrees) {
  // A tight cluster pressed against the x = 0.5 face from inside octant 0,
  // with octant 1 so sparse it stays a level-1 leaf: the cluster's deep
  // face-adjacent leaves violate 2:1 against that leaf and ripple-split it.
  // Balance-split trees' structure depends on the occupancy pattern in a
  // way refit does not track, so they must always refuse.
  util::Rng rng(98);
  std::vector<Vec3> pts;
  for (int i = 0; i < 200; ++i)
    pts.push_back({0.4999 + 1e-4 * rng.uniform(), 0.25 + 1e-4 * rng.uniform(),
                   0.25 + 1e-4 * rng.uniform()});
  for (int i = 0; i < 5; ++i)
    pts.push_back({0.5 + 0.4 * rng.uniform(), 0.4 * rng.uniform(),
                   0.4 * rng.uniform()});
  Octree tree(pts, {.max_points_per_box = 16, .domain = kDomain});
  ASSERT_GT(tree.balance_splits(), 0)
      << "fixture no longer triggers balance splits";
  EXPECT_FALSE(tree.try_refit(pts));
}

TEST(OctreeRefit, SizeMismatchAndEscapedPointsAreContractErrors) {
  util::Rng rng(99);
  const auto pts = uniform_cube(128, rng);
  Octree tree(pts, {.max_points_per_box = 32, .domain = kDomain});

  auto short_set = pts;
  short_set.pop_back();
  EXPECT_THROW((void)tree.try_refit(short_set), util::ContractError);

  auto escaped = pts;
  escaped[7].x = 1.5;  // outside the fixed domain
  EXPECT_THROW((void)tree.try_refit(escaped), util::ContractError);
}

TEST(OctreeRefit, DomainBoundaryPointsRefitExactly) {
  // Box::contains is closed, so points exactly on the domain boundary are
  // legal refit inputs; the >=-goes-up octant rule bins them into the
  // highest octant along each maxed axis, same as the fresh build.
  util::Rng rng(100);
  auto pts = uniform_cube(256, rng);
  pts.push_back({1.0, 1.0, 1.0});
  pts.push_back({0.0, 1.0, 0.5});
  const Octree::Params params{.max_points_per_box = 32, .domain = kDomain};
  Octree tree(pts, params);
  if (tree.balance_splits() != 0) GTEST_SKIP() << "balance-split tree";
  auto moved = jitter(pts, 1e-3, 101);
  moved[moved.size() - 2] = {1.0, 1.0, 1.0};  // keep the corner pinned
  moved[moved.size() - 1] = {0.0, 1.0, 0.5};
  ASSERT_TRUE(tree.try_refit(moved));
  EXPECT_TRUE(trees_identical(tree, Octree(moved, params)));
}

// ---------------------------------------------------------------------------
// Evaluator-level regression: refit-then-evaluate == rebuild-then-evaluate
// ---------------------------------------------------------------------------

TEST(EvaluatorRefit, RefitThenEvaluateMatchesRebuildBitwise) {
  util::Rng rng(102);
  const auto pts = uniform_cube(1200, rng);
  const auto dens = random_densities(1200, rng);
  const Octree::Params params{.max_points_per_box = 32, .domain = kDomain};
  const FmmConfig fcfg{.p = 3};
  static const LaplaceKernel kernel;

  FmmEvaluator ev(kernel, pts, params, fcfg);
  ASSERT_EQ(ev.tree().balance_splits(), 0);
  (void)ev.evaluate(dens);

  auto moved = pts;
  for (int step = 0; step < 4; ++step) {
    moved = jitter(moved, 2e-3, 103 + static_cast<std::uint64_t>(step));
    ASSERT_TRUE(ev.try_refit(moved)) << "step " << step;
    const auto refit_phi = ev.evaluate(dens);

    FmmEvaluator fresh(kernel, moved, params, fcfg);
    const auto fresh_phi = fresh.evaluate(dens);
    ASSERT_EQ(refit_phi.size(), fresh_phi.size());
    EXPECT_EQ(std::memcmp(refit_phi.data(), fresh_phi.data(),
                          refit_phi.size() * sizeof(double)),
              0)
        << "step " << step;
  }
}

}  // namespace
}  // namespace eroof::fmm
