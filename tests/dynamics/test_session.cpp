// FmmSession: the incremental-evaluation contract. After every move_to the
// session's potentials must be bitwise identical to a fresh FmmEvaluator
// built from scratch over the same positions -- across OMP thread counts
// and both executors -- and the FmmPlan must be reused across rebuilds
// until the tree actually outgrows it.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstring>
#include <memory>
#include <vector>

#include "dynamics/mover.hpp"
#include "dynamics/particles.hpp"
#include "fmm/pointgen.hpp"
#include "fmm/session.hpp"
#include "trace/trace.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {
namespace {

constexpr Box kDomain{{0.5, 0.5, 0.5}, 0.5};

std::shared_ptr<const Kernel> laplace() {
  static const auto k = std::make_shared<const LaplaceKernel>();
  return k;
}

void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Positions after each of `steps` Langevin steps -- a pure function of the
/// seed, so every (executor, thread-count) run prices the same trajectory.
std::vector<std::vector<Vec3>> trajectory(std::size_t n, int steps,
                                          std::uint64_t seed) {
  auto ps = dynamics::ParticleSystem::random(n, kDomain, seed);
  dynamics::LangevinMover mover(seed + 1, {.sigma = 0.015});
  std::vector<std::vector<Vec3>> out;
  for (int s = 0; s < steps; ++s) {
    mover.advance(ps);
    out.push_back(ps.pos);
  }
  return out;
}

double operator_builds(const trace::TraceSession& session) {
  const auto totals = session.counter_totals();
  const auto it = totals.find("fmm.operators.builds");
  return it == totals.end() ? 0.0 : it->second;
}

// The acceptance-criteria differential: a 32-step trajectory, every step's
// potentials bitwise-identical between the incremental session and a fresh
// evaluator, across OMP thread counts {1, 2, 4} and both executors. The
// fresh-evaluator reference is computed once (it is thread-count invariant,
// which test_invariance pins); each session run is compared against it.
TEST(FmmSession, ThirtyTwoStepDifferentialAcrossThreadsAndExecutors) {
  constexpr std::size_t kN = 1200;
  constexpr int kSteps = 32;
  const Octree::Params tp{.max_points_per_box = 32, .domain = kDomain};
  const FmmConfig fcfg{.p = 3};
  const auto traj = trajectory(kN, kSteps, 11);
  util::Rng rng(12);
  const auto dens = random_densities(kN, rng);

  set_threads(4);
  std::vector<std::vector<double>> ref;
  ref.reserve(kSteps);
  for (const auto& pos : traj) {
    FmmEvaluator fresh(*laplace(), pos, tp, fcfg);
    ref.push_back(fresh.evaluate(dens));
  }

  for (const FmmExecutor exec : {FmmExecutor::kPhases, FmmExecutor::kDag}) {
    for (const int threads : {1, 2, 4}) {
      set_threads(threads);
      FmmSession session(laplace(), traj.front(), {tp, fcfg, exec});
      std::vector<double> phi(kN);
      for (int s = 0; s < kSteps; ++s) {
        session.move_to(traj[static_cast<std::size_t>(s)]);
        session.evaluate_into(dens, phi);
        ASSERT_EQ(std::memcmp(phi.data(),
                              ref[static_cast<std::size_t>(s)].data(),
                              kN * sizeof(double)),
                  0)
            << "step " << s << " executor " << static_cast<int>(exec)
            << " threads " << threads;
      }
      const auto& st = session.stats();
      EXPECT_EQ(st.moves, static_cast<std::uint64_t>(kSteps));
      EXPECT_EQ(st.refits + st.rebuilds, st.moves);
      // The trajectory must exercise the steady-state path, not just fall
      // back to rebuilds.
      EXPECT_GT(st.refits, 0u);
    }
  }
  set_threads(4);
}

TEST(FmmSession, PlanReusedAcrossRebuilds) {
  // Q=48 over 1024 uniform points: depth-2 tree with ~16 points per cell,
  // far under the bound. Draining octant 0 below Q makes it a level-1 leaf
  // in a fresh build (the internal-node bound refuses the refit) while the
  // generous Q headroom keeps the tree depth unchanged -- exactly the
  // rebuild-without-deepening case that must reuse the plan.
  util::Rng rng(13);
  const auto pts = uniform_cube(1024, rng);
  const Octree::Params tp{.max_points_per_box = 48, .domain = kDomain};

  trace::TraceSession trace_session;
  trace::SessionGuard guard(trace_session);
  FmmSession session(laplace(), pts, {tp, FmmConfig{.p = 3}});
  EXPECT_EQ(operator_builds(trace_session), 1.0);
  const int depth0 = session.evaluator().tree().max_depth();

  // Evict all but 20 of octant 0's points, spreading them over the other
  // seven octants (same within-octant offsets, so densities stay mild).
  auto drained = pts;
  int kept = 0;
  int spread = 0;
  for (auto& p : drained) {
    if (p.x >= 0.5 || p.y >= 0.5 || p.z >= 0.5) continue;
    if (kept < 20) {
      ++kept;
      continue;
    }
    const int o = 1 + spread++ % 7;
    p = {p.x + (o & 1 ? 0.5 : 0.0), p.y + (o & 2 ? 0.5 : 0.0),
         p.z + (o & 4 ? 0.5 : 0.0)};
  }
  const auto dens = std::vector<double>(pts.size(), 1.0);
  session.move_to(drained);
  (void)session.evaluate(dens);
  session.move_to(pts);  // back: the level-1 leaf now overflows, rebuild again
  (void)session.evaluate(dens);

  EXPECT_EQ(session.stats().rebuilds, 2u);
  EXPECT_EQ(session.evaluator().tree().max_depth(), depth0);
  // Rebuilds reuse the plan: still exactly one operator build.
  EXPECT_EQ(operator_builds(trace_session), 1.0);
  EXPECT_EQ(session.stats().plan_builds, 1u);
}

TEST(FmmSession, DeeperTreeForcesNewPlan) {
  util::Rng rng(14);
  const auto pts = uniform_cube(512, rng);
  const Octree::Params tp{.max_points_per_box = 32, .domain = kDomain};

  trace::TraceSession trace_session;
  trace::SessionGuard guard(trace_session);
  FmmSession session(laplace(), pts, {tp, FmmConfig{.p = 3}});
  const int depth0 = session.evaluator().tree().max_depth();
  const auto plan0 = session.plan();

  // Collapse everything into a tight ball: Q forces much deeper leaves than
  // the initial plan was built for.
  std::vector<Vec3> ball(pts.size());
  for (auto& p : ball)
    p = {0.3 + 1e-3 * rng.uniform(), 0.3 + 1e-3 * rng.uniform(),
         0.3 + 1e-3 * rng.uniform()};
  session.move_to(ball);
  ASSERT_GT(session.evaluator().tree().max_depth(), depth0);
  EXPECT_NE(session.plan(), plan0);
  EXPECT_EQ(session.stats().plan_builds, 2u);
  EXPECT_EQ(operator_builds(trace_session), 2.0);

  // And the session still evaluates the new configuration exactly.
  const auto dens = random_densities(pts.size(), rng);
  const auto phi = session.evaluate(dens);
  FmmEvaluator fresh(*laplace(), ball, tp, FmmConfig{.p = 3});
  const auto ref = fresh.evaluate(dens);
  EXPECT_EQ(std::memcmp(phi.data(), ref.data(), phi.size() * sizeof(double)),
            0);
}

TEST(FmmSession, EvaluateMatchesEvaluateInto) {
  util::Rng rng(15);
  const auto pts = uniform_cube(600, rng);
  const auto dens = random_densities(600, rng);
  FmmSession session(laplace(), pts,
                     {{.max_points_per_box = 32, .domain = kDomain},
                      FmmConfig{.p = 3}});
  const auto a = session.evaluate(dens);
  std::vector<double> b(pts.size());
  session.evaluate_into(dens, b);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

TEST(FmmSession, ValidatesConstructionAndMoves) {
  util::Rng rng(16);
  const auto pts = uniform_cube(64, rng);
  const FmmSession::Config cfg{{.max_points_per_box = 16, .domain = kDomain},
                               FmmConfig{.p = 3}};
  EXPECT_THROW(FmmSession(nullptr, pts, cfg), util::ContractError);
  // A session without a fixed protocol domain cannot reuse anything.
  EXPECT_THROW(FmmSession(laplace(), pts,
                          {{.max_points_per_box = 16}, FmmConfig{.p = 3}}),
               util::ContractError);

  FmmSession session(laplace(), pts, cfg);
  auto wrong_count = pts;
  wrong_count.pop_back();
  EXPECT_THROW(session.move_to(wrong_count), util::ContractError);
  auto escaped = pts;
  escaped[0].y = 2.0;
  EXPECT_THROW(session.move_to(escaped), util::ContractError);
}

}  // namespace
}  // namespace eroof::fmm
