// Engine-level Tuning::refresh integration: the opt-in closed loop measures
// each tuned step in service, streams the samples through the drift
// detector, refits on a thermal ramp, and rebaselines the chain DP -- all
// bitwise-reproducibly across OpenMP thread counts (the measurement noise
// is identity-keyed by (measure_seed, step), never by execution history).
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "dynamics/engine.hpp"
#include "dynamics/mover.hpp"
#include "dynamics/particles.hpp"
#include "util/require.hpp"

namespace eroof::dynamics {
namespace {

constexpr fmm::Box kDomain{{0.5, 0.5, 0.5}, 0.5};

std::shared_ptr<const fmm::Kernel> laplace() {
  static const auto k = std::make_shared<const fmm::LaplaceKernel>();
  return k;
}

DynamicsEngine::Config refresh_config() {
  DynamicsEngine::Config cfg;
  cfg.session.tree = {.max_points_per_box = 32, .domain = kDomain};
  cfg.session.fmm = {.p = 3};
  cfg.tuning.context = TuneContext::tegra_default();
  cfg.tuning.refresh.enabled = true;
  // An aggressive ramp: leakage climbs 1.0 -> 2.0 over steps 2..8, far past
  // the 5% drift bound, so the detector must fire within the run.
  cfg.tuning.refresh.ramp = {1.0, 2.0, 2, 6, 0.0, 11};
  cfg.tuning.refresh.online.min_observations = 10;
  cfg.tuning.refresh.online.cooldown = 10;
  cfg.tuning.refresh.measure_seed = 77;
  return cfg;
}

TEST(RefreshLoop, ThermalDriftTriggersRefitAndRebaseline) {
  DynamicsEngine engine(laplace(), ParticleSystem::random(700, kDomain, 51),
                        refresh_config());
  LeapfrogMover mover({.dt = 1e-6});  // negligible structural drift
  for (int s = 0; s < 12; ++s) engine.step(mover);

  ASSERT_NE(engine.refresh(), nullptr);
  const auto& st = engine.stats();
  EXPECT_EQ(st.steps, 12u);
  // The model-side detector fired at least once on the 2x leakage ramp...
  EXPECT_GE(st.refreshes, 1u);
  EXPECT_EQ(engine.refresh()->stats().refreshes, st.refreshes);
  // ...and every refresh re-ran the DP on top of the step-0 search.
  EXPECT_GE(st.tunes, 1u + st.refreshes);
  // In-service measurement accumulated real energy/time at the final scale.
  EXPECT_GT(st.measured_energy_j, 0.0);
  EXPECT_GT(st.measured_time_s, 0.0);
  EXPECT_DOUBLE_EQ(st.last_leak_scale, 2.0);
  // Each step observed 6 FMM phases + 1 idle probe.
  EXPECT_EQ(engine.refresh()->stats().observations, 12u * 7u);
  // The refit moved the model toward the hot regime: its constant power at
  // the seed grid's top setting now exceeds the frozen seed model's.
  const auto& ctx = *refresh_config().tuning.context;
  EXPECT_GT(engine.refresh()->model().constant_power_w(ctx.grid.back()),
            ctx.model.constant_power_w(ctx.grid.back()));
}

TEST(RefreshLoop, BitwiseDeterministicAcrossThreadCounts) {
  struct Outcome {
    std::vector<double> energies;
    double measured_j = 0;
    double drift = 0;
    std::uint64_t refreshes = 0;
  };
  auto run = [](int threads) {
#ifdef _OPENMP
    const int saved = omp_get_max_threads();
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    DynamicsEngine engine(laplace(), ParticleSystem::random(600, kDomain, 52),
                          refresh_config());
    LeapfrogMover mover({.dt = 1e-6});
    Outcome out;
    for (int s = 0; s < 10; ++s) {
      engine.step(mover);
      out.energies.push_back(engine.potential_energy());
    }
    out.measured_j = engine.stats().measured_energy_j;
    out.drift = engine.stats().drift;
    out.refreshes = engine.stats().refreshes;
#ifdef _OPENMP
    omp_set_num_threads(saved);
#endif
    return out;
  };
  const Outcome base = run(1);
  for (const int threads : {2, 4}) {
    const Outcome other = run(threads);
    ASSERT_EQ(other.energies.size(), base.energies.size());
    for (std::size_t i = 0; i < base.energies.size(); ++i)
      EXPECT_EQ(std::memcmp(&other.energies[i], &base.energies[i],
                            sizeof(double)),
                0)
          << "potential energy diverged at step " << i << ", " << threads
          << " threads";
    EXPECT_EQ(
        std::memcmp(&other.measured_j, &base.measured_j, sizeof(double)), 0)
        << "measured energy diverged at " << threads << " threads";
    EXPECT_EQ(std::memcmp(&other.drift, &base.drift, sizeof(double)), 0)
        << "drift EWMA diverged at " << threads << " threads";
    EXPECT_EQ(other.refreshes, base.refreshes);
  }
}

TEST(RefreshLoop, RefreshWithoutContextIsRejected) {
  DynamicsEngine::Config cfg;
  cfg.session.tree = {.max_points_per_box = 32, .domain = kDomain};
  cfg.session.fmm = {.p = 3};
  cfg.tuning.refresh.enabled = true;  // but no TuneContext
  EXPECT_THROW(
      DynamicsEngine(laplace(), ParticleSystem::random(64, kDomain, 53), cfg),
      util::ContractError);
}

TEST(RefreshLoop, RefreshOffLeavesMeasurementStatsZero) {
  DynamicsEngine::Config cfg;
  cfg.session.tree = {.max_points_per_box = 32, .domain = kDomain};
  cfg.session.fmm = {.p = 3};
  cfg.tuning.context = TuneContext::tegra_default();
  DynamicsEngine engine(laplace(), ParticleSystem::random(400, kDomain, 54),
                        cfg);
  LeapfrogMover mover({.dt = 1e-6});
  for (int s = 0; s < 3; ++s) engine.step(mover);
  EXPECT_EQ(engine.refresh(), nullptr);
  EXPECT_EQ(engine.stats().refreshes, 0u);
  EXPECT_EQ(engine.stats().measured_energy_j, 0.0);
  EXPECT_EQ(engine.stats().measured_time_s, 0.0);
  EXPECT_EQ(engine.stats().drift, 0.0);
  EXPECT_DOUBLE_EQ(engine.stats().last_leak_scale, 1.0);
}

}  // namespace
}  // namespace eroof::dynamics
