// Movers and ParticleSystem: bitwise reproducibility across OpenMP thread
// counts (the identity-keyed RngStream contract), seed determinism, and the
// reflecting-wall invariant that keeps every particle inside the fixed
// domain the session's protocol requires.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstring>

#include "dynamics/mover.hpp"
#include "dynamics/particles.hpp"
#include "util/require.hpp"

namespace eroof::dynamics {
namespace {

constexpr fmm::Box kDomain{{0.5, 0.5, 0.5}, 0.5};

void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

::testing::AssertionResult positions_equal(const ParticleSystem& a,
                                           const ParticleSystem& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size mismatch";
  if (std::memcmp(a.pos.data(), b.pos.data(),
                  a.pos.size() * sizeof(fmm::Vec3)) != 0)
    return ::testing::AssertionFailure() << "positions differ";
  if (std::memcmp(a.vel.data(), b.vel.data(),
                  a.vel.size() * sizeof(fmm::Vec3)) != 0)
    return ::testing::AssertionFailure() << "velocities differ";
  return ::testing::AssertionSuccess();
}

bool inside_domain(const ParticleSystem& ps) {
  for (const auto& p : ps.pos)
    if (!ps.domain.contains(p)) return false;
  return true;
}

TEST(ParticleSystem, RandomIsDeterministicAndFillBounded) {
  const auto a = ParticleSystem::random(500, kDomain, 21, 0.8);
  const auto b = ParticleSystem::random(500, kDomain, 21, 0.8);
  EXPECT_TRUE(positions_equal(a, b));
  ASSERT_EQ(a.charge.size(), 500u);
  for (const auto& p : a.pos) {
    EXPECT_LE(std::abs(p.x - 0.5), 0.5 * 0.8);
    EXPECT_LE(std::abs(p.y - 0.5), 0.5 * 0.8);
    EXPECT_LE(std::abs(p.z - 0.5), 0.5 * 0.8);
  }
  const auto c = ParticleSystem::random(500, kDomain, 22, 0.8);
  EXPECT_FALSE(positions_equal(a, c));
  EXPECT_THROW(ParticleSystem::random(0, kDomain, 1), util::ContractError);
}

TEST(LangevinMover, BitwiseIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    set_threads(threads);
    auto ps = ParticleSystem::random(700, kDomain, 23);
    LangevinMover mover(24, {.sigma = 0.05});
    for (int s = 0; s < 10; ++s) mover.advance(ps);
    return ps;
  };
  const auto serial = run(1);
  EXPECT_TRUE(positions_equal(serial, run(2)));
  EXPECT_TRUE(positions_equal(serial, run(4)));
  set_threads(4);
}

TEST(LeapfrogMover, BitwiseIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    set_threads(threads);
    auto ps = ParticleSystem::random(700, kDomain, 25);
    LeapfrogMover mover({.dt = 0.05, .omega = 2.0});
    for (int s = 0; s < 10; ++s) mover.advance(ps);
    return ps;
  };
  const auto serial = run(1);
  EXPECT_TRUE(positions_equal(serial, run(2)));
  EXPECT_TRUE(positions_equal(serial, run(4)));
  set_threads(4);
}

TEST(LangevinMover, SameSeedSameTrajectoryDifferentSeedDiffers) {
  auto ps_a = ParticleSystem::random(300, kDomain, 26);
  auto ps_b = ParticleSystem::random(300, kDomain, 26);
  auto ps_c = ParticleSystem::random(300, kDomain, 26);
  LangevinMover a(27), b(27), c(28);
  for (int s = 0; s < 5; ++s) {
    a.advance(ps_a);
    b.advance(ps_b);
    c.advance(ps_c);
  }
  EXPECT_TRUE(positions_equal(ps_a, ps_b));
  EXPECT_FALSE(positions_equal(ps_a, ps_c));
}

TEST(Movers, ReflectingWallsKeepParticlesInsideTheDomain) {
  // Aggressive parameters so reflections actually fire: large kicks for
  // leapfrog, heavy noise for Langevin. Every position must stay inside the
  // (closed) domain box -- the precondition for session refits.
  auto lf = ParticleSystem::random(400, kDomain, 29);
  LeapfrogMover leap({.dt = 0.5, .omega = 3.0});
  for (int s = 0; s < 50; ++s) {
    leap.advance(lf);
    ASSERT_TRUE(inside_domain(lf)) << "leapfrog step " << s;
  }

  auto lv = ParticleSystem::random(400, kDomain, 30);
  LangevinMover langevin(31, {.dt = 0.1, .gamma = 0.1, .sigma = 2.0});
  for (int s = 0; s < 50; ++s) {
    langevin.advance(lv);
    ASSERT_TRUE(inside_domain(lv)) << "langevin step " << s;
  }
}

}  // namespace
}  // namespace eroof::dynamics
