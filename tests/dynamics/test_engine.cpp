// DynamicsEngine: the step contract (energy from the session's exact
// potentials), trajectory reproducibility across thread counts, and the
// amortized-tuning loop -- one search up front, re-searches only when the
// structural drift monitor fires.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "dynamics/engine.hpp"
#include "dynamics/mover.hpp"
#include "dynamics/particles.hpp"
#include "util/require.hpp"

namespace eroof::dynamics {
namespace {

constexpr fmm::Box kDomain{{0.5, 0.5, 0.5}, 0.5};

std::shared_ptr<const fmm::Kernel> laplace() {
  static const auto k = std::make_shared<const fmm::LaplaceKernel>();
  return k;
}

DynamicsEngine::Config untuned_config() {
  DynamicsEngine::Config cfg;
  cfg.session.tree = {.max_points_per_box = 32, .domain = kDomain};
  cfg.session.fmm = {.p = 3};
  return cfg;
}

TEST(DynamicsEngine, EnergyMatchesPotentialsAndStatsAdvance) {
  DynamicsEngine engine(laplace(), ParticleSystem::random(600, kDomain, 41),
                        untuned_config());
  LangevinMover mover(42);
  for (int s = 0; s < 4; ++s) engine.step(mover);

  EXPECT_EQ(engine.stats().steps, 4u);
  EXPECT_EQ(engine.stats().tunes, 0u);  // tuning off
  EXPECT_EQ(engine.schedule(), nullptr);
  EXPECT_EQ(engine.session().stats().moves, 4u);

  const auto phi = engine.potentials();
  const auto& ps = engine.particles();
  ASSERT_EQ(phi.size(), ps.size());
  double e = 0;
  for (std::size_t i = 0; i < phi.size(); ++i) e += ps.charge[i] * phi[i];
  EXPECT_DOUBLE_EQ(engine.potential_energy(), 0.5 * e);
}

TEST(DynamicsEngine, TrajectoryBitwiseIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    DynamicsEngine engine(laplace(), ParticleSystem::random(500, kDomain, 43),
                          untuned_config());
    LangevinMover mover(44);
    std::vector<double> energies;
    for (int s = 0; s < 6; ++s) {
      engine.step(mover);
      energies.push_back(engine.potential_energy());
    }
    return energies;
  };
  const auto serial = run(1);
  const auto four = run(4);
  ASSERT_EQ(serial.size(), four.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(std::memcmp(&serial[i], &four[i], sizeof(double)), 0)
        << "step " << i;
#ifdef _OPENMP
  omp_set_num_threads(4);
#endif
}

TEST(DynamicsEngine, AmortizedTuningSearchesOnceInTheSteadyState) {
  auto cfg = untuned_config();
  cfg.tuning.context = TuneContext::tegra_default();
  DynamicsEngine engine(laplace(), ParticleSystem::random(800, kDomain, 45),
                        cfg);
  // Tiny time step: negligible drift, every move refits, the structural
  // work never diverges -- so exactly the step-0 search runs.
  LeapfrogMover mover({.dt = 1e-6});
  for (int s = 0; s < 5; ++s) engine.step(mover);

  EXPECT_EQ(engine.stats().tunes, 1u);
  ASSERT_NE(engine.schedule(), nullptr);
  EXPECT_GT(engine.schedule()->pred_energy_j, 0.0);
  ASSERT_NE(engine.schedule_reuse(), nullptr);
  EXPECT_EQ(engine.schedule_reuse()->stats().reuses, 4u);
}

TEST(DynamicsEngine, RetunesWhenTheTreeStructureShifts) {
  auto cfg = untuned_config();
  cfg.tuning.context = TuneContext::tegra_default();
  cfg.tuning.retune_bound = 0.05;
  DynamicsEngine engine(laplace(), ParticleSystem::random(800, kDomain, 46),
                        cfg);
  // Heavy noise churns leaf occupancy (rebuilds + changed interaction
  // lists), which moves the per-phase structural work past any tight bound.
  LangevinMover mover(47, {.dt = 0.1, .gamma = 0.1, .sigma = 1.0});
  for (int s = 0; s < 6; ++s) engine.step(mover);
  EXPECT_GT(engine.stats().tunes, 1u);
  EXPECT_LE(engine.stats().tunes, engine.stats().steps);
}

TEST(DynamicsEngine, ValidatesParticleConfigAgreement) {
  auto ps = ParticleSystem::random(64, kDomain, 48);
  ps.charge.pop_back();
  EXPECT_THROW(DynamicsEngine(laplace(), ps, untuned_config()),
               util::ContractError);

  auto shifted = ParticleSystem::random(64, kDomain, 48);
  shifted.domain = {{0.0, 0.0, 0.0}, 1.0};
  EXPECT_THROW(DynamicsEngine(laplace(), shifted, untuned_config()),
               util::ContractError);
}

}  // namespace
}  // namespace eroof::dynamics
