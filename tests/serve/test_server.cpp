// FmmServer end-to-end: the serving contract (every response bitwise
// identical to a fresh single-threaded FmmEvaluator run, independent of
// worker count, arrival order, and cache hits vs misses), admission-control
// shedding, plan-cache accounting through the server, and the DVFS schedule
// attached to responses.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "fmm/evaluator.hpp"
#include "serve/plan_cache.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

namespace eroof::serve {
namespace {

::testing::AssertionResult bitwise_equal(const std::vector<double>& got,
                                         const std::vector<double>& want) {
  if (got.size() != want.size())
    return ::testing::AssertionFailure()
           << "size " << got.size() << " vs " << want.size();
  for (std::size_t i = 0; i < got.size(); ++i)
    if (std::memcmp(&got[i], &want[i], sizeof(double)) != 0)
      return ::testing::AssertionFailure()
             << "element " << i << ": " << got[i] << " vs " << want[i];
  return ::testing::AssertionSuccess();
}

/// Small-but-multi-level workload: two sizes so two distinct plan keys
/// (uniform depths) occur, Q=8 to keep trees deep at small N.
WorkloadConfig small_workload() {
  WorkloadConfig cfg;
  cfg.sizes = {256, 1024};
  cfg.max_points_per_box = 8;
  return cfg;
}

/// The contract's reference: a fresh evaluator, built from scratch (its own
/// plan, no sharing), run single-threaded with the phases executor.
std::vector<double> reference_solve(const FmmRequest& req) {
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  const auto kernel = make_kernel(req.kernel);
  fmm::Octree::Params tp;
  tp.max_points_per_box = req.max_points_per_box;
  tp.uniform_depth = fmm::Octree::uniform_depth_for(req.points.size(),
                                                    req.max_points_per_box);
  tp.domain = kServeDomain;
  fmm::FmmEvaluator ev(*kernel, req.points, tp, fmm::FmmConfig{.p = req.p});
  auto phi = ev.evaluate(req.densities);
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
  return phi;
}

TEST(FmmServer, ResponsesBitwiseMatchFreshEvaluatorAcrossWorkerCounts) {
  const WorkloadConfig wl = small_workload();
  constexpr std::uint64_t kRequests = 8;
  std::vector<FmmRequest> requests;
  std::vector<std::vector<double>> want;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    requests.push_back(make_request(wl, i));
    want.push_back(reference_solve(requests.back()));
  }

  for (const int workers : {1, 2, 4}) {
    for (const std::size_t capacity : {std::size_t{0}, std::size_t{16}}) {
      ServerConfig cfg;
      cfg.workers = workers;
      cfg.queue_capacity = kRequests;
      cfg.plan_cache_capacity = capacity;
      FmmServer server(cfg);
      // Reversed submission order: arrival order must not matter.
      std::vector<std::future<FmmResponse>> futures(kRequests);
      for (std::size_t i = kRequests; i-- > 0;)
        futures[i] = server.submit(requests[i]);
      for (std::size_t i = 0; i < kRequests; ++i) {
        const FmmResponse resp = futures[i].get();
        ASSERT_EQ(resp.status, ServeStatus::kOk);
        EXPECT_EQ(resp.id, requests[i].id);
        EXPECT_TRUE(bitwise_equal(resp.potentials, want[i]))
            << "request " << i << " workers=" << workers
            << " cache_capacity=" << capacity;
      }
      const auto stats = server.stats();
      EXPECT_EQ(stats.served, kRequests);
      EXPECT_EQ(stats.shed, 0u);
    }
  }
}

TEST(FmmServer, CacheHitsServeSamePlanAndIdenticalResults) {
  const WorkloadConfig wl = small_workload();
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.plan_cache_capacity = 8;
  FmmServer server(cfg);

  // Same request served twice: the second must be a plan-cache hit with
  // bitwise-identical potentials.
  const FmmRequest req = make_request(wl, 0);
  const FmmResponse cold = server.serve_now(req);
  const FmmResponse warm = server.serve_now(req);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.plan_key, warm.plan_key);
  EXPECT_TRUE(bitwise_equal(warm.potentials, cold.potentials));
  EXPECT_TRUE(bitwise_equal(cold.potentials, reference_solve(req)));

  // A different size -> different depth -> different plan key, its own miss.
  const FmmRequest other = make_request(wl, 1);
  const FmmResponse r2 = server.serve_now(other);
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_NE(r2.plan_key, cold.plan_key);

  const auto stats = server.stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 2u);
}

TEST(FmmServer, AdmissionControlShedsWhenQueueFull) {
  const WorkloadConfig wl = small_workload();
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  FmmServer server(cfg);

  constexpr std::uint64_t kRequests = 12;
  std::vector<std::future<FmmResponse>> futures;
  for (std::uint64_t i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(make_request(wl, i % 2)));
  std::uint64_t ok = 0, shed = 0;
  for (auto& f : futures) {
    const FmmResponse resp = f.get();
    if (resp.status == ServeStatus::kOk) {
      ++ok;
      EXPECT_FALSE(resp.potentials.empty());
    } else {
      ++shed;
      EXPECT_TRUE(resp.potentials.empty());
    }
  }
  EXPECT_EQ(ok + shed, kRequests);
  // A 1-deep queue with a single worker cannot absorb 12 instant arrivals.
  EXPECT_GE(shed, 1u);
  const auto stats = server.stats();
  EXPECT_EQ(stats.served, ok);
  EXPECT_EQ(stats.shed, shed);
}

TEST(FmmServer, InvalidRequestsAreRejectedAtAdmissionNotCrashed) {
  // One malformed request used to throw inside the worker thread and
  // std::terminate the whole server. Now validation runs at admission and
  // answers kInvalid; the server keeps serving afterwards.
  const WorkloadConfig wl = small_workload();
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 8;
  FmmServer server(cfg);

  FmmRequest empty;  // no points at all
  empty.id = 100;

  FmmRequest mismatched = make_request(wl, 0);
  mismatched.id = 101;
  mismatched.densities.pop_back();

  FmmRequest outside = make_request(wl, 1);
  outside.id = 102;
  outside.points[0] = {2.0, 2.0, 2.0};  // outside kServeDomain

  for (FmmRequest* bad : {&empty, &mismatched, &outside}) {
    const FmmResponse resp = server.submit(*bad).get();
    EXPECT_EQ(resp.status, ServeStatus::kInvalid) << "id " << bad->id;
    EXPECT_FALSE(resp.error.empty());
    EXPECT_TRUE(resp.potentials.empty());
  }
  // serve_now applies the same validation.
  const FmmResponse direct = server.serve_now(outside);
  EXPECT_EQ(direct.status, ServeStatus::kInvalid);
  EXPECT_FALSE(direct.error.empty());

  // The server is still healthy: a valid request solves normally.
  const FmmRequest good = make_request(wl, 0);
  const FmmResponse ok = server.submit(good).get();
  ASSERT_EQ(ok.status, ServeStatus::kOk);
  EXPECT_TRUE(bitwise_equal(ok.potentials, reference_solve(good)));

  const auto stats = server.stats();
  EXPECT_EQ(stats.invalid, 4u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.served, 1u);
}

TEST(FmmServer, ValidateRequestEnforcesTheProtocolDomain) {
  const WorkloadConfig wl = small_workload();
  FmmRequest req = make_request(wl, 0);
  EXPECT_TRUE(validate_request(req).empty());
  req.points[3] = {0.5, 0.5, 1.0 + 1e-9};  // barely past the +z face
  EXPECT_FALSE(validate_request(req).empty());
  req = make_request(wl, 0);
  req.points.clear();
  EXPECT_FALSE(validate_request(req).empty());
}

TEST(FmmServer, SubmitAfterShutdownSheds) {
  const WorkloadConfig wl = small_workload();
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  FmmServer server(cfg);
  server.shutdown();
  const FmmResponse resp = server.submit(make_request(wl, 0)).get();
  EXPECT_EQ(resp.status, ServeStatus::kShed);
}

TEST(FmmServer, ScheduleContextAttachesPerPhaseSchedule) {
  const auto ctx = ScheduleContext::tegra_default();
  const WorkloadConfig wl = small_workload();
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  cfg.plan_cache_capacity = 4;
  cfg.schedule_ctx = ctx;
  FmmServer server(cfg);

  const FmmRequest req = make_request(wl, 0);
  const FmmResponse cold = server.serve_now(req);
  const FmmResponse warm = server.serve_now(req);
  // Six FMM phases, each with a grid label the context's grid knows.
  ASSERT_EQ(cold.schedule.setting_labels.size(), 6u);
  EXPECT_GT(cold.schedule.pred_time_s, 0.0);
  EXPECT_GT(cold.schedule.pred_energy_j, 0.0);
  // The schedule is memoized per (plan key, N): a repeat of the same
  // request shape agrees exactly, cache hit or miss.
  EXPECT_EQ(warm.schedule.setting_labels, cold.schedule.setting_labels);
  EXPECT_EQ(warm.schedule.pred_energy_j, cold.schedule.pred_energy_j);
}

TEST(FmmServer, ScheduleIsKeyedByRequestSizeNotJustPlanKey) {
  // N=256 and N=320 at Q=8 share a uniform depth (2) and therefore one
  // plan-cache key, but their phase workloads differ, so each size gets
  // its own memoized schedule -- independent of which size arrived first
  // (the reviewer's arrival-order/cache-state dependence).
  const auto ctx = ScheduleContext::tegra_default();
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  cfg.plan_cache_capacity = 4;
  cfg.schedule_ctx = ctx;

  WorkloadConfig small = small_workload();
  small.sizes = {256};
  WorkloadConfig larger = small_workload();
  larger.sizes = {320};
  const FmmRequest a = make_request(small, 0);
  const FmmRequest b = make_request(larger, 0);

  FmmServer first_order(cfg);
  const FmmResponse a1 = first_order.serve_now(a);
  const FmmResponse b1 = first_order.serve_now(b);
  ASSERT_EQ(a1.plan_key, b1.plan_key);  // one shared plan...
  EXPECT_TRUE(b1.cache_hit);            // ...b rides a's plan build

  FmmServer second_order(cfg);  // reversed arrival order, fresh caches
  const FmmResponse b2 = second_order.serve_now(b);
  const FmmResponse a2 = second_order.serve_now(a);

  // Each size's schedule is identical no matter who built the plan.
  EXPECT_EQ(a1.schedule.setting_labels, a2.schedule.setting_labels);
  EXPECT_EQ(a1.schedule.pred_time_s, a2.schedule.pred_time_s);
  EXPECT_EQ(a1.schedule.pred_energy_j, a2.schedule.pred_energy_j);
  EXPECT_EQ(b1.schedule.setting_labels, b2.schedule.setting_labels);
  EXPECT_EQ(b1.schedule.pred_time_s, b2.schedule.pred_time_s);
  EXPECT_EQ(b1.schedule.pred_energy_j, b2.schedule.pred_energy_j);
  // And the two sizes really were scheduled from different workloads.
  EXPECT_NE(a1.schedule.pred_time_s, b1.schedule.pred_time_s);
}

}  // namespace
}  // namespace eroof::serve
