// ShardedLruCache: hit/miss/eviction accounting (atomics and trace
// registry), LRU eviction order under a tiny capacity, build-once under
// concurrent get_or_build of one key, builder-exception retry, and the
// capacity-0 bypass mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "trace/trace.hpp"

namespace eroof::serve {
namespace {

std::shared_ptr<const int> boxed(int v) {
  return std::make_shared<const int>(v);
}

TEST(ShardedLruCache, HitMissAccounting) {
  trace::TraceSession session;
  trace::SessionGuard guard(session);
  ShardedLruCache<int> cache({.capacity = 4, .shards = 2});

  auto first = cache.get_or_build("a", [] { return boxed(1); });
  EXPECT_FALSE(first.hit);
  EXPECT_EQ(*first.value, 1);
  auto second = cache.get_or_build("a", [] { return boxed(99); });
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(*second.value, 1);  // cached value, builder not re-run
  EXPECT_EQ(second.value.get(), first.value.get());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  const auto totals = session.counter_totals();
  EXPECT_EQ(totals.at("serve.cache.hit"), 1.0);
  EXPECT_EQ(totals.at("serve.cache.miss"), 1.0);
  EXPECT_EQ(totals.count("serve.cache.eviction"), 0u);
}

TEST(ShardedLruCache, LruEvictionUnderTinyCapacity) {
  // One shard so eviction order is exactly global LRU.
  ShardedLruCache<int> cache({.capacity = 2, .shards = 1});
  (void)cache.get_or_build("a", [] { return boxed(1); });
  (void)cache.get_or_build("b", [] { return boxed(2); });
  (void)cache.get_or_build("a", [] { return boxed(0); });  // a now MRU
  (void)cache.get_or_build("c", [] { return boxed(3); });  // evicts b (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.get_or_build("a", [] { return boxed(0); }).hit);
  bool rebuilt = false;
  (void)cache.get_or_build("b", [&] {
    rebuilt = true;
    return boxed(2);
  });
  EXPECT_TRUE(rebuilt);  // b was the eviction victim
}

TEST(ShardedLruCache, EvictedValueSurvivesForHolders) {
  ShardedLruCache<int> cache({.capacity = 1, .shards = 1});
  auto a = cache.get_or_build("a", [] { return boxed(1); }).value;
  (void)cache.get_or_build("b", [] { return boxed(2); });  // evicts a
  EXPECT_EQ(*a, 1);  // still alive: eviction only drops the cache's ref
}

TEST(ShardedLruCache, ConcurrentGetOrBuildBuildsExactlyOnce) {
  ShardedLruCache<int> cache({.capacity = 4, .shards = 2});
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const int>> results(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] =
          cache
              .get_or_build("key",
                            [&] {
                              builds.fetch_add(1);
                              // Widen the build window so waiters really wait.
                              std::this_thread::sleep_for(
                                  std::chrono::milliseconds(20));
                              return boxed(42);
                            })
              .value;
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(*r, 42);
    EXPECT_EQ(r.get(), results[0].get());  // everyone shares one object
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ShardedLruCache, BuilderExceptionPropagatesAndEntryRetries) {
  ShardedLruCache<int> cache({.capacity = 4, .shards = 1});
  EXPECT_THROW(
      (void)cache.get_or_build(
          "a", []() -> std::shared_ptr<const int> {
            throw std::runtime_error("build failed");
          }),
      std::runtime_error);
  // The failed entry was dropped: the next request rebuilds.
  auto ok = cache.get_or_build("a", [] { return boxed(5); });
  EXPECT_FALSE(ok.hit);
  EXPECT_EQ(*ok.value, 5);
}

TEST(ShardedLruCache, FailedBuildDoesNotDropAReplacementEntry) {
  // Race shape: while a build for "K" is in flight, its entry is
  // LRU-evicted and another thread inserts + completes a fresh entry for
  // the same key. When the original build then fails, cleanup must leave
  // the fresh, healthy entry alone (generation check in drop()); erasing
  // it would force a redundant rebuild.
  ShardedLruCache<int> cache({.capacity = 1, .shards = 1});
  EXPECT_THROW(
      (void)cache.get_or_build(
          "K",
          [&]() -> std::shared_ptr<const int> {
            // A second thread (builders must not re-enter the cache on the
            // same thread) evicts the in-flight "K", then rebuilds it.
            std::thread other([&] {
              (void)cache.get_or_build("evictor", [] { return boxed(1); });
              auto fresh = cache.get_or_build("K", [] { return boxed(2); });
              EXPECT_FALSE(fresh.hit);
              EXPECT_EQ(*fresh.value, 2);
            });
            other.join();
            throw std::runtime_error("original build failed");
          }),
      std::runtime_error);
  // The replacement entry survived the failing call's cleanup.
  auto after = cache.get_or_build("K", [] { return boxed(3); });
  EXPECT_TRUE(after.hit);
  EXPECT_EQ(*after.value, 2);
}

TEST(ShardedLruCache, CapacityZeroBypassesCaching) {
  ShardedLruCache<int> cache({.capacity = 0, .shards = 1});
  int builds = 0;
  for (int i = 0; i < 3; ++i) {
    auto r = cache.get_or_build("a", [&] {
      ++builds;
      return boxed(i);
    });
    EXPECT_FALSE(r.hit);
  }
  EXPECT_EQ(builds, 3);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace eroof::serve
