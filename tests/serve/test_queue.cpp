// BoundedQueue: admission control (full queue rejects without consuming the
// item), FIFO order, close/drain semantics, and MPMC conservation under
// concurrent producers and consumers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "serve/queue.hpp"

namespace eroof::serve {
namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int(i)));
  EXPECT_EQ(q.depth(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueue, FullQueueRejectsAndLeavesItemIntact) {
  BoundedQueue<std::unique_ptr<int>> q(1);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(1)));
  auto extra = std::make_unique<int>(2);
  EXPECT_FALSE(q.try_push(std::move(extra)));
  // The rejected item must survive: the server answers it with a shed
  // response through the promise it still holds.
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, 2);
}

TEST(BoundedQueue, CloseDrainsThenSignalsExit) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8));  // closed: no new admissions
  auto v = q.pop();             // queued work still drains
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(q.pop().has_value());  // drained + closed -> exit signal
  q.close();                          // idempotent
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(2);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  q.close();
  consumer.join();
}

TEST(BoundedQueue, MpmcConservesItems) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> q(64);
  std::mutex mu;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c)
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_TRUE(seen.insert(*v).second);
      }
    });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        while (!q.try_push(std::move(item))) std::this_thread::yield();
      }
    });
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace eroof::serve
