// Lightweight precondition / invariant checking.
//
// EROOF_REQUIRE is always on (it guards public API contracts and costs
// nothing measurable next to the numerical kernels it protects); violations
// throw eroof::util::ContractError so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace eroof::util {

/// Thrown when a function's stated precondition or invariant is violated.
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void contract_fail(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  throw ContractError(std::string(file) + ":" + std::to_string(line) +
                      ": requirement `" + expr + "` failed" +
                      (msg.empty() ? "" : (": " + msg)));
}

}  // namespace eroof::util

#define EROOF_REQUIRE(expr)                                            \
  do {                                                                 \
    if (!(expr)) ::eroof::util::contract_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define EROOF_REQUIRE_MSG(expr, msg)                                   \
  do {                                                                 \
    if (!(expr))                                                       \
      ::eroof::util::contract_fail(#expr, __FILE__, __LINE__, (msg));  \
  } while (false)
