// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the toolkit (measurement noise, point-cloud
// generation, sampling of DVFS settings) draw from Xoshiro256** via this
// wrapper so experiments are reproducible from a single seed.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>

namespace eroof::util {

/// SplitMix64 finalizer (Steele/Lea/Flood): a bijective 64-bit mix with full
/// avalanche, used both for seeding Xoshiro state and for deriving
/// independent per-cell stream keys.
constexpr std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a 64-bit string hash. Unlike std::hash<std::string>, the value is
/// specified, so stream keys derived from workload/setting labels are
/// identical on every platform and standard library.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Xoshiro256** by Blackman & Vigna: small state, excellent statistical
/// quality, and -- unlike std::mt19937 -- identical output on every platform
/// regardless of library vendor.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    auto splitmix = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = splitmix();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    using u128 = unsigned __int128;
    std::uint64_t x = (*this)();
    u128 m = static_cast<u128>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<u128>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0;
    double v = 0;
    double s = 0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0;
  bool have_spare_ = false;
};

/// Deterministic stream splitter: derives independent RNG streams from a root
/// seed plus a path of fork components (integers or strings). Two streams are
/// decorrelated whenever any component differs, and the derived key depends
/// only on the fork *path*, never on the order in which sibling streams are
/// created -- the property that makes parallel loops order-invariant.
///
/// Typical use, one stream per (workload, setting, repeat) cell:
///
///   RngStream root(seed);
///   Rng rng = root.fork(setting.label()).fork(w.name).fork(rep).rng();
class RngStream {
 public:
  explicit RngStream(std::uint64_t root_seed) : key_(splitmix64(root_seed)) {}

  /// Child stream for an integer component (e.g. a repeat index).
  [[nodiscard]] RngStream fork(std::uint64_t component) const {
    return RngStream(splitmix64(key_ ^ splitmix64(component)), forked_tag{});
  }

  /// Child stream for a string component (e.g. a workload or setting label).
  /// FNV-1a keeps the key platform-stable.
  [[nodiscard]] RngStream fork(std::string_view component) const {
    return fork(fnv1a64(component));
  }

  /// The derived 64-bit key; feed it to anything needing a scalar seed.
  [[nodiscard]] std::uint64_t seed() const { return key_; }

  /// Fresh generator seeded from this stream's key.
  [[nodiscard]] Rng rng() const { return Rng(key_); }

 private:
  struct forked_tag {};
  RngStream(std::uint64_t key, forked_tag) : key_(key) {}

  std::uint64_t key_;
};

}  // namespace eroof::util
