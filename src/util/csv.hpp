// Minimal CSV writer for exporting experiment series (figure data) so the
// paper's plots can be regenerated with any external plotting tool.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace eroof::util {

/// Writes rows of doubles with a header line; one file per figure series.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits `columns` as the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Appends one data row; must match the header width.
  void add_row(const std::vector<double>& values);

  /// Appends one row of preformatted cells (for mixed text/number rows).
  void add_row(const std::vector<std::string>& cells);

  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t ncols_;
};

}  // namespace eroof::util
