#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace eroof::util {

Table::Table(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  EROOF_REQUIRE(!headers_.empty());
  if (aligns_.empty()) aligns_.assign(headers_.size(), Align::kRight);
  EROOF_REQUIRE(aligns_.size() == headers_.size());
}

void Table::add_row(std::vector<std::string> cells) {
  EROOF_REQUIRE_MSG(cells.size() == headers_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      if (aligns_[c] == Align::kRight)
        os << std::setw(static_cast<int>(width[c])) << std::right << row[c];
      else
        os << std::setw(static_cast<int>(width[c])) << std::left << row[c];
    }
    os << '\n';
  };

  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) rule += "  ";
    rule += std::string(width[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace eroof::util
