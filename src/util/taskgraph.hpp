// Dependency-counting task-graph executor (the FMM's barrier-free engine).
//
// A TaskGraph is built once -- tasks, edges, seal() -- and then *replayed*
// any number of times: run() resets the prebuilt dependency counters and
// ready ring from their sealed images and executes every task exactly once,
// each task starting only after all of its predecessors have finished. All
// arrays are arena-allocated at seal() time; a replay performs no heap
// allocation, which is what lets FmmEvaluator::evaluate keep its
// zero-steady-state-allocation contract in DAG mode.
//
// Scheduling model: a single shared ready ring with ticket counters. Every
// task is pushed into the ring exactly once (when its dependency count hits
// zero), and each worker claims strictly increasing ring tickets. A worker
// whose ticket has not been published yet spins; progress is guaranteed
// because a DAG always has a pushed-but-unfinished task while unpushed tasks
// remain. This is deliberately simpler than per-worker stealing deques: the
// FMM's tasks are microseconds-coarse, so one contended cache line per pop
// is noise, and the single ring keeps the executor small enough to reason
// about determinism and to sanitize under TSan.
//
// Task bodies come in two flavors:
//
//   * per-task std::function bodies (add_task(tag, body)) -- convenient for
//     unit tests and one-off graphs;
//   * a single shared *runner* (add_task(tag) + set_runner(fn)) -- the
//     runner is called with the task id, and the client dispatches off its
//     own side tables. This keeps a graph of N tasks down to one callable
//     (no N type-erased closures), which matters when graphs are rebound
//     per-request in the serving path.
//
// Topology sharing: the sealed structure (CSR edges, initial dependency
// counts, roots, tags) is immutable and independent of the bodies, so
// share_topology() exposes it as a shared_ptr and the adopting constructor
// TaskGraph(topology) builds a new runnable graph around it without
// re-validating or re-sorting anything. This is how the FMM plan cache
// reuses one sealed DAG skeleton across requests: structure built and
// Kahn-checked once per plan, per-request graphs just attach a runner.
//
// Determinism contract: the executor guarantees *ordering*, not schedule --
// a task observes all writes of its transitive predecessors (release/acquire
// through the dependency counters and ring slots). Clients that want bitwise
// reproducibility across thread counts must therefore arrange that every
// memory location's writers are totally ordered by graph edges; the FMM DAG
// builder does exactly that (DESIGN.md section 11).
//
// Observability: every run stamps each task's start and finish with a value
// drawn from one global monotone epoch counter. Tests use the stamps to
// prove dependency safety (finish(pred) < start(task) for every edge) and
// stress schedules via RunHooks::before_task delay injection.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace eroof::util {

class TaskGraph {
 public:
  /// The immutable sealed structure: everything a replay needs except the
  /// bodies and the per-run counters. Shareable across TaskGraph instances
  /// (and threads) because nothing in it is ever written after seal().
  struct Topology {
    std::vector<int> tags;
    std::vector<int> succ, succ_begin;  ///< CSR successors
    std::vector<int> pred, pred_begin;  ///< CSR predecessors
    std::vector<int> initial_deps;
    std::vector<int> roots;

    std::size_t task_count() const { return tags.size(); }
    std::size_t edge_count() const { return succ.size(); }
  };

  /// Test instrumentation. `before_task(task, worker)` runs on the claiming
  /// worker immediately before the task body; injecting seeded delays there
  /// perturbs the schedule without touching the ordering guarantees.
  struct RunHooks {
    std::function<void(int task, int worker)> before_task;
  };

  TaskGraph() = default;
  /// Adopts an already-sealed topology: the graph starts sealed, with fresh
  /// run arenas, and executes via the runner (set_runner() must be called
  /// before run()). No edge validation or CSR construction happens here.
  explicit TaskGraph(std::shared_ptr<const Topology> topology);
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a task and returns its id (dense, starting at 0). `tag` is an
  /// arbitrary client label (the FMM tags tasks by paper phase so traces
  /// can aggregate busy time per phase).
  int add_task(int tag, std::function<void()> body);

  /// Adds a body-less task dispatched through the shared runner.
  int add_task(int tag);

  /// Installs the shared runner, called as `runner(task)` for every task
  /// added without a body. Required before run() if any such task exists;
  /// may be reinstalled between runs (the serving path rebinds it per
  /// request).
  void set_runner(std::function<void(int task)> runner);

  /// Declares that `after` must not start until `before` has finished.
  /// Both ids must exist; self-edges and duplicate edges are rejected by
  /// contract (duplicates would double-count the dependency).
  void add_edge(int before, int after);

  /// Freezes the graph: builds the CSR successor/predecessor arrays, the
  /// initial dependency-count image, the deterministic root order, and the
  /// ready/stamp arenas. No tasks or edges can be added afterwards.
  void seal();
  bool sealed() const { return sealed_; }

  /// The sealed structure, shareable with other TaskGraph instances via the
  /// adopting constructor. Requires seal().
  std::shared_ptr<const Topology> share_topology() const;

  /// Executes every task once, honoring all edges. `num_threads` <= 0 uses
  /// the OpenMP default. Allocation-free; requires seal().
  void run(int num_threads = 0) { run(RunHooks{}, num_threads); }
  void run(const RunHooks& hooks, int num_threads = 0);

  std::size_t task_count() const { return topo_ ? topo_->task_count() : tags_.size(); }
  std::size_t edge_count() const;
  int tag(int task) const;

  /// Number of predecessors, i.e. the dependency count a replay starts from.
  int initial_dep_count(int task) const {
    return topo().initial_deps[check(task)];
  }
  std::span<const int> successors(int task) const;
  std::span<const int> predecessors(int task) const;

  /// Tasks with no predecessors, in ascending id order (the push order of
  /// every replay's initial ready set).
  std::span<const int> roots() const {
    const auto& r = topo().roots;
    return {r.data(), r.size()};
  }

  /// Completed replays since construction.
  std::uint64_t runs_completed() const { return runs_; }

  /// Epoch stamps of the most recent run, from one global monotone counter:
  /// 0 = task never ran; otherwise start < finish, and for every edge
  /// (u, v) the executor guarantees finish(u) < start(v).
  std::int64_t start_stamp(int task) const {
    return stamps_[check(task)].start.load(std::memory_order_acquire);
  }
  std::int64_t finish_stamp(int task) const {
    return stamps_[check(task)].finish.load(std::memory_order_acquire);
  }

 private:
  struct Stamps {
    std::atomic<std::int64_t> start{0};
    std::atomic<std::int64_t> finish{0};
  };

  std::size_t check(int task) const;
  const Topology& topo() const;
  void alloc_run_arenas(std::size_t n);
  void worker_loop(const RunHooks& hooks, int worker);

  // Build-time state (edge list order is irrelevant; seal() sorts by CSR).
  // Unused when the graph was constructed from a shared topology.
  std::vector<std::function<void()>> bodies_;
  std::vector<int> tags_;
  std::vector<std::pair<int, int>> edges_;
  bool has_runner_tasks_ = false;

  // Sealed state. `topo_` owns the structure (possibly shared with other
  // graphs); the arenas below are private to this instance.
  bool sealed_ = false;
  std::shared_ptr<const Topology> topo_;
  std::function<void(int)> runner_;
  std::unique_ptr<std::atomic<int>[]> deps_;   // live counters of one run
  std::unique_ptr<std::atomic<int>[]> ready_;  // the ready ring (task ids)
  std::unique_ptr<Stamps[]> stamps_;

  // Run-time tickets.
  std::atomic<int> push_pos_{0};
  std::atomic<int> pop_pos_{0};
  std::atomic<std::int64_t> epoch_{0};
  std::uint64_t runs_ = 0;
};

}  // namespace eroof::util
