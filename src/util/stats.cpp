#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace eroof::util {

Summary summarize(std::span<const double> xs) {
  EROOF_REQUIRE(!xs.empty());
  Summary s;
  s.n = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  return s;
}

double relative_error_pct(double a, double b) {
  EROOF_REQUIRE(b != 0.0);
  return 100.0 * std::abs(a - b) / std::abs(b);
}

double mean(std::span<const double> xs) {
  EROOF_REQUIRE(!xs.empty());
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double median(std::vector<double> xs) {
  EROOF_REQUIRE(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

}  // namespace eroof::util
