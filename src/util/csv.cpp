#include "util/csv.hpp"

#include <sstream>

#include "util/require.hpp"

namespace eroof::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), ncols_(columns.size()) {
  EROOF_REQUIRE(ncols_ > 0);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& values) {
  EROOF_REQUIRE(values.size() == ncols_);
  std::ostringstream line;
  line.precision(12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) line << ',';
    line << values[i];
  }
  out_ << line.str() << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  EROOF_REQUIRE(cells.size() == ncols_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

}  // namespace eroof::util
