// Fixed-width ASCII table printer.
//
// Every bench binary that regenerates one of the paper's tables/figures emits
// its rows through this printer so outputs line up and are diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace eroof::util {

/// Column alignment inside a Table.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and renders them with per-column widths.
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<Align> aligns = {});

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `prec` digits after the point.
  static std::string num(double v, int prec = 2);

  /// Renders the table (header, separator, rows) to `os`.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eroof::util
