// Descriptive statistics used throughout the validation and autotuning
// experiments (mean / population stddev / min / max of error distributions).
#pragma once

#include <span>
#include <vector>

namespace eroof::util {

/// Summary of a sample: the four numbers every validation table in the paper
/// reports (mean, standard deviation, minimum, maximum).
struct Summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  std::size_t n = 0;
};

/// Computes the summary of `xs`. Uses the sample (n-1) standard deviation,
/// matching the paper's R `sd()`. Requires a non-empty sample.
Summary summarize(std::span<const double> xs);

/// |a - b| / |b| expressed in percent; `b` is the reference (measured) value.
double relative_error_pct(double a, double b);

/// Mean of `xs`; requires non-empty.
double mean(std::span<const double> xs);

/// Median (average of middle two for even n); requires non-empty.
double median(std::vector<double> xs);

}  // namespace eroof::util
