#include "util/taskgraph.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/require.hpp"

namespace eroof::util {
namespace {

/// Polite spin: a pipeline pause on x86, a scheduler yield elsewhere and
/// every so often (so an oversubscribed worker cannot starve the one
/// holding its ticket's predecessor).
inline void cpu_relax(int spins) {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
  if ((spins & 0x3ff) == 0x3ff) std::this_thread::yield();
}

int default_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace

int TaskGraph::add_task(int tag, std::function<void()> body) {
  EROOF_REQUIRE_MSG(!sealed_, "add_task after seal()");
  EROOF_REQUIRE(body != nullptr);
  bodies_.push_back(std::move(body));
  tags_.push_back(tag);
  return static_cast<int>(bodies_.size()) - 1;
}

void TaskGraph::add_edge(int before, int after) {
  EROOF_REQUIRE_MSG(!sealed_, "add_edge after seal()");
  check(before);
  check(after);
  EROOF_REQUIRE_MSG(before != after, "self-edge");
  edges_.emplace_back(before, after);
}

std::size_t TaskGraph::check(int task) const {
  EROOF_REQUIRE(task >= 0 && static_cast<std::size_t>(task) < tags_.size());
  return static_cast<std::size_t>(task);
}

void TaskGraph::seal() {
  EROOF_REQUIRE_MSG(!sealed_, "seal() twice");
  const std::size_t n = bodies_.size();

  // Duplicate edges would count (and decrement) symmetrically, so they are
  // harmless to execution -- but predecessor lists are part of the public
  // introspection API, and a duplicated entry misrepresents the graph, so
  // they are rejected at the contract level.
  {
    auto sorted = edges_;
    std::sort(sorted.begin(), sorted.end());
    EROOF_REQUIRE_MSG(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "duplicate edge");
  }

  succ_begin_.assign(n + 1, 0);
  pred_begin_.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++succ_begin_[static_cast<std::size_t>(u) + 1];
    ++pred_begin_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    succ_begin_[i + 1] += succ_begin_[i];
    pred_begin_[i + 1] += pred_begin_[i];
  }
  succ_.resize(edges_.size());
  pred_.resize(edges_.size());
  {
    auto scur = succ_begin_;
    auto pcur = pred_begin_;
    for (const auto& [u, v] : edges_) {
      succ_[static_cast<std::size_t>(scur[static_cast<std::size_t>(u)]++)] = v;
      pred_[static_cast<std::size_t>(pcur[static_cast<std::size_t>(v)]++)] = u;
    }
  }

  initial_deps_.assign(n, 0);
  for (std::size_t t = 0; t < n; ++t)
    initial_deps_[t] = pred_begin_[t + 1] - pred_begin_[t];
  for (std::size_t t = 0; t < n; ++t)
    if (initial_deps_[t] == 0) roots_.push_back(static_cast<int>(t));

  // A graph with tasks but no roots is cyclic; deeper cycles are caught at
  // run time (run() would hang otherwise, so verify reachability once here
  // with a Kahn pass over the initial counts).
  {
    std::vector<int> counts = initial_deps_;
    std::vector<int> queue = roots_;
    std::size_t done = 0;
    while (done < queue.size()) {
      const int u = queue[done++];
      for (int e = succ_begin_[static_cast<std::size_t>(u)];
           e < succ_begin_[static_cast<std::size_t>(u) + 1]; ++e) {
        const int v = succ_[static_cast<std::size_t>(e)];
        if (--counts[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
      }
    }
    EROOF_REQUIRE_MSG(done == n, "task graph has a cycle");
  }

  deps_ = std::make_unique<std::atomic<int>[]>(n);
  ready_ = std::make_unique<std::atomic<int>[]>(n);
  stamps_ = std::make_unique<Stamps[]>(n);
  edges_.clear();
  edges_.shrink_to_fit();
  sealed_ = true;
}

std::span<const int> TaskGraph::successors(int task) const {
  EROOF_REQUIRE_MSG(sealed_, "successors() before seal()");
  const std::size_t t = check(task);
  return {succ_.data() + succ_begin_[t],
          static_cast<std::size_t>(succ_begin_[t + 1] - succ_begin_[t])};
}

std::span<const int> TaskGraph::predecessors(int task) const {
  EROOF_REQUIRE_MSG(sealed_, "predecessors() before seal()");
  const std::size_t t = check(task);
  return {pred_.data() + pred_begin_[t],
          static_cast<std::size_t>(pred_begin_[t + 1] - pred_begin_[t])};
}

void TaskGraph::run(const RunHooks& hooks, int num_threads) {
  EROOF_REQUIRE_MSG(sealed_, "run() before seal()");
  const int n = static_cast<int>(tags_.size());
  if (n == 0) {
    ++runs_;
    return;
  }

  // Replay reset: restore the counter image and empty the ring. Plain
  // stores are enough -- the worker fork below publishes them.
  for (int t = 0; t < n; ++t) {
    deps_[t].store(initial_deps_[static_cast<std::size_t>(t)],
                   std::memory_order_relaxed);
    ready_[t].store(-1, std::memory_order_relaxed);
    stamps_[t].start.store(0, std::memory_order_relaxed);
    stamps_[t].finish.store(0, std::memory_order_relaxed);
  }
  epoch_.store(0, std::memory_order_relaxed);
  pop_pos_.store(0, std::memory_order_relaxed);
  int pushed = 0;
  for (const int r : roots_)
    ready_[pushed++].store(r, std::memory_order_relaxed);
  push_pos_.store(pushed, std::memory_order_relaxed);

  int nt = num_threads > 0 ? num_threads : default_threads();
  nt = std::min(nt, n);
#ifdef _OPENMP
  if (nt > 1) {
#pragma omp parallel num_threads(nt)
    worker_loop(hooks, omp_get_thread_num());
  } else {
    worker_loop(hooks, 0);
  }
#else
  worker_loop(hooks, 0);
#endif
  ++runs_;
}

void TaskGraph::worker_loop(const RunHooks& hooks, int worker) {
  const int n = static_cast<int>(tags_.size());
  // eroof: hot-begin (task-graph replay: claim ticket, run task, release
  // successors -- the steady-state scheduling loop of every DAG evaluate)
  for (;;) {
    const int ticket = pop_pos_.fetch_add(1, std::memory_order_relaxed);
    if (ticket >= n) break;
    int t = ready_[ticket].load(std::memory_order_acquire);
    for (int spins = 0; t < 0; ++spins) {
      cpu_relax(spins);
      t = ready_[ticket].load(std::memory_order_acquire);
    }
    if (hooks.before_task) hooks.before_task(t, worker);
    stamps_[t].start.store(epoch_.fetch_add(1, std::memory_order_relaxed) + 1,
                           std::memory_order_release);
    bodies_[static_cast<std::size_t>(t)]();
    stamps_[t].finish.store(
        epoch_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_release);
    const int sb = succ_begin_[static_cast<std::size_t>(t)];
    const int se = succ_begin_[static_cast<std::size_t>(t) + 1];
    for (int e = sb; e < se; ++e) {
      const int s = succ_[static_cast<std::size_t>(e)];
      // The last predecessor to finish publishes the successor; acq_rel
      // on the shared counter makes every predecessor's writes visible to
      // whichever worker later claims the ring slot.
      if (deps_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const int slot = push_pos_.fetch_add(1, std::memory_order_relaxed);
        ready_[slot].store(s, std::memory_order_release);
      }
    }
  }
  // eroof: hot-end
}

}  // namespace eroof::util
