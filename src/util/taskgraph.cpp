#include "util/taskgraph.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/require.hpp"

namespace eroof::util {
namespace {

/// Polite spin: a pipeline pause on x86, a scheduler yield elsewhere and
/// every so often (so an oversubscribed worker cannot starve the one
/// holding its ticket's predecessor).
inline void cpu_relax(int spins) {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
  if ((spins & 0x3ff) == 0x3ff) std::this_thread::yield();
}

int default_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace

TaskGraph::TaskGraph(std::shared_ptr<const Topology> topology)
    : sealed_(true), topo_(std::move(topology)) {
  EROOF_REQUIRE_MSG(topo_ != nullptr, "adopting a null topology");
  alloc_run_arenas(topo_->task_count());
}

int TaskGraph::add_task(int tag, std::function<void()> body) {
  EROOF_REQUIRE_MSG(!sealed_, "add_task after seal()");
  EROOF_REQUIRE(body != nullptr);
  bodies_.push_back(std::move(body));
  tags_.push_back(tag);
  return static_cast<int>(bodies_.size()) - 1;
}

int TaskGraph::add_task(int tag) {
  EROOF_REQUIRE_MSG(!sealed_, "add_task after seal()");
  bodies_.emplace_back();  // null body: dispatched through the runner
  tags_.push_back(tag);
  has_runner_tasks_ = true;
  return static_cast<int>(bodies_.size()) - 1;
}

void TaskGraph::set_runner(std::function<void(int)> runner) {
  EROOF_REQUIRE(runner != nullptr);
  runner_ = std::move(runner);
}

void TaskGraph::add_edge(int before, int after) {
  EROOF_REQUIRE_MSG(!sealed_, "add_edge after seal()");
  check(before);
  check(after);
  EROOF_REQUIRE_MSG(before != after, "self-edge");
  edges_.emplace_back(before, after);
}

std::size_t TaskGraph::check(int task) const {
  EROOF_REQUIRE(task >= 0 && static_cast<std::size_t>(task) < task_count());
  return static_cast<std::size_t>(task);
}

const TaskGraph::Topology& TaskGraph::topo() const {
  EROOF_REQUIRE_MSG(sealed_, "topology access before seal()");
  return *topo_;
}

void TaskGraph::alloc_run_arenas(std::size_t n) {
  deps_ = std::make_unique<std::atomic<int>[]>(n);
  ready_ = std::make_unique<std::atomic<int>[]>(n);
  stamps_ = std::make_unique<Stamps[]>(n);
}

void TaskGraph::seal() {
  EROOF_REQUIRE_MSG(!sealed_, "seal() twice");
  const std::size_t n = bodies_.size();
  auto topo = std::make_shared<Topology>();

  // Duplicate edges would count (and decrement) symmetrically, so they are
  // harmless to execution -- but predecessor lists are part of the public
  // introspection API, and a duplicated entry misrepresents the graph, so
  // they are rejected at the contract level.
  {
    auto sorted = edges_;
    std::sort(sorted.begin(), sorted.end());
    EROOF_REQUIRE_MSG(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "duplicate edge");
  }

  topo->succ_begin.assign(n + 1, 0);
  topo->pred_begin.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++topo->succ_begin[static_cast<std::size_t>(u) + 1];
    ++topo->pred_begin[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    topo->succ_begin[i + 1] += topo->succ_begin[i];
    topo->pred_begin[i + 1] += topo->pred_begin[i];
  }
  topo->succ.resize(edges_.size());
  topo->pred.resize(edges_.size());
  {
    auto scur = topo->succ_begin;
    auto pcur = topo->pred_begin;
    for (const auto& [u, v] : edges_) {
      topo->succ[static_cast<std::size_t>(scur[static_cast<std::size_t>(u)]++)] =
          v;
      topo->pred[static_cast<std::size_t>(pcur[static_cast<std::size_t>(v)]++)] =
          u;
    }
  }

  topo->initial_deps.assign(n, 0);
  for (std::size_t t = 0; t < n; ++t)
    topo->initial_deps[t] = topo->pred_begin[t + 1] - topo->pred_begin[t];
  for (std::size_t t = 0; t < n; ++t)
    if (topo->initial_deps[t] == 0) topo->roots.push_back(static_cast<int>(t));

  // A graph with tasks but no roots is cyclic; deeper cycles are caught at
  // run time (run() would hang otherwise, so verify reachability once here
  // with a Kahn pass over the initial counts).
  {
    std::vector<int> counts = topo->initial_deps;
    std::vector<int> queue = topo->roots;
    std::size_t done = 0;
    while (done < queue.size()) {
      const int u = queue[done++];
      for (int e = topo->succ_begin[static_cast<std::size_t>(u)];
           e < topo->succ_begin[static_cast<std::size_t>(u) + 1]; ++e) {
        const int v = topo->succ[static_cast<std::size_t>(e)];
        if (--counts[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
      }
    }
    EROOF_REQUIRE_MSG(done == n, "task graph has a cycle");
  }

  topo->tags = std::move(tags_);
  alloc_run_arenas(n);
  edges_.clear();
  edges_.shrink_to_fit();
  topo_ = std::move(topo);
  sealed_ = true;
}

std::shared_ptr<const TaskGraph::Topology> TaskGraph::share_topology() const {
  EROOF_REQUIRE_MSG(sealed_, "share_topology() before seal()");
  return topo_;
}

std::size_t TaskGraph::edge_count() const {
  return sealed_ ? topo_->edge_count() : edges_.size();
}

int TaskGraph::tag(int task) const {
  const std::size_t t = check(task);
  return sealed_ ? topo_->tags[t] : tags_[t];
}

std::span<const int> TaskGraph::successors(int task) const {
  const auto& tp = topo();
  const std::size_t t = check(task);
  return {tp.succ.data() + tp.succ_begin[t],
          static_cast<std::size_t>(tp.succ_begin[t + 1] - tp.succ_begin[t])};
}

std::span<const int> TaskGraph::predecessors(int task) const {
  const auto& tp = topo();
  const std::size_t t = check(task);
  return {tp.pred.data() + tp.pred_begin[t],
          static_cast<std::size_t>(tp.pred_begin[t + 1] - tp.pred_begin[t])};
}

void TaskGraph::run(const RunHooks& hooks, int num_threads) {
  EROOF_REQUIRE_MSG(sealed_, "run() before seal()");
  const auto& tp = *topo_;
  const int n = static_cast<int>(tp.task_count());
  if (n == 0) {
    ++runs_;
    return;
  }
  // Any task without its own body (runner-mode or adopted topology) needs
  // the shared runner installed.
  if (has_runner_tasks_ || bodies_.size() < tp.task_count())
    EROOF_REQUIRE_MSG(runner_ != nullptr, "run() without a runner");

  // Replay reset: restore the counter image and empty the ring. Plain
  // stores are enough -- the worker fork below publishes them.
  for (int t = 0; t < n; ++t) {
    deps_[t].store(tp.initial_deps[static_cast<std::size_t>(t)],
                   std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
    ready_[t].store(-1, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
    stamps_[t].start.store(0, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
    stamps_[t].finish.store(0, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  }
  epoch_.store(0, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  pop_pos_.store(0, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  int pushed = 0;
  for (const int r : tp.roots)
    ready_[pushed++].store(r, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  push_pos_.store(pushed, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)

  int nt = num_threads > 0 ? num_threads : default_threads();
  nt = std::min(nt, n);
#ifdef _OPENMP
  if (nt > 1) {
    // eroof: cold (worker fork: thread-team spawn is per-run setup; the
    // steady-state scheduling loop inside worker_loop has its own hot
    // region)
#pragma omp parallel num_threads(nt)
    worker_loop(hooks, omp_get_thread_num());
  } else {
    worker_loop(hooks, 0);
  }
#else
  worker_loop(hooks, 0);
#endif
  ++runs_;
}

void TaskGraph::worker_loop(const RunHooks& hooks, int worker) {
  const Topology& tp = *topo_;
  const int n = static_cast<int>(tp.task_count());
  const std::function<void()>* bodies = bodies_.data();
  const std::size_t n_bodies = bodies_.size();
  // eroof: hot-begin (task-graph replay: claim ticket, run task, release
  // successors -- the steady-state scheduling loop of every DAG evaluate)
  for (;;) {
    // Ticket claim is just an index reservation; the ring-slot data it
    // guards is published by the acquire load on ready_[ticket] below.
    const int ticket = pop_pos_.fetch_add(1, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
    if (ticket >= n) break;
    int t = ready_[ticket].load(std::memory_order_acquire);
    for (int spins = 0; t < 0; ++spins) {
      cpu_relax(spins);
      t = ready_[ticket].load(std::memory_order_acquire);
    }
    if (hooks.before_task) hooks.before_task(t, worker);
    // The epoch is a mere tie-break counter for replay traces; the
    // stamp store itself is release-ordered.
    stamps_[t].start.store(epoch_.fetch_add(1, std::memory_order_relaxed) + 1,  // eroof-lint: allow(relaxed-atomic)
                           std::memory_order_release);
    if (static_cast<std::size_t>(t) < n_bodies &&
        bodies[static_cast<std::size_t>(t)]) {
      bodies[static_cast<std::size_t>(t)]();
    } else {
      runner_(t);
    }
    stamps_[t].finish.store(
        epoch_.fetch_add(1, std::memory_order_relaxed) + 1,  // eroof-lint: allow(relaxed-atomic)
        std::memory_order_release);
    const int sb = tp.succ_begin[static_cast<std::size_t>(t)];
    const int se = tp.succ_begin[static_cast<std::size_t>(t) + 1];
    for (int e = sb; e < se; ++e) {
      const int s = tp.succ[static_cast<std::size_t>(e)];
      // The last predecessor to finish publishes the successor; acq_rel
      // on the shared counter makes every predecessor's writes visible to
      // whichever worker later claims the ring slot.
      if (deps_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Slot claim is an index reservation; the task id is published
        // by the release store to ready_[slot] on the next line.
        const int slot = push_pos_.fetch_add(1, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
        ready_[slot].store(s, std::memory_order_release);
      }
    }
  }
  // eroof: hot-end
}

}  // namespace eroof::util
