#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <numbers>

#include "util/require.hpp"

namespace eroof::fft {
namespace {

constexpr std::size_t kMaxButterflyPrime = 61;

std::vector<std::size_t> factorize(std::size_t n) {
  std::vector<std::size_t> fs;
  for (std::size_t p : {std::size_t{2}, std::size_t{3}, std::size_t{5},
                        std::size_t{7}}) {
    while (n % p == 0) {
      fs.push_back(p);
      n /= p;
    }
  }
  for (std::size_t p = 11; p * p <= n; p += 2) {
    while (n % p == 0) {
      fs.push_back(p);
      n /= p;
    }
  }
  if (n > 1) fs.push_back(n);
  return fs;
}

// Per-thread transform scratch, grown on demand and reused across calls so
// steady-state transforms never touch the heap (the FMM's V phase runs two
// FFTs per node per evaluation). Distinct roles so the one nested case --
// Bluestein driving its power-of-two convolution plan -- cannot alias:
// the Bluestein path itself uses only tl_blu_work, and its inner plan is
// always a butterfly plan using tl_ct_in / tl_ct_scratch.
thread_local std::vector<cplx> tl_ct_in;       // input copy for ct_recurse
thread_local std::vector<cplx> tl_ct_scratch;  // p butterfly temporaries
thread_local std::vector<cplx> tl_blu_work;    // Bluestein convolution buffer

std::vector<cplx>& grown(std::vector<cplx>& buf, std::size_t n) {
  // First-touch growth to the high-water mark; steady-state transforms
  // of a given size never reallocate.
  if (buf.size() < n) buf.resize(n);  // eroof-lint: allow(hot-alloc)
  return buf;
}

}  // namespace

struct Plan::Impl {
  std::size_t n = 0;
  std::vector<std::size_t> factors;   // prime factorization, ascending-ish
  std::vector<cplx> twiddle;          // twiddle[j] = exp(-2 pi i j / n)
  bool use_bluestein = false;
  std::vector<std::uint32_t> bitrev;  // set iff n is a power of two

  // Bluestein machinery (set up only when needed).
  std::unique_ptr<Plan> conv_plan;    // power-of-two plan of length m
  std::vector<cplx> chirp;            // chirp[j] = exp(-pi i j^2 / n)
  std::vector<cplx> bfilter_fft;      // FFT of the chirp filter, length m

  explicit Impl(std::size_t size) : n(size) {
    EROOF_REQUIRE_MSG(n >= 1, "FFT length must be >= 1");
    factors = factorize(n);
    for (std::size_t f : factors)
      if (f > kMaxButterflyPrime) use_bluestein = true;

    twiddle.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(j) / static_cast<double>(n);
      twiddle[j] = {std::cos(ang), std::sin(ang)};
    }

    if (n >= 2 && (n & (n - 1)) == 0) {
      // Power of two: precompute the bit-reversal permutation driving the
      // iterative in-place radix-2 path below (the hot case -- the KIFMM's
      // FFT grids have edge 2p).
      bitrev.resize(n);
      std::uint32_t bits = 0;
      while ((std::size_t{1} << bits) < n) ++bits;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t r = 0;
        for (std::uint32_t b = 0; b < bits; ++b)
          r |= ((i >> b) & 1u) << (bits - 1 - b);
        bitrev[i] = r;
      }
    }

    if (use_bluestein) {
      const std::size_t m = next_pow2(2 * n - 1);
      conv_plan = std::make_unique<Plan>(m);
      chirp.resize(n);
      for (std::size_t j = 0; j < n; ++j) {
        // j^2 mod 2n keeps the argument small and the phase exact.
        const std::size_t j2 = (j * j) % (2 * n);
        const double ang = -std::numbers::pi * static_cast<double>(j2) /
                           static_cast<double>(n);
        chirp[j] = {std::cos(ang), std::sin(ang)};
      }
      std::vector<cplx> filt(m, cplx{0, 0});
      filt[0] = std::conj(chirp[0]);
      for (std::size_t j = 1; j < n; ++j) {
        filt[j] = std::conj(chirp[j]);
        filt[m - j] = std::conj(chirp[j]);
      }
      conv_plan->forward(filt);
      bfilter_fft = std::move(filt);
    }
  }

  // Recursive mixed-radix Cooley-Tukey.
  //
  // Computes the length-`len` DFT of in[0], in[stride], ... into out[0..len).
  // `fidx` indexes into `factors`; all twiddles come from the master table
  // because every sub-length divides n (twiddle step n/len).
  void ct_recurse(cplx* out, const cplx* in, std::size_t len,
                  std::size_t stride, std::size_t fidx,
                  std::vector<cplx>& scratch) const {
    if (len == 1) {
      out[0] = in[0];
      return;
    }
    const std::size_t p = factors[fidx];
    const std::size_t m = len / p;

    for (std::size_t q = 0; q < p; ++q)
      ct_recurse(out + q * m, in + q * stride, m, stride * p, fidx + 1,
                 scratch);

    // Combine p interleaved sub-DFTs. Twiddle step for length `len` in the
    // master table is n/len.
    const std::size_t tw_step = n / len;
    cplx* t = scratch.data();  // p temporaries
    for (std::size_t k1 = 0; k1 < m; ++k1) {
      for (std::size_t q = 0; q < p; ++q) {
        const std::size_t tw = (q * k1 * tw_step) % n;
        t[q] = out[q * m + k1] * twiddle[tw];
      }
      for (std::size_t q2 = 0; q2 < p; ++q2) {
        // p-point DFT row q2 with roots of unity of order p
        // (order-p roots live at multiples of n/p in the master table).
        cplx acc = t[0];
        for (std::size_t q = 1; q < p; ++q) {
          const std::size_t tw = ((q * q2) % p) * (n / p);
          acc += t[q] * twiddle[tw];
        }
        out[q2 * m + k1] = acc;
      }
    }
  }

  // Iterative in-place radix-2 (decimation in time). Same DFT as the
  // generic recursion, but no input copy, no recursion, and no modulo in
  // the butterfly: twiddles for sub-length `len` sit at stride n/len in the
  // master table.
  void radix2(std::span<cplx> data) const {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = bitrev[i];
      if (i < r) std::swap(data[i], data[r]);
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t half = len / 2;
      const std::size_t step = n / len;
      for (std::size_t base = 0; base < n; base += len) {
        for (std::size_t k = 0; k < half; ++k) {
          const cplx w = twiddle[k * step];
          const cplx u = data[base + k];
          const cplx v = data[base + k + half] * w;
          data[base + k] = u + v;
          data[base + k + half] = u - v;
        }
      }
    }
  }

  void forward(std::span<cplx> data) const {
    EROOF_REQUIRE(data.size() == n);
    if (n == 1) return;
    if (use_bluestein) {
      bluestein(data);
      return;
    }
    if (!bitrev.empty()) {
      radix2(data);
      return;
    }
    std::size_t max_p = 0;
    for (std::size_t f : factors) max_p = std::max(max_p, f);
    auto& scratch = grown(tl_ct_scratch, max_p);
    auto& in = grown(tl_ct_in, n);
    std::copy(data.begin(), data.end(), in.begin());
    ct_recurse(data.data(), in.data(), n, 1, 0, scratch);
  }

  void bluestein(std::span<cplx> data) const {
    const std::size_t m = conv_plan->size();
    auto& a = grown(tl_blu_work, m);
    std::fill(a.begin(), a.begin() + static_cast<long>(m), cplx{0, 0});
    for (std::size_t j = 0; j < n; ++j) a[j] = data[j] * chirp[j];
    const std::span<cplx> aspan(a.data(), m);  // buffer may be over-sized
    conv_plan->forward(aspan);
    for (std::size_t j = 0; j < m; ++j) a[j] *= bfilter_fft[j];
    conv_plan->inverse(aspan);
    for (std::size_t k = 0; k < n; ++k) data[k] = a[k] * chirp[k];
  }
};

Plan::Plan(std::size_t n) : impl_(std::make_unique<Impl>(n)) {}
Plan::~Plan() = default;
Plan::Plan(Plan&&) noexcept = default;
Plan& Plan::operator=(Plan&&) noexcept = default;

std::size_t Plan::size() const { return impl_->n; }

void Plan::forward(std::span<cplx> data) const { impl_->forward(data); }

void Plan::inverse(std::span<cplx> data) const {
  // IDFT(x) = conj(DFT(conj(x))) / n.
  for (auto& v : data) v = std::conj(v);
  impl_->forward(data);
  const double inv = 1.0 / static_cast<double>(impl_->n);
  for (auto& v : data) v = std::conj(v) * inv;
}

namespace {

const Plan& cached_plan(std::size_t n) {
  static std::map<std::size_t, Plan> cache;
  auto it = cache.find(n);
  if (it == cache.end()) it = cache.emplace(n, Plan(n)).first;
  return it->second;
}

}  // namespace

void fft(std::span<cplx> data) { cached_plan(data.size()).forward(data); }
void ifft(std::span<cplx> data) { cached_plan(data.size()).inverse(data); }

std::vector<cplx> circular_convolve(std::span<const cplx> a,
                                    std::span<const cplx> b) {
  EROOF_REQUIRE(a.size() == b.size() && !a.empty());
  std::vector<cplx> fa(a.begin(), a.end());
  std::vector<cplx> fb(b.begin(), b.end());
  const Plan& plan = cached_plan(a.size());
  plan.forward(fa);
  plan.forward(fb);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] *= fb[i];
  plan.inverse(fa);
  return fa;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace eroof::fft
