// From-scratch complex FFT.
//
// The KIFMM's V-list (M2L) translation is a grid convolution evaluated with
// FFTs (Section III-B of the paper: "approximates interactions with far
// neighbors through fast Fourier transforms and vector additions"), so the
// library ships its own transform rather than assuming FFTW:
//
//   * mixed-radix recursive Cooley-Tukey for sizes whose prime factors are
//     small (any factor <= 61 is handled by an O(n*p) butterfly), and
//   * Bluestein's chirp-z algorithm for sizes with large prime factors,
//     reducing them to a power-of-two convolution.
//
// Plans precompute twiddle tables and are cached per size; transforms are
// O(n log n) for smooth n.
#pragma once

#include <complex>
#include <memory>
#include <span>
#include <vector>

namespace eroof::fft {

using cplx = std::complex<double>;

/// A reusable transform plan for one length.
///
/// Thread-compatible: concurrent calls on distinct plans are safe; a single
/// plan's execute methods are const and safe to call from many threads at
/// once (scratch lives in per-thread buffers that grow on first use, so
/// steady-state transforms perform no heap allocation).
class Plan {
 public:
  explicit Plan(std::size_t n);
  ~Plan();
  Plan(Plan&&) noexcept;
  Plan& operator=(Plan&&) noexcept;
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  std::size_t size() const;

  /// In-place forward DFT: X[k] = sum_j x[j] exp(-2 pi i j k / n).
  void forward(std::span<cplx> data) const;

  /// In-place inverse DFT, normalized by 1/n (forward then inverse is
  /// the identity).
  void inverse(std::span<cplx> data) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot forward/inverse transforms using an internal per-size plan cache.
/// The cache is guarded for single-threaded use (all callers in this project
/// plan up-front in hot paths).
void fft(std::span<cplx> data);
void ifft(std::span<cplx> data);

/// Circular convolution of equal-length sequences via FFT.
std::vector<cplx> circular_convolve(std::span<const cplx> a,
                                    std::span<const cplx> b);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

}  // namespace eroof::fft
