#include "fft/fft3.hpp"

#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace eroof::fft {
namespace {

bool is_pow2(std::size_t n) { return n >= 2 && (n & (n - 1)) == 0; }

std::vector<cplx> make_twiddle(std::size_t n) {
  std::vector<cplx> tw(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(j) /
                       static_cast<double>(n);
    tw[j] = {std::cos(ang), std::sin(ang)};
  }
  return tw;
}

std::vector<std::uint32_t> make_bitrev(std::size_t n) {
  std::vector<std::uint32_t> rev(n);
  std::uint32_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t r = 0;
    for (std::uint32_t b = 0; b < bits; ++b)
      r |= ((i >> b) & 1u) << (bits - 1 - b);
    rev[i] = r;
  }
  return rev;
}

}  // namespace

Plan3::Plan3(std::size_t n0, std::size_t n1, std::size_t n2)
    : n0_(n0), n1_(n1), n2_(n2), p0_(n0), p1_(n1), p2_(n2) {
  EROOF_REQUIRE(n0 >= 1 && n1 >= 1 && n2 >= 1);
  if (is_pow2(n0) && is_pow2(n1) && is_pow2(n2)) {
    const std::size_t dims[3] = {n0, n1, n2};
    for (int a = 0; a < 3; ++a) {
      tw_[static_cast<std::size_t>(a)] = make_twiddle(dims[a]);
      rev_[static_cast<std::size_t>(a)] = make_bitrev(dims[a]);
    }
  }
}

template <typename Fn>
void Plan3::apply_axes(std::span<cplx> data, Fn&& transform1d) const {
  EROOF_REQUIRE(data.size() == size());

  // Axis 2: rows are contiguous.
  for (std::size_t i0 = 0; i0 < n0_; ++i0)
    for (std::size_t i1 = 0; i1 < n1_; ++i1)
      transform1d(p2_, data.subspan((i0 * n1_ + i1) * n2_, n2_));

  // Axis 1: gather strided pencils into a temp, transform, scatter back.
  // The temp is per-thread and reused across calls (the FMM V phase runs
  // two 3-D transforms per node per evaluation; none of them may allocate).
  thread_local std::vector<cplx> tl_pencil;
  // First-touch growth per thread; reused across every later transform.
  if (tl_pencil.size() < std::max(n0_, n1_))
    tl_pencil.resize(std::max(n0_, n1_));  // eroof-lint: allow(hot-alloc)
  std::vector<cplx>& pencil = tl_pencil;
  for (std::size_t i0 = 0; i0 < n0_; ++i0) {
    for (std::size_t i2 = 0; i2 < n2_; ++i2) {
      for (std::size_t i1 = 0; i1 < n1_; ++i1)
        pencil[i1] = data[(i0 * n1_ + i1) * n2_ + i2];
      transform1d(p1_, std::span<cplx>(pencil.data(), n1_));
      for (std::size_t i1 = 0; i1 < n1_; ++i1)
        data[(i0 * n1_ + i1) * n2_ + i2] = pencil[i1];
    }
  }

  // Axis 0.
  for (std::size_t i1 = 0; i1 < n1_; ++i1) {
    for (std::size_t i2 = 0; i2 < n2_; ++i2) {
      for (std::size_t i0 = 0; i0 < n0_; ++i0)
        pencil[i0] = data[(i0 * n1_ + i1) * n2_ + i2];
      transform1d(p0_, std::span<cplx>(pencil.data(), n0_));
      for (std::size_t i0 = 0; i0 < n0_; ++i0)
        data[(i0 * n1_ + i1) * n2_ + i2] = pencil[i0];
    }
  }
}

/// One radix-2 decimation-in-time pass along one axis of the row-major grid,
/// in place. `len` is the axis length, `stride` the element distance between
/// consecutive axis indices, `block` the contiguous run transformed together
/// (the trailing dims -- this is what vectorizes), and `repeat` x
/// `repeat_step` walk the independent outer slabs.
void Plan3::pow2_axis(cplx* data, std::size_t len, std::size_t stride,
                      std::size_t block, std::size_t repeat,
                      std::size_t repeat_step, const cplx* tw,
                      const std::uint32_t* rev) const {
  for (std::size_t r = 0; r < repeat; ++r) {
    cplx* base = data + r * repeat_step;
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t j = rev[i];
      if (i < j) {
        cplx* a = base + i * stride;
        cplx* b = base + j * stride;
        for (std::size_t t = 0; t < block; ++t) std::swap(a[t], b[t]);
      }
    }
    for (std::size_t sub = 2; sub <= len; sub <<= 1) {
      const std::size_t half = sub / 2;
      const std::size_t step = len / sub;
      for (std::size_t seg = 0; seg < len; seg += sub) {
        for (std::size_t k = 0; k < half; ++k) {
          const cplx w = tw[k * step];
          cplx* u = base + (seg + k) * stride;
          cplx* v = base + (seg + k + half) * stride;
          for (std::size_t t = 0; t < block; ++t) {
            const cplx uu = u[t];
            const cplx vv = v[t] * w;
            u[t] = uu + vv;
            v[t] = uu - vv;
          }
        }
      }
    }
  }
}

void Plan3::pow2_forward(std::span<cplx> data) const {
  cplx* d = data.data();
  // Axis 2: contiguous rows, one slab per (i0, i1).
  pow2_axis(d, n2_, 1, 1, n0_ * n1_, n2_, tw_[2].data(), rev_[2].data());
  // Axis 1: stride n2, butterflies vectorize over the contiguous row.
  pow2_axis(d, n1_, n2_, n2_, n0_, n1_ * n2_, tw_[1].data(), rev_[1].data());
  // Axis 0: stride n1*n2, vectorized over whole (i1, i2) planes.
  pow2_axis(d, n0_, n1_ * n2_, n1_ * n2_, 1, 0, tw_[0].data(),
            rev_[0].data());
}

void Plan3::forward(std::span<cplx> data) const {
  if (!tw_[0].empty()) {
    EROOF_REQUIRE(data.size() == size());
    pow2_forward(data);
    return;
  }
  apply_axes(data, [](const Plan& p, std::span<cplx> v) { p.forward(v); });
}

void Plan3::inverse(std::span<cplx> data) const {
  if (!tw_[0].empty()) {
    EROOF_REQUIRE(data.size() == size());
    // IDFT(x) = conj(DFT(conj(x))) / N.
    for (auto& v : data) v = std::conj(v);
    pow2_forward(data);
    const double inv = 1.0 / static_cast<double>(size());
    for (auto& v : data) v = std::conj(v) * inv;
    return;
  }
  apply_axes(data, [](const Plan& p, std::span<cplx> v) { p.inverse(v); });
}

std::vector<cplx> circular_convolve3(const Plan3& plan,
                                     std::span<const cplx> a,
                                     std::span<const cplx> b) {
  EROOF_REQUIRE(a.size() == plan.size() && b.size() == plan.size());
  std::vector<cplx> fa(a.begin(), a.end());
  std::vector<cplx> fb(b.begin(), b.end());
  plan.forward(fa);
  plan.forward(fb);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] *= fb[i];
  plan.inverse(fa);
  return fa;
}

}  // namespace eroof::fft
