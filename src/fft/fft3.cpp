#include "fft/fft3.hpp"

#include "util/require.hpp"

namespace eroof::fft {

Plan3::Plan3(std::size_t n0, std::size_t n1, std::size_t n2)
    : n0_(n0), n1_(n1), n2_(n2), p0_(n0), p1_(n1), p2_(n2) {
  EROOF_REQUIRE(n0 >= 1 && n1 >= 1 && n2 >= 1);
}

template <typename Fn>
void Plan3::apply_axes(std::span<cplx> data, Fn&& transform1d) const {
  EROOF_REQUIRE(data.size() == size());

  // Axis 2: rows are contiguous.
  for (std::size_t i0 = 0; i0 < n0_; ++i0)
    for (std::size_t i1 = 0; i1 < n1_; ++i1)
      transform1d(p2_, data.subspan((i0 * n1_ + i1) * n2_, n2_));

  // Axis 1: gather strided pencils into a temp, transform, scatter back.
  std::vector<cplx> pencil(std::max(n0_, n1_));
  for (std::size_t i0 = 0; i0 < n0_; ++i0) {
    for (std::size_t i2 = 0; i2 < n2_; ++i2) {
      for (std::size_t i1 = 0; i1 < n1_; ++i1)
        pencil[i1] = data[(i0 * n1_ + i1) * n2_ + i2];
      transform1d(p1_, std::span<cplx>(pencil.data(), n1_));
      for (std::size_t i1 = 0; i1 < n1_; ++i1)
        data[(i0 * n1_ + i1) * n2_ + i2] = pencil[i1];
    }
  }

  // Axis 0.
  for (std::size_t i1 = 0; i1 < n1_; ++i1) {
    for (std::size_t i2 = 0; i2 < n2_; ++i2) {
      for (std::size_t i0 = 0; i0 < n0_; ++i0)
        pencil[i0] = data[(i0 * n1_ + i1) * n2_ + i2];
      transform1d(p0_, std::span<cplx>(pencil.data(), n0_));
      for (std::size_t i0 = 0; i0 < n0_; ++i0)
        data[(i0 * n1_ + i1) * n2_ + i2] = pencil[i0];
    }
  }
}

void Plan3::forward(std::span<cplx> data) const {
  apply_axes(data, [](const Plan& p, std::span<cplx> v) { p.forward(v); });
}

void Plan3::inverse(std::span<cplx> data) const {
  apply_axes(data, [](const Plan& p, std::span<cplx> v) { p.inverse(v); });
}

std::vector<cplx> circular_convolve3(const Plan3& plan,
                                     std::span<const cplx> a,
                                     std::span<const cplx> b) {
  EROOF_REQUIRE(a.size() == plan.size() && b.size() == plan.size());
  std::vector<cplx> fa(a.begin(), a.end());
  std::vector<cplx> fb(b.begin(), b.end());
  plan.forward(fa);
  plan.forward(fb);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] *= fb[i];
  plan.inverse(fa);
  return fa;
}

}  // namespace eroof::fft
