// 3-D complex FFT over row-major [n0][n1][n2] grids, built on the 1-D plans.
// This is the workhorse behind the KIFMM's FFT-accelerated M2L translations.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "fft/fft.hpp"

namespace eroof::fft {

/// Reusable plan for a fixed 3-D shape.
class Plan3 {
 public:
  Plan3(std::size_t n0, std::size_t n1, std::size_t n2);

  std::array<std::size_t, 3> shape() const { return {n0_, n1_, n2_}; }
  std::size_t size() const { return n0_ * n1_ * n2_; }

  /// In-place forward transform of a row-major grid.
  void forward(std::span<cplx> data) const;

  /// In-place inverse transform (normalized: inverse(forward(x)) == x).
  void inverse(std::span<cplx> data) const;

 private:
  template <typename Fn>
  void apply_axes(std::span<cplx> data, Fn&& transform1d) const;

  void pow2_forward(std::span<cplx> data) const;
  void pow2_axis(cplx* data, std::size_t len, std::size_t stride,
                 std::size_t block, std::size_t repeat,
                 std::size_t repeat_step, const cplx* tw,
                 const std::uint32_t* rev) const;

  std::size_t n0_, n1_, n2_;
  Plan p0_, p1_, p2_;
  // Power-of-two fast path: in-place radix-2 butterflies along each axis,
  // vectorized over the contiguous trailing dimension instead of gathering
  // strided pencils. Empty tables => generic path.
  std::array<std::vector<cplx>, 3> tw_;
  std::array<std::vector<std::uint32_t>, 3> rev_;
};

/// Circular 3-D convolution of two equal-shape grids via FFT.
std::vector<cplx> circular_convolve3(const Plan3& plan,
                                     std::span<const cplx> a,
                                     std::span<const cplx> b);

}  // namespace eroof::fft
