// 3-D complex FFT over row-major [n0][n1][n2] grids, built on the 1-D plans.
// This is the workhorse behind the KIFMM's FFT-accelerated M2L translations.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "fft/fft.hpp"

namespace eroof::fft {

/// Reusable plan for a fixed 3-D shape.
class Plan3 {
 public:
  Plan3(std::size_t n0, std::size_t n1, std::size_t n2);

  std::array<std::size_t, 3> shape() const { return {n0_, n1_, n2_}; }
  std::size_t size() const { return n0_ * n1_ * n2_; }

  /// In-place forward transform of a row-major grid.
  void forward(std::span<cplx> data) const;

  /// In-place inverse transform (normalized: inverse(forward(x)) == x).
  void inverse(std::span<cplx> data) const;

 private:
  template <typename Fn>
  void apply_axes(std::span<cplx> data, Fn&& transform1d) const;

  std::size_t n0_, n1_, n2_;
  Plan p0_, p1_, p2_;
};

/// Circular 3-D convolution of two equal-shape grids via FFT.
std::vector<cplx> circular_convolve3(const Plan3& plan,
                                     std::span<const cplx> a,
                                     std::span<const cplx> b);

}  // namespace eroof::fft
