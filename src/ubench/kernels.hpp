// Host-executable bodies of the intensity microbenchmarks.
//
// The energy campaign itself runs on the simulated SoC (where "execution" is
// the timing/power physics of hw::Soc applied to the kernels' operation
// counts), but the kernels are real: these bodies perform exactly the
// per-word operation mix that suite.cpp's descriptors count, so the suite
// can also be timed on the host CPU (bench/perf_ubench) and the count
// descriptors can be validated against actual code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace eroof::ub {

/// Streams `data`, performing `intensity` fused multiply-adds per element.
/// Returns a checksum so the work cannot be optimized away.
float sp_fma_stream(std::span<const float> data, int intensity);

/// Double-precision variant.
double dp_fma_stream(std::span<const double> data, int intensity);

/// Integer variant: `intensity` add/xor/shift ops per element.
std::uint64_t int_ops_stream(std::span<const std::uint64_t> data,
                             int intensity);

/// Scratchpad-reuse kernel (the shared-memory analogue): stages fixed-size
/// tiles of `data` into a small buffer and sweeps each tile `reuse` times.
float scratch_reuse_stream(std::span<const float> data, int reuse,
                           std::size_t tile_elems = 1024);

/// Cache-resident kernel (the L2 analogue): sweeps a working set of
/// `ws_elems` floats `passes` times.
float cache_resident_stream(std::span<const float> data, std::size_t ws_elems,
                            int passes);

}  // namespace eroof::ub
