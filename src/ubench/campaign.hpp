// Measurement campaign: runs the microbenchmark suite across a set of DVFS
// settings on the simulated SoC, recording one (counts, time, energy) sample
// per (point, setting) pair -- the data the model is fitted on and
// cross-validated against (paper Sections II-C / II-D).
#pragma once

#include <vector>

#include "hw/dvfs.hpp"
#include "hw/powermon.hpp"
#include "hw/soc.hpp"
#include "ubench/suite.hpp"

namespace eroof::ub {

/// One campaign sample: the measurement plus which suite point produced it
/// and the role (train/validate) of its setting.
struct Sample {
  BenchClass cls;
  double intensity = 0;
  hw::SettingRole role = hw::SettingRole::kTrain;
  hw::Measurement meas;
};

/// Runs `points` x `settings` on `soc`, measuring each run with `monitor`.
/// Legacy entry point: draws one value from `rng` to form the root stream,
/// then forwards to the stream overload.
std::vector<Sample> run_campaign(const hw::Soc& soc,
                                 const std::vector<BenchPoint>& points,
                                 const std::vector<hw::LabeledSetting>& settings,
                                 const hw::PowerMon& monitor, util::Rng& rng);

/// Stream-based campaign: cells are measured in parallel (OpenMP), each from
/// its own RNG stream forked off `root` by (setting label, workload name).
/// Sample values are bitwise-identical for every thread count and every
/// iteration order of `points`/`settings`, because a cell's stream depends
/// only on its identity. Trace spans/counters, when a session is installed,
/// are emitted serially in (setting-major, point-minor) order after the
/// parallel region, so counter totals replay bit-for-bit too.
std::vector<Sample> run_campaign(const hw::Soc& soc,
                                 const std::vector<BenchPoint>& points,
                                 const std::vector<hw::LabeledSetting>& settings,
                                 const hw::PowerMon& monitor,
                                 const util::RngStream& root);

/// Convenience: the paper's full campaign -- the default 116-point suite
/// over the 16 Table I settings (1856 samples).
std::vector<Sample> paper_campaign(const hw::Soc& soc,
                                   const hw::PowerMon& monitor,
                                   util::Rng& rng);

/// Stream-based variant of the paper campaign.
std::vector<Sample> paper_campaign(const hw::Soc& soc,
                                   const hw::PowerMon& monitor,
                                   const util::RngStream& root);

}  // namespace eroof::ub
