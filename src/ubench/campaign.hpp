// Measurement campaign: runs the microbenchmark suite across a set of DVFS
// settings on the simulated SoC, recording one (counts, time, energy) sample
// per (point, setting) pair -- the data the model is fitted on and
// cross-validated against (paper Sections II-C / II-D).
#pragma once

#include <vector>

#include "hw/dvfs.hpp"
#include "hw/powermon.hpp"
#include "hw/soc.hpp"
#include "ubench/suite.hpp"

namespace eroof::ub {

/// One campaign sample: the measurement plus which suite point produced it
/// and the role (train/validate) of its setting.
struct Sample {
  BenchClass cls;
  double intensity = 0;
  hw::SettingRole role = hw::SettingRole::kTrain;
  hw::Measurement meas;
};

/// Runs `points` x `settings` on `soc`, measuring each run with `monitor`.
std::vector<Sample> run_campaign(const hw::Soc& soc,
                                 const std::vector<BenchPoint>& points,
                                 const std::vector<hw::LabeledSetting>& settings,
                                 const hw::PowerMon& monitor, util::Rng& rng);

/// Convenience: the paper's full campaign -- the default 116-point suite
/// over the 16 Table I settings (1856 samples).
std::vector<Sample> paper_campaign(const hw::Soc& soc,
                                   const hw::PowerMon& monitor,
                                   util::Rng& rng);

}  // namespace eroof::ub
