#include "ubench/kernels.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace eroof::ub {

float sp_fma_stream(std::span<const float> data, int intensity) {
  EROOF_REQUIRE(intensity >= 1);
  float acc0 = 1.0f;
  float acc1 = 0.5f;
  for (const float x : data) {
    for (int i = 0; i < intensity; i += 2) {
      acc0 = acc0 * x + 1.000001f;
      acc1 = acc1 * x + 0.999999f;
    }
  }
  return acc0 + acc1;
}

double dp_fma_stream(std::span<const double> data, int intensity) {
  EROOF_REQUIRE(intensity >= 1);
  double acc0 = 1.0;
  double acc1 = 0.5;
  for (const double x : data) {
    for (int i = 0; i < intensity; i += 2) {
      acc0 = acc0 * x + 1.000001;
      acc1 = acc1 * x + 0.999999;
    }
  }
  return acc0 + acc1;
}

std::uint64_t int_ops_stream(std::span<const std::uint64_t> data,
                             int intensity) {
  EROOF_REQUIRE(intensity >= 1);
  std::uint64_t acc = 0x243F6A8885A308D3ULL;
  for (const std::uint64_t x : data) {
    std::uint64_t v = x;
    for (int i = 0; i < intensity; ++i) {
      v = (v << 13) ^ (v >> 7);
      v += 0x9E3779B97F4A7C15ULL;
    }
    acc ^= v;
  }
  return acc;
}

float scratch_reuse_stream(std::span<const float> data, int reuse,
                           std::size_t tile_elems) {
  EROOF_REQUIRE(reuse >= 1 && tile_elems >= 1);
  float tile[4096];
  tile_elems = std::min<std::size_t>(tile_elems, 4096);
  float acc = 0.0f;
  for (std::size_t base = 0; base < data.size(); base += tile_elems) {
    const std::size_t len = std::min(tile_elems, data.size() - base);
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(base), len, tile);
    for (int r = 0; r < reuse; ++r)
      for (std::size_t i = 0; i < len; ++i) acc += tile[i];
  }
  return acc;
}

float cache_resident_stream(std::span<const float> data, std::size_t ws_elems,
                            int passes) {
  EROOF_REQUIRE(passes >= 1);
  ws_elems = std::min(ws_elems, data.size());
  EROOF_REQUIRE(ws_elems >= 1);
  float acc = 0.0f;
  for (int p = 0; p < passes; ++p)
    for (std::size_t i = 0; i < ws_elems; ++i) acc += data[i];
  return acc;
}

}  // namespace eroof::ub
