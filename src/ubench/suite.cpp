#include "ubench/suite.hpp"

#include <cmath>
#include <sstream>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::ub {
namespace {

using hw::OpClass;

/// Log-spaced sweep of `count` intensities over [lo, hi].
std::vector<double> log_spaced(double lo, double hi, std::size_t count) {
  std::vector<double> xs(count);
  const double l0 = std::log2(lo);
  const double l1 = std::log2(hi);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = count == 1
                         ? 0.0
                         : static_cast<double>(i) / static_cast<double>(count - 1);
    xs[i] = std::exp2(l0 + t * (l1 - l0));
  }
  return xs;
}

/// Deterministic per-point jitter so every benchmark point has its own
/// realistic (but reproducible) utilization, like distinct hand-tuned
/// kernels would.
double jitter(BenchClass c, std::size_t i, double lo, double hi) {
  util::Rng rng(0xBEEF0000u + 131u * static_cast<std::uint64_t>(c) + i);
  return rng.uniform(lo, hi);
}

std::string point_name(BenchClass c, double intensity) {
  std::ostringstream os;
  os << to_string(c) << "_I" << intensity;
  return os.str();
}

BenchPoint make_point(BenchClass c, double intensity, std::size_t index,
                      double stream_words) {
  BenchPoint p;
  p.cls = c;
  p.intensity = intensity;
  hw::Workload& w = p.workload;
  w.name = point_name(c, intensity);
  const double n = stream_words;
  hw::OpCounts& ops = w.ops;

  // Every kernel streams its operands from DRAM...
  ops[OpClass::kDramAccess] = n;
  // ...with a sliver of loop/addressing overhead (these kernels are tuned:
  // fully unrolled bodies, one induction variable).
  ops[OpClass::kIntOp] = 0.05 * n;

  switch (c) {
    case BenchClass::kSpFlops:
      ops[OpClass::kSpFlop] = intensity * n;
      ops[OpClass::kIntOp] += 0.02 * intensity * n;
      break;
    case BenchClass::kDpFlops:
      ops[OpClass::kDpFlop] = intensity * n;
      ops[OpClass::kIntOp] += 0.02 * intensity * n;
      break;
    case BenchClass::kIntOps:
      ops[OpClass::kIntOp] += intensity * n;
      break;
    case BenchClass::kSharedMem:
      ops[OpClass::kSmAccess] = intensity * n;
      ops[OpClass::kIntOp] += 0.1 * intensity * n;
      break;
    case BenchClass::kL2:
      ops[OpClass::kL2Access] = intensity * n;
      ops[OpClass::kIntOp] += 0.1 * intensity * n;
      break;
    case BenchClass::kDram:
      // Pure stream; the 13 "intensities" scale the stream length instead.
      ops[OpClass::kDramAccess] = n * intensity;
      ops[OpClass::kIntOp] = 0.05 * n * intensity;
      break;
  }

  w.compute_utilization = jitter(c, index, 0.93, 0.99);
  w.memory_utilization = jitter(c, index + 1000, 0.85, 0.95);
  return p;
}

}  // namespace

std::string to_string(BenchClass c) {
  switch (c) {
    case BenchClass::kSpFlops: return "sp";
    case BenchClass::kDpFlops: return "dp";
    case BenchClass::kIntOps: return "int";
    case BenchClass::kSharedMem: return "sm";
    case BenchClass::kL2: return "l2";
    case BenchClass::kDram: return "dram";
  }
  EROOF_REQUIRE_MSG(false, "bad BenchClass");
  return {};
}

std::size_t sweep_size(BenchClass c) {
  switch (c) {
    case BenchClass::kSpFlops: return 25;  // Table II: "out of 25"
    case BenchClass::kDpFlops: return 36;  // "out of 36"
    case BenchClass::kIntOps: return 23;   // "out of 23"
    case BenchClass::kSharedMem: return 10;  // "out of 10"
    case BenchClass::kL2: return 9;          // "out of 9"
    case BenchClass::kDram: return 13;  // completes 116 points -> 1856 samples
  }
  return 0;
}

std::vector<BenchPoint> intensity_sweep(BenchClass c, double stream_words) {
  EROOF_REQUIRE(stream_words >= 1e6);
  const std::size_t count = sweep_size(c);
  std::vector<double> xs;
  switch (c) {
    case BenchClass::kSpFlops:
      xs = log_spaced(0.25, 64.0, count);
      break;
    case BenchClass::kDpFlops:
      // DP peak is 1/24 of SP, so the compute roof is met much earlier;
      // sweep a tighter range more densely.
      xs = log_spaced(0.25, 16.0, count);
      break;
    case BenchClass::kIntOps:
      xs = log_spaced(0.25, 64.0, count);
      break;
    case BenchClass::kSharedMem:
      xs = log_spaced(1.0, 32.0, count);
      break;
    case BenchClass::kL2:
      xs = log_spaced(1.0, 16.0, count);
      break;
    case BenchClass::kDram:
      xs = log_spaced(0.25, 1.0, count);  // stream-length scale factors
      break;
  }
  std::vector<BenchPoint> points;
  points.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    points.push_back(make_point(c, xs[i], i, stream_words));
  return points;
}

std::vector<BenchPoint> default_suite(double stream_words) {
  std::vector<BenchPoint> all;
  for (BenchClass c : {BenchClass::kSpFlops, BenchClass::kDpFlops,
                       BenchClass::kIntOps, BenchClass::kSharedMem,
                       BenchClass::kL2, BenchClass::kDram}) {
    auto sweep = intensity_sweep(c, stream_words);
    all.insert(all.end(), sweep.begin(), sweep.end());
  }
  return all;
}

}  // namespace eroof::ub
