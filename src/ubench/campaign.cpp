#include "ubench/campaign.hpp"

namespace eroof::ub {

std::vector<Sample> run_campaign(const hw::Soc& soc,
                                 const std::vector<BenchPoint>& points,
                                 const std::vector<hw::LabeledSetting>& settings,
                                 const hw::PowerMon& monitor,
                                 util::Rng& rng) {
  std::vector<Sample> samples;
  samples.reserve(points.size() * settings.size());
  for (const auto& [role, setting] : settings) {
    for (const auto& p : points) {
      Sample s;
      s.cls = p.cls;
      s.intensity = p.intensity;
      s.role = role;
      s.meas = soc.run(p.workload, setting, monitor, rng);
      samples.push_back(std::move(s));
    }
  }
  return samples;
}

std::vector<Sample> paper_campaign(const hw::Soc& soc,
                                   const hw::PowerMon& monitor,
                                   util::Rng& rng) {
  return run_campaign(soc, default_suite(), hw::table1_settings(), monitor,
                      rng);
}

}  // namespace eroof::ub
