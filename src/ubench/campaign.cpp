#include "ubench/campaign.hpp"

#include "trace/trace.hpp"

namespace eroof::ub {

std::vector<Sample> run_campaign(const hw::Soc& soc,
                                 const std::vector<BenchPoint>& points,
                                 const std::vector<hw::LabeledSetting>& settings,
                                 const hw::PowerMon& monitor,
                                 util::Rng& rng) {
  trace::ScopedSpan campaign_span("run_campaign", "ubench");
  std::vector<Sample> samples;
  samples.reserve(points.size() * settings.size());
  for (const auto& [role, setting] : settings) {
    for (const auto& p : points) {
      // One span per (kernel, f_proc, f_mem) campaign cell.
      trace::ScopedSpan cell(p.workload.name, "ubench.sample");
      Sample s;
      s.cls = p.cls;
      s.intensity = p.intensity;
      s.role = role;
      s.meas = soc.run(p.workload, setting, monitor, rng);
      if (cell.active()) {
        cell.arg("f_proc_mhz", setting.core.freq_mhz);
        cell.arg("f_mem_mhz", setting.mem.freq_mhz);
        cell.arg("intensity", p.intensity);
        cell.arg("time_s", s.meas.time_s);
        cell.arg("energy_j", s.meas.energy_j);
        trace::counter_add("ubench.samples", 1);
        trace::counter_add("ubench.energy_j", s.meas.energy_j);
        trace::counter_add("ubench.time_s", s.meas.time_s);
      }
      samples.push_back(std::move(s));
    }
  }
  if (campaign_span.active()) {
    campaign_span.arg("points", static_cast<double>(points.size()));
    campaign_span.arg("settings", static_cast<double>(settings.size()));
  }
  return samples;
}

std::vector<Sample> paper_campaign(const hw::Soc& soc,
                                   const hw::PowerMon& monitor,
                                   util::Rng& rng) {
  return run_campaign(soc, default_suite(), hw::table1_settings(), monitor,
                      rng);
}

}  // namespace eroof::ub
