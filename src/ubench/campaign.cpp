#include "ubench/campaign.hpp"

#include <cstddef>

#include "trace/trace.hpp"

namespace eroof::ub {

std::vector<Sample> run_campaign(const hw::Soc& soc,
                                 const std::vector<BenchPoint>& points,
                                 const std::vector<hw::LabeledSetting>& settings,
                                 const hw::PowerMon& monitor,
                                 util::Rng& rng) {
  return run_campaign(soc, points, settings, monitor, util::RngStream(rng()));
}

std::vector<Sample> run_campaign(const hw::Soc& soc,
                                 const std::vector<BenchPoint>& points,
                                 const std::vector<hw::LabeledSetting>& settings,
                                 const hw::PowerMon& monitor,
                                 const util::RngStream& root) {
  trace::ScopedSpan campaign_span("run_campaign", "ubench");
  const std::size_t npoints = points.size();
  const std::size_t ncells = points.size() * settings.size();
  std::vector<Sample> samples(ncells);

  // PowerMon sample streams are buffered per cell during the parallel loop
  // and mirrored into the session serially afterwards; only pay for the
  // buffers when a session is actually installed.
  trace::TraceSession* ts = trace::session();
  std::vector<hw::PowerTrace> traces(ts ? ncells : 0);

  // Hoist the per-setting forks: label() formats through an ostringstream,
  // so deriving it once per setting instead of once per cell matters at
  // 1856 cells.
  std::vector<util::RngStream> setting_streams;
  setting_streams.reserve(settings.size());
  for (const auto& [role, setting] : settings)
    setting_streams.push_back(root.fork(setting.label()));

  // Cell index flattens settings-major so samples keep the legacy
  // (setting, point) order. Every cell draws from a stream derived from its
  // identity alone, so scheduling cannot perturb any measurement.
  // eroof: hot-begin (campaign cell bodies: one simulated measurement each)
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t cell = 0; cell < static_cast<std::ptrdiff_t>(ncells);
       ++cell) {
    const std::size_t si = static_cast<std::size_t>(cell) / npoints;
    const std::size_t pi = static_cast<std::size_t>(cell) % npoints;
    const auto& [role, setting] = settings[si];
    const BenchPoint& p = points[pi];
    const util::RngStream cell_stream =
        setting_streams[si].fork(p.workload.name);

    Sample s;
    s.cls = p.cls;
    s.intensity = p.intensity;
    s.role = role;
    s.meas = soc.run(p.workload, setting, monitor, cell_stream,
                     ts ? &traces[cell] : nullptr);
    samples[cell] = std::move(s);
  }
  // eroof: hot-end

  if (ts) {
    // Serial replay in cell order: one span per campaign cell plus the
    // counter totals, exactly as the sequential implementation emitted them.
    for (std::size_t cell = 0; cell < ncells; ++cell) {
      const auto& [role, setting] = settings[cell / npoints];
      const BenchPoint& p = points[cell % npoints];
      const Sample& s = samples[cell];
      trace::ScopedSpan cell_span(p.workload.name, "ubench.sample");
      cell_span.arg("f_proc_mhz", setting.core.freq_mhz);
      cell_span.arg("f_mem_mhz", setting.mem.freq_mhz);
      cell_span.arg("intensity", p.intensity);
      cell_span.arg("time_s", s.meas.time_s);
      cell_span.arg("energy_j", s.meas.energy_j);
      trace::counter_add("ubench.samples", 1);
      trace::counter_add("ubench.energy_j", s.meas.energy_j);
      trace::counter_add("ubench.time_s", s.meas.time_s);
      hw::PowerMon::mirror_to_session(traces[cell]);
    }
  }

  if (campaign_span.active()) {
    campaign_span.arg("points", static_cast<double>(points.size()));
    campaign_span.arg("settings", static_cast<double>(settings.size()));
  }
  return samples;
}

std::vector<Sample> paper_campaign(const hw::Soc& soc,
                                   const hw::PowerMon& monitor,
                                   util::Rng& rng) {
  return paper_campaign(soc, monitor, util::RngStream(rng()));
}

std::vector<Sample> paper_campaign(const hw::Soc& soc,
                                   const hw::PowerMon& monitor,
                                   const util::RngStream& root) {
  return run_campaign(soc, default_suite(), hw::table1_settings(), monitor,
                      root);
}

}  // namespace eroof::ub
