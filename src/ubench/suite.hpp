// The "intensity" microbenchmark suite (the paper's archline equivalent).
//
// Each benchmark class stresses a single resource at ~full utilization while
// streaming data from DRAM, and is swept over arithmetic intensity (flops --
// or integer ops, or on-chip words -- per word of DRAM traffic). The sweep
// sizes reproduce the paper's Table II denominators: 25 SP, 36 DP, 23
// integer, 10 shared-memory and 9 L2 intensities; a 13-point pure-DRAM sweep
// completes the 116 points whose 16-setting campaign yields the paper's 1856
// samples.
#pragma once

#include <string>
#include <vector>

#include "hw/workload.hpp"

namespace eroof::ub {

/// Which resource the benchmark targets.
enum class BenchClass {
  kSpFlops,
  kDpFlops,
  kIntOps,
  kSharedMem,
  kL2,
  kDram,
};

std::string to_string(BenchClass c);

/// One point of a sweep: a fully-characterized workload plus the knob value
/// that produced it.
struct BenchPoint {
  BenchClass cls = BenchClass::kSpFlops;
  double intensity = 0;  ///< target ops per DRAM word (0 for pure streaming)
  hw::Workload workload;
};

/// Number of intensity values per class (Table II denominators).
std::size_t sweep_size(BenchClass c);

/// Builds the intensity sweep for one class. `stream_words` is the number of
/// DRAM words each kernel streams (default sized so runs last ~0.1-1 s on
/// the simulated SoC, comfortably above PowerMon's sampling period).
std::vector<BenchPoint> intensity_sweep(BenchClass c,
                                        double stream_words = 64e6);

/// The full 116-point suite.
std::vector<BenchPoint> default_suite(double stream_words = 64e6);

}  // namespace eroof::ub
