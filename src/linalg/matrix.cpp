#include "linalg/matrix.hpp"

#include <cmath>

#include "util/require.hpp"

namespace eroof::la {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    EROOF_REQUIRE_MSG(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  EROOF_REQUIRE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  EROOF_REQUIRE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  EROOF_REQUIRE(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  EROOF_REQUIRE(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

double Matrix::frobenius_norm() const {
  double s = 0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  EROOF_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  return m;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  EROOF_REQUIRE(a.cols_ == b.rows_);
  Matrix c(a.rows_, b.cols_);
  // i-k-j loop order keeps the inner loop unit-stride for row-major storage.
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data_.data() + k * b.cols_;
      double* crow = c.data_.data() + i * c.cols_;
      for (std::size_t j = 0; j < b.cols_; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  EROOF_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_);
  Matrix c = a;
  for (std::size_t i = 0; i < c.data_.size(); ++i) c.data_[i] += b.data_[i];
  return c;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  EROOF_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_);
  Matrix c = a;
  for (std::size_t i = 0; i < c.data_.size(); ++i) c.data_[i] -= b.data_[i];
  return c;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  EROOF_REQUIRE(x.size() == a.cols());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    double s = 0;
    for (std::size_t j = 0; j < row.size(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

void gemv_add(const Matrix& a, std::span<const double> x,
              std::span<double> y) {
  EROOF_REQUIRE(x.size() == a.cols() && y.size() == a.rows());
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const double* mat = a.data().data();
  const double* xs = x.data();
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* r0 = mat + i * n;
    const double* r1 = r0 + n;
    const double* r2 = r1 + n;
    const double* r3 = r2 + n;
    double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    // eroof-lint: allow(nondet-omp) simd-only reduction, fixed lane order
#pragma omp simd reduction(+ : s0, s1, s2, s3)
    for (std::size_t j = 0; j < n; ++j) {
      const double xj = xs[j];
      s0 += r0[j] * xj;
      s1 += r1[j] * xj;
      s2 += r2[j] * xj;
      s3 += r3[j] * xj;
    }
    y[i] += s0;
    y[i + 1] += s1;
    y[i + 2] += s2;
    y[i + 3] += s3;
  }
  for (; i < m; ++i) {
    const double* row = mat + i * n;
    double s = 0;
    // eroof-lint: allow(nondet-omp) simd-only reduction, fixed lane order
#pragma omp simd reduction(+ : s)
    for (std::size_t j = 0; j < n; ++j) s += row[j] * xs[j];
    y[i] += s;
  }
}

std::vector<double> matvec_t(const Matrix& a, std::span<const double> x) {
  EROOF_REQUIRE(x.size() == a.rows());
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    const double xi = x[i];
    for (std::size_t j = 0; j < row.size(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  EROOF_REQUIRE(a.size() == b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

}  // namespace eroof::la
