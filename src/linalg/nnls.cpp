#include "linalg/nnls.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/qr.hpp"
#include "util/require.hpp"

namespace eroof::la {
namespace {

// Solves the unconstrained least squares restricted to the passive columns
// listed in `passive`, returning a dense n-vector with zeros elsewhere.
std::vector<double> solve_passive(const Matrix& a, std::span<const double> b,
                                  const std::vector<std::size_t>& passive) {
  const std::size_t m = a.rows();
  Matrix ap(m, passive.size());
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < passive.size(); ++j)
      ap(i, j) = a(i, passive[j]);
  const std::vector<double> z = QR(std::move(ap)).solve(b);
  std::vector<double> full(a.cols(), 0.0);
  for (std::size_t j = 0; j < passive.size(); ++j) full[passive[j]] = z[j];
  return full;
}

// Solves G_PP z_P = atb_P for the passive subset via an in-place Cholesky on
// the k x k Gram submatrix, returning a dense n-vector with zeros elsewhere.
// Gram submatrices can drift to numerical semi-definiteness as the active set
// grows, so a failed pivot is retried once with a tiny relative ridge.
std::vector<double> solve_passive_gram(const Matrix& g,
                                       std::span<const double> atb,
                                       const std::vector<std::size_t>& passive) {
  const std::size_t k = passive.size();
  std::vector<double> sub(k * k);
  std::vector<double> rhs(k);
  double diag_scale = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) sub[i * k + j] = g(passive[i], passive[j]);
    rhs[i] = atb[passive[i]];
    diag_scale = std::max(diag_scale, sub[i * k + i]);
  }

  auto factor = [&](std::vector<double>& l) -> bool {
    // Lower-triangular Cholesky, in place over the packed k x k buffer.
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double s = l[i * k + j];
        for (std::size_t p = 0; p < j; ++p) s -= l[i * k + p] * l[j * k + p];
        if (i == j) {
          if (s <= 0.0) return false;
          l[i * k + i] = std::sqrt(s);
        } else {
          l[i * k + j] = s / l[j * k + j];
        }
      }
    }
    return true;
  };

  std::vector<double> l = sub;
  if (!factor(l)) {
    const double ridge = std::max(diag_scale, 1.0) * 1e-12;
    l = sub;
    for (std::size_t i = 0; i < k; ++i) l[i * k + i] += ridge;
    EROOF_REQUIRE(factor(l));
  }

  // Forward then back substitution.
  std::vector<double> y(k);
  for (std::size_t i = 0; i < k; ++i) {
    double s = rhs[i];
    for (std::size_t p = 0; p < i; ++p) s -= l[i * k + p] * y[p];
    y[i] = s / l[i * k + i];
  }
  std::vector<double> z(k);
  for (std::size_t ii = k; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t p = ii + 1; p < k; ++p) s -= l[p * k + ii] * z[p];
    z[ii] = s / l[ii * k + ii];
  }

  std::vector<double> full(g.cols(), 0.0);
  for (std::size_t j = 0; j < k; ++j) full[passive[j]] = z[j];
  return full;
}

}  // namespace

NnlsResult nnls(const Matrix& a, std::span<const double> b, double tol,
                int max_iter) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  EROOF_REQUIRE(b.size() == m);
  EROOF_REQUIRE(m >= 1 && n >= 1);
  if (max_iter <= 0) max_iter = static_cast<int>(3 * n) + 10;

  NnlsResult out;
  out.x.assign(n, 0.0);
  out.iterations = 0;
  out.converged = false;

  std::vector<bool> in_passive(n, false);
  std::vector<std::size_t> passive;

  // residual r = b - A x; with x = 0, r = b.
  std::vector<double> r(b.begin(), b.end());

  while (out.iterations < max_iter) {
    // Dual vector w = A^T r. Optimality: w_j <= tol for all active j.
    const std::vector<double> w = matvec_t(a, r);
    double wmax = -std::numeric_limits<double>::infinity();
    std::size_t jmax = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (in_passive[j]) continue;
      if (w[j] > wmax) {
        wmax = w[j];
        jmax = j;
      }
    }
    if (jmax == n || wmax <= tol) {
      out.converged = true;
      break;
    }

    in_passive[jmax] = true;
    passive.push_back(jmax);

    // Inner loop: solve on the passive set; if any passive coefficient goes
    // non-positive, step back to the feasibility boundary and shrink the set.
    while (true) {
      ++out.iterations;
      std::vector<double> z = solve_passive(a, b, passive);

      double alpha = 1.0;
      bool all_positive = true;
      for (std::size_t j : passive) {
        if (z[j] <= 0.0) {
          all_positive = false;
          const double denom = out.x[j] - z[j];
          if (denom > 0) alpha = std::min(alpha, out.x[j] / denom);
        }
      }
      if (all_positive) {
        out.x = std::move(z);
        break;
      }

      for (std::size_t j = 0; j < n; ++j)
        out.x[j] += alpha * (z[j] - out.x[j]);

      // Remove variables that hit zero from the passive set.
      std::vector<std::size_t> keep;
      for (std::size_t j : passive) {
        if (out.x[j] > 1e-12) {
          keep.push_back(j);
        } else {
          out.x[j] = 0.0;
          in_passive[j] = false;
        }
      }
      passive = std::move(keep);
      if (passive.empty()) break;
      if (out.iterations >= max_iter) break;
    }

    // Refresh the residual.
    const std::vector<double> ax = matvec(a, out.x);
    for (std::size_t i = 0; i < m; ++i) r[i] = b[i] - ax[i];
  }

  out.residual_norm = norm2(r);
  return out;
}

NnlsResult nnls_gram(const Matrix& g, std::span<const double> atb, double btb,
                     double tol, int max_iter) {
  const std::size_t n = g.cols();
  EROOF_REQUIRE(g.rows() == n);
  EROOF_REQUIRE(atb.size() == n);
  EROOF_REQUIRE(n >= 1);
  if (max_iter <= 0) max_iter = static_cast<int>(3 * n) + 10;

  NnlsResult out;
  out.x.assign(n, 0.0);
  out.iterations = 0;
  out.converged = false;

  std::vector<bool> in_passive(n, false);
  std::vector<std::size_t> passive;

  // Dual vector w = A^T(b - A x) = atb - G x; with x = 0, w = atb.
  std::vector<double> w(atb.begin(), atb.end());

  while (out.iterations < max_iter) {
    double wmax = -std::numeric_limits<double>::infinity();
    std::size_t jmax = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (in_passive[j]) continue;
      if (w[j] > wmax) {
        wmax = w[j];
        jmax = j;
      }
    }
    if (jmax == n || wmax <= tol) {
      out.converged = true;
      break;
    }

    in_passive[jmax] = true;
    passive.push_back(jmax);

    while (true) {
      ++out.iterations;
      std::vector<double> z = solve_passive_gram(g, atb, passive);

      double alpha = 1.0;
      bool all_positive = true;
      for (std::size_t j : passive) {
        if (z[j] <= 0.0) {
          all_positive = false;
          const double denom = out.x[j] - z[j];
          if (denom > 0) alpha = std::min(alpha, out.x[j] / denom);
        }
      }
      if (all_positive) {
        out.x = std::move(z);
        break;
      }

      for (std::size_t j = 0; j < n; ++j)
        out.x[j] += alpha * (z[j] - out.x[j]);

      std::vector<std::size_t> keep;
      for (std::size_t j : passive) {
        if (out.x[j] > 1e-12) {
          keep.push_back(j);
        } else {
          out.x[j] = 0.0;
          in_passive[j] = false;
        }
      }
      passive = std::move(keep);
      if (passive.empty()) break;
      if (out.iterations >= max_iter) break;
    }

    for (std::size_t j = 0; j < n; ++j) {
      double gx = 0.0;
      for (std::size_t p = 0; p < n; ++p) gx += g(j, p) * out.x[p];
      w[j] = atb[j] - gx;
    }
  }

  // ||A x - b||^2 = btb - 2 x.atb + x.G x, clamped against cancellation.
  double xatb = 0.0;
  double xgx = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    xatb += out.x[j] * atb[j];
    double gx = 0.0;
    for (std::size_t p = 0; p < n; ++p) gx += g(j, p) * out.x[p];
    xgx += out.x[j] * gx;
  }
  out.residual_norm = std::sqrt(std::max(0.0, btb - 2.0 * xatb + xgx));
  return out;
}

}  // namespace eroof::la
