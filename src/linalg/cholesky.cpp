#include "linalg/cholesky.hpp"

#include <cmath>

#include "util/require.hpp"

namespace eroof::la {

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols()) {
  EROOF_REQUIRE(a.rows() == a.cols());
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    EROOF_REQUIRE_MSG(d > 0.0, "matrix not positive definite");
    l_(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  EROOF_REQUIRE(b.size() == n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b) {
  return Cholesky(a).solve(b);
}

}  // namespace eroof::la
