// Non-negative least squares: min ||A x - b||_2 subject to x >= 0.
//
// This is the fitting procedure the paper applies to its DVFS-aware energy
// roofline (Section II-C): the unknowns are physical energy coefficients, so
// non-negativity is the right prior. Implementation: the classic
// Lawson-Hanson active-set algorithm (Solving Least Squares Problems, 1974).
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace eroof::la {

/// Result of an NNLS solve.
struct NnlsResult {
  std::vector<double> x;   ///< the non-negative minimizer
  double residual_norm;    ///< ||A x - b||_2 at the solution
  int iterations;          ///< outer active-set iterations taken
  bool converged;          ///< false only if the iteration cap was hit
};

/// Solves min ||A x - b|| s.t. x >= 0 by Lawson-Hanson.
///
/// `tol` bounds the dual feasibility test (entries of the gradient A^T(b-Ax)
/// below tol are treated as non-positive); `max_iter` caps outer iterations
/// (default: 3 * cols, the customary setting).
NnlsResult nnls(const Matrix& a, std::span<const double> b, double tol = 1e-10,
                int max_iter = 0);

/// Lawson-Hanson on the normal equations: solves min ||A x - b|| s.t. x >= 0
/// given only the Gram matrix G = A^T A, the projection atb = A^T b, and
/// btb = b^T b. Each passive-set solve is an O(k^3) Cholesky on a k x k
/// submatrix of G instead of an O(m k^2) QR over all m samples, which is the
/// right trade when m >> n (the energy-model fits have m ~ 10^3, n <= 6).
/// The reported residual_norm is sqrt(btb - 2 x.atb + x.Gx), clamped at 0.
NnlsResult nnls_gram(const Matrix& g, std::span<const double> atb, double btb,
                     double tol = 1e-10, int max_iter = 0);

}  // namespace eroof::la
