#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/require.hpp"

namespace eroof::la {
namespace {

// One-sided Jacobi on a tall (m >= n) matrix: orthogonalizes columns of a
// working copy W by plane rotations accumulated into V; on convergence the
// column norms of W are the singular values and W's normalized columns are U.
Svd svd_tall(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix w = a;
  Matrix v = Matrix::identity(n);

  const double eps = std::numeric_limits<double>::epsilon();
  const double tol = 1e-14;
  const int max_sweeps = 60;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0;
        double beta = 0;
        double gamma = 0;
        for (std::size_t i = 0; i < m; ++i) {
          alpha += w(i, p) * w(i, p);
          beta += w(i, q) * w(i, q);
          gamma += w(i, p) * w(i, q);
        }
        if (alpha * beta == 0.0) continue;
        off = std::max(off, std::abs(gamma) / std::sqrt(alpha * beta));
        if (std::abs(gamma) <= tol * std::sqrt(alpha * beta)) continue;

        // Jacobi rotation zeroing the (p,q) inner product.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (off < 10 * eps) break;
  }

  // Extract singular values (column norms) and normalize U's columns.
  std::vector<double> s(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0;
    for (std::size_t i = 0; i < m; ++i) norm += w(i, j) * w(i, j);
    s[j] = std::sqrt(norm);
  }

  // Sort descending (stable permutation of columns of W and V).
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(),
                   [&s](std::size_t i, std::size_t j) { return s[i] > s[j]; });

  Svd out;
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  out.s.resize(n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = perm[jj];
    out.s[jj] = s[j];
    const double inv = s[j] > 0 ? 1.0 / s[j] : 0.0;
    for (std::size_t i = 0; i < m; ++i) out.u(i, jj) = w(i, j) * inv;
    for (std::size_t i = 0; i < n; ++i) out.v(i, jj) = v(i, j);
  }
  return out;
}

}  // namespace

Svd svd(const Matrix& a) {
  EROOF_REQUIRE(a.rows() > 0 && a.cols() > 0);
  if (a.rows() >= a.cols()) return svd_tall(a);
  // A = U S V^T  <=>  A^T = V S U^T: factor the transpose and swap factors.
  Svd t = svd_tall(a.transposed());
  Svd out;
  out.u = std::move(t.v);
  out.s = std::move(t.s);
  out.v = std::move(t.u);
  return out;
}

namespace {

Matrix pinv_from_svd(const Svd& f, std::vector<double> sinv) {
  // A+ = V diag(sinv) U^T, assembled without forming diag explicitly.
  const std::size_t n = f.v.rows();
  const std::size_t m = f.u.rows();
  const std::size_t k = f.s.size();
  Matrix out(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      double acc = 0;
      for (std::size_t l = 0; l < k; ++l)
        acc += f.v(i, l) * sinv[l] * f.u(j, l);
      out(i, j) = acc;
    }
  return out;
}

}  // namespace

Matrix pinv(const Matrix& a, double rcond) {
  Svd f = svd(a);
  const double cutoff = rcond * (f.s.empty() ? 0.0 : f.s.front());
  std::vector<double> sinv(f.s.size());
  for (std::size_t i = 0; i < f.s.size(); ++i)
    sinv[i] = f.s[i] > cutoff ? 1.0 / f.s[i] : 0.0;
  return pinv_from_svd(f, std::move(sinv));
}

Matrix pinv_tikhonov(const Matrix& a, double eps) {
  EROOF_REQUIRE(eps > 0);
  Svd f = svd(a);
  const double smax = f.s.empty() ? 0.0 : f.s.front();
  const double lambda2 = (eps * smax) * (eps * smax);
  std::vector<double> sinv(f.s.size());
  for (std::size_t i = 0; i < f.s.size(); ++i)
    sinv[i] = f.s[i] / (f.s[i] * f.s[i] + lambda2);
  return pinv_from_svd(f, std::move(sinv));
}

double cond2(const Matrix& a) {
  Svd f = svd(a);
  const double smin = f.s.back();
  if (smin == 0.0) return std::numeric_limits<double>::infinity();
  return f.s.front() / smin;
}

}  // namespace eroof::la
