// Singular value decomposition via one-sided Jacobi rotations, plus the
// Tikhonov-regularized pseudo-inverse the KIFMM uses for its (ill-conditioned)
// check-to-equivalent surface operators.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace eroof::la {

/// Thin SVD A = U diag(s) V^T with U m x n, s descending, V n x n.
struct Svd {
  Matrix u;
  std::vector<double> s;
  Matrix v;
};

/// Computes the thin SVD of `a` (any shape; internally transposes when
/// rows < cols). One-sided Jacobi: slow but robust and dependency-free,
/// plenty for the <= few-hundred-square operators this project builds.
Svd svd(const Matrix& a);

/// Moore-Penrose pseudo-inverse with relative singular-value cutoff `rcond`
/// (singular values below rcond * s_max are treated as zero).
Matrix pinv(const Matrix& a, double rcond = 1e-12);

/// Tikhonov-regularized pseudo-inverse: V diag(s / (s^2 + eps^2 s_max^2)) U^T.
/// This is the standard stabilization for KIFMM equivalent-density solves
/// (Ying, Biros & Zorin 2004 use a backward-stable variant of the same idea).
Matrix pinv_tikhonov(const Matrix& a, double eps);

/// 2-norm condition number (s_max / s_min); inf if s_min == 0.
double cond2(const Matrix& a);

}  // namespace eroof::la
