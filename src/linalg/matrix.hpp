// Dense row-major matrix of doubles.
//
// Sized for this project's needs: design matrices for the NNLS fit
// (~thousands x ~10) and KIFMM surface operators (~hundreds x ~hundreds).
// Simple O(n^3) kernels are deliberate -- they are nowhere near the critical
// path, and clarity wins.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace eroof::la {

/// Dense row-major matrix. Value type with move semantics; element access is
/// bounds-checked through EROOF_REQUIRE in debug-ish builds of the contract
/// macro (always on here).
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// Construct from nested initializer list (row major), e.g.
  /// Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Contiguous view of row `r`.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  Matrix transposed() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Largest absolute entry of (this - other); matrices must be same shape.
  double max_abs_diff(const Matrix& other) const;

  friend Matrix operator*(const Matrix& a, const Matrix& b);
  friend Matrix operator+(const Matrix& a, const Matrix& b);
  friend Matrix operator-(const Matrix& a, const Matrix& b);
  Matrix& operator*=(double s);
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A x  (dims must agree).
std::vector<double> matvec(const Matrix& a, std::span<const double> x);

/// y += A x, allocation-free. The FMM's UC2E/DC2E/M2M/L2L translations are
/// all applications of this form, so unlike the convenience matvec above it
/// is built for throughput: four rows per pass (x is streamed once per
/// block) with a simd-friendly inner loop.
void gemv_add(const Matrix& a, std::span<const double> x,
              std::span<double> y);

/// y = A^T x.
std::vector<double> matvec_t(const Matrix& a, std::span<const double> x);

/// Euclidean dot product / norm on raw vectors.
double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);

}  // namespace eroof::la
