// Cholesky factorization for symmetric positive-definite systems (used for
// normal-equation solves where the system is small and well-conditioned).
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace eroof::la {

/// Lower-triangular Cholesky factor of an SPD matrix.
class Cholesky {
 public:
  /// Factors `a`; throws ContractError if `a` is not positive definite
  /// (to working precision).
  explicit Cholesky(const Matrix& a);

  /// Solves A x = b via the factorization.
  std::vector<double> solve(std::span<const double> b) const;

  const Matrix& l() const { return l_; }

 private:
  Matrix l_;
};

/// Convenience: solves the SPD system A x = b.
std::vector<double> solve_spd(const Matrix& a, std::span<const double> b);

}  // namespace eroof::la
