#include "linalg/qr.hpp"

#include <cmath>

#include "util/require.hpp"

namespace eroof::la {

QR::QR(Matrix a) : qr_(std::move(a)) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  EROOF_REQUIRE_MSG(m >= n, "QR requires rows >= cols");
  beta_.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector annihilating column k below row k.
    double xnorm2 = 0;
    for (std::size_t i = k; i < m; ++i) xnorm2 += qr_(i, k) * qr_(i, k);
    const double xnorm = std::sqrt(xnorm2);
    if (xnorm == 0.0) {
      beta_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0 ? -xnorm : xnorm;
    // v = x - alpha e1, stored with implicit v[k] normalized to 1.
    const double vk = qr_(k, k) - alpha;
    beta_[k] = -vk / alpha;  // beta = 2 / (v^T v) with v scaled by 1/vk
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= vk;
    qr_(k, k) = alpha;

    // Apply (I - beta v v^T) to trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= beta_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

void QR::apply_qt(std::vector<double>& b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  for (std::size_t k = 0; k < n; ++k) {
    if (beta_[k] == 0.0) continue;
    double s = b[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * b[i];
    s *= beta_[k];
    b[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) b[i] -= s * qr_(i, k);
  }
}

std::vector<double> QR::solve(std::span<const double> b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  EROOF_REQUIRE(b.size() == m);
  // Relative rank test: a diagonal entry of R at roundoff level signals a
  // (numerically) rank-deficient system.
  double max_diag = 0;
  for (std::size_t i = 0; i < n; ++i)
    max_diag = std::max(max_diag, std::abs(qr_(i, i)));
  EROOF_REQUIRE_MSG(min_abs_diag() > 1e-13 * max_diag,
                    "rank-deficient least squares");

  std::vector<double> y(b.begin(), b.end());
  apply_qt(y);

  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= qr_(ii, j) * x[j];
    x[ii] = s / qr_(ii, ii);
  }
  return x;
}

Matrix QR::r() const {
  const std::size_t n = qr_.cols();
  Matrix r(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) r(i, j) = qr_(i, j);
  return r;
}

Matrix QR::thin_q() const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  // Accumulate Q by applying the reflectors to the first n columns of I,
  // in reverse order.
  Matrix q(m, n);
  for (std::size_t j = 0; j < n; ++j) q(j, j) = 1.0;
  for (std::size_t k = n; k-- > 0;) {
    if (beta_[k] == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      double s = q(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * q(i, j);
      s *= beta_[k];
      q(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) q(i, j) -= s * qr_(i, k);
    }
  }
  return q;
}

double QR::min_abs_diag() const {
  double m = std::abs(qr_(0, 0));
  for (std::size_t i = 1; i < qr_.cols(); ++i)
    m = std::min(m, std::abs(qr_(i, i)));
  return m;
}

std::vector<double> lstsq(const Matrix& a, std::span<const double> b) {
  return QR(a).solve(b);
}

}  // namespace eroof::la
