// Householder QR factorization and least-squares solves.
//
// Used by the NNLS active-set inner solve and available as a general
// full-rank least-squares solver for model fitting.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace eroof::la {

/// Compact Householder QR of an m x n matrix with m >= n.
///
/// Stores the factored form (reflectors below the diagonal, R on and above)
/// and answers least-squares solves `min ||A x - b||_2`.
class QR {
 public:
  /// Factors `a`; requires a.rows() >= a.cols().
  explicit QR(Matrix a);

  /// Solves the least-squares problem for the factored A.
  /// Requires b.size() == rows(). Throws ContractError if A is
  /// rank-deficient to working precision.
  std::vector<double> solve(std::span<const double> b) const;

  /// Returns the explicit R factor (n x n upper triangle).
  Matrix r() const;

  /// Returns the explicit thin Q factor (m x n with orthonormal columns).
  Matrix thin_q() const;

  /// Smallest |diagonal of R|; zero signals rank deficiency.
  double min_abs_diag() const;

  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

 private:
  void apply_qt(std::vector<double>& b) const;

  Matrix qr_;                 // packed reflectors + R
  std::vector<double> beta_;  // Householder scalars
};

/// One-shot dense least squares: min ||A x - b||.
std::vector<double> lstsq(const Matrix& a, std::span<const double> b);

}  // namespace eroof::la
