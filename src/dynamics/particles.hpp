// Particle state for time-stepping dynamics (DESIGN.md §13).
#pragma once

#include <cstdint>
#include <vector>

#include "fmm/geometry.hpp"

namespace eroof::dynamics {

/// Positions, velocities and charges of one particle ensemble, plus the
/// fixed protocol domain the trajectory must stay inside (reflecting walls;
/// the domain is what keeps the FMM session's tree geometry and operator
/// plan step-invariant).
struct ParticleSystem {
  std::vector<fmm::Vec3> pos;
  std::vector<fmm::Vec3> vel;
  std::vector<double> charge;
  fmm::Box domain{{0.5, 0.5, 0.5}, 0.5};

  std::size_t size() const { return pos.size(); }

  /// n particles uniform in the inner `fill` fraction of `domain`, charges
  /// uniform in [-1, 1], velocities zero. Identity-keyed: particle i's
  /// initial state is a function of (seed, i) only, independent of n or
  /// generation order.
  static ParticleSystem random(std::size_t n, const fmm::Box& domain,
                               std::uint64_t seed, double fill = 0.9);
};

}  // namespace eroof::dynamics
