#include "dynamics/mover.hpp"

#include <cmath>
#include <cstddef>

namespace eroof::dynamics {
namespace {

/// Mirrors x into [lo, hi]; flips *v's sign once per bounce so a reflected
/// leapfrog particle keeps moving away from the wall.
inline void reflect(double& x, double& v, double lo, double hi) {
  while (x < lo || x > hi) {
    if (x < lo) x = 2.0 * lo - x;
    if (x > hi) x = 2.0 * hi - x;
    v = -v;
  }
}

}  // namespace

void LeapfrogMover::advance(ParticleSystem& ps) {
  const fmm::Vec3 c = ps.domain.center;
  const double h = ps.domain.half;
  const double w2 = p_.omega * p_.omega;
  const double dt = p_.dt;
  const auto n = static_cast<std::ptrdiff_t>(ps.size());
  // eroof: hot-begin (leapfrog kick-drift-reflect; disjoint per-particle
  // writes, bitwise identical for every thread count)
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    fmm::Vec3& x = ps.pos[ui];
    fmm::Vec3& v = ps.vel[ui];
    v.x -= w2 * (x.x - c.x) * dt;
    v.y -= w2 * (x.y - c.y) * dt;
    v.z -= w2 * (x.z - c.z) * dt;
    x.x += v.x * dt;
    x.y += v.y * dt;
    x.z += v.z * dt;
    reflect(x.x, v.x, c.x - h, c.x + h);
    reflect(x.y, v.y, c.y - h, c.y + h);
    reflect(x.z, v.z, c.z - h, c.z + h);
  }
  // eroof: hot-end
}

void LangevinMover::advance(ParticleSystem& ps) {
  const fmm::Vec3 c = ps.domain.center;
  const double h = ps.domain.half;
  const double dt = p_.dt;
  const double gdt = p_.gamma * dt;
  const double noise = p_.sigma * std::sqrt(dt);
  const util::RngStream step_stream = root_.fork(step_);
  ++step_;
  const auto n = static_cast<std::ptrdiff_t>(ps.size());
  // eroof: hot-begin (Euler--Maruyama update; the (step, particle)-forked
  // stream makes the noise a pure function of identity, so any thread may
  // process any particle)
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    util::Rng rng = step_stream.fork(ui).rng();
    fmm::Vec3& x = ps.pos[ui];
    fmm::Vec3& v = ps.vel[ui];
    x.x += -gdt * (x.x - c.x) + noise * rng.normal();
    x.y += -gdt * (x.y - c.y) + noise * rng.normal();
    x.z += -gdt * (x.z - c.z) + noise * rng.normal();
    reflect(x.x, v.x, c.x - h, c.x + h);
    reflect(x.y, v.y, c.y - h, c.y + h);
    reflect(x.z, v.z, c.z - h, c.z + h);
  }
  // eroof: hot-end
}

}  // namespace eroof::dynamics
