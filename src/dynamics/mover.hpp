// Time-stepping integrators (DESIGN.md §13).
//
// A Mover advances the whole ensemble by one step, in place. Both movers
// are deterministic by construction and bitwise-reproducible across OpenMP
// thread counts: the per-particle updates write disjoint state, and the
// Langevin noise is drawn from identity-keyed util::RngStream forks -- the
// stream for particle i at step s is a pure function of (seed, s, i), never
// of which thread processed it or in what order.
//
// The driving force is an analytic confining field (harmonic well toward
// the domain center), not the FMM potential: the session computes
// *potentials*, the observable under study, and keeping the trajectory
// independent of the evaluation makes the differential tests exact.
// Reflecting walls keep every particle strictly inside the fixed domain,
// so the session's protocol-domain requirement holds for the whole run.
#pragma once

#include <cstdint>

#include "dynamics/particles.hpp"
#include "util/rng.hpp"

namespace eroof::dynamics {

class Mover {
 public:
  virtual ~Mover() = default;
  /// One time step, in place. Allocation-free.
  virtual void advance(ParticleSystem& ps) = 0;
};

/// Leapfrog (kick-drift) in the harmonic well a = -omega^2 (x - center),
/// with reflecting walls (position mirrored, velocity component negated).
class LeapfrogMover final : public Mover {
 public:
  struct Params {
    double dt = 1e-2;
    double omega = 1.0;
  };
  LeapfrogMover() = default;
  explicit LeapfrogMover(Params p) : p_(p) {}
  void advance(ParticleSystem& ps) override;

 private:
  Params p_;
};

/// Overdamped Langevin dynamics (Euler--Maruyama):
///   dx = -gamma (x - center) dt + sigma sqrt(dt) dW,
/// with reflecting walls. `sigma` directly controls per-step drift, which
/// makes it the knob for exercising the session's refit-vs-rebuild split.
class LangevinMover final : public Mover {
 public:
  struct Params {
    double dt = 1e-2;
    double gamma = 0.5;
    double sigma = 0.02;
  };
  explicit LangevinMover(std::uint64_t seed) : root_(seed) {}
  LangevinMover(std::uint64_t seed, Params p) : root_(seed), p_(p) {}
  void advance(ParticleSystem& ps) override;

 private:
  util::RngStream root_;
  Params p_;
  std::uint64_t step_ = 0;
};

}  // namespace eroof::dynamics
