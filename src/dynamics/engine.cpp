#include "dynamics/engine.hpp"

#include <utility>

#include "core/fit.hpp"
#include "fmm/gpu_profile.hpp"
#include "hw/powermon.hpp"
#include "trace/trace.hpp"
#include "ubench/campaign.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::dynamics {

std::shared_ptr<const TuneContext> TuneContext::tegra_default(
    std::uint64_t campaign_seed) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon meter;
  const util::RngStream root(campaign_seed);
  const auto campaign = ub::paper_campaign(soc, meter, root);
  std::vector<model::FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(model::to_fit_sample(s.meas));
  auto model = model::fit_energy_model(train).model;
  return std::make_shared<const TuneContext>(
      TuneContext{soc, model, hw::full_grid(),
                  hw::DvfsTransitionModel{100e-6, 50e-6}, std::move(train)});
}

DynamicsEngine::DynamicsEngine(std::shared_ptr<const fmm::Kernel> kernel,
                               ParticleSystem particles, Config cfg)
    : cfg_(std::move(cfg)),
      ps_(std::move(particles)),
      session_(std::move(kernel), ps_.pos, cfg_.session) {
  EROOF_REQUIRE_MSG(ps_.charge.size() == ps_.pos.size(),
                    "charges/positions size mismatch");
  EROOF_REQUIRE_MSG(ps_.domain.half == cfg_.session.tree.domain.half &&
                        ps_.domain.center.x == cfg_.session.tree.domain.center.x &&
                        ps_.domain.center.y == cfg_.session.tree.domain.center.y &&
                        ps_.domain.center.z == cfg_.session.tree.domain.center.z,
                    "particle domain must equal the session's tree domain");
  EROOF_REQUIRE_MSG(!cfg_.tuning.refresh.enabled || cfg_.tuning.context,
                    "Tuning::refresh requires a TuneContext");
  phi_.resize(ps_.size());
  if (cfg_.tuning.context) {
    reuse_.emplace(cfg_.tuning.retune_bound);
    if (cfg_.tuning.refresh.enabled) {
      refresh_.emplace(cfg_.tuning.context->model, cfg_.tuning.refresh.online);
      if (!cfg_.tuning.context->campaign.empty())
        refresh_->seed_anchor(cfg_.tuning.context->campaign);
    }
  }
}

void DynamicsEngine::step(Mover& mover) {
  ++stats_.steps;
  // eroof: hot-begin (steady-state step: advance, refit/move, evaluate,
  // energy reduction -- zero heap allocations after step 0)
  mover.advance(ps_);
  session_.move_to(ps_.pos);
  session_.evaluate_into(ps_.charge, phi_);
  double e = 0.0;
  for (std::size_t i = 0; i < phi_.size(); ++i) e += ps_.charge[i] * phi_[i];
  energy_ = 0.5 * e;
  // eroof: hot-end
  if (reuse_) {
    gather_phase_work();
    // eroof: hot-begin (amortized tuning: allocation-free drift check; the
    // search below it runs only on step 0 and on drift past the bound)
    const bool stale = reuse_->needs_retune(work_);
    // eroof: hot-end
    if (stale) retune();
    // The closed loop (in-service measurement + model drift) allocates
    // per-step buffers by design, so it stays outside the hot regions and
    // is strictly opt-in.
    if (refresh_) measure_and_refresh();
  }
}

void DynamicsEngine::gather_phase_work() {
  // Any per-phase scalar proportional to phase time at a fixed setting
  // works for the drift monitor; this one folds every FmmStats tally with
  // its natural size factor (solves are n_surf^2 matvecs, FFTs touch the
  // padded grid).
  const auto& s = session_.evaluator().stats();
  const auto& ops = session_.evaluator().operators();
  const auto ns = static_cast<double>(ops.n_surf());
  const auto g = static_cast<double>(ops.grid_size());
  const auto scalar = [ns, g](const fmm::FmmStats::Phase& p) {
    return p.kernel_evals + p.pair_count + g * p.ffts + p.hadamard_cmuls +
           ns * ns * p.solve_matvecs;
  };
  work_ = {scalar(s.up), scalar(s.u), scalar(s.v),
           scalar(s.w),  scalar(s.x), scalar(s.down)};
}

void DynamicsEngine::retune() {
  ++stats_.tunes;
  trace::counter_add("dynamics.tunes", 1.0);
  trace::ScopedSpan span("dynamics.retune", "dynamics");
  const auto prof = fmm::profile_gpu_execution(session_.evaluator());
  phases_.clear();
  phases_.reserve(prof.phases.size());
  for (const auto& p : prof.phases) phases_.push_back(p.workload);
  const TuneContext& ctx = *cfg_.tuning.context;
  // With refresh on, the search prices the grid with the *currently
  // trusted* (possibly refitted) model, not the frozen seed.
  const model::EnergyModel& m = refresh_ ? refresh_->model() : ctx.model;
  const auto pred = model::predict_phase_grid(m, ctx.soc, phases_, ctx.grid);
  reuse_->install(model::schedule_phases(pred, ctx.transitions), work_);
  settings_.resize(reuse_->schedule().pick.size());
  for (std::size_t p = 0; p < settings_.size(); ++p)
    settings_[p] = ctx.grid[reuse_->schedule().pick[p]];
}

void DynamicsEngine::measure_and_refresh() {
  const TuneContext& ctx = *cfg_.tuning.context;
  const Tuning::Refresh& rcfg = cfg_.tuning.refresh;
  const std::uint64_t step_idx = stats_.steps - 1;
  const double scale = rcfg.ramp.scale_at(step_idx);
  const hw::Soc hot = ctx.soc.with_leakage_scale(scale);
  // Identity-keyed noise: the step's measurements depend only on
  // (measure_seed, step), never on how many retunes or refreshes preceded
  // them -- the whole loop replays bitwise across thread counts.
  const util::RngStream noise =
      util::RngStream(rcfg.measure_seed).fork("refresh").fork(step_idx);
  const hw::SequenceMeasurement seq = hot.run_sequence(
      phases_, settings_, ctx.transitions, meter_, noise, &traces_);
  // Serial mirror, phase order: trace counter totals replay bit for bit.
  for (const hw::PowerTrace& t : traces_) hw::PowerMon::mirror_to_session(t);
  for (const hw::Measurement& m : seq.phases)
    stats_.drift = refresh_->observe(model::to_fit_sample(m));
  if (rcfg.idle_probe && !ctx.grid.empty()) {
    // Full-grid rotation + magnitude normalization: the pi_0 probe must
    // cover voltages the schedule never visits, at phase-row weight (see
    // model::probe_fit_sample).
    const hw::DvfsSetting s = ctx.grid[step_idx % ctx.grid.size()];
    const hw::Measurement m =
        hot.run(model::idle_probe_workload(), s, meter_, noise.fork("idle"));
    stats_.drift = refresh_->observe(model::probe_fit_sample(m));
  }
  stats_.measured_energy_j += seq.energy_j;
  stats_.measured_time_s += seq.time_s;
  stats_.last_leak_scale = scale;
  if (refresh_->should_refresh()) {
    trace::ScopedSpan span("dynamics.refresh", "dynamics");
    refresh_->refresh();
    ++stats_.refreshes;
    trace::counter_add("dynamics.refreshes", 1.0);
    // Re-run the chain DP with the refreshed model and rebaseline the
    // reuse monitor at the current work vector.
    retune();
  }
}

}  // namespace eroof::dynamics
