#include "dynamics/engine.hpp"

#include <utility>

#include "core/fit.hpp"
#include "fmm/gpu_profile.hpp"
#include "hw/powermon.hpp"
#include "trace/trace.hpp"
#include "ubench/campaign.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::dynamics {

std::shared_ptr<const TuneContext> TuneContext::tegra_default(
    std::uint64_t campaign_seed) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon meter;
  const util::RngStream root(campaign_seed);
  const auto campaign = ub::paper_campaign(soc, meter, root);
  std::vector<model::FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(model::to_fit_sample(s.meas));
  return std::make_shared<const TuneContext>(
      TuneContext{soc, model::fit_energy_model(train).model, hw::full_grid(),
                  hw::DvfsTransitionModel{100e-6, 50e-6}});
}

DynamicsEngine::DynamicsEngine(std::shared_ptr<const fmm::Kernel> kernel,
                               ParticleSystem particles, Config cfg)
    : cfg_(std::move(cfg)),
      ps_(std::move(particles)),
      session_(std::move(kernel), ps_.pos, cfg_.session) {
  EROOF_REQUIRE_MSG(ps_.charge.size() == ps_.pos.size(),
                    "charges/positions size mismatch");
  EROOF_REQUIRE_MSG(ps_.domain.half == cfg_.session.tree.domain.half &&
                        ps_.domain.center.x == cfg_.session.tree.domain.center.x &&
                        ps_.domain.center.y == cfg_.session.tree.domain.center.y &&
                        ps_.domain.center.z == cfg_.session.tree.domain.center.z,
                    "particle domain must equal the session's tree domain");
  phi_.resize(ps_.size());
  if (cfg_.tune) reuse_.emplace(cfg_.retune_bound);
}

void DynamicsEngine::step(Mover& mover) {
  ++stats_.steps;
  // eroof: hot-begin (steady-state step: advance, refit/move, evaluate,
  // energy reduction -- zero heap allocations after step 0)
  mover.advance(ps_);
  session_.move_to(ps_.pos);
  session_.evaluate_into(ps_.charge, phi_);
  double e = 0.0;
  for (std::size_t i = 0; i < phi_.size(); ++i) e += ps_.charge[i] * phi_[i];
  energy_ = 0.5 * e;
  // eroof: hot-end
  if (reuse_) {
    gather_phase_work();
    // eroof: hot-begin (amortized tuning: allocation-free drift check; the
    // search below it runs only on step 0 and on drift past the bound)
    const bool stale = reuse_->needs_retune(work_);
    // eroof: hot-end
    if (stale) retune();
  }
}

void DynamicsEngine::gather_phase_work() {
  // Any per-phase scalar proportional to phase time at a fixed setting
  // works for the drift monitor; this one folds every FmmStats tally with
  // its natural size factor (solves are n_surf^2 matvecs, FFTs touch the
  // padded grid).
  const auto& s = session_.evaluator().stats();
  const auto& ops = session_.evaluator().operators();
  const auto ns = static_cast<double>(ops.n_surf());
  const auto g = static_cast<double>(ops.grid_size());
  const auto scalar = [ns, g](const fmm::FmmStats::Phase& p) {
    return p.kernel_evals + p.pair_count + g * p.ffts + p.hadamard_cmuls +
           ns * ns * p.solve_matvecs;
  };
  work_ = {scalar(s.up), scalar(s.u), scalar(s.v),
           scalar(s.w),  scalar(s.x), scalar(s.down)};
}

void DynamicsEngine::retune() {
  ++stats_.tunes;
  trace::counter_add("dynamics.tunes", 1.0);
  trace::ScopedSpan span("dynamics.retune", "dynamics");
  const auto prof = fmm::profile_gpu_execution(session_.evaluator());
  std::vector<hw::Workload> phases;
  phases.reserve(prof.phases.size());
  for (const auto& p : prof.phases) phases.push_back(p.workload);
  const TuneContext& ctx = *cfg_.tune;
  const auto pred =
      model::predict_phase_grid(ctx.model, ctx.soc, phases, ctx.grid);
  reuse_->install(model::schedule_phases(pred, ctx.transitions), work_);
}

}  // namespace eroof::dynamics
