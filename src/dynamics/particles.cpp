#include "dynamics/particles.hpp"

#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::dynamics {

ParticleSystem ParticleSystem::random(std::size_t n, const fmm::Box& domain,
                                      std::uint64_t seed, double fill) {
  EROOF_REQUIRE(n > 0);
  EROOF_REQUIRE(domain.half > 0);
  EROOF_REQUIRE(fill > 0 && fill <= 1.0);
  ParticleSystem ps;
  ps.domain = domain;
  ps.pos.resize(n);
  ps.vel.assign(n, fmm::Vec3{0.0, 0.0, 0.0});
  ps.charge.resize(n);
  const util::RngStream root(seed);
  const double h = domain.half * fill;
  for (std::size_t i = 0; i < n; ++i) {
    util::Rng rng = root.fork("particle").fork(i).rng();
    ps.pos[i] = {domain.center.x + rng.uniform(-h, h),
                 domain.center.y + rng.uniform(-h, h),
                 domain.center.z + rng.uniform(-h, h)};
    ps.charge[i] = rng.uniform(-1.0, 1.0);
  }
  return ps;
}

}  // namespace eroof::dynamics
