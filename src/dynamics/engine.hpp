// The time-stepping dynamics engine (DESIGN.md §13): mover + incremental
// FMM session + amortized DVFS tuning.
//
// Per step: advance the particles, move the session to the new positions
// (in-place octree refit in the steady state, full rebuild only when the
// structure actually changed), evaluate the potentials into a reused
// buffer, and reduce the ensemble's potential energy. After step 0 the
// whole loop is zero-allocation (enforced by the operator-new hook test).
//
// Tuning is *amortized* across steps instead of re-run per evaluation: the
// expensive search -- GPU-execution profile replay, the phase-by-setting
// prediction grid, the chain DP -- runs on step 0 and whenever the
// model::ScheduleReuse drift monitor reports that the per-phase structural
// work has diverged past its bound from what the installed schedule was
// tuned for. In between, every step reuses the installed schedule at the
// cost of one allocation-free divergence check.
//
// Tuning::refresh (opt-in) closes the *model* side of the same loop
// (DESIGN.md §14): each tuned step additionally executes the installed
// schedule on the SoC at the step's ThermalRamp leakage scale, mirrors the
// per-phase PowerMon samples into the trace session, streams them into a
// model::OnlineRefresh, and -- when the drift detector fires -- refits the
// energy model and re-runs the chain DP, rebaselining through
// ScheduleReuse::install. Work drift and model drift thus share one
// install/reuse bookkeeping path.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/refresh.hpp"
#include "core/schedule.hpp"
#include "dynamics/mover.hpp"
#include "dynamics/particles.hpp"
#include "fmm/session.hpp"
#include "hw/dvfs.hpp"
#include "hw/powermon.hpp"
#include "hw/soc.hpp"

namespace eroof::dynamics {

/// Everything the per-phase schedule search needs, shared read-only across
/// the run: SoC model, fitted energy model, DVFS grid, transition costs.
/// Mirrors serve::ScheduleContext (serve depends on core+fmm like we do;
/// neither layer may depend on the other).
struct TuneContext {
  hw::Soc soc;
  model::EnergyModel model;
  std::vector<hw::DvfsSetting> grid;
  hw::DvfsTransitionModel transitions;
  /// The training samples `model` was fitted from; the refresh loop seeds
  /// its identifiability anchor with them. May be empty for hand-built
  /// contexts (the anchor is then simply skipped).
  std::vector<model::FitSample> campaign;

  /// Tegra K1 SoC, model fitted from the seeded paper campaign, full clock
  /// grid, realistic 100us/50uJ transitions.
  static std::shared_ptr<const TuneContext> tegra_default(
      std::uint64_t campaign_seed = 42);
};

class DynamicsEngine {
 public:
  /// DVFS tuning knobs, all inert while `context` is null.
  struct Tuning {
    std::shared_ptr<const TuneContext> context;  ///< null = no DVFS tuning
    /// Max tolerated per-phase relative work drift before a re-search.
    double retune_bound = 0.10;

    /// Opt-in closed-loop model refresh under thermal drift.
    struct Refresh {
      bool enabled = false;
      model::OnlineRefreshConfig online;
      /// Ground-truth die-temperature trajectory, indexed by step.
      hw::ThermalRamp ramp;
      /// Root of the per-step PowerMon measurement-noise streams.
      std::uint64_t measure_seed = 0;
      /// Append the rotating zero-op pi_0 probe to each step's samples.
      bool idle_probe = true;
    };
    Refresh refresh;
  };

  struct Config {
    fmm::FmmSession::Config session;
    Tuning tuning;
  };

  DynamicsEngine(std::shared_ptr<const fmm::Kernel> kernel,
                 ParticleSystem particles, Config cfg);

  /// One time step: advance -> move_to -> evaluate_into -> energy, then
  /// (with tuning on) the drift check and, rarely, a re-search; with
  /// refresh on, additionally the in-service measurement + model drift
  /// check and, rarely, a refit + DP re-run.
  void step(Mover& mover);

  /// Potentials of the last step, caller (particle) order.
  std::span<const double> potentials() const { return phi_; }
  /// (1/2) sum_i q_i phi_i of the last step.
  double potential_energy() const { return energy_; }

  const ParticleSystem& particles() const { return ps_; }
  fmm::FmmSession& session() { return session_; }
  const fmm::FmmSession& session() const { return session_; }

  /// The installed per-phase schedule; null until the first tuned step (or
  /// always, with tuning off).
  const model::PhaseSchedule* schedule() const {
    return reuse_ && reuse_->installed() ? &reuse_->schedule() : nullptr;
  }
  const model::ScheduleReuse* schedule_reuse() const {
    return reuse_ ? &*reuse_ : nullptr;
  }
  /// The refresh state; null unless Tuning::refresh is enabled.
  const model::OnlineRefresh* refresh() const {
    return refresh_ ? &*refresh_ : nullptr;
  }

  struct Stats {
    std::uint64_t steps = 0;
    /// Schedule searches actually run (step 0, work drift, and -- with
    /// refresh on -- model-drift rebaselines; those also count below).
    std::uint64_t tunes = 0;
    std::uint64_t refreshes = 0;    ///< drift-triggered model refits
    double measured_energy_j = 0;   ///< cumulative in-service energy (noisy)
    double measured_time_s = 0;
    double last_leak_scale = 1.0;   ///< thermal state of the last step
    double drift = 0;               ///< detector EWMA after the last step
  };
  const Stats& stats() const { return stats_; }

 private:
  void gather_phase_work();
  void retune();
  void measure_and_refresh();

  Config cfg_;
  ParticleSystem ps_;
  fmm::FmmSession session_;
  std::vector<double> phi_;
  double energy_ = 0;
  std::optional<model::ScheduleReuse> reuse_;
  std::optional<model::OnlineRefresh> refresh_;
  hw::PowerMon meter_;
  /// Per-phase structural work of the last evaluation, UP,U,V,W,X,DOWN --
  /// the profile_gpu_execution phase order the schedule is searched in.
  std::array<double, 6> work_{};
  /// Workloads + settings of the installed schedule (kept for in-service
  /// execution between searches).
  std::vector<hw::Workload> phases_;
  std::vector<hw::DvfsSetting> settings_;
  std::vector<hw::PowerTrace> traces_;  ///< reused per-step trace buffer
  Stats stats_;
};

}  // namespace eroof::dynamics
