#include "fmm/pointgen.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace eroof::fmm {

std::vector<Vec3> uniform_cube(std::size_t n, util::Rng& rng) {
  EROOF_REQUIRE(n > 0);
  std::vector<Vec3> pts(n);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  return pts;
}

std::vector<Vec3> sphere_surface(std::size_t n, util::Rng& rng) {
  EROOF_REQUIRE(n > 0);
  std::vector<Vec3> pts(n);
  for (auto& p : pts) {
    // Marsaglia sphere sampling.
    double u = 0;
    double v = 0;
    double s = 2;
    while (s >= 1.0 || s == 0.0) {
      u = rng.uniform(-1.0, 1.0);
      v = rng.uniform(-1.0, 1.0);
      s = u * u + v * v;
    }
    const double f = 2.0 * std::sqrt(1.0 - s);
    p = {0.5 + 0.5 * u * f, 0.5 + 0.5 * v * f, 0.5 + 0.5 * (1.0 - 2.0 * s)};
  }
  return pts;
}

std::vector<Vec3> gaussian_clusters(std::size_t n, std::size_t k, double sigma,
                                    util::Rng& rng) {
  EROOF_REQUIRE(n > 0 && k > 0 && sigma > 0);
  std::vector<Vec3> centers(k);
  for (auto& c : centers)
    c = {rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8)};
  std::vector<Vec3> pts(n);
  for (auto& p : pts) {
    const Vec3& c = centers[rng.below(k)];
    p = {c.x + sigma * rng.normal(), c.y + sigma * rng.normal(),
         c.z + sigma * rng.normal()};
  }
  return pts;
}

std::vector<double> random_densities(std::size_t n, util::Rng& rng) {
  std::vector<double> d(n);
  for (auto& v : d) v = rng.uniform(-1.0, 1.0);
  return d;
}

}  // namespace eroof::fmm
