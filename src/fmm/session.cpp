#include "fmm/session.hpp"

#include <utility>

#include "fmm/lists.hpp"
#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::fmm {

FmmSession::FmmSession(std::shared_ptr<const Kernel> kernel,
                       std::span<const Vec3> points, Config cfg)
    : cfg_(cfg), kernel_(std::move(kernel)) {
  EROOF_REQUIRE_MSG(kernel_ != nullptr, "null kernel");
  EROOF_REQUIRE_MSG(cfg_.tree.domain.half > 0,
                    "FmmSession requires a fixed domain (tree.domain)");
  rebuild(points);
}

bool FmmSession::move_to(std::span<const Vec3> positions) {
  ++stats_.moves;
  // eroof: hot-begin (steady-state move: in-place refit attempt)
  const bool refitted = evaluator_->try_refit(positions);
  // eroof: hot-end
  if (refitted) {
    ++stats_.refits;
    trace::counter_add("fmm.session.refits", 1.0);
    return true;
  }
  rebuild(positions);
  ++stats_.rebuilds;
  trace::counter_add("fmm.session.rebuilds", 1.0);
  return false;
}

// eroof: cold (rebuild slow path: full tree/plan reconstruction allocates
// by design and is amortized across steps; the steady-state contract is
// the refit path)
void FmmSession::rebuild(std::span<const Vec3> positions) {
  Octree tree(positions, cfg_.tree);
  if (!plan_ || tree.max_depth() > plan_->max_depth()) {
    // Operators depend only on (kernel, p, root half, depth), so the plan
    // survives any rebuild that does not deepen the tree; this branch is
    // the initial build or a depth increase.
    auto plan = std::make_shared<FmmPlan>(kernel_, tree.domain().half,
                                          tree.max_depth(), cfg_.fmm);
    if (cfg_.executor == FmmExecutor::kDag)
      plan->attach_dag_skeleton(build_fmm_dag_skeleton(
          tree, build_lists(tree), cfg_.fmm.use_fft_m2l));
    plan_ = std::move(plan);
    ++stats_.plan_builds;
    trace::counter_add("fmm.session.plan_builds", 1.0);
  }
  evaluator_.emplace(plan_, std::move(tree));
  evaluator_->set_executor(cfg_.executor);
}

void FmmSession::evaluate_into(std::span<const double> densities,
                               std::span<double> out) {
  evaluator_->evaluate_into(densities, out);
}

std::vector<double> FmmSession::evaluate(std::span<const double> densities) {
  return evaluator_->evaluate(densities);
}

}  // namespace eroof::fmm
