// Basic 3-D geometry types for the FMM.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>

namespace eroof::fmm {

/// A point / vector in R^3.
struct Vec3 {
  double x = 0;
  double y = 0;
  double z = 0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  friend Vec3 operator*(double s, const Vec3& v) { return v * s; }

  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm2() const { return std::sqrt(dot(*this)); }
};

/// Axis-aligned cubic box given by center and half-width.
struct Box {
  Vec3 center;
  double half = 0;

  bool contains(const Vec3& p) const {
    return p.x >= center.x - half && p.x <= center.x + half &&
           p.y >= center.y - half && p.y <= center.y + half &&
           p.z >= center.z - half && p.z <= center.z + half;
  }

  /// Child octant box; `octant` bit i selects the +half side of axis i.
  Box child(unsigned octant) const {
    const double q = half * 0.5;
    return Box{{center.x + ((octant & 1u) ? q : -q),
                center.y + ((octant & 2u) ? q : -q),
                center.z + ((octant & 4u) ? q : -q)},
               q};
  }
};

/// Chebyshev (max-norm) distance between box centers, in units of `half`.
/// Two same-size boxes are adjacent iff this is <= 2 + tolerance.
inline double center_distance_inf(const Box& a, const Box& b) {
  const Vec3 d = a.center - b.center;
  return std::max({std::abs(d.x), std::abs(d.y), std::abs(d.z)});
}

/// Whether two boxes (possibly different sizes) share a face/edge/corner or
/// overlap, with a relative tolerance for floating-point box arithmetic.
inline bool boxes_adjacent(const Box& a, const Box& b) {
  const double gap = center_distance_inf(a, b) - (a.half + b.half);
  return gap <= 1e-9 * (a.half + b.half);
}

}  // namespace eroof::fmm
