// U / V / W / X interaction lists (paper Section III-A, Fig. 3), following
// the kernel-independent FMM's adaptive-tree definitions (Ying, Biros &
// Zorin 2004):
//
//   U(B)  (B leaf)  all leaves adjacent to B, including B itself -> direct
//                   P2P evaluation (the compute-bound phase).
//   V(B)  (any B)   children of B's parent's colleagues that are not
//                   adjacent to B -> M2L translations (the memory-bound,
//                   FFT-accelerated phase).
//   W(B)  (B leaf)  descendants A of B's colleagues with parent(A) adjacent
//                   to B but A itself not adjacent -> evaluate A's upward
//                   equivalent density directly at B's targets (M2P).
//   X(B)  (any B)   the dual: A with B in W(A) -> A's source points
//                   contribute to B's downward check surface (P2L).
//
// On uniform distributions the balanced tree is complete and W/X are empty;
// clustered inputs exercise them.
#pragma once

#include <vector>

#include "fmm/octree.hpp"

namespace eroof::fmm {

/// All four lists for every node, indexed by node id. Lists of nodes that
/// do not own that list kind (e.g. U of an internal node) are empty.
struct InteractionLists {
  std::vector<std::vector<int>> u;
  std::vector<std::vector<int>> v;
  std::vector<std::vector<int>> w;
  std::vector<std::vector<int>> x;
};

/// Builds the lists for `tree`. Requires the tree to be 2:1 balanced when
/// the distribution is adaptive (Octree does this by default).
InteractionLists build_lists(const Octree& tree);

}  // namespace eroof::fmm
