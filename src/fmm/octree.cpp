#include "fmm/octree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace eroof::fmm {

Octree::Octree(std::span<const Vec3> points, Params params)
    : params_(params), points_(points.begin(), points.end()) {
  EROOF_REQUIRE(!points.empty());
  EROOF_REQUIRE(params_.max_points_per_box >= 1);
  EROOF_REQUIRE(params_.max_level >= 1 &&
                params_.max_level <= MortonKey::kMaxLevel);

  original_index_.resize(points_.size());
  for (std::uint32_t i = 0; i < original_index_.size(); ++i)
    original_index_[i] = i;

  if (params_.domain.half > 0) {
    // Fixed protocol domain: every point must already lie inside it.
    for (const Vec3& p : points_)
      EROOF_REQUIRE_MSG(params_.domain.contains(p),
                        "point outside the fixed domain");
    domain_ = params_.domain;
  } else {
    // Bounding cube, slightly inflated so boundary points normalize into
    // [0, 1) strictly.
    Vec3 lo = points_[0];
    Vec3 hi = points_[0];
    for (const Vec3& p : points_) {
      lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
      hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
    }
    const Vec3 center = (lo + hi) * 0.5;
    double half = 0.5 * std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z});
    if (half == 0) half = 0.5;  // all points coincide
    half *= 1.0 + 1e-6;
    domain_ = Box{center, half};
  }

  Node root;
  root.key = MortonKey::from_coords(0, 0, 0, 0);
  root.box = domain_;
  root.point_begin = 0;
  root.point_end = static_cast<std::uint32_t>(points_.size());
  nodes_.push_back(root);
  key_to_node_.emplace(root.key.raw(), 0);

  build_recursive(0);
  if (params_.balance_2to1) enforce_balance();
  finalize();
}

int Octree::uniform_depth_for(std::size_t n_points, std::uint32_t q) {
  EROOF_REQUIRE(n_points > 0 && q > 0);
  int d = 0;
  double per_box = static_cast<double>(n_points);
  while (per_box > q && d < 12) {
    per_box /= 8.0;
    ++d;
  }
  return d;
}

void Octree::build_recursive(int node_idx) {
  const std::uint32_t count = nodes_[static_cast<std::size_t>(node_idx)].num_points();
  const int level = nodes_[static_cast<std::size_t>(node_idx)].level();
  if (level >= params_.max_level) return;
  if (params_.uniform_depth >= 0) {
    if (level >= params_.uniform_depth) return;
  } else if (count <= params_.max_points_per_box) {
    return;
  }
  split(node_idx);
  // Children were appended after `node_idx`; recurse into each.
  const auto children = nodes_[static_cast<std::size_t>(node_idx)].children;
  for (int c : children)
    if (c >= 0) build_recursive(c);
}

void Octree::split(int node_idx) {
  Node& n = nodes_[static_cast<std::size_t>(node_idx)];
  EROOF_REQUIRE(n.leaf);
  const Box box = n.box;
  const MortonKey key = n.key;
  const std::uint32_t begin = n.point_begin;
  const std::uint32_t end = n.point_end;

  // Bucket this node's points by octant (counting sort, stable).
  std::array<std::uint32_t, 8> bucket_count{};
  const auto octant_of = [&box](const Vec3& p) -> unsigned {
    return (p.x >= box.center.x ? 1u : 0u) | (p.y >= box.center.y ? 2u : 0u) |
           (p.z >= box.center.z ? 4u : 0u);
  };
  for (std::uint32_t i = begin; i < end; ++i)
    ++bucket_count[octant_of(points_[i])];

  std::array<std::uint32_t, 8> offset{};
  std::uint32_t acc = begin;
  for (unsigned o = 0; o < 8; ++o) {
    offset[o] = acc;
    acc += bucket_count[o];
  }

  std::vector<Vec3> tmp_pts(points_.begin() + begin, points_.begin() + end);
  std::vector<std::uint32_t> tmp_idx(original_index_.begin() + begin,
                                     original_index_.begin() + end);
  std::array<std::uint32_t, 8> cursor = offset;
  for (std::uint32_t i = 0; i < end - begin; ++i) {
    const unsigned o = octant_of(tmp_pts[i]);
    points_[cursor[o]] = tmp_pts[i];
    original_index_[cursor[o]] = tmp_idx[i];
    ++cursor[o];
  }

  nodes_[static_cast<std::size_t>(node_idx)].leaf = false;
  for (unsigned o = 0; o < 8; ++o) {
    if (bucket_count[o] == 0) continue;
    Node child;
    child.key = key.child(o);
    child.box = box.child(o);
    child.parent = node_idx;
    child.point_begin = offset[o];
    child.point_end = offset[o] + bucket_count[o];
    const int child_idx = static_cast<int>(nodes_.size());
    nodes_.push_back(child);
    key_to_node_.emplace(child.key.raw(), child_idx);
    nodes_[static_cast<std::size_t>(node_idx)].children[o] = child_idx;
  }
}

void Octree::enforce_balance() {
  // Ripple splitting: a leaf at level l may not touch a leaf at level
  // < l - 1. Splitting can create new violations, so iterate to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    // Snapshot size: nodes appended during this sweep get checked next sweep.
    const std::size_t n = nodes_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!nodes_[i].leaf) continue;
      const MortonKey key = nodes_[i].key;
      const int lvl = key.level();
      if (lvl < 2) continue;
      for (const MortonKey nk : key.neighbors()) {
        const int a = find_deepest_ancestor(nk);
        if (a < 0) continue;
        Node& an = nodes_[static_cast<std::size_t>(a)];
        if (an.leaf && an.level() < lvl - 1) {
          split(a);
          ++balance_splits_;
          changed = true;
        }
      }
    }
  }
}

void Octree::finalize() {
  by_level_.clear();
  leaves_.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const int lvl = nodes_[i].level();
    if (static_cast<std::size_t>(lvl) >= by_level_.size())
      by_level_.resize(static_cast<std::size_t>(lvl) + 1);
    by_level_[static_cast<std::size_t>(lvl)].push_back(static_cast<int>(i));
    if (nodes_[i].leaf) leaves_.push_back(static_cast<int>(i));
  }
}

// eroof: cold (lazy refit scratch: sized once per tree structure; every
// later refit reuses it)
void Octree::ensure_refit_scratch() {
  if (refit_count_.size() == nodes_.size()) return;
  refit_count_.resize(nodes_.size());
  refit_cursor_.resize(nodes_.size());
  refit_point_leaf_.resize(points_.size());
  // Leaves sorted by point range = the structural DFS (octant-path) order
  // the stable MSD radix build lays points out in. Node *index* order is not
  // that order (a sibling leaf is appended before the previous sibling's
  // descendants), so sort once; point ranges before and after a refit keep
  // the same relative order, hence this is structure-constant.
  refit_leaf_dfs_ = leaves_;
  std::sort(refit_leaf_dfs_.begin(), refit_leaf_dfs_.end(),
            [this](int a, int b) {
              return nodes_[static_cast<std::size_t>(a)].point_begin <
                     nodes_[static_cast<std::size_t>(b)].point_begin;
            });
}

bool Octree::try_refit(std::span<const Vec3> new_points) {
  EROOF_REQUIRE_MSG(new_points.size() == points_.size(),
                    "refit requires the same particle count");
  // Without a fixed protocol domain a fresh build would re-derive the
  // bounding cube from the moved points, so no in-place refit can match it.
  if (params_.domain.half <= 0) return false;
  // 2:1 balance splits make the structure depend on the occupancy pattern
  // (which leaf neighbors which refined region); the bounds checked below do
  // not capture that, so such trees always rebuild.
  if (balance_splits_ != 0) return false;

  ensure_refit_scratch();
  std::fill(refit_count_.begin(), refit_count_.end(), 0u);

  // Pass 1: walk every point root->leaf with the exact octant comparisons
  // split() uses, tallying occupancy at every node on the way. A walk that
  // needs a child the tree never materialized means a fresh build would
  // create it: structure changed, refuse.
  // eroof: hot-begin (refit pass 1: per-point root-to-leaf walk + tally)
  for (std::size_t i = 0; i < new_points.size(); ++i) {
    const Vec3 p = new_points[i];
    EROOF_REQUIRE_MSG(domain_.contains(p), "point outside the fixed domain");
    int idx = 0;
    ++refit_count_[0];
    while (!nodes_[static_cast<std::size_t>(idx)].leaf) {
      const Box& box = nodes_[static_cast<std::size_t>(idx)].box;
      const unsigned o = (p.x >= box.center.x ? 1u : 0u) |
                         (p.y >= box.center.y ? 2u : 0u) |
                         (p.z >= box.center.z ? 4u : 0u);
      const int child = nodes_[static_cast<std::size_t>(idx)].children[o];
      if (child < 0) return false;
      idx = child;
      ++refit_count_[static_cast<std::size_t>(idx)];
    }
    refit_point_leaf_[i] = idx;
  }
  // eroof: hot-end

  // Pass 2: verify every split / no-split decision a fresh build would make
  // matches the existing structure. Empty nodes are never materialized, so
  // zero occupancy anywhere refuses; in Q mode a leaf must stay within the
  // occupancy bound (unless pinned at max_level) and an internal node must
  // still exceed it.
  // eroof: hot-begin (refit pass 2: occupancy-bound validation)
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const std::uint32_t c = refit_count_[i];
    if (c == 0) return false;
    if (params_.uniform_depth >= 0) continue;  // level-driven: non-empty is all
    if (n.leaf) {
      if (c > params_.max_points_per_box && n.level() < params_.max_level)
        return false;
    } else {
      if (c <= params_.max_points_per_box) return false;
    }
  }
  // eroof: hot-end

  // Pass 3: commit. New leaf ranges are the prefix sums of the new counts in
  // structural DFS order; scattering caller-order points into those ranges
  // reproduces, bitwise, the stable MSD octant radix order a fresh build
  // produces (same buckets, same within-bucket caller order).
  // eroof: hot-begin (refit pass 3: prefix offsets + stable scatter +
  // bottom-up range update)
  std::uint32_t acc = 0;
  for (const int leaf : refit_leaf_dfs_) {
    const auto li = static_cast<std::size_t>(leaf);
    refit_cursor_[li] = acc;
    acc += refit_count_[li];
  }
  for (std::size_t i = 0; i < new_points.size(); ++i) {
    const auto leaf = static_cast<std::size_t>(refit_point_leaf_[i]);
    const std::uint32_t pos = refit_cursor_[leaf]++;
    points_[pos] = new_points[i];
    original_index_[pos] = static_cast<std::uint32_t>(i);
  }
  // Children are always appended after their parent, so a reverse index
  // sweep sees every child before its parent.
  for (std::size_t ri = nodes_.size(); ri-- > 0;) {
    Node& n = nodes_[ri];
    if (n.leaf) {
      n.point_end = refit_cursor_[ri];
      n.point_begin = n.point_end - refit_count_[ri];
    } else {
      std::uint32_t begin = std::numeric_limits<std::uint32_t>::max();
      std::uint32_t end = 0;
      for (const int c : n.children) {
        if (c < 0) continue;
        const Node& ch = nodes_[static_cast<std::size_t>(c)];
        begin = std::min(begin, ch.point_begin);
        end = std::max(end, ch.point_end);
      }
      n.point_begin = begin;
      n.point_end = end;
    }
  }
  // eroof: hot-end
  return true;
}

int Octree::find(MortonKey key) const {
  const auto it = key_to_node_.find(key.raw());
  return it == key_to_node_.end() ? -1 : it->second;
}

int Octree::find_deepest_ancestor(MortonKey key) const {
  MortonKey k = key;
  while (true) {
    const int idx = find(k);
    if (idx >= 0) return idx;
    if (k.level() == 0) return -1;
    k = k.parent();
  }
}

}  // namespace eroof::fmm
