#include "fmm/surface.hpp"

#include <map>

#include "util/require.hpp"

namespace eroof::fmm {

std::size_t surface_point_count(int p) {
  EROOF_REQUIRE(p >= 2);
  const std::size_t pp = static_cast<std::size_t>(p);
  return pp * pp * pp - (pp - 2) * (pp - 2) * (pp - 2);
}

const std::vector<std::array<int, 3>>& surface_grid_coords(int p) {
  EROOF_REQUIRE(p >= 2 && p <= 32);
  static std::map<int, std::vector<std::array<int, 3>>> cache;
  auto it = cache.find(p);
  if (it != cache.end()) return it->second;

  std::vector<std::array<int, 3>> coords;
  coords.reserve(surface_point_count(p));
  for (int i = 0; i < p; ++i)
    for (int j = 0; j < p; ++j)
      for (int k = 0; k < p; ++k) {
        const bool on_surface = i == 0 || i == p - 1 || j == 0 ||
                                j == p - 1 || k == 0 || k == p - 1;
        if (on_surface) coords.push_back({i, j, k});
      }
  EROOF_REQUIRE(coords.size() == surface_point_count(p));
  return cache.emplace(p, std::move(coords)).first->second;
}

std::vector<Vec3> surface_points(int p, const Box& box, double radius) {
  EROOF_REQUIRE(radius > 0);
  const auto& coords = surface_grid_coords(p);
  const double r = radius * box.half;
  std::vector<Vec3> pts;
  pts.reserve(coords.size());
  for (const auto& [i, j, k] : coords) {
    const auto t = [p, r](int c) {
      return r * (-1.0 + 2.0 * c / (p - 1.0));
    };
    pts.push_back(box.center + Vec3{t(i), t(j), t(k)});
  }
  return pts;
}

void SurfaceTemplate::materialize(const Vec3& center, double* ox, double* oy,
                                  double* oz) const {
  const std::size_t n = x.size();
  const double cx = center.x;
  const double cy = center.y;
  const double cz = center.z;
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    ox[i] = cx + x[i];
    oy[i] = cy + y[i];
    oz[i] = cz + z[i];
  }
}

SurfaceTemplate surface_template(int p, double half, double radius) {
  EROOF_REQUIRE(radius > 0);
  const auto& coords = surface_grid_coords(p);
  const double r = radius * half;
  SurfaceTemplate t;
  t.x.reserve(coords.size());
  t.y.reserve(coords.size());
  t.z.reserve(coords.size());
  for (const auto& [i, j, k] : coords) {
    const auto off = [p, r](int c) {
      return r * (-1.0 + 2.0 * c / (p - 1.0));
    };
    t.x.push_back(off(i));
    t.y.push_back(off(j));
    t.z.push_back(off(k));
  }
  return t;
}

double surface_spacing(int p, const Box& box, double radius) {
  return 2.0 * radius * box.half / (p - 1.0);
}

}  // namespace eroof::fmm
