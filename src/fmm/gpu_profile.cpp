#include "fmm/gpu_profile.hpp"

#include <cmath>
#include <sstream>
#include <string>

#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::fmm {
namespace {

/// Global-memory front end: tracks analytic byte totals for the whole phase
/// while feeding a (possibly sampled) subset of accesses to the cache
/// hierarchy; the simulated level distribution is then scaled back up.
class GMem {
 public:
  void begin_item(std::size_t item_index, std::size_t sample_rate) {
    sampling_ = (item_index % sample_rate) == 0;
  }

  void read(std::uint64_t addr, std::uint64_t bytes) {
    access(addr, bytes, false);
  }
  void write(std::uint64_t addr, std::uint64_t bytes) {
    access(addr, bytes, true);
  }

  /// Scale factor from sampled to analytic traffic.
  double scale() const {
    const double sampled = sampled_bytes_;
    return sampled > 0 ? analytic_bytes_ / sampled : 1.0;
  }
  double read_bytes() const { return read_bytes_; }
  double write_bytes() const { return write_bytes_; }

  const hw::MemoryHierarchy& hierarchy() const { return hier_; }

  void reset() {
    hier_.reset();
    analytic_bytes_ = sampled_bytes_ = read_bytes_ = write_bytes_ = 0;
    sampling_ = true;
  }

 private:
  void access(std::uint64_t addr, std::uint64_t bytes, bool write) {
    analytic_bytes_ += static_cast<double>(bytes);
    (write ? write_bytes_ : read_bytes_) += static_cast<double>(bytes);
    if (sampling_) {
      sampled_bytes_ += static_cast<double>(bytes);
      hier_.access(addr, bytes, write);
    }
  }

  hw::MemoryHierarchy hier_;
  double analytic_bytes_ = 0;
  double sampled_bytes_ = 0;
  double read_bytes_ = 0;
  double write_bytes_ = 0;
  bool sampling_ = true;
};

/// Virtual address space of the modeled device allocation.
struct AddressMap {
  std::uint64_t points = 0;       // 16 B per point (x, y, z, density; SP)
  std::uint64_t potentials = 0;   // 4 B per point
  std::uint64_t up_equiv = 0;     // ns floats per node
  std::uint64_t down = 0;         // ns floats per node (check/equiv reuse)
  std::uint64_t spectra = 0;      // g complex-SP per node
  std::uint64_t tensors = 0;      // 343 slots of g complex-SP per level
  std::uint64_t matrices = 0;     // per level: solve + translation operators

  static AddressMap layout(std::size_t n_points, std::size_t n_nodes,
                           std::size_t ns, std::size_t g,
                           std::size_t n_levels) {
    AddressMap a;
    std::uint64_t cursor = 0;
    const auto alloc = [&cursor](std::uint64_t bytes) {
      const std::uint64_t base = cursor;
      cursor += (bytes + 255) & ~std::uint64_t{255};
      return base;
    };
    a.points = alloc(n_points * 16);
    a.potentials = alloc(n_points * 4);
    a.up_equiv = alloc(n_nodes * ns * 4);
    a.down = alloc(n_nodes * ns * 4);
    a.spectra = alloc(n_nodes * g * 8);
    a.tensors = alloc(n_levels * 343 * g * 8);
    a.matrices = alloc(n_levels * 32 * ns * ns * 8);
    return a;
  }
};

class Profiler {
 public:
  Profiler(const FmmEvaluator& ev, const GpuProfileConfig& cfg)
      : ev_(ev),
        cfg_(cfg),
        tree_(ev.tree()),
        lists_(ev.lists()),
        ns_(ev.operators().n_surf()),
        g_(ev.operators().grid_size()),
        flops_per_eval_(ev.kernel().flops_per_eval()),
        addr_(AddressMap::layout(tree_.points().size(), tree_.nodes().size(),
                                 ns_, g_,
                                 static_cast<std::size_t>(tree_.max_depth()) +
                                     1)) {}

  // eroof: cold (profiling pass: runs once per plan to model phase
  // workloads; its sample records allocate by design)
  FmmGpuProfile run() {
    trace::ScopedSpan span("profile_gpu_execution", "fmm.profile");
    FmmGpuProfile out;
    out.phases.push_back(traced("UP", &Profiler::phase_up));
    out.phases.push_back(traced("U", &Profiler::phase_u));
    out.phases.push_back(traced("V", &Profiler::phase_v));
    out.phases.push_back(traced("W", &Profiler::phase_w));
    out.phases.push_back(traced("X", &Profiler::phase_x));
    out.phases.push_back(traced("DOWN", &Profiler::phase_down));
    return out;
  }

 private:
  static constexpr int kMinLevel = 2;

  /// Spans one modeled phase and mirrors its derived op counts into the
  /// counter registry ("profile.<phase>.<class>") -- the numbers the
  /// paper's Fig. 4 breakdown is computed from, guarded bit-for-bit by the
  /// deterministic-pipeline regression test.
  GpuPhaseProfile traced(const char* name,
                         GpuPhaseProfile (Profiler::*phase_fn)()) {
    trace::ScopedSpan span(name, "fmm.profile");
    GpuPhaseProfile out = (this->*phase_fn)();
    if (span.active()) {
      const std::string prefix = std::string("profile.") + name + ".";
      for (std::size_t i = 0; i < hw::kNumOpClasses; ++i) {
        const std::string cls(hw::kOpClassNames[i]);
        span.arg(cls, out.workload.ops.n[i]);
        trace::counter_add(prefix + cls, out.workload.ops.n[i]);
      }
    }
    return out;
  }

  struct Acc {
    double sp = 0;
    double dp = 0;
    double ints = 0;
    double sm_read_words = 0;
    double sm_write_words = 0;
  };

  std::uint64_t point_addr(std::uint32_t i) const {
    return addr_.points + std::uint64_t{16} * i;
  }
  std::uint64_t equiv_addr(int node) const {
    return addr_.up_equiv + std::uint64_t{4} * ns_ * static_cast<unsigned>(node);
  }
  std::uint64_t down_addr(int node) const {
    return addr_.down + std::uint64_t{4} * ns_ * static_cast<unsigned>(node);
  }
  std::uint64_t spectrum_addr(int node) const {
    return addr_.spectra + std::uint64_t{8} * g_ * static_cast<unsigned>(node);
  }
  std::uint64_t tensor_addr(int level, std::size_t rel) const {
    return addr_.tensors +
           std::uint64_t{8} * g_ *
               (343u * static_cast<unsigned>(level) + rel);
  }
  std::uint64_t matrix_addr(int level, int which, bool dp) const {
    // which: 0 uc2e, 1 dc2e, 2..9 m2m, 10..17 l2l
    return addr_.matrices +
           (dp ? 8u : 4u) * ns_ * ns_ *
               (32u * static_cast<unsigned>(level) +
                static_cast<unsigned>(which));
  }

  /// Pairwise interaction block: nt targets each interacting with nsrc
  /// staged-in-shared sources.
  void pair_block(Acc& acc, double nt, double nsrc) {
    const double evals = nt * nsrc;
    acc.sp += evals * (flops_per_eval_ + 2.0);
    acc.ints += evals * (flops_per_eval_ + 2.0) * cfg_.int_per_flop;
    // x, y, z, density per source, shrunk by warp broadcast.
    acc.sm_read_words += evals * 4.0 / cfg_.sm_broadcast_factor;
  }

  /// Stage `n` points (16 B each) from global memory into shared memory.
  void stage_points(Acc& acc, std::uint32_t begin, std::uint32_t count) {
    gmem_.read(point_addr(begin), std::uint64_t{16} * count);
    acc.sm_write_words += 4.0 * count;
    acc.ints += 8.0 * count;  // staging loop
  }

  /// Dense matvec of an ns x ns operator whose matrix streams from global
  /// memory (cached across boxes of a level) with the operand in shared.
  void matvec(Acc& acc, std::uint64_t matrix, bool dp) {
    const double n2 = static_cast<double>(ns_) * static_cast<double>(ns_);
    gmem_.read(matrix, static_cast<std::uint64_t>((dp ? 8 : 4) * n2));
    (dp ? acc.dp : acc.sp) += 2.0 * n2;
    acc.ints += 2.0 * n2 * cfg_.int_per_flop * 0.5;  // regular, unrolled
    acc.sm_read_words += n2;
  }

  GpuPhaseProfile phase_up() {
    gmem_.reset();
    Acc acc;
    std::size_t item = 0;
    for (int l = tree_.max_depth(); l >= kMinLevel; --l) {
      for (const int b : tree_.nodes_by_level()[static_cast<std::size_t>(l)]) {
        gmem_.begin_item(item++, 1);
        const Node& node = tree_.node(b);
        if (node.leaf) {
          stage_points(acc, node.point_begin, node.num_points());
          pair_block(acc, static_cast<double>(ns_), node.num_points());
        } else {
          for (int c : node.children) {
            if (c < 0) continue;
            gmem_.read(equiv_addr(c), 4 * ns_);
            matvec(acc,
                   matrix_addr(l, 2 + static_cast<int>(
                                       tree_.node(c).key.octant_in_parent()),
                               false),
                   false);
          }
        }
        matvec(acc, matrix_addr(l, 0, true), true);  // UC2E solve (DP)
        gmem_.write(equiv_addr(b), 4 * ns_);
      }
    }
    return finish("UP", acc, cfg_.util_up, cfg_.mem_util_default);
  }

  GpuPhaseProfile phase_u() {
    gmem_.reset();
    Acc acc;
    std::size_t item = 0;
    for (const int b : tree_.leaves()) {
      gmem_.begin_item(item++, 1);
      const Node& tgt = tree_.node(b);
      const double nt = tgt.num_points();
      // Target coordinates stream once per block; results written once.
      gmem_.read(point_addr(tgt.point_begin), std::uint64_t{16} * tgt.num_points());
      for (const int a : lists_.u[static_cast<std::size_t>(b)]) {
        const Node& src = tree_.node(a);
        stage_points(acc, src.point_begin, src.num_points());
        pair_block(acc, nt, src.num_points());
      }
      gmem_.write(addr_.potentials + std::uint64_t{4} * tgt.point_begin,
                  std::uint64_t{4} * tgt.num_points());
    }
    return finish("U", acc, cfg_.util_u, cfg_.mem_util_default);
  }

  GpuPhaseProfile phase_v() {
    gmem_.reset();
    Acc acc;
    const double gd = static_cast<double>(g_);
    const double fft_flops = 5.0 * gd * std::log2(gd);
    std::size_t item = 0;

    for (int l = kMinLevel; l <= tree_.max_depth(); ++l) {
      const auto& level_nodes =
          tree_.nodes_by_level()[static_cast<std::size_t>(l)];
      // Forward FFTs.
      for (const int b : level_nodes) {
        gmem_.begin_item(item++, 1);
        gmem_.read(equiv_addr(b), 4 * ns_);
        acc.sp += fft_flops;
        acc.ints += fft_flops * cfg_.int_per_flop * 0.5;
        acc.sm_read_words += 4.0 * gd;  // in-shared butterflies
        acc.sm_write_words += 4.0 * gd;
        gmem_.write(spectrum_addr(b), 8 * g_);
      }
      // Hadamard accumulation + inverse FFT per target. The device runs
      // `concurrent_blocks` target boxes at once; their global reads
      // interleave, which is what makes shared source spectra and
      // translation tensors hit in L2. We replay that schedule: targets in
      // resident groups, round-robin over their (direction-sorted) V lists.
      std::vector<int> v_targets;
      for (const int b : level_nodes)
        if (!lists_.v[static_cast<std::size_t>(b)].empty())
          v_targets.push_back(b);

      const auto pair_rel = [&](int b, int s) {
        const auto bc = tree_.node(b).key.coords();
        const auto sc = tree_.node(s).key.coords();
        return Operators::rel_index(
                   static_cast<int>(bc[0]) - static_cast<int>(sc[0]),
                   static_cast<int>(bc[1]) - static_cast<int>(sc[1]),
                   static_cast<int>(bc[2]) - static_cast<int>(sc[2]))
            .value();
      };

      for (std::size_t g0 = 0; g0 < v_targets.size();
           g0 += cfg_.concurrent_blocks) {
        const std::size_t g1 =
            std::min(g0 + cfg_.concurrent_blocks, v_targets.size());
        // Direction-sorted per-target work queues.
        std::vector<std::vector<std::pair<std::size_t, int>>> queues;
        std::size_t max_len = 0;
        for (std::size_t t = g0; t < g1; ++t) {
          const int b = v_targets[t];
          std::vector<std::pair<std::size_t, int>> queue;
          for (const int s : lists_.v[static_cast<std::size_t>(b)])
            queue.emplace_back(pair_rel(b, s), s);
          std::sort(queue.begin(), queue.end());
          max_len = std::max(max_len, queue.size());
          queues.push_back(std::move(queue));
        }
        for (std::size_t k = 0; k < max_len; ++k) {
          for (auto& queue : queues) {
            if (k >= queue.size()) continue;
            gmem_.begin_item(item++, cfg_.v_sample_rate);
            gmem_.read(spectrum_addr(queue[k].second), 8 * g_);
            gmem_.read(tensor_addr(l, queue[k].first), 8 * g_);
            acc.sp += 8.0 * gd;  // complex multiply-accumulate per element
            acc.ints += 8.0 * gd * cfg_.int_per_flop * 0.5;
            acc.sm_read_words += 2.0 * gd;
            acc.sm_write_words += 2.0 * gd;
          }
        }
      }
      for (const int b : v_targets) {
        gmem_.begin_item(item++, 1);
        acc.sp += fft_flops;
        acc.ints += fft_flops * cfg_.int_per_flop * 0.5;
        acc.sm_read_words += 4.0 * gd;
        acc.sm_write_words += 4.0 * gd;
        gmem_.write(down_addr(b), 4 * ns_);
      }
    }
    return finish("V", acc, cfg_.util_v, cfg_.mem_util_v);
  }

  GpuPhaseProfile phase_w() {
    gmem_.reset();
    Acc acc;
    std::size_t item = 0;
    for (const int b : tree_.leaves()) {
      const auto& wlist = lists_.w[static_cast<std::size_t>(b)];
      if (wlist.empty()) continue;
      gmem_.begin_item(item++, 1);
      const Node& tgt = tree_.node(b);
      gmem_.read(point_addr(tgt.point_begin), std::uint64_t{16} * tgt.num_points());
      for (const int a : wlist) {
        gmem_.read(equiv_addr(a), 4 * ns_);
        acc.sm_write_words += static_cast<double>(ns_);
        // Surface geometry is generated in registers (3 flops per node).
        acc.sp += 3.0 * static_cast<double>(ns_);
        pair_block(acc, tgt.num_points(), static_cast<double>(ns_));
      }
      gmem_.write(addr_.potentials + std::uint64_t{4} * tgt.point_begin,
                  std::uint64_t{4} * tgt.num_points());
    }
    return finish("W", acc, cfg_.util_w, cfg_.mem_util_default);
  }

  GpuPhaseProfile phase_x() {
    gmem_.reset();
    Acc acc;
    std::size_t item = 0;
    for (std::size_t b = 0; b < tree_.nodes().size(); ++b) {
      const auto& xlist = lists_.x[b];
      if (xlist.empty()) continue;
      gmem_.begin_item(item++, 1);
      for (const int a : xlist) {
        const Node& src = tree_.node(a);
        stage_points(acc, src.point_begin, src.num_points());
        acc.sp += 3.0 * static_cast<double>(ns_);
        pair_block(acc, static_cast<double>(ns_), src.num_points());
      }
      gmem_.write(down_addr(static_cast<int>(b)), 4 * ns_);
    }
    return finish("X", acc, cfg_.util_x, cfg_.mem_util_default);
  }

  GpuPhaseProfile phase_down() {
    gmem_.reset();
    Acc acc;
    std::size_t item = 0;
    for (int l = kMinLevel; l <= tree_.max_depth(); ++l) {
      for (const int b : tree_.nodes_by_level()[static_cast<std::size_t>(l)]) {
        gmem_.begin_item(item++, 1);
        const Node& node = tree_.node(b);
        gmem_.read(down_addr(b), 4 * ns_);
        matvec(acc, matrix_addr(l, 1, true), true);  // DC2E solve (DP)
        for (int c : node.children) {
          if (c < 0) continue;
          matvec(acc,
                 matrix_addr(l, 10 + static_cast<int>(
                                       tree_.node(c).key.octant_in_parent()),
                             false),
                 false);
          gmem_.write(down_addr(c), 4 * ns_);
        }
        if (node.leaf) {
          gmem_.read(point_addr(node.point_begin), std::uint64_t{16} * node.num_points());
          pair_block(acc, node.num_points(), static_cast<double>(ns_));
          gmem_.write(addr_.potentials + std::uint64_t{4} * node.point_begin,
                      std::uint64_t{4} * node.num_points());
        }
      }
    }
    return finish("DOWN", acc, cfg_.util_down, cfg_.mem_util_default);
  }

  GpuPhaseProfile finish(const std::string& phase, const Acc& acc,
                         double util_c, double util_m) {
    GpuPhaseProfile out;
    out.name = phase;
    hw::CounterSet& c = out.counters;

    // Instruction metrics. The FMA/add/mul split reflects the kernels'
    // fused inner loops (dominantly FMA).
    c.add("flops_sp_fma", 0.70 * acc.sp);
    c.add("flops_sp_add", 0.15 * acc.sp);
    c.add("flops_sp_mul", 0.15 * acc.sp);
    c.add("flops_dp_fma", 0.70 * acc.dp);
    c.add("flops_dp_add", 0.15 * acc.dp);
    c.add("flops_dp_mul", 0.15 * acc.dp);
    c.add("inst_integer", acc.ints);

    // Shared-memory transactions (32 B each).
    c.add("l1_shared_load_transactions",
          acc.sm_read_words * hw::kWordBytes / hw::kSharedTransactionBytes);
    c.add("l1_shared_store_transactions",
          acc.sm_write_words * hw::kWordBytes / hw::kSharedTransactionBytes);

    // Global-memory system events, scaled from the sampled cache simulation
    // back to the phase's analytic byte totals.
    const double scale = gmem_.scale();
    const auto& h = gmem_.hierarchy();
    c.add("gld_request", gmem_.read_bytes() / 128.0);
    c.add("gst_request", gmem_.write_bytes() / 128.0);
    // Expressed in line-sized units so derive_op_counts' words-per-line
    // conversion recovers the exact words the L1 served.
    c.add("l1_global_load_hit", scale * h.traffic().l1_words *
                                    hw::kWordBytes / hw::kL1LineBytes);
    c.add("l2_subp0_total_read_sector_queries",
          scale * static_cast<double>(h.l2_read_sector_queries()));
    c.add("l2_subp0_total_write_sector_queries",
          scale * static_cast<double>(h.l2_write_sector_queries()));
    const double l2_hit_sectors =
        scale * (static_cast<double>(h.l2_read_sector_queries() +
                                     h.l2_write_sector_queries()) -
                 static_cast<double>(h.dram_read_sectors() +
                                     h.dram_write_sectors()));
    for (const char* name :
         {"l2_subp0_read_l1_hit_sectors", "l2_subp1_read_l1_hit_sectors",
          "l2_subp2_read_l1_hit_sectors", "l2_subp3_read_l1_hit_sectors"})
      c.add(name, l2_hit_sectors / 4.0);
    c.add("fb_subp0_read_sectors",
          scale * static_cast<double>(h.dram_read_sectors()) / 2.0);
    c.add("fb_subp1_read_sectors",
          scale * static_cast<double>(h.dram_read_sectors()) / 2.0);
    c.add("fb_subp0_write_sectors",
          scale * static_cast<double>(h.dram_write_sectors()) / 2.0);
    c.add("fb_subp1_write_sectors",
          scale * static_cast<double>(h.dram_write_sectors()) / 2.0);

    std::ostringstream name;
    name << "fmm_N" << tree_.points().size() << "_Q"
         << tree_.params().max_points_per_box << "_" << phase;
    out.workload.name = name.str();
    out.workload.ops = hw::derive_op_counts(c);
    out.workload.compute_utilization = util_c;
    out.workload.memory_utilization = util_m;
    return out;
  }

  const FmmEvaluator& ev_;
  GpuProfileConfig cfg_;
  const Octree& tree_;
  const InteractionLists& lists_;
  std::size_t ns_;
  std::size_t g_;
  double flops_per_eval_;
  AddressMap addr_;
  GMem gmem_;
};

}  // namespace

hw::Workload FmmGpuProfile::total(const std::string& name) const {
  hw::Workload w;
  w.name = name;
  double cu = 0;
  double mu = 0;
  double weight = 0;
  for (const auto& p : phases) {
    w.ops += p.workload.ops;
    const double wt = p.workload.ops.compute_ops() + 1.0;
    cu += p.workload.compute_utilization * wt;
    mu += p.workload.memory_utilization * wt;
    weight += wt;
  }
  w.compute_utilization = weight > 0 ? cu / weight : 1.0;
  w.memory_utilization = weight > 0 ? mu / weight : 1.0;
  return w;
}

hw::CounterSet FmmGpuProfile::total_counters() const {
  hw::CounterSet c;
  for (const auto& p : phases) c += p.counters;
  return c;
}

FmmGpuProfile profile_gpu_execution(const FmmEvaluator& ev,
                                    const GpuProfileConfig& cfg) {
  EROOF_REQUIRE(cfg.int_per_flop >= 0);
  EROOF_REQUIRE(cfg.v_sample_rate >= 1);
  return Profiler(ev, cfg).run();
}

}  // namespace eroof::fmm
