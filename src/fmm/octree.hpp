// Adaptive, 2:1-balanced octree over a point set (paper Section III-A).
//
// Construction: start from one cube containing all points and split any box
// holding more than Q points (Q = `max_points_per_box`, the paper's workload
// knob). Only non-empty children are materialized. A 2:1 balance refinement
// then guarantees adjacent leaves differ by at most one level, which keeps
// the U/V/W/X interaction lists well-formed on adaptive distributions.
//
// Octant convention (pinned by tests): a point is assigned to the upper
// half of an axis when its coordinate is >= the box center, so each box
// owns the half-open cell [lo, center) x [center, hi] per axis -- a point
// exactly on a split plane always goes to the higher octant. `Box::contains`
// is closed, so points exactly on the domain boundary are accepted and land
// in the highest-octant leaf along that axis.
//
// Trees built over a fixed `Params.domain` additionally support
// `try_refit`: re-binning a slightly-moved copy of the same point set into
// the existing structure without touching keys, boxes, or parent/child
// links, which is what lets an `FmmSession` keep interaction lists, node
// slots, and operator plans alive across time steps.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "fmm/geometry.hpp"
#include "fmm/morton.hpp"

namespace eroof::fmm {

/// One octree node. Nodes are stored in a flat array; indices are stable.
struct Node {
  MortonKey key;
  Box box;
  int parent = -1;
  std::array<int, 8> children{-1, -1, -1, -1, -1, -1, -1, -1};
  bool leaf = true;
  /// Range of this node's points in the tree's permuted point order.
  std::uint32_t point_begin = 0;
  std::uint32_t point_end = 0;

  std::uint32_t num_points() const { return point_end - point_begin; }
  int level() const { return key.level(); }
};

/// The tree. Owns a permuted copy of the input points; `original_index`
/// maps a permuted position back to the caller's ordering.
class Octree {
 public:
  struct Params {
    std::uint32_t max_points_per_box = 64;  ///< the paper's Q
    int max_level = 12;
    bool balance_2to1 = true;
    /// >= 0: build a complete uniform tree of exactly this depth (every
    /// non-empty box splits until then; Q is ignored for the splitting
    /// decision). The paper's GPU implementation [9] uses uniform trees --
    /// all leaves at one level, W/X lists empty -- which is what its phase
    /// profile reflects. Use uniform_depth_for() to derive the depth from
    /// (N, Q).
    int uniform_depth = -1;
    /// half > 0: use this cube as the root box instead of the bounding cube
    /// of the points (which must all lie inside it). A fixed domain makes
    /// the tree geometry -- and therefore the per-level operators -- a
    /// function of the protocol rather than of one request's point set,
    /// which is what lets the serving plan cache share operators across
    /// requests.
    Box domain{{0.0, 0.0, 0.0}, 0.0};
  };

  /// Smallest depth d with N / 8^d <= Q (capped at max_level 12).
  static int uniform_depth_for(std::size_t n_points, std::uint32_t q);

  Octree(std::span<const Vec3> points, Params params);

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  int root() const { return 0; }

  /// Points in tree order (permuted from the constructor input).
  std::span<const Vec3> points() const { return points_; }

  /// original_index()[i] is the constructor-input position of points()[i].
  std::span<const std::uint32_t> original_index() const {
    return original_index_;
  }

  /// Indices of all leaves.
  const std::vector<int>& leaves() const { return leaves_; }

  /// Node indices grouped by level; levels_by()[l] lists level-l nodes.
  const std::vector<std::vector<int>>& nodes_by_level() const {
    return by_level_;
  }

  int max_depth() const { return static_cast<int>(by_level_.size()) - 1; }

  /// Looks up a node by Morton key; -1 if absent.
  int find(MortonKey key) const;

  /// Deepest existing node whose box contains `key`'s box (an ancestor of
  /// `key` or the node itself); -1 only if the tree is empty.
  int find_deepest_ancestor(MortonKey key) const;

  const Box& domain() const { return domain_; }
  const Params& params() const { return params_; }

  /// Re-bins a moved copy of the same point set into the existing tree
  /// structure, in place. Succeeds (returns true) only when the structure a
  /// fresh build over `new_points` would produce is *identical* to the
  /// current one; in that case the permuted point order, `original_index`,
  /// and every node's point range afterwards are bitwise what that fresh
  /// build would have computed, while node keys, boxes, parent/child links,
  /// `leaves()`, `nodes_by_level()`, and therefore the structure signature
  /// are untouched. On false the tree is unchanged and the caller must
  /// rebuild.
  ///
  /// Requirements: the tree was built over a fixed `Params.domain`
  /// (otherwise a fresh build would re-derive a different bounding cube and
  /// refit always refuses), `new_points.size()` equals `points().size()`,
  /// and every new point lies inside the domain. Trees that needed
  /// 2:1 balance splits refuse refit: their structure depends on the
  /// occupancy pattern in a way this check does not track.
  ///
  /// Steady-state calls are allocation-free: scratch is sized on first use
  /// and reused.
  bool try_refit(std::span<const Vec3> new_points);

  /// Number of splits forced by 2:1 balance enforcement during build.
  int balance_splits() const { return balance_splits_; }

 private:
  void build_recursive(int node_idx);
  void split(int node_idx);
  void enforce_balance();
  void finalize();
  void ensure_refit_scratch();

  Params params_;
  Box domain_;
  std::vector<Node> nodes_;
  std::vector<Vec3> points_;
  std::vector<std::uint32_t> original_index_;
  std::vector<int> leaves_;
  std::vector<std::vector<int>> by_level_;
  std::unordered_map<std::uint64_t, int> key_to_node_;
  int balance_splits_ = 0;

  // try_refit scratch, sized once on first refit and reused thereafter so
  // steady-state stepping stays allocation-free.
  std::vector<std::uint32_t> refit_count_;     ///< per-node occupancy tally
  std::vector<std::uint32_t> refit_cursor_;    ///< per-node scatter cursor
  std::vector<int> refit_point_leaf_;          ///< leaf index per input point
  std::vector<int> refit_leaf_dfs_;            ///< leaves in point-range order
};

}  // namespace eroof::fmm
