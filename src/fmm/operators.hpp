// Precomputed per-level translation operators of the KIFMM.
//
// Per level (boxes of one level are congruent, so one set serves them all):
//   UC2E   solve upward equivalent density from upward check potentials
//          (Tikhonov-regularized pseudo-inverse; the system is severely
//          ill-conditioned by design -- that is where KIFMM's accuracy
//          control lives).
//   M2M_o  child-octant-o upward equivalent surface -> parent upward check.
//   DC2E   downward analogue of UC2E.
//   L2L_o  parent downward equivalent surface -> child-o downward check.
//   M2L    one kernel tensor per V-list relative offset (316 of them),
//          stored as its 3-D FFT: because equivalent/check surface nodes sit
//          on regular grids with equal spacing, the M2L translation is a
//          grid convolution -- evaluated as a Hadamard product in Fourier
//          space (the paper's "FFTs and vector additions" V-list phase).
//
// The M2L spectra are stored in split real/imag planes (M2lBank) so the
// V-phase Hadamard accumulation vectorizes; for homogeneous kernels
// (K(ax, ay) = a^deg K(x, y)) one bank built at the reference level is
// shared by every level through a per-level scalar, and the dense operators
// are rescaled instead of rebuilt -- exact, because all surface geometry
// scales linearly with the box size and the Tikhonov filter is relative to
// the largest singular value.
//
// Requires a translation-invariant kernel for the FFT path (all bundled
// kernels are); V-list translations fall back to dense application per pair
// when FFT is disabled.
#pragma once

#include <complex>
#include <memory>
#include <optional>
#include <vector>

#include "fft/fft3.hpp"
#include "fmm/kernel.hpp"
#include "fmm/surface.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace eroof::fmm {

/// Tunables of the method.
struct FmmConfig {
  int p = 6;                  ///< surface nodes per cube edge (accuracy knob)
  double tikhonov_eps = 1e-10;  ///< regularization of the equiv solves
  bool use_fft_m2l = true;
};

/// FFT'd M2L kernel tensors for all 343 relative offsets of one level, in
/// split real/imag layout: plane `rel` occupies [rel*g, (rel+1)*g) of each
/// array (g = grid_size()). Near-field offsets that never occur in V lists
/// are zero-filled. Shared across levels for homogeneous kernels.
struct M2lBank {
  std::vector<double> re;
  std::vector<double> im;
};

/// Operators for one tree level.
struct LevelOperators {
  la::Matrix uc2e;                 ///< n_surf x n_surf
  la::Matrix dc2e;                 ///< n_surf x n_surf
  std::array<la::Matrix, 8> m2m;   ///< K(parent up-check, child-o up-equiv)
  std::array<la::Matrix, 8> l2l;   ///< K(child-o down-check, parent down-equiv)
  /// M2L spectra; apply as `m2l_scale * (bank plane rel)`. Null when the FFT
  /// path is disabled.
  std::shared_ptr<const M2lBank> m2l;
  double m2l_scale = 1.0;
  /// Surface-point offsets from a box center at this level's box size.
  SurfaceTemplate surf_inner;      ///< kRadiusInner (equiv-up / check-down)
  SurfaceTemplate surf_outer;      ///< kRadiusOuter (check-up / equiv-down)
};

/// Builder + owner of all per-level operators and the FFT grid layout.
class Operators {
 public:
  /// `max_level`: deepest level that needs operators; `root_half`: domain
  /// half-width (level-l boxes have half-width root_half / 2^l).
  Operators(const Kernel& kernel, double root_half, int max_level,
            FmmConfig cfg);

  const FmmConfig& config() const { return cfg_; }
  int p() const { return cfg_.p; }

  /// FFT grid edge length m = 2p.
  std::size_t grid_m() const { return static_cast<std::size_t>(2 * cfg_.p); }
  std::size_t grid_size() const { return grid_m() * grid_m() * grid_m(); }
  const fft::Plan3& plan() const { return plan_; }

  std::size_t n_surf() const { return surface_point_count(cfg_.p); }

  /// Linear FFT-grid index of surface node `s` (canonical surface order).
  const std::vector<std::size_t>& surf_to_grid() const {
    return surf_to_grid_;
  }

  const LevelOperators& level(int l) const;

  /// Index of relative offset (dx,dy,dz) in box-diameter units, each in
  /// [-3, 3]; returns nullopt for the near field (max |d| <= 1), which V
  /// lists never contain.
  static std::optional<std::size_t> rel_index(int dx, int dy, int dz);

  /// Materializes the (scaled) M2L spectrum of one relative offset as an
  /// interleaved complex grid -- reference/test accessor, not a hot path.
  /// Empty if `rel` is a near-field slot or the FFT path is disabled.
  std::vector<fft::cplx> m2l_spectrum(int level, std::size_t rel) const;

  /// Embeds an equivalent density (surface order) into a zeroed m^3 grid.
  void embed(std::span<const double> surf_values,
             std::span<fft::cplx> grid) const;

  /// Extracts check-surface values from an m^3 grid (real parts).
  void extract(std::span<const fft::cplx> grid,
               std::span<double> surf_values) const;

 private:
  void build_level(const Kernel& kernel, int l, double root_half);
  void rescale_level(int l, int ref, double degree);
  std::shared_ptr<M2lBank> build_m2l_bank(const Kernel& kernel, double h);

  FmmConfig cfg_;
  fft::Plan3 plan_;
  std::vector<std::size_t> surf_to_grid_;
  std::vector<LevelOperators> levels_;
};

}  // namespace eroof::fmm
