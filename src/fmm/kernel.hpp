// Interaction kernels K(x, y) (paper eq. 10).
//
// Kernel independence is the point of the KIFMM: the method only ever
// *evaluates* K, so any non-oscillatory kernel with smooth far field plugs
// in through this interface. Laplace single-layer (the paper's example,
// modeling electrostatics/gravity) is the default; additional kernels
// demonstrate the independence and exercise the operators differently.
#pragma once

#include <memory>
#include <string>

#include "fmm/geometry.hpp"
#include "linalg/matrix.hpp"

namespace eroof::fmm {

/// SoA view of a block of points, the unit of batched kernel evaluation.
/// Non-owning; the three coordinate arrays have `n` entries each.
struct PointBlock {
  const double* x = nullptr;
  const double* y = nullptr;
  const double* z = nullptr;
  std::size_t n = 0;
};

/// Abstract interaction kernel.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// K(x, y); must return 0 for x == y (self-interactions are excluded by
  /// convention, matching the direct-sum reference).
  virtual double eval(const Vec3& x, const Vec3& y) const = 0;

  /// Batched accumulation out[i] += sum_j K(t_i, s_j) * density[j] over SoA
  /// coordinate arrays. One virtual call covers a whole target-block x
  /// source-block tile, so the FMM inner loops pay no per-pair dispatch.
  ///
  /// Contract: per-pair kernel values follow eval() exactly (including the
  /// x == y -> 0 convention where the kernel has it), and for each target
  /// the sources are accumulated in index order -- results are independent
  /// of how callers partition targets across threads. The base-class
  /// fallback loops over eval(); the bundled kernels override it with flat
  /// `#pragma omp simd` implementations.
  virtual void eval_batch(const PointBlock& targets, const PointBlock& sources,
                          const double* density, double* out) const;

  /// Dense kernel matrix K[i][j] = K(targets[i], sources[j]).
  la::Matrix matrix(std::span<const Vec3> targets,
                    std::span<const Vec3> sources) const;

  /// Single-precision flop cost of one evaluation on the modeled GPU
  /// (used by the instruction-count instrumentation).
  virtual double flops_per_eval() const = 0;

  virtual std::string name() const = 0;

  /// True if K(ax, ay) = a^degree K(x, y); enables scale-invariance tests.
  virtual bool homogeneous(double* degree) const {
    if (degree) *degree = 0;
    return false;
  }
};

/// Laplace single-layer kernel K(x,y) = 1 / (4 pi |x-y|).
class LaplaceKernel final : public Kernel {
 public:
  double eval(const Vec3& x, const Vec3& y) const override;
  void eval_batch(const PointBlock& targets, const PointBlock& sources,
                  const double* density, double* out) const override;
  double flops_per_eval() const override { return 12; }
  std::string name() const override { return "laplace"; }
  bool homogeneous(double* degree) const override {
    if (degree) *degree = -1;
    return true;
  }
};

/// Modified/screened Laplace (Yukawa) kernel exp(-lambda r) / (4 pi r).
class YukawaKernel final : public Kernel {
 public:
  explicit YukawaKernel(double lambda) : lambda_(lambda) {}
  double eval(const Vec3& x, const Vec3& y) const override;
  void eval_batch(const PointBlock& targets, const PointBlock& sources,
                  const double* density, double* out) const override;
  double flops_per_eval() const override { return 20; }
  std::string name() const override { return "yukawa"; }

 private:
  double lambda_;
};

/// Gaussian kernel exp(-|x-y|^2 / (2 sigma^2)) -- smooth and non-singular;
/// a stress test for the equivalent-density solves.
class GaussianKernel final : public Kernel {
 public:
  explicit GaussianKernel(double sigma) : sigma_(sigma) {}
  double eval(const Vec3& x, const Vec3& y) const override;
  void eval_batch(const PointBlock& targets, const PointBlock& sources,
                  const double* density, double* out) const override;
  double flops_per_eval() const override { return 14; }
  std::string name() const override { return "gaussian"; }

 private:
  double sigma_;
};

}  // namespace eroof::fmm
