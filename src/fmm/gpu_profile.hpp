// GPU execution profile of the FMM (the nvprof substitute).
//
// The paper profiles its CUDA FMM with nvprof counters (Table III) and feeds
// the derived operation counts into the energy model. Our FMM runs on the
// host, so this module *models* the CUDA execution instead: it walks the
// same tree, lists and operators as the evaluator and emits, per phase,
//
//   * instruction counts (analytic, from the loop structure: one thread
//     block per target box, sources staged through shared memory -- the
//     standard GPU mapping of [9]),
//   * memory-system counter events, by replaying the blocks' global-memory
//     access streams through the cache-hierarchy simulator
//     (hw::MemoryHierarchy) over a virtual address space, and
//   * the phase's utilization factors for the SoC timing model; the paper
//     measures the FMM at < 1/4 of peak IPC (Section IV-C), with the U-list
//     kernel's achievable peak itself about 1/4 of machine peak.
//
// Direct interactions run in single precision (the Tegra K1's DP throughput
// is 1/24 of SP; the GPU code keeps kernels in SP), while the ill-
// conditioned check-to-equivalent solves run in double precision -- that is
// where the profile's DP slice comes from.
//
// The profile is cross-checked against the evaluator's own work tallies
// (FmmStats) in the test suite.
#pragma once

#include <string>
#include <vector>

#include "fmm/evaluator.hpp"
#include "hw/cachesim.hpp"
#include "hw/counters.hpp"
#include "hw/workload.hpp"

namespace eroof::fmm {

/// Knobs of the modeled CUDA implementation.
struct GpuProfileConfig {
  /// Integer (address/loop/predicate) instructions per SP flop in the
  /// pairwise inner loops. Real GPU kernels spend most of their
  /// instruction stream here (paper Fig. 4: ~60% integer).
  double int_per_flop = 1.5;

  /// Compute utilization per phase: fraction of peak issue rate achieved.
  double util_up = 0.15;
  double util_u = 0.22;   ///< the paper's ~1/4-of-peak U-list kernel
  double util_v = 0.30;
  double util_w = 0.15;
  double util_x = 0.15;
  double util_down = 0.15;

  /// Achieved fraction of peak DRAM bandwidth in the streaming (V) phase
  /// and elsewhere.
  double mem_util_v = 0.50;
  double mem_util_default = 0.45;

  /// Shared-memory broadcast efficiency of the pairwise loops: warps read
  /// a staged source value once per warp (hardware broadcast), not once per
  /// thread, so SM transactions per interaction shrink by roughly this
  /// factor relative to the naive per-thread count.
  double sm_broadcast_factor = 8.0;

  /// Feed every k-th V-list pair through the cache simulator and scale.
  /// 1 (default) simulates every access -- sampling perturbs the apparent
  /// reuse distance, so only raise this for quick interactive runs.
  std::size_t v_sample_rate = 1;

  /// Thread blocks resident per SMX. The V phase's global reads interleave
  /// across this many concurrently executing target boxes; Morton-adjacent
  /// targets share most of their V-list sources, so the interleaved stream
  /// is what gives the L2 its hit traffic (the paper's Fig. 6 shows L2
  /// serving 30-40% of data-access energy).
  std::size_t concurrent_blocks = 16;
};

/// One phase's modeled execution.
struct GpuPhaseProfile {
  std::string name;              ///< UP, U, V, W, X, DOWN
  hw::CounterSet counters;       ///< Table III events/metrics
  hw::Workload workload;         ///< counts + utilizations for hw::Soc
};

/// The whole run.
struct FmmGpuProfile {
  std::vector<GpuPhaseProfile> phases;

  /// Sum of all phases as a single workload named `name`.
  hw::Workload total(const std::string& name) const;

  /// Sum of all phases' counters.
  hw::CounterSet total_counters() const;
};

/// Models the CUDA execution of `ev`'s six phases.
FmmGpuProfile profile_gpu_execution(const FmmEvaluator& ev,
                                    const GpuProfileConfig& cfg = {});

}  // namespace eroof::fmm
