// Point-cloud generators for experiments and tests.
#pragma once

#include <vector>

#include "fmm/geometry.hpp"
#include "util/rng.hpp"

namespace eroof::fmm {

/// N points uniform in the unit cube [0,1]^3.
std::vector<Vec3> uniform_cube(std::size_t n, util::Rng& rng);

/// N points on the unit sphere surface centered at (0.5,0.5,0.5) -- a 2-D
/// manifold embedded in 3-D, producing a strongly adaptive octree.
std::vector<Vec3> sphere_surface(std::size_t n, util::Rng& rng);

/// N points in `k` Gaussian clusters with spread `sigma` -- exercises the
/// W/X lists (leaves of very different levels touch).
std::vector<Vec3> gaussian_clusters(std::size_t n, std::size_t k,
                                    double sigma, util::Rng& rng);

/// Random densities uniform in [-1, 1].
std::vector<double> random_densities(std::size_t n, util::Rng& rng);

}  // namespace eroof::fmm
