// Direct O(N^2) summation -- the accuracy reference for the FMM and the
// brute-force baseline the paper's eq. 10 starts from.
#pragma once

#include <span>
#include <vector>

#include "fmm/kernel.hpp"

namespace eroof::fmm {

/// phi[i] = sum_j K(targets[i], sources[j]) densities[j].
/// Self-interactions vanish because K(x, x) == 0 by kernel convention.
std::vector<double> direct_sum(const Kernel& kernel,
                               std::span<const Vec3> targets,
                               std::span<const Vec3> sources,
                               std::span<const double> densities);

/// Relative L2 error ||a - b|| / ||b||.
double rel_l2_error(std::span<const double> a, std::span<const double> b);

}  // namespace eroof::fmm
