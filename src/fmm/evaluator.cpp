#include "fmm/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::fmm {
namespace {

constexpr int kMinLevel = 2;  // expansions exist from this level down

int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

int thread_index() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Annotates a finished phase span with the phase's tallies and mirrors them
/// into the session's counter registry as "fmm.<phase>.<tally>" so
/// regression tests can compare runs bit-for-bit.
void record_phase(trace::ScopedSpan& span, const char* phase,
                  const FmmStats::Phase& p) {
  if (!span.active()) return;
  span.arg("kernel_evals", p.kernel_evals);
  span.arg("pair_count", p.pair_count);
  span.arg("ffts", p.ffts);
  span.arg("hadamard_cmuls", p.hadamard_cmuls);
  span.arg("solve_matvecs", p.solve_matvecs);
  const std::string prefix = std::string("fmm.") + phase + ".";
  trace::counter_add(prefix + "kernel_evals", p.kernel_evals);
  trace::counter_add(prefix + "pair_count", p.pair_count);
  trace::counter_add(prefix + "ffts", p.ffts);
  trace::counter_add(prefix + "hadamard_cmuls", p.hadamard_cmuls);
  trace::counter_add(prefix + "solve_matvecs", p.solve_matvecs);
}

}  // namespace

FmmEvaluator::FmmEvaluator(const Kernel& kernel, std::span<const Vec3> points,
                           Octree::Params tree_params, FmmConfig cfg)
    : kernel_(kernel),
      tree_(points, tree_params),
      lists_(build_lists(tree_)),
      ops_(kernel, tree_.domain().half, tree_.max_depth(), cfg) {
  const auto pts = tree_.points();
  px_.resize(pts.size());
  py_.resize(pts.size());
  pz_.resize(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    px_[i] = pts[i].x;
    py_[i] = pts[i].y;
    pz_[i] = pts[i].z;
  }

  const auto& nodes = tree_.nodes();
  slot_.assign(nodes.size(), -1);
  for (std::size_t b = 0; b < nodes.size(); ++b)
    if (nodes[b].level() >= kMinLevel)
      slot_[b] = static_cast<int>(n_slots_++);

  const std::size_t ns = ops_.n_surf();
  up_equiv_.resize(n_slots_ * ns);
  down_check_.resize(n_slots_ * ns);
  down_equiv_.resize(n_slots_ * ns);

  // X targets: nodes with work to do. A node below kMinLevel can never be
  // an X target (its W-dual would be adjacent to everything), so every
  // target has an arena slot; the slot check is belt and braces.
  for (std::size_t b = 0; b < nodes.size(); ++b)
    if (!lists_.x[b].empty() && slot_[b] >= 0)
      x_targets_.push_back(static_cast<int>(b));

  // V-phase spectra sized for the widest level that runs it.
  std::size_t widest = 0;
  const auto& by_level = tree_.nodes_by_level();
  for (int l = kMinLevel; l <= tree_.max_depth(); ++l)
    widest = std::max(widest, by_level[static_cast<std::size_t>(l)].size());
  pos_in_level_.assign(nodes.size(), 0);
  if (ops_.config().use_fft_m2l) {
    spec_re_.resize(widest * ops_.grid_size());
    spec_im_.resize(widest * ops_.grid_size());
  }
}

void FmmEvaluator::ensure_workspaces() {
  const auto want = static_cast<std::size_t>(max_threads());
  if (workspaces_.size() >= want && !workspaces_.empty()) return;
  const std::size_t ns = ops_.n_surf();
  const std::size_t g = ops_.config().use_fft_m2l ? ops_.grid_size() : 0;
  workspaces_.resize(std::max<std::size_t>(want, 1));
  for (auto& ws : workspaces_) {
    ws.check.resize(ns);
    ws.vals.resize(ns);
    ws.tx.resize(ns);
    ws.ty.resize(ns);
    ws.tz.resize(ns);
    ws.sx.resize(ns);
    ws.sy.resize(ns);
    ws.sz.resize(ns);
    ws.grid.resize(g);
    ws.acc_re.resize(g);
    ws.acc_im.resize(g);
  }
}

FmmEvaluator::Workspace& FmmEvaluator::workspace() {
  return workspaces_[static_cast<std::size_t>(thread_index())];
}

std::vector<double> FmmEvaluator::evaluate(std::span<const double> densities) {
  EROOF_REQUIRE(densities.size() == tree_.points().size());
  stats_ = FmmStats{};

  // Setup: permute densities into tree order, zero the arenas, and make
  // sure per-thread scratch exists. Everything past this point -- the six
  // phase loops -- performs no heap allocation.
  const auto orig = tree_.original_index();
  std::vector<double> dens(densities.size());
  for (std::size_t i = 0; i < dens.size(); ++i)
    dens[i] = densities[orig[i]];

  std::fill(up_equiv_.begin(), up_equiv_.end(), 0.0);
  std::fill(down_check_.begin(), down_check_.end(), 0.0);
  std::fill(down_equiv_.begin(), down_equiv_.end(), 0.0);
  ensure_workspaces();

  trace::ScopedSpan eval_span("evaluate", "fmm");
  if (eval_span.active()) {
    eval_span.arg("n_points", static_cast<double>(dens.size()));
    eval_span.arg("n_nodes", static_cast<double>(tree_.nodes().size()));
  }

  std::vector<double> phi(dens.size(), 0.0);
  {
    trace::ScopedSpan span("UP", "fmm.phase");
    upward_pass(dens);
    record_phase(span, "UP", stats_.up);
  }
  {
    trace::ScopedSpan span("V", "fmm.phase");
    v_phase();
    record_phase(span, "V", stats_.v);
  }
  {
    trace::ScopedSpan span("X", "fmm.phase");
    x_phase(dens);
    record_phase(span, "X", stats_.x);
  }
  {
    // DOWN covers the DC2E/L2L sweep and the L2P leaf outputs: both tally
    // into stats_.down, matching the paper's phase taxonomy.
    trace::ScopedSpan span("DOWN", "fmm.phase");
    downward_pass();
    l2p_pass(phi);
    record_phase(span, "DOWN", stats_.down);
  }
  {
    trace::ScopedSpan span("U", "fmm.phase");
    u_pass(dens, phi);
    record_phase(span, "U", stats_.u);
  }
  {
    trace::ScopedSpan span("W", "fmm.phase");
    w_pass(phi);
    record_phase(span, "W", stats_.w);
  }

  // Un-permute the potentials to the caller's order.
  std::vector<double> out(phi.size());
  for (std::size_t i = 0; i < phi.size(); ++i) out[orig[i]] = phi[i];
  return out;
}

std::vector<double> FmmEvaluator::evaluate_at(
    const Kernel& kernel, std::span<const Vec3> targets,
    std::span<const Vec3> sources, std::span<const double> densities,
    Octree::Params tree_params, FmmConfig cfg) {
  EROOF_REQUIRE(!targets.empty());
  EROOF_REQUIRE(sources.size() == densities.size());

  std::vector<Vec3> all;
  all.reserve(sources.size() + targets.size());
  all.insert(all.end(), sources.begin(), sources.end());
  all.insert(all.end(), targets.begin(), targets.end());
  std::vector<double> dens(all.size(), 0.0);
  std::copy(densities.begin(), densities.end(), dens.begin());

  FmmEvaluator ev(kernel, all, tree_params, cfg);
  const auto phi = ev.evaluate(dens);
  return std::vector<double>(phi.begin() + static_cast<long>(sources.size()),
                             phi.end());
}

void FmmEvaluator::upward_pass(std::span<const double> dens) {
  const std::size_t ns = ops_.n_surf();
  const auto& by_level = tree_.nodes_by_level();

  for (int l = tree_.max_depth(); l >= kMinLevel; --l) {
    const LevelOperators& ops = ops_.level(l);
    const auto& level_nodes = by_level[static_cast<std::size_t>(l)];
    // eroof: hot-begin (UP: P2M/M2M/UC2E per level)
#pragma omp parallel for schedule(dynamic)
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni) {
      const int b = level_nodes[ni];
      const Node& node = tree_.node(b);
      Workspace& ws = workspace();
      std::fill(ws.check.begin(), ws.check.end(), 0.0);

      if (node.leaf) {
        // P2M: source points -> upward check potentials.
        ops.surf_outer.materialize(node.box.center, ws.tx.data(),
                                   ws.ty.data(), ws.tz.data());
        kernel_.eval_batch({ws.tx.data(), ws.ty.data(), ws.tz.data(), ns},
                           point_block(node.point_begin, node.point_end),
                           dens.data() + node.point_begin, ws.check.data());
      } else {
        // M2M: children's equivalent densities -> this box's check surface.
        for (int c : node.children) {
          if (c < 0) continue;
          la::gemv_add(ops.m2m[tree_.node(c).key.octant_in_parent()],
                       up_equiv(c), ws.check);
        }
      }

      // UC2E solve: check potentials -> equivalent density.
      la::gemv_add(ops.uc2e, ws.check, up_equiv(b));
    }
    // eroof: hot-end

    // Tallies (outside the parallel region; counts are deterministic).
    for (const int b : level_nodes) {
      const Node& node = tree_.node(b);
      if (node.leaf)
        stats_.up.kernel_evals += static_cast<double>(ns) * node.num_points();
      else
        for (int c : node.children)
          if (c >= 0) stats_.up.solve_matvecs += 1;
      stats_.up.solve_matvecs += 1;  // the UC2E solve
    }
  }
}

void FmmEvaluator::v_phase() {
  const std::size_t ns = ops_.n_surf();
  const std::size_t g = ops_.grid_size();
  const auto& by_level = tree_.nodes_by_level();

  for (int l = kMinLevel; l <= tree_.max_depth(); ++l) {
    const auto& level_nodes = by_level[static_cast<std::size_t>(l)];
    if (level_nodes.empty()) continue;

    if (!ops_.config().use_fft_m2l) {
      // Dense fallback: batched kernel application per pair.
      const LevelOperators& lops = ops_.level(l);
      // eroof: hot-begin (V dense fallback: batched M2L kernel application)
#pragma omp parallel for schedule(dynamic)
      for (std::size_t ni = 0; ni < level_nodes.size(); ++ni) {
        const int b = level_nodes[ni];
        const auto& vlist = lists_.v[static_cast<std::size_t>(b)];
        if (vlist.empty()) continue;
        Workspace& ws = workspace();
        lops.surf_inner.materialize(tree_.node(b).box.center, ws.tx.data(),
                                    ws.ty.data(), ws.tz.data());
        double* check = down_check(b).data();
        for (const int s : vlist) {
          lops.surf_inner.materialize(tree_.node(s).box.center, ws.sx.data(),
                                      ws.sy.data(), ws.sz.data());
          kernel_.eval_batch({ws.tx.data(), ws.ty.data(), ws.tz.data(), ns},
                             {ws.sx.data(), ws.sy.data(), ws.sz.data(), ns},
                             up_equiv(s).data(), check);
        }
      }
      // eroof: hot-end
      for (const int b : level_nodes) {
        const auto& vlist = lists_.v[static_cast<std::size_t>(b)];
        stats_.v.kernel_evals +=
            static_cast<double>(vlist.size()) * static_cast<double>(ns) * ns;
        stats_.v.pair_count += static_cast<double>(vlist.size());
      }
      continue;
    }

    // Forward FFT of every level-l node's equivalent-density grid, split
    // into real/imag planes so the Hadamard stage below vectorizes.
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni)
      pos_in_level_[static_cast<std::size_t>(level_nodes[ni])] = ni;
    // eroof: hot-begin (V: forward FFTs into the level spectrum banks)
#pragma omp parallel for schedule(dynamic)
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni) {
      const int b = level_nodes[ni];
      Workspace& ws = workspace();
      ops_.embed(up_equiv(b), ws.grid);
      ops_.plan().forward(ws.grid);
      double* qr = spec_re_.data() + ni * g;
      double* qi = spec_im_.data() + ni * g;
      for (std::size_t k = 0; k < g; ++k) {
        qr[k] = ws.grid[k].real();
        qi[k] = ws.grid[k].imag();
      }
    }
    // eroof: hot-end
    stats_.v.ffts += static_cast<double>(level_nodes.size());

    // Per target: accumulate Hadamard products in Fourier space (split
    // real/imag), one inverse FFT, then scatter onto the downward check
    // surface.
    const LevelOperators& ops = ops_.level(l);
    const double* bank_re = ops.m2l->re.data();
    const double* bank_im = ops.m2l->im.data();
    const double scale = ops.m2l_scale;
    // eroof: hot-begin (V: Hadamard accumulate + inverse FFT + scatter)
#pragma omp parallel for schedule(dynamic)
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni) {
      const int b = level_nodes[ni];
      const auto& vlist = lists_.v[static_cast<std::size_t>(b)];
      if (vlist.empty()) continue;
      const auto bc = tree_.node(b).key.coords();
      Workspace& ws = workspace();
      std::fill(ws.acc_re.begin(), ws.acc_re.end(), 0.0);
      std::fill(ws.acc_im.begin(), ws.acc_im.end(), 0.0);
      double* acc_re = ws.acc_re.data();
      double* acc_im = ws.acc_im.data();
      for (const int s : vlist) {
        const auto sc = tree_.node(s).key.coords();
        const auto rel = Operators::rel_index(
            static_cast<int>(bc[0]) - static_cast<int>(sc[0]),
            static_cast<int>(bc[1]) - static_cast<int>(sc[1]),
            static_cast<int>(bc[2]) - static_cast<int>(sc[2]));
        EROOF_REQUIRE_MSG(rel.has_value(), "V-list pair in the near field");
        const double* t_re = bank_re + *rel * g;
        const double* t_im = bank_im + *rel * g;
        const std::size_t pos =
            pos_in_level_[static_cast<std::size_t>(s)] * g;
        const double* q_re = spec_re_.data() + pos;
        const double* q_im = spec_im_.data() + pos;
#pragma omp simd
        for (std::size_t k = 0; k < g; ++k) {
          acc_re[k] += t_re[k] * q_re[k] - t_im[k] * q_im[k];
          acc_im[k] += t_re[k] * q_im[k] + t_im[k] * q_re[k];
        }
      }
      for (std::size_t k = 0; k < g; ++k)
        ws.grid[k] = fft::cplx{acc_re[k], acc_im[k]};
      ops_.plan().inverse(ws.grid);
      ops_.extract(ws.grid, ws.vals);
      double* check = down_check(b).data();
      // m2l_scale is a power of two for homogeneous kernels, so applying it
      // here (instead of to the shared bank) is exact.
#pragma omp simd
      for (std::size_t i = 0; i < ns; ++i) check[i] += scale * ws.vals[i];
    }
    // eroof: hot-end
    for (const int b : level_nodes) {
      const auto& vlist = lists_.v[static_cast<std::size_t>(b)];
      if (vlist.empty()) continue;
      stats_.v.pair_count += static_cast<double>(vlist.size());
      stats_.v.hadamard_cmuls +=
          static_cast<double>(vlist.size()) * static_cast<double>(g);
      stats_.v.ffts += 1;  // the inverse transform
    }
  }
}

void FmmEvaluator::x_phase(std::span<const double> dens) {
  const std::size_t ns = ops_.n_surf();
  // eroof: hot-begin (X: batched P2L onto downward check surfaces)
#pragma omp parallel for schedule(dynamic)
  for (std::size_t ti = 0; ti < x_targets_.size(); ++ti) {
    const int b = x_targets_[ti];
    const Node& node = tree_.node(b);
    // P2L: X-node source points -> this node's downward check surface.
    Workspace& ws = workspace();
    ops_.level(node.level())
        .surf_inner.materialize(node.box.center, ws.tx.data(), ws.ty.data(),
                                ws.tz.data());
    double* check = down_check(b).data();
    for (const int a : lists_.x[static_cast<std::size_t>(b)]) {
      const Node& src = tree_.node(a);
      kernel_.eval_batch({ws.tx.data(), ws.ty.data(), ws.tz.data(), ns},
                         point_block(src.point_begin, src.point_end),
                         dens.data() + src.point_begin, check);
    }
  }
  // eroof: hot-end
  for (std::size_t b = 0; b < tree_.nodes().size(); ++b) {
    for (const int a : lists_.x[b]) {
      stats_.x.kernel_evals +=
          static_cast<double>(ns) * tree_.node(a).num_points();
      stats_.x.pair_count += 1;
    }
  }
}

void FmmEvaluator::downward_pass() {
  const auto& by_level = tree_.nodes_by_level();

  for (int l = kMinLevel; l <= tree_.max_depth(); ++l) {
    const LevelOperators& ops = ops_.level(l);
    const auto& level_nodes = by_level[static_cast<std::size_t>(l)];
    // eroof: hot-begin (DOWN: DC2E/L2L per level)
#pragma omp parallel for schedule(dynamic)
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni) {
      const int b = level_nodes[ni];
      // DC2E solve: accumulated check potentials -> equivalent density.
      const auto equiv = down_equiv(b);
      la::gemv_add(ops.dc2e, down_check(b), equiv);

      // L2L: push to children's check surfaces (children are untouched by
      // any other iteration of this loop, so this is race-free).
      const Node& node = tree_.node(b);
      for (int c : node.children) {
        if (c < 0) continue;
        la::gemv_add(ops.l2l[tree_.node(c).key.octant_in_parent()], equiv,
                     down_check(c));
      }
    }
    // eroof: hot-end
    for (const int b : level_nodes) {
      stats_.down.solve_matvecs += 1;
      for (int c : tree_.node(b).children)
        if (c >= 0) stats_.down.solve_matvecs += 1;
    }
  }
}

void FmmEvaluator::l2p_pass(std::span<double> phi) {
  const std::size_t ns = ops_.n_surf();
  const auto& leaves = tree_.leaves();

  // L2P: downward equivalent density -> target points.
  // eroof: hot-begin (DOWN: batched L2P leaf outputs)
#pragma omp parallel for schedule(dynamic)
  for (std::size_t li = 0; li < leaves.size(); ++li) {
    const int b = leaves[li];
    const Node& node = tree_.node(b);
    if (node.level() < kMinLevel) continue;
    Workspace& ws = workspace();
    ops_.level(node.level())
        .surf_outer.materialize(node.box.center, ws.sx.data(), ws.sy.data(),
                                ws.sz.data());
    kernel_.eval_batch(point_block(node.point_begin, node.point_end),
                       {ws.sx.data(), ws.sy.data(), ws.sz.data(), ns},
                       down_equiv(b).data(), phi.data() + node.point_begin);
  }
  // eroof: hot-end

  for (const int b : leaves) {
    const Node& node = tree_.node(b);
    if (node.level() >= kMinLevel)
      stats_.down.kernel_evals +=
          node.num_points() * static_cast<double>(ns);
  }
}

void FmmEvaluator::u_pass(std::span<const double> dens,
                          std::span<double> phi) {
  const auto& leaves = tree_.leaves();

  // U: direct P2P with adjacent leaves (self included; K(x,x) == 0).
  // eroof: hot-begin (U: batched near-field P2P)
#pragma omp parallel for schedule(dynamic)
  for (std::size_t li = 0; li < leaves.size(); ++li) {
    const int b = leaves[li];
    const Node& node = tree_.node(b);
    const PointBlock targets = point_block(node.point_begin, node.point_end);
    for (const int a : lists_.u[static_cast<std::size_t>(b)]) {
      const Node& src = tree_.node(a);
      kernel_.eval_batch(targets,
                         point_block(src.point_begin, src.point_end),
                         dens.data() + src.point_begin,
                         phi.data() + node.point_begin);
    }
  }
  // eroof: hot-end

  for (const int b : leaves) {
    const double npts = tree_.node(b).num_points();
    for (const int a : lists_.u[static_cast<std::size_t>(b)]) {
      stats_.u.kernel_evals +=
          npts * static_cast<double>(tree_.node(a).num_points());
      stats_.u.pair_count += 1;
    }
  }
}

void FmmEvaluator::w_pass(std::span<double> phi) {
  const std::size_t ns = ops_.n_surf();
  const auto& leaves = tree_.leaves();

  // W: M2P from W-node equivalent densities.
  // eroof: hot-begin (W: batched M2P)
#pragma omp parallel for schedule(dynamic)
  for (std::size_t li = 0; li < leaves.size(); ++li) {
    const int b = leaves[li];
    const Node& node = tree_.node(b);
    const auto& wlist = lists_.w[static_cast<std::size_t>(b)];
    if (wlist.empty()) continue;
    Workspace& ws = workspace();
    const PointBlock targets = point_block(node.point_begin, node.point_end);
    for (const int a : wlist) {
      const Node& src = tree_.node(a);
      ops_.level(src.level())
          .surf_inner.materialize(src.box.center, ws.sx.data(), ws.sy.data(),
                                  ws.sz.data());
      kernel_.eval_batch(targets,
                         {ws.sx.data(), ws.sy.data(), ws.sz.data(), ns},
                         up_equiv(a).data(), phi.data() + node.point_begin);
    }
  }
  // eroof: hot-end

  for (const int b : leaves) {
    const double npts = tree_.node(b).num_points();
    for ([[maybe_unused]] const int a :
         lists_.w[static_cast<std::size_t>(b)]) {
      stats_.w.kernel_evals += npts * static_cast<double>(ns);
      stats_.w.pair_count += 1;
    }
  }
}

}  // namespace eroof::fmm
