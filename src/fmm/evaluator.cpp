#include "fmm/evaluator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::fmm {
namespace {

constexpr int kMinLevel = 2;  // expansions exist from this level down

int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

int thread_index() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

const char* phase_name(int tag) {
  switch (tag) {
    case kDagTagUp:
      return "UP";
    case kDagTagV:
      return "V";
    case kDagTagX:
      return "X";
    case kDagTagDown:
      return "DOWN";
    case kDagTagU:
      return "U";
    default:
      return "W";
  }
}

/// Mirrors one phase's tallies into the session's counter registry as
/// "fmm.<phase>.<tally>" so regression tests can compare runs bit-for-bit.
/// Both executors call this in canonical phase order (UP,V,X,DOWN,U,W).
// eroof: cold (trace emission helper: only called with an installed
// session; the key strings are the accepted cost of tracing)
void add_phase_counters(const char* phase, const FmmStats::Phase& p) {
  const std::string prefix = std::string("fmm.") + phase + ".";
  trace::counter_add(prefix + "kernel_evals", p.kernel_evals);
  trace::counter_add(prefix + "pair_count", p.pair_count);
  trace::counter_add(prefix + "ffts", p.ffts);
  trace::counter_add(prefix + "hadamard_cmuls", p.hadamard_cmuls);
  trace::counter_add(prefix + "solve_matvecs", p.solve_matvecs);
}

// eroof: cold (trace emission helper: only called with an installed session)
void phase_args(trace::SpanEvent& ev, const FmmStats::Phase& p) {
  ev.args.push_back({"kernel_evals", p.kernel_evals});
  ev.args.push_back({"pair_count", p.pair_count});
  ev.args.push_back({"ffts", p.ffts});
  ev.args.push_back({"hadamard_cmuls", p.hadamard_cmuls});
  ev.args.push_back({"solve_matvecs", p.solve_matvecs});
}

/// Annotates a finished phase span with the phase's tallies and mirrors them
/// into the counter registry.
void record_phase(trace::ScopedSpan& span, const char* phase,
                  const FmmStats::Phase& p) {
  if (!span.active()) return;
  span.arg("kernel_evals", p.kernel_evals);
  span.arg("pair_count", p.pair_count);
  span.arg("ffts", p.ffts);
  span.arg("hadamard_cmuls", p.hadamard_cmuls);
  span.arg("solve_matvecs", p.solve_matvecs);
  add_phase_counters(phase, p);
}

}  // namespace

FmmEvaluator::FmmEvaluator(const Kernel& kernel, std::span<const Vec3> points,
                           Octree::Params tree_params, FmmConfig cfg)
    : tree_(points, tree_params), lists_(build_lists(tree_)) {
  plan_ = FmmPlan::for_tree(FmmPlan::borrow_kernel(kernel), tree_, cfg);
  init();
}

FmmEvaluator::FmmEvaluator(std::shared_ptr<const FmmPlan> plan, Octree tree)
    : plan_(std::move(plan)),
      tree_(std::move(tree)),
      lists_(build_lists(tree_)) {
  EROOF_REQUIRE_MSG(plan_ != nullptr, "null plan");
  // Bitwise equality: per-level operator geometry scales with the root
  // half-width, so anything but the exact same domain silently changes
  // results. Depth is only an upper bound -- levels are built/rescaled
  // independently, so a deeper plan's shallow levels are identical to a
  // fresh shallower build.
  EROOF_REQUIRE_MSG(tree_.domain().half == plan_->root_half(),
                    "tree domain does not match the plan");
  EROOF_REQUIRE_MSG(tree_.max_depth() <= plan_->max_depth(),
                    "tree deeper than the plan");
  init();
}

FmmEvaluator::FmmEvaluator(std::shared_ptr<const FmmPlan> plan,
                           std::span<const Vec3> points,
                           Octree::Params tree_params)
    : FmmEvaluator(std::move(plan), Octree(points, tree_params)) {}

void FmmEvaluator::init() {
  const auto pts = tree_.points();
  px_.resize(pts.size());
  py_.resize(pts.size());
  pz_.resize(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    px_[i] = pts[i].x;
    py_[i] = pts[i].y;
    pz_[i] = pts[i].z;
  }

  const auto& nodes = tree_.nodes();
  slot_.assign(nodes.size(), -1);
  for (std::size_t b = 0; b < nodes.size(); ++b)
    if (nodes[b].level() >= kMinLevel)
      slot_[b] = static_cast<int>(n_slots_++);

  const std::size_t ns = ops().n_surf();
  up_equiv_.resize(n_slots_ * ns);
  down_check_.resize(n_slots_ * ns);
  down_equiv_.resize(n_slots_ * ns);

  // X targets: nodes with work to do. A node below kMinLevel can never be
  // an X target (its W-dual would be adjacent to everything), so every
  // target has an arena slot; the slot check is belt and braces.
  for (std::size_t b = 0; b < nodes.size(); ++b)
    if (!lists_.x[b].empty() && slot_[b] >= 0)
      x_targets_.push_back(static_cast<int>(b));

  // V-phase spectra sized for the widest level that runs it.
  std::size_t widest = 0;
  const auto& by_level = tree_.nodes_by_level();
  for (int l = kMinLevel; l <= tree_.max_depth(); ++l)
    widest = std::max(widest, by_level[static_cast<std::size_t>(l)].size());
  pos_in_level_.assign(nodes.size(), 0);
  if (ops().config().use_fft_m2l) {
    spec_re_.resize(widest * ops().grid_size());
    spec_im_.resize(widest * ops().grid_size());
  }

  structural_stats_ = compute_structural_stats();
  stats_ = structural_stats_;
}

FmmStats FmmEvaluator::compute_structural_stats() const {
  // One serial pass replicating the legacy per-phase tally loops verbatim --
  // same phase order (UP,V,X,DOWN,U,W), same level order, same node order --
  // so the summation order (and therefore every double) is bitwise identical
  // to what the bulk-synchronous path historically produced.
  FmmStats s;
  const std::size_t ns = ops().n_surf();
  const std::size_t g = ops().grid_size();
  const auto& by_level = tree_.nodes_by_level();
  const auto& leaves = tree_.leaves();

  // UP: deepest level first, as the upward sweep runs.
  for (int l = tree_.max_depth(); l >= kMinLevel; --l) {
    for (const int b : by_level[static_cast<std::size_t>(l)]) {
      const Node& node = tree_.node(b);
      if (node.leaf)
        s.up.kernel_evals += static_cast<double>(ns) * node.num_points();
      else
        for (int c : node.children)
          if (c >= 0) s.up.solve_matvecs += 1;
      s.up.solve_matvecs += 1;  // the UC2E solve
    }
  }

  // V: top level first, as the translation sweep runs.
  for (int l = kMinLevel; l <= tree_.max_depth(); ++l) {
    const auto& level_nodes = by_level[static_cast<std::size_t>(l)];
    if (level_nodes.empty()) continue;
    if (!ops().config().use_fft_m2l) {
      for (const int b : level_nodes) {
        const auto& vlist = lists_.v[static_cast<std::size_t>(b)];
        s.v.kernel_evals +=
            static_cast<double>(vlist.size()) * static_cast<double>(ns) * ns;
        s.v.pair_count += static_cast<double>(vlist.size());
      }
      continue;
    }
    s.v.ffts += static_cast<double>(level_nodes.size());
    for (const int b : level_nodes) {
      const auto& vlist = lists_.v[static_cast<std::size_t>(b)];
      if (vlist.empty()) continue;
      s.v.pair_count += static_cast<double>(vlist.size());
      s.v.hadamard_cmuls +=
          static_cast<double>(vlist.size()) * static_cast<double>(g);
      s.v.ffts += 1;  // the inverse transform
    }
  }

  // X.
  for (std::size_t b = 0; b < tree_.nodes().size(); ++b) {
    for (const int a : lists_.x[b]) {
      s.x.kernel_evals += static_cast<double>(ns) * tree_.node(a).num_points();
      s.x.pair_count += 1;
    }
  }

  // DOWN: DC2E/L2L sweep, then the L2P leaf outputs.
  for (int l = kMinLevel; l <= tree_.max_depth(); ++l) {
    for (const int b : by_level[static_cast<std::size_t>(l)]) {
      s.down.solve_matvecs += 1;
      for (int c : tree_.node(b).children)
        if (c >= 0) s.down.solve_matvecs += 1;
    }
  }
  for (const int b : leaves) {
    const Node& node = tree_.node(b);
    if (node.level() >= kMinLevel)
      s.down.kernel_evals += node.num_points() * static_cast<double>(ns);
  }

  // U.
  for (const int b : leaves) {
    const double npts = tree_.node(b).num_points();
    for (const int a : lists_.u[static_cast<std::size_t>(b)]) {
      s.u.kernel_evals +=
          npts * static_cast<double>(tree_.node(a).num_points());
      s.u.pair_count += 1;
    }
  }

  // W.
  for (const int b : leaves) {
    const double npts = tree_.node(b).num_points();
    for ([[maybe_unused]] const int a :
         lists_.w[static_cast<std::size_t>(b)]) {
      s.w.kernel_evals += npts * static_cast<double>(ns);
      s.w.pair_count += 1;
    }
  }
  return s;
}

// eroof: cold (first-call scratch sizing: returns immediately once the
// per-thread workspaces match the thread count)
void FmmEvaluator::ensure_workspaces() {
  const auto want = static_cast<std::size_t>(max_threads());
  if (workspaces_.size() >= want && !workspaces_.empty()) return;
  const std::size_t ns = ops().n_surf();
  const std::size_t g = ops().config().use_fft_m2l ? ops().grid_size() : 0;
  workspaces_.resize(std::max<std::size_t>(want, 1));
  for (auto& ws : workspaces_) {
    ws.check.resize(ns);
    ws.vals.resize(ns);
    ws.tx.resize(ns);
    ws.ty.resize(ns);
    ws.tz.resize(ns);
    ws.sx.resize(ns);
    ws.sy.resize(ns);
    ws.sz.resize(ns);
    ws.grid.resize(g);
    ws.acc_re.resize(g);
    ws.acc_im.resize(g);
  }
}

FmmEvaluator::Workspace& FmmEvaluator::workspace() {
  return workspaces_[static_cast<std::size_t>(thread_index())];
}

std::vector<double> FmmEvaluator::evaluate(std::span<const double> densities) {
  std::vector<double> out(densities.size());
  evaluate_into(densities, out);
  return out;
}

void FmmEvaluator::evaluate_into(std::span<const double> densities,
                                 std::span<double> out) {
  EROOF_REQUIRE(densities.size() == tree_.points().size());
  EROOF_REQUIRE(out.size() == densities.size());
  // Tallies are structural: one wholesale commit of the precomputed pass,
  // identical under both executors (and trivially thread-count invariant).
  stats_ = structural_stats_;

  // Setup: permute densities into tree-order staging, zero the arenas, and
  // make sure per-thread scratch exists. The staging buffers and scratch are
  // sized on the first call; past this point -- the six phases under either
  // executor -- nothing touches the heap.
  const auto orig = tree_.original_index();
  if (eval_dens_.size() != densities.size()) {
    eval_dens_.resize(densities.size());  // eroof-lint: allow(hot-alloc)
    eval_phi_.resize(densities.size());   // eroof-lint: allow(hot-alloc)
  }
  ensure_workspaces();

  // eroof: hot-begin (steady-state evaluate: permute in, zero arenas, run
  // the six phases, un-permute out)
  for (std::size_t i = 0; i < eval_dens_.size(); ++i)
    eval_dens_[i] = densities[orig[i]];

  std::fill(up_equiv_.begin(), up_equiv_.end(), 0.0);
  std::fill(down_check_.begin(), down_check_.end(), 0.0);
  std::fill(down_equiv_.begin(), down_equiv_.end(), 0.0);
  std::fill(eval_phi_.begin(), eval_phi_.end(), 0.0);

  trace::ScopedSpan eval_span("evaluate", "fmm");
  if (eval_span.active()) {
    eval_span.arg("n_points", static_cast<double>(eval_dens_.size()));
    eval_span.arg("n_nodes", static_cast<double>(tree_.nodes().size()));
  }

  if (executor_ == FmmExecutor::kDag)
    evaluate_dag(eval_dens_, eval_phi_);
  else
    evaluate_phases(eval_dens_, eval_phi_);

  // Un-permute the potentials to the caller's order.
  for (std::size_t i = 0; i < eval_phi_.size(); ++i)
    out[orig[i]] = eval_phi_[i];
  // eroof: hot-end
}

bool FmmEvaluator::try_refit(std::span<const Vec3> new_points) {
  if (!tree_.try_refit(new_points)) return false;
  // Structure is unchanged, so every structural piece -- interaction lists,
  // slots, arenas, X targets, spectra banks, DAG skeleton -- stays valid.
  // Only the coordinates moved and the occupancy-dependent tallies shifted.
  const auto pts = tree_.points();
  // eroof: hot-begin (refit: refresh the SoA coordinate mirror in place)
  for (std::size_t i = 0; i < pts.size(); ++i) {
    px_[i] = pts[i].x;
    py_[i] = pts[i].y;
    pz_[i] = pts[i].z;
  }
  // eroof: hot-end
  structural_stats_ = compute_structural_stats();
  stats_ = structural_stats_;
  return true;
}

std::vector<double> FmmEvaluator::evaluate_at(
    const Kernel& kernel, std::span<const Vec3> targets,
    std::span<const Vec3> sources, std::span<const double> densities,
    Octree::Params tree_params, FmmConfig cfg) {
  EROOF_REQUIRE(!targets.empty());
  EROOF_REQUIRE(sources.size() == densities.size());

  std::vector<Vec3> all;
  all.reserve(sources.size() + targets.size());
  all.insert(all.end(), sources.begin(), sources.end());
  all.insert(all.end(), targets.begin(), targets.end());
  std::vector<double> dens(all.size(), 0.0);
  std::copy(densities.begin(), densities.end(), dens.begin());

  FmmEvaluator ev(kernel, all, tree_params, cfg);
  const auto phi = ev.evaluate(dens);
  return std::vector<double>(phi.begin() + static_cast<long>(sources.size()),
                             phi.end());
}

// ---------------------------------------------------------------------------
// Per-node phase bodies. Both executors funnel through these, so the
// floating-point operation sequence applied to any given arena cell or
// output element is executor-independent by construction; only the
// *scheduling* of independent nodes differs.
// ---------------------------------------------------------------------------

void FmmEvaluator::node_up(int b, const double* dens) {
  // eroof: hot-begin (UP body: P2M or M2M, then the UC2E solve, for one node)
  const std::size_t ns = ops().n_surf();
  const Node& node = tree_.node(b);
  const LevelOperators& lops = ops().level(node.level());
  Workspace& ws = workspace();
  std::fill(ws.check.begin(), ws.check.end(), 0.0);

  if (node.leaf) {
    // P2M: source points -> upward check potentials.
    lops.surf_outer.materialize(node.box.center, ws.tx.data(), ws.ty.data(),
                               ws.tz.data());
    kern().eval_batch({ws.tx.data(), ws.ty.data(), ws.tz.data(), ns},
                       point_block(node.point_begin, node.point_end),
                       dens + node.point_begin, ws.check.data());
  } else {
    // M2M: children's equivalent densities -> this box's check surface.
    for (int c : node.children) {
      if (c < 0) continue;
      la::gemv_add(lops.m2m[tree_.node(c).key.octant_in_parent()], up_equiv(c),
                   ws.check);
    }
  }

  // UC2E solve: check potentials -> equivalent density.
  la::gemv_add(lops.uc2e, ws.check, up_equiv(b));
  // eroof: hot-end
}

void FmmEvaluator::node_fft_forward(int b, double* qr, double* qi) {
  // eroof: hot-begin (V body: forward FFT of one node's equivalent grid,
  // split into real/imag planes so the Hadamard stage vectorizes)
  const std::size_t g = ops().grid_size();
  Workspace& ws = workspace();
  ops().embed(up_equiv(b), ws.grid);
  ops().plan().forward(ws.grid);
  for (std::size_t k = 0; k < g; ++k) {
    qr[k] = ws.grid[k].real();
    qi[k] = ws.grid[k].imag();
  }
  // eroof: hot-end
}

void FmmEvaluator::node_v_hadamard(int b, const double* spec_re,
                                   const double* spec_im,
                                   const std::size_t* spec_pos) {
  // eroof: hot-begin (V body: Hadamard accumulate + inverse FFT + scatter
  // onto one node's downward check surface)
  const auto& vlist = lists_.v[static_cast<std::size_t>(b)];
  if (vlist.empty()) return;
  const std::size_t ns = ops().n_surf();
  const std::size_t g = ops().grid_size();
  const Node& node = tree_.node(b);
  const LevelOperators& lops = ops().level(node.level());
  const double* bank_re = lops.m2l->re.data();
  const double* bank_im = lops.m2l->im.data();
  const double scale = lops.m2l_scale;
  const auto bc = node.key.coords();
  Workspace& ws = workspace();
  std::fill(ws.acc_re.begin(), ws.acc_re.end(), 0.0);
  std::fill(ws.acc_im.begin(), ws.acc_im.end(), 0.0);
  double* acc_re = ws.acc_re.data();
  double* acc_im = ws.acc_im.data();
  for (const int s : vlist) {
    const auto sc = tree_.node(s).key.coords();
    const auto rel = Operators::rel_index(
        static_cast<int>(bc[0]) - static_cast<int>(sc[0]),
        static_cast<int>(bc[1]) - static_cast<int>(sc[1]),
        static_cast<int>(bc[2]) - static_cast<int>(sc[2]));
    EROOF_REQUIRE_MSG(rel.has_value(), "V-list pair in the near field");
    const double* t_re = bank_re + *rel * g;
    const double* t_im = bank_im + *rel * g;
    const std::size_t pos = spec_pos[static_cast<std::size_t>(s)] * g;
    const double* q_re = spec_re + pos;
    const double* q_im = spec_im + pos;
#pragma omp simd
    for (std::size_t k = 0; k < g; ++k) {
      acc_re[k] += t_re[k] * q_re[k] - t_im[k] * q_im[k];
      acc_im[k] += t_re[k] * q_im[k] + t_im[k] * q_re[k];
    }
  }
  for (std::size_t k = 0; k < g; ++k)
    ws.grid[k] = fft::cplx{acc_re[k], acc_im[k]};
  ops().plan().inverse(ws.grid);
  ops().extract(ws.grid, ws.vals);
  double* check = down_check(b).data();
  // m2l_scale is a power of two for homogeneous kernels, so applying it
  // here (instead of to the shared bank) is exact.
#pragma omp simd
  for (std::size_t i = 0; i < ns; ++i) check[i] += scale * ws.vals[i];
  // eroof: hot-end
}

void FmmEvaluator::node_v_dense(int b) {
  // eroof: hot-begin (V body, dense fallback: batched M2L kernel application)
  const auto& vlist = lists_.v[static_cast<std::size_t>(b)];
  if (vlist.empty()) return;
  const std::size_t ns = ops().n_surf();
  const Node& node = tree_.node(b);
  const LevelOperators& lops = ops().level(node.level());
  Workspace& ws = workspace();
  lops.surf_inner.materialize(node.box.center, ws.tx.data(), ws.ty.data(),
                              ws.tz.data());
  double* check = down_check(b).data();
  for (const int s : vlist) {
    lops.surf_inner.materialize(tree_.node(s).box.center, ws.sx.data(),
                                ws.sy.data(), ws.sz.data());
    kern().eval_batch({ws.tx.data(), ws.ty.data(), ws.tz.data(), ns},
                       {ws.sx.data(), ws.sy.data(), ws.sz.data(), ns},
                       up_equiv(s).data(), check);
  }
  // eroof: hot-end
}

void FmmEvaluator::node_x(int b, const double* dens) {
  // eroof: hot-begin (X body: batched P2L onto one downward check surface)
  const std::size_t ns = ops().n_surf();
  const Node& node = tree_.node(b);
  Workspace& ws = workspace();
  ops().level(node.level())
      .surf_inner.materialize(node.box.center, ws.tx.data(), ws.ty.data(),
                              ws.tz.data());
  double* check = down_check(b).data();
  for (const int a : lists_.x[static_cast<std::size_t>(b)]) {
    const Node& src = tree_.node(a);
    kern().eval_batch({ws.tx.data(), ws.ty.data(), ws.tz.data(), ns},
                       point_block(src.point_begin, src.point_end),
                       dens + src.point_begin, check);
  }
  // eroof: hot-end
}

void FmmEvaluator::node_down(int b) {
  // eroof: hot-begin (DOWN body: DC2E solve + L2L pushes for one node)
  const Node& node = tree_.node(b);
  const LevelOperators& lops = ops().level(node.level());
  // DC2E solve: accumulated check potentials -> equivalent density.
  const auto equiv = down_equiv(b);
  la::gemv_add(lops.dc2e, down_check(b), equiv);

  // L2L: push to children's check surfaces (each child's check surface has
  // exactly one L2L writer -- this node -- so this is race-free under both
  // executors).
  for (int c : node.children) {
    if (c < 0) continue;
    la::gemv_add(lops.l2l[tree_.node(c).key.octant_in_parent()], equiv,
                 down_check(c));
  }
  // eroof: hot-end
}

void FmmEvaluator::leaf_l2p(int b, double* phi) {
  // eroof: hot-begin (DOWN body: batched L2P outputs of one leaf)
  const Node& node = tree_.node(b);
  if (node.level() < kMinLevel) return;  // no expansion this shallow
  const std::size_t ns = ops().n_surf();
  Workspace& ws = workspace();
  ops().level(node.level())
      .surf_outer.materialize(node.box.center, ws.sx.data(), ws.sy.data(),
                              ws.sz.data());
  kern().eval_batch(point_block(node.point_begin, node.point_end),
                     {ws.sx.data(), ws.sy.data(), ws.sz.data(), ns},
                     down_equiv(b).data(), phi + node.point_begin);
  // eroof: hot-end
}

void FmmEvaluator::leaf_u(int b, const double* dens, double* phi) {
  // eroof: hot-begin (U body: batched near-field P2P of one leaf)
  const Node& node = tree_.node(b);
  const PointBlock targets = point_block(node.point_begin, node.point_end);
  for (const int a : lists_.u[static_cast<std::size_t>(b)]) {
    const Node& src = tree_.node(a);
    kern().eval_batch(targets, point_block(src.point_begin, src.point_end),
                       dens + src.point_begin, phi + node.point_begin);
  }
  // eroof: hot-end
}

void FmmEvaluator::leaf_w(int b, double* phi) {
  // eroof: hot-begin (W body: batched M2P of one leaf)
  const Node& node = tree_.node(b);
  const auto& wlist = lists_.w[static_cast<std::size_t>(b)];
  if (wlist.empty()) return;
  const std::size_t ns = ops().n_surf();
  Workspace& ws = workspace();
  const PointBlock targets = point_block(node.point_begin, node.point_end);
  for (const int a : wlist) {
    const Node& src = tree_.node(a);
    ops().level(src.level())
        .surf_inner.materialize(src.box.center, ws.sx.data(), ws.sy.data(),
                                ws.sz.data());
    kern().eval_batch(targets, {ws.sx.data(), ws.sy.data(), ws.sz.data(), ns},
                       up_equiv(a).data(), phi + node.point_begin);
  }
  // eroof: hot-end
}

// ---------------------------------------------------------------------------
// Bulk-synchronous executor: six phase sweeps with a barrier between phases.
// ---------------------------------------------------------------------------

void FmmEvaluator::evaluate_phases(std::span<const double> dens,
                                   std::span<double> phi) {
  {
    trace::ScopedSpan span("UP", "fmm.phase");
    upward_pass(dens);
    record_phase(span, "UP", stats_.up);
  }
  {
    trace::ScopedSpan span("V", "fmm.phase");
    v_phase();
    record_phase(span, "V", stats_.v);
  }
  {
    trace::ScopedSpan span("X", "fmm.phase");
    x_phase(dens);
    record_phase(span, "X", stats_.x);
  }
  {
    // DOWN covers the DC2E/L2L sweep and the L2P leaf outputs: both tally
    // into stats_.down, matching the paper's phase taxonomy.
    trace::ScopedSpan span("DOWN", "fmm.phase");
    downward_pass();
    l2p_pass(phi);
    record_phase(span, "DOWN", stats_.down);
  }
  {
    trace::ScopedSpan span("U", "fmm.phase");
    u_pass(dens, phi);
    record_phase(span, "U", stats_.u);
  }
  {
    trace::ScopedSpan span("W", "fmm.phase");
    w_pass(phi);
    record_phase(span, "W", stats_.w);
  }
}

void FmmEvaluator::upward_pass(std::span<const double> dens) {
  const auto& by_level = tree_.nodes_by_level();
  for (int l = tree_.max_depth(); l >= kMinLevel; --l) {
    const auto& level_nodes = by_level[static_cast<std::size_t>(l)];
    // eroof: hot-begin (UP: P2M/M2M/UC2E per level)
#pragma omp parallel for schedule(dynamic)
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni)
      node_up(level_nodes[ni], dens.data());
    // eroof: hot-end
  }
}

void FmmEvaluator::v_phase() {
  const std::size_t g = ops().grid_size();
  const auto& by_level = tree_.nodes_by_level();

  for (int l = kMinLevel; l <= tree_.max_depth(); ++l) {
    const auto& level_nodes = by_level[static_cast<std::size_t>(l)];
    if (level_nodes.empty()) continue;

    if (!ops().config().use_fft_m2l) {
      // eroof: hot-begin (V dense fallback: batched M2L kernel application)
#pragma omp parallel for schedule(dynamic)
      for (std::size_t ni = 0; ni < level_nodes.size(); ++ni)
        node_v_dense(level_nodes[ni]);
      // eroof: hot-end
      continue;
    }

    // Forward FFT of every level-l node's equivalent-density grid into the
    // per-level spectrum banks (reused across levels; safe because the
    // bulk-synchronous sweep finishes a level before starting the next).
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni)
      pos_in_level_[static_cast<std::size_t>(level_nodes[ni])] = ni;
    // eroof: hot-begin (V: forward FFTs into the level spectrum banks)
#pragma omp parallel for schedule(dynamic)
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni)
      node_fft_forward(level_nodes[ni], spec_re_.data() + ni * g,
                       spec_im_.data() + ni * g);
    // eroof: hot-end

    // Per target: accumulate Hadamard products in Fourier space, one
    // inverse FFT, then scatter onto the downward check surface.
    // eroof: hot-begin (V: Hadamard accumulate + inverse FFT + scatter)
#pragma omp parallel for schedule(dynamic)
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni)
      node_v_hadamard(level_nodes[ni], spec_re_.data(), spec_im_.data(),
                      pos_in_level_.data());
    // eroof: hot-end
  }
}

void FmmEvaluator::x_phase(std::span<const double> dens) {
  // eroof: hot-begin (X: batched P2L onto downward check surfaces)
#pragma omp parallel for schedule(dynamic)
  for (std::size_t ti = 0; ti < x_targets_.size(); ++ti)
    node_x(x_targets_[ti], dens.data());
  // eroof: hot-end
}

void FmmEvaluator::downward_pass() {
  const auto& by_level = tree_.nodes_by_level();
  for (int l = kMinLevel; l <= tree_.max_depth(); ++l) {
    const auto& level_nodes = by_level[static_cast<std::size_t>(l)];
    // eroof: hot-begin (DOWN: DC2E/L2L per level)
#pragma omp parallel for schedule(dynamic)
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni)
      node_down(level_nodes[ni]);
    // eroof: hot-end
  }
}

void FmmEvaluator::l2p_pass(std::span<double> phi) {
  const auto& leaves = tree_.leaves();
  // eroof: hot-begin (DOWN: batched L2P leaf outputs)
#pragma omp parallel for schedule(dynamic)
  for (std::size_t li = 0; li < leaves.size(); ++li)
    leaf_l2p(leaves[li], phi.data());
  // eroof: hot-end
}

void FmmEvaluator::u_pass(std::span<const double> dens,
                          std::span<double> phi) {
  const auto& leaves = tree_.leaves();
  // eroof: hot-begin (U: batched near-field P2P)
#pragma omp parallel for schedule(dynamic)
  for (std::size_t li = 0; li < leaves.size(); ++li)
    leaf_u(leaves[li], dens.data(), phi.data());
  // eroof: hot-end
}

void FmmEvaluator::w_pass(std::span<double> phi) {
  const auto& leaves = tree_.leaves();
  // eroof: hot-begin (W: batched M2P)
#pragma omp parallel for schedule(dynamic)
  for (std::size_t li = 0; li < leaves.size(); ++li)
    leaf_w(leaves[li], phi.data());
  // eroof: hot-end
}

// ---------------------------------------------------------------------------
// DAG executor: the same per-node bodies as tasks of a dependency-counting
// graph (util::TaskGraph), replayed allocation-free per evaluate.
//
// Determinism discipline (DESIGN.md section 11): every memory location's
// writers are totally ordered by edges, in exactly the phase-path order --
//   phi[leaf range]:   L2P, then U pairs (u-list order), then W pairs
//                      (w-list order)          => chain l2p -> u -> w;
//   down_check(b):     V commit, X adds, parent's L2L, then the DC2E read
//                      => v -> x -> down(parent) -> down(b);
//   up_equiv(b):       single writer (up task), readers ordered after it.
// Hence results are bitwise identical to the phases path for any thread
// count and any schedule.
// ---------------------------------------------------------------------------

const util::TaskGraph& FmmEvaluator::task_graph() {
  if (!dag_built_) build_dag();
  return *dag_;
}

void FmmEvaluator::dag_fft(int b) {
  const std::size_t pos =
      dag_spec_pos_[static_cast<std::size_t>(b)] * ops().grid_size();
  node_fft_forward(b, dag_spec_re_.data() + pos, dag_spec_im_.data() + pos);
}

void FmmEvaluator::dag_vhad(int b) {
  node_v_hadamard(b, dag_spec_re_.data(), dag_spec_im_.data(),
                  dag_spec_pos_.data());
}

void FmmEvaluator::run_dag_task(int t) {
  const int b = dag_node_[t];
  const auto dispatch = [&] {
    // Bound to the densities/potentials of the current evaluate() via
    // dag_dens_/dag_phi_ (spans are caller-owned for one call only).
    switch (dag_kind_[t]) {
      case FmmDagKind::kUp:
        node_up(b, dag_dens_);
        break;
      case FmmDagKind::kFft:
        dag_fft(b);
        break;
      case FmmDagKind::kVHad:
        dag_vhad(b);
        break;
      case FmmDagKind::kVDense:
        node_v_dense(b);
        break;
      case FmmDagKind::kX:
        node_x(b, dag_dens_);
        break;
      case FmmDagKind::kDown:
        node_down(b);
        break;
      case FmmDagKind::kL2p:
        leaf_l2p(b, dag_phi_);
        break;
      case FmmDagKind::kU:
        leaf_u(b, dag_dens_, dag_phi_);
        break;
      case FmmDagKind::kW:
        leaf_w(b, dag_phi_);
        break;
    }
  };
  if (!dag_timing_) {
    dispatch();
    return;
  }
  const auto t0 = trace::Clock::now();
  dispatch();
  const auto t1 = trace::Clock::now();
  dag_busy_us_[static_cast<std::size_t>(thread_index())]
              [static_cast<std::size_t>(dag_->tag(t))] +=
      std::chrono::duration<double, std::micro>(t1 - t0).count();
}

void FmmEvaluator::build_dag() {
  const auto& nodes = tree_.nodes();
  const bool fft = ops().config().use_fft_m2l;

  if (fft) {
    // Per-slot spectrum planes: the DAG overlaps levels, so the per-level
    // banks of the phases path would be reused while still referenced.
    dag_spec_re_.resize(n_slots_ * ops().grid_size());
    dag_spec_im_.resize(n_slots_ * ops().grid_size());
    dag_spec_pos_.assign(nodes.size(), 0);
    for (std::size_t b = 0; b < nodes.size(); ++b)
      if (slot_[b] >= 0)
        dag_spec_pos_[b] = static_cast<std::size_t>(slot_[b]);
  }

  // Adopt the plan's skeleton when the tree structure matches (the serving
  // cache-hit path: skips edge construction, the duplicate check and the
  // Kahn pass); otherwise build a local one. Correctness is validated by
  // the structural signature, never assumed -- a plan built from one
  // request's tree can be offered a differently-shaped tree later.
  const FmmDagSkeleton* skel = plan_->dag_skeleton();
  if (skel == nullptr ||
      skel->tree_signature != tree_structure_signature(tree_)) {
    local_skeleton_ = std::make_unique<FmmDagSkeleton>(
        build_fmm_dag_skeleton(tree_, lists_, fft));
    skel = local_skeleton_.get();
  }
  dag_kind_ = skel->kind.data();
  dag_node_ = skel->node.data();
  dag_ = std::make_unique<util::TaskGraph>(skel->topology);
  dag_->set_runner([this](int t) { run_dag_task(t); });
  dag_built_ = true;
}

void FmmEvaluator::evaluate_dag(std::span<const double> dens,
                                std::span<double> phi) {
  // eroof: cold (first-call DAG construction; every later evaluate replays
  // the sealed graph without touching the heap)
  if (!dag_built_) build_dag();
  dag_dens_ = dens.data();
  dag_phi_ = phi.data();

  trace::TraceSession* sess = trace::session();
  dag_timing_ = sess != nullptr;
  std::int64_t t0 = 0;
  if (dag_timing_) {
    dag_busy_us_.assign(static_cast<std::size_t>(max_threads()),
                        std::array<double, kFmmDagTagCount>{});
    t0 = sess->now_us();
  }

  dag_->run(dag_hooks_);

  dag_dens_ = nullptr;
  dag_phi_ = nullptr;
  if (!dag_timing_) return;
  dag_timing_ = false;

  // Phases interleave under the DAG, so each phase span reports *busy* time
  // (summed task durations across workers), all anchored at the run start.
  // Emitted -- and the counter registry bumped -- in canonical phase order,
  // matching the phases path event-for-event.
  const FmmStats::Phase* tallies[kFmmDagTagCount] = {
      &stats_.up, &stats_.v, &stats_.x, &stats_.down, &stats_.u, &stats_.w};
  for (int tag = 0; tag < kFmmDagTagCount; ++tag) {
    double busy = 0.0;
    for (const auto& per : dag_busy_us_)
      busy += per[static_cast<std::size_t>(tag)];
    trace::SpanEvent ev;
    ev.name = phase_name(tag);
    ev.category = "fmm.phase";
    ev.tid = 0;
    ev.start_us = t0;
    ev.dur_us = static_cast<std::int64_t>(busy);
    ev.depth = 1;
    phase_args(ev, *tallies[tag]);
    sess->emit_span(std::move(ev));
    add_phase_counters(phase_name(tag), *tallies[tag]);
  }
}

}  // namespace eroof::fmm
